package fim

import (
	"math/rand"
	"testing"
)

func benchTransactions(nTx, items, perTx int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	txs := make([][]int, nTx)
	for i := range txs {
		for k := 0; k < perTx; k++ {
			txs[i] = append(txs[i], rng.Intn(items))
		}
	}
	return txs
}

func BenchmarkMineMaximalSparse(b *testing.B) {
	txs := benchTransactions(1000, 200, 10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MineMaximal(200, txs, Config{MinSupport: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMineMaximalDense(b *testing.B) {
	txs := benchTransactions(300, 40, 12, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MineMaximal(40, txs, Config{MinSupport: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMineMaximalSizeCapped(b *testing.B) {
	txs := benchTransactions(500, 80, 10, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MineMaximal(80, txs, Config{MinSupport: 5, MaxSize: 3}); err != nil {
			b.Fatal(err)
		}
	}
}
