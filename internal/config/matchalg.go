package config

import (
	"time"

	"bundling/internal/matching"
	"bundling/internal/wtp"
)

// MatchingBased runs the paper's Algorithm 1: iteratively solve a
// maximum-weight matching over the current bundles, merging every matched
// pair, until no matching yields a revenue gain or the size cap k blocks
// all merges. Works for both pure and mixed bundling (params.Strategy).
//
// The matching runs on *gain* weights — the revenue improvement of a merge
// over keeping its two operands — so that a self-loop ("keep the bundle")
// is the implicit zero alternative and only positive-gain edges exist.
// Per the paper's pruning: iteration 1 considers only item pairs sharing an
// interested consumer (valid for θ ≤ 0, see engine.mergeable), and later
// iterations only pairs touching a newly formed bundle.
func MatchingBased(w *wtp.Matrix, params Params) (*Configuration, error) {
	s, err := NewSolver(w, params)
	if err != nil {
		return nil, err
	}
	return s.Solve(MatchingAlgorithm())
}

// matching is Algorithm 1 on a run engine.
func (e *engine) matching() (*Configuration, error) {
	start := time.Now()
	nodes := e.singletons()
	var trace []IterationStat
	total := 0.0
	for _, n := range nodes {
		total += n.revenue
	}
	trace = append(trace, IterationStat{Iteration: 0, Revenue: total, Elapsed: time.Since(start), Bundles: len(nodes)})

	iteration := 0
	for {
		if err := e.canceled(); err != nil {
			return nil, err
		}
		iteration++
		var jobs []pairJob
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				a, b := nodes[i], nodes[j]
				if iteration > 1 && !a.fresh && !b.fresh {
					continue
				}
				if !e.mergeable(a, b) {
					continue
				}
				jobs = append(jobs, pairJob{u: i, v: j})
			}
		}
		cands := e.evalPairs(nodes, jobs, false)
		if err := e.canceled(); err != nil {
			// A done context truncates evalPairs; an empty batch here means
			// "aborted", not "converged" — it must not end the run silently.
			return nil, err
		}
		if len(cands) == 0 {
			break
		}
		edges := make([]matching.Edge, len(cands))
		for ci, c := range cands {
			edges[ci] = matching.Edge{U: c.u, V: c.v, Weight: c.gain}
		}
		mate, err := matching.MaxWeight(len(nodes), edges)
		if err != nil {
			return nil, err
		}
		// Collapse matched pairs. Matched-pair lookup goes through the
		// candidate list since parallel edges cannot occur here.
		mergedAny := false
		next := nodes[:0:0]
		taken := make([]bool, len(nodes))
		byPair := make(map[[2]int]*node, len(cands))
		for _, c := range cands {
			byPair[[2]int{c.u, c.v}] = c.merged
		}
		for i, n := range nodes {
			n.fresh = false
			if taken[i] {
				continue
			}
			j := mate[i]
			if j < 0 {
				next = append(next, n)
				continue
			}
			lo, hi := i, j
			if lo > hi {
				lo, hi = hi, lo
			}
			m := byPair[[2]int{lo, hi}]
			taken[i], taken[j] = true, true
			next = append(next, m)
			total += m.revenue - nodes[lo].revenue - nodes[hi].revenue
			mergedAny = true
		}
		nodes = next
		trace = append(trace, IterationStat{Iteration: iteration, Revenue: total, Elapsed: time.Since(start), Bundles: len(nodes)})
		if !mergedAny {
			break
		}
	}
	return e.finish(nodes, iteration, trace), nil
}

// Optimal2Sized solves the 2-sized bundle configuration exactly (Sec. 5.1):
// with k = 2 a single maximum-weight matching over the item graph is the
// optimal partition into size-1 and size-2 bundles. For mixed bundling the
// same reduction holds with edge weights equal to the best mixed-offer
// revenue (optimal under the paper's incremental pricing policy).
// One-shot form; sessions use Solver.Solve(Optimal2Algorithm()).
func Optimal2Sized(w *wtp.Matrix, params Params) (*Configuration, error) {
	s, err := NewSolver(w, params)
	if err != nil {
		return nil, err
	}
	return s.Solve(Optimal2Algorithm())
}
