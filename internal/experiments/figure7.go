package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"bundling/internal/config"
	"bundling/internal/tabular"
)

// ScalePoint records per-method running time at one workload size.
type ScalePoint struct {
	Label   string // e.g. "users×2" or "items=128"
	Users   int
	Items   int
	Seconds map[Method]float64
}

// Figure7Result holds the two scalability studies of Fig. 7: running time
// vs number of users (cloned) and vs number of items (sampled).
type Figure7Result struct {
	UserSweep []ScalePoint
	ItemSweep []ScalePoint
}

// DefaultUserFactors are the Fig. 7(a) cloning factors (100%..500%).
func DefaultUserFactors() []int { return []int{1, 2, 3, 4, 5} }

// Figure7 measures how running time scales with the number of users
// (cloning the population, Fig. 7a) and with the number of items (random
// item samples doubling in size, Fig. 7b), for the four proposed methods.
func Figure7(env *Env, userFactors []int, itemCounts []int, params config.Params) (*Figure7Result, error) {
	res := &Figure7Result{}
	methods := OurMethods()
	for _, f := range userFactors {
		ds := env.DS.CloneUsers(f)
		w, err := ds.WTP(env.Lambda)
		if err != nil {
			return nil, err
		}
		p := ScalePoint{Label: fmt.Sprintf("users×%d", f), Users: ds.Users, Items: ds.Items, Seconds: map[Method]float64{}}
		for _, m := range methods {
			start := time.Now()
			if _, err := Run(m, w, params); err != nil {
				return nil, err
			}
			p.Seconds[m] = time.Since(start).Seconds()
		}
		res.UserSweep = append(res.UserSweep, p)
	}
	rng := rand.New(rand.NewSource(1))
	for _, n := range itemCounts {
		ds := env.DS.SampleItems(n, rng)
		w, err := ds.WTP(env.Lambda)
		if err != nil {
			return nil, err
		}
		p := ScalePoint{Label: fmt.Sprintf("items=%d", ds.Items), Users: ds.Users, Items: ds.Items, Seconds: map[Method]float64{}}
		for _, m := range methods {
			start := time.Now()
			if _, err := Run(m, w, params); err != nil {
				return nil, err
			}
			p.Seconds[m] = time.Since(start).Seconds()
		}
		res.ItemSweep = append(res.ItemSweep, p)
	}
	return res, nil
}

// Render prints both sweeps.
func (r *Figure7Result) Render() string {
	out := ""
	sections := []struct {
		name  string
		sweep []ScalePoint
	}{
		{"Figure 7(a): running time vs number of users", r.UserSweep},
		{"Figure 7(b): running time vs number of items", r.ItemSweep},
	}
	for _, sec := range sections {
		name, sweep := sec.name, sec.sweep
		if len(sweep) == 0 {
			continue
		}
		headers := []string{"workload", "users", "items"}
		for _, m := range OurMethods() {
			headers = append(headers, string(m)+" (s)")
		}
		t := tabular.New(name, headers...)
		for _, p := range sweep {
			row := []string{p.Label, fmt.Sprintf("%d", p.Users), fmt.Sprintf("%d", p.Items)}
			for _, m := range OurMethods() {
				row = append(row, fmt.Sprintf("%.3f", p.Seconds[m]))
			}
			t.AddRow(row...)
		}
		out += t.String() + "\n"
	}
	return out
}
