package codec

import (
	"bundling/internal/wtp"
)

// EncodeSpan renders a stripe span as one codec envelope: the layout
// dimensions as varints, the snapshot version as a fixed 8-byte word
// (session nonces carry their high bit set, which a varint would balloon to
// ten bytes), and the three columns — per-stripe offsets, posting ids, WTP
// values. Offsets and ids are monotonic runs that reset at stripe and item
// boundaries, so the zigzag deltas are mostly single bytes.
func EncodeSpan(d *wtp.SpanDoc) []byte {
	dst := appendHeader(make([]byte, 0, hdrLen+40+2*len(d.Offs)+2*len(d.IDs)+9*len(d.Vals)), kindSpan)
	return appendSpanPayload(dst, d)
}

// appendSpanPayload appends the headerless span body (shared with the assign
// envelope).
func appendSpanPayload(dst []byte, d *wtp.SpanDoc) []byte {
	dst = appendDim(dst, d.Consumers)
	dst = appendDim(dst, d.Items)
	dst = appendDim(dst, d.StripeSize)
	dst = appendDim(dst, d.Start)
	dst = appendDim(dst, d.End)
	dst = appendFixed64(dst, d.Version)
	dst = appendInt32Column(dst, d.Offs)
	dst = appendInt32Column(dst, d.IDs)
	dst = appendFloatColumn(dst, d.Vals)
	return dst
}

// DecodeSpan parses one span envelope. The decoder only reconstructs the
// document; structural validation (offset monotonicity, posting ranges)
// stays with SpanDoc.Store, exactly as on the JSON path, so a worker rejects
// a semantically corrupt span identically however it arrived.
func DecodeSpan(buf []byte) (*wtp.SpanDoc, error) {
	r := &reader{buf: buf}
	if err := r.header(kindSpan); err != nil {
		return nil, err
	}
	d, err := readSpanPayload(r)
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return d, nil
}

// readSpanPayload reads the headerless span body.
func readSpanPayload(r *reader) (*wtp.SpanDoc, error) {
	d := &wtp.SpanDoc{}
	var err error
	if d.Consumers, err = r.dim(); err != nil {
		return nil, err
	}
	if d.Items, err = r.dim(); err != nil {
		return nil, err
	}
	if d.StripeSize, err = r.dim(); err != nil {
		return nil, err
	}
	if d.Start, err = r.dim(); err != nil {
		return nil, err
	}
	if d.End, err = r.dim(); err != nil {
		return nil, err
	}
	if d.Version, err = r.fixed64(); err != nil {
		return nil, err
	}
	if d.Offs, err = r.int32Column(); err != nil {
		return nil, err
	}
	if d.IDs, err = r.int32Column(); err != nil {
		return nil, err
	}
	if d.Vals, err = r.floatColumn(); err != nil {
		return nil, err
	}
	return d, nil
}

// EncodeAssign renders a span-feed request — the corpus key (interned) plus
// the span — as one codec envelope, the binary body of POST /v1/spans/{corpus}.
func EncodeAssign(corpus string, span *wtp.SpanDoc) []byte {
	dst := appendHeader(make([]byte, 0, hdrLen+48+len(corpus)+2*len(span.Offs)+2*len(span.IDs)+9*len(span.Vals)), kindAssign)
	dst = appendStringTable(dst, []string{corpus})
	dst = appendDim(dst, 0) // corpus key ref
	return appendSpanPayload(dst, span)
}

// DecodeAssign parses one assign envelope back into its corpus key and span.
func DecodeAssign(buf []byte) (corpus string, span *wtp.SpanDoc, err error) {
	r := &reader{buf: buf}
	if err := r.header(kindAssign); err != nil {
		return "", nil, err
	}
	table, err := r.stringTable()
	if err != nil {
		return "", nil, err
	}
	if corpus, err = r.stringRef(table); err != nil {
		return "", nil, err
	}
	if span, err = readSpanPayload(r); err != nil {
		return "", nil, err
	}
	if err := r.done(); err != nil {
		return "", nil, err
	}
	return corpus, span, nil
}
