package cluster

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"bundling"
)

// clusterDelta draws a random mutation batch against the current dimensions:
// adds, updates of likely-occupied cells, deletes (some of absent cells) and
// duplicate coordinates, mirroring the wtp-level differential harness.
func clusterDelta(rng *rand.Rand, consumers, items, n int) []bundling.DeltaCell {
	cells := make([]bundling.DeltaCell, 0, n)
	for len(cells) < n {
		c := bundling.DeltaCell{Consumer: rng.Intn(consumers), Item: rng.Intn(items)}
		switch rng.Intn(4) {
		case 0:
			c.Delete = true
		default:
			c.Value = rng.Float64() * 20
		}
		cells = append(cells, c)
	}
	return cells
}

// replayMatrix rebuilds the corpus from scratch: the seed matrix re-generated
// plus every delta batch replayed through the plain Set/Delete mutation path.
func replayMatrix(t *testing.T, consumers, items int, seed int64, history [][]bundling.DeltaCell) *bundling.Matrix {
	t.Helper()
	w := testMatrix(t, consumers, items, seed)
	for _, batch := range history {
		for _, c := range batch {
			if c.Delete {
				if err := w.Delete(c.Consumer, c.Item); err != nil {
					t.Fatal(err)
				}
			} else {
				w.MustSet(c.Consumer, c.Item, c.Value)
			}
		}
	}
	return w
}

// TestClusterDeltaMatchesRebuild is the fleet half of the differential
// harness: random delta chains applied through the coordinator's span-scoped
// delta feeds must match a from-scratch local rebuild within 1e-9 on all
// five algorithms and Evaluate, over a 2-worker in-process fleet.
func TestClusterDeltaMatchesRebuild(t *testing.T) {
	const consumers, items, seed = 150, 12, 2
	for _, strategy := range []bundling.Strategy{bundling.Pure, bundling.Mixed} {
		opts := bundling.Options{Strategy: strategy, Theta: -0.1, StripeSize: 16}
		w := testMatrix(t, consumers, items, seed)
		_, transports := fleet(2)
		cs, err := NewSolver(w, opts, Config{Workers: transports})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed * 7))
		var history [][]bundling.DeltaCell
		for round := 0; round < 3; round++ {
			cells := clusterDelta(rng, consumers, items, 5+rng.Intn(10))
			history = append(history, cells)
			next, err := cs.ApplyDelta(cells)
			if err != nil {
				t.Fatal(err)
			}
			cs.Close()
			cs = next
			local, err := bundling.NewSolver(replayMatrix(t, consumers, items, seed, history), opts)
			if err != nil {
				t.Fatal(err)
			}
			// A delta bumps the version once per batch while the replay's
			// Set/Delete path counts every mutation, so compare everything
			// but the counter.
			gotStats, wantStats := cs.Stats(), local.Stats()
			gotStats.Version, wantStats.Version = 0, 0
			if gotStats != wantStats {
				t.Fatalf("round %d: stats %+v != %+v", round, gotStats, wantStats)
			}
			for _, alg := range bundling.Algorithms() {
				want, err := local.Solve(alg)
				if err != nil {
					t.Fatal(err)
				}
				got, err := cs.Solve(alg)
				if err != nil {
					t.Fatal(err)
				}
				sameConfig(t, alg.Name()+"/"+strategy.String(), got, want)
			}
			want, err := local.Evaluate(evalOffers())
			if err != nil {
				t.Fatal(err)
			}
			got, err := cs.Evaluate(evalOffers())
			if err != nil {
				t.Fatal(err)
			}
			sameConfig(t, "evaluate/"+strategy.String(), got, want)
		}
		st := cs.ClusterStats()
		if st.DeltaFeeds == 0 {
			t.Fatalf("strategy %v: no delta feeds recorded: %+v", strategy, st)
		}
		if st.DeltaFallbacks != 0 {
			t.Fatalf("strategy %v: unexpected delta fallbacks: %+v", strategy, st)
		}
		cs.Close()
	}
}

// plainTransport hides the DeltaTransport extension of a Local transport, so
// the coordinator must take the full-feed fallback.
type plainTransport struct{ l *Local }

func (p plainTransport) Assign(ctx context.Context, corpus string, req *AssignRequest) error {
	return p.l.Assign(ctx, corpus, req)
}
func (p plainTransport) Drop(ctx context.Context, corpus string) error {
	return p.l.Drop(ctx, corpus)
}
func (p plainTransport) Vector(ctx context.Context, corpus string, req VectorRequest) (VectorResponse, error) {
	return p.l.Vector(ctx, corpus, req)
}
func (p plainTransport) Union(ctx context.Context, corpus string, req UnionRequest) (VectorResponse, error) {
	return p.l.Union(ctx, corpus, req)
}
func (p plainTransport) Stats(ctx context.Context, corpus string, req StatsRequest) (StatsResponse, error) {
	return p.l.Stats(ctx, corpus, req)
}
func (p plainTransport) Hist(ctx context.Context, corpus string, req HistRequest) (HistResponse, error) {
	return p.l.Hist(ctx, corpus, req)
}
func (p plainTransport) Health(ctx context.Context) (WorkerHealth, error) {
	return p.l.Health(ctx)
}
func (p plainTransport) Addr() string { return p.l.Addr() }

// TestClusterDeltaFallback drives the two fallback legs: a transport without
// delta support and a worker that lost the base span both converge through a
// full span feed, with the fallback counted.
func TestClusterDeltaFallback(t *testing.T) {
	const consumers, items, seed = 96, 10, 3
	opts := bundling.Options{StripeSize: 16}
	cells := []bundling.DeltaCell{{Consumer: 3, Item: 2, Value: 9.5}, {Consumer: 90, Item: 1, Delete: true}}
	local, err := bundling.NewSolver(replayMatrix(t, consumers, items, seed, [][]bundling.DeltaCell{cells}), opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.Solve(bundling.Matching())
	if err != nil {
		t.Fatal(err)
	}

	t.Run("no_delta_transport", func(t *testing.T) {
		workers, _ := fleet(2)
		transports := []Transport{
			plainTransport{NewLocal(workers[0], "w0")},
			plainTransport{NewLocal(workers[1], "w1")},
		}
		cs, err := NewSolver(testMatrix(t, consumers, items, seed), opts, Config{Workers: transports})
		if err != nil {
			t.Fatal(err)
		}
		defer cs.Close()
		next, err := cs.ApplyDelta(cells)
		if err != nil {
			t.Fatal(err)
		}
		defer next.Close()
		got, err := next.Solve(bundling.Matching())
		if err != nil {
			t.Fatal(err)
		}
		sameConfig(t, "no_delta_transport", got, want)
		st := next.ClusterStats()
		if st.DeltaFeeds != 0 || st.DeltaFallbacks == 0 {
			t.Fatalf("expected only fallbacks: %+v", st)
		}
	})

	t.Run("missing_base_span", func(t *testing.T) {
		workers, transports := fleet(2)
		cs, err := NewSolver(testMatrix(t, consumers, items, seed), opts, Config{Workers: transports})
		if err != nil {
			t.Fatal(err)
		}
		defer cs.Close()
		cs.exec.feeding.Wait()
		// Evict every base span: the workers reject the delta rebase with
		// ErrSpan and the coordinator must re-ship the spans whole.
		for _, sl := range cs.exec.spans {
			for _, wk := range workers {
				_ = wk.Drop(sl.key)
			}
		}
		next, err := cs.ApplyDelta(cells)
		if err != nil {
			t.Fatal(err)
		}
		defer next.Close()
		got, err := next.Solve(bundling.Matching())
		if err != nil {
			t.Fatal(err)
		}
		sameConfig(t, "missing_base_span", got, want)
		st := next.ClusterStats()
		if st.DeltaFeeds != 0 || st.DeltaFallbacks == 0 {
			t.Fatalf("expected only fallbacks: %+v", st)
		}
	})
}

// TestClusterDeltaConcurrentSolves mutates the corpus while solves run on
// the base session over the fleet — the race detector's view of the
// copy-on-write claim at the coordinator layer.
func TestClusterDeltaConcurrentSolves(t *testing.T) {
	const consumers, items, seed = 120, 10, 4
	opts := bundling.Options{StripeSize: 16}
	_, transports := fleet(2)
	base, err := NewSolver(testMatrix(t, consumers, items, seed), opts, Config{Workers: transports})
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Solve(bundling.Greedy())
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, err := base.Solve(bundling.Greedy())
				if err != nil {
					t.Error(err)
					return
				}
				sameConfig(t, "concurrent base solve", got, want)
			}
		}()
	}
	rng := rand.New(rand.NewSource(seed))
	cur := base
	var derived []*Solver
	for round := 0; round < 5; round++ {
		next, err := cur.ApplyDelta(clusterDelta(rng, consumers, items, 6))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := next.Solve(bundling.Matching()); err != nil {
			t.Fatal(err)
		}
		derived = append(derived, next)
		cur = next
	}
	close(stop)
	wg.Wait()
	base.Close()
	for _, s := range derived {
		s.Close()
	}
}
