package config

import (
	"runtime"
	"sync"

	"bundling/internal/pricing"
)

// parallelism resolves the effective worker count.
func (p Params) parallelism() int {
	if p.Parallelism > 0 {
		return p.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// pairJob is one candidate merge to evaluate.
type pairJob struct {
	u, v int
}

// pairResult is the outcome of evaluating one candidate merge.
type pairResult struct {
	u, v   int
	merged *node
	gain   float64
}

// evalPairs prices every candidate pair concurrently. Each worker owns a
// private Pricer (the pricer's scratch buffers are not goroutine-safe).
// Results preserve no particular order; infeasible or non-gaining merges
// are dropped.
func (e *engine) evalPairs(nodes []*node, jobs []pairJob) []pairResult {
	if len(jobs) == 0 {
		return nil
	}
	workers := e.params.parallelism()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		out := make([]pairResult, 0, len(jobs))
		for _, j := range jobs {
			if merged, gain := e.evalMergeWith(e.pr, nodes[j.u], nodes[j.v]); merged != nil && gain > minGain {
				out = append(out, pairResult{u: j.u, v: j.v, merged: merged, gain: gain})
			}
		}
		return out
	}
	results := make([]pairResult, len(jobs))
	var wg sync.WaitGroup
	next := make(chan int) // job indices
	for w := 0; w < workers; w++ {
		pr, err := e.params.pricer()
		if err != nil {
			// Params were validated at engine construction; a failure here
			// is a programming error.
			panic(err)
		}
		wg.Add(1)
		go func(pr *pricing.Pricer) {
			defer wg.Done()
			for idx := range next {
				j := jobs[idx]
				if merged, gain := e.evalMergeWith(pr, nodes[j.u], nodes[j.v]); merged != nil && gain > minGain {
					results[idx] = pairResult{u: j.u, v: j.v, merged: merged, gain: gain}
				}
			}
		}(pr)
	}
	for idx := range jobs {
		next <- idx
	}
	close(next)
	wg.Wait()
	out := make([]pairResult, 0, len(jobs))
	for _, r := range results {
		if r.merged != nil {
			out = append(out, r)
		}
	}
	return out
}
