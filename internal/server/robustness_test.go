package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bundling"
)

// gatedSolver wraps a real solver but holds every solve until release is
// closed (or the run's context ends), signalling each start on started.
type gatedSolver struct {
	Solver
	release chan struct{}
	started chan struct{}
}

func (g *gatedSolver) SolveContext(ctx context.Context, a bundling.Algorithm) (*bundling.Configuration, error) {
	g.started <- struct{}{}
	select {
	case <-g.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return g.Solver.SolveContext(ctx, a)
}

func (g *gatedSolver) EvaluateContext(ctx context.Context, offers [][]int) (*bundling.Configuration, error) {
	g.started <- struct{}{}
	select {
	case <-g.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return g.Solver.EvaluateContext(ctx, offers)
}

// gatedServer builds a server whose sessions block in the engine until the
// returned release channel is closed.
func gatedServer(t *testing.T, cfg Config) (*Server, *httptest.Server, chan struct{}, chan struct{}) {
	t.Helper()
	release := make(chan struct{})
	started := make(chan struct{}, 64)
	cfg.CacheEntries = -1 // every request must reach the engine
	cfg.NewSolver = func(w *bundling.Matrix, o bundling.Options) (Solver, error) {
		inner, err := bundling.NewSolver(w, o)
		if err != nil {
			return nil, err
		}
		return &gatedSolver{Solver: inner, release: release, started: started}, nil
	}
	srv := New(cfg)
	t.Cleanup(srv.Close)
	if err := Preload(srv, "c", testMatrix(t, 40, 6, 1), bundling.Options{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, release, started
}

// TestOverloadShedsWithRetryAfter: with one execution slot busy and
// queueing disabled, the next solve is shed immediately — 503, Retry-After,
// and the shed counter on /metrics — while the in-flight run completes
// normally once released.
func TestOverloadShedsWithRetryAfter(t *testing.T) {
	_, ts, release, started := gatedServer(t, Config{MaxConcurrent: 1, MaxQueue: -1})
	firstDone := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts, "/v1/corpora/c/solve", `{"algorithm":"matching"}`)
		firstDone <- resp.StatusCode
	}()
	<-started // the first request holds the only slot inside the engine
	resp, body := postJSON(t, ts, "/v1/corpora/c/solve", `{"algorithm":"greedy"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second solve = %d (%s), want 503", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Fatal("503 without a Retry-After header")
	}
	if !strings.Contains(body, "overloaded") {
		t.Fatalf("shed body = %q", body)
	}
	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("first solve = %d after release, want 200", code)
	}
	mresp, metrics := postGet(t, ts, "/metrics")
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", mresp.StatusCode)
	}
	if !strings.Contains(metrics, "bundled_shed_requests_total 1") {
		t.Fatal("shed request not counted on /metrics")
	}
}

// TestOverloadQueueAdmits: a queued request gets the slot when the holder
// releases it inside the queue timeout — bounded waiting, not a shed.
func TestOverloadQueueAdmits(t *testing.T) {
	_, ts, release, started := gatedServer(t, Config{MaxConcurrent: 1, MaxQueue: 1, QueueTimeout: 5 * time.Second})
	firstDone := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts, "/v1/corpora/c/solve", `{"algorithm":"matching"}`)
		firstDone <- resp.StatusCode
	}()
	<-started
	secondDone := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts, "/v1/corpora/c/solve", `{"algorithm":"greedy"}`)
		secondDone <- resp.StatusCode
	}()
	// Give the second request time to enter the queue, then release the
	// gate: both runs finish.
	time.Sleep(50 * time.Millisecond)
	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("first solve = %d, want 200", code)
	}
	if code := <-secondDone; code != http.StatusOK {
		t.Fatalf("queued solve = %d, want 200", code)
	}
}

// TestDeadlineBudget504: a run that outlives the server's DefaultTimeout
// returns 504 and bumps the deadline counter.
func TestDeadlineBudget504(t *testing.T) {
	_, ts, release, _ := gatedServer(t, Config{DefaultTimeout: 30 * time.Millisecond})
	defer close(release) // never released within the budget
	resp, body := postJSON(t, ts, "/v1/corpora/c/solve", `{"algorithm":"matching"}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("solve = %d (%s), want 504", resp.StatusCode, body)
	}
	_, metrics := postGet(t, ts, "/metrics")
	if !strings.Contains(metrics, "bundled_deadline_exceeded_total 1") {
		t.Fatal("deadline expiry not counted on /metrics")
	}
}

// TestDeadlineHeader overrides the budget per request: a tiny X-Deadline-Ms
// times the run out on a server with no default budget; a malformed value
// is the client's 400.
func TestDeadlineHeader(t *testing.T) {
	_, ts, release, _ := gatedServer(t, Config{})
	defer close(release)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/corpora/c/evaluate", strings.NewReader(`{"offers":[[0,1],[2]]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(deadlineHeader, "20")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("evaluate with %s: %d, want 504", deadlineHeader, resp.StatusCode)
	}
	for _, bad := range []string{"0", "-5", "soon"} {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/corpora/c/solve", strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(deadlineHeader, bad)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s=%q: %d, want 400", deadlineHeader, bad, resp.StatusCode)
		}
	}
}

// panicSolver blows up inside the handler's solve path.
type panicSolver struct{ Solver }

func (p *panicSolver) SolveContext(context.Context, bundling.Algorithm) (*bundling.Configuration, error) {
	panic("solver exploded")
}

// TestPanicRecovery: a handler panic becomes a 500 with the panic counter
// bumped; the server keeps serving afterwards.
func TestPanicRecovery(t *testing.T) {
	srv := New(Config{
		CacheEntries: -1,
		NewSolver: func(w *bundling.Matrix, o bundling.Options) (Solver, error) {
			inner, err := bundling.NewSolver(w, o)
			if err != nil {
				return nil, err
			}
			return &panicSolver{Solver: inner}, nil
		},
	})
	defer srv.Close()
	if err := Preload(srv, "c", testMatrix(t, 40, 6, 1), bundling.Options{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, body := postJSON(t, ts, "/v1/corpora/c/solve", `{"algorithm":"matching"}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking solve = %d (%s), want 500", resp.StatusCode, body)
	}
	if !strings.Contains(body, "internal error") {
		t.Fatalf("500 body = %q", body)
	}
	// The daemon survives: metadata requests still answer.
	resp2, metrics := postGet(t, ts, "/metrics")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("/metrics after panic = %d", resp2.StatusCode)
	}
	if !strings.Contains(metrics, "bundled_handler_panics_total 1") {
		t.Fatal("panic not counted on /metrics")
	}
}

// TestHealthWorkerStatus: a configured WorkerStatus hook surfaces breaker
// state in the health payload.
func TestHealthWorkerStatus(t *testing.T) {
	srv := New(Config{
		WorkerStatus: func() []WorkerStatusDoc {
			return []WorkerStatusDoc{{Addr: "w0", State: "open", FailureRate: 1, Trips: 2, RetryInMs: 350}}
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, body := postGet(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d (%s)", resp.StatusCode, body)
	}
	var hr HealthResponse
	if err := decodeString(body, &hr); err != nil {
		t.Fatal(err)
	}
	if len(hr.Workers) != 1 || hr.Workers[0].State != "open" || hr.Workers[0].Trips != 2 {
		t.Fatalf("workers = %+v", hr.Workers)
	}
}

// TestExtraMetricsRendered: ExtraMetrics rows land in the exposition with
// their labels, one header per metric name.
func TestExtraMetricsRendered(t *testing.T) {
	srv := New(Config{
		ExtraMetrics: func() ([]GaugeRow, []CounterRow) {
			return []GaugeRow{
					{Name: "bundled_worker_breaker_open", Help: "Breaker open (1) per worker.", Labels: `worker="w0"`, Value: 1},
					{Name: "bundled_worker_breaker_open", Labels: `worker="w1"`, Value: 0},
				}, []CounterRow{
					{Name: "bundled_worker_breaker_trips_total", Help: "Breaker trips per worker.", Labels: `worker="w0"`, Value: 3},
				}
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	_, body := postGet(t, ts, "/metrics")
	for _, want := range []string{
		`bundled_worker_breaker_open{worker="w0"} 1`,
		`bundled_worker_breaker_open{worker="w1"} 0`,
		`bundled_worker_breaker_trips_total{worker="w0"} 3`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("missing %q in exposition:\n%s", want, body)
		}
	}
	if strings.Count(body, "# TYPE bundled_worker_breaker_open gauge") != 1 {
		t.Fatal("labelled gauge rows must share one TYPE header")
	}
}

// TestBatcherCallerCancel: a waiter whose context ends stops waiting
// immediately; the batch itself completes for everyone else.
func TestBatcherCallerCancel(t *testing.T) {
	release := make(chan struct{})
	b := newBatcher(1, 0, 0, func(ctx context.Context, offers [][]int) (*bundling.Configuration, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &bundling.Configuration{Revenue: 7}, nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := b.do(ctx, "k", [][]int{{0}})
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the call enter its pass
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled waiter did not return")
	}
	// The pass itself still completes once released: a second waiter on
	// the same batcher gets a result.
	close(release)
	cfg, _, err := b.do(context.Background(), "k2", [][]int{{1}})
	if err != nil || cfg.Revenue != 7 {
		t.Fatalf("post-cancel evaluate: cfg=%+v err=%v", cfg, err)
	}
}

// TestBatcherBudget: with a batch budget set and no caller deadline, a
// stuck evaluation fails with DeadlineExceeded instead of hanging the
// drainer forever.
func TestBatcherBudget(t *testing.T) {
	b := newBatcher(1, 0, 30*time.Millisecond, func(ctx context.Context, offers [][]int) (*bundling.Configuration, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	_, _, err := b.do(context.Background(), "k", [][]int{{0}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// postGet is postJSON's GET sibling.
func postGet(t testing.TB, ts *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := copyAll(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, sb.String()
}
