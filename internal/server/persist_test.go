package server_test

// Restart round-trip regression: corpora uploaded to a durable server must
// be served identically — within 1e-9 — by a fresh server booted on the same
// data directory, with generation counters continuing where they left off.
// The cluster variant proves a restored session re-feeds its worker spans
// through the existing nonce path.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bundling"
	"bundling/internal/cluster"
	"bundling/internal/server"
)

// persistMatrix builds a small deterministic WTP matrix.
func persistMatrix(consumers, items int, seed int64) *bundling.Matrix {
	rng := rand.New(rand.NewSource(seed))
	w := bundling.NewMatrix(consumers, items)
	for u := 0; u < consumers; u++ {
		for i := 0; i < items; i++ {
			if rng.Float64() < 0.4 {
				w.MustSet(u, i, 1+rng.Float64()*19)
			}
		}
	}
	return w
}

// do issues one JSON request and decodes the response body.
func do(t *testing.T, method, url, key, body string) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(buf)
}

// uploadBody renders a CreateCorpusRequest for a matrix.
func uploadBody(t *testing.T, id string, w *bundling.Matrix, opts bundling.Options) string {
	t.Helper()
	buf, err := json.Marshal(server.CreateCorpusRequest{
		ID:      id,
		Options: server.NewOptionsDoc(opts),
		Matrix:  bundling.NewMatrixDoc(w),
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// solveRevenue solves a corpus over HTTP and returns the full response.
func solveResult(t *testing.T, ts *httptest.Server, key, id, alg string) server.SolveResponse {
	t.Helper()
	code, body := do(t, http.MethodPost, ts.URL+"/v1/corpora/"+id+"/solve", key, fmt.Sprintf(`{"algorithm":%q}`, alg))
	if code != http.StatusOK {
		t.Fatalf("solve %s/%s: %d: %s", id, alg, code, body)
	}
	var resp server.SolveResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("solve %s/%s: %v", id, alg, err)
	}
	return resp
}

// sameConfig asserts two configurations agree within 1e-9 on revenue and on
// every bundle's price and revenue.
func sameConfig(t *testing.T, label string, a, b server.ConfigDoc) {
	t.Helper()
	close := func(x, y float64) bool { return math.Abs(x-y) <= 1e-9*(1+math.Abs(x)) }
	if !close(a.Revenue, b.Revenue) || !close(a.Profit, b.Profit) {
		t.Errorf("%s: revenue/profit %g/%g vs %g/%g", label, a.Revenue, a.Profit, b.Revenue, b.Profit)
	}
	if len(a.Bundles) != len(b.Bundles) {
		t.Errorf("%s: %d bundles vs %d", label, len(a.Bundles), len(b.Bundles))
		return
	}
	for i := range a.Bundles {
		if !close(a.Bundles[i].Price, b.Bundles[i].Price) || !close(a.Bundles[i].Revenue, b.Bundles[i].Revenue) {
			t.Errorf("%s: bundle %d %+v vs %+v", label, i, a.Bundles[i], b.Bundles[i])
		}
	}
}

func TestRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := server.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := server.Config{Store: st}
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())

	type corpus struct {
		id   string
		w    *bundling.Matrix
		opts bundling.Options
	}
	corpora := []corpus{
		{"pure-a", persistMatrix(90, 18, 1), bundling.Options{}},
		{"mixed-b", persistMatrix(70, 14, 2), bundling.Options{Strategy: bundling.Mixed, Theta: -0.03}},
		{"pure-c", persistMatrix(50, 10, 3), bundling.Options{Theta: 0.05, StripeSize: 16}},
	}
	algs := []string{"components", "matching", "greedy"}
	before := map[string]server.SolveResponse{}
	for _, c := range corpora {
		if code, body := do(t, http.MethodPost, ts.URL+"/v1/corpora", "", uploadBody(t, c.id, c.w, c.opts)); code != http.StatusCreated {
			t.Fatalf("upload %s: %d: %s", c.id, code, body)
		}
		for _, alg := range algs {
			before[c.id+"/"+alg] = solveResult(t, ts, "", c.id, alg)
		}
	}
	// Re-upload one corpus so a generation > 1 is persisted and restored;
	// its snapshots move to the new generation.
	if code, body := do(t, http.MethodPost, ts.URL+"/v1/corpora", "", uploadBody(t, "pure-a", corpora[0].w, corpora[0].opts)); code != http.StatusCreated {
		t.Fatalf("re-upload: %d: %s", code, body)
	}
	for _, alg := range algs {
		before["pure-a/"+alg] = solveResult(t, ts, "", "pure-a", alg)
	}
	// Delete one corpus: the delete must be durable too.
	if code, body := do(t, http.MethodDelete, ts.URL+"/v1/corpora/pure-c", "", ""); code != http.StatusNoContent {
		t.Fatalf("delete: %d: %s", code, body)
	}
	for _, alg := range algs {
		delete(before, "pure-c/"+alg)
	}

	ts.Close()
	srv.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// --- reboot on the same data dir ------------------------------------
	st2, err := server.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	srv2 := server.New(server.Config{Store: st2})
	defer srv2.Close()
	restored, err := srv2.Restore()
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if restored != 2 {
		t.Fatalf("restored %d sessions, want 2", restored)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	if code, body := do(t, http.MethodGet, ts2.URL+"/v1/corpora/pure-c", "", ""); code != http.StatusNotFound {
		t.Errorf("deleted corpus after restart: %d: %s", code, body)
	}
	for key, want := range before {
		id, alg, _ := strings.Cut(key, "/")
		got := solveResult(t, ts2, "", id, alg)
		sameConfig(t, key, want.Config, got.Config)
		if got.Version != want.Version {
			t.Errorf("%s: version %d after restart, want %d", key, got.Version, want.Version)
		}
	}

	// Post-restart uploads continue the generation sequences — including
	// the deleted ID's, so its old cache keys can never be reused.
	var info server.CorpusInfo
	code, body := do(t, http.MethodPost, ts2.URL+"/v1/corpora", "", uploadBody(t, "pure-a", corpora[0].w, corpora[0].opts))
	if code != http.StatusCreated {
		t.Fatalf("post-restart re-upload: %d: %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatal(err)
	}
	if info.Version != 3 {
		t.Errorf("pure-a generation after restart re-upload = %d, want 3", info.Version)
	}
	code, body = do(t, http.MethodPost, ts2.URL+"/v1/corpora", "", uploadBody(t, "pure-c", corpora[2].w, corpora[2].opts))
	if code != http.StatusCreated {
		t.Fatalf("re-create deleted: %d: %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 {
		t.Errorf("re-created deleted corpus generation = %d, want 2", info.Version)
	}
}

// TestLazyBootDoesNotReadRecords pins the O(manifest) boot contract: a
// restart must serve /healthz and listings from manifest metadata alone —
// no record file is opened — and each corpus re-indexes lazily on its first
// solve, with results identical within 1e-9. The proof is blunt: every
// record file is replaced with garbage before the reboot, so any boot-time
// read would fail loudly.
func TestLazyBootDoesNotReadRecords(t *testing.T) {
	dir := t.TempDir()
	st, err := server.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Store: st})
	ts := httptest.NewServer(srv.Handler())
	ids := []string{"a", "b", "c"}
	want := map[string]server.SolveResponse{}
	for i, id := range ids {
		w := persistMatrix(60+10*i, 12, int64(40+i))
		if code, body := do(t, http.MethodPost, ts.URL+"/v1/corpora", "", uploadBody(t, id, w, bundling.Options{Theta: -0.02})); code != http.StatusCreated {
			t.Fatalf("upload %s: %d: %s", id, code, body)
		}
		want[id] = solveResult(t, ts, "", id, "matching")
	}
	ts.Close()
	srv.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Poison every record file. Boot must not notice.
	recFiles, err := filepath.Glob(filepath.Join(dir, "corpora", "*"))
	if err != nil || len(recFiles) != len(ids) {
		t.Fatalf("record files = %v, %v; want %d", recFiles, err, len(ids))
	}
	saved := map[string][]byte{}
	for _, f := range recFiles {
		buf, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		saved[f] = buf
		if err := os.WriteFile(f, []byte("not a record"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	st2, err := server.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	srv2 := server.New(server.Config{Store: st2})
	defer srv2.Close()
	restored, err := srv2.Restore()
	if err != nil {
		t.Fatalf("lazy restore read a record file: %v", err)
	}
	if restored != len(ids) {
		t.Fatalf("restored = %d, want %d", restored, len(ids))
	}
	if n := srv2.Sessions(); n != 0 {
		t.Fatalf("boot indexed %d sessions; lazy restore must index none", n)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if code, body := do(t, http.MethodGet, ts2.URL+"/healthz", "", ""); code != http.StatusOK {
		t.Fatalf("healthz after lazy boot: %d: %s", code, body)
	}
	code, body := do(t, http.MethodGet, ts2.URL+"/v1/corpora", "", "")
	if code != http.StatusOK {
		t.Fatalf("list after lazy boot: %d: %s", code, body)
	}
	var list server.ListCorporaResponse
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Corpora) != len(ids) {
		t.Fatalf("listing shows %d corpora, want %d: %s", len(list.Corpora), len(ids), body)
	}
	if n := srv2.Sessions(); n != 0 {
		t.Fatalf("listing indexed %d sessions; must serve from manifest metadata", n)
	}

	// Heal the files; each first solve re-indexes through the read-through
	// path and must match the pre-restart result exactly.
	for f, buf := range saved {
		if err := os.WriteFile(f, buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids {
		got := solveResult(t, ts2, "", id, "matching")
		sameConfig(t, id+"/matching", want[id].Config, got.Config)
		if got.Version != want[id].Version {
			t.Errorf("%s: version %d after lazy restore, want %d", id, got.Version, want[id].Version)
		}
	}
	if n := srv2.Sessions(); n != len(ids) {
		t.Errorf("after first solves, %d sessions live, want %d", n, len(ids))
	}
}

// TestRestartRoundTripCluster reboots a durable daemon whose engine is the
// cluster coordinator: restored sessions must re-feed worker spans (fresh
// nonce, eager feed — the existing upload path) and serve identical results.
func TestRestartRoundTripCluster(t *testing.T) {
	wk := cluster.NewWorker(cluster.WorkerConfig{})
	transports := []cluster.Transport{cluster.NewLocal(wk, "w0")}
	clusterCfg := func(st *server.Store) server.Config {
		return server.Config{
			Store: st,
			NewSolver: func(w *bundling.Matrix, opts bundling.Options) (server.Solver, error) {
				return cluster.NewSolver(w, opts, cluster.Config{Workers: transports})
			},
		}
	}

	dir := t.TempDir()
	st, err := server.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(clusterCfg(st))
	ts := httptest.NewServer(srv.Handler())
	w := persistMatrix(120, 20, 7)
	opts := bundling.Options{StripeSize: 32}
	if code, body := do(t, http.MethodPost, ts.URL+"/v1/corpora", "", uploadBody(t, "clustered", w, opts)); code != http.StatusCreated {
		t.Fatalf("upload: %d: %s", code, body)
	}
	want := solveResult(t, ts, "", "clustered", "matching")
	ts.Close()
	srv.Close() // drops the session's spans from the worker
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if h, _ := transports[0].Health(context.Background()); len(h.Spans) != 0 {
		t.Fatalf("worker still holds %d spans after shutdown", len(h.Spans))
	}

	st2, err := server.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	srv2 := server.New(clusterCfg(st2))
	defer srv2.Close()
	if restored, err := srv2.Restore(); err != nil || restored != 1 {
		t.Fatalf("restore: %d, %v", restored, err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	got := solveResult(t, ts2, "", "clustered", "matching")
	sameConfig(t, "clustered/matching", want.Config, got.Config)
	// By the end of the solve the restored session has fed its spans back
	// to the fleet — eagerly at restore, or lazily through the nonce path.
	if h, _ := transports[0].Health(context.Background()); len(h.Spans) == 0 {
		t.Fatal("restored session fed no spans to the worker")
	}

	// Against a local (non-cluster) engine the restored corpus must price
	// identically too — persistence round-trips the exact matrix.
	direct, err := bundling.NewSolver(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := direct.Solve(bundling.Matching())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ref.Revenue-got.Config.Revenue) > 1e-9*(1+math.Abs(ref.Revenue)) {
		t.Errorf("cluster restore revenue %g vs direct %g", got.Config.Revenue, ref.Revenue)
	}
}
