package server

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"bundling"
)

// TestBatcherCoalesces pins the micro-batcher's contract deterministically:
// while one evaluation is in flight, identical concurrent requests queue
// up, drain as a single batch, and share one execution.
func TestBatcherCoalesces(t *testing.T) {
	const dupes = 8
	var executions atomic.Int64
	firstRunning := make(chan struct{})
	release := make(chan struct{})
	b := newBatcher(2, 0, 0, func(_ context.Context, offers [][]int) (*bundling.Configuration, error) {
		n := executions.Add(1)
		if n == 1 {
			close(firstRunning)
			<-release // hold the drainer so later submissions pile up
		}
		return &bundling.Configuration{Revenue: float64(len(offers))}, nil
	})
	var sizes [][2]int
	var mu sync.Mutex
	b.onBatch = func(size, unique int) {
		mu.Lock()
		sizes = append(sizes, [2]int{size, unique})
		mu.Unlock()
	}

	// Block the drainer on a first, distinct request.
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		if _, _, err := b.do(context.Background(), "blocker", [][]int{{0}}); err != nil {
			t.Errorf("blocker: %v", err)
		}
	}()
	<-firstRunning

	// Pile identical requests onto the queue while the drainer is held.
	var wg sync.WaitGroup
	var batched atomic.Int64
	results := make([]*bundling.Configuration, dupes)
	for i := 0; i < dupes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg, wasBatched, err := b.do(context.Background(), "dup", [][]int{{1, 2}})
			if err != nil {
				t.Errorf("dup %d: %v", i, err)
				return
			}
			results[i] = cfg
			if wasBatched {
				batched.Add(1)
			}
		}(i)
	}
	// Wait until all dupes are queued, then let the drainer go.
	for {
		b.mu.Lock()
		n := len(b.pending)
		b.mu.Unlock()
		if n == dupes {
			break
		}
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	<-blockerDone

	// The blocker executed once; the dupes collapsed into one execution.
	if got := executions.Load(); got != 2 {
		t.Errorf("executions = %d, want 2 (blocker + one shared dup pass)", got)
	}
	if got := batched.Load(); got != dupes-1 {
		t.Errorf("batched results = %d, want %d", got, dupes-1)
	}
	for i, cfg := range results {
		if cfg == nil || cfg.Revenue != results[0].Revenue {
			t.Errorf("result %d diverged: %+v", i, cfg)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	var sawCoalesced bool
	for _, s := range sizes {
		if s[0] == dupes && s[1] == 1 {
			sawCoalesced = true
		}
	}
	if !sawCoalesced {
		t.Errorf("no batch of %d requests / 1 unique observed; batches: %v", dupes, sizes)
	}
}

// TestBatcherDistinctKeys checks distinct concurrent requests all execute
// and return their own results.
func TestBatcherDistinctKeys(t *testing.T) {
	b := newBatcher(4, 0, 0, func(_ context.Context, offers [][]int) (*bundling.Configuration, error) {
		return &bundling.Configuration{Revenue: float64(offers[0][0])}, nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg, _, err := b.do(context.Background(), fmt.Sprintf("k%d", i), [][]int{{i}})
			if err != nil {
				t.Errorf("k%d: %v", i, err)
				return
			}
			if cfg.Revenue != float64(i) {
				t.Errorf("k%d: got revenue %g", i, cfg.Revenue)
			}
		}(i)
	}
	wg.Wait()
}

// TestBatcherRecoversPanic pins the crash containment: the batch runs on
// the drainer goroutine outside net/http's per-request recovery, so an
// engine panic must surface as that request's error, not kill the process.
func TestBatcherRecoversPanic(t *testing.T) {
	b := newBatcher(1, 0, 0, func(_ context.Context, offers [][]int) (*bundling.Configuration, error) {
		panic("shard is stale")
	})
	_, _, err := b.do(context.Background(), "k", [][]int{{0}})
	if err == nil || !strings.Contains(err.Error(), "shard is stale") {
		t.Fatalf("err = %v, want recovered panic", err)
	}
	// The batcher must stay usable after a recovered panic.
	b.eval = func(_ context.Context, offers [][]int) (*bundling.Configuration, error) {
		return &bundling.Configuration{Revenue: 7}, nil
	}
	cfg, _, err := b.do(context.Background(), "k2", [][]int{{1}})
	if err != nil || cfg.Revenue != 7 {
		t.Fatalf("post-panic call: cfg=%+v err=%v", cfg, err)
	}
}

// TestBatcherError propagates evaluation errors to every coalesced waiter.
func TestBatcherError(t *testing.T) {
	b := newBatcher(1, 0, 0, func(_ context.Context, offers [][]int) (*bundling.Configuration, error) {
		return nil, fmt.Errorf("boom")
	})
	if _, _, err := b.do(context.Background(), "k", [][]int{{0}}); err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
}
