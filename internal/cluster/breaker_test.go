package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bundling"
)

// errTransport is a stub worker whose query calls fail (or succeed) on
// demand, counting every call that reaches it.
type errTransport struct {
	name  string
	fail  atomic.Bool
	calls atomic.Int64
}

func (e *errTransport) op() error {
	e.calls.Add(1)
	if e.fail.Load() {
		return fmt.Errorf("%s: connection refused", e.name)
	}
	return nil
}

func (e *errTransport) Assign(context.Context, string, *AssignRequest) error { return e.op() }
func (e *errTransport) Drop(context.Context, string) error                   { return e.op() }
func (e *errTransport) Vector(context.Context, string, VectorRequest) (VectorResponse, error) {
	return VectorResponse{}, e.op()
}
func (e *errTransport) Union(context.Context, string, UnionRequest) (VectorResponse, error) {
	return VectorResponse{}, e.op()
}
func (e *errTransport) Stats(context.Context, string, StatsRequest) (StatsResponse, error) {
	return StatsResponse{}, e.op()
}
func (e *errTransport) Hist(context.Context, string, HistRequest) (HistResponse, error) {
	return HistResponse{}, e.op()
}
func (e *errTransport) Health(context.Context) (WorkerHealth, error) {
	e.calls.Add(1)
	return WorkerHealth{}, nil
}
func (e *errTransport) Addr() string { return e.name }

// breakerAt builds a breaker over t with a controllable clock.
func breakerAt(t *errTransport, clock *time.Time, cfg BreakerConfig) *Breaker {
	cfg.now = func() time.Time { return *clock }
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	return NewBreaker(t, cfg)
}

// TestBreakerTripsAndRejects: enough failures open the breaker; open calls
// are rejected with ErrBreakerOpen without reaching the worker.
func TestBreakerTripsAndRejects(t *testing.T) {
	tr := &errTransport{name: "w0"}
	tr.fail.Store(true)
	clock := time.Unix(0, 0)
	b := breakerAt(tr, &clock, BreakerConfig{MinSamples: 3, Window: 10})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := b.Vector(ctx, "c", VectorRequest{}); err == nil {
			t.Fatal("stub should fail")
		}
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after %d failures = %v, want open", 3, got)
	}
	before := tr.calls.Load()
	_, err := b.Vector(ctx, "c", VectorRequest{})
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker error = %v, want ErrBreakerOpen", err)
	}
	if tr.calls.Load() != before {
		t.Fatal("open breaker still dialed the worker")
	}
	snap := b.Snapshot()
	if snap.State != "open" || snap.Trips != 1 || snap.Rejected == 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.RetryInMs <= 0 {
		t.Fatalf("open snapshot retry_in_ms = %d, want > 0", snap.RetryInMs)
	}
}

// TestBreakerProbesAndRecovers: after the cooldown one probe goes through;
// success closes the breaker, and the cooldown ladder resets.
func TestBreakerProbesAndRecovers(t *testing.T) {
	tr := &errTransport{name: "w0"}
	tr.fail.Store(true)
	clock := time.Unix(0, 0)
	b := breakerAt(tr, &clock, BreakerConfig{MinSamples: 2, Window: 4, Cooldown: time.Second, MaxCooldown: time.Minute})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		_, _ = b.Stats(ctx, "c", StatsRequest{})
	}
	if b.State() != BreakerOpen {
		t.Fatal("breaker should be open")
	}
	// Still inside the cooldown (jitter keeps it within [0.75s, 1.25s]).
	clock = clock.Add(500 * time.Millisecond)
	if _, err := b.Stats(ctx, "c", StatsRequest{}); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("mid-cooldown error = %v, want ErrBreakerOpen", err)
	}
	// Past the worst-case jittered cooldown: the next call is the probe.
	clock = clock.Add(time.Second)
	tr.fail.Store(false)
	before := tr.calls.Load()
	if _, err := b.Stats(ctx, "c", StatsRequest{}); err != nil {
		t.Fatalf("probe: %v", err)
	}
	if tr.calls.Load() != before+1 {
		t.Fatal("probe did not reach the worker")
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
}

// TestBreakerReopensWithBackoff: a failing probe re-opens with a doubled
// cooldown.
func TestBreakerReopensWithBackoff(t *testing.T) {
	tr := &errTransport{name: "w0"}
	tr.fail.Store(true)
	clock := time.Unix(0, 0)
	b := breakerAt(tr, &clock, BreakerConfig{MinSamples: 2, Window: 4, Cooldown: time.Second, MaxCooldown: time.Minute})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		_, _ = b.Hist(ctx, "c", HistRequest{})
	}
	first := b.Snapshot().RetryInMs
	clock = clock.Add(2 * time.Second) // past the first cooldown
	_, _ = b.Hist(ctx, "c", HistRequest{})
	if b.State() != BreakerOpen {
		t.Fatal("failed probe should re-open")
	}
	second := b.Snapshot().RetryInMs
	// First cooldown ∈ [750, 1250]ms, second ∈ [1500, 2500]ms: doubled
	// modulo jitter.
	if second <= first {
		t.Fatalf("re-open cooldown %dms not longer than first %dms", second, first)
	}
	if got := b.Snapshot().Trips; got != 2 {
		t.Fatalf("trips = %d, want 2", got)
	}
}

// TestBreakerSpanRejectionIsSuccess: ErrSpan proves the worker is alive; a
// run of stale-span rejections must not trip the breaker.
func TestBreakerSpanRejectionIsSuccess(t *testing.T) {
	tr := &errTransport{name: "w0"}
	clock := time.Unix(0, 0)
	b := breakerAt(tr, &clock, BreakerConfig{MinSamples: 2, Window: 4})
	stale := &staleTransport{}
	b.t = stale
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := b.Vector(ctx, "c", VectorRequest{}); !errors.Is(err, ErrSpan) {
			t.Fatalf("err = %v, want ErrSpan", err)
		}
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after stale-span run = %v, want closed", got)
	}
}

// staleTransport always reports the span missing.
type staleTransport struct{ errTransport }

func (s *staleTransport) Vector(context.Context, string, VectorRequest) (VectorResponse, error) {
	return VectorResponse{}, fmt.Errorf("%w: stub", ErrSpan)
}

// TestBreakerCanceledCallUnrecorded: a caller hanging up mid-call says
// nothing about the worker and must not move the window.
func TestBreakerCanceledCallUnrecorded(t *testing.T) {
	tr := &errTransport{name: "w0"}
	tr.fail.Store(true)
	clock := time.Unix(0, 0)
	b := breakerAt(tr, &clock, BreakerConfig{MinSamples: 2, Window: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 10; i++ {
		_, _ = b.Union(ctx, "c", UnionRequest{})
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after canceled calls = %v, want closed", got)
	}
	if got := b.Snapshot().Samples; got != 0 {
		t.Fatalf("window samples = %d, want 0", got)
	}
}

// TestBreakerHealthUngated: health probes bypass an open breaker so
// readiness keeps observing the real worker.
func TestBreakerHealthUngated(t *testing.T) {
	tr := &errTransport{name: "w0"}
	tr.fail.Store(true)
	clock := time.Unix(0, 0)
	b := breakerAt(tr, &clock, BreakerConfig{MinSamples: 2, Window: 4})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		_, _ = b.Vector(ctx, "c", VectorRequest{})
	}
	if b.State() != BreakerOpen {
		t.Fatal("breaker should be open")
	}
	before := tr.calls.Load()
	if _, err := b.Health(ctx); err != nil {
		t.Fatalf("health through open breaker: %v", err)
	}
	if tr.calls.Load() != before+1 {
		t.Fatal("health probe did not reach the worker")
	}
}

// TestBreakerConcurrent hammers one breaker from many goroutines while the
// worker flaps, under -race; the assertions are "no race, no deadlock, and
// the breaker ends closed after the worker recovers".
func TestBreakerConcurrent(t *testing.T) {
	tr := &errTransport{name: "w0"}
	b := NewBreaker(tr, BreakerConfig{MinSamples: 4, Window: 16, Cooldown: time.Millisecond, MaxCooldown: 4 * time.Millisecond, Seed: 7})
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.fail.Store(i < 100 && i%3 != 0)
				_, _ = b.Vector(ctx, "c", VectorRequest{})
				_ = b.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	tr.fail.Store(false)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := b.Vector(ctx, "c", VectorRequest{}); err == nil && b.State() == BreakerClosed {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("breaker did not close after recovery; state=%v snapshot=%+v", b.State(), b.Snapshot())
}

// TestBreakerSkipsToReplica: an open primary breaker must not consume the
// request timeout — the coordinator's ladder counts the skip and serves
// from the replica, so results stay exact.
func TestBreakerSkipsToReplica(t *testing.T) {
	w := testMatrix(t, 120, 10, 5)
	opts := bundling.Options{StripeSize: 16}
	local, err := bundling.NewSolver(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, transports := fleet(2)
	// Wrap worker 0 in a breaker and trip it by hand.
	b := NewBreaker(transports[0], BreakerConfig{MinSamples: 1, Window: 2, Cooldown: time.Hour, MaxCooldown: time.Hour, Seed: 3})
	b.mu.Lock()
	b.trip()
	b.mu.Unlock()
	cs, err := NewSolver(w, opts, Config{Workers: []Transport{b, transports[1]}})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	for _, alg := range bundling.Algorithms() {
		want, err := local.Solve(alg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cs.Solve(alg)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		sameConfig(t, alg.Name()+"/breaker-open", got, want)
	}
	st := cs.ClusterStats()
	if st.BreakerSkips == 0 {
		t.Fatal("no breaker skips counted")
	}
	if st.ReplicaRetries == 0 {
		t.Fatal("no replica retries counted")
	}
}
