package server

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bundling"
	"bundling/internal/obs"
)

// TestRequestIDOnEveryResponse asserts the X-Request-Id contract: every
// response through the handler carries one — 2xx, 4xx and 5xx alike — and
// JSON error bodies repeat it as request_id so a copy-pasted error is
// enough to find the server-side log line.
func TestRequestIDOnEveryResponse(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if err := Preload(srv, "ids", testMatrix(t, 40, 10, 1), bundling.Options{}); err != nil {
		t.Fatal(err)
	}

	resp, _ := postJSON(t, ts, "/v1/corpora/ids/solve", `{"algorithm":"matching"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d", resp.StatusCode)
	}
	if resp.Header.Get(obs.HeaderRequest) == "" {
		t.Error("2xx response missing X-Request-Id")
	}
	if resp.Header.Get(obs.HeaderTrace) == "" {
		t.Error("2xx response missing X-Trace-Id")
	}

	resp, body := postJSON(t, ts, "/v1/corpora/nope/solve", `{"algorithm":"matching"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing corpus: %d", resp.StatusCode)
	}
	reqID := resp.Header.Get(obs.HeaderRequest)
	if reqID == "" {
		t.Error("4xx response missing X-Request-Id")
	}
	var apiErr ErrorResponse
	if err := decodeString(body, &apiErr); err != nil {
		t.Fatal(err)
	}
	if apiErr.RequestID != reqID {
		t.Errorf("error body request_id %q != header %q", apiErr.RequestID, reqID)
	}

	// Untraced paths still get a request ID, but no trace.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.Header.Get(obs.HeaderRequest) == "" {
		t.Error("/healthz missing X-Request-Id")
	}
	if hr.Header.Get(obs.HeaderTrace) != "" {
		t.Error("/healthz unexpectedly traced")
	}
}

// TestDebugTracesEndpoint drives a solve and asserts the ring serves its
// trace back: newest first, root "request" span annotated with corpus and
// algorithm, and the solve stage present underneath.
func TestDebugTracesEndpoint(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if err := Preload(srv, "tr", testMatrix(t, 60, 12, 2), bundling.Options{}); err != nil {
		t.Fatal(err)
	}
	resp, _ := postJSON(t, ts, "/v1/corpora/tr/solve", `{"algorithm":"matching"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d", resp.StatusCode)
	}
	traceID := resp.Header.Get(obs.HeaderTrace)

	tresp, body := getBody(t, ts, "/debug/traces?limit=5")
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces: %d: %s", tresp.StatusCode, body)
	}
	var tl TracesResponse
	if err := decodeString(body, &tl); err != nil {
		t.Fatal(err)
	}
	if len(tl.Traces) == 0 {
		t.Fatal("no traces in ring")
	}
	doc := tl.Traces[0]
	if doc.TraceID != traceID {
		t.Fatalf("newest trace %q != solve trace %q", doc.TraceID, traceID)
	}
	if doc.RootTag("algorithm") != "matching" || doc.RootTag("corpus") != "tr" {
		t.Errorf("root tags: algorithm=%q corpus=%q", doc.RootTag("algorithm"), doc.RootTag("corpus"))
	}
	names := map[string]bool{}
	for _, sp := range doc.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"request", "queue", "solve", "price_candidates"} {
		if !names[want] {
			t.Errorf("trace missing %q span (have %v)", want, names)
		}
	}

	// Bad limit is a 400, not a panic or a silent default.
	bresp, _ := getBody(t, ts, "/debug/traces?limit=zero")
	if bresp.StatusCode != http.StatusBadRequest {
		t.Errorf("limit=zero: %d, want 400", bresp.StatusCode)
	}
}

// TestTracingDisabled asserts TraceRing < 0 turns the subsystem off: no
// X-Trace-Id, a 404 from /debug/traces, and X-Request-Id still present.
func TestTracingDisabled(t *testing.T) {
	srv := New(Config{TraceRing: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if err := Preload(srv, "off", testMatrix(t, 30, 8, 3), bundling.Options{}); err != nil {
		t.Fatal(err)
	}
	resp, _ := postJSON(t, ts, "/v1/corpora/off/solve", `{"algorithm":"matching"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d", resp.StatusCode)
	}
	if resp.Header.Get(obs.HeaderTrace) != "" {
		t.Error("X-Trace-Id present with tracing disabled")
	}
	if resp.Header.Get(obs.HeaderRequest) == "" {
		t.Error("X-Request-Id missing with tracing disabled")
	}
	tresp, _ := getBody(t, ts, "/debug/traces")
	if tresp.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/traces with tracing disabled: %d, want 404", tresp.StatusCode)
	}
}

// TestCallerTraceIDJoins asserts a caller-supplied X-Trace-Id is adopted,
// joining the server's spans to the caller's distributed trace.
func TestCallerTraceIDJoins(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if err := Preload(srv, "join", testMatrix(t, 30, 8, 4), bundling.Options{}); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/corpora/join/solve",
		strings.NewReader(`{"algorithm":"matching"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.HeaderTrace, "cafe0123cafe0123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.HeaderTrace); got != "cafe0123cafe0123" {
		t.Errorf("X-Trace-Id %q, want caller's cafe0123cafe0123", got)
	}
}

// TestRequestLogAndSlowDump asserts the structured request line carries the
// correlation fields and that a request past the slow budget dumps its span
// tree.
func TestRequestLogAndSlowDump(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	srv := New(Config{Logger: logger, SlowRequest: 1}) // 1ns: everything is slow
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if err := Preload(srv, "slow", testMatrix(t, 40, 10, 5), bundling.Options{}); err != nil {
		t.Fatal(err)
	}
	resp, _ := postJSON(t, ts, "/v1/corpora/slow/solve", `{"algorithm":"greedy"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d", resp.StatusCode)
	}
	traceID := resp.Header.Get(obs.HeaderTrace)
	out := buf.String()
	for _, want := range []string{
		`"msg":"request"`, traceID, `"algorithm":"greedy"`, `"corpus":"slow"`, `"status":200`,
		`"msg":"slow request"`, "price_candidates", // span tree dump includes stage names
	} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
}

// TestHealthzBuildInfo asserts the enriched health document: corpus count,
// uptime and Go build info.
func TestHealthzBuildInfo(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if err := Preload(srv, "hi", testMatrix(t, 20, 6, 6), bundling.Options{}); err != nil {
		t.Fatal(err)
	}
	_, body := getBody(t, ts, "/healthz")
	var h HealthResponse
	if err := decodeString(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status %q", h.Status)
	}
	if h.Corpora != 1 || h.Sessions != 1 {
		t.Errorf("corpora=%d sessions=%d, want 1/1", h.Corpora, h.Sessions)
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("uptime %f < 0", h.UptimeSeconds)
	}
	if !strings.HasPrefix(h.GoVersion, "go") {
		t.Errorf("go_version %q", h.GoVersion)
	}
}

// TestPprofGate asserts /debug/pprof serves only when enabled.
func TestPprofGate(t *testing.T) {
	on := New(Config{Pprof: true})
	defer on.Close()
	tsOn := httptest.NewServer(on.Handler())
	defer tsOn.Close()
	resp, _ := getBody(t, tsOn, "/debug/pprof/heap?debug=1")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof enabled: heap profile %d, want 200", resp.StatusCode)
	}

	off := New(Config{})
	defer off.Close()
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	resp, _ = getBody(t, tsOff, "/debug/pprof/heap")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof disabled: heap profile %d, want 404", resp.StatusCode)
	}
}

// TestDebugTracesAuthGuarded asserts traces sit behind tenant auth when the
// daemon is multi-tenant — span tags carry corpus names and algorithms,
// which are tenant data.
func TestDebugTracesAuthGuarded(t *testing.T) {
	auth, err := ParseAuthKeys("alice=sk-alice")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Auth: auth})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, _ := getBody(t, ts, "/debug/traces")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated /debug/traces: %d, want 401", resp.StatusCode)
	}
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/debug/traces", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer sk-alice")
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("authenticated /debug/traces: %d, want 200", r2.StatusCode)
	}
}

// TestStageMetricsRendered asserts span timings feed the
// bundled_stage_seconds histogram family and the runtime gauges render.
func TestStageMetricsRendered(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if err := Preload(srv, "sm", testMatrix(t, 40, 10, 7), bundling.Options{}); err != nil {
		t.Fatal(err)
	}
	if resp, _ := postJSON(t, ts, "/v1/corpora/sm/solve", `{"algorithm":"matching"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d", resp.StatusCode)
	}
	_, metrics := getBody(t, ts, "/metrics")
	for _, want := range []string{
		`bundled_stage_seconds_bucket{stage="solve"`,
		`bundled_stage_seconds_bucket{stage="request"`,
		"bundled_goroutines",
		"bundled_heap_alloc_bytes",
		"bundled_gc_runs_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// getBody GETs a path and returns the response and body text.
func getBody(t testing.TB, ts *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := copyAll(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, sb.String()
}
