// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 6). Each experiment is a pure function from an
// environment (dataset + willingness-to-pay matrix) and a parameter sweep
// to a result struct that renders as a paper-style table; cmd/bundlebench
// and the root bench suite drive them at configurable scales.
package experiments

import (
	"fmt"

	"bundling/internal/config"
	"bundling/internal/dataset"
	"bundling/internal/wtp"
)

// DefaultLambda is the conversion factor the paper fixes after the Table 2
// calibration.
const DefaultLambda = 1.25

// Scale sizes the synthetic corpus an experiment runs on. The paper's full
// scale (4,449 × 5,028) is available via FullScale; the default BenchScale
// keeps every experiment minutes-fast on a laptop while preserving the
// qualitative shapes.
type Scale struct {
	Users          int
	Items          int
	RatingsPerUser float64
	MinDegree      int
	Seed           int64
}

// BenchScale is the default reduced scale used by tests and benchmarks.
func BenchScale() Scale {
	return Scale{Users: 600, Items: 150, RatingsPerUser: 18, MinDegree: 5, Seed: 42}
}

// SmallScale is an even smaller scale for unit tests.
func SmallScale() Scale {
	return Scale{Users: 200, Items: 60, RatingsPerUser: 12, MinDegree: 3, Seed: 42}
}

// FullScale matches the paper's corpus statistics.
func FullScale() Scale {
	cfg := dataset.PaperScaleConfig()
	return Scale{Users: cfg.Users, Items: cfg.Items, RatingsPerUser: cfg.RatingsPerUser, MinDegree: cfg.MinDegree, Seed: cfg.Seed}
}

// Env is a prepared experimental environment.
type Env struct {
	DS     *dataset.Dataset
	W      *wtp.Matrix // at Lambda
	Lambda float64
}

// Setup generates the corpus at the given scale and converts it to a WTP
// matrix at conversion factor λ.
func Setup(scale Scale, lambda float64) (*Env, error) {
	ds, err := dataset.Generate(dataset.GenConfig{
		Users:          scale.Users,
		Items:          scale.Items,
		RatingsPerUser: scale.RatingsPerUser,
		MinDegree:      scale.MinDegree,
		Seed:           scale.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: generate dataset: %w", err)
	}
	w, err := ds.WTP(lambda)
	if err != nil {
		return nil, fmt.Errorf("experiments: build WTP: %w", err)
	}
	return &Env{DS: ds, W: w, Lambda: lambda}, nil
}

// Method identifies a comparative method from Sec. 6.1.3.
type Method string

// The seven comparative methods of the evaluation.
const (
	Components       Method = "Components"
	PureMatching     Method = "Pure Matching"
	PureGreedy       Method = "Pure Greedy"
	MixedMatching    Method = "Mixed Matching"
	MixedGreedy      Method = "Mixed Greedy"
	PureFreqItemset  Method = "Pure FreqItemset"
	MixedFreqItemset Method = "Mixed FreqItemset"
)

// AllMethods lists the methods in the paper's presentation order.
func AllMethods() []Method {
	return []Method{Components, PureMatching, PureGreedy, MixedMatching, MixedGreedy, PureFreqItemset, MixedFreqItemset}
}

// OurMethods lists only the paper's proposed methods.
func OurMethods() []Method {
	return []Method{PureMatching, PureGreedy, MixedMatching, MixedGreedy}
}

// Plan resolves a comparative method to the Algorithm that implements it
// and the parameters it runs under (the method's own strategy overrides
// params.Strategy). Experiments drive the generic Algorithm interface, so
// a new algorithm only needs a Method row here to join every sweep.
func Plan(m Method, params config.Params) (config.Algorithm, config.Params, error) {
	switch m {
	case Components:
		return config.ComponentsAlgorithm(), params, nil
	case PureMatching:
		params.Strategy = config.Pure
		return config.MatchingAlgorithm(), params, nil
	case PureGreedy:
		params.Strategy = config.Pure
		return config.GreedyAlgorithm(), params, nil
	case MixedMatching:
		params.Strategy = config.Mixed
		return config.MatchingAlgorithm(), params, nil
	case MixedGreedy:
		params.Strategy = config.Mixed
		return config.GreedyAlgorithm(), params, nil
	case PureFreqItemset:
		params.Strategy = config.Pure
		return config.FreqItemsetAlgorithm(config.DefaultFreqItemsetOptions()), params, nil
	case MixedFreqItemset:
		params.Strategy = config.Mixed
		return config.FreqItemsetAlgorithm(config.DefaultFreqItemsetOptions()), params, nil
	default:
		return nil, params, fmt.Errorf("experiments: unknown method %q", m)
	}
}

// Run executes a method on w with the base parameters via a throwaway
// session; sweeps that rerun methods on one matrix should build a Solver
// with Plan and reuse it.
func Run(m Method, w *wtp.Matrix, params config.Params) (*config.Configuration, error) {
	alg, p, err := Plan(m, params)
	if err != nil {
		return nil, err
	}
	s, err := config.NewSolver(w, p)
	if err != nil {
		return nil, err
	}
	return s.Solve(alg)
}
