package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCoverage(t *testing.T) {
	// The paper's own example (Sec. 6.1.2): $11 revenue out of $20 total
	// willingness to pay is 55% coverage.
	if got := Coverage(11, 20); math.Abs(got-55) > 1e-12 {
		t.Errorf("Coverage(11, 20) = %g, want 55", got)
	}
	if got := Coverage(20, 20); got != 100 {
		t.Errorf("perfect coverage = %g, want 100", got)
	}
	if got := Coverage(5, 0); got != 0 {
		t.Errorf("zero total should give 0, got %g", got)
	}
	if got := Coverage(5, -1); got != 0 {
		t.Errorf("negative total should give 0, got %g", got)
	}
}

func TestGain(t *testing.T) {
	// The paper's example: $11 vs $10 components is a 10% gain.
	if got := Gain(11, 10); math.Abs(got-10) > 1e-12 {
		t.Errorf("Gain(11, 10) = %g, want 10", got)
	}
	if got := Gain(10, 10); got != 0 {
		t.Errorf("no-change gain = %g, want 0", got)
	}
	if got := Gain(9, 10); math.Abs(got+10) > 1e-12 {
		t.Errorf("Gain(9, 10) = %g, want -10", got)
	}
	if got := Gain(5, 0); got != 0 {
		t.Errorf("zero baseline should give 0, got %g", got)
	}
}

func TestQuickCoverageScaleInvariant(t *testing.T) {
	f := func(rev, total, scale float64) bool {
		r, tot := math.Abs(rev), math.Abs(total)+1
		s := math.Abs(scale) + 0.5
		if math.IsInf(r*s, 0) || math.IsInf(tot*s, 0) {
			return true
		}
		return math.Abs(Coverage(r, tot)-Coverage(r*s, tot*s)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
