package experiments

import (
	"fmt"
	"time"

	"bundling/internal/config"
	"bundling/internal/metrics"
	"bundling/internal/tabular"
)

// TradeoffSeries is one method's revenue-vs-time curve (Fig. 6): the
// cumulative revenue gain over Components after each iteration, with the
// cumulative elapsed time.
type TradeoffSeries struct {
	Method     Method
	Iterations int
	Total      time.Duration
	Points     []TradeoffPoint
}

// TradeoffPoint is one iteration of an anytime bundling algorithm.
type TradeoffPoint struct {
	Iteration int
	Elapsed   time.Duration
	Gain      float64 // revenue gain (%) over Components so far
	Coverage  float64 // revenue coverage (%) so far
}

// Figure6Result holds the four curves of Fig. 6 (a: mixed, b: pure).
type Figure6Result struct {
	Series []TradeoffSeries
}

// Figure6 traces the revenue/time trade-off of the matching-based and
// greedy algorithms for both strategies. At θ = 0 the synthetic corpus
// (independent star values) gives pure bundling no merges, which would
// collapse the pure traces to a point; like the WSP comparison, the
// experiment substitutes a mild complementarity θ = 0.05 in that case
// (see EXPERIMENTS.md).
func Figure6(env *Env, params config.Params) (*Figure6Result, error) {
	if params.Theta == 0 {
		params.Theta = 0.05
	}
	comp, err := config.Components(env.W, params)
	if err != nil {
		return nil, err
	}
	res := &Figure6Result{}
	for _, m := range []Method{MixedMatching, MixedGreedy, PureMatching, PureGreedy} {
		cfg, err := Run(m, env.W, params)
		if err != nil {
			return nil, err
		}
		s := TradeoffSeries{Method: m, Iterations: cfg.Iterations}
		for _, st := range cfg.Trace {
			s.Points = append(s.Points, TradeoffPoint{
				Iteration: st.Iteration,
				Elapsed:   st.Elapsed,
				Gain:      metrics.Gain(st.Revenue, comp.Revenue),
				Coverage:  metrics.Coverage(st.Revenue, env.W.Total()),
			})
			s.Total = st.Elapsed
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Render prints each curve; long greedy traces are decimated to at most 12
// rows, always keeping the first and last iterations.
func (r *Figure6Result) Render() string {
	out := ""
	for _, s := range r.Series {
		t := tabular.New(
			fmt.Sprintf("Figure 6: %s — %d iterations, %.2fs total", s.Method, s.Iterations, s.Total.Seconds()),
			"iteration", "elapsed(s)", "gain%", "coverage%")
		pts := decimate(s.Points, 12)
		for _, p := range pts {
			t.AddRow(
				fmt.Sprintf("%d", p.Iteration),
				fmt.Sprintf("%.3f", p.Elapsed.Seconds()),
				fmt.Sprintf("%+.2f", p.Gain),
				fmt.Sprintf("%.1f", p.Coverage),
			)
		}
		out += t.String() + "\n"
	}
	return out
}

func decimate(pts []TradeoffPoint, maxRows int) []TradeoffPoint {
	if len(pts) <= maxRows {
		return pts
	}
	out := make([]TradeoffPoint, 0, maxRows)
	step := float64(len(pts)-1) / float64(maxRows-1)
	for i := 0; i < maxRows; i++ {
		out = append(out, pts[int(float64(i)*step+0.5)])
	}
	out[maxRows-1] = pts[len(pts)-1]
	return out
}
