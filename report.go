package bundling

import (
	"fmt"
	"sort"
)

// Report is a serialization-friendly summary of a configuration, suitable
// for JSON output and downstream tooling (see cmd/bundle).
type Report struct {
	Strategy   string        `json:"strategy"`
	Items      int           `json:"items"`
	Consumers  int           `json:"consumers"`
	Revenue    float64       `json:"expected_revenue"`
	Profit     float64       `json:"expected_profit"`
	Surplus    float64       `json:"consumer_surplus"`
	Coverage   float64       `json:"revenue_coverage_pct"`
	Iterations int           `json:"iterations"`
	Offers     []OfferReport `json:"offers"`
}

// OfferReport is one priced offer of the configuration.
type OfferReport struct {
	Items []int   `json:"items"`
	Price float64 `json:"price"`
	// Kind is "bundle" for top-level bundles, "component" for retained
	// sub-bundles under mixed bundling.
	Kind string `json:"kind"`
	// Revenue is the offer's expected standalone revenue; for merged mixed
	// bundles it is the incremental revenue over the components.
	Revenue float64 `json:"expected_revenue"`
}

// NewReport summarizes a configuration against its WTP matrix.
func NewReport(cfg *Configuration, w *Matrix) *Report {
	r := &Report{
		Strategy:   cfg.Strategy.String(),
		Items:      w.Items(),
		Consumers:  w.Consumers(),
		Revenue:    cfg.Revenue,
		Profit:     cfg.Profit,
		Surplus:    cfg.Surplus,
		Coverage:   Coverage(cfg, w),
		Iterations: cfg.Iterations,
	}
	for _, b := range cfg.Bundles {
		r.Offers = append(r.Offers, OfferReport{Items: b.Items, Price: b.Price, Kind: "bundle", Revenue: b.Revenue})
	}
	for _, c := range cfg.Components {
		r.Offers = append(r.Offers, OfferReport{Items: c.Items, Price: c.Price, Kind: "component", Revenue: c.Revenue})
	}
	sort.SliceStable(r.Offers, func(i, j int) bool {
		a, b := r.Offers[i], r.Offers[j]
		if len(a.Items) != len(b.Items) {
			return len(a.Items) > len(b.Items)
		}
		return a.Items[0] < b.Items[0]
	})
	return r
}

// String renders a compact human-readable summary.
func (r *Report) String() string {
	s := fmt.Sprintf("%s bundling: %d offers, expected revenue %.2f (%.1f%% coverage)",
		r.Strategy, len(r.Offers), r.Revenue, r.Coverage)
	return s
}
