// Command bundlestat is the fleet-introspection console of a bundled
// deployment. It polls the server's workload accounting (GET /v1/usage) and,
// on a cluster coordinator, the merged fleet view (GET /debug/fleet), and
// renders the busiest tenants, the hottest corpora, and each worker's load
// and breaker state as plain-text tables.
//
// Usage:
//
//	bundlestat -addr http://localhost:8080              # one snapshot
//	bundlestat -addr http://localhost:8080 -watch       # refreshing console
//	bundlestat -addr ... -api-key sk-alice              # tenant-scoped view
//
// Against a non-cluster daemon the fleet section is simply omitted (the
// endpoint answers 404); against a daemon started with accounting disabled
// (-usage-topk -1) bundlestat reports that and exits non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"bundling/client"
)

// options collects the console's flag values.
type options struct {
	addr     string
	apiKey   string
	watch    bool
	interval time.Duration
	top      int
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "http://localhost:8080", "bundled server base URL")
	flag.StringVar(&o.apiKey, "api-key", "", "tenant API key (Authorization: Bearer) for authenticated daemons")
	flag.BoolVar(&o.watch, "watch", false, "refresh the console every -interval instead of printing once")
	flag.DurationVar(&o.interval, "interval", 2*time.Second, "refresh period in -watch mode")
	flag.IntVar(&o.top, "top", 10, "rows shown per table")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "bundlestat:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	c := client.New(o.addr, nil)
	if o.apiKey != "" {
		c = c.WithAPIKey(o.apiKey)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if !o.watch {
		return render(ctx, os.Stdout, c, o.top, false)
	}
	tick := time.NewTicker(o.interval)
	defer tick.Stop()
	for {
		if err := render(ctx, os.Stdout, c, o.top, true); err != nil {
			return err
		}
		select {
		case <-ctx.Done():
			fmt.Println()
			return nil
		case <-tick.C:
		}
	}
}

// render fetches one usage+fleet snapshot and writes the console view.
func render(ctx context.Context, w io.Writer, c *client.Client, top int, clear bool) error {
	use, err := c.Usage(ctx)
	if err != nil {
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && apiErr.StatusCode == 404 {
			return errors.New("server has workload accounting disabled (/v1/usage is 404)")
		}
		return err
	}
	fleet, err := c.Fleet(ctx)
	if err != nil {
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
			return err
		}
		fleet = nil // single-node daemon: no fleet view to show
	}
	if clear {
		fmt.Fprint(w, "\x1b[H\x1b[2J") // cursor home + clear, a poor man's watch(1)
	}
	scope := use.Scope
	if use.Tenant != "" {
		scope += " (" + use.Tenant + ")"
	}
	fmt.Fprintf(w, "bundled usage @ %s  scope=%s  window=%.0fs\n\n",
		time.Now().Format("15:04:05"), scope, use.WindowSeconds)
	usageTable(w, "TENANT", use.Tenants, top)
	usageTable(w, "CORPUS", use.Corpora, top)
	if fleet != nil {
		fleetTable(w, fleet)
	}
	return nil
}

// usageTable renders one meter dimension, busiest rows first.
func usageTable(w io.Writer, label string, rows []client.UsageRow, top int) {
	if len(rows) == 0 {
		fmt.Fprintf(w, "%s: no traffic yet\n\n", strings.ToLower(label))
		return
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\tREQS\tERRS\tHITS\tRATE/S\tIN\tOUT\tWALL\n", label)
	for i, r := range rows {
		if i >= top {
			fmt.Fprintf(tw, "… %d more\t\t\t\t\t\t\t\n", len(rows)-i)
			break
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.2f\t%s\t%s\t%.2fs\n",
			r.Key, r.Requests, r.Errors, r.CacheHits, r.RatePerSec,
			sizeOf(r.BytesIn), sizeOf(r.BytesOut), r.WallSeconds)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// fleetTable renders the per-worker load/breaker join.
func fleetTable(w io.Writer, fleet *client.FleetResponse) {
	fmt.Fprintf(w, "fleet: %d/%d workers reachable (probe %.1fms)\n",
		fleet.Reachable, len(fleet.Workers), fleet.ProbeMS)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "WORKER\tSTATE\tSPANS\tSPAN REQS\tRPCS\tERRS\tSKIPS\tEWMA\tBREAKER\n")
	for _, wk := range fleet.Workers {
		state := "down"
		if wk.Reachable {
			state = wk.Status
		} else if wk.Error != "" {
			state = "down: " + truncate(wk.Error, 40)
		}
		var spanReqs int64
		for _, sp := range wk.Spans {
			spanReqs += sp.Requests
		}
		rpcs, errs, skips, ewma := "-", "-", "-", "-"
		if wk.Load != nil {
			rpcs = fmt.Sprintf("%d", wk.Load.RPCs)
			errs = fmt.Sprintf("%d", wk.Load.Errors)
			skips = fmt.Sprintf("%d", wk.Load.BreakerSkips)
			ewma = fmt.Sprintf("%.2fms", wk.Load.LatencyEWMAMs)
		}
		breaker := "-"
		if wk.Breaker != nil {
			breaker = wk.Breaker.State
			if wk.Breaker.Trips > 0 {
				breaker += fmt.Sprintf(" (%d trips)", wk.Breaker.Trips)
			}
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%s\t%s\t%s\t%s\t%s\n",
			wk.Addr, state, len(wk.Spans), spanReqs, rpcs, errs, skips, ewma, breaker)
	}
	tw.Flush()
	// The hottest spans across the fleet, when any worker reported some.
	type hotSpan struct {
		worker string
		span   client.FleetSpanDoc
	}
	var spans []hotSpan
	for _, wk := range fleet.Workers {
		for _, sp := range wk.Spans {
			spans = append(spans, hotSpan{worker: wk.Addr, span: sp})
		}
	}
	if len(spans) > 0 {
		sort.Slice(spans, func(i, j int) bool {
			if spans[i].span.Requests != spans[j].span.Requests {
				return spans[i].span.Requests > spans[j].span.Requests
			}
			return spans[i].span.Corpus < spans[j].span.Corpus
		})
		fmt.Fprintln(w)
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "SPAN\tWORKER\tSTRIPES\tENTRIES\tREQS\n")
		for i, hs := range spans {
			if i >= 10 {
				fmt.Fprintf(tw, "… %d more\t\t\t\t\n", len(spans)-i)
				break
			}
			fmt.Fprintf(tw, "%s v%d\t%s\t[%d,%d)\t%d\t%d\n",
				hs.span.Corpus, hs.span.Version, hs.worker,
				hs.span.StartStripe, hs.span.EndStripe, hs.span.Entries, hs.span.Requests)
		}
		tw.Flush()
	}
	fmt.Fprintln(w)
}

// sizeOf renders a byte count in the nearest binary unit.
func sizeOf(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// truncate clips s to at most n runes.
func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
