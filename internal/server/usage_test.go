package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"bundling"
)

// getUsage fetches and decodes /v1/usage with an optional API key.
func getUsage(t *testing.T, ts *httptest.Server, key string) UsageResponse {
	t.Helper()
	status, body := authRequest(t, ts, http.MethodGet, "/v1/usage", key, "")
	if status != http.StatusOK {
		t.Fatalf("usage: %d: %s", status, body)
	}
	var resp UsageResponse
	if err := decodeString(body, &resp); err != nil {
		t.Fatalf("usage decode: %v\n%s", err, body)
	}
	return resp
}

// TestUsageScriptedCounters runs a fixed request sequence against an open
// daemon and asserts the accounting matches it exactly: request and error
// counts, cache hits, and a corpus row per addressed ID — including an ID
// that never existed (the 404 is still that corpus's traffic).
func TestUsageScriptedCounters(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	up := tinyUpload("shop", 4)
	if status, body := authRequest(t, ts, http.MethodPost, "/v1/corpora", "", up); status != http.StatusCreated {
		t.Fatalf("upload: %d: %s", status, body)
	}
	for i := 0; i < 2; i++ { // second solve is a cache hit
		if status, body := authRequest(t, ts, http.MethodPost, "/v1/corpora/shop/solve", "", `{"algorithm":"components"}`); status != http.StatusOK {
			t.Fatalf("solve %d: %d: %s", i, status, body)
		}
	}
	if status, body := authRequest(t, ts, http.MethodPost, "/v1/corpora/shop/evaluate", "", `{"offers":[[0],[1]]}`); status != http.StatusOK {
		t.Fatalf("evaluate: %d: %s", status, body)
	}
	if status, _ := authRequest(t, ts, http.MethodPost, "/v1/corpora/ghost/solve", "", `{}`); status != http.StatusNotFound {
		t.Fatalf("ghost solve: %d, want 404", status)
	}

	use := getUsage(t, ts, "")
	if use.Scope != "admin" || use.Tenant != "" {
		t.Fatalf("scope: %+v", use)
	}
	if use.WindowSeconds != 60 {
		t.Errorf("window = %v, want 60", use.WindowSeconds)
	}
	if len(use.Tenants) != 1 {
		t.Fatalf("tenants: %+v", use.Tenants)
	}
	anon := use.Tenants[0]
	if anon.Key != AnonTenant {
		t.Fatalf("tenant key = %q, want %q", anon.Key, AnonTenant)
	}
	// 1 upload + 2 solves + 1 evaluate + 1 ghost solve = 5; the usage call
	// itself is accounted after its handler runs, so it is not yet visible.
	if anon.Requests != 5 || anon.Errors != 1 || anon.CacheHits != 1 {
		t.Errorf("anon row: %+v, want requests=5 errors=1 cache_hits=1", anon)
	}
	if anon.BytesIn <= 0 || anon.BytesOut <= 0 || anon.WallSeconds <= 0 {
		t.Errorf("anon row missing byte/wall accounting: %+v", anon)
	}
	if anon.WindowRequests != 5 || anon.RatePerSec <= 0 {
		t.Errorf("anon window: %+v", anon)
	}

	rows := map[string]UsageRow{}
	for _, row := range use.Corpora {
		rows[row.Key] = row
	}
	if len(rows) != 2 {
		t.Fatalf("corpora: %+v", use.Corpora)
	}
	if shop := rows["shop"]; shop.Requests != 4 || shop.Errors != 0 || shop.CacheHits != 1 {
		t.Errorf("shop row: %+v, want requests=4 errors=0 cache_hits=1", shop)
	}
	if ghost := rows["ghost"]; ghost.Requests != 1 || ghost.Errors != 1 {
		t.Errorf("ghost row: %+v, want requests=1 errors=1", ghost)
	}

	// A second usage call now sees the first one billed to the tenant meter
	// (no corpus addressed, so corpus rows are unchanged).
	use2 := getUsage(t, ts, "")
	if use2.Tenants[0].Requests != 6 {
		t.Errorf("after usage call: requests = %d, want 6", use2.Tenants[0].Requests)
	}
	if len(use2.Corpora) != 2 {
		t.Errorf("after usage call: corpora %+v", use2.Corpora)
	}
}

// TestUsageTenantScoping verifies the authenticated view is tenant-scoped:
// each tenant sees exactly its own tenant row and its own corpora, never the
// neighbour's traffic shape or the overflow bucket.
func TestUsageTenantScoping(t *testing.T) {
	auth, err := ParseAuthKeys("alice=sk-a,bob=sk-b")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Auth: auth})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if status, body := authRequest(t, ts, http.MethodPost, "/v1/corpora", "sk-a", tinyUpload("al", 4)); status != http.StatusCreated {
		t.Fatalf("alice upload: %d: %s", status, body)
	}
	if status, body := authRequest(t, ts, http.MethodPost, "/v1/corpora", "sk-b", tinyUpload("bo", 4)); status != http.StatusCreated {
		t.Fatalf("bob upload: %d: %s", status, body)
	}
	for i := 0; i < 3; i++ {
		if status, body := authRequest(t, ts, http.MethodPost, "/v1/corpora/bo/solve", "sk-b", `{"algorithm":"components"}`); status != http.StatusOK {
			t.Fatalf("bob solve: %d: %s", status, body)
		}
	}
	// Guard-rejected traffic must not be billed to anyone.
	if status, _ := authRequest(t, ts, http.MethodGet, "/v1/corpora", "", ""); status != http.StatusUnauthorized {
		t.Fatalf("anonymous list: %d, want 401", status)
	}

	alice := getUsage(t, ts, "sk-a")
	if alice.Scope != "tenant" || alice.Tenant != "alice" {
		t.Fatalf("alice scope: %+v", alice)
	}
	if len(alice.Tenants) != 1 || alice.Tenants[0].Key != "alice" || alice.Tenants[0].Requests != 1 {
		t.Fatalf("alice tenants: %+v", alice.Tenants)
	}
	if len(alice.Corpora) != 1 || alice.Corpora[0].Key != "al" {
		t.Fatalf("alice corpora: %+v", alice.Corpora)
	}

	bob := getUsage(t, ts, "sk-b")
	if len(bob.Tenants) != 1 || bob.Tenants[0].Key != "bob" || bob.Tenants[0].Requests != 4 {
		t.Fatalf("bob tenants: %+v", bob.Tenants)
	}
	if len(bob.Corpora) != 1 || bob.Corpora[0].Key != "bo" || bob.Corpora[0].Requests != 4 {
		t.Fatalf("bob corpora: %+v", bob.Corpora)
	}
}

// TestUsageMetricCardinalityBounded hammers the accountant with 1000
// distinct tenants and asserts /metrics stays bounded: at most top-K+1
// series per usage family, with the long tail folded into "other".
func TestUsageMetricCardinalityBounded(t *testing.T) {
	const distinct, topK = 1000, 8
	keys := make([]string, distinct)
	for i := range keys {
		keys[i] = fmt.Sprintf("t%04d=sk-%04d", i, i)
	}
	auth, err := ParseAuthKeys(strings.Join(keys, ","))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Auth: auth, UsageTopK: topK})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < distinct; i++ {
		if status, body := authRequest(t, ts, http.MethodGet, "/v1/corpora", fmt.Sprintf("sk-%04d", i), ""); status != http.StatusOK {
			t.Fatalf("tenant %d list: %d: %s", i, status, body)
		}
	}
	status, text := authRequest(t, ts, http.MethodGet, "/metrics", "", "")
	if status != http.StatusOK {
		t.Fatalf("metrics: %d", status)
	}
	series := 0
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "bundled_tenant_requests_total{") {
			series++
		}
	}
	if series != topK+1 {
		t.Errorf("bundled_tenant_requests_total series = %d, want %d (top-K+other)", series, topK+1)
	}
	want := fmt.Sprintf(`bundled_tenant_requests_total{tenant="other"} %d`, distinct-topK)
	if !strings.Contains(text, want) {
		t.Errorf("metrics missing %q", want)
	}
}

// expositionLine matches one Prometheus text-format sample or comment. The
// label-value alternation forbids raw quotes, newlines and dangling
// backslashes, so a mis-escaped hostile label fails the match.
var expositionLine = regexp.MustCompile(
	`^(# (HELP|TYPE) .+|[a-zA-Z_:][a-zA-Z0-9_:]*(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\\\|\\"|\\n|[^"\\])*",?)*\})? [0-9eE.+-]+(Inf|NaN)?)$`)

// TestUsageMetricsExpositionSanitized uploads corpora with hostile IDs —
// quotes, backslashes, newlines — and then parses every /metrics line
// against the exposition grammar: sanitization must keep the scrape intact.
func TestUsageMetricsExpositionSanitized(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	hostile := []string{
		`ev"il`,
		`back\slash`,
		"new\nline",
		`mix"ed\every` + "\nthing",
	}
	for _, id := range hostile {
		w := bundling.NewMatrix(2, 2)
		w.MustSet(0, 0, 5)
		w.MustSet(1, 1, 7)
		doc, err := jsonMarshal(CreateCorpusRequest{ID: id, Matrix: bundling.NewMatrixDoc(w)})
		if err != nil {
			t.Fatal(err)
		}
		if status, body := authRequest(t, ts, http.MethodPost, "/v1/corpora", "", string(doc)); status != http.StatusCreated {
			t.Fatalf("upload %q: %d: %s", id, status, body)
		}
	}
	status, text := authRequest(t, ts, http.MethodGet, "/metrics", "", "")
	if status != http.StatusOK {
		t.Fatalf("metrics: %d", status)
	}
	if !strings.Contains(text, `bundled_corpus_requests_total{corpus="ev\"il"}`) {
		t.Errorf("metrics missing escaped hostile corpus label:\n%s", grepMetric(text, "bundled_corpus_requests_total"))
	}
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("metrics line %d does not parse: %q", i+1, line)
		}
	}
}
