package main

// The perf experiment measures the configuration algorithms' hot paths with
// testing.Benchmark and emits machine-readable results, so successive PRs
// accumulate a performance trajectory to regress against (see the `bench`
// Makefile target, which writes BENCH_greedy.json at the repo root).

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"bundling/internal/config"
	"bundling/internal/experiments"
)

// PerfResult is one benchmarked algorithm run.
type PerfResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Revenue     float64 `json:"revenue"` // sanity anchor: perf work must not move revenue
}

// PerfReport is the file schema of BENCH_greedy.json. Notes and
// SeedBaseline are hand-maintained context (e.g. the pre-optimization
// numbers a PR is measured against); regeneration via `make bench` drops
// them, but the committed history preserves the trajectory.
type PerfReport struct {
	GeneratedAt  string       `json:"generated_at"`
	Scale        string       `json:"scale"`
	Users        int          `json:"users"`
	Items        int          `json:"items"`
	Theta        float64      `json:"theta"`
	K            int          `json:"k"`
	Go           string       `json:"go"`
	NumCPU       int          `json:"numcpu"`
	MaxProcs     int          `json:"maxprocs"`
	Parallelism  int          `json:"parallelism"` // Params.Parallelism (0 = GOMAXPROCS)
	Notes        string       `json:"notes,omitempty"`
	Results      []PerfResult `json:"results"`
	SeedBaseline []PerfResult `json:"seed_baseline,omitempty"`
}

// runPerf benchmarks the algorithms (derived from the CLI-provided base
// params, so -theta, -k and -parallel apply) and writes the report to
// outPath ("-" for stdout only). Each algorithm is measured twice: the
// one-shot path (index + solve per call, what every pre-session caller
// pays) and the session path (one prebuilt Solver serving repeated solves),
// so the report quantifies how much session reuse amortizes indexing.
func runPerf(env *experiments.Env, scaleName, outPath string, base config.Params) error {
	type job struct {
		name string
		alg  config.Algorithm
		p    config.Params
	}
	pure, mixed := base, base
	pure.Strategy = config.Pure
	mixed.Strategy = config.Mixed
	jobs := []job{
		{"GreedyMerge/pure", config.GreedyAlgorithm(), pure},
		{"GreedyMerge/mixed", config.GreedyAlgorithm(), mixed},
		{"SolveMatching/pure", config.MatchingAlgorithm(), pure},
		{"SolveMatching/mixed", config.MatchingAlgorithm(), mixed},
	}
	report := PerfReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Scale:       scaleName,
		Users:       env.DS.Users,
		Items:       env.DS.Items,
		Theta:       base.Theta,
		K:           base.K,
		Go:          runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		MaxProcs:    runtime.GOMAXPROCS(0),
		Parallelism: base.Parallelism,
	}
	record := func(name string, run func() (*config.Configuration, error)) error {
		var revenue float64
		var runErr error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg, err := run()
				if err != nil {
					runErr = err
					b.Fatal(err)
				}
				revenue = cfg.Revenue
			}
		})
		if runErr != nil {
			// b.Fatal inside testing.Benchmark yields a zero result rather
			// than aborting; surface the error instead of writing a bogus
			// all-zero row into the perf trajectory.
			return fmt.Errorf("%s: %w", name, runErr)
		}
		r := PerfResult{
			Name:        name,
			Iterations:  res.N,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Revenue:     revenue,
		}
		report.Results = append(report.Results, r)
		fmt.Printf("%-24s %12d ns/op %10d B/op %8d allocs/op  revenue=%.2f\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.Revenue)
		return nil
	}
	for _, j := range jobs {
		// One-shot: a fresh session per call, today's Solve* path.
		j := j
		if err := record(j.name, func() (*config.Configuration, error) {
			s, err := config.NewSolver(env.W, j.p)
			if err != nil {
				return nil, err
			}
			return s.Solve(j.alg)
		}); err != nil {
			return err
		}
		// Session: the solver prebuilt once, measuring second-and-later
		// solves on a warm index.
		s, err := config.NewSolver(env.W, j.p)
		if err != nil {
			return fmt.Errorf("%s: %w", j.name, err)
		}
		if err := record("Session/"+j.name, func() (*config.Configuration, error) {
			return s.Solve(j.alg)
		}); err != nil {
			return err
		}
	}
	// Index-build cost on its own, so one-shot ≈ NewSolver + Session is
	// visible in the numbers.
	for _, j := range []job{{"NewSolver/pure", nil, pure}, {"NewSolver/mixed", nil, mixed}} {
		j := j
		if err := record(j.name, func() (*config.Configuration, error) {
			s, err := config.NewSolver(env.W, j.p)
			if err != nil {
				return nil, err
			}
			return s.Solve(config.ComponentsAlgorithm())
		}); err != nil {
			return err
		}
	}
	// What-if serving: Evaluate prices one proposed lineup, the per-request
	// unit of a scenario workload. One-shot re-indexes per request; the
	// warm session only pays for the evaluation itself.
	var offers [][]int
	for i := 0; i+1 < env.DS.Items && len(offers) < 10; i += 2 {
		offers = append(offers, []int{i, i + 1})
	}
	for _, j := range []job{{"Evaluate/pure", nil, pure}, {"Evaluate/mixed", nil, mixed}} {
		j := j
		if err := record(j.name, func() (*config.Configuration, error) {
			s, err := config.NewSolver(env.W, j.p)
			if err != nil {
				return nil, err
			}
			return s.Evaluate(offers)
		}); err != nil {
			return err
		}
		s, err := config.NewSolver(env.W, j.p)
		if err != nil {
			return fmt.Errorf("%s: %w", j.name, err)
		}
		if err := record("Session/"+j.name, func() (*config.Configuration, error) {
			return s.Evaluate(offers)
		}); err != nil {
			return err
		}
	}
	if outPath == "" || outPath == "-" {
		return nil
	}
	// Carry the hand-maintained trajectory context of an existing report
	// forward, so `make bench` regeneration doesn't silently erase it.
	if prev, err := os.ReadFile(outPath); err == nil {
		var old PerfReport
		if json.Unmarshal(prev, &old) == nil {
			report.Notes = old.Notes
			report.SeedBaseline = old.SeedBaseline
		}
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", outPath)
	return nil
}
