package experiments

import (
	"fmt"
	"math"

	"bundling/internal/adoption"
	"bundling/internal/config"
	"bundling/internal/metrics"
	"bundling/internal/sim"
	"bundling/internal/tabular"
)

// StochasticRuns is the paper's averaging count for stochastic settings.
const StochasticRuns = 10

// SweepPoint is one parameter setting of a figure sweep: per-method revenue
// coverage and gain (both %), the two y-axes of Figures 2-5.
type SweepPoint struct {
	Param    float64
	Coverage map[Method]float64
	Gain     map[Method]float64
}

// SweepResult is a full figure series.
type SweepResult struct {
	Name       string // e.g. "Figure 2 (θ sweep)"
	ParamLabel string // e.g. "θ"
	Methods    []Method
	Points     []SweepPoint
}

// sweep evaluates methods at each parameter setting produced by mkParams.
// When the adoption model is stochastic, revenue is realized by simulation
// averaged over StochasticRuns seeded runs (the paper's protocol);
// otherwise the expected revenue is exact.
//
// All methods of one sweep point run on shared Solver sessions (one per
// strategy), so the matrix is indexed twice per point instead of once per
// method.
func sweep(env *Env, name, label string, methods []Method, values []float64,
	mkParams func(v float64) config.Params) (*SweepResult, error) {
	res := &SweepResult{Name: name, ParamLabel: label, Methods: methods}
	for _, v := range values {
		params := mkParams(v)
		sessions := map[config.Strategy]*config.Solver{}
		runMethod := func(m Method) (*config.Configuration, error) {
			alg, p, err := Plan(m, params)
			if err != nil {
				return nil, err
			}
			s := sessions[p.Strategy]
			if s == nil {
				if s, err = config.NewSolver(env.W, p); err != nil {
					return nil, err
				}
				sessions[p.Strategy] = s
			}
			return s.Solve(alg)
		}
		point := SweepPoint{Param: v, Coverage: map[Method]float64{}, Gain: map[Method]float64{}}
		comp, err := runMethod(Components)
		if err != nil {
			return nil, err
		}
		compRev := realizedRevenue(env, comp, params)
		for _, m := range methods {
			var rev float64
			if m == Components {
				rev = compRev
			} else {
				cfg, err := runMethod(m)
				if err != nil {
					return nil, fmt.Errorf("%s at %s=%g: %w", m, label, v, err)
				}
				rev = realizedRevenue(env, cfg, params)
			}
			point.Coverage[m] = metrics.Coverage(rev, env.W.Total())
			point.Gain[m] = metrics.Gain(rev, compRev)
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// realizedRevenue returns the configuration's revenue under the paper's
// protocol: exact expectation for the deterministic step model, a
// StochasticRuns-run simulation average otherwise.
func realizedRevenue(env *Env, cfg *config.Configuration, params config.Params) float64 {
	if params.Model.Deterministic() {
		return cfg.Revenue
	}
	out := sim.Average(env.W, cfg, params.Theta, params.Model, StochasticRuns, 1)
	return out.Revenue
}

// Figure2 sweeps the bundling coefficient θ (substitutes ↔ complements).
func Figure2(env *Env, thetas []float64, base config.Params) (*SweepResult, error) {
	return sweep(env, "Figure 2: revenue vs bundling coefficient", "θ", AllMethods(), thetas,
		func(v float64) config.Params {
			p := base
			p.Theta = v
			return p
		})
}

// DefaultThetas are the Fig. 2 sweep values.
func DefaultThetas() []float64 { return []float64{-0.10, -0.05, -0.02, 0, 0.02, 0.05, 0.10} }

// Figure3 sweeps the stochastic price sensitivity γ.
func Figure3(env *Env, gammas []float64, base config.Params) (*SweepResult, error) {
	return sweep(env, "Figure 3: revenue vs stochastic sensitivity", "γ", AllMethods(), gammas,
		func(v float64) config.Params {
			p := base
			m, err := adoption.New(v, base.Model.Alpha(), adoption.DefaultEpsilon)
			if err != nil {
				panic(err) // γ values are validated by DefaultGammas/test inputs
			}
			p.Model = m
			return p
		})
}

// DefaultGammas are the Fig. 3 sweep values (10⁶ ≈ the step function).
func DefaultGammas() []float64 { return []float64{0.1, 0.5, 1, 5, 10, 1e6} }

// Figure4 sweeps the stochastic adoption bias α. Under a hard step
// function α is a pure rescaling of willingness to pay, so relative
// metrics like revenue gain would be exactly constant; the paper's Fig. 4
// therefore only shows its trends under stochastic adoption. When the base
// model is deterministic, the sweep substitutes a moderate γ = 5 so the
// bias is visible, as noted in EXPERIMENTS.md.
func Figure4(env *Env, alphas []float64, base config.Params) (*SweepResult, error) {
	gamma := base.Model.Gamma()
	if base.Model.Deterministic() {
		gamma = 5
	}
	return sweep(env, "Figure 4: revenue vs adoption bias", "α", AllMethods(), alphas,
		func(v float64) config.Params {
			p := base
			m, err := adoption.New(gamma, v, adoption.DefaultEpsilon)
			if err != nil {
				panic(err)
			}
			p.Model = m
			return p
		})
}

// DefaultAlphas are the Fig. 4 sweep values. The paper varies α around 1
// with a moderate γ so the bias is visible (under a hard step the α effect
// is a pure rescaling).
func DefaultAlphas() []float64 { return []float64{0.75, 0.90, 1.00, 1.10, 1.25} }

// Figure5 sweeps the maximum bundle size k.
func Figure5(env *Env, sizes []int, base config.Params) (*SweepResult, error) {
	vals := make([]float64, len(sizes))
	for i, k := range sizes {
		if k == config.Unlimited {
			vals[i] = math.Inf(1)
		} else {
			vals[i] = float64(k)
		}
	}
	return sweep(env, "Figure 5: revenue vs max bundle size", "k", AllMethods(), vals,
		func(v float64) config.Params {
			p := base
			if math.IsInf(v, 1) {
				p.K = config.Unlimited
			} else {
				p.K = int(v)
			}
			return p
		})
}

// DefaultSizes are the Fig. 5 sweep values (0 = unlimited).
func DefaultSizes() []int { return []int{1, 2, 3, 4, 5, 6, 8, config.Unlimited} }

// Render prints the sweep with one row per parameter value: coverage and
// gain per method (the figures' two y-axes).
func (r *SweepResult) Render() string {
	headers := []string{r.ParamLabel}
	for _, m := range r.Methods {
		headers = append(headers, string(m)+" cov%", string(m)+" gain%")
	}
	t := tabular.New(r.Name, headers...)
	for _, p := range r.Points {
		row := []string{formatParam(p.Param)}
		for _, m := range r.Methods {
			row = append(row, fmt.Sprintf("%.1f", p.Coverage[m]), fmt.Sprintf("%+.1f", p.Gain[m]))
		}
		t.AddRow(row...)
	}
	return t.String()
}

func formatParam(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "∞"
	case v >= 1e4:
		return fmt.Sprintf("%.0e", v)
	default:
		return fmt.Sprintf("%g", v)
	}
}
