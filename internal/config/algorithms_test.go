package config

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bundling/internal/pricing"
	"bundling/internal/setpack"
	"bundling/internal/wtp"
)

// smallRandomMatrix builds a random sparse WTP matrix with genre-like
// co-interest blocks so that bundling opportunities exist.
func smallRandomMatrix(t testing.TB, consumers, items, itemsPerConsumer int) *wtp.Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(consumers*1000 + items)))
	w := wtp.MustNew(consumers, items)
	for u := 0; u < consumers; u++ {
		base := rng.Intn(items)
		for r := 0; r < itemsPerConsumer; r++ {
			var i int
			if rng.Float64() < 0.7 {
				i = (base + rng.Intn(3)) % items // clustered interest
			} else {
				i = rng.Intn(items)
			}
			w.MustSet(u, i, 2+rng.Float64()*18)
		}
	}
	return w
}

// enumeratePureOptimal prices every subset and solves set packing exactly —
// the ground-truth optimal pure configuration for tiny N.
func enumeratePureOptimal(t *testing.T, w *wtp.Matrix, p Params) float64 {
	t.Helper()
	pr, err := pricing.New(p.Model, 2000)
	if err != nil {
		t.Fatal(err)
	}
	n := w.Items()
	weights := make([]float64, 1<<uint(n))
	for mask := 1; mask < len(weights); mask++ {
		var items []int
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				items = append(items, i)
			}
		}
		if p.K != Unlimited && len(items) > p.K {
			continue
		}
		theta := p.Theta
		if len(items) == 1 {
			theta = 0
		}
		ids, vals := w.BundleVector(items, theta, nil, nil)
		_ = ids
		weights[mask] = pr.PriceOptimal(vals).Revenue
	}
	res, err := setpack.ExactDP(n, weights)
	if err != nil {
		t.Fatal(err)
	}
	return res.Weight
}

// TestOptimal2SizedMatchesExhaustive: for k = 2 the matching reduction is
// provably optimal (Sec. 5.1); verify against exhaustive set packing.
func TestOptimal2SizedMatchesExhaustive(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		w := smallRandomMatrix(t, 25+trial*5, 6, 3)
		p := DefaultParams()
		p.Theta = 0.1
		p.PriceLevels = 2000
		p.K = 2
		want := enumeratePureOptimal(t, w, p)
		cfg, err := Optimal2Sized(w, p)
		if err != nil {
			t.Fatal(err)
		}
		// The grid discretizes prices; allow a small relative tolerance.
		if cfg.Revenue < want*(1-2e-3)-1e-9 {
			t.Errorf("trial %d: 2-sized matching %g below exhaustive optimum %g", trial, cfg.Revenue, want)
		}
		if cfg.Revenue > want+1e-6 {
			t.Errorf("trial %d: 2-sized matching %g above exhaustive optimum %g (bug in oracle?)", trial, cfg.Revenue, want)
		}
		for _, b := range cfg.Bundles {
			if len(b.Items) > 2 {
				t.Errorf("bundle %v exceeds size 2", b.Items)
			}
		}
	}
}

// TestHeuristicsNearOptimalTinyN mirrors the paper's Table 4 finding: on
// small samples the heuristics reach (nearly) the optimal revenue.
func TestHeuristicsNearOptimalTinyN(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		w := smallRandomMatrix(t, 30+trial*7, 7, 3)
		p := DefaultParams()
		p.Theta = 0.05
		p.PriceLevels = 2000
		want := enumeratePureOptimal(t, w, p)
		m, err := MatchingBased(w, p)
		if err != nil {
			t.Fatal(err)
		}
		g, err := GreedyMerge(w, p)
		if err != nil {
			t.Fatal(err)
		}
		if want <= 0 {
			continue
		}
		// The heuristics hill-climb by pairwise merges and can land in
		// local optima on adversarial random data; the paper's samples
		// matched Optimal exactly, ours must stay close and never above.
		if m.Revenue < want*0.85 {
			t.Errorf("trial %d: matching %g far below optimal %g", trial, m.Revenue, want)
		}
		if g.Revenue < want*0.85 {
			t.Errorf("trial %d: greedy %g far below optimal %g", trial, g.Revenue, want)
		}
		if m.Revenue > want+1e-6 || g.Revenue > want+1e-6 {
			t.Errorf("trial %d: heuristic exceeds exhaustive optimum (%g, %g vs %g)",
				trial, m.Revenue, g.Revenue, want)
		}
	}
}

func TestGreedyMergesOnePerIteration(t *testing.T) {
	w := smallRandomMatrix(t, 60, 12, 5)
	p := DefaultParams()
	p.Theta = 0.15
	cfg, err := GreedyMerge(w, p)
	if err != nil {
		t.Fatal(err)
	}
	// Each greedy iteration reduces the bundle count by exactly one.
	if got := len(cfg.Bundles); got != w.Items()-cfg.Iterations {
		t.Errorf("bundles = %d, iterations = %d, items = %d: want items - iterations",
			got, cfg.Iterations, w.Items())
	}
}

func TestMatchingFewerIterationsThanGreedy(t *testing.T) {
	// The paper's Fig. 6: matching needs far fewer iterations because it
	// merges many pairs per round, greedy exactly one.
	w := smallRandomMatrix(t, 100, 20, 6)
	p := DefaultParams()
	p.Theta = 0.1
	p.Strategy = Mixed
	m, err := MatchingBased(w, p)
	if err != nil {
		t.Fatal(err)
	}
	g, err := GreedyMerge(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if g.Iterations > 1 && m.Iterations >= g.Iterations {
		t.Errorf("matching iterations %d should be fewer than greedy's %d",
			m.Iterations, g.Iterations)
	}
}

func TestFreqItemsetBaseline(t *testing.T) {
	w := smallRandomMatrix(t, 80, 10, 5)
	p := DefaultParams()
	p.Theta = 0.05
	for _, strat := range []Strategy{Pure, Mixed} {
		p.Strategy = strat
		cfg, err := FreqItemset(w, p, FreqItemsetOptions{MinSupport: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		if !cfg.CoversAll(w.Items()) {
			t.Errorf("%v: freq-itemset configuration must cover all items", strat)
		}
		comp, err := Components(w, p)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Revenue < comp.Revenue-1e-6 {
			t.Errorf("%v: freq-itemset revenue %g below components %g", strat, cfg.Revenue, comp.Revenue)
		}
	}
	if _, err := FreqItemset(w, p, FreqItemsetOptions{MinSupport: 2}); err == nil {
		t.Error("expected error for minsupport > 1")
	}
}

func TestFreqItemsetRespectsK(t *testing.T) {
	w := smallRandomMatrix(t, 80, 10, 6)
	p := DefaultParams()
	p.K = 2
	p.Theta = 0.1
	cfg, err := FreqItemset(w, p, FreqItemsetOptions{MinSupport: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range cfg.Bundles {
		if len(b.Items) > 2 {
			t.Errorf("bundle %v exceeds k=2", b.Items)
		}
	}
}

// TestQuickPureConfigurationInvariants property-tests the structural
// contract (partition, positive prices on sold bundles) on random matrices.
func TestQuickPureConfigurationInvariants(t *testing.T) {
	f := func(seed int64, mRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 5 + int(mRaw%40)
		n := 2 + int(nRaw%8)
		w := wtp.MustNew(m, n)
		for u := 0; u < m; u++ {
			for i := 0; i < n; i++ {
				if rng.Float64() < 0.3 {
					w.MustSet(u, i, rng.Float64()*25)
				}
			}
		}
		p := DefaultParams()
		p.Theta = rng.Float64()*0.3 - 0.15
		cfg, err := MatchingBased(w, p)
		if err != nil {
			return false
		}
		if !cfg.CoversAll(n) {
			return false
		}
		for _, b := range cfg.Bundles {
			if b.Revenue > 0 && b.Price <= 0 {
				return false
			}
			if b.Revenue < 0 {
				return false
			}
		}
		var sum float64
		for _, b := range cfg.Bundles {
			sum += b.Revenue
		}
		return math.Abs(sum-cfg.Revenue) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMixedConfigurationInvariants: mixed revenue is consistent and
// bounded, retained components are subsets of some top-level bundle.
func TestQuickMixedConfigurationInvariants(t *testing.T) {
	f := func(seed int64, mRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 5 + int(mRaw%40)
		n := 2 + int(nRaw%8)
		w := wtp.MustNew(m, n)
		for u := 0; u < m; u++ {
			for i := 0; i < n; i++ {
				if rng.Float64() < 0.35 {
					w.MustSet(u, i, rng.Float64()*25)
				}
			}
		}
		p := DefaultParams()
		p.Strategy = Mixed
		cfg, err := GreedyMerge(w, p)
		if err != nil {
			return false
		}
		if !cfg.CoversAll(n) {
			return false
		}
		// θ=0: revenue can never exceed aggregate WTP.
		if cfg.Revenue > w.Total()+1e-6 {
			return false
		}
		// Every retained component is a strict subset of a top bundle.
		for _, c := range cfg.Components {
			inside := false
			for _, b := range cfg.Bundles {
				if isSubset(c.Items, b.Items) && len(c.Items) < len(b.Items) {
					inside = true
					break
				}
			}
			if !inside {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func isSubset(sub, super []int) bool {
	i, j := 0, 0
	for i < len(sub) && j < len(super) {
		switch {
		case sub[i] == super[j]:
			i++
			j++
		case sub[i] > super[j]:
			j++
		default:
			return false
		}
	}
	return i == len(sub)
}

func TestMergeItemsAndIntersect(t *testing.T) {
	got := mergeItemsInto(nil, []int{1, 3, 5}, []int{2, 3, 6})
	want := []int{1, 2, 3, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("mergeItemsInto = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mergeItemsInto = %v, want %v", got, want)
		}
	}
	if !idsIntersect([]int{1, 5, 9}, []int{2, 5}) {
		t.Error("should intersect at 5")
	}
	if idsIntersect([]int{1, 3}, []int{2, 4}) {
		t.Error("should not intersect")
	}
	if idsIntersect(nil, []int{1}) {
		t.Error("empty never intersects")
	}
}

func TestAlignVals(t *testing.T) {
	got := alignVals([]int{1, 2, 5, 9}, []int{2, 9}, []float64{7, 3})
	want := []float64{0, 7, 0, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("alignVals = %v, want %v", got, want)
		}
	}
}

// TestGreedyRunToEnd verifies the alternative stopping condition of
// Sec. 5.3.2: the run-to-end variant never returns less revenue than the
// default early stop, and — the paper's empirical claim — the extra gain
// is marginal while the iteration count grows substantially.
func TestGreedyRunToEnd(t *testing.T) {
	w := smallRandomMatrix(t, 80, 14, 6)
	base := DefaultParams()
	base.Theta = 0.05
	early, err := GreedyMerge(w, base)
	if err != nil {
		t.Fatal(err)
	}
	full := base
	full.GreedyRunToEnd = true
	exhaustive, err := GreedyMerge(w, full)
	if err != nil {
		t.Fatal(err)
	}
	if exhaustive.Revenue < early.Revenue-1e-6 {
		t.Errorf("run-to-end revenue %g below early-stop %g", exhaustive.Revenue, early.Revenue)
	}
	if exhaustive.Iterations < early.Iterations {
		t.Errorf("run-to-end iterations %d < early-stop %d", exhaustive.Iterations, early.Iterations)
	}
	// The paper: no meaningful revenue gain (allow 2%).
	if early.Revenue > 0 && exhaustive.Revenue > early.Revenue*1.02 {
		t.Logf("note: run-to-end gained %.2f%% here", (exhaustive.Revenue/early.Revenue-1)*100)
	}
	if !exhaustive.CoversAll(w.Items()) {
		t.Error("run-to-end configuration must cover all items")
	}
}

func TestGreedyRunToEndValidation(t *testing.T) {
	p := DefaultParams()
	p.GreedyRunToEnd = true
	p.Strategy = Mixed
	if err := p.Validate(); err == nil {
		t.Error("run-to-end under mixed bundling should be rejected")
	}
	p.Strategy = Pure
	p.ProfitWeight = 0.5
	if err := p.Validate(); err == nil {
		t.Error("run-to-end with non-default objective should be rejected")
	}
}
