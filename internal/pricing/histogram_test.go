package pricing

import (
	"math"
	"math/rand"
	"testing"

	"bundling/internal/adoption"
)

// TestHistogramReduceEquivalence: pricing from histograms reduced over an
// arbitrary partition of the consumer vector must match PriceUtility on the
// whole vector — exactly under the deterministic model, within 1e-9 under
// the bucketed sigmoid (the sums re-associate).
func TestHistogramReduceEquivalence(t *testing.T) {
	models := map[string]adoption.Model{
		"step": adoption.Default(),
	}
	if m, err := adoption.New(2, 1.2, adoption.DefaultEpsilon); err == nil {
		models["sigmoid"] = m
	}
	objs := map[string]Objective{
		"revenue": RevenueObjective(),
		"welfare": {ProfitWeight: 0.6, UnitCost: 0.4},
	}
	rng := rand.New(rand.NewSource(11))
	for mname, model := range models {
		p, err := New(model, DefaultLevels)
		if err != nil {
			t.Fatal(err)
		}
		for oname, obj := range objs {
			for trial := 0; trial < 40; trial++ {
				m := 1 + rng.Intn(400)
				wtps := make([]float64, m)
				for i := range wtps {
					wtps[i] = rng.Float64() * 40
				}
				want := p.PriceUtility(wtps, obj)

				// Global max, then per-part histograms reduced by addition.
				var maxW float64
				for _, w := range wtps {
					if w > maxW {
						maxW = w
					}
				}
				parts := 1 + rng.Intn(5)
				counts := make([]float64, p.Levels()+1)
				sums := make([]float64, p.Levels()+1)
				pc := make([]float64, p.Levels()+1)
				ps := make([]float64, p.Levels()+1)
				for k := 0; k < parts; k++ {
					lo := k * m / parts
					hi := (k + 1) * m / parts
					for i := range pc {
						pc[i], ps[i] = 0, 0
					}
					Histogram(wtps[lo:hi], model.Alpha(), maxW, p.Levels(), pc, ps)
					for i := range counts {
						counts[i] += pc[i]
						sums[i] += ps[i]
					}
				}
				got := p.PriceUtilityFromHistogram(counts, sums, maxW, obj)
				if got.Price != want.Price {
					t.Fatalf("%s/%s trial %d: price %g != %g", mname, oname, trial, got.Price, want.Price)
				}
				for _, d := range []struct {
					name string
					g, w float64
				}{
					{"revenue", got.Revenue, want.Revenue},
					{"profit", got.Profit, want.Profit},
					{"surplus", got.Surplus, want.Surplus},
					{"utility", got.Utility, want.Utility},
					{"adopters", got.Adopters, want.Adopters},
				} {
					if math.Abs(d.g-d.w) > 1e-9*(1+math.Abs(d.w)) {
						t.Fatalf("%s/%s trial %d: %s %g != %g", mname, oname, trial, d.name, d.g, d.w)
					}
				}
			}
		}
	}
}

// TestHistogramZeroMax: a bundle nobody wants prices to the zero quote on
// both paths.
func TestHistogramZeroMax(t *testing.T) {
	p := Default()
	if q := p.PriceUtilityFromHistogram(make([]float64, p.Levels()+1), make([]float64, p.Levels()+1), 0, RevenueObjective()); q != (UtilityQuote{}) {
		t.Fatalf("zero-max quote = %+v, want zero", q)
	}
}
