package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bundling"
)

func TestParseAuthKeys(t *testing.T) {
	a, err := ParseAuthKeys("alice=sk-a, bob=sk-b ,alice=sk-a2")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Enabled() || a.Tenants() != 2 {
		t.Fatalf("tenants = %d, want 2", a.Tenants())
	}
	for key, want := range map[string]string{"sk-a": "alice", "sk-a2": "alice", "sk-b": "bob"} {
		if got, ok := a.Tenant(key); !ok || got != want {
			t.Errorf("Tenant(%q) = %q, %v", key, got, ok)
		}
	}
	if _, ok := a.Tenant("nope"); ok {
		t.Error("unknown key resolved")
	}
	for _, bad := range []string{"", "alice", "=sk", "alice=", "alice=k,bob=k"} {
		if _, err := ParseAuthKeys(bad); err == nil {
			t.Errorf("ParseAuthKeys(%q) accepted", bad)
		}
	}
	var nilAuth *Auth
	if nilAuth.Enabled() {
		t.Error("nil auth enabled")
	}
}

func TestLoadAuthKeysFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keys")
	content := "# serving keys\nalice=sk-a\n\n  bob = sk-b\n"
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	a, err := LoadAuthKeysFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := a.Tenant("sk-b"); got != "bob" {
		t.Errorf("Tenant(sk-b) = %q", got)
	}
	if _, err := LoadAuthKeysFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

// authRequest issues one request with an optional bearer key.
func authRequest(t *testing.T, ts *httptest.Server, method, path, key, body string) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(buf)
}

// tinyUpload renders an upload body for a 2x2 corpus.
func tinyUpload(id string, entries int) string {
	w := bundling.NewMatrix(entries, 2)
	for u := 0; u < entries; u++ {
		w.MustSet(u, u%2, float64(4+u))
	}
	doc, _ := json.Marshal(CreateCorpusRequest{ID: id, Matrix: bundling.NewMatrixDoc(w)})
	return string(doc)
}

func TestAuthAndOwnership(t *testing.T) {
	auth, err := ParseAuthKeys("alice=sk-a,bob=sk-b")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Auth: auth})
	defer srv.Close()
	// A public session (preloaded with no owner) stays visible to everyone.
	if err := Preload(srv, "demo", testMatrix(t, 20, 6, 9), bundling.Options{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Unauthenticated and unknown-key requests: 401. Probes stay open.
	if code, _ := authRequest(t, ts, http.MethodGet, "/v1/corpora", "", ""); code != http.StatusUnauthorized {
		t.Fatalf("no key: %d", code)
	}
	if code, _ := authRequest(t, ts, http.MethodGet, "/v1/corpora", "sk-wrong", ""); code != http.StatusUnauthorized {
		t.Fatalf("bad key: %d", code)
	}
	if code, _ := authRequest(t, ts, http.MethodGet, "/healthz", "", ""); code != http.StatusOK {
		t.Fatalf("healthz gated: %d", code)
	}
	if code, _ := authRequest(t, ts, http.MethodGet, "/metrics", "", ""); code != http.StatusOK {
		t.Fatalf("metrics gated: %d", code)
	}

	// Alice uploads; Bob can neither read, solve, evaluate, delete nor
	// replace her corpus.
	if code, body := authRequest(t, ts, http.MethodPost, "/v1/corpora", "sk-a", tinyUpload("al", 6)); code != http.StatusCreated {
		t.Fatalf("alice upload: %d: %s", code, body)
	}
	for _, probe := range []struct{ method, path, body string }{
		{http.MethodGet, "/v1/corpora/al", ""},
		{http.MethodPost, "/v1/corpora/al/solve", `{"algorithm":"matching"}`},
		{http.MethodPost, "/v1/corpora/al/evaluate", `{"offers":[[0]]}`},
		{http.MethodDelete, "/v1/corpora/al", ""},
		{http.MethodPost, "/v1/corpora", tinyUpload("al", 6)},
	} {
		if code, body := authRequest(t, ts, probe.method, probe.path, "sk-b", probe.body); code != http.StatusForbidden {
			t.Errorf("bob %s %s: %d: %s", probe.method, probe.path, code, body)
		}
	}
	// Alice still can.
	if code, body := authRequest(t, ts, http.MethodPost, "/v1/corpora/al/solve", "sk-a", `{"algorithm":"matching"}`); code != http.StatusOK {
		t.Errorf("alice solve: %d: %s", code, body)
	}

	// Listings are scoped: bob sees the public demo corpus, not alice's.
	code, body := authRequest(t, ts, http.MethodGet, "/v1/corpora", "sk-b", "")
	if code != http.StatusOK {
		t.Fatalf("bob list: %d", code)
	}
	var list ListCorporaResponse
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Corpora) != 1 || list.Corpora[0].ID != "demo" {
		t.Errorf("bob sees %+v", list.Corpora)
	}
	// The public corpus solves for any tenant.
	if code, body := authRequest(t, ts, http.MethodPost, "/v1/corpora/demo/solve", "sk-b", `{"algorithm":"matching"}`); code != http.StatusOK {
		t.Errorf("bob demo solve: %d: %s", code, body)
	}

	// Auth failures surfaced in the metrics.
	_, metrics := authRequest(t, ts, http.MethodGet, "/metrics", "", "")
	if !strings.Contains(metrics, "bundled_auth_failures_total 2") {
		t.Errorf("auth failure counter missing:\n%s", grepMetric(metrics, "auth_failures"))
	}
}

func TestQuotas(t *testing.T) {
	auth, err := ParseAuthKeys("alice=sk-a,bob=sk-b")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Auth: auth, Quotas: Quotas{MaxCorpora: 2, MaxEntries: 10}})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Corpus-count quota: the third distinct corpus is rejected, replacing
	// an existing one is not.
	for _, id := range []string{"a1", "a2"} {
		if code, body := authRequest(t, ts, http.MethodPost, "/v1/corpora", "sk-a", tinyUpload(id, 3)); code != http.StatusCreated {
			t.Fatalf("upload %s: %d: %s", id, code, body)
		}
	}
	if code, body := authRequest(t, ts, http.MethodPost, "/v1/corpora", "sk-a", tinyUpload("a3", 3)); code != http.StatusTooManyRequests {
		t.Fatalf("over-quota upload: %d: %s", code, body)
	}
	if code, body := authRequest(t, ts, http.MethodPost, "/v1/corpora", "sk-a", tinyUpload("a2", 4)); code != http.StatusCreated {
		t.Fatalf("replacement upload: %d: %s", code, body)
	}
	// Quotas are per tenant: bob is unaffected by alice's usage.
	if code, body := authRequest(t, ts, http.MethodPost, "/v1/corpora", "sk-b", tinyUpload("b1", 3)); code != http.StatusCreated {
		t.Fatalf("bob upload: %d: %s", code, body)
	}
	// Taking over a public corpus is not a free replacement — it grows the
	// tenant's holdings and must count against the corpus quota.
	if err := Preload(srv, "pub", testMatrix(t, 8, 3, 5), bundling.Options{}); err != nil {
		t.Fatal(err)
	}
	if code, body := authRequest(t, ts, http.MethodPost, "/v1/corpora", "sk-a", tinyUpload("pub", 2)); code != http.StatusTooManyRequests {
		t.Fatalf("public takeover over quota: %d: %s", code, body)
	}

	// Entry quota: alice holds 3+4=7 of 10; adding 4 more would exceed it.
	if code, body := authRequest(t, ts, http.MethodDelete, "/v1/corpora/a1", "sk-a", ""); code != http.StatusNoContent {
		t.Fatalf("delete: %d: %s", code, body)
	}
	if code, body := authRequest(t, ts, http.MethodPost, "/v1/corpora", "sk-a", tinyUpload("a4", 7)); code != http.StatusTooManyRequests {
		t.Fatalf("entry quota upload: %d: %s", code, body)
	}
	if code, body := authRequest(t, ts, http.MethodPost, "/v1/corpora", "sk-a", tinyUpload("a4", 6)); code != http.StatusCreated {
		t.Fatalf("within entry quota: %d: %s", code, body)
	}

	_, metrics := authRequest(t, ts, http.MethodGet, "/metrics", "", "")
	for _, want := range []string{
		"bundled_quota_corpora_rejections_total 2",
		"bundled_quota_entries_rejections_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, grepMetric(metrics, "quota"))
		}
	}
}

// TestEvictedCorpusKeepsOwnershipAndQuota pins the durable-tenancy
// guarantees to the store, not the in-memory registry: LRU-evicting a
// session must not let another tenant take over its ID, must not stop the
// corpus counting against its owner's quotas, and the owner must still be
// able to DELETE it to free both.
func TestEvictedCorpusKeepsOwnershipAndQuota(t *testing.T) {
	auth, err := ParseAuthKeys("alice=sk-a,bob=sk-b")
	if err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := New(Config{Auth: auth, Store: st, MaxSessions: 1, Quotas: Quotas{MaxCorpora: 2}})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Alice's second upload evicts her first session; its record persists.
	for _, id := range []string{"a1", "a2"} {
		if code, body := authRequest(t, ts, http.MethodPost, "/v1/corpora", "sk-a", tinyUpload(id, 3)); code != http.StatusCreated {
			t.Fatalf("upload %s: %d: %s", id, code, body)
		}
	}
	if srv.Sessions() != 1 {
		t.Fatalf("sessions = %d, want 1 (MaxSessions)", srv.Sessions())
	}
	// The listing reaches past the registry: alice sees both corpora (the
	// evicted one holds quota and is deletable), bob sees neither.
	listIDs := func(key string) []string {
		t.Helper()
		code, body := authRequest(t, ts, http.MethodGet, "/v1/corpora", key, "")
		if code != http.StatusOK {
			t.Fatalf("list: %d: %s", code, body)
		}
		var list ListCorporaResponse
		if err := json.Unmarshal([]byte(body), &list); err != nil {
			t.Fatal(err)
		}
		ids := make([]string, 0, len(list.Corpora))
		for _, c := range list.Corpora {
			ids = append(ids, c.ID)
		}
		return ids
	}
	if ids := listIDs("sk-a"); len(ids) != 2 || ids[0] != "a1" || ids[1] != "a2" {
		t.Fatalf("alice lists %v, want [a1 a2]", ids)
	}
	if ids := listIDs("sk-b"); len(ids) != 0 {
		t.Fatalf("bob lists %v, want none", ids)
	}
	// The evicted corpus still belongs to alice: bob cannot claim its ID.
	if code, body := authRequest(t, ts, http.MethodPost, "/v1/corpora", "sk-b", tinyUpload("a1", 2)); code != http.StatusForbidden {
		t.Fatalf("takeover of evicted corpus: %d: %s", code, body)
	}
	// ...and it still counts against her corpus quota.
	if code, body := authRequest(t, ts, http.MethodPost, "/v1/corpora", "sk-a", tinyUpload("a3", 2)); code != http.StatusTooManyRequests {
		t.Fatalf("quota ignored evicted corpus: %d: %s", code, body)
	}
	// Only the owner may delete the evicted corpus; the delete frees both
	// the ID and the quota.
	if code, body := authRequest(t, ts, http.MethodDelete, "/v1/corpora/a1", "sk-b", ""); code != http.StatusForbidden {
		t.Fatalf("bob deleted alice's evicted corpus: %d: %s", code, body)
	}
	if code, body := authRequest(t, ts, http.MethodDelete, "/v1/corpora/a1", "sk-a", ""); code != http.StatusNoContent {
		t.Fatalf("delete evicted corpus: %d: %s", code, body)
	}
	if code, body := authRequest(t, ts, http.MethodPost, "/v1/corpora", "sk-a", tinyUpload("a3", 2)); code != http.StatusCreated {
		t.Fatalf("upload after freeing quota: %d: %s", code, body)
	}
	// A deleted ID is genuinely free: any tenant may claim it.
	if code, body := authRequest(t, ts, http.MethodDelete, "/v1/corpora/a3", "sk-a", ""); code != http.StatusNoContent {
		t.Fatalf("delete a3: %d: %s", code, body)
	}
	if code, body := authRequest(t, ts, http.MethodPost, "/v1/corpora", "sk-b", tinyUpload("a1", 2)); code != http.StatusCreated {
		t.Fatalf("claim of deleted id: %d: %s", code, body)
	}
}

// TestEvictedCorpusLazilyReloads: the registry is a bounded cache over the
// store — solve/GET on an evicted-but-persisted corpus re-indexes it on
// demand (serving identical results at the same generation) instead of
// 404ing an ID the listing names, and ownership is checked before the
// rebuild so other tenants cannot make the daemon churn index builds.
func TestEvictedCorpusLazilyReloads(t *testing.T) {
	auth, err := ParseAuthKeys("alice=sk-a,bob=sk-b")
	if err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := New(Config{Auth: auth, Store: st, MaxSessions: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, body := authRequest(t, ts, http.MethodPost, "/v1/corpora", "sk-a", tinyUpload("e1", 4)); code != http.StatusCreated {
		t.Fatalf("upload e1: %d: %s", code, body)
	}
	solve := func(key string) (int, SolveResponse) {
		code, body := authRequest(t, ts, http.MethodPost, "/v1/corpora/e1/solve", key, `{"algorithm":"matching"}`)
		var resp SolveResponse
		if code == http.StatusOK {
			if err := json.Unmarshal([]byte(body), &resp); err != nil {
				t.Fatalf("solve: %v: %s", err, body)
			}
		}
		return code, resp
	}
	code, before := solve("sk-a")
	if code != http.StatusOK {
		t.Fatalf("pre-eviction solve: %d", code)
	}
	// Evict e1's session, then hit it again: bob is rejected without a
	// rebuild, alice gets the same result at the same generation.
	if code, body := authRequest(t, ts, http.MethodPost, "/v1/corpora", "sk-a", tinyUpload("e2", 4)); code != http.StatusCreated {
		t.Fatalf("upload e2: %d: %s", code, body)
	}
	if srv.Sessions() != 1 {
		t.Fatalf("sessions = %d, want 1", srv.Sessions())
	}
	if code, _ := solve("sk-b"); code != http.StatusForbidden {
		t.Fatalf("bob solve on alice's evicted corpus: %d", code)
	}
	code, after := solve("sk-a")
	if code != http.StatusOK {
		t.Fatalf("post-eviction solve: %d", code)
	}
	if after.Version != before.Version {
		t.Errorf("reloaded generation = %d, want %d", after.Version, before.Version)
	}
	if after.Config.Revenue != before.Config.Revenue {
		t.Errorf("reloaded revenue %g, want %g", after.Config.Revenue, before.Config.Revenue)
	}
	if code, _ := authRequest(t, ts, http.MethodGet, "/v1/corpora/e2", "sk-a", ""); code != http.StatusOK {
		t.Errorf("e2 (evicted by the reload) should lazily reload too")
	}
}

func TestRateQuota(t *testing.T) {
	srv := New(Config{Quotas: Quotas{RequestsPerSecond: 0.001, Burst: 2}})
	defer srv.Close()
	if err := Preload(srv, "demo", testMatrix(t, 10, 4, 4), bundling.Options{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Burst of 2, negligible refill: the third request must be rejected.
	for i := 0; i < 2; i++ {
		if code, body := authRequest(t, ts, http.MethodGet, "/v1/corpora/demo", "", ""); code != http.StatusOK {
			t.Fatalf("request %d: %d: %s", i, code, body)
		}
	}
	code, body := authRequest(t, ts, http.MethodGet, "/v1/corpora/demo", "", "")
	if code != http.StatusTooManyRequests {
		t.Fatalf("third request: %d: %s", code, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal([]byte(body), &er); err != nil || !strings.Contains(er.Error, "quota") {
		t.Errorf("429 body: %s", body)
	}
	// Probes are never rate limited.
	if code, _ := authRequest(t, ts, http.MethodGet, "/healthz", "", ""); code != http.StatusOK {
		t.Errorf("healthz rate limited: %d", code)
	}
	_, metrics := authRequest(t, ts, http.MethodGet, "/metrics", "", "")
	if !strings.Contains(metrics, "bundled_quota_rps_rejections_total 1") {
		t.Errorf("rps counter missing:\n%s", grepMetric(metrics, "rps"))
	}
}

func TestRateGateRefill(t *testing.T) {
	g := newRateGate(Quotas{RequestsPerSecond: 2, Burst: 2}.withDefaults())
	now := time.Unix(1000, 0)
	g.now = func() time.Time { return now }
	for i := 0; i < 2; i++ {
		if !g.allow("t") {
			t.Fatalf("burst request %d denied", i)
		}
	}
	if g.allow("t") {
		t.Fatal("over-burst request allowed")
	}
	if !g.allow("other") {
		t.Fatal("tenants share a bucket")
	}
	now = now.Add(500 * time.Millisecond) // refills one token at 2 rps
	if !g.allow("t") {
		t.Fatal("refilled token denied")
	}
	if g.allow("t") {
		t.Fatal("second token after half-second refill")
	}
	now = now.Add(time.Hour) // caps at burst, not rps*3600
	for i := 0; i < 2; i++ {
		if !g.allow("t") {
			t.Fatalf("post-idle request %d denied", i)
		}
	}
	if g.allow("t") {
		t.Fatal("bucket exceeded burst after idle")
	}
}

// grepMetric filters an exposition to lines containing substr, for error
// messages.
func grepMetric(metrics, substr string) string {
	var b strings.Builder
	for _, line := range strings.Split(metrics, "\n") {
		if strings.Contains(line, substr) && !strings.HasPrefix(line, "#") {
			fmt.Fprintln(&b, line)
		}
	}
	return b.String()
}
