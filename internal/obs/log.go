package obs

import (
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"strings"
	"time"
)

// NewLogger builds the daemon logger from the -log-format/-log-level flag
// values: format "text" (default) or "json", level "debug", "info"
// (default), "warn" or "error".
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}

// RuntimeStats is one sample of the process-level gauges exported on
// /metrics next to the serving counters.
type RuntimeStats struct {
	Goroutines   int
	HeapAlloc    uint64
	HeapSys      uint64
	NumGC        uint32
	GCPauseTotal time.Duration
}

// ReadRuntime samples the runtime. It uses runtime.ReadMemStats, which
// stops the world briefly — cheap enough for a metrics scrape, not for a
// hot loop.
func ReadRuntime() RuntimeStats {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return RuntimeStats{
		Goroutines:   runtime.NumGoroutine(),
		HeapAlloc:    m.HeapAlloc,
		HeapSys:      m.HeapSys,
		NumGC:        m.NumGC,
		GCPauseTotal: time.Duration(m.PauseTotalNs),
	}
}
