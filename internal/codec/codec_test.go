package codec_test

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"time"

	"bundling/internal/codec"
	"bundling/internal/wtp"
)

// testMatrix builds a canonical-ordered matrix document (item-major,
// ascending consumers) with full-mantissa values, the shape real uploads
// have.
func testMatrix() *codec.MatrixData {
	m := &codec.MatrixData{Consumers: 40, Items: 12}
	for i := 0; i < m.Items; i++ {
		for u := i % 3; u < m.Consumers; u += 3 {
			v := float64(u+1) / 5 * 1.25 * (2.0 + float64(i)*1.37)
			m.Entries = append(m.Entries, [3]float64{float64(u), float64(i), v})
		}
	}
	return m
}

// testSpan builds a small but structurally valid span document, version
// nonce with the high bit set (the distributed producer's shape).
func testSpan(t *testing.T) *wtp.SpanDoc {
	t.Helper()
	w, err := wtp.New(16, 5)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 16; u++ {
		for i := u % 5; i < 5; i += 2 {
			if err := w.Set(u, i, float64(u)*0.731+float64(i)*1.19); err != nil {
				t.Fatal(err)
			}
		}
	}
	sh := w.Shard(4)
	d := sh.Span(0, sh.Stripes())
	d.Version = 1<<63 | 12345
	return d
}

func TestMatrixRoundTrip(t *testing.T) {
	m := testMatrix()
	buf, err := codec.EncodeMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := codec.DecodeMatrix(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatal("matrix did not round-trip bit-exactly")
	}
	// Empty documents round-trip too.
	empty := &codec.MatrixData{Consumers: 3, Items: 2}
	buf, err = codec.EncodeMatrix(empty)
	if err != nil {
		t.Fatal(err)
	}
	if got, err = codec.DecodeMatrix(buf); err != nil || got.Consumers != 3 || got.Items != 2 || len(got.Entries) != 0 {
		t.Fatalf("empty matrix round-trip: %+v, %v", got, err)
	}
}

func TestMatrixSpecialValues(t *testing.T) {
	m := &codec.MatrixData{Consumers: 4, Items: 4, Entries: [][3]float64{
		{0, 0, 0},
		{1, 1, math.Nextafter(1, 2)},      // every mantissa bit set low
		{2, 2, 1e-308},                    // subnormal neighborhood
		{3, 3, math.MaxFloat64},           // extreme exponent
		{0, 1, math.Copysign(0, -1)},      // negative zero (bit-level identity)
		{1, 2, 1.0000000000000002e+15},    // long decimal
		{2, 3, math.Float64frombits(0x1)}, // smallest subnormal
	}}
	buf, err := codec.EncodeMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := codec.DecodeMatrix(buf)
	if err != nil {
		t.Fatal(err)
	}
	for k := range m.Entries {
		if math.Float64bits(got.Entries[k][2]) != math.Float64bits(m.Entries[k][2]) {
			t.Fatalf("entry %d: value bits changed: %x != %x", k,
				math.Float64bits(got.Entries[k][2]), math.Float64bits(m.Entries[k][2]))
		}
	}
}

func TestMatrixRejectsNonIntegralIDs(t *testing.T) {
	m := &codec.MatrixData{Consumers: 2, Items: 2, Entries: [][3]float64{{0.5, 0, 1}}}
	if _, err := codec.EncodeMatrix(m); err == nil {
		t.Fatal("non-integral consumer id encoded without error")
	}
	m.Entries[0] = [3]float64{0, 1.5, 1}
	if _, err := codec.EncodeMatrix(m); err == nil {
		t.Fatal("non-integral item id encoded without error")
	}
}

func TestSpanRoundTrip(t *testing.T) {
	d := testSpan(t)
	got, err := codec.DecodeSpan(codec.EncodeSpan(d))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("span did not round-trip: %+v != %+v", got, d)
	}
	if got.Version != 1<<63|12345 {
		t.Fatalf("high-bit version nonce corrupted: %x", got.Version)
	}
	// The decoded document must rebuild into a working store, same as JSON.
	if _, err := got.Store(); err != nil {
		t.Fatalf("decoded span does not rebuild: %v", err)
	}
}

func TestAssignRoundTrip(t *testing.T) {
	d := testSpan(t)
	corpus := "books/alpha:g7"
	gotCorpus, gotSpan, err := codec.DecodeAssign(codec.EncodeAssign(corpus, d))
	if err != nil {
		t.Fatal(err)
	}
	if gotCorpus != corpus {
		t.Fatalf("corpus key %q != %q", gotCorpus, corpus)
	}
	if !reflect.DeepEqual(gotSpan, d) {
		t.Fatal("assign span did not round-trip")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	rec := &codec.Record{
		ID:          "books",
		Tenant:      "alice",
		Generation:  7,
		CreatedAt:   time.Date(2026, 8, 8, 11, 22, 33, 444555666, time.UTC),
		OptionsJSON: []byte(`{"strategy":"mixed","theta":0.1}`),
		Matrix:      *testMatrix(),
		Entries:     123,
	}
	buf, err := codec.EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := codec.DecodeRecord(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.CreatedAt.Equal(rec.CreatedAt) {
		t.Fatalf("created_at %v != %v", got.CreatedAt, rec.CreatedAt)
	}
	got.CreatedAt, rec.CreatedAt = time.Time{}, time.Time{}
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("record did not round-trip: %+v != %+v", got, rec)
	}
}

func TestRecordZeroValues(t *testing.T) {
	rec := &codec.Record{ID: "x", Matrix: codec.MatrixData{Consumers: 1, Items: 1}}
	buf, err := codec.EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := codec.DecodeRecord(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.CreatedAt.IsZero() {
		t.Fatalf("zero created_at decoded as %v", got.CreatedAt)
	}
	if got.Tenant != "" || got.OptionsJSON != nil || got.Generation != 0 {
		t.Fatalf("zero fields did not round-trip: %+v", got)
	}
}

// TestDecodeTruncations decodes every strict prefix of each valid envelope:
// all of them must fail with an error, none may panic.
func TestDecodeTruncations(t *testing.T) {
	span := testSpan(t)
	mbuf, err := codec.EncodeMatrix(testMatrix())
	if err != nil {
		t.Fatal(err)
	}
	rbuf, err := codec.EncodeRecord(&codec.Record{ID: "r", Tenant: "t", Matrix: *testMatrix()})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		buf    []byte
		decode func([]byte) error
	}{
		{"matrix", mbuf, func(b []byte) error { _, err := codec.DecodeMatrix(b); return err }},
		{"span", codec.EncodeSpan(span), func(b []byte) error { _, err := codec.DecodeSpan(b); return err }},
		{"assign", codec.EncodeAssign("c", span), func(b []byte) error { _, _, err := codec.DecodeAssign(b); return err }},
		{"record", rbuf, func(b []byte) error { _, err := codec.DecodeRecord(b); return err }},
	}
	for _, tc := range cases {
		if err := tc.decode(tc.buf); err != nil {
			t.Fatalf("%s: full buffer rejected: %v", tc.name, err)
		}
		for i := 0; i < len(tc.buf); i++ {
			if err := tc.decode(tc.buf[:i]); err == nil {
				t.Fatalf("%s: %d-byte prefix decoded without error", tc.name, i)
			}
		}
		// Trailing garbage after a complete payload must be rejected too.
		if err := tc.decode(append(append([]byte(nil), tc.buf...), 0)); err == nil {
			t.Fatalf("%s: trailing byte accepted", tc.name)
		}
	}
}

func TestDecodeHostileInput(t *testing.T) {
	span := testSpan(t)
	decoders := map[string]func([]byte) error{
		"matrix": func(b []byte) error { _, err := codec.DecodeMatrix(b); return err },
		"span":   func(b []byte) error { _, err := codec.DecodeSpan(b); return err },
		"assign": func(b []byte) error { _, _, err := codec.DecodeAssign(b); return err },
		"record": func(b []byte) error { _, err := codec.DecodeRecord(b); return err },
	}
	kinds := map[string]byte{"matrix": 0x01, "span": 0x02, "record": 0x03, "assign": 0x04}
	for name, decode := range decoders {
		hdr := []byte{0xBC, 'X', 1, kinds[name]}
		hostile := [][]byte{
			nil,
			{0xBC},
			[]byte("{\"json\":true}"),
			append(append([]byte(nil), hdr...), bytes.Repeat([]byte{0xFF}, 12)...),                          // overlong varint
			append(append([]byte(nil), hdr...), 0xFE, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01), // huge length prefix, no data
			{0xBC, 'X', 2, kinds[name]}, // future format version
			{0xBC, 'X', 1, 0x7F},        // unknown kind
		}
		for i, b := range hostile {
			if err := decode(b); err == nil {
				t.Errorf("%s: hostile input %d decoded without error", name, i)
			}
		}
	}
	// Kind confusion: a valid span envelope must not decode as a matrix.
	if _, err := codec.DecodeMatrix(codec.EncodeSpan(span)); err == nil {
		t.Error("span envelope decoded as matrix")
	}
}

// TestBinarySmallerThanJSON pins the headline property on realistic shapes:
// the binary form of a canonical matrix and of a span feed is well under the
// JSON form (the paper-scale ≤ 50% bound is measured by bundlebench -exp
// codec and committed in BENCH_codec.json).
func TestBinarySmallerThanJSON(t *testing.T) {
	m := testMatrix()
	bin, err := codec.EncodeMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	jsonLen := encodedJSONLen(t, m)
	if len(bin) >= jsonLen {
		t.Fatalf("binary matrix %d bytes >= json %d bytes", len(bin), jsonLen)
	}
	span := testSpan(t)
	binSpan := codec.EncodeSpan(span)
	jsonSpanLen := encodedJSONLen(t, span)
	if len(binSpan) >= jsonSpanLen {
		t.Fatalf("binary span %d bytes >= json %d bytes", len(binSpan), jsonSpanLen)
	}
}
