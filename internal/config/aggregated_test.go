package config

import (
	"context"
	"math"
	"testing"

	"bundling/internal/pricing"
	"bundling/internal/wtp"
)

// spanAggregator is a single-process reference Aggregator: it partitions the
// matrix's stripes into span stores (the worker ingestion path) and reduces
// their partial aggregates the way the cluster coordinator does.
type spanAggregator struct {
	stores []*wtp.SpanStore
	alpha  float64
	levels int
}

func newSpanAggregator(t *testing.T, w *wtp.Matrix, p Params, spans int) *spanAggregator {
	t.Helper()
	sh := w.Shard(p.StripeSize)
	if spans > sh.Stripes() {
		spans = sh.Stripes()
	}
	a := &spanAggregator{alpha: p.Model.Alpha(), levels: p.PriceLevels}
	for i := 0; i < spans; i++ {
		s0 := i * sh.Stripes() / spans
		s1 := (i + 1) * sh.Stripes() / spans
		if s1 == s0 {
			continue
		}
		sp, err := sh.Span(s0, s1).Store()
		if err != nil {
			t.Fatal(err)
		}
		a.stores = append(a.stores, sp)
	}
	return a
}

func (a *spanAggregator) BundleMax(_ context.Context, items []int, theta float64) float64 {
	var maxW float64
	for _, sp := range a.stores {
		_, vals := sp.BundleVector(items, theta, nil, nil)
		for _, v := range vals {
			if v > maxW {
				maxW = v
			}
		}
	}
	return maxW
}

func (a *spanAggregator) BundleHistogram(_ context.Context, items []int, theta float64, maxW float64, counts, sums []float64) {
	pc := make([]float64, len(counts))
	ps := make([]float64, len(sums))
	for _, sp := range a.stores {
		_, vals := sp.BundleVector(items, theta, nil, nil)
		for i := range pc {
			pc[i], ps[i] = 0, 0
		}
		pricing.Histogram(vals, a.alpha, maxW, a.levels, pc, ps)
		for i := range counts {
			counts[i] += pc[i]
			sums[i] += ps[i]
		}
	}
}

// TestEvaluateAggregatedMatchesEvaluate: pricing a pure offer family from
// span-reduced histograms must match the vector-gather Evaluate within 1e-9
// for any span count.
func TestEvaluateAggregatedMatchesEvaluate(t *testing.T) {
	w := smallRandomMatrix(t, 120, 12, 5)
	offers := [][]int{{0, 1, 2}, {3, 7}, {4}, {5, 8, 9, 10}}
	for _, theta := range []float64{0, -0.15, 0.2} {
		p := DefaultParams()
		p.Theta = theta
		p.StripeSize = 16
		s, err := NewSolver(w, p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := s.Evaluate(offers)
		if err != nil {
			t.Fatal(err)
		}
		for _, spans := range []int{1, 2, 4} {
			got, err := s.EvaluateAggregated(offers, newSpanAggregator(t, w, p, spans))
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got.Revenue-want.Revenue) > 1e-9*(1+math.Abs(want.Revenue)) {
				t.Fatalf("theta %g spans %d: revenue %g != %g", theta, spans, got.Revenue, want.Revenue)
			}
			if math.Abs(got.Surplus-want.Surplus) > 1e-9*(1+math.Abs(want.Surplus)) {
				t.Fatalf("theta %g spans %d: surplus %g != %g", theta, spans, got.Surplus, want.Surplus)
			}
			if len(got.Bundles) != len(want.Bundles) {
				t.Fatalf("theta %g spans %d: %d bundles != %d", theta, spans, len(got.Bundles), len(want.Bundles))
			}
			for i := range got.Bundles {
				if got.Bundles[i].Price != want.Bundles[i].Price {
					t.Fatalf("theta %g spans %d: bundle %d price %g != %g", theta, spans, i, got.Bundles[i].Price, want.Bundles[i].Price)
				}
			}
		}
	}
}

// TestEvaluateAggregatedRejectsMixed: the aggregated path is pure-only.
func TestEvaluateAggregatedRejectsMixed(t *testing.T) {
	w := smallRandomMatrix(t, 30, 5, 3)
	p := DefaultParams()
	p.Strategy = Mixed
	s, err := NewSolver(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.EvaluateAggregated([][]int{{0, 1}}, newSpanAggregator(t, w, p, 2)); err == nil {
		t.Fatal("mixed aggregated evaluation should be rejected")
	}
}
