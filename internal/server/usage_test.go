package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"bundling"
)

// getUsage fetches and decodes /v1/usage with an optional API key.
func getUsage(t *testing.T, ts *httptest.Server, key string) UsageResponse {
	t.Helper()
	status, body := authRequest(t, ts, http.MethodGet, "/v1/usage", key, "")
	if status != http.StatusOK {
		t.Fatalf("usage: %d: %s", status, body)
	}
	var resp UsageResponse
	if err := decodeString(body, &resp); err != nil {
		t.Fatalf("usage decode: %v\n%s", err, body)
	}
	return resp
}

// TestUsageScriptedCounters runs a fixed request sequence against an open
// daemon and asserts the accounting matches it exactly: request and error
// counts, cache hits, and a corpus row per addressed ID — including an ID
// that never existed (the 404 is still that corpus's traffic).
func TestUsageScriptedCounters(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	up := tinyUpload("shop", 4)
	if status, body := authRequest(t, ts, http.MethodPost, "/v1/corpora", "", up); status != http.StatusCreated {
		t.Fatalf("upload: %d: %s", status, body)
	}
	for i := 0; i < 2; i++ { // second solve is a cache hit
		if status, body := authRequest(t, ts, http.MethodPost, "/v1/corpora/shop/solve", "", `{"algorithm":"components"}`); status != http.StatusOK {
			t.Fatalf("solve %d: %d: %s", i, status, body)
		}
	}
	if status, body := authRequest(t, ts, http.MethodPost, "/v1/corpora/shop/evaluate", "", `{"offers":[[0],[1]]}`); status != http.StatusOK {
		t.Fatalf("evaluate: %d: %s", status, body)
	}
	if status, _ := authRequest(t, ts, http.MethodPost, "/v1/corpora/ghost/solve", "", `{}`); status != http.StatusNotFound {
		t.Fatalf("ghost solve: %d, want 404", status)
	}

	use := getUsage(t, ts, "")
	if use.Scope != "admin" || use.Tenant != "" {
		t.Fatalf("scope: %+v", use)
	}
	if use.WindowSeconds != 60 {
		t.Errorf("window = %v, want 60", use.WindowSeconds)
	}
	if len(use.Tenants) != 1 {
		t.Fatalf("tenants: %+v", use.Tenants)
	}
	anon := use.Tenants[0]
	if anon.Key != AnonTenant {
		t.Fatalf("tenant key = %q, want %q", anon.Key, AnonTenant)
	}
	// 1 upload + 2 solves + 1 evaluate + 1 ghost solve = 5; the usage call
	// itself is accounted after its handler runs, so it is not yet visible.
	if anon.Requests != 5 || anon.Errors != 1 || anon.CacheHits != 1 {
		t.Errorf("anon row: %+v, want requests=5 errors=1 cache_hits=1", anon)
	}
	if anon.BytesIn <= 0 || anon.BytesOut <= 0 || anon.WallSeconds <= 0 {
		t.Errorf("anon row missing byte/wall accounting: %+v", anon)
	}
	if anon.WindowRequests != 5 || anon.RatePerSec <= 0 {
		t.Errorf("anon window: %+v", anon)
	}

	rows := map[string]UsageRow{}
	for _, row := range use.Corpora {
		rows[row.Key] = row
	}
	if len(rows) != 2 {
		t.Fatalf("corpora: %+v", use.Corpora)
	}
	if shop := rows["shop"]; shop.Requests != 4 || shop.Errors != 0 || shop.CacheHits != 1 {
		t.Errorf("shop row: %+v, want requests=4 errors=0 cache_hits=1", shop)
	}
	if ghost := rows["ghost"]; ghost.Requests != 1 || ghost.Errors != 1 {
		t.Errorf("ghost row: %+v, want requests=1 errors=1", ghost)
	}

	// A second usage call now sees the first one billed to the tenant meter
	// (no corpus addressed, so corpus rows are unchanged).
	use2 := getUsage(t, ts, "")
	if use2.Tenants[0].Requests != 6 {
		t.Errorf("after usage call: requests = %d, want 6", use2.Tenants[0].Requests)
	}
	if len(use2.Corpora) != 2 {
		t.Errorf("after usage call: corpora %+v", use2.Corpora)
	}
}

// TestUsageTenantScoping verifies the authenticated view is tenant-scoped:
// each tenant sees exactly its own tenant row and its own corpora, never the
// neighbour's traffic shape or the overflow bucket.
func TestUsageTenantScoping(t *testing.T) {
	auth, err := ParseAuthKeys("alice=sk-a,bob=sk-b")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Auth: auth})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if status, body := authRequest(t, ts, http.MethodPost, "/v1/corpora", "sk-a", tinyUpload("al", 4)); status != http.StatusCreated {
		t.Fatalf("alice upload: %d: %s", status, body)
	}
	if status, body := authRequest(t, ts, http.MethodPost, "/v1/corpora", "sk-b", tinyUpload("bo", 4)); status != http.StatusCreated {
		t.Fatalf("bob upload: %d: %s", status, body)
	}
	for i := 0; i < 3; i++ {
		if status, body := authRequest(t, ts, http.MethodPost, "/v1/corpora/bo/solve", "sk-b", `{"algorithm":"components"}`); status != http.StatusOK {
			t.Fatalf("bob solve: %d: %s", status, body)
		}
	}
	// Guard-rejected traffic must not be billed to anyone.
	if status, _ := authRequest(t, ts, http.MethodGet, "/v1/corpora", "", ""); status != http.StatusUnauthorized {
		t.Fatalf("anonymous list: %d, want 401", status)
	}

	alice := getUsage(t, ts, "sk-a")
	if alice.Scope != "tenant" || alice.Tenant != "alice" {
		t.Fatalf("alice scope: %+v", alice)
	}
	if len(alice.Tenants) != 1 || alice.Tenants[0].Key != "alice" || alice.Tenants[0].Requests != 1 {
		t.Fatalf("alice tenants: %+v", alice.Tenants)
	}
	if len(alice.Corpora) != 1 || alice.Corpora[0].Key != "al" {
		t.Fatalf("alice corpora: %+v", alice.Corpora)
	}

	bob := getUsage(t, ts, "sk-b")
	if len(bob.Tenants) != 1 || bob.Tenants[0].Key != "bob" || bob.Tenants[0].Requests != 4 {
		t.Fatalf("bob tenants: %+v", bob.Tenants)
	}
	if len(bob.Corpora) != 1 || bob.Corpora[0].Key != "bo" || bob.Corpora[0].Requests != 4 {
		t.Fatalf("bob corpora: %+v", bob.Corpora)
	}
}

// TestUsageMetricCardinalityBounded hammers the accountant with 1000
// distinct tenants and asserts /metrics stays bounded: at most top-K+1
// series per usage family, with the long tail folded into "other".
func TestUsageMetricCardinalityBounded(t *testing.T) {
	const distinct, topK = 1000, 8
	keys := make([]string, distinct)
	for i := range keys {
		keys[i] = fmt.Sprintf("t%04d=sk-%04d", i, i)
	}
	auth, err := ParseAuthKeys(strings.Join(keys, ","))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Auth: auth, UsageTopK: topK, UsageMetrics: true})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < distinct; i++ {
		if status, body := authRequest(t, ts, http.MethodGet, "/v1/corpora", fmt.Sprintf("sk-%04d", i), ""); status != http.StatusOK {
			t.Fatalf("tenant %d list: %d: %s", i, status, body)
		}
	}
	status, text := authRequest(t, ts, http.MethodGet, "/metrics", "", "")
	if status != http.StatusOK {
		t.Fatalf("metrics: %d", status)
	}
	series := 0
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "bundled_tenant_requests_total{") {
			series++
		}
	}
	if series != topK+1 {
		t.Errorf("bundled_tenant_requests_total series = %d, want %d (top-K+other)", series, topK+1)
	}
	want := fmt.Sprintf(`bundled_tenant_requests_total{tenant="other"} %d`, distinct-topK)
	if !strings.Contains(text, want) {
		t.Errorf("metrics missing %q", want)
	}
}

// TestUsageMetricsOptIn asserts the default posture: /metrics serves
// unauthenticated, so without Config.UsageMetrics the accountant must not
// put tenant or corpus IDs on the wire there — the labeled families are
// reserved for operators who opted in (-usage-metrics). /v1/usage keeps
// serving the same numbers behind the guard either way.
func TestUsageMetricsOptIn(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if status, body := authRequest(t, ts, http.MethodPost, "/v1/corpora", "", tinyUpload("secret-corpus", 4)); status != http.StatusCreated {
		t.Fatalf("upload: %d: %s", status, body)
	}
	status, text := authRequest(t, ts, http.MethodGet, "/metrics", "", "")
	if status != http.StatusOK {
		t.Fatalf("metrics: %d", status)
	}
	for _, family := range []string{"bundled_tenant_", "bundled_corpus_", "secret-corpus"} {
		if strings.Contains(text, family) {
			t.Errorf("default /metrics leaks %q:\n%s", family, grepMetric(text, family))
		}
	}
	use := getUsage(t, ts, "")
	if len(use.Corpora) != 1 || use.Corpora[0].Key != "secret-corpus" {
		t.Errorf("/v1/usage must keep accounting with metrics exposition off: %+v", use.Corpora)
	}
}

// TestCorpusFromPath feeds the accounting-key parser escaped paths and
// demands the same single decode the mux's PathValue applies: an encoded
// slash stays inside the ID, and a literal %XX run decodes exactly once.
func TestCorpusFromPath(t *testing.T) {
	cases := []struct{ escaped, want string }{
		{"/v1/corpora/shop", "shop"},
		{"/v1/corpora/shop/solve", "shop"},
		{"/v1/corpora/a%2Fb", "a/b"},
		{"/v1/corpora/a%2Fb/evaluate", "a/b"},
		{"/v1/corpora/pct%2541", "pct%41"}, // literal %41 in the ID: one decode, not two
		{"/v1/corpora/", ""},
		{"/v1/usage", ""},
		{"/healthz", ""},
	}
	for _, c := range cases {
		if got := corpusFromPath(c.escaped); got != c.want {
			t.Errorf("corpusFromPath(%q) = %q, want %q", c.escaped, got, c.want)
		}
	}
}

// expositionLine matches one Prometheus text-format sample or comment. The
// label-value alternation forbids raw quotes, newlines and dangling
// backslashes, so a mis-escaped hostile label fails the match.
var expositionLine = regexp.MustCompile(
	`^(# (HELP|TYPE) .+|[a-zA-Z_:][a-zA-Z0-9_:]*(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\\\|\\"|\\n|[^"\\])*",?)*\})? [0-9eE.+-]+(Inf|NaN)?)$`)

// TestUsageMetricsExpositionSanitized uploads corpora with hostile IDs —
// quotes, backslashes, newlines — and then parses every /metrics line
// against the exposition grammar: sanitization must keep the scrape intact.
func TestUsageMetricsExpositionSanitized(t *testing.T) {
	srv := New(Config{UsageMetrics: true})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	hostile := []string{
		`ev"il`,
		`back\slash`,
		"new\nline",
		`mix"ed\every` + "\nthing",
	}
	for _, id := range hostile {
		w := bundling.NewMatrix(2, 2)
		w.MustSet(0, 0, 5)
		w.MustSet(1, 1, 7)
		doc, err := jsonMarshal(CreateCorpusRequest{ID: id, Matrix: bundling.NewMatrixDoc(w)})
		if err != nil {
			t.Fatal(err)
		}
		if status, body := authRequest(t, ts, http.MethodPost, "/v1/corpora", "", string(doc)); status != http.StatusCreated {
			t.Fatalf("upload %q: %d: %s", id, status, body)
		}
	}
	status, text := authRequest(t, ts, http.MethodGet, "/metrics", "", "")
	if status != http.StatusOK {
		t.Fatalf("metrics: %d", status)
	}
	if !strings.Contains(text, `bundled_corpus_requests_total{corpus="ev\"il"}`) {
		t.Errorf("metrics missing escaped hostile corpus label:\n%s", grepMetric(text, "bundled_corpus_requests_total"))
	}
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("metrics line %d does not parse: %q", i+1, line)
		}
	}
}

// TestSpanCorpusID checks the worker-span-key → corpus-ID mapping the
// fleet scoping relies on (the coordinator keys spans "<corpus>/<start>").
func TestSpanCorpusID(t *testing.T) {
	cases := []struct{ key, want string }{
		{"shop/0", "shop"},
		{"shop/128", "shop"},
		{"a/b/64", "a/b"},
		{"x/123/0", "x/123"},
		{"noslash", "noslash"},
		{"trailing/", "trailing/"},
		{"not/digits", "not/digits"},
	}
	for _, c := range cases {
		if got := spanCorpusID(c.key); got != c.want {
			t.Errorf("spanCorpusID(%q) = %q, want %q", c.key, got, c.want)
		}
	}
}

// TestFleetTenantScoping verifies GET /debug/fleet is scoped like
// /v1/usage: an authenticated tenant sees every worker's health and load
// but only the span rows of its own and public corpora — never another
// tenant's corpus IDs or per-span traffic — while an open daemon serves
// the full admin view.
func TestFleetTenantScoping(t *testing.T) {
	fleet := func(ctx context.Context) FleetResponse {
		return FleetResponse{
			Workers: []FleetWorkerDoc{{
				Addr: "w1", Reachable: true, Status: "ok",
				Spans: []FleetSpanDoc{
					{Corpus: "al/0", Requests: 3},
					{Corpus: "bo/0", Requests: 5},
					{Corpus: "pub/0", Requests: 1},
					{Corpus: "ghost/0", Requests: 9}, // fed once, corpus since deleted
				},
			}},
			Reachable: 1,
		}
	}
	auth, err := ParseAuthKeys("alice=sk-a,bob=sk-b")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Auth: auth, Fleet: fleet})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if status, body := authRequest(t, ts, http.MethodPost, "/v1/corpora", "sk-a", tinyUpload("al", 4)); status != http.StatusCreated {
		t.Fatalf("alice upload: %d: %s", status, body)
	}
	if status, body := authRequest(t, ts, http.MethodPost, "/v1/corpora", "sk-b", tinyUpload("bo", 4)); status != http.StatusCreated {
		t.Fatalf("bob upload: %d: %s", status, body)
	}
	// A corpus registered while auth was off is public: visible to everyone.
	if err := Preload(srv, "pub", testMatrix(t, 4, 2, 1), bundling.Options{}); err != nil {
		t.Fatal(err)
	}

	getFleet := func(key string) FleetResponse {
		t.Helper()
		status, body := authRequest(t, ts, http.MethodGet, "/debug/fleet", key, "")
		if status != http.StatusOK {
			t.Fatalf("fleet (%s): %d: %s", key, status, body)
		}
		var resp FleetResponse
		if err := decodeString(body, &resp); err != nil {
			t.Fatalf("fleet decode: %v\n%s", err, body)
		}
		return resp
	}
	spanKeys := func(resp FleetResponse) []string {
		var keys []string
		for _, w := range resp.Workers {
			for _, sp := range w.Spans {
				keys = append(keys, sp.Corpus)
			}
		}
		return keys
	}

	alice := getFleet("sk-a")
	if alice.Scope != "tenant" || alice.Tenant != "alice" {
		t.Fatalf("alice scope = %q tenant = %q, want tenant/alice", alice.Scope, alice.Tenant)
	}
	if got, want := spanKeys(alice), []string{"al/0", "pub/0"}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("alice spans = %v, want %v", got, want)
	}
	if len(alice.Workers) != 1 || !alice.Workers[0].Reachable {
		t.Errorf("scoping must keep the worker rows: %+v", alice.Workers)
	}

	bob := getFleet("sk-b")
	if got, want := spanKeys(bob), []string{"bo/0", "pub/0"}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("bob spans = %v, want %v", got, want)
	}

	// The open daemon serves the admin view: every span, ghost included.
	osrv := New(Config{Fleet: fleet})
	defer osrv.Close()
	ots := httptest.NewServer(osrv.Handler())
	defer ots.Close()
	status, body := authRequest(t, ots, http.MethodGet, "/debug/fleet", "", "")
	if status != http.StatusOK {
		t.Fatalf("open fleet: %d: %s", status, body)
	}
	var open FleetResponse
	if err := decodeString(body, &open); err != nil {
		t.Fatal(err)
	}
	if open.Scope != "admin" || open.Tenant != "" {
		t.Fatalf("open scope = %q tenant = %q, want admin/\"\"", open.Scope, open.Tenant)
	}
	if got := spanKeys(open); len(got) != 4 {
		t.Errorf("admin spans = %v, want all 4", got)
	}
}
