package config

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"bundling/internal/wtp"
)

// deltaBatch draws a random mutation batch against the matrix: adds, value
// updates, deletes of present and absent cells, duplicates and no-op
// rewrites — the full alphabet the differential suite must cover.
func deltaBatch(rng *rand.Rand, w *wtp.Matrix, count int) []wtp.Cell {
	cells := make([]wtp.Cell, 0, count)
	for len(cells) < count {
		u, i := rng.Intn(w.Consumers()), rng.Intn(w.Items())
		switch rng.Intn(6) {
		case 0:
			cells = append(cells, wtp.Cell{Consumer: u, Item: i, Delete: true})
		case 1:
			cells = append(cells, wtp.Cell{Consumer: u, Item: i, Value: w.At(u, i)})
		default:
			cells = append(cells, wtp.Cell{Consumer: u, Item: i, Value: 0.5 + rng.Float64()*30})
		}
		if len(cells) < count && rng.Intn(3) == 0 {
			prev := cells[len(cells)-1]
			cells = append(cells, wtp.Cell{Consumer: prev.Consumer, Item: prev.Item, Value: 0.5 + rng.Float64()*30})
		}
	}
	return cells
}

// replay applies the delta to a from-scratch mutable copy of w — the
// reference a delta-derived session is diffed against.
func replay(t *testing.T, w *wtp.Matrix, cells []wtp.Cell) *wtp.Matrix {
	t.Helper()
	nw := wtp.MustNew(w.Consumers(), w.Items())
	for u := 0; u < w.Consumers(); u++ {
		for i := 0; i < w.Items(); i++ {
			if v := w.At(u, i); v != 0 {
				nw.MustSet(u, i, v)
			}
		}
	}
	for _, c := range cells {
		if c.Delete {
			if err := nw.Delete(c.Consumer, c.Item); err != nil {
				t.Fatal(err)
			}
		} else {
			nw.MustSet(c.Consumer, c.Item, c.Value)
		}
	}
	return nw
}

// TestDeltaSolverMatchesRebuild chains random deltas through Solver.ApplyDelta
// and, at every generation, diffs all five algorithms plus Evaluate against a
// from-scratch session over an independently rebuilt matrix. Tolerance 1e-9.
func TestDeltaSolverMatchesRebuild(t *testing.T) {
	for _, strategy := range []Strategy{Pure, Mixed} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%v/seed%d", strategy, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				params := DefaultParams()
				params.Strategy = strategy
				params.Theta = 0.1
				w := equivMatrix(t, seed*101, 60, 14, 0.3)
				s, err := NewSolver(w, params)
				if err != nil {
					t.Fatal(err)
				}
				for round := 0; round < 3; round++ {
					cells := deltaBatch(rng, s.Matrix(), 1+rng.Intn(15))
					next, err := s.ApplyDelta(cells, nil)
					if err != nil {
						t.Fatalf("round %d: %v", round, err)
					}
					if next.Stats().Version != s.Stats().Version+1 {
						t.Fatalf("round %d: version %d, want %d", round, next.Stats().Version, s.Stats().Version+1)
					}
					rebuilt := replay(t, s.Matrix(), cells)
					fresh, err := NewSolver(rebuilt, params)
					if err != nil {
						t.Fatal(err)
					}
					for _, a := range Algorithms() {
						label := fmt.Sprintf("round %d %s", round, a.Name())
						got, err := next.Solve(a)
						if err != nil {
							t.Fatalf("%s (delta): %v", label, err)
						}
						want, err := fresh.Solve(a)
						if err != nil {
							t.Fatalf("%s (rebuild): %v", label, err)
						}
						sameConfiguration(t, label, got, want, 1e-9)
					}
					// Evaluate the rebuilt session's greedy partition on both.
					cfg, err := fresh.Solve(GreedyAlgorithm())
					if err != nil {
						t.Fatal(err)
					}
					offers := make([][]int, 0, len(cfg.Bundles))
					for _, b := range cfg.Bundles {
						offers = append(offers, b.Items)
					}
					got, err := next.Evaluate(offers)
					if err != nil {
						t.Fatalf("round %d evaluate (delta): %v", round, err)
					}
					want, err := fresh.Evaluate(offers)
					if err != nil {
						t.Fatalf("round %d evaluate (rebuild): %v", round, err)
					}
					sameConfiguration(t, fmt.Sprintf("round %d evaluate", round), got, want, 1e-9)
					s = next
				}
			})
		}
	}
}

// TestDeltaConcurrentSolves races solves against mutation: worker goroutines
// keep solving on whatever session generation they hold while the main
// goroutine chains deltas. Old generations must keep serving their snapshot
// unperturbed (run with -race).
func TestDeltaConcurrentSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := equivMatrix(t, 7, 50, 12, 0.3)
	params := DefaultParams()
	s, err := NewSolver(w, params)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := s.Solve(GreedyAlgorithm())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				cfg, err := s.Solve(GreedyAlgorithm())
				if err != nil {
					t.Errorf("concurrent solve: %v", err)
					return
				}
				if math.Abs(cfg.Revenue-baseline.Revenue) > 1e-9 {
					t.Errorf("old generation drifted: revenue %.12f, want %.12f", cfg.Revenue, baseline.Revenue)
					return
				}
			}
		}()
	}
	cur := s
	for round := 0; round < 8; round++ {
		cells := deltaBatch(rng, cur.Matrix(), 1+rng.Intn(10))
		next, err := cur.ApplyDelta(cells, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := next.Solve(MatchingAlgorithm()); err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	close(done)
	wg.Wait()
}
