package main

// The chaos experiment benchmarks the resilience layer: it drives the
// scatter/gather evaluate path through cluster.Solver over a 3-worker
// in-process fleet whose transports inject faults (transport errors plus
// stale-span rejections) at 0%, 10% and 30% per-call rates, recording
// throughput, tail latency and the fallback rate at each level. Every
// result is still checked against the single-machine solver within 1e-9 —
// the ladder (re-feed, replica, local span store) must absorb the injected
// faults without touching results, so the committed BENCH_chaos.json is a
// fault-tolerance certificate, not just a performance record. With
// -benchout it writes BENCH_chaos.json.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bundling"
	"bundling/internal/cluster"
	"bundling/internal/config"
	"bundling/internal/experiments"
)

// ChaosRun is one fault level's measured evaluate behavior.
type ChaosRun struct {
	FaultRate   float64      `json:"fault_rate"` // injected error probability per call
	StaleRate   float64      `json:"stale_rate"` // injected stale-span probability per query
	RPS         float64      `json:"requests_per_second"`
	DurationSec float64      `json:"duration_seconds"`
	Latency     ServeLatency `json:"latency"`

	RemoteCalls    int64 `json:"remote_calls"`
	Refeeds        int64 `json:"refeeds"`
	ReplicaRetries int64 `json:"replica_retries"`
	Fallbacks      int64 `json:"local_fallbacks"`
	InjectedErrors int64 `json:"injected_errors"`
	InjectedStale  int64 `json:"injected_stale"`
	// FallbackRate is local fallbacks per span request (RPC ladder entries),
	// the headline degradation measure.
	FallbackRate float64 `json:"fallback_rate"`
}

// ChaosReport is the file schema of BENCH_chaos.json.
type ChaosReport struct {
	GeneratedAt string `json:"generated_at"`
	Scale       string `json:"scale"`
	Users       int    `json:"users"`
	Items       int    `json:"items"`
	Go          string `json:"go"`
	NumCPU      int    `json:"numcpu"`
	MaxProcs    int    `json:"maxprocs"`
	StripeSize  int    `json:"stripe_size"`
	Workers     int    `json:"workers"`
	Concurrency int    `json:"concurrency"`
	Requests    int    `json:"requests"`
	OfferPool   int    `json:"offer_pool"`

	// MaxRelDiff is the largest relative revenue difference observed between
	// any chaos-fleet evaluate and its single-machine counterpart (the
	// harness fails above 1e-9).
	MaxRelDiff float64 `json:"max_rel_diff"`

	Runs []ChaosRun `json:"runs"`
}

// runChaos measures the evaluate path through a 3-worker fleet at rising
// injected-fault rates.
func runChaos(env *experiments.Env, scaleName, outPath string, base config.Params, conc, totalReqs int) error {
	users := env.W.Consumers()
	stripeSize := (users + 7) / 8
	opts := bundling.Options{
		Theta:         base.Theta,
		MaxBundleSize: base.K,
		Parallelism:   base.Parallelism,
		StripeSize:    stripeSize,
	}
	local, err := bundling.NewSolver(env.W, opts)
	if err != nil {
		return err
	}
	pool := offerPool(env.W.Items(), 32)
	want := make([]*bundling.Configuration, len(pool))
	for i, offers := range pool {
		if want[i], err = local.Evaluate(offers); err != nil {
			return fmt.Errorf("local evaluate %d: %w", i, err)
		}
	}

	report := ChaosReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Scale:       scaleName,
		Users:       users,
		Items:       env.W.Items(),
		Go:          runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		MaxProcs:    runtime.GOMAXPROCS(0),
		StripeSize:  stripeSize,
		Workers:     3,
		Concurrency: conc,
		Requests:    totalReqs,
		OfferPool:   len(pool),
	}

	for _, rate := range []float64{0, 0.10, 0.30} {
		staleRate := rate / 2
		transports := make([]cluster.Transport, report.Workers)
		chaos := make([]*cluster.ChaosTransport, report.Workers)
		for i := range transports {
			base := cluster.NewLocal(cluster.NewWorker(cluster.WorkerConfig{}), fmt.Sprintf("inproc-%d", i))
			chaos[i] = cluster.NewChaos(base, cluster.ChaosConfig{
				Seed:      int64(1000*rate) + int64(i) + 1,
				ErrorRate: rate,
				StaleRate: staleRate,
			})
			transports[i] = chaos[i]
		}
		cs, err := cluster.NewSolver(env.W, opts, cluster.Config{Workers: transports, RequestTimeout: 5 * time.Second})
		if err != nil {
			return err
		}

		lat := make([]time.Duration, totalReqs)
		var cursor atomic.Int64
		var errMu sync.Mutex
		var firstErr error
		var maxDiff atomicFloat
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= totalReqs {
						return
					}
					p := i % len(pool)
					t0 := time.Now()
					cfg, err := cs.Evaluate(pool[p])
					lat[i] = time.Since(t0)
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
					denom := 1 + math.Abs(want[p].Revenue)
					maxDiff.max(math.Abs(cfg.Revenue-want[p].Revenue) / denom)
				}
			}()
		}
		wg.Wait()
		dur := time.Since(start)
		if firstErr != nil {
			return fmt.Errorf("fault rate %g: %w", rate, firstErr)
		}
		if d := maxDiff.load(); d > 1e-9 {
			return fmt.Errorf("fault rate %g: chaos/local revenue diverged: max relative diff %g > 1e-9", rate, d)
		}
		if d := maxDiff.load(); d > report.MaxRelDiff {
			report.MaxRelDiff = d
		}

		st := cs.ClusterStats()
		var injErr, injStale int64
		for _, c := range chaos {
			e, s, _ := c.InjectedFaults()
			injErr += e
			injStale += s
		}
		run := ChaosRun{
			FaultRate:      rate,
			StaleRate:      staleRate,
			RPS:            float64(totalReqs) / dur.Seconds(),
			DurationSec:    dur.Seconds(),
			Latency:        latencySummary(lat),
			RemoteCalls:    st.RemoteCalls,
			Refeeds:        st.Refeeds,
			ReplicaRetries: st.ReplicaRetries,
			Fallbacks:      st.LocalFallbacks,
			InjectedErrors: injErr,
			InjectedStale:  injStale,
		}
		if ladder := st.LocalFallbacks + st.RemoteCalls; ladder > 0 {
			run.FallbackRate = float64(st.LocalFallbacks) / float64(ladder)
		}
		report.Runs = append(report.Runs, run)
		fmt.Printf("chaos: %.0f%% faults: %.1f eval/s (p50 %.2fms p99 %.2fms), %d RPCs, %d refeeds, %d replica retries, %d fallbacks (%.1f%%)\n",
			rate*100, run.RPS, run.Latency.P50, run.Latency.P99,
			st.RemoteCalls, st.Refeeds, st.ReplicaRetries, st.LocalFallbacks, run.FallbackRate*100)
	}
	fmt.Printf("chaos: max relative revenue diff vs local: %g (bound 1e-9)\n", report.MaxRelDiff)

	if outPath == "" || outPath == "-" {
		return nil
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
