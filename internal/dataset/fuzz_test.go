package dataset

import (
	"strings"
	"testing"
)

// FuzzReadCSV ensures arbitrary input never panics the parser and that
// anything it accepts round-trips.
func FuzzReadCSV(f *testing.F) {
	f.Add("price,0,9.99\nrating,0,0,5\n")
	f.Add("price,0,1\nprice,1,2\nrating,0,0,1\nrating,1,1,5\n")
	f.Add("rating,0,0,5\n")        // missing price
	f.Add("price,0\n")             // short row
	f.Add("bogus,1,2,3\n")         // unknown kind
	f.Add("price,0,abc\n")         // bad float
	f.Add("rating,a,b,c\n")        // bad ints
	f.Add("price,0,1\n\"unclosed") // malformed CSV quoting
	f.Fuzz(func(t *testing.T, input string) {
		ds, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted datasets must be internally consistent.
		if len(ds.Prices) != ds.Items {
			t.Fatalf("accepted dataset with %d prices for %d items", len(ds.Prices), ds.Items)
		}
		for _, r := range ds.Ratings {
			if r.Consumer < 0 || r.Consumer >= ds.Users || r.Item < 0 || r.Item >= ds.Items {
				t.Fatalf("accepted out-of-range rating %+v", r)
			}
		}
		var buf strings.Builder
		if err := ds.WriteCSV(&buf); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadCSV(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(back.Ratings) != len(ds.Ratings) {
			t.Fatalf("round trip lost ratings: %d vs %d", len(back.Ratings), len(ds.Ratings))
		}
	})
}
