package main

// The codec experiment certifies the binary columnar wire/disk format
// against its JSON predecessors on the generated corpus: for each of the
// three hot payloads (matrix upload, cluster span feed, persisted corpus
// record) it measures encoded bytes and encode/decode throughput in both
// codecs, then proves equivalence end to end — every algorithm solved over
// a binary-fed HTTP worker fleet must match the single-machine solver
// within 1e-9 (on a recorded solver-tractable slice of the corpus when the
// full one would take hours of pair pricing), and the binary matrix must
// round-trip bit-identically. The harness fails on any mismatch and on a
// span or record payload above half the JSON bytes, so the committed
// BENCH_codec.json is a size and equivalence certificate, not just a
// measurement.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"bundling"
	"bundling/internal/cluster"
	"bundling/internal/codec"
	"bundling/internal/config"
	"bundling/internal/experiments"
	"bundling/internal/server"
)

// CodecPayload is one payload's size and throughput comparison.
type CodecPayload struct {
	Name      string `json:"name"`
	JSONBytes int    `json:"json_bytes"`
	BinBytes  int    `json:"bin_bytes"`
	// BinOverJSON is the compression certificate: the span and record
	// payloads must stay at or below 0.5.
	BinOverJSON  float64 `json:"bin_over_json"`
	EncodeMBPerS float64 `json:"encode_mb_per_sec"`
	DecodeMBPerS float64 `json:"decode_mb_per_sec"`
}

// CodecAlgo is one algorithm's binary-fed-cluster equivalence entry.
type CodecAlgo struct {
	Algorithm string  `json:"algorithm"`
	Revenue   float64 `json:"revenue"`
	RelDiff   float64 `json:"rel_diff"` // vs the single-machine solver
}

// CodecReport is the file schema of BENCH_codec.json.
type CodecReport struct {
	GeneratedAt string `json:"generated_at"`
	Scale       string `json:"scale"`
	Users       int    `json:"users"`
	Items       int    `json:"items"`
	Entries     int    `json:"entries"`
	Go          string `json:"go"`
	NumCPU      int    `json:"numcpu"`
	MaxProcs    int    `json:"maxprocs"`
	StripeSize  int    `json:"stripe_size"`

	Payloads []CodecPayload `json:"payloads"`

	// Equivalence of the full pipeline: every algorithm solved through a
	// binary-fed two-worker HTTP fleet vs the local solver. Sizes above are
	// always the full corpus; the solves run on a slice of it when the full
	// corpus is solver-intractable in a bench run (hours of optimal2 pair
	// pricing at paper scale) — the slice dimensions are recorded here, so
	// the certificate states exactly what was proven.
	EquivUsers   int         `json:"equiv_users"`
	EquivItems   int         `json:"equiv_items"`
	EquivEntries int         `json:"equiv_entries"`
	ClusterAlgos []CodecAlgo `json:"cluster_algorithms"`
	MaxRelDiff   float64     `json:"max_rel_diff"`
	FeedBytesBin int64       `json:"feed_bytes_bin"`
}

// throughput times fn over enough iterations to be measurable and returns
// MB/s against the payload size it processes per call.
func throughput(payloadBytes int, fn func() error) (float64, error) {
	iters := 1
	if payloadBytes > 0 {
		if iters = (64 << 20) / payloadBytes; iters < 3 {
			iters = 3
		}
		if iters > 200 {
			iters = 200
		}
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return 0, nil
	}
	return float64(payloadBytes) * float64(iters) / (1 << 20) / elapsed, nil
}

// runCodec measures the three payloads and runs the cluster equivalence
// gate, writing BENCH_codec.json with -benchout.
func runCodec(env *experiments.Env, scaleName, outPath string, base config.Params) error {
	users, items := env.W.Consumers(), env.W.Items()
	stripeSize := (users + 7) / 8
	report := CodecReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Scale:       scaleName,
		Users:       users,
		Items:       items,
		Entries:     env.W.Entries(),
		Go:          runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		MaxProcs:    runtime.GOMAXPROCS(0),
		StripeSize:  stripeSize,
	}

	// --- matrix: the upload payload ------------------------------------
	doc := bundling.NewMatrixDoc(env.W)
	jsonMatrix, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	binMatrix, err := doc.MarshalBinary()
	if err != nil {
		return err
	}
	var rt bundling.MatrixDoc
	if err := rt.UnmarshalBinary(binMatrix); err != nil {
		return fmt.Errorf("matrix round-trip: %w", err)
	}
	if rt.Consumers != doc.Consumers || rt.Items != doc.Items || len(rt.Entries) != len(doc.Entries) {
		return fmt.Errorf("matrix round-trip changed shape: %d×%d/%d vs %d×%d/%d",
			rt.Consumers, rt.Items, len(rt.Entries), doc.Consumers, doc.Items, len(doc.Entries))
	}
	for i := range rt.Entries {
		if rt.Entries[i] != doc.Entries[i] {
			return fmt.Errorf("matrix round-trip entry %d: %v != %v (must be bit-identical)", i, rt.Entries[i], doc.Entries[i])
		}
	}
	encM, err := throughput(len(binMatrix), func() error { _, err := doc.MarshalBinary(); return err })
	if err != nil {
		return err
	}
	decM, err := throughput(len(binMatrix), func() error {
		var d bundling.MatrixDoc
		return d.UnmarshalBinary(binMatrix)
	})
	if err != nil {
		return err
	}
	report.Payloads = append(report.Payloads, CodecPayload{
		Name: "matrix", JSONBytes: len(jsonMatrix), BinBytes: len(binMatrix),
		BinOverJSON:  float64(len(binMatrix)) / float64(len(jsonMatrix)),
		EncodeMBPerS: encM, DecodeMBPerS: decM,
	})
	fmt.Println("codec: matrix payload measured")

	// --- span: the cluster feed payload --------------------------------
	sh := env.W.Shard(stripeSize)
	span := sh.Span(0, sh.Stripes())
	jsonSpan, err := json.Marshal(cluster.AssignRequest{Corpus: "bench", Span: span})
	if err != nil {
		return err
	}
	binSpan := codec.EncodeAssign("bench", span)
	if _, rtSpan, err := codec.DecodeAssign(binSpan); err != nil {
		return fmt.Errorf("span round-trip: %w", err)
	} else if _, err := rtSpan.Store(); err != nil {
		return fmt.Errorf("span round-trip store: %w", err)
	}
	encS, err := throughput(len(binSpan), func() error { codec.EncodeAssign("bench", span); return nil })
	if err != nil {
		return err
	}
	decS, err := throughput(len(binSpan), func() error { _, _, err := codec.DecodeAssign(binSpan); return err })
	if err != nil {
		return err
	}
	spanPayload := CodecPayload{
		Name: "span", JSONBytes: len(jsonSpan), BinBytes: len(binSpan),
		BinOverJSON:  float64(len(binSpan)) / float64(len(jsonSpan)),
		EncodeMBPerS: encS, DecodeMBPerS: decS,
	}
	report.Payloads = append(report.Payloads, spanPayload)

	// --- record: the persisted corpus payload --------------------------
	opts := server.OptionsDoc{Strategy: "mixed", Theta: base.Theta}
	jsonRecord, err := json.Marshal(server.CorpusRecord{
		ID: "bench", Generation: 1, CreatedAt: time.Now().UTC(),
		Options: opts, Matrix: doc, Entries: env.W.Entries(),
	})
	if err != nil {
		return err
	}
	optsJSON, err := json.Marshal(opts)
	if err != nil {
		return err
	}
	rec := &codec.Record{
		ID: "bench", Generation: 1, CreatedAt: time.Now().UTC(),
		OptionsJSON: optsJSON, Matrix: codec.MatrixData(*doc), Entries: env.W.Entries(),
	}
	binRecord, err := codec.EncodeRecord(rec)
	if err != nil {
		return err
	}
	rtRec, err := codec.DecodeRecord(binRecord)
	if err != nil {
		return fmt.Errorf("record round-trip: %w", err)
	}
	if rtRec.ID != rec.ID || !bytes.Equal(rtRec.OptionsJSON, rec.OptionsJSON) || len(rtRec.Matrix.Entries) != len(rec.Matrix.Entries) {
		return fmt.Errorf("record round-trip mismatch")
	}
	encR, err := throughput(len(binRecord), func() error { _, err := codec.EncodeRecord(rec); return err })
	if err != nil {
		return err
	}
	decR, err := throughput(len(binRecord), func() error { _, err := codec.DecodeRecord(binRecord); return err })
	if err != nil {
		return err
	}
	recPayload := CodecPayload{
		Name: "record", JSONBytes: len(jsonRecord), BinBytes: len(binRecord),
		BinOverJSON:  float64(len(binRecord)) / float64(len(jsonRecord)),
		EncodeMBPerS: encR, DecodeMBPerS: decR,
	}
	report.Payloads = append(report.Payloads, recPayload)

	// The acceptance gate: span feed and corpus record at or below half the
	// JSON bytes on this corpus.
	for _, p := range []CodecPayload{spanPayload, recPayload} {
		if p.BinOverJSON > 0.5 {
			return fmt.Errorf("%s payload is %.1f%% of JSON (%d/%d bytes); the codec must stay at or below 50%%",
				p.Name, p.BinOverJSON*100, p.BinBytes, p.JSONBytes)
		}
	}
	fmt.Println("codec: span + record payloads measured, size gate passed")

	// --- equivalence: every algorithm over a binary-fed HTTP fleet ------
	// The solve corpus is the full matrix when tractable, else a contiguous
	// consumer×item slice of it: every algorithm at paper scale prices
	// millions of candidate pairs (hours of CPU), while the codec path
	// under test — span encode, feed, worker decode, stripe kernels — is
	// identical at any size. The slice dimensions go into the report, so
	// the certificate states exactly what was proven.
	const maxEquivUsers, maxEquivItems = 2000, 600
	eqW := env.W
	if eqW.Consumers() > maxEquivUsers || eqW.Items() > maxEquivItems {
		sub := &bundling.MatrixDoc{Consumers: min(eqW.Consumers(), maxEquivUsers), Items: min(eqW.Items(), maxEquivItems)}
		for _, e := range doc.Entries {
			if int(e[0]) < sub.Consumers && int(e[1]) < sub.Items {
				sub.Entries = append(sub.Entries, e)
			}
		}
		if eqW, err = sub.Matrix(); err != nil {
			return fmt.Errorf("equivalence slice: %w", err)
		}
	}
	report.EquivUsers, report.EquivItems, report.EquivEntries = eqW.Consumers(), eqW.Items(), eqW.Entries()
	fmt.Printf("codec: equivalence corpus %d users × %d items, %d entries\n",
		report.EquivUsers, report.EquivItems, report.EquivEntries)
	wk0, wk1 := cluster.NewWorker(cluster.WorkerConfig{}), cluster.NewWorker(cluster.WorkerConfig{})
	ts0 := httptest.NewServer(wk0.Handler())
	defer ts0.Close()
	ts1 := httptest.NewServer(wk1.Handler())
	defer ts1.Close()
	transports, err := cluster.Transports(ts0.URL+","+ts1.URL, nil)
	if err != nil {
		return err
	}
	solverOpts := bundling.Options{
		Strategy:      bundling.Mixed,
		Theta:         base.Theta,
		MaxBundleSize: base.K,
		Parallelism:   base.Parallelism,
		StripeSize:    (eqW.Consumers() + 7) / 8,
	}
	local, err := bundling.NewSolver(eqW, solverOpts)
	if err != nil {
		return err
	}
	binBefore, jsonBefore := cluster.FeedBytes()
	cs, err := cluster.NewSolver(eqW, solverOpts, cluster.Config{Workers: transports})
	if err != nil {
		return err
	}
	for _, alg := range bundling.Algorithms() {
		t0 := time.Now()
		want, err := local.Solve(alg)
		if err != nil {
			return fmt.Errorf("%s local: %w", alg.Name(), err)
		}
		tLocal := time.Since(t0)
		t0 = time.Now()
		got, err := cs.Solve(alg)
		if err != nil {
			return fmt.Errorf("%s binary-fed cluster: %w", alg.Name(), err)
		}
		diff := math.Abs(got.Revenue-want.Revenue) / (1 + math.Abs(want.Revenue))
		fmt.Printf("codec: %s local %.1fs, binary-fed cluster %.1fs, rel diff %.3g\n",
			alg.Name(), tLocal.Seconds(), time.Since(t0).Seconds(), diff)
		report.ClusterAlgos = append(report.ClusterAlgos, CodecAlgo{
			Algorithm: alg.Name(), Revenue: got.Revenue, RelDiff: diff,
		})
		if diff > report.MaxRelDiff {
			report.MaxRelDiff = diff
		}
	}
	if report.MaxRelDiff > 1e-9 {
		return fmt.Errorf("binary-fed cluster diverged: max relative diff %.3g > 1e-9", report.MaxRelDiff)
	}
	binAfter, jsonAfter := cluster.FeedBytes()
	report.FeedBytesBin = binAfter - binBefore
	if report.FeedBytesBin == 0 {
		return fmt.Errorf("cluster fed no binary span bytes; the feed fell back to JSON")
	}
	if jsonAfter != jsonBefore {
		return fmt.Errorf("cluster fed %d JSON bytes; the binary feed must not fall back here", jsonAfter-jsonBefore)
	}

	fmt.Println("codec: binary vs JSON on this corpus")
	for _, p := range report.Payloads {
		fmt.Printf("  %-7s %9d B json  %9d B bin  (%.1f%%)  enc %.0f MB/s  dec %.0f MB/s\n",
			p.Name, p.JSONBytes, p.BinBytes, p.BinOverJSON*100, p.EncodeMBPerS, p.DecodeMBPerS)
	}
	fmt.Printf("  cluster equivalence: %d algorithms, max rel diff %.3g, %d binary feed bytes\n\n",
		len(report.ClusterAlgos), report.MaxRelDiff, report.FeedBytesBin)

	if outPath == "" {
		return nil
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(buf, '\n'), 0o644)
}
