package setpack

import (
	"math/bits"
	"math/rand"
	"testing"
)

// This file validates the reduction in the paper's Theorem 1 proof sketch:
// 3-sized pure bundling ⟷ maximum matching in a hypergraph with edges of
// size 1-3. Given a 3-uniform hypergraph H, the proof builds H' by giving
// every original edge weight 3+Δ and adding "dummy" edges of size 1
// (weight 1), size 2 (weight 2) and size 3 (weight 3); a maximum matching
// in H' recovers a maximum matching in H. The test constructs exactly this
// H' as a set-packing weight vector, solves it exactly, and checks the
// recovered matching size equals a brute-force maximum matching of H.

// maxHypergraphMatching brute-forces the maximum number of pairwise
// disjoint edges of a 3-uniform hypergraph.
func maxHypergraphMatching(edges [][3]int) int {
	best := 0
	var rec func(idx, used, count int)
	rec = func(idx, used, count int) {
		if count > best {
			best = count
		}
		for i := idx; i < len(edges); i++ {
			m := 1<<uint(edges[i][0]) | 1<<uint(edges[i][1]) | 1<<uint(edges[i][2])
			if used&m == 0 {
				rec(i+1, used|m, count+1)
			}
		}
	}
	rec(0, 0, 0)
	return best
}

func TestTheorem1Reduction(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const delta = 0.5
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(7) // up to 10 vertices
		// Random 3-uniform hypergraph.
		var hEdges [][3]int
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				for c := b + 1; c < n; c++ {
					if rng.Float64() < 0.25 {
						hEdges = append(hEdges, [3]int{a, b, c})
					}
				}
			}
		}
		// Build H' as a dense weight vector: dummy size-1/2/3 edges at
		// weights 1/2/3 and original edges at 3+Δ.
		weights := make([]float64, 1<<uint(n))
		for m := 1; m < len(weights); m++ {
			switch bits.OnesCount(uint(m)) {
			case 1:
				weights[m] = 1
			case 2:
				weights[m] = 2
			case 3:
				weights[m] = 3
			}
		}
		for _, e := range hEdges {
			weights[1<<uint(e[0])|1<<uint(e[1])|1<<uint(e[2])] = 3 + delta
		}
		res, err := ExactDP(n, weights)
		if err != nil {
			t.Fatal(err)
		}
		// Every vertex is covered (dummy singletons are free revenue), so
		// the packing weight is n + Δ·(#original edges matched): original
		// edges beat any dummy decomposition of the same 3 vertices by Δ.
		matched := 0
		for _, m := range res.Masks {
			if bits.OnesCount(uint(m)) == 3 && weights[m] == 3+delta {
				matched++
			}
		}
		want := maxHypergraphMatching(hEdges)
		if matched != want {
			t.Errorf("trial %d: reduction recovered %d matched hyperedges, brute force says %d",
				trial, matched, want)
		}
		wantWeight := float64(n) + delta*float64(want)
		if diff := res.Weight - wantWeight; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("trial %d: packing weight %g, want %g", trial, res.Weight, wantWeight)
		}
	}
}
