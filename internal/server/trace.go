package server

import (
	"context"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"bundling/internal/obs"
)

// tracedPath reports whether a request path gets a trace and a request log
// line: the /v1 API surface, where per-stage timings mean something.
// /healthz and /metrics probes stay untraced — they are scraped every few
// seconds and would wash the ring out.
func tracedPath(path string) bool {
	return strings.HasPrefix(path, "/v1/") || path == "/v1"
}

// trace is the outermost request middleware (inside only the recoverer):
// it stamps a server-generated X-Request-Id on every response, and for /v1
// requests opens a request-scoped trace — carried on the context, echoed as
// X-Trace-Id, pushed to the /debug/traces ring on completion, logged as one
// structured line, and dumped as a span tree when slower than the
// configured slow-request budget.
func (s *Server) trace(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := obs.NewID()
		w.Header().Set(obs.HeaderRequest, reqID)
		if s.traces == nil || !tracedPath(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		// A caller-supplied X-Trace-Id joins this request to the caller's
		// trace; otherwise the trace gets a fresh ID.
		traceID, _ := obs.Extract(r.Header)
		tr := obs.NewTrace(traceID, s.cfg.TraceSpans)
		tr.OnSpanEnd(s.met.ObserveStage)
		w.Header().Set(obs.HeaderTrace, tr.ID)
		ctx := obs.ContextWithTrace(r.Context(), tr)
		ctx, root := obs.StartSpan(ctx, "request")
		root.Tag("method", r.Method)
		root.Tag("path", r.URL.Path)
		root.Tag("request_id", reqID)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		dur := time.Since(start)
		root.Tag("status", sw.status())
		root.End()
		doc := tr.Finish()
		s.traces.Push(doc)
		s.logRequest(r, doc, sw.status(), reqID, dur)
	})
}

// statusWriter captures the response status for the trace and log line.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// logRequest emits the structured per-request log line and, past the
// slow-request budget, the full span tree.
func (s *Server) logRequest(r *http.Request, doc obs.TraceDoc, status int, reqID string, d time.Duration) {
	lg := s.cfg.Logger
	if lg == nil {
		return
	}
	attrs := []slog.Attr{
		slog.String("trace", doc.TraceID),
		slog.String("request_id", reqID),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.Float64("dur_ms", doc.DurMS),
	}
	for _, key := range []string{"tenant", "corpus", "algorithm"} {
		if v := doc.RootTag(key); v != "" {
			attrs = append(attrs, slog.String(key, v))
		}
	}
	level := slog.LevelInfo
	switch {
	case status >= 500:
		level = slog.LevelError
	case status >= 400:
		level = slog.LevelWarn
	}
	lg.LogAttrs(context.Background(), level, "request", attrs...)
	if s.cfg.SlowRequest > 0 && d >= s.cfg.SlowRequest {
		lg.LogAttrs(context.Background(), slog.LevelWarn, "slow request",
			slog.String("trace", doc.TraceID),
			slog.String("request_id", reqID),
			slog.Duration("budget", s.cfg.SlowRequest),
			slog.Float64("dur_ms", doc.DurMS),
			slog.String("spans", "\n"+doc.Tree()))
	}
}

// TracesResponse is the GET /debug/traces payload: recent traces, newest
// first.
type TracesResponse struct {
	Traces []obs.TraceDoc `json:"traces"`
}

// handleTraces serves the recent-trace ring. ?limit=N bounds the reply;
// with tracing disabled the list is empty. Auth-guarded like /v1: traces
// carry corpus IDs and request shapes, which are tenant data.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n <= 0 {
			s.fail(w, http.StatusBadRequest, "limit: want a positive integer, got %q", q)
			return
		}
		limit = n
	}
	docs := s.traces.Snapshot(limit)
	if docs == nil {
		docs = []obs.TraceDoc{}
	}
	writeJSON(w, http.StatusOK, TracesResponse{Traces: docs})
}

// RegisterPprof mounts the net/http/pprof profiling handlers on mux under
// /debug/pprof — shared by the server (Config.Pprof) and the bundleworker
// daemon (-pprof).
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// buildInfo reports the binary's Go toolchain version, main-module version
// and VCS revision (empty when unstamped), read once.
func buildInfo() (goVersion, modVersion, revision string) {
	buildInfoOnce.Do(func() {
		buildGoVersion = runtime.Version()
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.GoVersion != "" {
			buildGoVersion = bi.GoVersion
		}
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			buildModVersion = v
		}
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				buildRevision = kv.Value
			}
		}
	})
	return buildGoVersion, buildModVersion, buildRevision
}

var (
	buildInfoOnce   sync.Once
	buildGoVersion  string
	buildModVersion string
	buildRevision   string
)

// corporaCount is the corpus count /healthz reports: live sessions plus
// evicted-but-persisted corpora — everything a request could address.
func (s *Server) corporaCount() int {
	if s.cfg.Store == nil {
		return s.reg.len()
	}
	ids := map[string]bool{}
	for _, info := range s.reg.list() {
		ids[info.ID] = true
	}
	for _, info := range s.cfg.Store.ListLive("", true) {
		ids[info.ID] = true
	}
	return len(ids)
}
