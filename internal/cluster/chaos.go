package cluster

import (
	"context"
	"errors"
	"fmt"
	mrand "math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrChaos marks an injected fault, so tests and the bench harness can
// tell injected failures from real ones.
var ErrChaos = errors.New("cluster: injected fault")

// ChaosConfig sets a ChaosTransport's fault mix. All rates are
// probabilities in [0,1], rolled independently per call from the seeded
// RNG; the zero value injects nothing and passes every call through.
type ChaosConfig struct {
	// Seed seeds the fault RNG (0 = 1). Identical seeds over identical
	// call sequences reproduce identical fault schedules.
	Seed int64
	// Latency is the upper bound of uniformly drawn per-call added delay.
	Latency time.Duration
	// ErrorRate injects transport errors (wrapping ErrChaos): the RPC
	// fails as if the connection broke.
	ErrorRate float64
	// StaleRate injects span-staleness rejections (wrapping ErrSpan) on
	// query RPCs, exercising the re-feed ladder. Assign/Drop are exempt —
	// a feed cannot be "stale".
	StaleRate float64
}

// ChaosTransport wraps a Transport with deterministic fault injection for
// the chaos test-suite and cmd/bundlebench -exp chaos: seeded random added
// latency, injected errors, injected stale-span rejections, and two
// switchable whole-worker conditions — a partition (every call fails
// fast, health included) and a blackhole (every call hangs until its
// context expires, modeling a SIGSTOPped or silently dropping worker).
//
// Faults are injected before the real call, so an injected fault never
// consumes worker capacity. All methods are safe for concurrent use;
// condition switches apply to calls that start after the switch.
type ChaosTransport struct {
	t Transport

	mu  sync.Mutex
	rng *mrand.Rand
	cfg ChaosConfig

	partitioned atomic.Bool
	blackholed  atomic.Bool

	injectedErrors  atomic.Int64
	injectedStale   atomic.Int64
	injectedLatency atomic.Int64 // calls that were delayed
}

// NewChaos wraps t with fault injection under cfg.
func NewChaos(t Transport, cfg ChaosConfig) *ChaosTransport {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &ChaosTransport{t: t, rng: mrand.New(mrand.NewSource(cfg.Seed)), cfg: cfg}
}

// Partition switches the full-partition condition: when on, every call —
// health probes included — fails fast with an ErrChaos-wrapped error.
func (c *ChaosTransport) Partition(on bool) { c.partitioned.Store(on) }

// Blackhole switches the blackhole condition: when on, every call hangs
// until its context is done and returns the context's error, like a
// worker that accepts connections but never answers.
func (c *ChaosTransport) Blackhole(on bool) { c.blackholed.Store(on) }

// InjectedFaults reports how many errors and stale rejections were
// injected and how many calls were delayed.
func (c *ChaosTransport) InjectedFaults() (errors, stale, delayed int64) {
	return c.injectedErrors.Load(), c.injectedStale.Load(), c.injectedLatency.Load()
}

// roll draws this call's fault decisions in one locked section, keeping
// the schedule deterministic under a fixed seed and call order.
func (c *ChaosTransport) roll(query bool) (delay time.Duration, fail, stale bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.Latency > 0 {
		delay = time.Duration(c.rng.Int63n(int64(c.cfg.Latency) + 1))
	}
	if c.cfg.ErrorRate > 0 && c.rng.Float64() < c.cfg.ErrorRate {
		fail = true
	}
	if query && c.cfg.StaleRate > 0 && c.rng.Float64() < c.cfg.StaleRate {
		stale = true
	}
	return delay, fail, stale
}

// fault applies the pre-call fault schedule; a non-nil error aborts the
// call. query marks RPCs eligible for stale injection.
func (c *ChaosTransport) fault(ctx context.Context, query bool) error {
	if c.partitioned.Load() {
		c.injectedErrors.Add(1)
		return fmt.Errorf("%w: %s: partitioned", ErrChaos, c.t.Addr())
	}
	if c.blackholed.Load() {
		<-ctx.Done()
		return ctx.Err()
	}
	delay, fail, stale := c.roll(query)
	if delay > 0 {
		c.injectedLatency.Add(1)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if fail {
		c.injectedErrors.Add(1)
		return fmt.Errorf("%w: %s: injected error", ErrChaos, c.t.Addr())
	}
	if stale {
		c.injectedStale.Add(1)
		return fmt.Errorf("%w: %s: injected stale span", ErrSpan, c.t.Addr())
	}
	return nil
}

func (c *ChaosTransport) Assign(ctx context.Context, corpus string, req *AssignRequest) error {
	if err := c.fault(ctx, false); err != nil {
		return err
	}
	return c.t.Assign(ctx, corpus, req)
}

func (c *ChaosTransport) Drop(ctx context.Context, corpus string) error {
	if err := c.fault(ctx, false); err != nil {
		return err
	}
	return c.t.Drop(ctx, corpus)
}

func (c *ChaosTransport) Vector(ctx context.Context, corpus string, req VectorRequest) (VectorResponse, error) {
	if err := c.fault(ctx, true); err != nil {
		return VectorResponse{}, err
	}
	return c.t.Vector(ctx, corpus, req)
}

func (c *ChaosTransport) Union(ctx context.Context, corpus string, req UnionRequest) (VectorResponse, error) {
	if err := c.fault(ctx, true); err != nil {
		return VectorResponse{}, err
	}
	return c.t.Union(ctx, corpus, req)
}

func (c *ChaosTransport) Stats(ctx context.Context, corpus string, req StatsRequest) (StatsResponse, error) {
	if err := c.fault(ctx, true); err != nil {
		return StatsResponse{}, err
	}
	return c.t.Stats(ctx, corpus, req)
}

func (c *ChaosTransport) Hist(ctx context.Context, corpus string, req HistRequest) (HistResponse, error) {
	if err := c.fault(ctx, true); err != nil {
		return HistResponse{}, err
	}
	return c.t.Hist(ctx, corpus, req)
}

// Health is subject to partitions and blackholes (a probe cannot reach a
// partitioned worker) but exempt from the random error/stale/latency mix,
// so readiness flaps only on whole-worker conditions.
func (c *ChaosTransport) Health(ctx context.Context) (WorkerHealth, error) {
	if c.partitioned.Load() {
		return WorkerHealth{}, fmt.Errorf("%w: %s: partitioned", ErrChaos, c.t.Addr())
	}
	if c.blackholed.Load() {
		<-ctx.Done()
		return WorkerHealth{}, ctx.Err()
	}
	return c.t.Health(ctx)
}

func (c *ChaosTransport) Addr() string { return c.t.Addr() }
