package bundling

import (
	"io"

	"bundling/internal/dataset"
)

// Dataset is a rating corpus: (consumer, item, stars) triples plus per-item
// list prices. Convert it to a willingness-to-pay matrix with Dataset.WTP.
type Dataset = dataset.Dataset

// DatasetConfig configures the synthetic rating-corpus generator.
type DatasetConfig = dataset.GenConfig

// GenerateDataset synthesizes a rating corpus with realistic marginals:
// the paper's star distribution (3/5/13/29/49% for 1..5 stars), its price
// distribution (50% under $10, 45% $10-20, 4% above $20), heavy-tailed
// popularity, latent-genre co-rating structure, and iterative k-core
// filtering. Deterministic given cfg.Seed.
func GenerateDataset(cfg DatasetConfig) (*Dataset, error) {
	return dataset.Generate(cfg)
}

// PaperDatasetConfig returns the generator configuration matching the
// corpus statistics of the paper's Amazon Books dataset (4,449 users ×
// 5,028 items × ~108k ratings after 10-core filtering).
func PaperDatasetConfig() DatasetConfig {
	return dataset.PaperScaleConfig()
}

// ReadDatasetCSV parses a dataset from CSV ("price,item,value" and
// "rating,consumer,item,stars" rows), the format Dataset.WriteCSV emits.
// Use it to substitute real rating data for the synthetic corpus.
func ReadDatasetCSV(r io.Reader) (*Dataset, error) {
	return dataset.ReadCSV(r)
}
