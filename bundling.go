// Package bundling finds revenue-maximizing bundle configurations from
// consumer preference data.
//
// It reproduces Do, Lauw and Wang, "Mining Revenue-Maximizing Bundling
// Configuration", PVLDB 8(5), 2015. Given a willingness-to-pay matrix —
// typically mined from ratings — the library partitions a seller's
// inventory into priced bundles (pure bundling) or layers bundles on top of
// individually sold components (mixed bundling) so as to maximize total
// expected revenue.
//
// # Quick start
//
//	w := bundling.NewMatrix(3, 2) // 3 consumers, 2 items
//	w.MustSet(0, 0, 12) // consumer 0 pays up to $12 for item 0
//	// ... fill the matrix ...
//	solver, err := bundling.NewSolver(w, bundling.Options{})
//	cfg, err := solver.Solve(bundling.Matching())
//	// cfg.Bundles now holds the priced bundle partition.
//
// NewSolver indexes the matrix once — striped columnar postings, priced
// singletons, pricing scratch pools — and the returned Solver then serves
// any number of solves and what-if evaluations, including concurrent ones
// from multiple goroutines. Algorithms are values implementing the
// Algorithm interface: Components (no bundling), Optimal2 (exact for
// bundles up to two items), Matching and Greedy (the paper's heuristics for
// any bundle size), and FreqItemset (the "frequently bought together"
// baseline); Algorithms lists all five, AlgorithmByName resolves CLI
// names, and Solver.Evaluate prices caller-proposed configurations. The
// one-shot Solve* functions remain as thin wrappers that build a throwaway
// session per call.
//
// Willingness to pay can be mined from star ratings with FromRatings, or
// synthesized at any scale with the dataset generator in GenerateDataset.
// See the examples directory for end-to-end programs.
//
// # Storage and stripe sizing
//
// A Solver stores the matrix as fixed-size consumer stripes with columnar
// per-stripe postings: scans touch one stripe's contiguous arrays at a
// time, and per-stripe work units are independent, ready to be farmed to
// worker goroutines (or, eventually, other machines). Options.StripeSize
// sets the consumers-per-stripe (default 1024). Results are identical for
// any stripe size; tune it only for locality — smaller stripes when bundle
// scans thrash the cache on very dense corpora, larger ones to shave
// per-stripe overhead on small matrices.
//
// # Performance
//
// The configuration algorithms run on an incremental merge-evaluation
// engine. Candidate merges derive the merged bundle's interested-consumer
// vector from the two parents' cached vectors in O(|a|+|b|) (striped
// unions) instead of rescanning the raw item postings; candidate pricing
// runs entirely in per-worker scratch buffers, materializing a bundle node
// only when a candidate survives the gain filter; mixed-bundling price
// search sweeps all T price levels in O(m·log m + T) by sorting consumers
// on their switch-threshold price rather than rescanning all m consumers
// per level; and both the initial pair seeding and the per-iteration
// re-pricing after each merge are evaluated by a chunked parallel worker
// pool (Options via config.Params.Parallelism; results are deterministic
// regardless of worker count).
//
// Measured on the 600×150 bench corpus (single core, see
// BENCH_greedy.json): mixed greedy 3.41s → 0.64s per run (5.3×) with 7.8×
// fewer allocations, mixed matching 1.79s → 0.37s (4.9×) with 7.4× fewer,
// pure variants ~1.9× faster with ~80× fewer allocations — with revenues
// matching the reference postings-scan path within 1e-9 (the fast path
// reorders float arithmetic), as enforced by the equivalence property
// tests in internal/config, internal/wtp and internal/pricing. Session
// reuse amortizes the remaining indexing: repeated solves on one Solver
// skip shard construction and singleton pricing entirely (see the
// Solver/* rows in BENCH_greedy.json).
//
// # Serving
//
// For multi-user traffic, the cmd/bundled daemon serves Solver sessions
// over HTTP: upload a WTP corpus (the MatrixDoc JSON form or a ratings
// CSV) to create a named session, then hit it concurrently with solve and
// what-if evaluate requests. The serving layer adds an LRU-bounded result
// cache keyed by exact corpus version (a re-upload can never be served
// stale results), a micro-batcher that coalesces concurrent identical
// evaluate requests into one execution, Prometheus metrics, and graceful
// session eviction. Run with -data-dir, the daemon persists every uploaded
// corpus and restores its sessions — with identical results — after a
// restart; run with -auth-keys (or -auth-file) it serves multiple tenants
// with API-key authentication, per-tenant corpus ownership and quotas.
// The bundling/client package is the Go client; see the README's Serving
// section for a curl quickstart, docs/API.md and docs/OPERATIONS.md for
// the full wire and operations references, and cmd/bundlebench -exp serve
// for the load harness behind BENCH_serve.json.
//
// To scale past one machine, the same daemon runs as a cluster
// coordinator (bundled -workers host:port,...): each corpus's stripes are
// partitioned into spans shipped to cmd/bundleworker daemons, and solves
// and evaluates scatter per span and gather in stripe order, with corpus
// version checks on every RPC and a local fallback so a degraded fleet
// affects throughput, never results. See the README's Scaling out section
// and cmd/bundlebench -exp cluster (BENCH_cluster.json).
package bundling

import (
	"context"
	"fmt"

	"bundling/internal/adoption"
	"bundling/internal/config"
	"bundling/internal/wtp"
)

// Matrix is an M consumers × N items willingness-to-pay matrix, the input
// of every bundling algorithm.
type Matrix = wtp.Matrix

// Rating is one (consumer, item, stars) observation used by FromRatings.
type Rating = wtp.Rating

// Bundle is one priced offer of a configuration.
type Bundle = config.Bundle

// Configuration is the result of a bundling algorithm: priced top-level
// bundles, retained components (mixed bundling), total expected revenue and
// an iteration trace.
type Configuration = config.Configuration

// Strategy selects pure or mixed bundling.
type Strategy = config.Strategy

// The two bundling strategies of the paper (Sec. 3.2).
const (
	Pure  = config.Pure
	Mixed = config.Mixed
)

// Unlimited disables the bundle size cap.
const Unlimited = config.Unlimited

// NewMatrix returns an all-zero willingness-to-pay matrix.
func NewMatrix(consumers, items int) *Matrix {
	return wtp.MustNew(consumers, items)
}

// NewMatrixChecked is NewMatrix with dimension validation surfaced as an
// error instead of a panic — the form servers use on untrusted input.
func NewMatrixChecked(consumers, items int) (*Matrix, error) {
	return wtp.New(consumers, items)
}

// FromRatings mines willingness to pay from star ratings (1..5) and item
// list prices using the paper's linear conversion with factor λ ≥ 1
// (Sec. 6.1.1): WTP = stars/5 · λ · price.
func FromRatings(consumers, items int, ratings []Rating, prices []float64, lambda float64) (*Matrix, error) {
	return wtp.FromRatings(consumers, items, ratings, prices, lambda)
}

// Options configures a bundling run. The zero value reproduces the paper's
// defaults (Table 3): pure bundling, θ = 0, unlimited bundle size,
// deterministic step adoption, 100 price levels.
type Options struct {
	// Strategy selects Pure (default) or Mixed bundling.
	Strategy Strategy
	// Theta is the bundling coefficient of Eq. 1: negative for substitute
	// items, zero for independent (default), positive for complements.
	// Must be > -1.
	Theta float64
	// MaxBundleSize caps bundle sizes (the paper's k); Unlimited (0)
	// disables the cap.
	MaxBundleSize int
	// Gamma is the stochastic price sensitivity (0 = step function). See
	// Sec. 4.1: lower values model noisier adoption decisions.
	Gamma float64
	// Alpha is the adoption bias (0 = unbiased, i.e. α = 1).
	Alpha float64
	// PriceLevels is the number of discrete price levels T (0 = 100).
	PriceLevels int
	// ProfitWeight is the seller's objective weight between profit and
	// consumer surplus: utility = weight·profit + (1-weight)·surplus
	// (paper Sec. 1). 0 selects the paper's default of 1 (profit only).
	// To optimize pure consumer surplus pass a tiny positive value; an
	// exact 0 is indistinguishable from "unset".
	ProfitWeight float64
	// UnitCosts holds per-item variable costs (nil = zero cost, the
	// information-goods setting where profit equals revenue). A bundle's
	// unit cost is the sum of its items' costs.
	UnitCosts []float64
	// StripeSize is the number of consumers per storage stripe of the
	// solver's sharded WTP index (0 = 1024). Results are identical for any
	// value; see the package doc on stripe sizing.
	StripeSize int
	// Parallelism caps the worker goroutines used for candidate pricing and
	// index building (0 = GOMAXPROCS). Results are deterministic regardless.
	Parallelism int
}

func (o Options) params() (config.Params, error) {
	p := config.DefaultParams()
	p.Strategy = o.Strategy
	p.Theta = o.Theta
	p.K = o.MaxBundleSize
	if o.PriceLevels != 0 {
		p.PriceLevels = o.PriceLevels
	}
	if o.ProfitWeight != 0 {
		p.ProfitWeight = o.ProfitWeight
	}
	p.UnitCosts = o.UnitCosts
	p.StripeSize = o.StripeSize
	p.Parallelism = o.Parallelism
	gamma := o.Gamma
	if gamma == 0 {
		gamma = adoption.DefaultGamma
	}
	alpha := o.Alpha
	if alpha == 0 {
		alpha = adoption.DefaultAlpha
	}
	m, err := adoption.New(gamma, alpha, adoption.DefaultEpsilon)
	if err != nil {
		return p, err
	}
	p.Model = m
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

// Algorithm is one bundle-configuration algorithm, runnable on a Solver
// session via Solver.Solve or through the one-shot Solve* wrappers.
type Algorithm = config.Algorithm

// Components returns the individual-pricing baseline (no bundling).
func Components() Algorithm { return config.ComponentsAlgorithm() }

// Optimal2 returns the exact solver for bundles of up to two items
// (Sec. 5.1); it ignores Options.MaxBundleSize.
func Optimal2() Algorithm { return config.Optimal2Algorithm() }

// Matching returns the matching-based heuristic (Algorithm 1), the method
// the paper's evaluation recommends.
func Matching() Algorithm { return config.MatchingAlgorithm() }

// Greedy returns the greedy merge heuristic (Algorithm 2).
func Greedy() Algorithm { return config.GreedyAlgorithm() }

// FreqItemset returns the "frequently bought together" baseline. minSupport
// is the relative minimum support; 0 selects the paper's tuned 0.001.
func FreqItemset(minSupport float64) Algorithm {
	if minSupport == 0 {
		minSupport = config.DefaultFreqItemsetOptions().MinSupport
	}
	return config.FreqItemsetAlgorithm(config.FreqItemsetOptions{MinSupport: minSupport})
}

// Algorithms lists the five algorithms with default options, in the
// paper's presentation order.
func Algorithms() []Algorithm { return config.Algorithms() }

// AlgorithmByName resolves a stable algorithm name ("components",
// "optimal2", "matching", "greedy", "freqitemset") to its
// default-configured implementation.
func AlgorithmByName(name string) (Algorithm, error) { return config.AlgorithmByName(name) }

// Solver is a long-lived bundling session over one matrix and one option
// set. NewSolver indexes the matrix once; the Solver then serves any
// number of Solve and Evaluate calls, including concurrent ones, without
// re-indexing — the serving-path API for what-if workloads. The matrix
// must not be mutated while the Solver is in use.
type Solver struct {
	inner *config.Solver
}

// NewSolver builds a session for the matrix under the given options.
func NewSolver(w *Matrix, opts Options) (*Solver, error) {
	return NewSolverOn(w, opts, nil)
}

// StripeExecutor computes the striped consumer-axis reductions a Solver's
// vector construction runs on. The default executor is the session's local
// sharded index; a distributed deployment (see internal/cluster and the
// cmd/bundled -workers flag) plugs in a scatter/gather executor that farms
// each stripe span to the remote worker owning it.
type StripeExecutor = config.StripeExecutor

// NewSolverOn is NewSolver with a pluggable stripe executor; nil selects
// the local shard, making it identical to NewSolver.
func NewSolverOn(w *Matrix, opts Options, exec StripeExecutor) (*Solver, error) {
	p, err := opts.params()
	if err != nil {
		return nil, err
	}
	inner, err := config.NewSolverOn(w, p, exec)
	if err != nil {
		return nil, err
	}
	return &Solver{inner: inner}, nil
}

// DeltaCell is one cell mutation of a corpus delta: set (Consumer, Item) to
// Value, or remove the cell when Delete is set. Later cells of one delta
// override earlier ones for the same coordinate.
type DeltaCell = wtp.Cell

// ApplyDelta derives a new session with the delta applied, leaving the
// receiver untouched and still serving its own snapshot. The mutation is
// incremental: the matrix is patched copy-on-write, only the index stripes
// holding mutated consumers rebuild, and only the mutated items' priced
// singleton prototypes re-price. The new session's Stats().Version advances
// by exactly one, which is what invalidates version-keyed result caches.
func (s *Solver) ApplyDelta(cells []DeltaCell) (*Solver, error) {
	return s.ApplyDeltaOn(cells, nil)
}

// ApplyDeltaOn is ApplyDelta with a pluggable stripe executor for the new
// session; nil selects the patched local shard, making it identical to
// ApplyDelta.
func (s *Solver) ApplyDeltaOn(cells []DeltaCell, exec StripeExecutor) (*Solver, error) {
	inner, err := s.inner.ApplyDelta(cells, exec)
	if err != nil {
		return nil, err
	}
	return &Solver{inner: inner}, nil
}

// Aggregator computes the distributed pricing aggregates of the
// scatter/gather evaluate path; see the config package for the reduction
// contract.
type Aggregator = config.Aggregator

// EvaluateAggregated prices a pure-bundling offer family from reduced
// pricing histograms supplied by agg instead of gathered consumer vectors —
// the distributed evaluate fast path. See config.Solver.EvaluateAggregated.
func (s *Solver) EvaluateAggregated(offers [][]int, agg Aggregator) (*Configuration, error) {
	return s.inner.EvaluateAggregated(offers, agg)
}

// EvaluateAggregatedContext is EvaluateAggregated under a context: ctx is
// handed to every aggregator reduction and checked between offers, so
// distributed evaluates inherit the caller's deadline.
func (s *Solver) EvaluateAggregatedContext(ctx context.Context, offers [][]int, agg Aggregator) (*Configuration, error) {
	return s.inner.EvaluateAggregatedContext(ctx, offers, agg)
}

// Solve runs an algorithm on the session.
func (s *Solver) Solve(a Algorithm) (*Configuration, error) { return s.inner.Solve(a) }

// SolveContext is Solve under a context: a canceled or expired ctx aborts
// the run at its next iteration boundary with the context's error, so a
// serving layer can bound solve latency and stop work for disconnected
// callers.
func (s *Solver) SolveContext(ctx context.Context, a Algorithm) (*Configuration, error) {
	return s.inner.SolveContext(ctx, a)
}

// Evaluate prices a caller-proposed configuration on the session — the
// "what-if" counterpart of Solve. offers lists the item sets to put on
// sale; the engine picks each offer's optimal price. Offers must be
// pairwise disjoint under pure bundling and laminar (disjoint or nested)
// under mixed bundling; they need not cover every item.
func (s *Solver) Evaluate(offers [][]int) (*Configuration, error) { return s.inner.Evaluate(offers) }

// EvaluateContext is Evaluate under a context: a canceled or expired ctx
// aborts the evaluation between offers with the context's error.
func (s *Solver) EvaluateContext(ctx context.Context, offers [][]int) (*Configuration, error) {
	return s.inner.EvaluateContext(ctx, offers)
}

// Algorithms lists the algorithms runnable on this session.
func (s *Solver) Algorithms() []Algorithm { return config.Algorithms() }

// SolverStats describes a session's indexed corpus: matrix dimensions,
// non-zero entry count, stripe layout, the snapshot version and the
// aggregate WTP. Serving layers report these per session and key result
// caches on Version.
type SolverStats = config.SolverStats

// Stats returns the session's corpus and index statistics.
func (s *Solver) Stats() SolverStats { return s.inner.Stats() }

// SpanDoc is the wire form of one contiguous stripe span of a session's
// striped index — the unit of work a distributed coordinator ships to a
// remote worker (see internal/cluster and the cmd/bundled -workers mode).
type SpanDoc = wtp.SpanDoc

// Spans cuts the session's striped index into at most n contiguous,
// balanced stripe-span documents, reusing the shard the session already
// built.
func (s *Solver) Spans(n int) []*SpanDoc { return s.inner.Spans(n) }

// PricingGrid reports the session's effective pricing discretization: the
// number of price levels T and the adoption bias α. A distributed
// aggregator must bucket its histograms on exactly this grid, so it reads
// the values from the built session rather than re-deriving option
// defaults.
func (s *Solver) PricingGrid() (levels int, alpha float64) {
	p := s.inner.Params()
	return p.PriceLevels, p.Model.Alpha()
}

// Configure finds a revenue-maximizing bundle configuration using the
// paper's matching-based heuristic (Algorithm 1), the method its evaluation
// recommends: it attains the highest revenue coverage in the least time and
// is optimal for bundle sizes up to two.
func Configure(w *Matrix, opts Options) (*Configuration, error) {
	return SolveMatching(w, opts)
}

// SolveComponents prices every item individually (no bundling) — the
// baseline every bundling strategy is measured against.
func SolveComponents(w *Matrix, opts Options) (*Configuration, error) {
	return solveOneShot(w, opts, Components())
}

// solveOneShot runs an algorithm on a throwaway session, the compatibility
// path behind the Solve* wrappers.
func solveOneShot(w *Matrix, opts Options, a Algorithm) (*Configuration, error) {
	s, err := NewSolver(w, opts)
	if err != nil {
		return nil, err
	}
	return s.Solve(a)
}

// SolveComponentsAt prices every item at the given fixed prices (e.g. a
// marketplace's list prices) instead of optimal prices.
func SolveComponentsAt(w *Matrix, prices []float64, opts Options) (*Configuration, error) {
	p, err := opts.params()
	if err != nil {
		return nil, err
	}
	return config.ComponentsAtPrices(w, prices, p)
}

// SolveOptimal2 solves the 2-sized bundling problem exactly via
// maximum-weight graph matching (Sec. 5.1). Options.MaxBundleSize is
// ignored (forced to 2).
func SolveOptimal2(w *Matrix, opts Options) (*Configuration, error) {
	return solveOneShot(w, opts, Optimal2())
}

// SolveMatching runs the matching-based heuristic (Algorithm 1) for
// arbitrary bundle sizes.
func SolveMatching(w *Matrix, opts Options) (*Configuration, error) {
	return solveOneShot(w, opts, Matching())
}

// SolveGreedy runs the greedy merge heuristic (Algorithm 2) for arbitrary
// bundle sizes.
func SolveGreedy(w *Matrix, opts Options) (*Configuration, error) {
	return solveOneShot(w, opts, Greedy())
}

// SolveFreqItemset runs the "frequently bought together" baseline: bundle
// candidates are maximal frequent itemsets of the consumers' interest
// transactions, greedily selected by revenue gain. minSupport is the
// relative minimum support; the paper tunes it to 0.001.
func SolveFreqItemset(w *Matrix, minSupport float64, opts Options) (*Configuration, error) {
	return solveOneShot(w, opts, FreqItemset(minSupport))
}

// Evaluate prices a caller-proposed configuration — the "what-if"
// counterpart of the Solve functions. offers lists the item sets to put on
// sale; the engine picks each offer's optimal price under opts. Offers
// must be pairwise disjoint under pure bundling and laminar (disjoint or
// nested) under mixed bundling; they need not cover every item.
func Evaluate(w *Matrix, offers [][]int, opts Options) (*Configuration, error) {
	s, err := NewSolver(w, opts)
	if err != nil {
		return nil, err
	}
	return s.Evaluate(offers)
}

// Coverage returns the revenue coverage (%) of a configuration: its revenue
// as a share of the aggregate willingness to pay, the upper bound of any
// revenue (Sec. 6.1.2).
func Coverage(cfg *Configuration, w *Matrix) float64 {
	if w.Total() <= 0 {
		return 0
	}
	return cfg.Revenue / w.Total() * 100
}

// Gain returns the revenue gain (%) of a configuration over the Components
// baseline computed with the same options.
func Gain(cfg *Configuration, w *Matrix, opts Options) (float64, error) {
	comp, err := SolveComponents(w, opts)
	if err != nil {
		return 0, err
	}
	if comp.Revenue <= 0 {
		return 0, fmt.Errorf("bundling: components baseline has no revenue")
	}
	return (cfg.Revenue - comp.Revenue) / comp.Revenue * 100, nil
}
