package wtp

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// stripeSizes sweeps degenerate (1 consumer per stripe), misaligned, and
// single-stripe layouts.
func stripeSizes(m int) []int {
	return []int{1, 3, 7, m/2 + 1, m, m + 100}
}

// TestShardBundleVectorMatchesMatrix is the striped-storage equivalence
// property: a Shard's per-stripe columnar aggregation of any bundle equals
// the Matrix's flat postings merge within 1e-9, for every stripe size.
func TestShardBundleVectorMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	thetas := []float64{-0.3, 0, 0.25}
	for trial := 0; trial < 40; trial++ {
		m := 5 + rng.Intn(60)
		n := 3 + rng.Intn(12)
		w := randomMatrix(t, rng, m, n, 0.05+0.8*rng.Float64())
		k := 1 + rng.Intn(n)
		items := append([]int(nil), rng.Perm(n)[:k]...)
		sortInts(items)
		theta := thetas[trial%len(thetas)]
		wantIDs, wantVals := w.BundleVector(items, theta, nil, nil)
		for _, size := range stripeSizes(m) {
			sh := w.Shard(size)
			gotIDs, gotVals := sh.BundleVector(items, theta, nil, nil)
			if len(gotIDs) != len(wantIDs) {
				t.Fatalf("stripe=%d items=%v θ=%g: %d consumers, reference %d", size, items, theta, len(gotIDs), len(wantIDs))
			}
			for j := range wantIDs {
				if gotIDs[j] != wantIDs[j] {
					t.Fatalf("stripe=%d items=%v: consumer[%d] = %d, reference %d", size, items, j, gotIDs[j], wantIDs[j])
				}
				if diff := math.Abs(gotVals[j] - wantVals[j]); diff > 1e-9 {
					t.Fatalf("stripe=%d items=%v: val[%d] = %.15g, reference %.15g (diff %g)", size, items, j, gotVals[j], wantVals[j], diff)
				}
			}
		}
	}
}

// TestShardUnionVectorsMatchesFlat asserts the striped union reduction is
// exactly the flat UnionVectors merge.
func TestShardUnionVectorsMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 40; trial++ {
		m := 4 + rng.Intn(50)
		n := 4 + rng.Intn(10)
		w := randomMatrix(t, rng, m, n, 0.3+0.5*rng.Float64())
		perm := rng.Perm(n)
		ka := 1 + rng.Intn(n-1)
		itemsA := append([]int(nil), perm[:ka]...)
		itemsB := append([]int(nil), perm[ka:]...)
		sortInts(itemsA)
		sortInts(itemsB)
		theta := -0.1 + 0.4*rng.Float64()
		aIDs, aVals := w.BundleVector(itemsA, 0, nil, nil)
		bIDs, bVals := w.BundleVector(itemsB, theta, nil, nil)
		sa, sb := 1+theta, 1.0
		wantIDs, wantVals := UnionVectors(aIDs, aVals, sa, bIDs, bVals, sb, nil, nil)
		for _, size := range stripeSizes(m) {
			sh := w.Shard(size)
			gotIDs, gotVals := sh.UnionVectors(aIDs, aVals, sa, bIDs, bVals, sb, nil, nil)
			if len(gotIDs) != len(wantIDs) {
				t.Fatalf("stripe=%d: %d consumers, reference %d", size, len(gotIDs), len(wantIDs))
			}
			for j := range wantIDs {
				if gotIDs[j] != wantIDs[j] || gotVals[j] != wantVals[j] {
					t.Fatalf("stripe=%d: elem[%d] = (%d, %.17g), reference (%d, %.17g)",
						size, j, gotIDs[j], gotVals[j], wantIDs[j], wantVals[j])
				}
			}
		}
	}
}

// TestStripeLayout checks the columnar segments tile the flat postings
// exactly: concatenating every stripe's segment for an item reproduces the
// item's posting list, and bounds partition the consumer axis.
func TestStripeLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := randomMatrix(t, rng, 37, 6, 0.5)
	sh := w.Shard(8)
	if sh.StripeSize() != 8 {
		t.Fatalf("StripeSize = %d, want 8", sh.StripeSize())
	}
	if got, want := sh.Stripes(), 5; got != want {
		t.Fatalf("Stripes() = %d, want %d (37 consumers / 8)", got, want)
	}
	prevHi := 0
	for s := 0; s < sh.Stripes(); s++ {
		lo, hi := sh.Stripe(s).Bounds()
		if lo != prevHi {
			t.Fatalf("stripe %d starts at %d, want %d", s, lo, prevHi)
		}
		if hi <= lo || hi > w.Consumers() {
			t.Fatalf("stripe %d bounds [%d,%d) invalid", s, lo, hi)
		}
		prevHi = hi
	}
	if prevHi != w.Consumers() {
		t.Fatalf("stripes end at %d, want %d", prevHi, w.Consumers())
	}
	for i := 0; i < w.Items(); i++ {
		var ids []int
		var vals []float64
		for s := 0; s < sh.Stripes(); s++ {
			st := sh.Stripe(s)
			lo, hi := st.Bounds()
			segIDs, segVals := st.Item(i)
			for k, id := range segIDs {
				if int(id) < lo || int(id) >= hi {
					t.Fatalf("stripe %d item %d holds consumer %d outside [%d,%d)", s, i, id, lo, hi)
				}
				ids = append(ids, int(id))
				vals = append(vals, segVals[k])
			}
		}
		want := w.Postings(i)
		if len(ids) != len(want) {
			t.Fatalf("item %d: %d striped entries, flat %d", i, len(ids), len(want))
		}
		for k, e := range want {
			if ids[k] != e.Consumer || vals[k] != e.Value {
				t.Fatalf("item %d entry %d: striped (%d,%g), flat (%d,%g)", i, k, ids[k], vals[k], e.Consumer, e.Value)
			}
		}
	}
}

// TestShardStaleness verifies a mutation after Shard construction is caught
// instead of silently serving stale postings.
func TestShardStaleness(t *testing.T) {
	w := MustNew(4, 2)
	w.MustSet(0, 0, 5)
	sh := w.Shard(2)
	sh.BundleVector([]int{0}, 0, nil, nil) // fresh: fine
	w.MustSet(1, 1, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("stale shard access did not panic")
		}
	}()
	sh.BundleVector([]int{0}, 0, nil, nil)
}

// TestShardEmptyAndTiny covers degenerate shapes: zero consumers, zero
// items, and a matrix smaller than one stripe.
func TestShardEmptyAndTiny(t *testing.T) {
	empty := MustNew(0, 3)
	sh := empty.Shard(0)
	if sh.Stripes() != 1 {
		t.Fatalf("empty matrix: %d stripes, want 1", sh.Stripes())
	}
	ids, vals := sh.BundleVector([]int{0, 1}, 0, nil, nil)
	if len(ids) != 0 || len(vals) != 0 {
		t.Fatalf("empty matrix bundle vector = %v %v", ids, vals)
	}
	tiny := MustNew(2, 1)
	tiny.MustSet(1, 0, 7)
	sh = tiny.Shard(100)
	ids, vals = sh.BundleVector([]int{0}, 0, nil, nil)
	if len(ids) != 1 || ids[0] != 1 || vals[0] != 7 {
		t.Fatalf("tiny bundle vector = %v %v, want [1] [7]", ids, vals)
	}
}

// TestForEachStripe checks the parallel farming helper visits every stripe
// exactly once and the per-stripe writes stay disjoint.
func TestForEachStripe(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	w := randomMatrix(t, rng, 100, 4, 0.4)
	sh := w.Shard(9)
	for _, workers := range []int{1, 4, 32} {
		visits := make([]int, sh.Stripes())
		perConsumer := make([]float64, w.Consumers())
		var mu sync.Mutex // guards visits only; perConsumer is stripe-disjoint
		sh.ForEachStripe(workers, func(s int, st *Stripe) {
			mu.Lock()
			visits[s]++
			mu.Unlock()
			for i := 0; i < w.Items(); i++ {
				ids, vals := st.Item(i)
				for k, id := range ids {
					perConsumer[id] += vals[k]
				}
			}
		})
		for s, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: stripe %d visited %d times", workers, s, v)
			}
		}
		var got float64
		for _, v := range perConsumer {
			got += v
		}
		if diff := math.Abs(got - w.Total()); diff > 1e-6 {
			t.Fatalf("workers=%d: striped total %g, matrix total %g", workers, got, w.Total())
		}
	}
}
