package client

import (
	"context"
	"os"
	"strings"
	"testing"
	"time"

	"bundling"
)

// TestServerSmoke drives a running bundled daemon end to end. It is the
// CI smoke gate (scripts/smoke.sh boots `bundled -demo` and points
// BUNDLED_ADDR at it); without the variable it is skipped, so regular
// `go test ./...` runs need no daemon.
func TestServerSmoke(t *testing.T) {
	addr := os.Getenv("BUNDLED_ADDR")
	if addr == "" {
		t.Skip("BUNDLED_ADDR not set; run scripts/smoke.sh")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	c := New(addr, nil)
	// Against a daemon running with -auth-keys, point BUNDLED_API_KEY at a
	// tenant key; without it the client runs unauthenticated.
	if key := os.Getenv("BUNDLED_API_KEY"); key != "" {
		c = c.WithAPIKey(key)
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if h.Status != "ok" {
		t.Fatalf("healthz status %q", h.Status)
	}

	// The daemon is booted with -demo, so the "demo" session exists.
	info, err := c.Corpus(ctx, "demo")
	if err != nil {
		t.Fatalf("demo corpus: %v", err)
	}
	if info.Consumers == 0 || info.Items == 0 {
		t.Fatalf("demo corpus empty: %+v", info)
	}

	for _, alg := range []string{"components", "matching", "greedy"} {
		res, err := c.Solve(ctx, "demo", alg)
		if err != nil {
			t.Fatalf("solve %s: %v", alg, err)
		}
		if res.Config.Revenue <= 0 {
			t.Errorf("solve %s: revenue %g", alg, res.Config.Revenue)
		}
	}
	// Repeat solve must be served from the cache.
	res, err := c.Solve(ctx, "demo", "matching")
	if err != nil {
		t.Fatalf("repeat solve: %v", err)
	}
	if !res.Cached {
		t.Error("repeat solve was not served from the cache")
	}

	eval, err := c.Evaluate(ctx, "demo", [][]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	if eval.Config.Revenue <= 0 {
		t.Errorf("evaluate revenue %g", eval.Config.Revenue)
	}

	// Upload a fresh corpus over HTTP and solve it.
	w := bundling.NewMatrix(3, 2)
	w.MustSet(0, 0, 12)
	w.MustSet(1, 0, 8)
	w.MustSet(1, 1, 8)
	w.MustSet(2, 1, 10)
	if _, err := c.UploadMatrix(ctx, "smoke", w, bundling.Options{}); err != nil {
		t.Fatalf("upload: %v", err)
	}
	sres, err := c.Solve(ctx, "smoke", "matching")
	if err != nil {
		t.Fatalf("solve smoke: %v", err)
	}
	if sres.Config.Revenue <= 0 {
		t.Errorf("smoke solve revenue %g", sres.Config.Revenue)
	}
	if err := c.DeleteCorpus(ctx, "smoke"); err != nil {
		t.Fatalf("delete: %v", err)
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{"bundled_requests_total", "bundled_cache_hits_total"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
