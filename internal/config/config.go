// Package config implements the paper's bundle-configuration algorithms
// (Sec. 5): the optimal 2-sized solution via maximum-weight matching, the
// iterative matching-based heuristic (Algorithm 1) and the greedy heuristic
// (Algorithm 2) for arbitrary bundle sizes, each in a pure-bundling and a
// mixed-bundling variant, plus the Components and frequent-itemset
// baselines used in the evaluation (Sec. 6.1.3).
package config

import (
	"fmt"
	"math"
	"time"

	"bundling/internal/adoption"
	"bundling/internal/pricing"
	"bundling/internal/wtp"
)

// Strategy selects between the two bundling problem variants (Sec. 3.2).
type Strategy int

const (
	// Pure bundling: the configuration is a strict partition of the items;
	// a bundle and its components are never both on sale.
	Pure Strategy = iota
	// Mixed bundling: a bundle's components remain on sale alongside it.
	Mixed
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Pure:
		return "pure"
	case Mixed:
		return "mixed"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Unlimited disables the bundle-size cap (the paper's default k = ∞).
const Unlimited = 0

// minGain is the smallest revenue gain considered an improvement; it
// absorbs float noise in the pricing grids.
const minGain = 1e-9

// Params collects the knobs of Table 3 plus the strategy and the seller's
// objective (Sec. 1).
type Params struct {
	Strategy    Strategy
	Theta       float64        // bundling coefficient θ (Eq. 1)
	K           int            // max bundle size k; Unlimited (0) = no cap
	Model       adoption.Model // stochastic adoption model (γ, α, ε)
	PriceLevels int            // T; 0 selects pricing.DefaultLevels
	// ProfitWeight is the α of the seller's utility α·profit+(1-α)·surplus
	// (Sec. 1). The paper's evaluation fixes it at 1 (DefaultParams).
	ProfitWeight float64
	// UnitCosts holds per-item variable costs; nil means zero cost
	// (information goods), the paper's setting, where profit maximization
	// equals revenue maximization. A bundle's unit cost is the sum of its
	// items' costs.
	UnitCosts []float64
	// Parallelism caps the workers used for candidate-merge pricing
	// (0 = GOMAXPROCS). The algorithms are deterministic regardless.
	Parallelism int
	// StripeSize is the number of consumers per storage stripe of the
	// solver's sharded WTP index (0 = wtp.DefaultStripeSize). Smaller
	// stripes shrink the cache working set of per-stripe scans and raise
	// the number of independently farmable work units; larger stripes
	// lower per-stripe overhead. Results are identical for any value.
	StripeSize int
	// DisablePruning turns off the paper's common-interest pruning of
	// candidate pairs (Sec. 5.3.1). Ablation knob: the pruning is lossless
	// for θ ≤ 0, so disabling it should change running time but not
	// revenue; the Ablations experiment verifies exactly that.
	DisablePruning bool
	// ExactSigmoid switches the stochastic pricing evaluation from the
	// O(m+T²) bucketed approximation to the exact O(m·T) scan. Ablation
	// knob for the discretization design choice of Sec. 4.2.
	ExactSigmoid bool
	// referenceEval disables the incremental cached-vector union so merge
	// candidates rebuild their vectors from the raw postings. Unexported:
	// only the equivalence tests set it, to diff the two paths.
	referenceEval bool
	// GreedyRunToEnd selects the alternative stopping condition of
	// Sec. 5.3.2: instead of stopping at the first iteration with no
	// positive gain, the greedy algorithm keeps merging the least-bad pair
	// until a single bundle remains and returns the best configuration
	// seen along the way. The paper reports this "would increase running
	// time significantly without producing meaningful revenue gain"; the
	// ablation suite verifies exactly that. Pure bundling only (under the
	// mixed incremental policy non-gaining merges are simply infeasible).
	GreedyRunToEnd bool
}

// DefaultParams returns the paper's default settings (Table 3): θ = 0,
// k = ∞, step-function adoption, T = 100 price levels, pure bundling,
// profit-only objective with zero variable costs.
func DefaultParams() Params {
	return Params{
		Strategy:     Pure,
		Theta:        0,
		K:            Unlimited,
		Model:        adoption.Default(),
		PriceLevels:  pricing.DefaultLevels,
		ProfitWeight: 1,
	}
}

// Validate checks parameter ranges.
func (p Params) Validate() error {
	if p.Strategy != Pure && p.Strategy != Mixed {
		return fmt.Errorf("config: unknown strategy %d", int(p.Strategy))
	}
	if p.Theta <= -1 {
		return fmt.Errorf("config: θ=%g must be > -1 (bundle WTP would vanish)", p.Theta)
	}
	if p.K < 0 {
		return fmt.Errorf("config: k=%d must be ≥ 0", p.K)
	}
	if p.PriceLevels < 0 {
		return fmt.Errorf("config: price levels %d must be ≥ 0", p.PriceLevels)
	}
	if (p.Model == adoption.Model{}) {
		return fmt.Errorf("config: zero adoption model; use adoption.New or adoption.Default")
	}
	if p.ProfitWeight < 0 || p.ProfitWeight > 1 {
		return fmt.Errorf("config: profit weight α=%g outside [0,1]", p.ProfitWeight)
	}
	for i, c := range p.UnitCosts {
		if c < 0 {
			return fmt.Errorf("config: negative unit cost %g for item %d", c, i)
		}
	}
	if p.Parallelism < 0 {
		return fmt.Errorf("config: negative parallelism %d", p.Parallelism)
	}
	if p.StripeSize < 0 {
		return fmt.Errorf("config: negative stripe size %d", p.StripeSize)
	}
	if p.GreedyRunToEnd && p.Strategy != Pure {
		return fmt.Errorf("config: GreedyRunToEnd applies to pure bundling only")
	}
	if p.GreedyRunToEnd && (p.ProfitWeight != 1 || p.UnitCosts != nil) {
		return fmt.Errorf("config: GreedyRunToEnd supports the default objective only")
	}
	return nil
}

// maxSize returns the effective bundle-size cap.
func (p Params) maxSize() int {
	if p.K == Unlimited {
		return math.MaxInt
	}
	return p.K
}

func (p Params) pricer() (*pricing.Pricer, error) {
	levels := p.PriceLevels
	if levels == 0 {
		levels = pricing.DefaultLevels
	}
	pr, err := pricing.New(p.Model, levels)
	if err != nil {
		return nil, err
	}
	pr.SetExact(p.ExactSigmoid)
	return pr, nil
}

// Bundle is one priced offer element of a configuration.
type Bundle struct {
	Items   []int   // ascending item ids
	Price   float64 // offer price
	Revenue float64 // expected standalone revenue at Price
}

// Size returns the number of items in the bundle.
func (b Bundle) Size() int { return len(b.Items) }

// IterationStat records one iteration of an anytime algorithm, the raw
// material of the paper's revenue-vs-time trade-off study (Fig. 6).
type IterationStat struct {
	Iteration int
	Revenue   float64       // cumulative expected revenue after the iteration
	Elapsed   time.Duration // cumulative wall time
	Bundles   int           // top-level bundles after the iteration
}

// Configuration is the output of a bundling algorithm.
type Configuration struct {
	Strategy Strategy
	// Bundles are the top-level offers. Under Pure they partition the item
	// set; under Mixed they are the subsuming bundles (X_I).
	Bundles []Bundle
	// Components are the retained sub-bundles under Mixed (X'_I): offers
	// that stay on sale alongside the bundle that subsumed them. Empty for
	// Pure.
	Components []Bundle
	// Revenue is the total expected revenue of the configuration.
	Revenue float64
	// Profit, Surplus and Utility decompose the seller's objective
	// (Sec. 1): Utility = α·Profit + (1-α)·Surplus. With the paper's
	// default objective (α = 1, zero costs) all three collapse onto
	// Revenue except Surplus, which reports the consumers' side.
	Profit  float64
	Surplus float64
	Utility float64
	// Iterations and Trace describe the algorithm's run.
	Iterations int
	Trace      []IterationStat
}

// Offers returns all priced offers: top-level bundles plus, under mixed
// bundling, the retained components.
func (c *Configuration) Offers() []Bundle {
	out := make([]Bundle, 0, len(c.Bundles)+len(c.Components))
	out = append(out, c.Bundles...)
	out = append(out, c.Components...)
	return out
}

// CoversAll reports whether the union of top-level bundles is exactly the
// item universe (condition 1 of Problems 1 and 2).
func (c *Configuration) CoversAll(items int) bool {
	seen := make([]bool, items)
	for _, b := range c.Bundles {
		for _, i := range b.Items {
			if i < 0 || i >= items || seen[i] {
				return false
			}
			seen[i] = true
		}
	}
	for _, ok := range seen {
		if !ok {
			return false
		}
	}
	return true
}

// Components prices every item individually at its utility-maximizing
// price — the non-bundling baseline (Sec. 6.1.3). Under the default
// objective (α = 1, zero costs) that is the revenue-maximizing price.
// One-shot form; sessions use Solver.Solve(ComponentsAlgorithm()).
func Components(w *wtp.Matrix, params Params) (*Configuration, error) {
	s, err := NewSolver(w, params)
	if err != nil {
		return nil, err
	}
	return s.Solve(ComponentsAlgorithm())
}

// components assembles the baseline from the session's priced singletons —
// pure index reads, no pricing work.
func (e *engine) components() (*Configuration, error) {
	start := time.Now()
	cfg := &Configuration{Strategy: e.params.Strategy, Iterations: 1}
	for _, n := range e.s.protos {
		cfg.Bundles = append(cfg.Bundles, Bundle{Items: append([]int(nil), n.items...), Price: n.uq.Price, Revenue: n.uq.Revenue})
		cfg.Revenue += n.uq.Revenue
		cfg.Profit += n.uq.Profit
		cfg.Surplus += n.uq.Surplus
		cfg.Utility += n.uq.Utility
	}
	cfg.Trace = []IterationStat{{Iteration: 1, Revenue: cfg.Revenue, Elapsed: time.Since(start), Bundles: len(cfg.Bundles)}}
	return cfg, nil
}

// ComponentsAtPrices evaluates the Components strategy at externally given
// prices (e.g. the marketplace list prices, the weaker baseline of
// Table 2) instead of optimal prices.
func ComponentsAtPrices(w *wtp.Matrix, prices []float64, params Params) (*Configuration, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(prices) != w.Items() {
		return nil, fmt.Errorf("config: %d prices for %d items", len(prices), w.Items())
	}
	cfg := &Configuration{Strategy: params.Strategy, Iterations: 1}
	for i := 0; i < w.Items(); i++ {
		price := prices[i]
		var expected float64
		for _, e := range w.Postings(i) {
			expected += params.Model.Probability(price, e.Value)
		}
		rev := price * expected
		cfg.Bundles = append(cfg.Bundles, Bundle{Items: []int{i}, Price: price, Revenue: rev})
		cfg.Revenue += rev
	}
	return cfg, nil
}
