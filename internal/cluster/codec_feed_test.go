package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"bundling"
	"bundling/internal/codec"
)

// TestClusterBinaryFeedMatchesLocal is the wire-format acceptance gate: a
// fleet fed over real HTTP — binary codec span bodies — must match the
// single-machine Solver within 1e-9 for all five algorithms and the
// evaluate path, and the feed must actually have gone binary (the
// per-process FeedBytes counter grows on the bin side only).
func TestClusterBinaryFeedMatchesLocal(t *testing.T) {
	w := testMatrix(t, 150, 12, 21)
	wk0, wk1 := NewWorker(WorkerConfig{}), NewWorker(WorkerConfig{})
	ts0 := httptest.NewServer(wk0.Handler())
	defer ts0.Close()
	ts1 := httptest.NewServer(wk1.Handler())
	defer ts1.Close()
	transports, err := Transports(ts0.URL+","+ts1.URL, nil)
	if err != nil {
		t.Fatal(err)
	}

	binBefore, jsonBefore := FeedBytes()
	opts := bundling.Options{Strategy: bundling.Mixed, Theta: -0.1, StripeSize: 16}
	local, err := bundling.NewSolver(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewSolver(w, opts, Config{Workers: transports})
	if err != nil {
		t.Fatal(err)
	}
	algos := bundling.Algorithms()
	if len(algos) != 5 {
		t.Fatalf("algorithm registry has %d entries, want 5", len(algos))
	}
	for _, alg := range algos {
		want, err := local.Solve(alg)
		if err != nil {
			t.Fatalf("%s local: %v", alg.Name(), err)
		}
		got, err := cs.Solve(alg)
		if err != nil {
			t.Fatalf("%s binary-fed cluster: %v", alg.Name(), err)
		}
		sameConfig(t, "bin-feed/"+alg.Name(), got, want)
	}
	wantEval, err := local.Evaluate(evalOffers())
	if err != nil {
		t.Fatal(err)
	}
	gotEval, err := cs.Evaluate(evalOffers())
	if err != nil {
		t.Fatal(err)
	}
	sameConfig(t, "bin-feed/evaluate", gotEval, wantEval)

	binAfter, jsonAfter := FeedBytes()
	if binAfter <= binBefore {
		t.Fatalf("binary feed bytes did not grow: %d -> %d", binBefore, binAfter)
	}
	if jsonAfter != jsonBefore {
		t.Fatalf("JSON feed bytes grew %d -> %d; the feed fell back", jsonBefore, jsonAfter)
	}
}

// TestAssignJSONFallback pins the content negotiation: a worker that
// predates the codec fails to JSON-decode the binary body and answers 400.
// The transport must re-send that same span as JSON, succeed, and stick to
// JSON for subsequent feeds (one failed probe per transport, not per feed).
func TestAssignJSONFallback(t *testing.T) {
	wk := NewWorker(WorkerConfig{})
	var binHits, jsonHits atomic.Int64
	// Emulate a pre-codec worker: any binary span body is rejected exactly
	// the way the old JSON decoder did — 400 with a decode error.
	legacy := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/spans/") && !strings.Contains(r.URL.Path[len("/v1/spans/"):], "/") {
			if strings.HasPrefix(r.Header.Get("Content-Type"), codec.ContentType) {
				binHits.Add(1)
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusBadRequest)
				_ = json.NewEncoder(w).Encode(ErrorResponse{Error: "decode assign: invalid character"})
				return
			}
			jsonHits.Add(1)
		}
		wk.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(legacy)
	defer ts.Close()
	tr := NewHTTP(ts.URL, nil)

	w := testMatrix(t, 80, 6, 22)
	doc := spanDocFor(w, 16)
	ctx := t.Context()
	jsonBefore, _ := func() (int64, int64) { b, j := FeedBytes(); return j, b }()
	if err := tr.Assign(ctx, "demo", &AssignRequest{Corpus: "demo", Span: doc}); err != nil {
		t.Fatalf("assign against legacy worker: %v", err)
	}
	if binHits.Load() != 1 || jsonHits.Load() != 1 {
		t.Fatalf("first feed: %d binary probes, %d JSON feeds; want 1 and 1", binHits.Load(), jsonHits.Load())
	}
	// The worker really holds the span (fed via the JSON fallback).
	if _, err := tr.Vector(ctx, "demo", VectorRequest{Version: doc.Version, Items: []int{0, 1}}); err != nil {
		t.Fatalf("vector after fallback feed: %v", err)
	}
	// Second feed: the transport remembers and skips the binary probe.
	if err := tr.Assign(ctx, "demo", &AssignRequest{Corpus: "demo", Span: doc}); err != nil {
		t.Fatal(err)
	}
	if binHits.Load() != 1 || jsonHits.Load() != 2 {
		t.Fatalf("second feed: %d binary probes, %d JSON feeds; want 1 and 2", binHits.Load(), jsonHits.Load())
	}
	_, jsonAfter := FeedBytes()
	if jsonAfter <= jsonBefore {
		t.Fatalf("JSON fallback feed bytes did not grow: %d -> %d", jsonBefore, jsonAfter)
	}
}

// TestAssignBinaryRejectedOnRealError pins the negotiation's other edge: a
// non-codec failure (e.g. 500) must surface, not silently downgrade the
// transport to JSON forever.
func TestAssignBinaryRejectedOnRealError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		_ = json.NewEncoder(w).Encode(ErrorResponse{Error: "worker exploded"})
	}))
	defer ts.Close()
	tr := NewHTTP(ts.URL, nil)
	w := testMatrix(t, 40, 5, 23)
	doc := spanDocFor(w, 16)
	err := tr.Assign(t.Context(), "demo", &AssignRequest{Corpus: "demo", Span: doc})
	if err == nil || !strings.Contains(err.Error(), "500") {
		t.Fatalf("assign error = %v, want the 500 surfaced", err)
	}
	if tr.jsonAssign.Load() {
		t.Fatal("a 500 must not downgrade the transport to JSON feeds")
	}
}
