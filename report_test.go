package bundling_test

import (
	"encoding/json"
	"strings"
	"testing"

	"bundling"
)

func TestReportStructure(t *testing.T) {
	w := paperMatrix()
	cfg, err := bundling.Configure(w, bundling.Options{
		Strategy: bundling.Mixed, Theta: -0.05, PriceLevels: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := bundling.NewReport(cfg, w)
	if r.Strategy != "mixed" {
		t.Errorf("strategy = %q", r.Strategy)
	}
	if r.Items != 2 || r.Consumers != 3 {
		t.Errorf("dims = %d×%d", r.Consumers, r.Items)
	}
	if r.Revenue != cfg.Revenue {
		t.Errorf("revenue mismatch")
	}
	var bundles, components int
	for _, o := range r.Offers {
		switch o.Kind {
		case "bundle":
			bundles++
		case "component":
			components++
		default:
			t.Errorf("unknown offer kind %q", o.Kind)
		}
	}
	if bundles != len(cfg.Bundles) || components != len(cfg.Components) {
		t.Errorf("offer counts: %d/%d, want %d/%d",
			bundles, components, len(cfg.Bundles), len(cfg.Components))
	}
	// Largest offers first.
	for i := 1; i < len(r.Offers); i++ {
		if len(r.Offers[i].Items) > len(r.Offers[i-1].Items) {
			t.Errorf("offers not sorted by size descending")
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	w := paperMatrix()
	cfg, err := bundling.SolveComponents(w, bundling.Options{PriceLevels: 500})
	if err != nil {
		t.Fatal(err)
	}
	r := bundling.NewReport(cfg, w)
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"strategy", "expected_revenue", "revenue_coverage_pct", "offers", "kind"} {
		if !strings.Contains(string(data), key) {
			t.Errorf("JSON missing %q: %s", key, data)
		}
	}
	var back bundling.Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Revenue != r.Revenue || len(back.Offers) != len(r.Offers) {
		t.Error("JSON round trip lost data")
	}
}

func TestReportString(t *testing.T) {
	w := paperMatrix()
	cfg, err := bundling.SolveComponents(w, bundling.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := bundling.NewReport(cfg, w).String()
	if !strings.Contains(s, "pure bundling") || !strings.Contains(s, "coverage") {
		t.Errorf("summary = %q", s)
	}
}

func TestEvaluateFacade(t *testing.T) {
	w := paperMatrix()
	cfg, err := bundling.Evaluate(w, [][]int{{0, 1}}, bundling.Options{Theta: -0.05, PriceLevels: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Revenue < 30 || cfg.Revenue > 31 {
		t.Errorf("evaluated bundle revenue = %g, want ≈ 30.4", cfg.Revenue)
	}
	if _, err := bundling.Evaluate(w, [][]int{{0, 1}, {1}}, bundling.Options{}); err == nil {
		t.Error("overlapping pure offers should be rejected")
	}
	if _, err := bundling.Evaluate(w, nil, bundling.Options{}); err == nil {
		t.Error("empty offer list should be rejected")
	}
}
