#!/bin/sh
# Smoke-test the bundled daemon end to end: build it, boot it on a sample
# (synthetic) corpus, run the client smoke test against it, and fail on any
# non-200 the test observes. CI runs this after the unit-test gate; locally
# it's `make smoke`.
set -eu

ADDR="${BUNDLED_SMOKE_ADDR:-127.0.0.1:8077}"
BIN="$(mktemp -d)/bundled"
LOG="$(mktemp)"

go build -o "$BIN" ./cmd/bundled

"$BIN" -addr "$ADDR" -demo >"$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT INT TERM

# Wait for /healthz to come up (the demo corpus indexes first).
i=0
until curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 60 ]; then
    echo "bundled did not become healthy; log:" >&2
    cat "$LOG" >&2
    exit 1
  fi
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "bundled exited early; log:" >&2
    cat "$LOG" >&2
    exit 1
  fi
  sleep 0.5
done

BUNDLED_ADDR="http://$ADDR" go test ./client -run TestServerSmoke -count=1 -v

# Graceful shutdown must complete cleanly.
kill -TERM "$PID"
wait "$PID"
trap - EXIT INT TERM
echo "smoke OK"
