package bundling_test

import (
	"bytes"
	"math"
	"testing"

	"bundling"
)

// paperMatrix is the Table 1 example: 3 consumers × 2 items.
func paperMatrix() *bundling.Matrix {
	w := bundling.NewMatrix(3, 2)
	w.MustSet(0, 0, 12)
	w.MustSet(0, 1, 4)
	w.MustSet(1, 0, 8)
	w.MustSet(1, 1, 2)
	w.MustSet(2, 0, 5)
	w.MustSet(2, 1, 11)
	return w
}

func TestQuickstartFlow(t *testing.T) {
	w := paperMatrix()
	cfg, err := bundling.Configure(w, bundling.Options{Theta: -0.05, PriceLevels: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cfg.Revenue-30.4) > 0.1 {
		t.Errorf("pure matching revenue = %g, want 30.4", cfg.Revenue)
	}
	cov := bundling.Coverage(cfg, w)
	if cov <= 0 || cov > 100 {
		t.Errorf("coverage = %g out of range", cov)
	}
	gain, err := bundling.Gain(cfg, w, bundling.Options{Theta: -0.05, PriceLevels: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if gain <= 0 {
		t.Errorf("gain = %g, want positive (30.4 > 27)", gain)
	}
}

func TestAllSolversRun(t *testing.T) {
	w := paperMatrix()
	solvers := map[string]func() (*bundling.Configuration, error){
		"components": func() (*bundling.Configuration, error) {
			return bundling.SolveComponents(w, bundling.Options{})
		},
		"componentsAt": func() (*bundling.Configuration, error) {
			return bundling.SolveComponentsAt(w, []float64{8, 11}, bundling.Options{})
		},
		"optimal2": func() (*bundling.Configuration, error) {
			return bundling.SolveOptimal2(w, bundling.Options{})
		},
		"matching": func() (*bundling.Configuration, error) {
			return bundling.SolveMatching(w, bundling.Options{Strategy: bundling.Mixed})
		},
		"greedy": func() (*bundling.Configuration, error) {
			return bundling.SolveGreedy(w, bundling.Options{Strategy: bundling.Mixed})
		},
		"freqitemset": func() (*bundling.Configuration, error) {
			return bundling.SolveFreqItemset(w, 0.3, bundling.Options{})
		},
	}
	for name, solve := range solvers {
		cfg, err := solve()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cfg.Revenue <= 0 {
			t.Errorf("%s: revenue %g", name, cfg.Revenue)
		}
		if !cfg.CoversAll(2) {
			t.Errorf("%s: does not cover the items", name)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	w := paperMatrix()
	bad := []bundling.Options{
		{Theta: -1},
		{MaxBundleSize: -2},
		{Gamma: -5},
		{Alpha: -1},
		{PriceLevels: -3},
	}
	for i, o := range bad {
		if _, err := bundling.Configure(w, o); err == nil {
			t.Errorf("case %d: expected error for %+v", i, o)
		}
	}
}

func TestStochasticOptions(t *testing.T) {
	w := paperMatrix()
	soft, err := bundling.SolveComponents(w, bundling.Options{Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	hard, err := bundling.SolveComponents(w, bundling.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if soft.Revenue >= hard.Revenue {
		t.Errorf("uncertain adoption (γ=1) revenue %g should be below step %g",
			soft.Revenue, hard.Revenue)
	}
}

func TestFromRatings(t *testing.T) {
	ratings := []bundling.Rating{
		{Consumer: 0, Item: 0, Stars: 5},
		{Consumer: 1, Item: 0, Stars: 3},
		{Consumer: 1, Item: 1, Stars: 4},
	}
	w, err := bundling.FromRatings(2, 2, ratings, []float64{10, 8}, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.At(0, 0); math.Abs(got-12.5) > 1e-9 {
		t.Errorf("WTP(0,0) = %g, want 12.5", got)
	}
	cfg, err := bundling.Configure(w, bundling.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Revenue <= 0 {
		t.Error("expected positive revenue from rated items")
	}
}

func TestGenerateDatasetRoundTrip(t *testing.T) {
	ds, err := bundling.GenerateDataset(bundling.DatasetConfig{
		Users: 120, Items: 40, RatingsPerUser: 10, MinDegree: 3, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := bundling.ReadDatasetCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Users != ds.Users || len(back.Ratings) != len(ds.Ratings) {
		t.Error("CSV round trip lost data")
	}
	w, err := ds.WTP(1.25)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := bundling.Configure(w, bundling.Options{Strategy: bundling.Mixed})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := bundling.SolveComponents(w, bundling.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Revenue < comp.Revenue-1e-6 {
		t.Errorf("mixed bundling %g below components %g", cfg.Revenue, comp.Revenue)
	}
}

func TestPaperDatasetConfigShape(t *testing.T) {
	cfg := bundling.PaperDatasetConfig()
	if cfg.Users != 4449 || cfg.Items != 5028 {
		t.Errorf("paper config = %d×%d, want 4449×5028", cfg.Users, cfg.Items)
	}
}

func TestMaxBundleSizeCap(t *testing.T) {
	ds, err := bundling.GenerateDataset(bundling.DatasetConfig{
		Users: 150, Items: 30, RatingsPerUser: 10, MinDegree: 3, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := ds.WTP(1.25)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := bundling.SolveGreedy(w, bundling.Options{Strategy: bundling.Mixed, Theta: 0.1, MaxBundleSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range cfg.Bundles {
		if len(b.Items) > 3 {
			t.Errorf("bundle %v exceeds cap 3", b.Items)
		}
	}
}

func TestObjectiveOptionsPassthrough(t *testing.T) {
	w := paperMatrix()
	// Costs reduce profit below revenue.
	costs := []float64{1, 1}
	cfg, err := bundling.SolveComponents(w, bundling.Options{UnitCosts: costs})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Profit >= cfg.Revenue {
		t.Errorf("profit %g should be below revenue %g with unit costs", cfg.Profit, cfg.Revenue)
	}
	// A surplus-weighted objective yields at least as much surplus.
	profitOnly, err := bundling.SolveComponents(w, bundling.Options{})
	if err != nil {
		t.Fatal(err)
	}
	balanced, err := bundling.SolveComponents(w, bundling.Options{ProfitWeight: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if balanced.Surplus < profitOnly.Surplus-1e-9 {
		t.Errorf("α=0.3 surplus %g below α=1 surplus %g", balanced.Surplus, profitOnly.Surplus)
	}
	if _, err := bundling.SolveComponents(w, bundling.Options{ProfitWeight: 2}); err == nil {
		t.Error("α > 1 should be rejected")
	}
	if _, err := bundling.SolveComponents(w, bundling.Options{UnitCosts: []float64{1}}); err == nil {
		t.Error("wrong-length cost vector should be rejected")
	}
}
