// Package pricing finds the revenue-maximizing price of a single bundle
// (paper Sec. 4.2) and evaluates mixed-bundling offers.
//
// The search uses a discretized price list of T levels (the paper uses
// T = 100 and observes larger T yields no meaningful revenue). Consumers are
// hashed into equi-distanced buckets by willingness to pay, so the optimal
// price of a bundle with m interested consumers costs O(m + T) under the
// deterministic step model, matching the paper's O(M) pricing claim. Under
// the sigmoid model the package offers a bucketed O(m + T²) approximation
// (default) and an exact O(m·T) evaluation.
package pricing

import (
	"cmp"
	"fmt"
	"math/rand"
	"slices"
	"sync"

	"bundling/internal/adoption"
)

// DefaultLevels is the paper's default number of price levels T.
const DefaultLevels = 100

// bucketSlack absorbs float rounding when hashing a WTP equal to a grid
// price into its bucket, so "w == p adopts" survives discretization.
const bucketSlack = 1e-9

// Pricer prices bundles under an adoption model. The zero value is invalid;
// use New.
//
// A Pricer is stateless per call: every pricing method either borrows its
// working buffers from an internal pool or, in the *In variants, uses a
// caller-owned Scratch. One Pricer instance is therefore safe for
// concurrent use by any number of goroutines (configure SetExact before
// sharing; it is the only mutator).
type Pricer struct {
	model  adoption.Model
	levels int
	exact  bool // exact sigmoid evaluation instead of bucketed
	// pool recycles Scratch buffers for the pool-backed convenience
	// methods; hot paths pass an explicit Scratch instead.
	pool sync.Pool
}

// Scratch holds the working buffers one pricing call needs: the WTP
// histogram of the Sec. 4.2 price search and the event arrays of the
// deterministic mixed-bundling sweep. A Scratch may be reused across any
// number of calls but must not be shared between concurrent ones; solvers
// typically pool one per worker.
type Scratch struct {
	counts  []int
	fcounts []float64
	fsums   []float64
	mids    []float64
	// buffers of the deterministic PriceMixed sweep.
	events []switchEvent
	utilB  []float64
	revB   []float64
	surB   []float64
	adB    []float64
}

// NewScratch returns a Scratch pre-sized for T price levels. Buffers grow on
// demand, so sizing is a hint, not a limit.
func NewScratch(levels int) *Scratch {
	sc := &Scratch{}
	sc.ensure(levels)
	return sc
}

// ensure grows the level-indexed buffers to hold levels+1 entries.
func (sc *Scratch) ensure(levels int) {
	if len(sc.counts) >= levels+1 {
		return
	}
	sc.counts = make([]int, levels+1)
	sc.fcounts = make([]float64, levels+1)
	sc.fsums = make([]float64, levels+1)
	sc.mids = make([]float64, levels+1)
	sc.utilB = make([]float64, levels+1)
	sc.revB = make([]float64, levels+1)
	sc.surB = make([]float64, levels+1)
	sc.adB = make([]float64, levels+1)
}

// New returns a Pricer using T price levels. T must be positive.
func New(model adoption.Model, levels int) (*Pricer, error) {
	if levels <= 0 {
		return nil, fmt.Errorf("pricing: T=%d price levels must be > 0", levels)
	}
	return &Pricer{model: model, levels: levels}, nil
}

// Default returns a Pricer with the paper's defaults: step model, T = 100.
func Default() *Pricer {
	p, _ := New(adoption.Default(), DefaultLevels)
	return p
}

// SetExact toggles exact per-consumer sigmoid evaluation (O(m·T)). It has no
// effect under the deterministic step model, which is always exact. Call
// before sharing the Pricer between goroutines.
func (p *Pricer) SetExact(exact bool) { p.exact = exact }

// getScratch borrows a Scratch from the internal pool.
func (p *Pricer) getScratch() *Scratch {
	if sc, ok := p.pool.Get().(*Scratch); ok {
		sc.ensure(p.levels)
		return sc
	}
	return NewScratch(p.levels)
}

func (p *Pricer) putScratch(sc *Scratch) { p.pool.Put(sc) }

// Model returns the adoption model in use.
func (p *Pricer) Model() adoption.Model { return p.model }

// Levels returns T, the number of price levels.
func (p *Pricer) Levels() int { return p.levels }

// Quote is the result of pricing a bundle.
type Quote struct {
	Price    float64 // revenue-maximizing price (0 if no positive demand)
	Revenue  float64 // expected revenue at Price
	Adopters float64 // expected number of adopters at Price
}

// PriceOptimal returns the revenue-maximizing price for a bundle whose
// interested consumers have the given willingness-to-pay values (Eq. 2).
// Consumers with zero WTP may be omitted; they never contribute revenue.
func (p *Pricer) PriceOptimal(wtps []float64) Quote {
	sc := p.getScratch()
	defer p.putScratch(sc)
	return p.PriceOptimalIn(sc, wtps)
}

// PriceOptimalIn is PriceOptimal with caller-owned scratch, for hot paths
// that price many bundles and want to avoid the pool round-trip.
func (p *Pricer) PriceOptimalIn(sc *Scratch, wtps []float64) Quote {
	sc.ensure(p.levels)
	maxW := 0.0
	for _, w := range wtps {
		if w > maxW {
			maxW = w
		}
	}
	if maxW <= 0 {
		return Quote{}
	}
	if p.model.Deterministic() {
		return p.priceStep(sc, wtps, maxW)
	}
	if p.exact {
		return p.priceSigmoidExact(wtps, maxW)
	}
	return p.priceSigmoidBucketed(sc, wtps, maxW)
}

// priceStep prices under the step model with a histogram + suffix counts.
func (p *Pricer) priceStep(sc *Scratch, wtps []float64, maxW float64) Quote {
	T := p.levels
	counts := sc.counts[:T+1]
	for i := range counts {
		counts[i] = 0
	}
	alpha := p.model.Alpha()
	for _, w := range wtps {
		// Bucket t covers effective WTP α·w ∈ [maxEff·t/T, maxEff·(t+1)/T).
		idx := int(alpha*w/(alpha*maxW)*float64(T) + bucketSlack)
		if idx > T {
			idx = T
		}
		if idx >= 0 {
			counts[idx]++
		}
	}
	// adopters(t) = #consumers with α·w ≥ price level t.
	best := Quote{}
	adopters := 0
	for t := T; t >= 1; t-- {
		adopters += counts[t]
		price := alpha * maxW * float64(t) / float64(T)
		rev := price * float64(adopters)
		if rev > best.Revenue {
			best = Quote{Price: price, Revenue: rev, Adopters: float64(adopters)}
		}
	}
	return best
}

// priceSigmoidBucketed approximates expected adopters by collapsing
// consumers into T buckets and evaluating the sigmoid at bucket midpoints.
func (p *Pricer) priceSigmoidBucketed(sc *Scratch, wtps []float64, maxW float64) Quote {
	T := p.levels
	counts := sc.counts[:T+1]
	for i := range counts {
		counts[i] = 0
	}
	for _, w := range wtps {
		idx := int(w/maxW*float64(T) + bucketSlack)
		if idx > T {
			idx = T
		}
		counts[idx]++
	}
	mids := sc.mids[:T+1]
	for t := 0; t <= T; t++ {
		mids[t] = (float64(t) + 0.5) * maxW / float64(T)
		if mids[t] > maxW {
			mids[t] = maxW
		}
	}
	best := Quote{}
	for t := 1; t <= T; t++ {
		price := maxW * float64(t) / float64(T)
		var f float64
		for s := 0; s <= T; s++ {
			if counts[s] > 0 {
				f += float64(counts[s]) * p.model.Probability(price, mids[s])
			}
		}
		if rev := price * f; rev > best.Revenue {
			best = Quote{Price: price, Revenue: rev, Adopters: f}
		}
	}
	return best
}

// priceSigmoidExact evaluates every price level against every consumer.
func (p *Pricer) priceSigmoidExact(wtps []float64, maxW float64) Quote {
	T := p.levels
	best := Quote{}
	for t := 1; t <= T; t++ {
		price := maxW * float64(t) / float64(T)
		f := p.model.ExpectedAdopters(price, wtps)
		if rev := price * f; rev > best.Revenue {
			best = Quote{Price: price, Revenue: rev, Adopters: f}
		}
	}
	return best
}

// SampleRevenue draws a realized revenue for a bundle sold at price to
// consumers with the given WTPs, by sampling each adoption decision.
func (p *Pricer) SampleRevenue(price float64, wtps []float64, rng *rand.Rand) float64 {
	return price * float64(p.model.SampleAdopters(price, wtps, rng))
}

// MixedOffer describes a candidate mixed-bundling offer: a set of existing
// offers stays on sale (the paper's incremental policy — their prices are
// frozen) and a new bundle covering all their items is priced on top.
//
// The existing offers are summarized per consumer by the consumer's current
// state: CurPay[j] is consumer j's total expected payment under the
// existing offers, CurSurplus[j] the deterministic surplus of those
// purchases. A consumer switches to the bundle — abandoning all existing
// purchases it subsumes — only when the bundle's surplus beats the current
// surplus (ties break toward the larger payment, the seller-favorable ε
// convention). This state-based accounting is exactly the paper's Table 6
// arithmetic: the consumer who "previously would only purchase Born in Fire
// alone for 7.99 but now buys the bundle of 3 at 13.91" contributes
// 13.91 − 7.99 = 5.92 of additional revenue. It also reproduces the
// Sec. 4.2 upgrade logic: upgrading is worthwhile only if the implicit
// price of what the bundle adds is within the consumer's WTP for it.
//
// All slices are aligned: index j refers to the same consumer. CurCost and
// CurESurplus may be nil (all zeros); they matter only for non-default
// objectives.
type MixedOffer struct {
	CurPay     []float64 // expected payment per consumer under existing offers
	CurSurplus []float64 // deterministic surplus per consumer under existing offers
	WB         []float64 // new bundle's WTP per consumer (Eq. 1 over all items)
	// Lo and Hi bound the bundle price (exclusive): the paper's mixed-
	// bundling constraints require the bundle price above any component's
	// price and below the sum of the component prices.
	Lo, Hi float64
	// CurCost is the expected variable cost per consumer of serving their
	// existing purchases; CurESurplus the expected consumer surplus.
	CurCost     []float64
	CurESurplus []float64
	// BundleCost is the new bundle's variable cost per unit.
	BundleCost float64
	// Obj is the seller's objective. The zero value selects
	// RevenueObjective (α = 1, zero costs).
	Obj Objective
}

// MixedQuote is the result of pricing a mixed offer.
type MixedQuote struct {
	Price    float64 // chosen bundle price (0 if infeasible)
	Revenue  float64 // total expected offer revenue (existing offers + bundle)
	Baseline float64 // expected revenue with the bundle absent (Σ CurPay)
	Adopters float64 // expected bundle adopters at Price
	Feasible bool    // Utility > BaselineUtility within a valid price window
	// Utility and BaselineUtility carry the seller's objective with and
	// without the bundle; under the default objective they equal Revenue
	// and Baseline.
	Utility         float64
	BaselineUtility float64
	Surplus         float64 // expected consumer surplus with the bundle
}

// PriceMixed searches the bundle price within (Lo, Hi) maximizing the
// seller's utility under the switch rule described on MixedOffer.
func (p *Pricer) PriceMixed(off MixedOffer) MixedQuote {
	sc := p.getScratch()
	defer p.putScratch(sc)
	return p.PriceMixedIn(sc, off)
}

// PriceMixedIn is PriceMixed with caller-owned scratch, for hot paths that
// evaluate many candidate offers and want to avoid the pool round-trip.
func (p *Pricer) PriceMixedIn(sc *Scratch, off MixedOffer) MixedQuote {
	sc.ensure(p.levels)
	if len(off.CurPay) != len(off.WB) || len(off.CurSurplus) != len(off.WB) {
		panic("pricing: misaligned mixed offer vectors")
	}
	if (off.Obj == Objective{}) {
		off.Obj = RevenueObjective()
	}
	var q MixedQuote
	var basePay, baseCost, baseSur float64
	for j, pay := range off.CurPay {
		basePay += pay
		baseCost += at0(off.CurCost, j)
		baseSur += at0(off.CurESurplus, j)
	}
	q.Baseline = basePay
	q.Revenue = basePay
	q.BaselineUtility = off.Obj.ProfitWeight*(basePay-baseCost) + (1-off.Obj.ProfitWeight)*baseSur
	q.Utility = q.BaselineUtility
	q.Surplus = baseSur
	if off.Hi <= off.Lo {
		return q // degenerate window (e.g. a free component)
	}
	if p.model.Deterministic() {
		return p.priceMixedStep(sc, off, q, basePay, baseCost, baseSur)
	}
	T := p.levels
	for t := 1; t <= T; t++ {
		// Strictly inside (Lo, Hi): the bounds themselves are disallowed.
		pb := off.Lo + (off.Hi-off.Lo)*float64(t)/float64(T+1)
		rev, cost, sur, adopters := p.offerOutcome(off, pb)
		util := off.Obj.ProfitWeight*(rev-cost) + (1-off.Obj.ProfitWeight)*sur
		if util > q.Utility {
			q.Price, q.Revenue, q.Adopters = pb, rev, adopters
			q.Utility, q.Surplus = util, sur
			q.Feasible = true
		}
	}
	return q
}

// switchEvent summarizes one consumer for the deterministic PriceMixed
// sweep: tau is the bundle price below which the consumer switches
// (effective bundle WTP minus current surplus), the rest is the state the
// switch releases or retains.
type switchEvent struct {
	tau  float64 // α·wb − max(current surplus, 0): the switch threshold price
	wb   float64 // raw bundle WTP (ResolveSwitch re-derives the rest)
	ewb  float64 // α·wb
	pay  float64 // current expected payment
	surp float64 // current deterministic surplus
	cost float64 // current expected serving cost
	esur float64 // current expected consumer surplus
}

// priceMixedStep evaluates all T bundle-price levels in O(m·log m + m + T)
// under the deterministic step model, replacing the O(m·T) per-level rescan
// of offerOutcome. Under the step rule a consumer switches to the bundle
// exactly when its price falls more than ε below their threshold
// τ = α·wb − current surplus, so sweeping the levels top-down and advancing
// a pointer over τ-sorted consumers maintains the switcher aggregates
// incrementally. Consumers whose τ lies within the ε tie window of the
// current level are resolved individually with ResolveSwitch, keeping the
// result exactly faithful to the reference evaluation.
func (p *Pricer) priceMixedStep(sc *Scratch, off MixedOffer, q MixedQuote, basePay, baseCost, baseSur float64) MixedQuote {
	const eps = adoption.DefaultEpsilon
	T := p.levels
	alpha := p.model.Alpha()
	ev := sc.events[:0]
	for j, wb := range off.WB {
		ewb := alpha * wb
		if ewb <= 0 {
			continue // never switches; payment already in basePay
		}
		// The classification threshold clamps negative current surplus at
		// zero: for surplus < 0 the binding ResolveSwitch constraint is
		// bs ≥ -ε (price at most ε above the effective WTP), not the
		// surplus comparison, so the switch boundary is ewb itself. The
		// tie window below still sees the true surplus via ResolveSwitch.
		surp := off.CurSurplus[j]
		tauSurp := surp
		if tauSurp < 0 {
			tauSurp = 0
		}
		ev = append(ev, switchEvent{
			tau:  ewb - tauSurp,
			wb:   wb,
			ewb:  ewb,
			pay:  off.CurPay[j],
			surp: surp,
			cost: at0(off.CurCost, j),
			esur: at0(off.CurESurplus, j),
		})
	}
	sc.events = ev
	slices.SortFunc(ev, func(a, b switchEvent) int { return cmp.Compare(a.tau, b.tau) })
	utilB, revB, surB, adB := sc.utilB[:T+1], sc.revB[:T+1], sc.surB[:T+1], sc.adB[:T+1]
	// Aggregates over the definitely-switched suffix ev[ptr:] (τ well above
	// the current price level). The 2ε-wide band around the level is kept
	// out of the aggregates and delegated to ResolveSwitch per consumer, so
	// the ε tie-break semantics match the reference path bit for bit.
	ptr := len(ev)
	var cnt, sumPay, sumCost, sumESur, sumEwb float64
	for t := T; t >= 1; t-- {
		pb := off.Lo + (off.Hi-off.Lo)*float64(t)/float64(T+1)
		for ptr > 0 && ev[ptr-1].tau > pb+2*eps {
			x := &ev[ptr-1]
			cnt++
			sumPay += x.pay
			sumCost += x.cost
			sumESur += x.esur
			sumEwb += x.ewb
			ptr--
		}
		rev := pb*cnt + (basePay - sumPay)
		cost := off.BundleCost*cnt + (baseCost - sumCost)
		sur := (sumEwb - pb*cnt) + (baseSur - sumESur)
		adopters := cnt
		for k := ptr - 1; k >= 0 && ev[k].tau >= pb-2*eps; k-- {
			x := &ev[k]
			pay, prob, switched := p.ResolveSwitch(x.wb, x.pay, x.surp, pb)
			if switched {
				rev += pay - x.pay
				cost += off.BundleCost*prob - x.cost
				sur -= x.esur
				if s := x.ewb - pb; s > 0 {
					sur += s * prob
				}
				adopters += prob
			}
		}
		revB[t], surB[t], adB[t] = rev, sur, adopters
		utilB[t] = off.Obj.ProfitWeight*(rev-cost) + (1-off.Obj.ProfitWeight)*sur
	}
	// Select ascending with a strict improvement test, mirroring the
	// reference loop's first-maximum tie-break.
	for t := 1; t <= T; t++ {
		if utilB[t] > q.Utility {
			q.Price = off.Lo + (off.Hi-off.Lo)*float64(t)/float64(T+1)
			q.Revenue, q.Adopters = revB[t], adB[t]
			q.Utility, q.Surplus = utilB[t], surB[t]
			q.Feasible = true
		}
	}
	return q
}

// offerOutcome evaluates the offer at bundle price pb: every consumer
// either keeps their current purchases or switches to the bundle.
func (p *Pricer) offerOutcome(off MixedOffer, pb float64) (rev, cost, surplus, bundleAdopters float64) {
	for j := range off.WB {
		pay, prob, switched := p.ResolveSwitch(off.WB[j], off.CurPay[j], off.CurSurplus[j], pb)
		rev += pay
		if switched {
			bundleAdopters += prob
			cost += off.BundleCost * prob
			if s := p.model.Alpha()*off.WB[j] - pb; s > 0 {
				surplus += s * prob
			}
		} else {
			cost += at0(off.CurCost, j)
			surplus += at0(off.CurESurplus, j)
		}
	}
	return rev, cost, surplus, bundleAdopters
}

// at0 indexes a possibly-nil slice, returning 0 when absent.
func at0(s []float64, j int) float64 {
	if s == nil {
		return 0
	}
	return s[j]
}

// ResolveSwitch decides whether a consumer with the given bundle WTP and
// current (expected payment, deterministic surplus) state switches to the
// bundle at price pb. It returns the consumer's resulting expected payment
// and, if they switched, the bundle adoption probability. Exported because
// the configuration algorithms must update per-consumer state after a merge
// with the same rule PriceMixed used to choose the price.
func (p *Pricer) ResolveSwitch(wb, curPay, curSurplus, pb float64) (pay, prob float64, switched bool) {
	const eps = adoption.DefaultEpsilon
	ewb := p.model.Alpha() * wb
	bs := ewb - pb
	if ewb <= 0 || bs < -eps {
		return curPay, 0, false
	}
	bundleProb := 1.0
	if !p.model.Deterministic() {
		bundleProb = p.model.Probability(pb, wb)
	}
	bundlePay := pb * bundleProb
	if bs > curSurplus+eps || (bs >= curSurplus-eps && bundlePay > curPay) {
		return bundlePay, bundleProb, true
	}
	return curPay, 0, false
}
