package cluster

import (
	"context"
	"sync"
	"time"

	"bundling/internal/server"
)

// FleetConfig assembles a Fleet view.
type FleetConfig struct {
	// Probes are the transports the concurrent health probes go through —
	// pass the raw (unwrapped) transports so an open breaker cannot veto a
	// probe; a transport that implements Bytes() (the HTTP transport)
	// additionally contributes its per-worker wire-byte counts.
	Probes []Transport
	// Breakers, index-aligned with Probes, joins each worker's
	// coordinator-side circuit-breaker state (nil omits the column).
	Breakers []*Breaker
	// Loads, index-aligned with Probes, joins each worker's
	// coordinator-side observed load (nil omits the column).
	Loads []*WorkerLoad
	// Timeout bounds each probe (0 = 2s).
	Timeout time.Duration
}

// Fleet serves the coordinator's merged fleet-introspection view: one call
// probes every worker's health concurrently and joins the replies with the
// coordinator's breaker and load state — the GET /debug/fleet data source,
// replacing a hand-rolled scrape of N worker daemons.
type Fleet struct {
	cfg FleetConfig
}

// NewFleet returns a fleet view over the given workers.
func NewFleet(cfg FleetConfig) *Fleet {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	return &Fleet{cfg: cfg}
}

// byteser is the optional per-transport wire-accounting surface (the HTTP
// transport implements it; in-process transports move no bytes).
type byteser interface{ Bytes() TransportBytes }

// Report probes every worker concurrently and assembles the merged view.
func (f *Fleet) Report(ctx context.Context) server.FleetResponse {
	start := time.Now()
	docs := make([]server.FleetWorkerDoc, len(f.cfg.Probes))
	var wg sync.WaitGroup
	for i, t := range f.cfg.Probes {
		wg.Add(1)
		go func(i int, t Transport) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, f.cfg.Timeout)
			defer cancel()
			doc := server.FleetWorkerDoc{Addr: t.Addr(), Spans: []server.FleetSpanDoc{}}
			health, err := t.Health(pctx)
			if err != nil {
				doc.Error = err.Error()
			} else {
				doc.Reachable = true
				doc.Status = health.Status
				doc.UptimeSeconds = health.UptimeSeconds
				doc.StaleRejections = health.StaleRejections
				doc.Ops = health.Ops
				for _, sp := range health.Spans {
					doc.Spans = append(doc.Spans, server.FleetSpanDoc{
						Corpus:      sp.Corpus,
						Version:     sp.Version,
						StartStripe: sp.StartStripe,
						EndStripe:   sp.EndStripe,
						Entries:     sp.Entries,
						Requests:    sp.Requests,
					})
				}
			}
			docs[i] = doc
		}(i, t)
	}
	wg.Wait()
	for i := range docs {
		if i < len(f.cfg.Breakers) && f.cfg.Breakers[i] != nil {
			snap := f.cfg.Breakers[i].Snapshot()
			docs[i].Breaker = &server.WorkerStatusDoc{
				Addr:        snap.Addr,
				State:       snap.State,
				FailureRate: snap.FailureRate,
				Trips:       snap.Trips,
				RetryInMs:   snap.RetryInMs,
			}
		}
		if i < len(f.cfg.Loads) && f.cfg.Loads[i] != nil {
			snap := f.cfg.Loads[i].Snapshot()
			load := &server.WorkerLoadDoc{
				RPCs:          snap.RPCs,
				Errors:        snap.Errors,
				BreakerSkips:  snap.BreakerSkips,
				LatencyEWMAMs: snap.LatencyEWMAMs,
				Ops:           snap.Ops,
			}
			if b, ok := f.cfg.Probes[i].(byteser); ok {
				tb := b.Bytes()
				load.BytesOut, load.BytesIn = tb.BytesOut, tb.BytesIn
				load.FeedBytesBin, load.FeedBytesJSON = tb.FeedBin, tb.FeedLegacy
			}
			docs[i].Load = load
		}
	}
	resp := server.FleetResponse{
		Workers: docs,
		ProbeMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	for _, d := range docs {
		if d.Reachable {
			resp.Reachable++
		}
	}
	return resp
}

// MetricRows renders the coordinator-side load state as /metrics rows —
// the bundled_worker_* families cmd/bundled contributes via ExtraMetrics.
func (f *Fleet) MetricRows() ([]server.GaugeRow, []server.CounterRow) {
	var gauges []server.GaugeRow
	var counters []server.CounterRow
	snaps := make([]LoadSnapshot, 0, len(f.cfg.Loads))
	for _, ld := range f.cfg.Loads {
		if ld != nil {
			snaps = append(snaps, ld.Snapshot())
		}
	}
	counter := func(suffix, help string, val func(LoadSnapshot) int64) {
		for _, s := range snaps {
			counters = append(counters, server.CounterRow{
				Name: "bundled_worker" + suffix, Help: help,
				Labels: `worker="` + s.Addr + `"`, Value: val(s),
			})
		}
	}
	counter("_rpcs_total", "Coordinator RPCs issued per worker.",
		func(s LoadSnapshot) int64 { return s.RPCs })
	counter("_rpc_errors_total", "Coordinator RPCs that failed per worker (breaker rejections excluded).",
		func(s LoadSnapshot) int64 { return s.Errors })
	counter("_breaker_skips_total", "Coordinator RPCs rejected by an open circuit breaker per worker.",
		func(s LoadSnapshot) int64 { return s.BreakerSkips })
	for _, s := range snaps {
		gauges = append(gauges, server.GaugeRow{
			Name: "bundled_worker_rpc_latency_ewma_ms", Help: "EWMA of successful RPC latency per worker (milliseconds).",
			Labels: `worker="` + s.Addr + `"`, Value: s.LatencyEWMAMs,
		})
	}
	return gauges, counters
}
