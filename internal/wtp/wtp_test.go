package wtp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, 5); err == nil {
		t.Error("expected error for negative consumers")
	}
	if _, err := New(5, -1); err == nil {
		t.Error("expected error for negative items")
	}
	w, err := New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w.Consumers() != 3 || w.Items() != 2 {
		t.Errorf("dims = %d×%d, want 3×2", w.Consumers(), w.Items())
	}
}

func TestSetAtTotal(t *testing.T) {
	w := MustNew(3, 2)
	w.MustSet(0, 0, 12)
	w.MustSet(1, 0, 8)
	w.MustSet(2, 1, 11)
	if got := w.At(0, 0); got != 12 {
		t.Errorf("At(0,0) = %g, want 12", got)
	}
	if got := w.At(0, 1); got != 0 {
		t.Errorf("At(0,1) = %g, want 0", got)
	}
	if got := w.Total(); got != 31 {
		t.Errorf("Total() = %g, want 31", got)
	}
	if got := w.ItemTotal(0); got != 20 {
		t.Errorf("ItemTotal(0) = %g, want 20", got)
	}
	// Overwrite keeps totals consistent.
	w.MustSet(0, 0, 2)
	if got := w.Total(); got != 21 {
		t.Errorf("Total() = %g after overwrite, want 21", got)
	}
	// Setting to zero removes the posting.
	w.MustSet(0, 0, 0)
	if got := len(w.Postings(0)); got != 1 {
		t.Errorf("postings len = %d after zeroing, want 1", got)
	}
}

func TestSetErrors(t *testing.T) {
	w := MustNew(2, 2)
	if err := w.Set(2, 0, 1); err == nil {
		t.Error("expected error for consumer out of range")
	}
	if err := w.Set(0, 2, 1); err == nil {
		t.Error("expected error for item out of range")
	}
	if err := w.Set(0, 0, -1); err == nil {
		t.Error("expected error for negative WTP")
	}
}

func TestPostingsSortedAnyInsertOrder(t *testing.T) {
	w := MustNew(10, 1)
	for _, u := range []int{5, 1, 9, 3, 7, 0} {
		w.MustSet(u, 0, float64(u+1))
	}
	p := w.Postings(0)
	for i := 1; i < len(p); i++ {
		if p[i-1].Consumer >= p[i].Consumer {
			t.Fatalf("postings unsorted: %v", p)
		}
	}
	if len(p) != 6 {
		t.Fatalf("postings len = %d, want 6", len(p))
	}
}

func TestBundleWTP(t *testing.T) {
	w := MustNew(1, 3)
	w.MustSet(0, 0, 10)
	w.MustSet(0, 1, 6)
	cases := []struct {
		items []int
		theta float64
		want  float64
	}{
		{[]int{0}, 0, 10},
		{[]int{0, 1}, 0, 16},
		{[]int{0, 1}, -0.05, 15.2},
		{[]int{0, 1}, 0.25, 20},
		{[]int{0, 1, 2}, 0, 16}, // item 2 contributes nothing
		{[]int{2}, 0, 0},
	}
	for _, c := range cases {
		if got := w.BundleWTP(0, c.items, c.theta); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("BundleWTP(%v, θ=%g) = %g, want %g", c.items, c.theta, got, c.want)
		}
	}
}

func TestBundleVectorSingle(t *testing.T) {
	w := MustNew(5, 2)
	w.MustSet(1, 0, 3)
	w.MustSet(4, 0, 7)
	ids, vals := w.BundleVector([]int{0}, 0, nil, nil)
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 4 {
		t.Fatalf("ids = %v, want [1 4]", ids)
	}
	if vals[0] != 3 || vals[1] != 7 {
		t.Fatalf("vals = %v, want [3 7]", vals)
	}
}

func TestBundleVectorMerge(t *testing.T) {
	w := MustNew(4, 3)
	w.MustSet(0, 0, 5)
	w.MustSet(1, 0, 2)
	w.MustSet(1, 1, 4)
	w.MustSet(3, 1, 6)
	ids, vals := w.BundleVector([]int{0, 1}, 0, nil, nil)
	wantIDs := []int{0, 1, 3}
	wantVals := []float64{5, 6, 6}
	if len(ids) != 3 {
		t.Fatalf("ids = %v, want %v", ids, wantIDs)
	}
	for i := range wantIDs {
		if ids[i] != wantIDs[i] || math.Abs(vals[i]-wantVals[i]) > 1e-12 {
			t.Fatalf("vector = (%v, %v), want (%v, %v)", ids, vals, wantIDs, wantVals)
		}
	}
	// θ scales the merged sums.
	_, vals = w.BundleVector([]int{0, 1}, 0.5, nil, nil)
	if math.Abs(vals[1]-9) > 1e-12 {
		t.Fatalf("θ=0.5 vals = %v, want consumer 1 at 9", vals)
	}
}

func TestBundleVectorReuse(t *testing.T) {
	w := MustNew(3, 2)
	w.MustSet(0, 0, 5)
	ids, vals := w.BundleVector([]int{0}, 0, nil, nil)
	ids2, vals2 := w.BundleVector([]int{1}, 0, ids, vals)
	if len(ids2) != 0 || len(vals2) != 0 {
		t.Fatalf("reused vector should be empty, got %v %v", ids2, vals2)
	}
}

func TestCommonInterest(t *testing.T) {
	w := MustNew(4, 3)
	w.MustSet(0, 0, 1)
	w.MustSet(1, 0, 1)
	w.MustSet(1, 1, 1)
	w.MustSet(2, 2, 1)
	if !w.CommonInterest(0, 1) {
		t.Error("items 0 and 1 share consumer 1")
	}
	if w.CommonInterest(0, 2) {
		t.Error("items 0 and 2 share no consumer")
	}
}

func TestFromRatings(t *testing.T) {
	ratings := []Rating{
		{Consumer: 0, Item: 0, Stars: 5},
		{Consumer: 1, Item: 0, Stars: 4},
		{Consumer: 1, Item: 1, Stars: 1},
	}
	w, err := FromRatings(2, 2, ratings, []float64{10, 20}, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	// 5 stars → 5/5·1.25·10 = 12.50; 4 stars → 10; 1 star on $20 → 5.
	if got := w.At(0, 0); math.Abs(got-12.5) > 1e-12 {
		t.Errorf("At(0,0) = %g, want 12.5", got)
	}
	if got := w.At(1, 0); math.Abs(got-10) > 1e-12 {
		t.Errorf("At(1,0) = %g, want 10", got)
	}
	if got := w.At(1, 1); math.Abs(got-5) > 1e-12 {
		t.Errorf("At(1,1) = %g, want 5", got)
	}
}

func TestFromRatingsErrors(t *testing.T) {
	ok := []Rating{{Consumer: 0, Item: 0, Stars: 5}}
	if _, err := FromRatings(1, 1, ok, []float64{10}, 0.5); err == nil {
		t.Error("expected error for λ < 1")
	}
	if _, err := FromRatings(1, 1, ok, []float64{10, 20}, 1.25); err == nil {
		t.Error("expected error for price count mismatch")
	}
	if _, err := FromRatings(1, 1, []Rating{{0, 0, 6}}, []float64{10}, 1.25); err == nil {
		t.Error("expected error for star out of range")
	}
	if _, err := FromRatings(1, 1, []Rating{{0, 5, 3}}, []float64{10}, 1.25); err == nil {
		t.Error("expected error for item out of range")
	}
	if _, err := FromRatings(1, 1, ok, []float64{-10}, 1.25); err == nil {
		t.Error("expected error for negative price")
	}
}

// TestQuickBundleVectorMatchesDense cross-checks the postings-merge path
// against the dense matrix on random inputs.
func TestQuickBundleVectorMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 2+rng.Intn(20), 2+rng.Intn(6)
		w := MustNew(m, n)
		for u := 0; u < m; u++ {
			for i := 0; i < n; i++ {
				if rng.Float64() < 0.4 {
					w.MustSet(u, i, rng.Float64()*20)
				}
			}
		}
		items := []int{}
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.6 {
				items = append(items, i)
			}
		}
		theta := rng.Float64()*0.4 - 0.2
		ids, vals := w.BundleVector(items, theta, nil, nil)
		got := map[int]float64{}
		for j, id := range ids {
			got[id] = vals[j]
		}
		for u := 0; u < m; u++ {
			want := w.BundleWTP(u, items, theta)
			if want == 0 {
				if _, ok := got[u]; ok {
					return false
				}
				continue
			}
			if math.Abs(got[u]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTotalsConsistent checks Total == Σ ItemTotal == Σ dense entries
// under random mutation sequences including overwrites and zeroing.
func TestQuickTotalsConsistent(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w := MustNew(8, 5)
		for k := 0; k < int(ops); k++ {
			v := rng.Float64() * 10
			if rng.Float64() < 0.2 {
				v = 0
			}
			w.MustSet(rng.Intn(8), rng.Intn(5), v)
		}
		var dense, cols float64
		for i := 0; i < 5; i++ {
			cols += w.ItemTotal(i)
			for u := 0; u < 8; u++ {
				dense += w.At(u, i)
			}
		}
		return math.Abs(w.Total()-dense) < 1e-9 && math.Abs(cols-dense) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSetRejectsNaNAndInf(t *testing.T) {
	w := MustNew(1, 1)
	if err := w.Set(0, 0, math.NaN()); err == nil {
		t.Error("NaN WTP should be rejected")
	}
	if err := w.Set(0, 0, math.Inf(1)); err == nil {
		t.Error("+Inf WTP should be rejected")
	}
}
