// Package client is the thin Go client of the bundled bundle-pricing
// server (cmd/bundled). It speaks the server's JSON API and re-exports the
// wire types, so a consumer needs only this package:
//
//	c := client.New("http://localhost:8080", nil)
//	info, err := c.UploadMatrix(ctx, "store", w, bundling.Options{})
//	res, err := c.Solve(ctx, "store", "matching")
//	what, err := c.Evaluate(ctx, "store", [][]int{{0, 1}, {2}})
//
// Each upload creates (or replaces) a named long-lived Solver session on
// the server; solves and evaluates then hit that session concurrently. The
// same client drives every deployment shape unchanged — a single daemon, a
// durable one (-data-dir), or a cluster coordinator (-workers) — and
// against a multi-tenant daemon it authenticates via WithAPIKey:
//
//	c := client.New("http://localhost:8080", nil).WithAPIKey("sk-alice")
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"bundling"
	"bundling/internal/codec"
	"bundling/internal/obs"
	"bundling/internal/server"
)

// Wire types of the bundled API, shared verbatim with the server.
type (
	OptionsDoc           = server.OptionsDoc
	CreateCorpusRequest  = server.CreateCorpusRequest
	CorpusInfo           = server.CorpusInfo
	SolveRequest         = server.SolveRequest
	SolveResponse        = server.SolveResponse
	EvaluateRequest      = server.EvaluateRequest
	EvaluateResponse     = server.EvaluateResponse
	ConfigDoc            = server.ConfigDoc
	OfferDoc             = server.OfferDoc
	MutateCorpusRequest  = server.MutateCorpusRequest
	MutateCorpusResponse = server.MutateCorpusResponse
	DeltaCell            = bundling.DeltaCell
	HealthResponse       = server.HealthResponse
	ErrorResponse        = server.ErrorResponse
	UsageResponse        = server.UsageResponse
	UsageRow             = server.UsageRow
	FleetResponse        = server.FleetResponse
	FleetWorkerDoc       = server.FleetWorkerDoc
	FleetSpanDoc         = server.FleetSpanDoc
	WorkerLoadDoc        = server.WorkerLoadDoc
)

// Client talks to one bundled server. The zero value is unusable; construct
// with New. Clients are safe for concurrent use.
type Client struct {
	base   string
	hc     *http.Client
	apiKey string
	// ids is shared by every WithAPIKey copy, so LastRequestID reflects the
	// latest request through any derived client.
	ids *lastIDs
}

// lastIDs remembers the correlation headers of the most recent response.
type lastIDs struct {
	mu        sync.Mutex
	requestID string
	traceID   string
}

func (l *lastIDs) set(h http.Header) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if id := h.Get(obs.HeaderRequest); id != "" {
		l.requestID = id
	}
	if id := h.Get(obs.HeaderTrace); id != "" {
		l.traceID = id
	}
}

// New returns a client for the server at baseURL (e.g.
// "http://localhost:8080"). httpClient nil selects http.DefaultClient.
func New(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: httpClient, ids: &lastIDs{}}
}

// LastRequestID reports the X-Request-Id of the most recent response (any
// status), or "" before the first one — the handle to quote when reporting
// a failure to a server operator.
func (c *Client) LastRequestID() string {
	c.ids.mu.Lock()
	defer c.ids.mu.Unlock()
	return c.ids.requestID
}

// LastTraceID reports the X-Trace-Id of the most recent traced response, or
// "" if the server is not tracing — the key into the server's /debug/traces.
func (c *Client) LastTraceID() string {
	c.ids.mu.Lock()
	defer c.ids.mu.Unlock()
	return c.ids.traceID
}

// WithAPIKey returns a copy of the client that authenticates every request
// with the given tenant API key ("Authorization: Bearer <key>") — required
// against a bundled daemon running with -auth-keys or -auth-file. An empty
// key returns an unauthenticated copy.
func (c *Client) WithAPIKey(key string) *Client {
	dup := *c
	dup.apiKey = key
	return &dup
}

// APIError is a non-2xx server response. RequestID, when the server sent
// one, identifies the failed request in the server's logs and traces.
type APIError struct {
	StatusCode int
	Message    string
	RequestID  string
}

// Error renders the status code, server-reported cause and, when present,
// the request ID to quote in bug reports.
func (e *APIError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("bundled: %d: %s (request %s)", e.StatusCode, e.Message, e.RequestID)
	}
	return fmt.Sprintf("bundled: %d: %s", e.StatusCode, e.Message)
}

// do issues one JSON request; a non-2xx status becomes an *APIError, a 2xx
// body is decoded into out (unless nil).
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	if in == nil {
		return c.doRaw(ctx, method, path, "", nil, out)
	}
	buf, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.doRaw(ctx, method, path, "application/json", buf, out)
}

// doRaw issues one request with an explicit body and content type (empty =
// no body); the JSON response handling matches do.
func (c *Client) doRaw(ctx context.Context, method, path, contentType string, payload []byte, out any) error {
	var body io.Reader
	if contentType != "" {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if c.apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.apiKey)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	c.ids.set(resp.Header)
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var apiErr ErrorResponse
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		reqID := apiErr.RequestID
		if reqID == "" {
			reqID = resp.Header.Get(obs.HeaderRequest)
		}
		return &APIError{StatusCode: resp.StatusCode, Message: msg, RequestID: reqID}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// CreateCorpus uploads a corpus from an explicit request document.
func (c *Client) CreateCorpus(ctx context.Context, req CreateCorpusRequest) (*CorpusInfo, error) {
	var info CorpusInfo
	if err := c.do(ctx, http.MethodPost, "/v1/corpora", req, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// UploadMatrix uploads a WTP matrix under the given corpus ID (empty =
// server-assigned) and session options.
func (c *Client) UploadMatrix(ctx context.Context, id string, w *bundling.Matrix, opts bundling.Options) (*CorpusInfo, error) {
	return c.CreateCorpus(ctx, CreateCorpusRequest{
		ID:      id,
		Options: OptionsFromLibrary(opts),
		Matrix:  bundling.NewMatrixDoc(w),
	})
}

// UploadMatrixBin uploads a WTP matrix under the given corpus ID as a
// binary codec envelope — the compact upload path, roughly half the JSON
// bytes for a real corpus and bit-identical on the server. Requires a
// server that understands the codec Content-Type (this repo's bundled);
// against an older daemon the call fails with a 400 *APIError, and
// UploadMatrix remains the portable fallback.
func (c *Client) UploadMatrixBin(ctx context.Context, id string, w *bundling.Matrix, opts bundling.Options) (*CorpusInfo, error) {
	optsJSON, err := json.Marshal(OptionsFromLibrary(opts))
	if err != nil {
		return nil, err
	}
	doc := bundling.NewMatrixDoc(w)
	payload, err := codec.EncodeRecord(&codec.Record{
		ID:          id,
		OptionsJSON: optsJSON,
		Matrix:      codec.MatrixData(*doc),
	})
	if err != nil {
		return nil, err
	}
	var info CorpusInfo
	if err := c.doRaw(ctx, http.MethodPost, "/v1/corpora", codec.ContentType, payload, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// PatchCorpus applies a delta mutation — cell upserts and deletes — to an
// existing corpus in place. ifGeneration 0 applies unconditionally; a
// non-zero value must match the corpus's current generation or the server
// rejects the patch with a 409 *APIError and applies nothing.
func (c *Client) PatchCorpus(ctx context.Context, id string, ifGeneration int, cells []DeltaCell) (*MutateCorpusResponse, error) {
	var out MutateCorpusResponse
	req := MutateCorpusRequest{IfGeneration: ifGeneration, Cells: cells}
	if err := c.do(ctx, http.MethodPatch, "/v1/corpora/"+id, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PatchCorpusBin applies a delta mutation as a binary codec envelope — the
// compact mutation path, columnar like UploadMatrixBin. Requires a server
// that understands the codec Content-Type; against an older daemon the call
// fails with a 400 *APIError, and PatchCorpus remains the portable fallback.
func (c *Client) PatchCorpusBin(ctx context.Context, id string, ifGeneration int, cells []DeltaCell) (*MutateCorpusResponse, error) {
	d := codec.DeltaFromCells(id, uint64(ifGeneration), cells)
	var out MutateCorpusResponse
	if err := c.doRaw(ctx, http.MethodPatch, "/v1/corpora/"+id, codec.ContentType, codec.EncodeDelta(d), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// UploadCSV uploads a ratings CSV corpus converted with factor lambda
// (0 = bundling.DefaultLambda).
func (c *Client) UploadCSV(ctx context.Context, id, csv string, lambda float64, opts bundling.Options) (*CorpusInfo, error) {
	return c.CreateCorpus(ctx, CreateCorpusRequest{
		ID:      id,
		Format:  "csv",
		Lambda:  lambda,
		CSV:     csv,
		Options: OptionsFromLibrary(opts),
	})
}

// Corpora lists the server's live sessions.
func (c *Client) Corpora(ctx context.Context) ([]CorpusInfo, error) {
	var resp server.ListCorporaResponse
	if err := c.do(ctx, http.MethodGet, "/v1/corpora", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Corpora, nil
}

// Corpus fetches one session's info.
func (c *Client) Corpus(ctx context.Context, id string) (*CorpusInfo, error) {
	var info CorpusInfo
	if err := c.do(ctx, http.MethodGet, "/v1/corpora/"+id, nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// DeleteCorpus evicts a session.
func (c *Client) DeleteCorpus(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/corpora/"+id, nil, nil)
}

// Solve runs a configuration algorithm ("" = matching) on a session.
func (c *Client) Solve(ctx context.Context, id, algorithm string) (*SolveResponse, error) {
	var resp SolveResponse
	err := c.do(ctx, http.MethodPost, "/v1/corpora/"+id+"/solve", SolveRequest{Algorithm: algorithm}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Evaluate prices a caller-proposed lineup on a session.
func (c *Client) Evaluate(ctx context.Context, id string, offers [][]int) (*EvaluateResponse, error) {
	var resp EvaluateResponse
	err := c.do(ctx, http.MethodPost, "/v1/corpora/"+id+"/evaluate", EvaluateRequest{Offers: offers}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health checks liveness.
func (c *Client) Health(ctx context.Context) (*HealthResponse, error) {
	var resp HealthResponse
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Usage fetches the server's workload accounting — per-tenant and
// per-corpus request/error/byte meters with a sliding-window rate. Against
// an authenticated daemon the view is scoped to the calling tenant; an open
// daemon reports the full (admin) view.
func (c *Client) Usage(ctx context.Context) (*UsageResponse, error) {
	var resp UsageResponse
	if err := c.do(ctx, http.MethodGet, "/v1/usage", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Fleet fetches a cluster coordinator's merged fleet view: every worker's
// health and span placement joined with the coordinator's breaker and load
// state. A non-cluster daemon answers 404 (*APIError).
func (c *Client) Fleet(ctx context.Context) (*FleetResponse, error) {
	var resp FleetResponse
	if err := c.do(ctx, http.MethodGet, "/debug/fleet", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Metrics fetches the raw Prometheus text metrics.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	if c.apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.apiKey)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	c.ids.set(resp.Header)
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{StatusCode: resp.StatusCode, Message: strings.TrimSpace(string(buf))}
	}
	return string(buf), nil
}

// OptionsFromLibrary lifts bundling.Options to their wire form.
func OptionsFromLibrary(o bundling.Options) OptionsDoc { return server.NewOptionsDoc(o) }
