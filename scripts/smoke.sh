#!/bin/sh
# Smoke-test the bundled daemon end to end: build it, boot it on a sample
# (synthetic) corpus, run the client smoke test against it, and fail on any
# non-200 the test observes. Then smoke the distributed mode: boot two
# bundleworker daemons plus a coordinator bundled -workers, upload the demo
# corpus to it, and fail on any non-200 or on a solve mismatch between the
# cluster and local modes — including with one worker SIGSTOPped (a
# blackhole: connections accepted, never answered), where the coordinator
# must still answer within its deadline budget. Finally smoke the durable
# multi-tenant mode:
# boot with -data-dir and -auth-keys, upload as one tenant, check 401/403/
# 429 enforcement, SIGTERM the daemon, reboot it on the same data dir, and
# demand the restored corpus solve to the same revenue. CI runs this after
# the unit-test gate; locally it's `make smoke`.
set -eu

ADDR="${BUNDLED_SMOKE_ADDR:-127.0.0.1:8077}"
CADDR="${BUNDLED_SMOKE_CLUSTER_ADDR:-127.0.0.1:8078}"
W1="${BUNDLEWORKER_SMOKE_ADDR1:-127.0.0.1:9181}"
W2="${BUNDLEWORKER_SMOKE_ADDR2:-127.0.0.1:9182}"
BINDIR="$(mktemp -d)"
BIN="$BINDIR/bundled"
WBIN="$BINDIR/bundleworker"
LOG="$(mktemp)"
CLOG="$(mktemp)"
WLOG1="$(mktemp)"
WLOG2="$(mktemp)"

go build -o "$BIN" ./cmd/bundled
go build -o "$WBIN" ./cmd/bundleworker

"$BIN" -addr "$ADDR" -demo -pprof >"$LOG" 2>&1 &
PID=$!
PIDS="$PID"
# CONT first: a SIGSTOPped worker (blackhole scenario below) would otherwise
# never see the TERM.
trap 'kill -CONT $PIDS 2>/dev/null; kill $PIDS 2>/dev/null || true' EXIT INT TERM

# wait_healthy url pid log [want_status]
wait_healthy() {
  _i=0
  _want="${4:-200}"
  until [ "$(curl -s -o /dev/null -w '%{http_code}' "$1/healthz" 2>/dev/null)" = "$_want" ]; do
    _i=$((_i + 1))
    if [ "$_i" -ge 60 ]; then
      echo "$1 did not reach health status $_want; log:" >&2
      cat "$3" >&2
      exit 1
    fi
    if ! kill -0 "$2" 2>/dev/null; then
      echo "daemon for $1 exited early; log:" >&2
      cat "$3" >&2
      exit 1
    fi
    sleep 0.5
  done
}

wait_healthy "http://$ADDR" "$PID" "$LOG"

BUNDLED_ADDR="http://$ADDR" go test ./client -run TestServerSmoke -count=1 -v

# --- observability ----------------------------------------------------------
# Every /v1 response must carry an X-Request-Id, the solve's X-Trace-Id must
# be retrievable from /debug/traces, and with -pprof the heap profile must
# serve.

HDRS="$(mktemp)"
curl -sf -D "$HDRS" -o /dev/null -X POST "http://$ADDR/v1/corpora/demo/solve" -d '{"algorithm":"matching"}'
REQ_ID=$(tr -d '\r' <"$HDRS" | awk 'tolower($1)=="x-request-id:"{print $2}')
TRACE_ID=$(tr -d '\r' <"$HDRS" | awk 'tolower($1)=="x-trace-id:"{print $2}')
if [ -z "$REQ_ID" ]; then
  echo "solve response missing X-Request-Id; headers:" >&2
  cat "$HDRS" >&2
  exit 1
fi
if [ -z "$TRACE_ID" ]; then
  echo "solve response missing X-Trace-Id; headers:" >&2
  cat "$HDRS" >&2
  exit 1
fi
if ! curl -sf "http://$ADDR/debug/traces" | grep -q "$TRACE_ID"; then
  echo "/debug/traces does not contain trace $TRACE_ID" >&2
  exit 1
fi
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/debug/pprof/heap?debug=1")
if [ "$code" != "200" ]; then
  echo "/debug/pprof/heap returned $code with -pprof, want 200" >&2
  exit 1
fi
echo "observability smoke: request $REQ_ID traced as $TRACE_ID, pprof serving"

# --- distributed mode -------------------------------------------------------

"$WBIN" -addr "$W1" >"$WLOG1" 2>&1 &
WPID1=$!
PIDS="$PIDS $WPID1"
"$WBIN" -addr "$W2" >"$WLOG2" 2>&1 &
WPID2=$!
PIDS="$PIDS $WPID2"
wait_healthy "http://$W1" "$WPID1" "$WLOG1"
wait_healthy "http://$W2" "$WPID2" "$WLOG2"

"$BIN" -addr "$CADDR" -workers "$W1,$W2" -demo >"$CLOG" 2>&1 &
CPID=$!
PIDS="$PIDS $CPID"
wait_healthy "http://$CADDR" "$CPID" "$CLOG"

# Upload the same corpus to both daemons through the HTTP API (tiny explicit
# matrix doc), then solve it in both modes and demand identical revenue.
CORPUS='{"id":"smoke","matrix":{"consumers":4,"items":3,"entries":[[0,0,8],[0,1,5],[1,0,6],[1,2,9],[2,1,7],[2,2,4],[3,0,3],[3,2,5]]},"options":{}}'
for a in "$ADDR" "$CADDR"; do
  code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$a/v1/corpora" -d "$CORPUS")
  if [ "$code" != "201" ]; then
    echo "corpus upload to $a returned $code" >&2
    exit 1
  fi
done

# solve_revenue addr corpus algorithm [extra curl args...] — e.g. an
# Authorization header for the multi-tenant daemon.
solve_revenue() {
  _addr=$1 _corpus=$2 _alg=$3
  shift 3
  curl -sf "$@" -X POST "http://$_addr/v1/corpora/$_corpus/solve" -d "{\"algorithm\":\"$_alg\"}" |
    grep -o '"revenue": [0-9.eE+-]*' | head -1 | awk '{print $2}'
}

for alg in matching greedy; do
  for corpus in demo smoke; do
    RL=$(solve_revenue "$ADDR" "$corpus" "$alg")
    RC=$(solve_revenue "$CADDR" "$corpus" "$alg")
    if [ -z "$RL" ] || [ -z "$RC" ]; then
      echo "missing revenue for $corpus/$alg (local='$RL' cluster='$RC')" >&2
      exit 1
    fi
    if ! awk -v a="$RL" -v b="$RC" 'BEGIN{d=a-b; if (d<0) d=-d; exit !(d <= 1e-6*(1+(a<0?-a:a)))}'; then
      echo "solve mismatch for $corpus/$alg: local $RL vs cluster $RC" >&2
      exit 1
    fi
    echo "cluster smoke: $corpus/$alg revenue $RC matches local"
  done
done

# Workers must report their assigned spans.
if ! curl -sf "http://$W1/healthz" | grep -q '"corpus"'; then
  echo "worker 1 reports no assigned span" >&2
  exit 1
fi

# The coordinator's merged fleet view must list both workers as reachable,
# with the coordinator-side load join filled in from the solves above.
FLEET=$(curl -sf "http://$CADDR/debug/fleet" | tr -d ' \n')
for w in "$W1" "$W2"; do
  if ! printf '%s' "$FLEET" | grep -q "\"addr\":\"[^\"]*$w\""; then
    echo "/debug/fleet does not list worker $w: $FLEET" >&2
    exit 1
  fi
done
if ! printf '%s' "$FLEET" | grep -q '"reachable":2'; then
  echo "/debug/fleet does not report 2 reachable workers: $FLEET" >&2
  exit 1
fi
if ! printf '%s' "$FLEET" | grep -q '"rpcs":[1-9]'; then
  echo "/debug/fleet load join reports no RPCs: $FLEET" >&2
  exit 1
fi
echo "cluster smoke: /debug/fleet lists both workers with live load state"

# --- blackholed worker --------------------------------------------------------
# A SIGSTOPped worker accepts TCP connections but never answers (a blackhole,
# not a refused dial). A coordinator with a short per-RPC budget must still
# answer solves within its deadline budget via the replica/local-fallback
# ladder. Cache disabled so the timed solve really exercises the fan-out.

SADDR="${BUNDLED_SMOKE_STALL_ADDR:-127.0.0.1:8076}"
SLOG="$(mktemp)"
"$BIN" -addr "$SADDR" -workers "$W1,$W2" -rpc-timeout 300ms -cache -1 -demo >"$SLOG" 2>&1 &
SPID=$!
PIDS="$PIDS $SPID"
wait_healthy "http://$SADDR" "$SPID" "$SLOG"

kill -STOP "$WPID1"
T0=$(date +%s)
RS=$(solve_revenue "$SADDR" demo matching)
T1=$(date +%s)
kill -CONT "$WPID1"
if [ -z "$RS" ]; then
  echo "solve with a blackholed worker failed; coordinator log:" >&2
  cat "$SLOG" >&2
  exit 1
fi
if [ $((T1 - T0)) -gt 10 ]; then
  echo "solve with a blackholed worker took $((T1 - T0))s, budget is 10s" >&2
  exit 1
fi
RD=$(solve_revenue "$ADDR" demo matching)
if ! awk -v a="$RD" -v b="$RS" 'BEGIN{d=a-b; if (d<0) d=-d; exit !(d <= 1e-6*(1+(a<0?-a:a)))}'; then
  echo "blackholed-worker solve mismatch: local $RD vs coordinator $RS" >&2
  exit 1
fi
echo "cluster smoke: solve answered in $((T1 - T0))s with a blackholed worker (revenue $RS matches local)"

# Killing a worker must degrade the coordinator's /healthz to 503 (solves
# keep working via the local fallback — readiness is the operator signal).
kill "$WPID1"
wait "$WPID1" 2>/dev/null || true
wait_healthy "http://$CADDR" "$CPID" "$CLOG" 503
echo "cluster smoke: coordinator degraded to 503 with a worker down"

# --- durable multi-tenant mode ----------------------------------------------

DADDR="${BUNDLED_SMOKE_DURABLE_ADDR:-127.0.0.1:8079}"
DATADIR="$(mktemp -d)"
DLOG="$(mktemp)"
AKEY="sk-alice"
BKEY="sk-bob"

"$BIN" -addr "$DADDR" -data-dir "$DATADIR" -auth-keys "alice=$AKEY,bob=$BKEY" -quota-corpora 1 >"$DLOG" 2>&1 &
DPID=$!
PIDS="$PIDS $DPID"
wait_healthy "http://$DADDR" "$DPID" "$DLOG"

# Unauthenticated requests must be rejected with 401.
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$DADDR/v1/corpora")
if [ "$code" != "401" ]; then
  echo "unauthenticated list returned $code, want 401" >&2
  exit 1
fi

# Alice uploads her corpus; it must persist across the restart below.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$DADDR/v1/corpora" \
  -H "Authorization: Bearer $AKEY" -d "$CORPUS")
if [ "$code" != "201" ]; then
  echo "authenticated upload returned $code, want 201" >&2
  cat "$DLOG" >&2
  exit 1
fi

# Bob must not see or touch alice's corpus.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$DADDR/v1/corpora/smoke/solve" \
  -H "Authorization: Bearer $BKEY" -d '{"algorithm":"matching"}')
if [ "$code" != "403" ]; then
  echo "cross-tenant solve returned $code, want 403" >&2
  exit 1
fi

# A second distinct corpus exceeds alice's -quota-corpora 1: 429.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$DADDR/v1/corpora" \
  -H "Authorization: Bearer $AKEY" -d "$(printf '%s' "$CORPUS" | sed 's/"smoke"/"smoke2"/')")
if [ "$code" != "429" ]; then
  echo "over-quota upload returned $code, want 429" >&2
  exit 1
fi

R_BEFORE=$(solve_revenue "$DADDR" smoke matching -H "Authorization: Bearer $AKEY")

# The workload accounting must reflect exactly the requests alice just made
# (upload + over-quota upload + solve = 3), scoped to her own tenant row.
USAGE=$(curl -sf -H "Authorization: Bearer $AKEY" "http://$DADDR/v1/usage" | tr -d ' \n')
if ! printf '%s' "$USAGE" | grep -q '"scope":"tenant","tenant":"alice"'; then
  echo "/v1/usage is not alice-scoped: $USAGE" >&2
  exit 1
fi
ALICE_REQS=$(printf '%s' "$USAGE" | sed -n 's/.*"tenants":\[{"key":"alice","requests":\([0-9]*\).*/\1/p')
if [ "$ALICE_REQS" != "3" ]; then
  echo "/v1/usage reports $ALICE_REQS requests for alice, want 3: $USAGE" >&2
  exit 1
fi
if ! printf '%s' "$USAGE" | grep -q '"key":"smoke"'; then
  echo "/v1/usage does not meter corpus smoke: $USAGE" >&2
  exit 1
fi
if printf '%s' "$USAGE" | grep -q '"key":"bob"'; then
  echo "/v1/usage leaks bob's row to alice: $USAGE" >&2
  exit 1
fi
echo "usage smoke: /v1/usage accounts alice's 3 requests, tenant-scoped"

# Without -usage-metrics the open /metrics endpoint must not carry the
# labeled usage families (their labels are tenant names and corpus IDs).
if curl -sf "http://$DADDR/metrics" | grep -q -e bundled_tenant_ -e bundled_corpus_; then
  echo "/metrics exposes labeled usage series without -usage-metrics" >&2
  exit 1
fi
echo "usage smoke: labeled usage series stay off the open /metrics endpoint"

# Kill the daemon and reboot it against the same data dir: the corpus and
# its solve results must survive.
kill -TERM "$DPID"
wait "$DPID"
"$BIN" -addr "$DADDR" -data-dir "$DATADIR" -auth-keys "alice=$AKEY,bob=$BKEY" -quota-corpora 1 >"$DLOG" 2>&1 &
DPID=$!
PIDS="$PIDS $DPID"
wait_healthy "http://$DADDR" "$DPID" "$DLOG"

R_AFTER=$(solve_revenue "$DADDR" smoke matching -H "Authorization: Bearer $AKEY")
if [ -z "$R_BEFORE" ] || [ -z "$R_AFTER" ]; then
  echo "missing restart revenues (before='$R_BEFORE' after='$R_AFTER')" >&2
  cat "$DLOG" >&2
  exit 1
fi
if ! awk -v a="$R_BEFORE" -v b="$R_AFTER" 'BEGIN{d=a-b; if (d<0) d=-d; exit !(d <= 1e-9*(1+(a<0?-a:a)))}'; then
  echo "restart solve mismatch: before $R_BEFORE vs after $R_AFTER" >&2
  exit 1
fi
echo "durable smoke: revenue $R_AFTER survived the restart"

# --- delta mutation round trip ----------------------------------------------
# PATCH alice's corpus in place (upsert one cell, delete another), solve,
# restart the daemon, and demand the restored chain solve to the same
# revenue — the delta records must replay on top of the snapshot.

PATCH_OUT="$(mktemp)"
code=$(curl -s -o "$PATCH_OUT" -w '%{http_code}' -X PATCH "http://$DADDR/v1/corpora/smoke" \
  -H "Authorization: Bearer $AKEY" \
  -d '{"if_generation":1,"cells":[{"consumer":0,"item":0,"value":50},{"consumer":3,"item":2,"delete":true}]}')
if [ "$code" != "200" ]; then
  echo "corpus patch returned $code, want 200:" >&2
  cat "$PATCH_OUT" >&2
  exit 1
fi
if ! grep -q '"version": 2' "$PATCH_OUT"; then
  echo "corpus patch did not bump the generation to 2:" >&2
  cat "$PATCH_OUT" >&2
  exit 1
fi
# A stale precondition must be rejected without applying anything.
code=$(curl -s -o /dev/null -w '%{http_code}' -X PATCH "http://$DADDR/v1/corpora/smoke" \
  -H "Authorization: Bearer $AKEY" \
  -d '{"if_generation":1,"cells":[{"consumer":1,"item":0,"value":99}]}')
if [ "$code" != "409" ]; then
  echo "stale-generation patch returned $code, want 409" >&2
  exit 1
fi

R_PATCHED=$(solve_revenue "$DADDR" smoke matching -H "Authorization: Bearer $AKEY")
kill -TERM "$DPID"
wait "$DPID"
"$BIN" -addr "$DADDR" -data-dir "$DATADIR" -auth-keys "alice=$AKEY,bob=$BKEY" -quota-corpora 1 -delta-fold 8 >"$DLOG" 2>&1 &
DPID=$!
PIDS="$PIDS $DPID"
wait_healthy "http://$DADDR" "$DPID" "$DLOG"
R_REPLAYED=$(solve_revenue "$DADDR" smoke matching -H "Authorization: Bearer $AKEY")
if [ -z "$R_PATCHED" ] || [ -z "$R_REPLAYED" ]; then
  echo "missing patched revenues (before='$R_PATCHED' after='$R_REPLAYED')" >&2
  cat "$DLOG" >&2
  exit 1
fi
if ! awk -v a="$R_PATCHED" -v b="$R_REPLAYED" 'BEGIN{d=a-b; if (d<0) d=-d; exit !(d <= 1e-9*(1+(a<0?-a:a)))}'; then
  echo "patched-restart solve mismatch: before $R_PATCHED vs after $R_REPLAYED" >&2
  exit 1
fi
if awk -v a="$R_BEFORE" -v b="$R_PATCHED" 'BEGIN{d=a-b; if (d<0) d=-d; exit !(d <= 1e-9)}'; then
  echo "patch left the revenue unchanged ($R_PATCHED); the mutation did not apply" >&2
  exit 1
fi
echo "mutation smoke: patched revenue $R_REPLAYED survived the restart (was $R_BEFORE before the patch)"

# Graceful shutdowns must complete cleanly.
for p in "$CPID" "$SPID" "$WPID2" "$PID" "$DPID"; do
  kill -TERM "$p"
  wait "$p"
done
trap - EXIT INT TERM
echo "smoke OK"
