package experiments

import (
	"fmt"

	"bundling/internal/config"
	"bundling/internal/metrics"
	"bundling/internal/tabular"
)

// Table2Row is one λ setting of the pricing-baseline calibration.
type Table2Row struct {
	Lambda          float64
	OptimalCoverage float64 // revenue coverage (%) of Components, optimal pricing
	ListCoverage    float64 // revenue coverage (%) of Components, list (marketplace) pricing
}

// Table2Result reproduces Table 2: Components revenue coverage at different
// conversion factors λ, under optimal pricing vs the dataset's list prices.
type Table2Result struct {
	Rows []Table2Row
}

// DefaultLambdas are the λ values of Table 2.
func DefaultLambdas() []float64 { return []float64{1.00, 1.25, 1.50, 1.75, 2.00} }

// Table2 runs the calibration on the environment's dataset. Each λ requires
// its own WTP conversion, so env.W is not used.
func Table2(env *Env, lambdas []float64, params config.Params) (*Table2Result, error) {
	res := &Table2Result{}
	for _, l := range lambdas {
		w, err := env.DS.WTP(l)
		if err != nil {
			return nil, err
		}
		opt, err := config.Components(w, params)
		if err != nil {
			return nil, err
		}
		list, err := config.ComponentsAtPrices(w, env.DS.Prices, params)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table2Row{
			Lambda:          l,
			OptimalCoverage: metrics.Coverage(opt.Revenue, w.Total()),
			ListCoverage:    metrics.Coverage(list.Revenue, w.Total()),
		})
	}
	return res, nil
}

// Render prints the result in the paper's Table 2 layout.
func (r *Table2Result) Render() string {
	t := tabular.New("Table 2: Revenue Coverage at Different λ's",
		"λ", "Optimal pricing", "List pricing")
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprintf("%.2f", row.Lambda),
			fmt.Sprintf("%.1f%%", row.OptimalCoverage),
			fmt.Sprintf("%.1f%%", row.ListCoverage),
		)
	}
	return t.String()
}
