package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"bundling"
)

func decodeString(s string, v any) error { return json.Unmarshal([]byte(s), v) }

func jsonMarshal(v any) ([]byte, error) { return json.Marshal(v) }

func copyAll(dst io.Writer, src io.Reader) (int64, error) { return io.Copy(dst, src) }

// testMatrix builds a small deterministic WTP matrix.
func testMatrix(t testing.TB, consumers, items int, seed int64) *bundling.Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := bundling.NewMatrix(consumers, items)
	for u := 0; u < consumers; u++ {
		for i := 0; i < items; i++ {
			if rng.Float64() < 0.4 {
				w.MustSet(u, i, 1+rng.Float64()*19)
			}
		}
	}
	return w
}

// postJSON is a minimal HTTP helper for handler-level tests.
func postJSON(t testing.TB, ts *httptest.Server, path, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 64<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp, sb.String()
}

// TestRoundTripMatchesLibrary uploads a corpus over HTTP, solves and
// evaluates through the full client → server → session path, and asserts
// the results equal direct library calls within 1e-9 — the server must be
// a transport, never a different computation.
func TestRoundTripMatchesLibrary(t *testing.T) {
	w := testMatrix(t, 120, 24, 3)
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, strat := range []bundling.Strategy{bundling.Pure, bundling.Mixed} {
		opts := bundling.Options{Strategy: strat, Theta: -0.02}
		name := fmt.Sprintf("rt-%d", strat)
		if err := Preload(srv, name, w, opts); err != nil {
			t.Fatal(err)
		}
		direct, err := bundling.NewSolver(w, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range bundling.Algorithms() {
			resp, body := postJSON(t, ts, "/v1/corpora/"+name+"/solve",
				fmt.Sprintf(`{"algorithm":%q}`, alg.Name()))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("solve %s: %d: %s", alg.Name(), resp.StatusCode, body)
			}
			want, err := direct.Solve(alg)
			if err != nil {
				t.Fatal(err)
			}
			var got SolveResponse
			if err := decodeString(body, &got); err != nil {
				t.Fatalf("solve %s: %v", alg.Name(), err)
			}
			if math.Abs(got.Config.Revenue-want.Revenue) > 1e-9 {
				t.Errorf("%v/%s: server revenue %.12f != library %.12f",
					strat, alg.Name(), got.Config.Revenue, want.Revenue)
			}
			if len(got.Config.Bundles) != len(want.Bundles) {
				t.Errorf("%v/%s: %d bundles != %d", strat, alg.Name(), len(got.Config.Bundles), len(want.Bundles))
			}
		}
		offers := [][]int{{0, 1, 2}, {3, 4}, {7}}
		resp, body := postJSON(t, ts, "/v1/corpora/"+name+"/evaluate", `{"offers":[[0,1,2],[3,4],[7]]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("evaluate: %d: %s", resp.StatusCode, body)
		}
		want, err := direct.Evaluate(offers)
		if err != nil {
			t.Fatal(err)
		}
		var got EvaluateResponse
		if err := decodeString(body, &got); err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Config.Revenue-want.Revenue) > 1e-9 {
			t.Errorf("%v/evaluate: server revenue %.12f != library %.12f", strat, got.Config.Revenue, want.Revenue)
		}
	}
}

// TestCacheInvalidationOnReupload verifies the version-bump contract: a
// repeated solve hits the cache, a re-upload of the same corpus ID misses
// it and serves results for the new matrix.
func TestCacheInvalidationOnReupload(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	upload := func(seed int64) CorpusInfo {
		doc := bundling.NewMatrixDoc(testMatrix(t, 80, 16, seed))
		req := CreateCorpusRequest{ID: "inv", Matrix: doc}
		buf, _ := jsonMarshal(req)
		resp, body := postJSON(t, ts, "/v1/corpora", string(buf))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload: %d: %s", resp.StatusCode, body)
		}
		var info CorpusInfo
		if err := decodeString(body, &info); err != nil {
			t.Fatal(err)
		}
		return info
	}
	solve := func() SolveResponse {
		resp, body := postJSON(t, ts, "/v1/corpora/inv/solve", `{"algorithm":"matching"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve: %d: %s", resp.StatusCode, body)
		}
		var out SolveResponse
		if err := decodeString(body, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	info1 := upload(1)
	if info1.Version != 1 {
		t.Fatalf("first upload version = %d, want 1", info1.Version)
	}
	first := solve()
	if first.Cached {
		t.Error("first solve must miss the cache")
	}
	second := solve()
	if !second.Cached {
		t.Error("repeat solve must hit the cache")
	}
	if second.Config.Revenue != first.Config.Revenue {
		t.Errorf("cached revenue %.12f != first %.12f", second.Config.Revenue, first.Config.Revenue)
	}

	info2 := upload(2) // different matrix under the same ID
	if info2.Version != 2 {
		t.Fatalf("re-upload version = %d, want 2", info2.Version)
	}
	third := solve()
	if third.Cached {
		t.Error("solve after re-upload must miss the cache (version bump)")
	}
	if third.Version != 2 {
		t.Errorf("solve served version %d, want 2", third.Version)
	}
	if math.Abs(third.Config.Revenue-first.Config.Revenue) < 1e-12 {
		t.Errorf("new corpus produced identical revenue %.12f; suspicious stale result", third.Config.Revenue)
	}
	// The replaced corpus' result must still be reproducible from scratch —
	// and the old cache entry must not shadow the new one.
	fourth := solve()
	if !fourth.Cached || fourth.Config.Revenue != third.Config.Revenue {
		t.Errorf("post-invalidation repeat: cached=%v revenue=%.12f want %.12f",
			fourth.Cached, fourth.Config.Revenue, third.Config.Revenue)
	}
}

// TestConcurrentRegistry hammers create/solve/evaluate/evict from many
// goroutines; run under -race this is the registry's thread-safety proof.
func TestConcurrentRegistry(t *testing.T) {
	srv := New(Config{MaxSessions: 8})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	w := testMatrix(t, 60, 12, 9)
	doc := bundling.NewMatrixDoc(w)
	const workers = 12
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("c%d", g%5) // deliberate ID collisions
			for it := 0; it < 6; it++ {
				req := CreateCorpusRequest{ID: id, Matrix: doc}
				buf, _ := jsonMarshal(req)
				resp, body := postJSON(t, ts, "/v1/corpora", string(buf))
				if resp.StatusCode != http.StatusCreated {
					t.Errorf("create %s: %d: %s", id, resp.StatusCode, body)
					return
				}
				switch it % 3 {
				case 0:
					resp, body = postJSON(t, ts, "/v1/corpora/"+id+"/solve", `{"algorithm":"components"}`)
				case 1:
					resp, body = postJSON(t, ts, "/v1/corpora/"+id+"/evaluate", `{"offers":[[0,1],[2,3]]}`)
				default:
					req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/corpora/"+id, nil)
					delResp, err := http.DefaultClient.Do(req)
					if err != nil {
						t.Error(err)
						return
					}
					delResp.Body.Close()
					// 404 is fine: another goroutine may have deleted or
					// evicted the session first.
					continue
				}
				// Solve/evaluate may 404 if a concurrent delete/evict won the
				// race — that's the documented behavior, not an error.
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
					t.Errorf("op on %s: %d: %s", id, resp.StatusCode, body)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSessionEvictionLRU fills the registry beyond its bound and checks the
// least-recently-used session is evicted.
func TestSessionEvictionLRU(t *testing.T) {
	srv := New(Config{MaxSessions: 2})
	defer srv.Close()
	w := testMatrix(t, 40, 8, 5)
	for _, id := range []string{"a", "b"} {
		if err := Preload(srv, id, w, bundling.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" is the LRU victim.
	if sess, ok := srv.reg.peek("a"); !ok {
		t.Fatal("session a missing")
	} else {
		srv.reg.touch(sess)
	}
	if err := Preload(srv, "c", w, bundling.Options{}); err != nil {
		t.Fatal(err)
	}
	if srv.Sessions() != 2 {
		t.Fatalf("sessions = %d, want 2", srv.Sessions())
	}
	if _, ok := srv.reg.peek("b"); ok {
		t.Error("b should have been evicted as LRU")
	}
	if _, ok := srv.reg.peek("a"); !ok {
		t.Error("a should have survived")
	}
	if _, ok := srv.reg.peek("c"); !ok {
		t.Error("c should be live")
	}
	// An evicted-then-recreated ID continues its version sequence.
	if err := Preload(srv, "b", w, bundling.Options{}); err != nil {
		t.Fatal(err)
	}
	sess, ok := srv.reg.peek("b")
	if !ok || sess.version != 2 {
		t.Errorf("recreated b version = %d, want 2 (versions survive eviction)", sess.version)
	}
}

// TestHTTPErrors exercises the API's failure statuses.
func TestHTTPErrors(t *testing.T) {
	srv := New(Config{MaxUploadBytes: 512})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name, path, body string
		want             int
	}{
		{"solve unknown corpus", "/v1/corpora/nope/solve", `{"algorithm":"matching"}`, http.StatusNotFound},
		{"evaluate unknown corpus", "/v1/corpora/nope/evaluate", `{"offers":[[0]]}`, http.StatusNotFound},
		{"create bad json", "/v1/corpora", `{"matrix": `, http.StatusBadRequest},
		{"create no matrix", "/v1/corpora", `{"id":"x"}`, http.StatusBadRequest},
		{"create bad strategy", "/v1/corpora", `{"id":"x","options":{"strategy":"hybrid"},"matrix":{"consumers":1,"items":1,"entries":[]}}`, http.StatusBadRequest},
		{"create bad entries", "/v1/corpora", `{"id":"x","matrix":{"consumers":1,"items":1,"entries":[[5,5,1]]}}`, http.StatusBadRequest},
		{"create unknown field", "/v1/corpora", `{"id":"x","bogus":1}`, http.StatusBadRequest},
		{"create oversized", "/v1/corpora", `{"matrix":{"consumers":1,"items":1,"entries":[` + strings.Repeat("[0,0,1],", 200) + `[0,0,1]]}}`, http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := postJSON(t, ts, c.path, c.body)
			if resp.StatusCode != c.want {
				t.Errorf("%s: status %d, want %d (%s)", c.name, resp.StatusCode, c.want, body)
			}
		})
	}

	// Bad offers on a live corpus: overlap under pure bundling → 400.
	if err := Preload(srv, "live", testMatrix(t, 30, 6, 11), bundling.Options{}); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts, "/v1/corpora/live/evaluate", `{"offers":[[0,1],[1,2]]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("overlapping offers: status %d, want 400 (%s)", resp.StatusCode, body)
	}
}

// TestMetricsEndpoint checks the Prometheus exposition carries the serving
// counters the load bench scrapes.
func TestMetricsEndpoint(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if err := Preload(srv, "m", testMatrix(t, 40, 8, 2), bundling.Options{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if resp, body := postJSON(t, ts, "/v1/corpora/m/solve", `{"algorithm":"components"}`); resp.StatusCode != http.StatusOK {
			t.Fatalf("solve: %d: %s", resp.StatusCode, body)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(strings.Builder)
	if _, err := copyAll(buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"bundled_sessions 1",
		"bundled_cache_hits_total 1",
		"bundled_cache_misses_total 1",
		`bundled_requests_total{op="solve"} 2`,
		`bundled_request_duration_seconds_bucket{op="solve",le="+Inf"} 2`,
		"bundled_uploads_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

func TestCanonicalOffers(t *testing.T) {
	a := canonicalOffers([][]int{{2, 1}, {5, 3}})
	b := canonicalOffers([][]int{{3, 5}, {1, 2}})
	if a != b {
		t.Errorf("order-insensitive encodings differ: %q vs %q", a, b)
	}
	c := canonicalOffers([][]int{{1, 2}, {3}})
	if a == c {
		t.Errorf("distinct families collide: %q", c)
	}
}
