package cluster

import (
	"context"
	"fmt"
	"sync/atomic"

	"bundling"
	"bundling/internal/server"
)

// ApplyDelta derives a new coordinator session with the delta applied,
// leaving the receiver serving its own snapshot untouched. The local side is
// incremental end to end (bundling.Solver.ApplyDeltaOn: copy-on-write matrix,
// touched-stripe shard rebuild, touched-item singleton repair). On the fleet
// side the new session takes a fresh corpus key and snapshot nonce — old
// in-flight solves keep hitting the old keys, and the old session's Close
// still drops exactly its own spans — and each span is fed as a span-scoped
// delta against the worker's resident base span: the worker checks the base
// nonce like any other RPC and rebases the replica in place, so a one-cell
// mutation ships a few dozen bytes per span instead of the whole postings.
// Untouched spans ship an empty-cell alias delta. Any delta failure — a
// transport without delta support, a worker that lost or evicted the base
// span, a stale base nonce — falls back to a full span feed of the patched
// doc, so the fleet converges on the new snapshot regardless.
func (s *Solver) ApplyDelta(cells []bundling.DeltaCell) (*Solver, error) {
	x := s.exec
	nx := &executor{
		corpus:  uniqueCorpus(),
		version: snapshotNonce(),
		workers: x.workers,
		timeout: x.timeout,
		feedTO:  x.feedTO,
		backoff: x.backoff,
		backMax: x.backMax,
	}
	inner, err := s.inner.ApplyDeltaOn(cells, nx)
	if err != nil {
		return nil, err
	}
	nx.levels, nx.alpha = inner.PricingGrid()
	stripeSize := inner.Stats().StripeSize
	consumers := inner.Stats().Consumers
	baseByStart := make(map[int]*spanSlot, len(x.spans))
	for _, sl := range x.spans {
		baseByStart[sl.doc.Start] = sl
	}
	for i, doc := range inner.Spans(len(x.workers)) {
		doc.Version = nx.version
		sl := &spanSlot{
			key:           fmt.Sprintf("%s/%d", nx.corpus, doc.Start),
			doc:           doc,
			primary:       i % len(nx.workers),
			feedFailUntil: make([]atomic.Int64, len(nx.workers)),
			feedFails:     make([]atomic.Int32, len(nx.workers)),
		}
		sl.hi = doc.End * stripeSize
		if sl.hi > consumers {
			sl.hi = consumers
		}
		nx.spans = append(nx.spans, sl)
	}
	// A delta rebases on the base session's resident spans, so let the base's
	// eager feeds settle before sending any — racing one would bounce off
	// ErrSpan and waste a full feed. By mutation time these are normally long
	// done; a sick worker bounds the wait at the base's feed timeout.
	x.feeding.Wait()
	// Feed each span, best effort like NewSolver's eager feed: delta-rebase
	// against the worker's resident base span where possible, full feed
	// otherwise. The lazy re-feed path and the replica/local fallbacks cover
	// any span this leaves unfed. Each feed also holds the base session's
	// feeding group, so a base Close right after ApplyDelta cannot drop the
	// base spans out from under an in-flight rebase.
	lo := 0
	for _, sl := range nx.spans {
		base := baseByStart[sl.doc.Start]
		var cut []bundling.DeltaCell
		for _, c := range cells {
			if c.Consumer >= lo && c.Consumer < sl.hi {
				cut = append(cut, c)
			}
		}
		lo = sl.hi
		nx.feeding.Add(1)
		x.feeding.Add(1)
		go func(sl *spanSlot, base *spanSlot, cut []bundling.DeltaCell) {
			defer nx.feeding.Done()
			defer x.feeding.Done()
			ctx, cancel := context.WithTimeout(context.Background(), nx.feedTO)
			defer cancel()
			t := nx.workers[sl.primary]
			if base != nil && base.primary == sl.primary {
				if dt, ok := t.(DeltaTransport); ok {
					req := DeltaRequest{
						BaseCorpus:  base.key,
						FromVersion: x.version,
						ToVersion:   nx.version,
						Cells:       cut,
					}
					if err := dt.Delta(ctx, sl.key, req); err == nil {
						nx.deltaFeeds.Add(1)
						return
					}
				}
			}
			nx.deltaFallbacks.Add(1)
			_ = t.Assign(ctx, sl.key, &AssignRequest{Corpus: sl.key, Span: sl.doc})
		}(sl, base, cut)
	}
	return &Solver{inner: inner, exec: nx, opts: s.opts}, nil
}

// ApplyDeltaSolver implements the serving layer's optional mutation
// extension (server.DeltaSolver) on top of ApplyDelta.
func (s *Solver) ApplyDeltaSolver(cells []bundling.DeltaCell) (server.Solver, error) {
	return s.ApplyDelta(cells)
}
