// Bookstore mines willingness to pay from star ratings — the paper's core
// scenario (Sec. 6.1.1) — and compares every bundling method on a synthetic
// Amazon-Books-like corpus.
//
// Run with:
//
//	go run ./examples/bookstore [-users 800] [-items 200] [-theta 0]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"bundling"
)

func main() {
	users := flag.Int("users", 800, "number of consumers")
	items := flag.Int("items", 200, "number of books")
	theta := flag.Float64("theta", 0, "bundling coefficient θ")
	lambda := flag.Float64("lambda", 1.25, "ratings→WTP conversion factor λ")
	flag.Parse()

	// Generate a rating corpus with the paper's marginals and convert the
	// stars to willingness to pay: WTP = stars/5 · λ · listPrice.
	ds, err := bundling.GenerateDataset(bundling.DatasetConfig{
		Users: *users, Items: *items, RatingsPerUser: 20, MinDegree: 5, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	w, err := ds.WTP(*lambda)
	if err != nil {
		log.Fatal(err)
	}
	st := ds.Summarize()
	fmt.Printf("corpus: %d readers, %d books, %d ratings (λ=%.2f, θ=%.2f)\n\n",
		st.Users, st.Items, st.Ratings, *lambda, *theta)

	type method struct {
		name string
		run  func() (*bundling.Configuration, error)
	}
	base := bundling.Options{Theta: *theta}
	mixed := bundling.Options{Theta: *theta, Strategy: bundling.Mixed}
	methods := []method{
		{"Components", func() (*bundling.Configuration, error) { return bundling.SolveComponents(w, base) }},
		{"Pure Matching", func() (*bundling.Configuration, error) { return bundling.SolveMatching(w, base) }},
		{"Pure Greedy", func() (*bundling.Configuration, error) { return bundling.SolveGreedy(w, base) }},
		{"Mixed Matching", func() (*bundling.Configuration, error) { return bundling.SolveMatching(w, mixed) }},
		{"Mixed Greedy", func() (*bundling.Configuration, error) { return bundling.SolveGreedy(w, mixed) }},
		{"Mixed FreqItemset", func() (*bundling.Configuration, error) { return bundling.SolveFreqItemset(w, 0.001, mixed) }},
	}
	var compRevenue float64
	fmt.Printf("%-18s %12s %10s %8s %9s %8s\n", "method", "revenue", "coverage", "gain", "bundles", "time")
	for _, m := range methods {
		start := time.Now()
		cfg, err := m.run()
		if err != nil {
			log.Fatal(err)
		}
		if m.name == "Components" {
			compRevenue = cfg.Revenue
		}
		gain := 0.0
		if compRevenue > 0 {
			gain = (cfg.Revenue - compRevenue) / compRevenue * 100
		}
		fmt.Printf("%-18s %12.0f %9.1f%% %+7.2f%% %9d %7.2fs\n",
			m.name, cfg.Revenue, bundling.Coverage(cfg, w), gain,
			len(cfg.Bundles), time.Since(start).Seconds())
	}

	// Show the biggest bundle mixed matching found.
	cfg, err := bundling.SolveMatching(w, mixed)
	if err != nil {
		log.Fatal(err)
	}
	var biggest bundling.Bundle
	for _, b := range cfg.Bundles {
		if len(b.Items) > len(biggest.Items) {
			biggest = b
		}
	}
	if len(biggest.Items) > 1 {
		fmt.Printf("\nlargest bundle: %d books at $%.2f (adds $%.2f over selling them individually)\n",
			len(biggest.Items), biggest.Price, biggest.Revenue)
	}
}
