package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if !s.Empty() {
		t.Error("new set should be empty")
	}
	if s.Count() != 0 {
		t.Errorf("Count() = %d, want 0", s.Count())
	}
	if s.Len() != 100 {
		t.Errorf("Len() = %d, want 100", s.Len())
	}
	if s.Min() != -1 {
		t.Errorf("Min() = %d, want -1", s.Min())
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative universe")
		}
	}()
	New(-1)
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130) // spans three words
	for _, i := range []int{0, 1, 63, 64, 127, 129} {
		s.Add(i)
		if !s.Contains(i) {
			t.Errorf("Contains(%d) = false after Add", i)
		}
	}
	if s.Count() != 6 {
		t.Errorf("Count() = %d, want 6", s.Count())
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Error("Contains(64) = true after Remove")
	}
	if s.Count() != 5 {
		t.Errorf("Count() = %d, want 5", s.Count())
	}
	// Removing an absent element is a no-op.
	s.Remove(64)
	if s.Count() != 5 {
		t.Errorf("Count() = %d after double remove, want 5", s.Count())
	}
}

func TestContainsOutOfRange(t *testing.T) {
	s := New(10)
	if s.Contains(-1) || s.Contains(10) || s.Contains(100) {
		t.Error("out-of-range Contains should be false")
	}
}

func TestAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(10).Add(10)
}

func TestFromIndices(t *testing.T) {
	s := FromIndices(10, 1, 3, 5, 3)
	if got := s.Indices(); len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Errorf("Indices() = %v, want [1 3 5]", got)
	}
}

func TestSetOperations(t *testing.T) {
	a := FromIndices(200, 1, 65, 130, 199)
	b := FromIndices(200, 65, 66, 199)

	u := a.Clone()
	u.UnionWith(b)
	if got := u.Indices(); len(got) != 5 {
		t.Errorf("union = %v, want 5 elements", got)
	}

	i := a.Clone()
	i.IntersectWith(b)
	if got := i.Indices(); len(got) != 2 || got[0] != 65 || got[1] != 199 {
		t.Errorf("intersection = %v, want [65 199]", got)
	}

	d := a.Clone()
	d.DifferenceWith(b)
	if got := d.Indices(); len(got) != 2 || got[0] != 1 || got[1] != 130 {
		t.Errorf("difference = %v, want [1 130]", got)
	}

	if !a.Intersects(b) {
		t.Error("a should intersect b")
	}
	if a.IntersectionCount(b) != 2 {
		t.Errorf("IntersectionCount = %d, want 2", a.IntersectionCount(b))
	}
	if FromIndices(200, 0).Intersects(b) {
		t.Error("{0} should not intersect b")
	}
}

func TestSubsetEqual(t *testing.T) {
	a := FromIndices(100, 2, 50)
	b := FromIndices(100, 2, 50, 99)
	if !a.SubsetOf(b) {
		t.Error("a ⊆ b expected")
	}
	if b.SubsetOf(a) {
		t.Error("b ⊄ a expected")
	}
	if !a.SubsetOf(a.Clone()) {
		t.Error("a ⊆ a expected")
	}
	if !a.Equal(a.Clone()) {
		t.Error("a == clone expected")
	}
	if a.Equal(b) {
		t.Error("a != b expected")
	}
	if a.Equal(FromIndices(50, 2)) {
		t.Error("different universes should not be Equal")
	}
}

func TestUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for universe mismatch")
		}
	}()
	New(10).UnionWith(New(20))
}

func TestClearMinString(t *testing.T) {
	s := FromIndices(70, 69, 3)
	if s.Min() != 3 {
		t.Errorf("Min() = %d, want 3", s.Min())
	}
	if got := s.String(); got != "{3, 69}" {
		t.Errorf("String() = %q", got)
	}
	s.Clear()
	if !s.Empty() {
		t.Error("Clear should empty the set")
	}
	if got := s.String(); got != "{}" {
		t.Errorf("String() = %q after clear", got)
	}
}

func TestForEachOrder(t *testing.T) {
	s := FromIndices(300, 299, 0, 64, 65, 128)
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	want := []int{0, 64, 65, 128, 299}
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v", got, want)
		}
	}
}

// TestQuickAgainstMap property-tests the bitset against a map-based model.
func TestQuickAgainstMap(t *testing.T) {
	f := func(seed int64, ops uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 150
		s := New(n)
		model := map[int]bool{}
		for op := 0; op < int(ops%500); op++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				s.Add(i)
				model[i] = true
			case 1:
				s.Remove(i)
				delete(model, i)
			case 2:
				if s.Contains(i) != model[i] {
					return false
				}
			}
		}
		if s.Count() != len(model) {
			return false
		}
		for _, i := range s.Indices() {
			if !model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeMorgan checks |A ∩ B| + |A \ B| = |A| on random sets.
func TestQuickDeMorgan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 200
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.3 {
				a.Add(i)
			}
			if rng.Float64() < 0.3 {
				b.Add(i)
			}
		}
		diff := a.Clone()
		diff.DifferenceWith(b)
		return a.IntersectionCount(b)+diff.Count() == a.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
