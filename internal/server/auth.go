package server

import (
	"bufio"
	"context"
	"fmt"
	"math"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"bundling/internal/obs"
)

// Auth is the serving tier's tenancy map: API key → tenant ID. A request
// presents its key as "Authorization: Bearer <key>" (or "X-API-Key: <key>");
// the tenant it resolves to owns every corpus it uploads and is the unit
// quotas meter. A nil or empty Auth disables authentication: the daemon runs
// open, and all traffic shares the anonymous tenant "".
type Auth struct {
	keys map[string]string // key → tenant
}

// Enabled reports whether authentication is configured.
func (a *Auth) Enabled() bool { return a != nil && len(a.keys) > 0 }

// Tenant resolves an API key to its tenant ID.
func (a *Auth) Tenant(key string) (string, bool) {
	if a == nil {
		return "", false
	}
	t, ok := a.keys[key]
	return t, ok
}

// Tenants returns the number of distinct tenants configured.
func (a *Auth) Tenants() int {
	if a == nil {
		return 0
	}
	seen := map[string]bool{}
	for _, t := range a.keys {
		seen[t] = true
	}
	return len(seen)
}

// ParseAuthKeys parses an inline tenant=key list (the -auth-keys flag):
// comma-separated "tenant=apikey" pairs. A tenant may hold several keys;
// one key cannot serve two tenants.
func ParseAuthKeys(spec string) (*Auth, error) {
	a := &Auth{keys: map[string]string{}}
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		if err := a.add(pair); err != nil {
			return nil, err
		}
	}
	if len(a.keys) == 0 {
		return nil, fmt.Errorf("auth: no tenant=key pairs in %q", spec)
	}
	return a, nil
}

// LoadAuthKeysFile parses a key file (the -auth-file flag): one "tenant=key"
// pair per line, blank lines and #-comments ignored.
func LoadAuthKeysFile(path string) (*Auth, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("auth: %w", err)
	}
	defer f.Close()
	a := &Auth{keys: map[string]string{}}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if err := a.add(text); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("auth: %w", err)
	}
	if len(a.keys) == 0 {
		return nil, fmt.Errorf("auth: no tenant=key pairs in %s", path)
	}
	return a, nil
}

// add registers one "tenant=key" pair.
func (a *Auth) add(pair string) error {
	tenant, key, ok := strings.Cut(pair, "=")
	tenant, key = strings.TrimSpace(tenant), strings.TrimSpace(key)
	if !ok || tenant == "" || key == "" {
		return fmt.Errorf("auth: malformed pair %q (want tenant=key)", pair)
	}
	if prev, dup := a.keys[key]; dup && prev != tenant {
		return fmt.Errorf("auth: key of tenant %q already assigned to tenant %q", tenant, prev)
	}
	a.keys[key] = tenant
	return nil
}

// requestKey extracts the API key a request presents.
func requestKey(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if key, ok := strings.CutPrefix(h, "Bearer "); ok {
			return strings.TrimSpace(key)
		}
		return "" // an Authorization header in another scheme is not ours
	}
	return strings.TrimSpace(r.Header.Get("X-API-Key"))
}

// tenantKey carries the authenticated tenant through the request context.
type tenantKey struct{}

// tenantOf returns the tenant the request authenticated as ("" when auth is
// disabled).
func tenantOf(r *http.Request) string {
	t, _ := r.Context().Value(tenantKey{}).(string)
	return t
}

// Quotas bounds what one tenant may hold and ask of the daemon. Zero fields
// are unlimited. With authentication disabled all traffic shares the
// anonymous tenant, so the quotas become global daemon bounds.
type Quotas struct {
	// MaxCorpora caps the live corpora a tenant owns.
	MaxCorpora int
	// MaxEntries caps the summed non-zero WTP entries across a tenant's
	// live corpora — the serving tier's memory currency.
	MaxEntries int
	// RequestsPerSecond caps a tenant's sustained /v1 request rate; excess
	// requests get 429. Enforced by a token bucket of capacity Burst.
	RequestsPerSecond float64
	// Burst is the token-bucket depth (0 = max(1, ceil(RequestsPerSecond))).
	Burst int
}

// withDefaults resolves the derived Burst.
func (q Quotas) withDefaults() Quotas {
	if q.Burst == 0 && q.RequestsPerSecond > 0 {
		q.Burst = int(math.Ceil(q.RequestsPerSecond))
		if q.Burst < 1 {
			q.Burst = 1
		}
	}
	return q
}

// rateGate meters per-tenant request rates with one token bucket per
// tenant, created on first sight.
type rateGate struct {
	rps   float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

// bucket is one tenant's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// newRateGate returns a gate admitting rps sustained requests per tenant
// with the given burst depth; nil when rate limiting is off.
func newRateGate(q Quotas) *rateGate {
	if q.RequestsPerSecond <= 0 {
		return nil
	}
	return &rateGate{
		rps:     q.RequestsPerSecond,
		burst:   float64(q.Burst),
		now:     time.Now,
		buckets: map[string]*bucket{},
	}
}

// allow consumes one token from tenant's bucket, reporting whether the
// request is within quota.
func (g *rateGate) allow(tenant string) bool {
	now := g.now()
	g.mu.Lock()
	defer g.mu.Unlock()
	b, ok := g.buckets[tenant]
	if !ok {
		b = &bucket{tokens: g.burst, last: now}
		g.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(g.burst, b.tokens+dt*g.rps)
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// guard wraps the API mux with the tenancy layer: API-key authentication
// and the per-tenant request-rate quota. /v1 routes, /debug/traces and
// /debug/fleet are guarded (traces and the fleet view carry corpus IDs and
// request shapes — tenant data; the fleet view's span rows are
// additionally tenant-scoped, see handleFleet); /healthz, /metrics and
// /debug/pprof stay open, they are the operator's probes, not tenant
// traffic — which is also why the labeled per-tenant/per-corpus usage
// families on /metrics are opt-in (Config.UsageMetrics).
func (s *Server) guard(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		guarded := strings.HasPrefix(r.URL.Path, "/v1/") || r.URL.Path == "/v1" ||
			r.URL.Path == "/debug/traces" || r.URL.Path == "/debug/fleet"
		if !guarded {
			next.ServeHTTP(w, r)
			return
		}
		tenant := ""
		if s.cfg.Auth.Enabled() {
			key := requestKey(r)
			if key == "" {
				s.met.authFailures.Add(1)
				s.fail(w, http.StatusUnauthorized, "missing API key (use Authorization: Bearer <key>)")
				return
			}
			t, ok := s.cfg.Auth.Tenant(key)
			if !ok {
				s.met.authFailures.Add(1)
				s.fail(w, http.StatusUnauthorized, "unknown API key")
				return
			}
			tenant = t
		}
		if s.rates != nil && !s.rates.allow(tenant) {
			s.met.quotaRPS.Add(1)
			w.Header().Set("Retry-After", "1")
			s.fail(w, http.StatusTooManyRequests, "request rate quota exceeded (%g req/s)", s.cfg.Quotas.RequestsPerSecond)
			return
		}
		if tenant != "" {
			obs.Annotate(r.Context(), "tenant", tenant)
		}
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), tenantKey{}, tenant)))
	})
}

// authorize checks that the request's tenant may operate on a session. A
// session with an empty owner is public — uploaded while authentication was
// off (e.g. the -demo corpus) — and stays accessible to every tenant.
func (s *Server) authorize(w http.ResponseWriter, r *http.Request, sess *session) bool {
	return s.authorizeOwner(w, r, sess.id, sess.tenant)
}

// authorizeOwner is the one ownership predicate for request handling:
// authorize applies it to live sessions, the store read-through paths
// (lazy reload, persisted delete) to a record's owner. The registry's
// install gate shares its semantics via ownerError.
func (s *Server) authorizeOwner(w http.ResponseWriter, r *http.Request, id, owner string) bool {
	if !s.cfg.Auth.Enabled() || owner == "" || owner == tenantOf(r) {
		return true
	}
	s.fail(w, http.StatusForbidden, "%v", &ownerError{id: id})
	return false
}
