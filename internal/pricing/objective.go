package pricing

// Objective is the seller's utility function from the paper's Sec. 1:
//
//	utility = α·profit + (1-α)·consumer surplus
//
// with profit = (price − unit cost) × adopters. The paper's evaluation
// fixes α = 1 and zero variable cost (digital goods), in which case profit
// maximization degenerates to the revenue maximization implemented by
// PriceOptimal; this type generalizes pricing to any α and known unit
// costs, as the paper's discussion promises.
type Objective struct {
	// ProfitWeight is α ∈ [0,1]: 1 maximizes profit only (the default
	// throughout the paper's evaluation), 0 maximizes consumer surplus.
	ProfitWeight float64
	// UnitCost is the variable cost of serving one adopter of the bundle
	// (0 for information goods).
	UnitCost float64
}

// RevenueObjective is the paper's default: α = 1, zero variable cost.
func RevenueObjective() Objective { return Objective{ProfitWeight: 1} }

// UtilityQuote extends Quote with the profit/surplus decomposition.
type UtilityQuote struct {
	Quote
	Profit  float64 // (price − cost) × expected adopters
	Surplus float64 // Σ over adopters of (WTP − price)
	Utility float64 // α·Profit + (1-α)·Surplus
}

// PriceUtility returns the utility-maximizing price for a bundle whose
// interested consumers have the given WTP values, under the objective.
// With the default RevenueObjective it agrees with PriceOptimal.
//
// Implementation mirrors the histogram pricing of Sec. 4.2, additionally
// carrying per-bucket WTP sums so the surplus at each price level is
// available from the same O(m + T) pass (deterministic model) or the
// bucketed sigmoid evaluation (stochastic model).
func (p *Pricer) PriceUtility(wtps []float64, obj Objective) UtilityQuote {
	sc := p.getScratch()
	defer p.putScratch(sc)
	return p.PriceUtilityIn(sc, wtps, obj)
}

// PriceUtilityIn is PriceUtility with caller-owned scratch, for hot paths
// that price many bundles and want to avoid the pool round-trip.
func (p *Pricer) PriceUtilityIn(sc *Scratch, wtps []float64, obj Objective) UtilityQuote {
	sc.ensure(p.levels)
	maxW := 0.0
	for _, w := range wtps {
		if w > maxW {
			maxW = w
		}
	}
	if maxW <= 0 {
		return UtilityQuote{}
	}
	T := p.levels
	alpha := p.model.Alpha()
	if p.exact && !p.model.Deterministic() {
		// Exact O(m·T) evaluation of expected adopters and adopter WTP
		// mass at each level.
		best := UtilityQuote{}
		found := false
		for t := 1; t <= T; t++ {
			price := alpha * maxW * float64(t) / float64(T)
			var n, sw float64
			for _, w := range wtps {
				prob := p.model.Probability(price, w)
				n += prob
				sw += alpha * w * prob
			}
			q := evalUtility(price, n, sw, obj)
			if !found || q.Utility > best.Utility {
				best = q
				found = true
			}
		}
		return best
	}
	counts := sc.fcounts[:T+1]
	sums := sc.fsums[:T+1]
	for i := range counts {
		counts[i] = 0
		sums[i] = 0
	}
	Histogram(wtps, alpha, maxW, T, counts, sums)
	return p.priceHistogram(sc, counts, sums, maxW, obj)
}

// evalUtility assembles a UtilityQuote at one price level given the number
// of (expected) adopters n and their aggregate (effective) WTP sw.
func evalUtility(price, n, sw float64, obj Objective) UtilityQuote {
	profit := (price - obj.UnitCost) * n
	surplus := sw - price*n
	if surplus < 0 {
		surplus = 0 // float guard; adopters have WTP ≥ price
	}
	return UtilityQuote{
		Quote:   Quote{Price: price, Revenue: price * n, Adopters: n},
		Profit:  profit,
		Surplus: surplus,
		Utility: obj.ProfitWeight*profit + (1-obj.ProfitWeight)*surplus,
	}
}
