package server

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bundling"
)

// testDoc builds a tiny MatrixDoc with a recognizable entry value.
func testDoc(val float64) *bundling.MatrixDoc {
	w := bundling.NewMatrix(2, 2)
	w.MustSet(0, 0, val)
	w.MustSet(1, 1, val/2)
	return bundling.NewMatrixDoc(w)
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	rec := CorpusRecord{
		ID:         "shop",
		Tenant:     "alice",
		Generation: 1,
		CreatedAt:  time.Now().UTC().Truncate(time.Second),
		Options:    OptionsDoc{Strategy: "mixed", Theta: -0.05},
		Matrix:     testDoc(10),
	}
	if err := st.Put(rec); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	recs, err := st2.Restore()
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("restored %d records, want 1", len(recs))
	}
	got := recs[0]
	if got.ID != "shop" || got.Tenant != "alice" || got.Generation != 1 {
		t.Errorf("record = %+v", got)
	}
	if got.Options.Strategy != "mixed" || got.Options.Theta != -0.05 {
		t.Errorf("options = %+v", got.Options)
	}
	if len(got.Matrix.Entries) != 2 || got.Matrix.Entries[0][2] != 10 {
		t.Errorf("matrix = %+v", got.Matrix)
	}
	if !got.CreatedAt.Equal(rec.CreatedAt) {
		t.Errorf("created_at %v, want %v", got.CreatedAt, rec.CreatedAt)
	}
}

func TestStoreGenerationsSurviveDelete(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for gen := 1; gen <= 3; gen++ {
		if err := st.Put(CorpusRecord{ID: "c", Generation: gen, Matrix: testDoc(float64(gen))}); err != nil {
			t.Fatalf("put gen %d: %v", gen, err)
		}
	}
	if err := st.Delete("c", 3); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if st.Len() != 0 {
		t.Fatalf("live = %d after delete", st.Len())
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if recs, _ := st2.Restore(); len(recs) != 0 {
		t.Errorf("deleted corpus restored: %+v", recs)
	}
	// The generation counter must survive the delete, so a re-created ID
	// continues its sequence.
	if gens := st2.Generations(); gens["c"] != 3 {
		t.Errorf("generations[c] = %d, want 3", gens["c"])
	}
}

func TestStoreDeleteGenerationAware(t *testing.T) {
	// A delete that raced a newer upload must not un-persist the upload:
	// the handler evicted generation 1, but generation 2 is already durable
	// (and acknowledged), so the delete is a no-op.
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for gen := 1; gen <= 2; gen++ {
		if err := st.Put(CorpusRecord{ID: "c", Tenant: "alice", Generation: gen, Matrix: testDoc(float64(gen))}); err != nil {
			t.Fatalf("put gen %d: %v", gen, err)
		}
	}
	if err := st.Delete("c", 1); err != nil {
		t.Fatalf("stale delete: %v", err)
	}
	if rec, ok := st.LiveRecord("c"); !ok || rec.Generation != 2 {
		t.Fatalf("stale delete removed the newer generation: %+v, %v", rec, ok)
	}
	if owner, ok := st.Owner("c"); !ok || owner != "alice" {
		t.Errorf("Owner = %q, %v; want alice", owner, ok)
	}
	if err := st.Delete("c", 2); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, ok := st.LiveRecord("c"); ok {
		t.Error("corpus live after matching-generation delete")
	}
	if _, ok := st.Owner("c"); ok {
		t.Error("deleted corpus still has an owner")
	}
}

func TestStoreDeleteTombstonesInFlightPut(t *testing.T) {
	// A delete can land between a session's install and its persist: the
	// later Put of the tombstoned generation must not resurrect a corpus
	// whose deleter was already told it is gone.
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Delete("c", 1); err != nil {
		t.Fatalf("delete ahead of put: %v", err)
	}
	if err := st.Put(CorpusRecord{ID: "c", Generation: 1, Matrix: testDoc(1)}); err != nil {
		t.Fatalf("raced put: %v", err)
	}
	if _, ok := st.LiveRecord("c"); ok {
		t.Fatal("tombstoned generation resurrected by a raced Put")
	}
	// A genuinely newer upload re-claims the ID and clears the tombstone;
	// the generation counter sequences past the tombstone.
	if gens := st.Generations(); gens["c"] != 1 {
		t.Fatalf("generations[c] = %d, want 1 (tombstone raises the counter)", gens["c"])
	}
	if err := st.Put(CorpusRecord{ID: "c", Generation: 2, Matrix: testDoc(2)}); err != nil {
		t.Fatalf("re-claim put: %v", err)
	}
	if rec, ok := st.LiveRecord("c"); !ok || rec.Generation != 2 {
		t.Fatalf("re-claimed corpus = %+v, %v; want generation 2 live", rec, ok)
	}
}

func TestStoreCompactionRemovesSuperseded(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for gen := 1; gen <= 3; gen++ {
		if err := st.Put(CorpusRecord{ID: "c", Generation: gen, Matrix: testDoc(float64(gen))}); err != nil {
			t.Fatalf("put gen %d: %v", gen, err)
		}
	}
	if err := st.Put(CorpusRecord{ID: "gone", Generation: 1, Matrix: testDoc(1)}); err != nil {
		t.Fatalf("put gone: %v", err)
	}
	if err := st.Delete("gone", 1); err != nil {
		t.Fatalf("delete gone: %v", err)
	}
	// Close runs the final synchronous compaction pass.
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "corpora"))
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 1 || !strings.Contains(names[0], ".g3.") {
		t.Errorf("after compaction files = %v, want only generation 3 of %q", names, "c")
	}
}

func TestStorePutLiveMonotonic(t *testing.T) {
	// Two concurrent re-uploads persist outside the registry lock: the
	// older generation's Put may land second and must not roll Live back.
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Put(CorpusRecord{ID: "c", Generation: 2, Matrix: testDoc(2)}); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(CorpusRecord{ID: "c", Generation: 1, Matrix: testDoc(1)}); err != nil {
		t.Fatal(err)
	}
	rec, ok := st.LiveRecord("c")
	if !ok || rec.Generation != 2 {
		t.Fatalf("LiveRecord = %+v, %v; want generation 2", rec, ok)
	}
	if recs, _ := st.Restore(); len(recs) != 1 || recs[0].Generation != 2 {
		t.Fatalf("restore = %+v, want generation 2", recs)
	}
}

func TestStoreRecordNameCollisions(t *testing.T) {
	// Two IDs that sanitize identically must not share a record path.
	a := (&Store{dir: "d"}).recordPath("a/b", 1, binExt)
	b := (&Store{dir: "d"}).recordPath("a:b", 1, binExt)
	if a == b {
		t.Fatalf("record paths collide: %s", a)
	}
	// Unicode and path separators stay out of the file name.
	name := recordName("ä/корпус:x")
	if strings.ContainsAny(name, "/\\: ") {
		t.Errorf("unsafe record name %q", name)
	}
	key, gen, ok := parseRecordName(recordName("a/b") + ".g7.json")
	if !ok || gen != 7 || key != recordName("a/b") {
		t.Errorf("parseRecordName = %q %d %v", key, gen, ok)
	}
	key, gen, ok = parseRecordName(recordName("a/b") + ".g7.bin")
	if !ok || gen != 7 || key != recordName("a/b") {
		t.Errorf("parseRecordName(bin) = %q %d %v", key, gen, ok)
	}
}

// TestStoreLegacyJSONRecords pins backward compatibility with data
// directories written before the binary codec: their JSON records read back
// unchanged, coexist with binary records written since, and compaction
// reclaims a JSON generation once a binary one supersedes it.
func TestStoreLegacyJSONRecords(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := CorpusRecord{
		ID:         "legacy",
		Tenant:     "alice",
		Generation: 1,
		CreatedAt:  time.Now().UTC().Truncate(time.Second),
		Options:    OptionsDoc{Strategy: "mixed", Theta: -0.05},
		Matrix:     testDoc(9),
		Entries:    2,
	}
	if err := st.Put(rec); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Transcribe the record to the pre-codec on-disk form: the same
	// CorpusRecord as a .json file (exactly what the old store wrote).
	binFiles, err := filepath.Glob(filepath.Join(dir, "corpora", "*"+binExt))
	if err != nil || len(binFiles) != 1 {
		t.Fatalf("record files = %v, %v; want one %s record", binFiles, err, binExt)
	}
	buf, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	jsonFile := strings.TrimSuffix(binFiles[0], binExt) + jsonExt
	if err := os.WriteFile(jsonFile, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(binFiles[0]); err != nil {
		t.Fatal(err)
	}

	// The JSON-era directory restores unchanged, and a binary record written
	// since coexists with it.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Put(CorpusRecord{ID: "modern", Generation: 1, Matrix: testDoc(4)}); err != nil {
		t.Fatal(err)
	}
	recs, err := st2.Restore()
	if err != nil {
		t.Fatalf("restore mixed dir: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("restored %d records, want 2", len(recs))
	}
	byID := map[string]CorpusRecord{}
	for _, r := range recs {
		byID[r.ID] = r
	}
	got := byID["legacy"]
	if got.Tenant != "alice" || got.Generation != 1 || got.Entries != 2 ||
		got.Options.Strategy != "mixed" || got.Options.Theta != -0.05 ||
		!got.CreatedAt.Equal(rec.CreatedAt) {
		t.Errorf("legacy record = %+v", got)
	}
	if len(got.Matrix.Entries) != 2 || got.Matrix.Entries[0][2] != 9 {
		t.Errorf("legacy matrix = %+v", got.Matrix)
	}

	// A binary re-upload supersedes the JSON generation; compaction (the
	// synchronous pass in Close) reclaims the .json file.
	if err := st2.Put(CorpusRecord{ID: "legacy", Tenant: "alice", Generation: 2, Matrix: testDoc(11)}); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "corpora", "*"+jsonExt)); len(left) != 0 {
		t.Errorf("superseded JSON records survive compaction: %v", left)
	}
	st3, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if rec, ok := st3.LiveRecord("legacy"); !ok || rec.Generation != 2 || rec.Matrix.Entries[0][2] != 11 {
		t.Errorf("post-compaction live record = %+v, %v; want generation 2", rec, ok)
	}
}
