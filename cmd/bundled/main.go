// Command bundled is the bundle-pricing daemon: it serves long-lived
// Solver sessions over HTTP so many users can upload willingness-to-pay
// corpora and hit them concurrently with solve and what-if evaluate
// requests, with result caching and evaluate micro-batching in front of the
// engine (see internal/server for the API).
//
// Usage:
//
//	bundled -addr :8080
//	bundled -addr :8080 -demo        # preload a synthetic corpus as "demo"
//	bundled -addr :8080 -workers 127.0.0.1:9101,127.0.0.1:9102
//	                                 # scale out: solve over bundleworker daemons
//
// Then:
//
//	curl localhost:8080/healthz
//	curl -X POST localhost:8080/v1/corpora/demo/solve -d '{"algorithm":"matching"}'
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bundling"
	"bundling/internal/cluster"
	"bundling/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		maxSessions  = flag.Int("max-sessions", 64, "max live corpus sessions (LRU eviction beyond)")
		cacheEntries = flag.Int("cache", 1024, "result cache entries (negative disables)")
		maxUploadMB  = flag.Int64("max-upload-mb", 64, "max corpus upload size in MiB")
		batchWorkers = flag.Int("batch-workers", 4, "concurrent evaluations per micro-batch pass")
		batchWindow  = flag.Duration("batch-window", 0, "evaluate micro-batch gather window (0 = drain immediately)")
		workers      = flag.String("workers", "", "comma-separated bundleworker addresses; enables distributed stripe-sharded solving")
		demo         = flag.Bool("demo", false, `preload a synthetic corpus as session "demo"`)
		demoUsers    = flag.Int("demo-users", 300, "demo corpus users")
		demoItems    = flag.Int("demo-items", 60, "demo corpus items")
		drainSecs    = flag.Int("drain-seconds", 15, "graceful shutdown drain window")
	)
	flag.Parse()
	if err := run(*addr, *maxSessions, *cacheEntries, *maxUploadMB, *batchWorkers, *batchWindow, *workers, *demo, *demoUsers, *demoItems, *drainSecs); err != nil {
		fmt.Fprintln(os.Stderr, "bundled:", err)
		os.Exit(1)
	}
}

func run(addr string, maxSessions, cacheEntries int, maxUploadMB int64, batchWorkers int, batchWindow time.Duration, workers string, demo bool, demoUsers, demoItems, drainSecs int) error {
	cfg := server.Config{
		MaxSessions:    maxSessions,
		CacheEntries:   cacheEntries,
		MaxUploadBytes: maxUploadMB << 20,
		BatchWorkers:   batchWorkers,
		BatchWindow:    batchWindow,
	}
	if workers != "" {
		transports, err := cluster.Transports(workers, nil)
		if err != nil {
			return err
		}
		// Every uploaded corpus becomes a coordinator session: its stripe
		// spans are partitioned across the worker fleet and solves/evaluates
		// scatter/gather over it. /healthz degrades to 503 while any worker
		// is unreachable (solves still succeed via the local fallback).
		cfg.NewSolver = func(w *bundling.Matrix, opts bundling.Options) (server.Solver, error) {
			return cluster.NewSolver(w, opts, cluster.Config{Workers: transports})
		}
		cfg.Ready = cluster.Ready(transports, 0)
		log.Printf("cluster mode: %d workers (%s)", len(transports), workers)
	}
	srv := server.New(cfg)
	defer srv.Close()
	if demo {
		if err := preloadDemo(srv, demoUsers, demoItems); err != nil {
			return fmt.Errorf("demo corpus: %w", err)
		}
		log.Printf("preloaded synthetic corpus as session %q (%d users × %d items)", "demo", demoUsers, demoItems)
	}

	hs := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("bundled listening on %s", addr)
		errCh <- hs.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down, draining for up to %ds", drainSecs)
	drainCtx, cancel := context.WithTimeout(context.Background(), time.Duration(drainSecs)*time.Second)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("bundled stopped")
	return nil
}

// preloadDemo generates a deterministic synthetic corpus and registers it
// as session "demo" through the server's own HTTP handler, so a fresh
// daemon is immediately usable (and smoke-testable) without an upload step.
func preloadDemo(srv *server.Server, users, items int) error {
	ds, err := bundling.GenerateDataset(bundling.DatasetConfig{
		Users: users, Items: items, RatingsPerUser: 15, MinDegree: 4, Seed: 1,
	})
	if err != nil {
		return err
	}
	w, err := ds.WTP(bundling.DefaultLambda)
	if err != nil {
		return err
	}
	return server.Preload(srv, "demo", w, bundling.Options{})
}
