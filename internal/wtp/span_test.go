package wtp

import (
	"encoding/json"
	"math/rand"
	"sort"
	"testing"
)

// randomSpanMatrix builds a deterministic random sparse matrix for the span
// equivalence tests.
func randomSpanMatrix(t *testing.T, m, n int, density float64, seed int64) *Matrix {
	t.Helper()
	w := MustNew(m, n)
	rng := rand.New(rand.NewSource(seed))
	for u := 0; u < m; u++ {
		for i := 0; i < n; i++ {
			if rng.Float64() < density {
				w.MustSet(u, i, 1+rng.Float64()*20)
			}
		}
	}
	return w
}

// spanCuts partitions [0, stripes) into k contiguous spans the same way the
// cluster coordinator does.
func spanCuts(stripes, k int) [][2]int {
	if k > stripes {
		k = stripes
	}
	if k < 1 {
		k = 1
	}
	out := make([][2]int, 0, k)
	for i := 0; i < k; i++ {
		s0 := i * stripes / k
		s1 := (i + 1) * stripes / k
		if s1 > s0 {
			out = append(out, [2]int{s0, s1})
		}
	}
	return out
}

// TestSpanBundleVectorEquivalence: per-span BundleVector results,
// concatenated in span order, must equal the shard's single-machine
// reduction exactly — including after a JSON round trip of the span docs.
func TestSpanBundleVectorEquivalence(t *testing.T) {
	w := randomSpanMatrix(t, 157, 23, 0.2, 1)
	for _, stripeSize := range []int{7, 32, 200} {
		sh := w.Shard(stripeSize)
		for _, spans := range []int{1, 2, 3, 5} {
			stores := buildStores(t, sh, spans)
			for trial := 0; trial < 20; trial++ {
				rng := rand.New(rand.NewSource(int64(trial)))
				items := randItems(rng, w.Items())
				theta := []float64{0, -0.2, 0.3}[trial%3]
				wantIDs, wantVals := sh.BundleVector(items, theta, nil, nil)
				var gotIDs []int
				var gotVals []float64
				for _, sp := range stores {
					ids, vals := sp.BundleVector(items, theta, nil, nil)
					gotIDs = append(gotIDs, ids...)
					gotVals = append(gotVals, vals...)
				}
				if !equalInts(gotIDs, wantIDs) {
					t.Fatalf("stripe %d spans %d: ids mismatch for items %v", stripeSize, spans, items)
				}
				if !equalFloats(gotVals, wantVals) {
					t.Fatalf("stripe %d spans %d: vals mismatch for items %v", stripeSize, spans, items)
				}
			}
		}
	}
}

// TestSpanUnionVectorsEquivalence: cutting two cached vectors at span
// boundaries, merging per span, and concatenating must equal the shard's
// union exactly.
func TestSpanUnionVectorsEquivalence(t *testing.T) {
	w := randomSpanMatrix(t, 211, 17, 0.25, 2)
	sh := w.Shard(16)
	for _, spans := range []int{1, 2, 4} {
		stores := buildStores(t, sh, spans)
		rng := rand.New(rand.NewSource(int64(spans)))
		for trial := 0; trial < 15; trial++ {
			aIDs, aVals := sh.BundleVector(randItems(rng, w.Items()), 0, nil, nil)
			bIDs, bVals := sh.BundleVector(randItems(rng, w.Items()), 0, nil, nil)
			sa := []float64{1, 1.3, 0.8}[trial%3]
			sb := []float64{1, 1, 1.1}[trial%3]
			wantIDs, wantVals := sh.UnionVectors(aIDs, aVals, sa, bIDs, bVals, sb, nil, nil)
			var gotIDs []int
			var gotVals []float64
			ai, bi := 0, 0
			for _, sp := range stores {
				_, hi := sp.Bounds()
				a1, b1 := ai, bi
				for a1 < len(aIDs) && aIDs[a1] < hi {
					a1++
				}
				for b1 < len(bIDs) && bIDs[b1] < hi {
					b1++
				}
				ids, vals := sp.UnionVectors(aIDs[ai:a1], aVals[ai:a1], sa, bIDs[bi:b1], bVals[bi:b1], sb, nil, nil)
				gotIDs = append(gotIDs, ids...)
				gotVals = append(gotVals, vals...)
				ai, bi = a1, b1
			}
			if !equalInts(gotIDs, wantIDs) || !equalFloats(gotVals, wantVals) {
				t.Fatalf("spans %d trial %d: union mismatch", spans, trial)
			}
		}
	}
}

// TestSpanDocValidation: corrupt documents must be rejected, not panic.
func TestSpanDocValidation(t *testing.T) {
	w := randomSpanMatrix(t, 40, 5, 0.3, 3)
	sh := w.Shard(16)
	good := sh.Span(0, sh.Stripes())
	if _, err := good.Store(); err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}
	cases := map[string]func(d *SpanDoc){
		"bad stripe size": func(d *SpanDoc) { d.StripeSize = 0 },
		"bad range":       func(d *SpanDoc) { d.End = d.Start - 1 },
		"offs length":     func(d *SpanDoc) { d.Offs = d.Offs[:len(d.Offs)-1] },
		"ids/vals skew":   func(d *SpanDoc) { d.Vals = d.Vals[:len(d.Vals)-1] },
		"consumer range":  func(d *SpanDoc) { d.IDs[0] = int32(d.Consumers + 5) },
		"negative wtp":    func(d *SpanDoc) { d.Vals[0] = -1 },
	}
	for name, corrupt := range cases {
		d := sh.Span(0, sh.Stripes())
		corrupt(d)
		if _, err := d.Store(); err == nil {
			t.Errorf("%s: corrupt doc accepted", name)
		}
	}
}

// TestSpanStoreMetadata checks the introspection a worker's health report
// exposes.
func TestSpanStoreMetadata(t *testing.T) {
	w := randomSpanMatrix(t, 100, 8, 0.3, 4)
	sh := w.Shard(32)
	d := sh.Span(1, 3)
	sp, err := d.Store()
	if err != nil {
		t.Fatal(err)
	}
	if v := sp.Version(); v != w.Version() {
		t.Errorf("version = %d, want %d", v, w.Version())
	}
	if lo, hi := sp.Bounds(); lo != 32 || hi != 96 {
		t.Errorf("bounds = [%d,%d), want [32,96)", lo, hi)
	}
	if s0, s1 := sp.StripeRange(); s0 != 1 || s1 != 3 {
		t.Errorf("stripe range = [%d,%d), want [1,3)", s0, s1)
	}
	var want int
	for s := 1; s < 3; s++ {
		want += sh.Stripe(s).Entries()
	}
	if sp.Entries() != want {
		t.Errorf("entries = %d, want %d", sp.Entries(), want)
	}
	if sp.Items() != w.Items() {
		t.Errorf("items = %d, want %d", sp.Items(), w.Items())
	}
}

// buildStores serializes the shard into spans wire docs, round-trips them
// through JSON, and rebuilds the stores — the worker ingestion path.
func buildStores(t *testing.T, sh *Shard, spans int) []*SpanStore {
	t.Helper()
	var out []*SpanStore
	for _, cut := range spanCuts(sh.Stripes(), spans) {
		doc := sh.Span(cut[0], cut[1])
		buf, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		var rt SpanDoc
		if err := json.Unmarshal(buf, &rt); err != nil {
			t.Fatal(err)
		}
		sp, err := rt.Store()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, sp)
	}
	return out
}

func randItems(rng *rand.Rand, n int) []int {
	k := 1 + rng.Intn(4)
	seen := map[int]bool{}
	var items []int
	for len(items) < k {
		i := rng.Intn(n)
		if !seen[i] {
			seen[i] = true
			items = append(items, i)
		}
	}
	sort.Ints(items)
	return items
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
