package main

// The serve experiment load-tests the bundled serving subsystem end to end:
// it boots internal/server in-process on a loopback listener, uploads the
// bench corpus through the HTTP API, and drives a concurrent mixed
// solve/evaluate workload through the bundling/client package, reporting
// sustained requests/sec, tail latency, and the cache/batching counters
// scraped from /metrics. With -benchout it writes BENCH_serve.json, the
// serving-path companion of BENCH_greedy.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"bundling"
	"bundling/client"
	"bundling/internal/config"
	"bundling/internal/experiments"
	"bundling/internal/server"
)

// ServeLatency summarizes a latency distribution in milliseconds.
type ServeLatency struct {
	P50 float64 `json:"p50_ms"`
	P90 float64 `json:"p90_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

// ServeOpResult is the per-operation breakdown of the load phase.
type ServeOpResult struct {
	Op       string       `json:"op"`
	Requests int          `json:"requests"`
	Errors   int          `json:"errors"`
	Latency  ServeLatency `json:"latency"`
}

// ServeReport is the file schema of BENCH_serve.json.
type ServeReport struct {
	GeneratedAt string  `json:"generated_at"`
	Scale       string  `json:"scale"`
	Users       int     `json:"users"`
	Items       int     `json:"items"`
	Go          string  `json:"go"`
	NumCPU      int     `json:"numcpu"`
	MaxProcs    int     `json:"maxprocs"`
	Concurrency int     `json:"concurrency"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	DurationSec float64 `json:"duration_seconds"`
	RPS         float64 `json:"requests_per_second"`

	// The tracing-overhead gate: the same workload driven with the span
	// recorder disabled (rps_tracing_off) and enabled (rps_tracing_on),
	// usage accounting off in both, and the relative cost. The build fails
	// its perf budget when the overhead exceeds serveTracingBudgetPct.
	RPSTracingOff      float64 `json:"rps_tracing_off"`
	RPSTracingOn       float64 `json:"rps_tracing_on"`
	TracingOverheadPct float64 `json:"tracing_overhead_pct"`

	// The usage-accounting gate: tracing-on throughput with the workload
	// accountant off (rps_usage_off = rps_tracing_on) vs the shipped
	// configuration with both on (rps_usage_on = requests_per_second
	// above). The build fails when the accountant costs more than
	// serveUsageBudgetPct.
	RPSUsageOff      float64 `json:"rps_usage_off"`
	RPSUsageOn       float64 `json:"rps_usage_on"`
	UsageOverheadPct float64 `json:"usage_overhead_pct"`

	Latency ServeLatency    `json:"latency"`
	PerOp   []ServeOpResult `json:"per_op"`

	CacheHits         int64 `json:"cache_hits"`
	CacheMisses       int64 `json:"cache_misses"`
	Batches           int64 `json:"batches"`
	BatchedRequests   int64 `json:"batched_requests"`
	CoalescedRequests int64 `json:"coalesced_requests"`
}

// serveOp is one issued request's record.
type serveOp struct {
	op      string
	latency time.Duration
	err     error
}

// serveTracingBudgetPct is the gate: the span recorder may cost at most
// this fraction of tracing-off throughput.
const serveTracingBudgetPct = 5.0

// serveUsageBudgetPct is the workload-accounting gate: the usage meters may
// cost at most this fraction of accounting-off throughput.
const serveUsageBudgetPct = 2.0

// serveRun is one measured load pass against a fresh in-process server.
type serveRun struct {
	rps      float64
	durSec   float64
	results  []serveOp
	counters map[string]int64 // load-phase counter deltas
}

// driveServe boots a fresh server with the given config, warms it, drives
// the mixed load and reports the measured pass.
func driveServe(env *experiments.Env, base config.Params, conc, totalReqs int, scfg server.Config) (*serveRun, error) {
	srv := server.New(scfg)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL, nil)
	ctx := context.Background()

	opts := bundling.Options{Theta: base.Theta, MaxBundleSize: base.K, Parallelism: base.Parallelism}
	if _, err := c.UploadMatrix(ctx, "bench-pure", env.W, opts); err != nil {
		return nil, err
	}
	mixed := opts
	mixed.Strategy = bundling.Mixed
	if _, err := c.UploadMatrix(ctx, "bench-mixed", env.W, mixed); err != nil {
		return nil, err
	}

	// Warm phase: one solve per (session, algorithm) pays the algorithmic
	// cost once; the load phase then measures the serving plane — cache
	// hits, batched evaluates, and the residual misses.
	algos := []string{"components", "optimal2", "matching", "greedy"}
	corpora := []string{"bench-pure", "bench-mixed"}
	for _, id := range corpora {
		for _, a := range algos {
			if _, err := c.Solve(ctx, id, a); err != nil {
				return nil, fmt.Errorf("warm %s/%s: %w", id, a, err)
			}
		}
	}
	hits0, err := scrapeCounters(ctx, c)
	if err != nil {
		return nil, err
	}

	// Offer pool: a fixed set of what-if lineups that repeat across the load
	// (cacheable) plus per-request fresh lineups (always computed, feeding
	// the micro-batcher under concurrency).
	items := env.W.Items()
	pool := make([][][]int, 24)
	rng := rand.New(rand.NewSource(7))
	for p := range pool {
		var offers [][]int
		for o := 0; o < 10; o++ {
			start := rng.Intn(items - 3)
			offers = append(offers, []int{start, start + 1, start + 2})
		}
		pool[p] = disjointOffers(offers, items)
	}

	results := make([]serveOp, totalReqs)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	startLoad := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= totalReqs {
					return
				}
				results[i] = issue(ctx, c, corpora, algos, pool, items, i)
			}
		}()
	}
	wg.Wait()
	loadDur := time.Since(startLoad)
	hits1, err := scrapeCounters(ctx, c)
	if err != nil {
		return nil, err
	}
	deltas := map[string]int64{}
	for k, v := range hits1 {
		deltas[k] = v - hits0[k]
	}
	return &serveRun{
		rps:      float64(totalReqs) / loadDur.Seconds(),
		durSec:   loadDur.Seconds(),
		results:  results,
		counters: deltas,
	}, nil
}

// serveGatePasses is how many off/on pass pairs the overhead gate runs;
// the best pass of each mode is compared, damping scheduler and allocator
// noise the way `go test -bench` repetitions do.
const serveGatePasses = 3

// runServe drives the load under three configurations — everything off,
// tracing only, and the shipped default (tracing + usage accounting) —
// reporting the serving numbers from the shipped pass and gating on each
// instrumentation layer's relative overhead. The passes interleave the
// modes rather than running each as a block, so slow machine-wide drift
// (thermal, co-tenant load) hits all modes alike instead of masquerading
// as instrumentation cost.
func runServe(env *experiments.Env, scaleName, outPath string, base config.Params, conc, totalReqs int) error {
	var off, traced, on *serveRun
	for i := 0; i < serveGatePasses; i++ {
		// All-off control: recorder and accountant disabled, the
		// denominator of the tracing gate.
		o, err := driveServe(env, base, conc, totalReqs, server.Config{TraceRing: -1, UsageTopK: -1})
		if err != nil {
			return err
		}
		// Tracing-only: the tracing gate's numerator and the usage gate's
		// denominator.
		tr, err := driveServe(env, base, conc, totalReqs, server.Config{UsageTopK: -1})
		if err != nil {
			return err
		}
		// The shipped configuration: tracing and usage accounting on.
		t, err := driveServe(env, base, conc, totalReqs, server.Config{})
		if err != nil {
			return err
		}
		if off == nil || o.rps > off.rps {
			off = o
		}
		if traced == nil || tr.rps > traced.rps {
			traced = tr
		}
		if on == nil || t.rps > on.rps {
			on = t
		}
	}
	overheadPct := (off.rps - traced.rps) / off.rps * 100
	usagePct := (traced.rps - on.rps) / traced.rps * 100

	results := on.results
	hits := on.counters
	report := ServeReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Scale:       scaleName,
		Users:       env.DS.Users,
		Items:       env.DS.Items,
		Go:          runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		MaxProcs:    runtime.GOMAXPROCS(0),
		Concurrency: conc,
		Requests:    totalReqs,
		DurationSec: on.durSec,
		RPS:         on.rps,

		RPSTracingOff:      off.rps,
		RPSTracingOn:       traced.rps,
		TracingOverheadPct: overheadPct,

		RPSUsageOff:      traced.rps,
		RPSUsageOn:       on.rps,
		UsageOverheadPct: usagePct,

		CacheHits:         hits["bundled_cache_hits_total"],
		CacheMisses:       hits["bundled_cache_misses_total"],
		Batches:           hits["bundled_batches_total"],
		BatchedRequests:   hits["bundled_batched_requests_total"],
		CoalescedRequests: hits["bundled_coalesced_requests_total"],
	}
	var all []time.Duration
	byOp := map[string][]time.Duration{}
	errsByOp := map[string]int{}
	for _, r := range results {
		if r.err != nil {
			report.Errors++
			errsByOp[r.op]++
			continue
		}
		all = append(all, r.latency)
		byOp[r.op] = append(byOp[r.op], r.latency)
	}
	report.Latency = latencySummary(all)
	var ops []string
	for op := range byOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		report.PerOp = append(report.PerOp, ServeOpResult{
			Op:       op,
			Requests: len(byOp[op]) + errsByOp[op],
			Errors:   errsByOp[op],
			Latency:  latencySummary(byOp[op]),
		})
	}

	fmt.Printf("serve: %d requests, %d workers: %.1f req/s over %.2fs, p50 %.2fms p99 %.2fms max %.2fms\n",
		totalReqs, conc, report.RPS, report.DurationSec,
		report.Latency.P50, report.Latency.P99, report.Latency.Max)
	fmt.Printf("serve: cache %d hits / %d misses; batching: %d passes, %d batched, %d coalesced; %d errors\n",
		report.CacheHits, report.CacheMisses, report.Batches, report.BatchedRequests, report.CoalescedRequests, report.Errors)
	gate := "ok"
	if overheadPct > serveTracingBudgetPct {
		gate = "fail"
	}
	// The gate lines are machine-greppable: CI fails the build on
	// tracing_gate=fail or usage_gate=fail.
	fmt.Printf("serve: tracing overhead %.2f%% (off %.1f req/s, on %.1f req/s, budget %.0f%%) tracing_gate=%s\n",
		overheadPct, off.rps, traced.rps, serveTracingBudgetPct, gate)
	usageGate := "ok"
	if usagePct > serveUsageBudgetPct {
		usageGate = "fail"
	}
	fmt.Printf("serve: usage accounting overhead %.2f%% (off %.1f req/s, on %.1f req/s, budget %.0f%%) usage_gate=%s\n",
		usagePct, traced.rps, on.rps, serveUsageBudgetPct, usageGate)
	if report.Errors > 0 {
		for _, r := range results {
			if r.err != nil {
				return fmt.Errorf("serve: %d/%d requests failed, first: %w", report.Errors, totalReqs, r.err)
			}
		}
	}

	if outPath == "" || outPath == "-" {
		return nil
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// issue sends request i of the mixed workload: ~60% pooled evaluates (the
// repeating what-if queries a scenario dashboard fires, mostly cache hits),
// ~20% fresh evaluates (unique lineups that must be priced, exercising the
// batcher under concurrency), ~20% solves over the warmed algorithms.
func issue(ctx context.Context, c *client.Client, corpora, algos []string, pool [][][]int, items, i int) serveOp {
	// Corpus per block of requests, so a burst of concurrent neighbors
	// lands on one session (and one batcher).
	id := corpora[(i/40)%len(corpora)]
	start := time.Now()
	switch {
	case i%5 < 3:
		// Windowed pool index: a run of consecutive requests shares one
		// lineup, modelling the bursts a dashboard fires. The first burst
		// for a key misses the cache together, which is exactly the window
		// the micro-batcher coalesces; later bursts hit the cache.
		offers := pool[(i/8)%len(pool)]
		_, err := c.Evaluate(ctx, id, offers)
		return serveOp{op: "evaluate-pooled", latency: time.Since(start), err: err}
	case i%5 == 3:
		base := (i * 13) % (items - 4)
		offers := [][]int{{base, base + 1}, {base + 2, base + 3}}
		_, err := c.Evaluate(ctx, id, offers)
		return serveOp{op: "evaluate-fresh", latency: time.Since(start), err: err}
	default:
		_, err := c.Solve(ctx, id, algos[(i/5)%len(algos)])
		return serveOp{op: "solve", latency: time.Since(start), err: err}
	}
}

// disjointOffers drops offers overlapping an earlier one, keeping the
// family valid under pure bundling (and trivially laminar under mixed).
func disjointOffers(offers [][]int, items int) [][]int {
	used := make([]bool, items)
	var out [][]int
	for _, off := range offers {
		ok := true
		for _, it := range off {
			if it >= items || used[it] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, it := range off {
			used[it] = true
		}
		out = append(out, off)
	}
	if len(out) == 0 {
		out = [][]int{{0, 1}}
	}
	return out
}

// latencySummary computes percentile stats in milliseconds.
func latencySummary(ds []time.Duration) ServeLatency {
	if len(ds) == 0 {
		return ServeLatency{}
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pick := func(q float64) float64 {
		idx := int(q * float64(len(sorted)-1))
		return float64(sorted[idx].Microseconds()) / 1000
	}
	return ServeLatency{
		P50: pick(0.50),
		P90: pick(0.90),
		P99: pick(0.99),
		Max: float64(sorted[len(sorted)-1].Microseconds()) / 1000,
	}
}

// counterRe matches "name value" lines of the Prometheus text exposition.
var counterRe = regexp.MustCompile(`(?m)^(bundled_[a-z_]+) (\d+)$`)

// scrapeCounters pulls the unlabelled bundled_* counters from /metrics.
func scrapeCounters(ctx context.Context, c *client.Client) (map[string]int64, error) {
	text, err := c.Metrics(ctx)
	if err != nil {
		return nil, err
	}
	out := map[string]int64{}
	for _, m := range counterRe.FindAllStringSubmatch(text, -1) {
		v, err := strconv.ParseInt(m[2], 10, 64)
		if err == nil {
			out[m[1]] = v
		}
	}
	return out, nil
}
