package pricing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bundling/internal/adoption"
)

func TestRevenueObjectiveMatchesPriceOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pr := Default()
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(30)
		wtps := make([]float64, n)
		for i := range wtps {
			wtps[i] = rng.Float64() * 40
		}
		q := pr.PriceOptimal(wtps)
		uq := pr.PriceUtility(wtps, RevenueObjective())
		if math.Abs(q.Revenue-uq.Revenue) > 1e-9 || math.Abs(q.Price-uq.Price) > 1e-9 {
			t.Fatalf("trial %d: PriceOptimal %+v vs PriceUtility %+v", trial, q, uq)
		}
		if math.Abs(uq.Utility-uq.Profit) > 1e-12 {
			t.Fatalf("α=1 utility %g should equal profit %g", uq.Utility, uq.Profit)
		}
		if math.Abs(uq.Profit-uq.Revenue) > 1e-9 {
			t.Fatalf("zero-cost profit %g should equal revenue %g", uq.Profit, uq.Revenue)
		}
	}
}

func TestUnitCostShiftsPriceUp(t *testing.T) {
	pr := Default()
	wtps := []float64{10, 10, 10, 20, 20}
	free := pr.PriceUtility(wtps, Objective{ProfitWeight: 1})
	costly := pr.PriceUtility(wtps, Objective{ProfitWeight: 1, UnitCost: 9})
	// At cost 9, selling to everyone at 10 nets 5×1; selling to the two
	// high types at 20 nets 2×11 — cost pushes the price up.
	if costly.Price <= free.Price {
		t.Errorf("price with cost %g should exceed zero-cost price %g", costly.Price, free.Price)
	}
	if costly.Profit <= 0 {
		t.Errorf("profit should remain positive, got %g", costly.Profit)
	}
	wantProfit := 2.0 * (20 - 9)
	if math.Abs(costly.Profit-wantProfit) > 0.5 {
		t.Errorf("profit = %g, want ≈ %g", costly.Profit, wantProfit)
	}
}

func TestSurplusWeightLowersPrice(t *testing.T) {
	pr := Default()
	wtps := []float64{10, 10, 20, 20}
	profitOnly := pr.PriceUtility(wtps, Objective{ProfitWeight: 1})
	balanced := pr.PriceUtility(wtps, Objective{ProfitWeight: 0.5})
	surplusOnly := pr.PriceUtility(wtps, Objective{ProfitWeight: 1e-9})
	// Weighting surplus pushes the price down (more consumers served,
	// each keeping more surplus).
	if balanced.Price > profitOnly.Price+1e-9 {
		t.Errorf("balanced price %g should not exceed profit-only price %g",
			balanced.Price, profitOnly.Price)
	}
	if surplusOnly.Price > balanced.Price+1e-9 {
		t.Errorf("surplus-only price %g should not exceed balanced price %g",
			surplusOnly.Price, balanced.Price)
	}
	if surplusOnly.Surplus < profitOnly.Surplus {
		t.Errorf("surplus-only objective should yield at least as much surplus")
	}
}

func TestPriceUtilityEmpty(t *testing.T) {
	pr := Default()
	if q := pr.PriceUtility(nil, RevenueObjective()); q.Utility != 0 || q.Price != 0 {
		t.Errorf("empty vector: %+v", q)
	}
}

func TestPriceUtilityStochastic(t *testing.T) {
	model, err := adoption.New(1, 1, adoption.DefaultEpsilon)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := New(model, DefaultLevels)
	if err != nil {
		t.Fatal(err)
	}
	wtps := []float64{10, 12, 14, 16}
	q := pr.PriceUtility(wtps, RevenueObjective())
	if q.Revenue <= 0 || q.Adopters <= 0 {
		t.Fatalf("stochastic quote: %+v", q)
	}
	// Revenue agrees with the bucketed PriceOptimal path.
	q2 := pr.PriceOptimal(wtps)
	if math.Abs(q.Revenue-q2.Revenue) > 1e-9 {
		t.Errorf("stochastic PriceUtility %g vs PriceOptimal %g", q.Revenue, q2.Revenue)
	}
}

// TestQuickUtilityDecomposition: utility = α·profit + (1-α)·surplus and
// profit = revenue − cost·adopters at the chosen price, on random inputs.
func TestQuickUtilityDecomposition(t *testing.T) {
	pr := Default()
	f := func(seed int64, alphaRaw, costRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		alpha := math.Mod(math.Abs(alphaRaw), 1)
		cost := math.Mod(math.Abs(costRaw), 10)
		n := 1 + rng.Intn(20)
		wtps := make([]float64, n)
		for i := range wtps {
			wtps[i] = rng.Float64() * 30
		}
		q := pr.PriceUtility(wtps, Objective{ProfitWeight: alpha, UnitCost: cost})
		wantProfit := q.Revenue - cost*q.Adopters
		if math.Abs(q.Profit-wantProfit) > 1e-6 {
			return false
		}
		wantU := alpha*q.Profit + (1-alpha)*q.Surplus
		return math.Abs(q.Utility-wantU) < 1e-6 && q.Surplus >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestMixedObjectiveConsistency: the mixed quote's utility decomposes the
// same way and the default objective reproduces revenue maximization.
func TestMixedObjectiveConsistency(t *testing.T) {
	pr := Default()
	off := MixedOffer{
		CurPay:     []float64{8, 0, 5},
		CurSurplus: []float64{2, 0, 1},
		WB:         []float64{10, 11, 9},
		Lo:         8, Hi: 14,
	}
	def := pr.PriceMixed(off)
	if math.Abs(def.Utility-def.Revenue) > 1e-9 || math.Abs(def.BaselineUtility-def.Baseline) > 1e-9 {
		t.Errorf("default objective: utility %g/%g should equal revenue %g/%g",
			def.Utility, def.BaselineUtility, def.Revenue, def.Baseline)
	}
	// With a bundle cost of 100 the bundle can never be profitable.
	offCost := off
	offCost.BundleCost = 100
	offCost.Obj = Objective{ProfitWeight: 1, UnitCost: 100}
	q := pr.PriceMixed(offCost)
	if q.Feasible {
		t.Errorf("prohibitive bundle cost should be infeasible: %+v", q)
	}
}
