// Command bundle computes a revenue-maximizing bundle configuration from a
// ratings CSV, a WTP-matrix JSON document or a binary codec matrix, and
// prints it as JSON or text.
//
// A .csv input holds ratings (see bundling.ReadDatasetCSV): one
// "price,<item>,<value>" row per item and one
// "rating,<consumer>,<item>,<stars>" row per rating. A .json input holds a
// bundling.MatrixDoc: explicit dimensions plus sparse [consumer, item, wtp]
// triples — the same corpus format the bundled server accepts. A .bin input
// holds the same matrix in the binary columnar codec (internal/codec, see
// MatrixDoc.MarshalBinary) — roughly half the JSON bytes, bit-identical
// values.
//
// Usage:
//
//	bundle -in ratings.csv -strategy mixed -theta -0.05 -format json
//	bundle -in corpus.json -algo greedy
//	bundle -demo            # run on a small synthetic corpus
//
// Exit status is non-zero on malformed input or invalid parameters.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"bundling"
)

// algoNames renders the algorithm registry for flag help and errors, so the
// CLI tracks new algorithms without a switch to update.
func algoNames() string {
	var names []string
	for _, a := range bundling.Algorithms() {
		names = append(names, a.Name())
	}
	return strings.Join(names, ", ")
}

func main() {
	var (
		in       = flag.String("in", "", "ratings CSV path (use -demo to synthesize instead)")
		demo     = flag.Bool("demo", false, "run on a synthetic demo corpus")
		strategy = flag.String("strategy", "pure", "bundling strategy: pure or mixed")
		algo     = flag.String("algo", "matching", "algorithm: "+algoNames())
		theta    = flag.Float64("theta", 0, "bundling coefficient θ (> -1)")
		k        = flag.Int("k", 0, "max bundle size (0 = unlimited)")
		lambda   = flag.Float64("lambda", 1.25, "ratings→WTP conversion factor λ (≥ 1)")
		gamma    = flag.Float64("gamma", 0, "stochastic price sensitivity γ (0 = step function)")
		format   = flag.String("format", "text", "output format: text or json")
	)
	flag.Parse()
	if err := run(*in, *demo, *strategy, *algo, *theta, *k, *lambda, *gamma, *format, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bundle:", err)
		os.Exit(1)
	}
}

func run(in string, demo bool, strategy, algo string, theta float64, k int, lambda, gamma float64, format string, out io.Writer) error {
	var w *bundling.Matrix
	switch {
	case demo:
		ds, err := bundling.GenerateDataset(bundling.DatasetConfig{
			Users: 300, Items: 60, RatingsPerUser: 15, MinDegree: 4, Seed: 1,
		})
		if err != nil {
			return err
		}
		w, err = ds.WTP(lambda)
		if err != nil {
			return err
		}
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		corpus := "csv"
		switch {
		case strings.HasSuffix(in, ".json"):
			corpus = "json"
		case strings.HasSuffix(in, ".bin"):
			corpus = "bin"
		}
		w, err = bundling.DecodeMatrix(f, corpus, lambda)
		if err != nil {
			return fmt.Errorf("%s: %w", in, err)
		}
	default:
		return fmt.Errorf("either -in <csv|json> or -demo is required")
	}
	opts := bundling.Options{Theta: theta, MaxBundleSize: k, Gamma: gamma}
	switch strategy {
	case "pure":
		opts.Strategy = bundling.Pure
	case "mixed":
		opts.Strategy = bundling.Mixed
	default:
		return fmt.Errorf("unknown strategy %q (want pure or mixed)", strategy)
	}

	a, err := bundling.AlgorithmByName(algo)
	if err != nil {
		return fmt.Errorf("unknown algorithm %q (want %s)", algo, algoNames())
	}
	solver, err := bundling.NewSolver(w, opts)
	if err != nil {
		return err
	}
	cfg, err := solver.Solve(a)
	if err != nil {
		return err
	}

	report := bundling.NewReport(cfg, w)
	switch format {
	case "json":
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	case "text":
		fmt.Fprintln(out, report)
		for _, off := range report.Offers {
			if len(off.Items) == 1 && off.Kind == "bundle" {
				continue // keep the listing focused on actual bundles
			}
			fmt.Fprintf(out, "  %-9s %v at %.2f\n", off.Kind, off.Items, off.Price)
		}
		return nil
	default:
		return fmt.Errorf("unknown format %q (want text or json)", format)
	}
}
