package pricing

import (
	"math/rand"
	"testing"

	"bundling/internal/adoption"
)

func randomWTPs(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64() * 30
	}
	return out
}

func BenchmarkPriceOptimalStep1000(b *testing.B) {
	pr := Default()
	wtps := randomWTPs(1000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr.PriceOptimal(wtps)
	}
}

func BenchmarkPriceOptimalSigmoidBucketed1000(b *testing.B) {
	m, _ := adoption.New(1, 1, adoption.DefaultEpsilon)
	pr, _ := New(m, DefaultLevels)
	wtps := randomWTPs(1000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr.PriceOptimal(wtps)
	}
}

func BenchmarkPriceOptimalSigmoidExact1000(b *testing.B) {
	m, _ := adoption.New(1, 1, adoption.DefaultEpsilon)
	pr, _ := New(m, DefaultLevels)
	pr.SetExact(true)
	wtps := randomWTPs(1000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr.PriceOptimal(wtps)
	}
}

func BenchmarkPriceUtility1000(b *testing.B) {
	pr := Default()
	wtps := randomWTPs(1000, 1)
	obj := Objective{ProfitWeight: 0.8, UnitCost: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr.PriceUtility(wtps, obj)
	}
}

func BenchmarkPriceMixed1000(b *testing.B) {
	pr := Default()
	rng := rand.New(rand.NewSource(2))
	n := 1000
	off := MixedOffer{
		CurPay:     make([]float64, n),
		CurSurplus: make([]float64, n),
		WB:         make([]float64, n),
		Lo:         8, Hi: 20,
	}
	for j := 0; j < n; j++ {
		off.CurPay[j] = rng.Float64() * 10
		off.CurSurplus[j] = rng.Float64() * 4
		off.WB[j] = rng.Float64() * 25
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr.PriceMixed(off)
	}
}

func BenchmarkPriceFromList1000(b *testing.B) {
	pr := Default()
	pl, _ := NewPriceList([]float64{1.99, 4.99, 9.99, 14.99, 19.99, 24.99})
	wtps := randomWTPs(1000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr.PriceFromList(wtps, pl)
	}
}
