// Package fim mines maximal frequent itemsets from transaction data.
//
// The paper's bundling baseline ("Frequently Bought Together", Sec. 6.1.3)
// treats each consumer as a transaction containing the items she has
// non-zero willingness to pay for, mines maximal frequent itemsets with
// MAFIA, and greedily assembles a bundle configuration from them. MAFIA is
// closed-source-era C++; this package re-implements its essence: a
// depth-first search over the itemset lattice with a vertical bitmap
// representation, parent-equivalence pruning (PEP), and subsumption checks
// against the maximal set collection. Maximal frequent itemsets are unique
// given data and minimum support, so the baseline sees the same candidate
// bundles MAFIA would produce.
package fim

import (
	"fmt"
	"sort"

	"bundling/internal/bitset"
)

// Itemset is a mined itemset with its absolute support.
type Itemset struct {
	Items   []int // ascending item ids
	Support int   // number of transactions containing all items
}

// Config controls the miner.
type Config struct {
	// MinSupport is the absolute minimum transaction count. Values < 1 are
	// treated as 1.
	MinSupport int
	// MaxSize caps the itemset size (0 = unlimited). The bundling baseline
	// passes the bundle-size limit k here.
	MaxSize int
	// MaxResults stops the search after this many maximal itemsets
	// (0 = unlimited); a safety valve for dense data.
	MaxResults int
}

// MineMaximal returns all maximal frequent itemsets of the transactions.
// transactions[t] lists the item ids of transaction t (any order,
// duplicates ignored). items is the universe size.
func MineMaximal(items int, transactions [][]int, cfg Config) ([]Itemset, error) {
	if items < 0 {
		return nil, fmt.Errorf("fim: negative item universe %d", items)
	}
	if cfg.MinSupport < 1 {
		cfg.MinSupport = 1
	}
	m := &miner{cfg: cfg, items: items, nTrans: len(transactions)}
	// Vertical representation: bitmap of transactions per item.
	m.tids = make([]*bitset.Set, items)
	for i := range m.tids {
		m.tids[i] = bitset.New(len(transactions))
	}
	for t, tx := range transactions {
		for _, i := range tx {
			if i < 0 || i >= items {
				return nil, fmt.Errorf("fim: item %d outside universe [0,%d)", i, items)
			}
			m.tids[i].Add(t)
		}
	}
	// Frequent single items, ordered by ascending support (MAFIA's dynamic
	// reordering heuristic: rarest-first keeps subtrees small).
	type freq struct {
		item, sup int
	}
	var f1 []freq
	for i := 0; i < items; i++ {
		if s := m.tids[i].Count(); s >= cfg.MinSupport {
			f1 = append(f1, freq{i, s})
		}
	}
	sort.Slice(f1, func(a, b int) bool {
		if f1[a].sup != f1[b].sup {
			return f1[a].sup < f1[b].sup
		}
		return f1[a].item < f1[b].item
	})
	order := make([]int, len(f1))
	for i, f := range f1 {
		order[i] = f.item
	}
	all := bitset.New(len(transactions))
	for t := 0; t < len(transactions); t++ {
		all.Add(t)
	}
	m.dfs(nil, all, order)
	return m.results, nil
}

type miner struct {
	cfg     Config
	items   int
	nTrans  int
	tids    []*bitset.Set
	results []Itemset
	// maximalMasks mirrors results as item bitsets for subsumption checks.
	maximalMasks []*bitset.Set
	stopped      bool
}

// dfs explores extensions of prefix (whose transaction set is tid) with the
// ordered candidate extension items ext.
func (m *miner) dfs(prefix []int, tid *bitset.Set, ext []int) {
	if m.stopped {
		return
	}
	if m.cfg.MaxSize > 0 && len(prefix) >= m.cfg.MaxSize {
		m.record(prefix, tid.Count())
		return
	}
	prefixSup := tid.Count()
	// Compute supports of extensions; apply PEP: extensions whose tidset
	// equals the prefix tidset always co-occur, fold them into the prefix.
	type cand struct {
		item int
		tid  *bitset.Set
		sup  int
	}
	var cands []cand
	pep := append([]int(nil), prefix...)
	for _, i := range ext {
		sup := tid.IntersectionCount(m.tids[i])
		if sup < m.cfg.MinSupport {
			continue
		}
		if sup == prefixSup && m.cfg.MaxSize == 0 {
			// PEP: i occurs in every prefix transaction, so every maximal
			// itemset extending the prefix contains i — fold it in. Only
			// sound without a size cap: under a cap, capped subsets that
			// avoid i (e.g. {prefix, j}) can still be maximal-within-cap
			// and must be enumerated.
			pep = append(pep, i)
			continue
		}
		t := tid.Clone()
		t.IntersectWith(m.tids[i])
		cands = append(cands, cand{item: i, tid: t, sup: sup})
	}
	prefix = pep
	if m.cfg.MaxSize > 0 && len(prefix) >= m.cfg.MaxSize {
		m.record(prefix, prefixSup)
		return
	}
	if len(cands) == 0 {
		if len(prefix) > 0 {
			m.record(prefix, prefixSup)
		}
		return
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].sup != cands[b].sup {
			return cands[a].sup < cands[b].sup
		}
		return cands[a].item < cands[b].item
	})
	// HUTMFI-style pruning: if prefix ∪ all candidates is already subsumed
	// by a known maximal itemset, nothing new can be found below.
	hut := append([]int(nil), prefix...)
	for _, c := range cands {
		hut = append(hut, c.item)
	}
	if m.subsumed(hut) {
		return
	}
	for ci, c := range cands {
		child := append(append([]int(nil), prefix...), c.item)
		rest := make([]int, 0, len(cands)-ci-1)
		for _, c2 := range cands[ci+1:] {
			rest = append(rest, c2.item)
		}
		m.dfs(child, c.tid, rest)
		if m.stopped {
			return
		}
	}
}

// record adds the itemset to the maximal collection unless a superset is
// already present; any recorded subsets of it are removed.
func (m *miner) record(items []int, sup int) {
	if m.subsumed(items) {
		return
	}
	mask := bitset.FromIndices(m.items, items...)
	// Drop previously recorded subsets.
	kept := m.results[:0]
	keptMasks := m.maximalMasks[:0]
	for i, r := range m.results {
		if !m.maximalMasks[i].SubsetOf(mask) {
			kept = append(kept, r)
			keptMasks = append(keptMasks, m.maximalMasks[i])
		}
	}
	m.results = kept
	m.maximalMasks = keptMasks
	sorted := append([]int(nil), items...)
	sort.Ints(sorted)
	m.results = append(m.results, Itemset{Items: sorted, Support: sup})
	m.maximalMasks = append(m.maximalMasks, mask)
	if m.cfg.MaxResults > 0 && len(m.results) >= m.cfg.MaxResults {
		m.stopped = true
	}
}

// subsumed reports whether items ⊆ some recorded maximal itemset.
func (m *miner) subsumed(items []int) bool {
	mask := bitset.FromIndices(m.items, items...)
	for _, mm := range m.maximalMasks {
		if mask.SubsetOf(mm) {
			return true
		}
	}
	return false
}

// Support computes the absolute support of an itemset directly from
// transactions; used by tests as an independent oracle.
func Support(items []int, transactions [][]int) int {
	n := 0
	for _, tx := range transactions {
		have := make(map[int]bool, len(tx))
		for _, i := range tx {
			have[i] = true
		}
		ok := true
		for _, i := range items {
			if !have[i] {
				ok = false
				break
			}
		}
		if ok {
			n++
		}
	}
	return n
}
