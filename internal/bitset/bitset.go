// Package bitset provides a compact, fixed-universe bit set used to
// represent item sets (bundles) and vertical transaction bitmaps in the
// frequent-itemset miner. It is a small substrate package: the bundling
// algorithms manipulate many set unions, intersections and popcounts, and a
// word-packed representation keeps those operations cache friendly.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a bit set over the universe [0, n). The zero value is an empty set
// over an empty universe; use New to create a set with capacity.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set over the universe [0, n).
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative universe size")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromIndices returns a set over [0, n) containing exactly the given indices.
func FromIndices(n int, indices ...int) *Set {
	s := New(n)
	for _, i := range indices {
		s.Add(i)
	}
	return s
}

// Len returns the universe size n.
func (s *Set) Len() int { return s.n }

// Add inserts i into the set. It panics if i is outside [0, n).
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove deletes i from the set. It panics if i is outside [0, n).
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// Clear removes all elements, keeping the universe size.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// UnionWith adds every element of t to s. The universes must match.
func (s *Set) UnionWith(t *Set) {
	s.checkSame(t)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// IntersectWith removes from s every element not in t.
func (s *Set) IntersectWith(t *Set) {
	s.checkSame(t)
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// DifferenceWith removes every element of t from s.
func (s *Set) DifferenceWith(t *Set) {
	s.checkSame(t)
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// Intersects reports whether s and t share at least one element.
func (s *Set) Intersects(t *Set) bool {
	s.checkSame(t)
	for i, w := range t.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// IntersectionCount returns |s ∩ t| without allocating.
func (s *Set) IntersectionCount(t *Set) int {
	s.checkSame(t)
	c := 0
	for i, w := range t.words {
		c += bits.OnesCount64(s.words[i] & w)
	}
	return c
}

// SubsetOf reports whether every element of s is in t.
func (s *Set) SubsetOf(t *Set) bool {
	s.checkSame(t)
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same elements.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// Indices returns the elements of the set in ascending order.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// ForEach calls fn for each element in ascending order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// Min returns the smallest element, or -1 if the set is empty.
func (s *Set) Min() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// String renders the set as "{1, 4, 9}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

func (s *Set) checkSame(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: universe mismatch %d vs %d", s.n, t.n))
	}
}
