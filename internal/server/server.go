// Package server implements bundled, the bundle-pricing serving subsystem:
// a registry of named, long-lived Solver sessions keyed by corpus ID, an
// LRU-bounded result cache keyed by exact corpus snapshot, a per-session
// micro-batcher that coalesces concurrent evaluate requests, a durable
// corpus Store that restores the registry across daemon restarts, a
// tenancy layer (API-key auth, per-tenant ownership and quotas), and the
// JSON HTTP API the cmd/bundled daemon and the bundling/client package
// speak. Sessions run on any engine implementing Solver — the in-process
// bundling.Solver or the internal/cluster coordinator that shards stripes
// across a worker fleet — so persistence and tenancy apply unchanged to
// single-machine and clustered serving.
//
//	POST   /v1/corpora               upload a corpus, create/replace its session
//	GET    /v1/corpora               list live sessions (the caller's own)
//	GET    /v1/corpora/{id}          one session's info
//	DELETE /v1/corpora/{id}          evict a session
//	POST   /v1/corpora/{id}/solve    run a configuration algorithm
//	POST   /v1/corpora/{id}/evaluate price a caller-proposed lineup
//	GET    /healthz                  liveness + session count
//	GET    /metrics                  Prometheus text metrics
//
// With an Auth configured, /v1 requests must carry a tenant's API key
// (401 otherwise), a tenant can only see and operate on its own corpora
// (403 otherwise), and Quotas bound its corpus count, total indexed
// entries and request rate (429 beyond). /healthz and /metrics stay open.
// See docs/API.md for the wire reference and docs/OPERATIONS.md for the
// persistence layout and metrics catalogue.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"bundling"
	"bundling/internal/codec"
	"bundling/internal/obs"
)

// Solver is the session-engine surface the server serves: SolveContext
// runs a configuration algorithm, EvaluateContext prices a what-if lineup,
// Stats describes the indexed corpus (its Version keys the result cache).
// Both solve and evaluate take the request's context — a canceled or
// expired context must abort the run promptly with the context's error, so
// the server can bound execution latency and stop work for disconnected
// clients. The local *bundling.Solver implements it, and so does the
// cluster coordinator, which is how one daemon serves either a single
// machine or a worker fleet transparently.
type Solver interface {
	SolveContext(ctx context.Context, a bundling.Algorithm) (*bundling.Configuration, error)
	EvaluateContext(ctx context.Context, offers [][]int) (*bundling.Configuration, error)
	Stats() bundling.SolverStats
}

// DeltaSolver is the optional incremental-mutation extension of Solver: an
// engine that can derive a new session with a cell delta applied, without
// rebuilding from the full matrix. The cluster coordinator implements it
// (span-scoped delta feeds to the workers); the local *bundling.Solver has
// the same capability through its concrete ApplyDelta and is dispatched
// directly. The receiver must stay intact and serving — in-flight requests
// hold it until the registry swap completes.
type DeltaSolver interface {
	ApplyDeltaSolver(cells []bundling.DeltaCell) (Solver, error)
}

// Config tunes a Server. The zero value serves with sensible defaults.
type Config struct {
	// MaxSessions bounds the registry; creating a session beyond it evicts
	// the least-recently-used one (0 = 64).
	MaxSessions int
	// CacheEntries bounds the result cache (0 = 1024, negative disables).
	CacheEntries int
	// MaxUploadBytes bounds a corpus upload body (0 = 64 MiB).
	MaxUploadBytes int64
	// BatchWorkers caps concurrent evaluations per micro-batch pass (0 = 4).
	BatchWorkers int
	// BatchWindow is the gather window of the evaluate micro-batcher: how
	// long a drained batch waits for stragglers before executing. 0 drains
	// immediately (group commit adapts batch size to load); a positive
	// window trades that much latency for larger batches — more coalescing
	// and fewer engine passes under bursty identical traffic.
	BatchWindow time.Duration
	// NewSolver builds the session engine for an uploaded corpus. Nil
	// selects the local in-process solver (bundling.NewSolver); the
	// cmd/bundled -workers flag installs the cluster coordinator here.
	NewSolver func(w *bundling.Matrix, opts bundling.Options) (Solver, error)
	// Ready, if set, gates /healthz on external dependencies: a non-nil
	// error degrades the health response to 503 with the error as detail
	// (e.g. a required cluster worker being unreachable).
	Ready func() error
	// Store, if set, persists every uploaded corpus and lets Restore
	// rebuild the session registry after a restart. Nil keeps sessions
	// in-memory only.
	Store *Store
	// Auth, if enabled, requires a tenant API key on every /v1 request and
	// scopes corpus ownership to the authenticated tenant. Nil serves open.
	Auth *Auth
	// Quotas bounds each tenant's corpora, total entries and request rate.
	// The zero value is unlimited.
	Quotas Quotas
	// MaxConcurrent bounds in-flight solve/evaluate executions — the
	// engine-bound work, not cache hits or metadata requests (0 = 64,
	// negative disables admission control). Excess requests wait in a short
	// bounded queue and are shed with 503 + Retry-After when it overflows
	// or the wait exceeds QueueTimeout, so overload degrades to fast
	// rejections instead of a latency collapse.
	MaxConcurrent int
	// MaxQueue bounds requests waiting for an execution slot
	// (0 = 2×MaxConcurrent, negative disables queueing: shed immediately
	// when all slots are busy).
	MaxQueue int
	// QueueTimeout caps how long an admitted request waits for a slot
	// before being shed (0 = 2s).
	QueueTimeout time.Duration
	// DefaultTimeout is the server-side execution budget for solve and
	// evaluate when the client does not send X-Deadline-Ms (0 = none). A
	// request whose budget expires gets 504 and its engine run aborts at
	// the next iteration boundary.
	DefaultTimeout time.Duration
	// WorkerStatus, if set, reports the fleet's per-worker circuit-breaker
	// state on /healthz (installed by cmd/bundled in cluster mode).
	WorkerStatus func() []WorkerStatusDoc
	// Fleet, if set, assembles the merged fleet-introspection view served
	// at GET /debug/fleet — concurrent worker probes joined with
	// coordinator-side breaker and load state (installed by cmd/bundled in
	// cluster mode; the route is absent otherwise).
	Fleet func(ctx context.Context) FleetResponse
	// UsageTopK bounds the distinct tenant and corpus keys the workload
	// accountant tracks individually; later keys collapse into the "other"
	// bucket, so user-supplied IDs can never explode /metrics (0 = 32,
	// negative disables accounting and the /v1/usage endpoint).
	UsageTopK int
	// UsageWindow is the sliding window behind the accountant's
	// window_requests/rate_per_sec columns and *_window_rps gauges (0 = 60s).
	UsageWindow time.Duration
	// UsageMetrics additionally exposes the accountant as labeled
	// bundled_tenant_*/bundled_corpus_* series on /metrics. Off by default:
	// /metrics is deliberately unauthenticated, and the label values are
	// tenant data (tenant names, corpus IDs, their traffic shape) — opt in
	// only when the scrape endpoint is private (-usage-metrics). The
	// auth-guarded, tenant-scoped /v1/usage serves the same numbers either
	// way.
	UsageMetrics bool
	// ExtraMetrics, if set, contributes extra rows to /metrics (the daemon
	// installs fleet breaker gauges and coordinator fallback counters here).
	ExtraMetrics func() ([]GaugeRow, []CounterRow)
	// Logger, if set, receives one structured line per completed /v1
	// request (trace ID, request ID, tenant, corpus, algorithm, status,
	// duration) plus the slow-request span dumps. Nil disables request
	// logging; tracing and /debug/traces work either way.
	Logger *slog.Logger
	// SlowRequest, when positive, dumps the full span tree of any /v1
	// request slower than this budget to the Logger at warn level.
	SlowRequest time.Duration
	// TraceRing bounds the in-memory ring of recent traces served at
	// /debug/traces (0 = 128, negative disables request tracing entirely —
	// X-Request-Id is still stamped, but no spans are recorded).
	TraceRing int
	// TraceSpans caps recorded spans per trace (0 = obs.DefaultMaxSpans).
	// Past the cap spans still feed the stage histograms but drop out of
	// the stored trace, so an RPC-heavy cluster solve cannot balloon it.
	TraceSpans int
	// Pprof mounts net/http/pprof under /debug/pprof when set — auth-exempt
	// like /metrics, so gate it at the operator's discretion (-pprof).
	Pprof bool
}

func (c Config) withDefaults() Config {
	if c.MaxSessions == 0 {
		c.MaxSessions = 64
	}
	if c.NewSolver == nil {
		c.NewSolver = func(w *bundling.Matrix, opts bundling.Options) (Solver, error) {
			return bundling.NewSolver(w, opts)
		}
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.MaxUploadBytes == 0 {
		c.MaxUploadBytes = 64 << 20
	}
	if c.BatchWorkers == 0 {
		c.BatchWorkers = 4
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 64
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 2 * c.MaxConcurrent
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = 2 * time.Second
	}
	return c
}

// Server is the bundle-pricing service. One Server handles any number of
// concurrent requests; all state is internally synchronized.
type Server struct {
	cfg    Config
	reg    *registry
	cache  *resultCache
	met    *metrics
	rates  *rateGate
	lim    *limiter
	mux    *http.ServeMux
	traces *obs.Ring // nil when tracing is disabled
	use    *usageSet // nil when workload accounting is disabled
}

// New assembles a Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	cfg.Quotas = cfg.Quotas.withDefaults()
	s := &Server{
		cfg:   cfg,
		reg:   newRegistry(cfg.MaxSessions),
		cache: newResultCache(cfg.CacheEntries),
		met:   newMetrics(),
		rates: newRateGate(cfg.Quotas),
		lim:   newLimiter(cfg.MaxConcurrent, cfg.MaxQueue, cfg.QueueTimeout),
	}
	if cfg.TraceRing >= 0 {
		s.traces = obs.NewRing(cfg.TraceRing)
	}
	s.use = newUsageSet(cfg.UsageTopK, cfg.UsageWindow)
	// The registry's install gate and quota accounting reach past memory:
	// an LRU-evicted corpus keeps its persisted record, so it keeps its
	// owner and keeps counting against its tenant.
	s.reg.authOn = cfg.Auth.Enabled()
	s.reg.store = cfg.Store
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/corpora", s.handleCreate)
	mux.HandleFunc("GET /v1/corpora", s.handleList)
	mux.HandleFunc("GET /v1/corpora/{id}", s.handleInfo)
	mux.HandleFunc("PATCH /v1/corpora/{id}", s.handlePatch)
	mux.HandleFunc("DELETE /v1/corpora/{id}", s.handleDelete)
	mux.HandleFunc("POST /v1/corpora/{id}/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/corpora/{id}/evaluate", s.handleEvaluate)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.use != nil {
		mux.HandleFunc("GET /v1/usage", s.handleUsage)
	}
	if s.traces != nil {
		mux.HandleFunc("GET /debug/traces", s.handleTraces)
	}
	if cfg.Fleet != nil {
		mux.HandleFunc("GET /debug/fleet", s.handleFleet)
	}
	if cfg.Pprof {
		RegisterPprof(mux)
	}
	s.mux = mux
	return s
}

// Handler returns the server's HTTP handler: the API mux behind the
// workload accountant (inside the guard, so it meters by authenticated
// tenant), the tenancy guard (authentication and the request-rate quota),
// the tracing and request-ID middleware, and the panic-recovery middleware.
func (s *Server) Handler() http.Handler {
	return s.recoverer(s.trace(s.guard(s.account(s.mux))))
}

// recoverer converts a handler panic into a 500 response (when no bytes
// were written yet) and a counted metric, instead of killing the
// connection with an opaque empty reply. http.ErrAbortHandler re-panics:
// it is net/http's own "drop this connection" idiom, not a bug.
func (s *Server) recoverer(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.met.handlerPanics.Add(1)
			// Best effort: if the handler already wrote a header this only
			// logs through the metric — the wire is beyond repair.
			s.fail(w, http.StatusInternalServerError, "internal error: %v", rec)
		}()
		next.ServeHTTP(w, r)
	})
}

// Restore readies the configured Store's corpora for serving — lazily. Boot
// reads only the manifest: it seeds every known ID's generation counter
// (deleted IDs included, so post-restart uploads continue their sequences)
// and returns the live corpus count; no record file is opened and no index
// is built, so restart time is O(manifest) instead of O(corpora × index
// build). Listings and /healthz serve immediately from manifest metadata,
// and each corpus re-indexes on its first solve/evaluate through the
// registry's read-through path (lookupSession), exactly as an LRU-evicted
// corpus always has. A cluster-backed daemon therefore feeds worker spans on
// first touch — each lazily restored session draws a new span nonce, so
// stale pre-restart spans on the fleet can never satisfy its version
// checks. Manifests written before listing metadata existed get a targeted
// backfill that reads only the affected records.
func (s *Server) Restore() (int, error) {
	if s.cfg.Store == nil {
		return 0, nil
	}
	s.reg.seedVersions(s.cfg.Store.Generations())
	return s.cfg.Store.Bootstrap()
}

// Close releases every session (including any remote state a cluster
// engine holds on its workers). In-flight requests holding a session keep
// working (sessions are immutable); new requests see an empty registry.
// The HTTP listener's drain is the caller's job (http.Server.Shutdown).
func (s *Server) Close() {
	for _, sess := range s.reg.clear() {
		releaseSession(sess)
	}
}

// Sessions returns the live session count (used by health and tests).
func (s *Server) Sessions() int { return s.reg.len() }

// writeJSON emits a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// fail emits an error response and counts it. The middleware stamps the
// request ID on the response headers before the handler runs, so the error
// body can echo it for log correlation without threading the request here.
func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.met.CountError()
	writeJSON(w, status, ErrorResponse{
		Error:     fmt.Sprintf(format, args...),
		RequestID: w.Header().Get(obs.HeaderRequest),
	})
}

// maxRequestBytes bounds non-upload request bodies (solve/evaluate); only
// corpus uploads get the much larger configurable cap.
const maxRequestBytes = 1 << 20

// decodeBody strictly decodes a JSON request body into v, bounded so an
// oversized body cannot balloon the daemon's memory.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	return decodeBodyLimit(w, r, v, maxRequestBytes)
}

// decodeBodyLimit is decodeBody with an explicit size cap (corpus uploads
// pass the configured upload bound).
func decodeBodyLimit(w http.ResponseWriter, r *http.Request, v any, limit int64) error {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// handleCreate ingests a corpus and registers its session. Re-uploading an
// existing ID atomically replaces the session and bumps its version. The
// body is either the JSON CreateCorpusRequest or, with Content-Type
// codec.ContentType, a binary codec record envelope (ID, options blob and
// matrix columns — the same envelope the store persists).
func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req CreateCorpusRequest
	if strings.HasPrefix(r.Header.Get("Content-Type"), codec.ContentType) {
		if !s.decodeCreateBinary(w, r, &req) {
			return
		}
	} else if err := decodeBodyLimit(w, r, &req, s.cfg.MaxUploadBytes); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge, "upload exceeds %d bytes", s.cfg.MaxUploadBytes)
			return
		}
		s.fail(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	opts, err := req.Options.options()
	if err != nil {
		s.fail(w, http.StatusBadRequest, "options: %v", err)
		return
	}
	var matrix *bundling.Matrix
	switch req.Format {
	case "", "json":
		if req.Matrix == nil {
			s.fail(w, http.StatusBadRequest, "json corpus needs a matrix document")
			return
		}
		matrix, err = req.Matrix.Matrix()
	case "csv":
		if req.CSV == "" {
			s.fail(w, http.StatusBadRequest, "csv corpus needs a csv payload")
			return
		}
		matrix, err = bundling.DecodeMatrix(strings.NewReader(req.CSV), "csv", req.Lambda)
	default:
		s.fail(w, http.StatusBadRequest, "unknown corpus format %q (want json or csv)", req.Format)
		return
	}
	if err != nil {
		s.fail(w, http.StatusBadRequest, "corpus: %v", err)
		return
	}
	tenant := tenantOf(r)
	obs.Annotate(r.Context(), "corpus", req.ID)
	accountCorpus(r.Context(), req.ID)
	// An advisory admission pass (ownership, quotas) runs before the
	// expensive engine build so a doomed upload is rejected cheaply; the
	// authoritative checks run atomically with the install inside the
	// registry, where they also see evicted-but-persisted corpora.
	if err := s.reg.admitCheck(tenant, req.ID, matrix.Entries(), s.cfg.Quotas); err != nil {
		s.failAdmit(w, err)
		return
	}
	_, isp := obs.StartSpan(r.Context(), "index")
	isp.Tag("entries", matrix.Entries())
	sess, err := s.register(req.ID, tenant, matrix, opts, true)
	isp.End()
	if err == nil {
		accountCorpus(r.Context(), sess.id) // covers server-assigned IDs
	}
	if err != nil {
		var qe *quotaError
		var oe *ownerError
		if errors.As(err, &qe) || errors.As(err, &oe) {
			s.failAdmit(w, err)
			return
		}
		s.fail(w, http.StatusBadRequest, "index corpus: %v", err)
		return
	}
	if s.cfg.Store != nil {
		rec := CorpusRecord{
			ID:         sess.id,
			Tenant:     sess.tenant,
			Generation: sess.version,
			CreatedAt:  sess.createdAt,
			Options:    NewOptionsDoc(opts),
			Matrix:     req.Matrix,
			Entries:    sess.stats.Entries, // parsed count, not raw doc length
		}
		if rec.Matrix == nil {
			rec.Matrix = bundling.NewMatrixDoc(matrix) // csv uploads persist in canonical form
		}
		_, psp := obs.StartSpan(r.Context(), "persist")
		perr := s.cfg.Store.Put(rec)
		psp.End()
		if perr != nil {
			// An upload the caller cannot trust to survive a restart must
			// not be accepted: roll the session back (only if it is still
			// ours — a concurrent upload may have replaced it) and fall
			// back to the generation the disk still guarantees, so a
			// transient store fault never turns a serving corpus into 404.
			s.met.storeErrors.Add(1)
			if removed := s.reg.deleteIf(sess); removed != nil {
				releaseSession(removed)
				s.recoverFromStore(sess.id)
			}
			s.fail(w, http.StatusInternalServerError, "persist corpus: %v", perr)
			return
		}
	}
	s.met.Observe("upload", time.Since(start))
	writeJSON(w, http.StatusCreated, sess.info())
}

// decodeCreateBinary fills req from a binary corpus upload: a codec record
// envelope whose ID, embedded options JSON and matrix columns map onto the
// json-format CreateCorpusRequest fields (Generation, Tenant and CreatedAt
// are server-assigned and ignored). On failure it writes the error response
// and returns false.
func (s *Server) decodeCreateBinary(w http.ResponseWriter, r *http.Request, req *CreateCorpusRequest) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge, "upload exceeds %d bytes", s.cfg.MaxUploadBytes)
			return false
		}
		s.fail(w, http.StatusBadRequest, "read request: %v", err)
		return false
	}
	cr, err := codec.DecodeRecord(body)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "decode binary upload: %v", err)
		return false
	}
	req.ID = cr.ID
	if len(cr.OptionsJSON) > 0 {
		if err := json.Unmarshal(cr.OptionsJSON, &req.Options); err != nil {
			s.fail(w, http.StatusBadRequest, "binary upload options: %v", err)
			return false
		}
	}
	doc := bundling.MatrixDoc(cr.Matrix)
	req.Matrix = &doc
	return true
}

// failAdmit maps an admission error to its response: a cross-tenant install
// is 403; an exceeded quota is 429 plus the matching rejection counter.
func (s *Server) failAdmit(w http.ResponseWriter, err error) {
	var oe *ownerError
	if errors.As(err, &oe) {
		s.fail(w, http.StatusForbidden, "%v", err)
		return
	}
	var qe *quotaError
	if errors.As(err, &qe) && qe.kind == "entries" {
		s.met.quotaEntries.Add(1)
	} else {
		s.met.quotaCorpora.Add(1)
	}
	s.fail(w, http.StatusTooManyRequests, "%v", err)
}

// recoverFromStore re-indexes the store's live generation of id after a
// failed persist wiped the in-memory session, restoring the corpus to the
// state a restart would produce. Best effort: if the record cannot be
// loaded the ID stays absent, exactly as after a crash. Installs only if
// the ID is still free — a concurrent upload that installed a newer
// session meanwhile must not be stomped with stale disk state.
func (s *Server) recoverFromStore(id string) {
	rec, ok := s.cfg.Store.LiveRecord(id)
	if !ok {
		return
	}
	opts, err := rec.Options.options()
	if err != nil {
		return
	}
	matrix, err := rec.Matrix.Matrix()
	if err != nil {
		return
	}
	_, _ = s.registerIfAbsent(rec.ID, rec.Tenant, matrix, opts, rec.Generation, rec.CreatedAt)
}

// register indexes a corpus and installs its session (replacing any session
// under the same ID; empty ID gets a server-assigned one). With enforce set
// the tenant quota check runs atomically with the install; trusted paths
// (preload, restore, recovery) pass false.
func (s *Server) register(id, tenant string, matrix *bundling.Matrix, opts bundling.Options, enforce bool) (*session, error) {
	return s.registerWith(id, tenant, matrix, opts, 0, time.Time{}, enforce, false)
}

// registerAt installs a session at an explicit upload generation and
// creation time — the restart-restore path, replaying state the store
// already admitted.
func (s *Server) registerAt(id, tenant string, matrix *bundling.Matrix, opts bundling.Options, version int, createdAt time.Time) (*session, error) {
	return s.registerWith(id, tenant, matrix, opts, version, createdAt, false, false)
}

// registerIfAbsent is registerAt for the lazy-reload and persist-recovery
// paths: it fails with errAlreadyInstalled instead of replacing a session a
// concurrent upload installed meanwhile.
func (s *Server) registerIfAbsent(id, tenant string, matrix *bundling.Matrix, opts bundling.Options, version int, createdAt time.Time) (*session, error) {
	return s.registerWith(id, tenant, matrix, opts, version, createdAt, false, true)
}

// registerWith is the shared body of the register variants: version 0 and
// a zero time select the next generation and "now".
func (s *Server) registerWith(id, tenant string, matrix *bundling.Matrix, opts bundling.Options, version int, createdAt time.Time, enforce, ifAbsent bool) (*session, error) {
	solver, err := s.cfg.NewSolver(matrix, opts)
	if err != nil {
		return nil, err
	}
	if id == "" {
		id = s.reg.nextID()
	}
	if createdAt.IsZero() {
		createdAt = time.Now().UTC()
	}
	sess := s.newSession(id, tenant, solver, opts, createdAt)
	replaced, evicted, err := s.reg.putAt(sess, version, s.cfg.Quotas, enforce, ifAbsent)
	if err != nil {
		releaseSession(sess) // a cluster engine has already fed its spans
		return nil, err
	}
	releaseSession(replaced)
	for _, victim := range evicted {
		s.met.evictions.Add(1)
		releaseSession(victim)
	}
	s.met.uploads.Add(1)
	return sess, nil
}

// newSession assembles a session around an already-built engine: stats
// snapshot plus the per-session evaluate micro-batcher wired to the server
// metrics. The caller installs it through one of the registry put paths,
// which assigns the generation.
func (s *Server) newSession(id, tenant string, solver Solver, opts bundling.Options, createdAt time.Time) *session {
	sess := &session{
		id:        id,
		tenant:    tenant,
		solver:    solver,
		opts:      opts,
		stats:     solver.Stats(),
		createdAt: createdAt,
	}
	sess.batcher = newBatcher(s.cfg.BatchWorkers, s.cfg.BatchWindow, s.cfg.DefaultTimeout, solver.EvaluateContext)
	sess.batcher.onBatch = func(size, unique int) {
		s.met.batches.Add(1)
		s.met.batchedRequests.Add(int64(size))
		s.met.coalescedInBatch.Add(int64(size - unique))
	}
	return sess
}

// releaseSession frees a session's external resources once it has left the
// registry. Engines that hold remote state — the cluster coordinator keeps
// stripe spans resident on the worker fleet — implement io.Closer; the
// local solver holds only memory and does not. Safe with requests still in
// flight on the old session: a cluster engine whose spans were dropped
// simply re-feeds or falls back locally, it never returns stale data.
func releaseSession(sess *session) {
	if sess == nil {
		return
	}
	if c, ok := sess.solver.(io.Closer); ok {
		_ = c.Close()
	}
}

// Preload registers a session programmatically — the daemon's -demo corpus
// and in-process harnesses use it to seed sessions without an HTTP upload.
// Preloaded sessions are public (no owning tenant) and are not persisted:
// the daemon re-seeds them on every boot.
func Preload(s *Server, id string, w *bundling.Matrix, opts bundling.Options) error {
	_, err := s.register(id, "", w, opts, false)
	return err
}

// handleList reports the corpora the caller may see: with auth enabled,
// its own plus the public ones; open servers list everything. The listing
// reaches past the in-memory registry to evicted-but-persisted corpora —
// they still hold quota and remain deletable, so the listing must agree
// with the quota accounting and let a tenant find the IDs that DELETE
// would free.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	infos := s.reg.list()
	if s.cfg.Store != nil {
		live := make(map[string]bool, len(infos))
		for _, info := range infos {
			live[info.ID] = true
		}
		for _, info := range s.cfg.Store.ListLive(tenantOf(r), !s.cfg.Auth.Enabled()) {
			if !live[info.ID] {
				infos = append(infos, info)
			}
		}
		sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	}
	if s.cfg.Auth.Enabled() {
		tenant := tenantOf(r)
		visible := infos[:0]
		for _, info := range infos {
			if info.Tenant == "" || info.Tenant == tenant {
				visible = append(visible, info)
			}
		}
		infos = visible
	}
	writeJSON(w, http.StatusOK, ListCorporaResponse{Corpora: infos})
}

// lookupSession resolves id to an authorized live session for serving. The
// registry is a bounded cache over the store, so a miss reads through: an
// evicted-but-persisted corpus is lazily re-indexed at its persisted
// generation — every ID the listing names is servable, not just the ones
// still in memory. Authorization runs before the expensive rebuild, so
// another tenant probing the ID cannot make the daemon churn index builds.
// Returns nil after writing the error response.
func (s *Server) lookupSession(w http.ResponseWriter, r *http.Request, id string) *session {
	if sess, ok := s.reg.peek(id); ok {
		return s.servePeeked(w, r, sess)
	}
	if s.cfg.Store == nil {
		s.fail(w, http.StatusNotFound, "no corpus %q", id)
		return nil
	}
	rec, ok := s.cfg.Store.LiveRecord(id)
	if !ok {
		s.fail(w, http.StatusNotFound, "no corpus %q", id)
		return nil
	}
	if !s.authorizeOwner(w, r, id, rec.Tenant) {
		return nil
	}
	opts, err := rec.Options.options()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "reload corpus %q: options: %v", id, err)
		return nil
	}
	matrix, err := rec.Matrix.Matrix()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "reload corpus %q: %v", id, err)
		return nil
	}
	_, isp := obs.StartSpan(r.Context(), "index")
	isp.Tag("reload", true)
	sess, err := s.registerIfAbsent(rec.ID, rec.Tenant, matrix, opts, rec.Generation, rec.CreatedAt)
	isp.End()
	if errors.Is(err, errAlreadyInstalled) {
		// A concurrent upload or reload won the install; serve its session.
		if sess, ok := s.reg.peek(id); ok {
			return s.servePeeked(w, r, sess)
		}
		s.fail(w, http.StatusNotFound, "no corpus %q", id)
		return nil
	}
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "reload corpus %q: index: %v", id, err)
		return nil
	}
	// A DELETE may have durably removed the corpus while the rebuild ran;
	// the install must not resurrect it as a ghost session that serves,
	// holds quota and blocks re-claim of the freed ID. Re-validate
	// liveness after the install and back out if the generation is gone
	// (deletePersisted's memory sweep covers the opposite interleaving).
	if _, gen, _, live := s.cfg.Store.LiveInfo(id); !live || gen != rec.Generation {
		releaseSession(s.reg.deleteIf(sess))
		s.fail(w, http.StatusNotFound, "no corpus %q", id)
		return nil
	}
	s.met.restores.Add(1)
	return sess
}

// servePeeked authorizes a peeked session and promotes its LRU recency for
// serving; nil (response written) when the caller may not touch it.
func (s *Server) servePeeked(w http.ResponseWriter, r *http.Request, sess *session) *session {
	if !s.authorize(w, r, sess) {
		return nil
	}
	s.reg.touch(sess)
	return sess
}

// handleInfo reports one session.
func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupSession(w, r, r.PathValue("id"))
	if sess == nil {
		return
	}
	writeJSON(w, http.StatusOK, sess.info())
}

// handleDelete evicts a session and removes its persisted record. An ID
// with no live session may still be an LRU-evicted corpus with a persisted
// record — deletable too, or it would hold its tenant's quota forever.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess, ok := s.reg.peek(id)
	if !ok {
		s.deletePersisted(w, r, id)
		return
	}
	if !s.authorize(w, r, sess) {
		return
	}
	// Delete exactly the session the caller was authorized on: a concurrent
	// re-upload may have replaced it, and that newer corpus (possibly
	// another tenant's claim of a freed ID) must survive — deleteIf skips a
	// replaced session, and the generation-aware store delete is a no-op
	// once a newer generation is persisted.
	releaseSession(s.reg.deleteIf(sess))
	if !s.deleteRecord(w, id, sess.version) {
		return
	}
	s.sweepResurrected(id, sess.version)
	w.WriteHeader(http.StatusNoContent)
}

// deletePersisted handles DELETE for an ID with no live session: the corpus
// may still hold a persisted record (and quota) after an LRU eviction.
func (s *Server) deletePersisted(w http.ResponseWriter, r *http.Request, id string) {
	if s.cfg.Store == nil {
		s.fail(w, http.StatusNotFound, "no corpus %q", id)
		return
	}
	owner, gen, _, ok := s.cfg.Store.LiveInfo(id)
	if !ok {
		s.fail(w, http.StatusNotFound, "no corpus %q", id)
		return
	}
	if !s.authorizeOwner(w, r, id, owner) {
		return
	}
	if !s.deleteRecord(w, id, gen) {
		return
	}
	s.sweepResurrected(id, gen)
	w.WriteHeader(http.StatusNoContent)
}

// sweepResurrected evicts a session a lazy reload re-installed at or below
// the generation a delete just tombstoned. The reload re-checks store
// liveness after installing and every delete path sweeps after
// tombstoning, so whichever runs last cleans up — a durably deleted corpus
// can never linger as a ghost session that serves, holds quota and blocks
// re-claim of the freed ID.
func (s *Server) sweepResurrected(id string, gen int) {
	if sess, ok := s.reg.peek(id); ok && sess.version <= gen {
		releaseSession(s.reg.deleteIf(sess))
	}
}

// deleteRecord removes the persisted record of id at generation gen,
// writing the error response on failure (the session may already be gone
// from memory but would resurrect on restart; surface that instead of
// claiming a clean delete). Reports whether the delete succeeded.
func (s *Server) deleteRecord(w http.ResponseWriter, id string, gen int) bool {
	if s.cfg.Store == nil {
		return true
	}
	if err := s.cfg.Store.Delete(id, gen); err != nil {
		s.met.storeErrors.Add(1)
		s.fail(w, http.StatusInternalServerError, "corpus evicted but persistence delete failed: %v", err)
		return false
	}
	return true
}

// handlePatch applies a delta upsert to a corpus in place: the session
// engine derives a new session incrementally (touched stripes, touched
// singletons, span-scoped worker feeds) instead of re-indexing the matrix,
// the registry swaps it in under the next generation — which retires every
// cached result of the old snapshot through the generation-keyed cache —
// and the store appends a generation-chained delta record that compaction
// later folds into a snapshot. The body is the JSON MutateCorpusRequest or,
// with Content-Type codec.ContentType, a binary codec delta envelope.
func (s *Server) handlePatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := r.PathValue("id")
	var req MutateCorpusRequest
	if strings.HasPrefix(r.Header.Get("Content-Type"), codec.ContentType) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
		if err != nil {
			s.fail(w, http.StatusBadRequest, "read request: %v", err)
			return
		}
		d, err := codec.DecodeDelta(body)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "decode binary delta: %v", err)
			return
		}
		if d.ID != "" && d.ID != id {
			s.fail(w, http.StatusBadRequest, "delta names corpus %q, path names %q", d.ID, id)
			return
		}
		req.IfGeneration = int(d.IfGeneration)
		req.Cells = d.Cells()
	} else if err := decodeBody(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if len(req.Cells) == 0 {
		s.fail(w, http.StatusBadRequest, "no cells to apply")
		return
	}
	sess := s.lookupSession(w, r, id)
	if sess == nil {
		return
	}
	obs.Annotate(r.Context(), "corpus", sess.id)
	if req.IfGeneration != 0 && req.IfGeneration != sess.version {
		s.fail(w, http.StatusConflict, "corpus %q is at generation %d, not %d", id, sess.version, req.IfGeneration)
		return
	}
	// The incremental repair is engine-bound work (touched-item singleton
	// re-pricing, worker delta feeds), so it runs under an execution slot
	// like a solve.
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	_, msp := obs.StartSpan(r.Context(), "mutate")
	msp.Tag("cells", len(req.Cells))
	var solver Solver
	var err error
	switch t := sess.solver.(type) {
	case *bundling.Solver:
		solver, err = t.ApplyDelta(req.Cells)
	case DeltaSolver:
		solver, err = t.ApplyDeltaSolver(req.Cells)
	default:
		err = fmt.Errorf("session engine does not support incremental mutation")
	}
	msp.End()
	release()
	if err != nil {
		s.fail(w, http.StatusBadRequest, "apply delta: %v", err)
		return
	}
	nsess := s.newSession(sess.id, sess.tenant, solver, sess.opts, sess.createdAt)
	replaced, evicted, err := s.reg.putReplacing(nsess, sess, s.cfg.Quotas)
	if err != nil {
		releaseSession(nsess)
		if errors.Is(err, errReplacedMeanwhile) {
			s.fail(w, http.StatusConflict, "corpus %q was concurrently replaced; re-read and retry", id)
			return
		}
		s.failAdmit(w, err)
		return
	}
	releaseSession(replaced)
	for _, victim := range evicted {
		s.met.evictions.Add(1)
		releaseSession(victim)
	}
	if s.cfg.Store != nil {
		rec := CorpusRecord{
			ID:             nsess.id,
			Tenant:         nsess.tenant,
			Generation:     nsess.version,
			BaseGeneration: sess.version,
			CreatedAt:      nsess.createdAt,
			Options:        NewOptionsDoc(nsess.opts),
			Cells:          req.Cells,
			Entries:        nsess.stats.Entries,
		}
		_, psp := obs.StartSpan(r.Context(), "persist")
		perr := s.cfg.Store.PutDelta(rec)
		psp.End()
		if perr != nil {
			// Same contract as an upload: a mutation the caller cannot trust
			// to survive a restart is not accepted. Roll back to what the
			// disk guarantees.
			s.met.storeErrors.Add(1)
			if removed := s.reg.deleteIf(nsess); removed != nil {
				releaseSession(removed)
				s.recoverFromStore(nsess.id)
			}
			s.fail(w, http.StatusInternalServerError, "persist delta: %v", perr)
			return
		}
	}
	s.met.Observe("mutate", time.Since(start))
	writeJSON(w, http.StatusOK, MutateCorpusResponse{
		Corpus:    nsess.id,
		Version:   nsess.version,
		Applied:   len(req.Cells),
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
		Info:      nsess.info(),
	})
}

// deadlineHeader is the per-request execution-budget override: a positive
// integer of milliseconds, taking the minimum with Config.DefaultTimeout.
const deadlineHeader = "X-Deadline-Ms"

// requestContext derives a solve/evaluate execution context from the HTTP
// request: the request's own context (canceled when the client
// disconnects), bounded by the X-Deadline-Ms header and the server's
// DefaultTimeout, whichever is tighter. Returns ok=false after writing a
// 400 for a malformed header.
func (s *Server) requestContext(w http.ResponseWriter, r *http.Request) (context.Context, context.CancelFunc, bool) {
	budget := s.cfg.DefaultTimeout
	if h := r.Header.Get(deadlineHeader); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms <= 0 {
			s.fail(w, http.StatusBadRequest, "%s: want a positive integer of milliseconds, got %q", deadlineHeader, h)
			return nil, nil, false
		}
		if d := time.Duration(ms) * time.Millisecond; budget == 0 || d < budget {
			budget = d
		}
	}
	if budget <= 0 {
		return r.Context(), func() {}, true
	}
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	return ctx, cancel, true
}

// admit acquires an execution slot for engine-bound work, shedding with
// 503 + Retry-After when the server is saturated. Returns ok=false after
// writing the response; otherwise the caller must call release.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	_, qsp := obs.StartSpan(r.Context(), "queue")
	release, ok = s.lim.acquire(r.Context())
	qsp.Tag("admitted", ok)
	qsp.End()
	if !ok {
		s.met.shedRequests.Add(1)
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusServiceUnavailable, "server overloaded: no execution slot within the queue budget; retry")
	}
	return release, ok
}

// failRun maps an engine-run error to its response: an expired budget (or
// a client already gone) is 504 — the configured deadline, not the
// request, is at fault — and anything else is the run's own 400.
func (s *Server) failRun(w http.ResponseWriter, op string, err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		s.met.deadlineExceeded.Add(1)
		s.fail(w, http.StatusGatewayTimeout, "%s: %v", op, err)
		return
	}
	s.fail(w, http.StatusBadRequest, "%s: %v", op, err)
}

// handleSolve runs a configuration algorithm on a session, serving repeats
// from the result cache.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sess := s.lookupSession(w, r, r.PathValue("id"))
	if sess == nil {
		return
	}
	var req SolveRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if req.Algorithm == "" {
		req.Algorithm = "matching"
	}
	alg, err := bundling.AlgorithmByName(req.Algorithm)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	obs.Annotate(r.Context(), "corpus", sess.id)
	obs.Annotate(r.Context(), "algorithm", req.Algorithm)
	key := sess.cacheKey("solve", req.Algorithm)
	cfg, hit := s.cache.get(key)
	obs.Annotate(r.Context(), "cached", hit)
	accountCacheHit(r.Context(), hit)
	if hit {
		s.met.cacheHits.Add(1)
	} else {
		s.met.cacheMisses.Add(1)
		release, ok := s.admit(w, r)
		if !ok {
			return
		}
		ctx, cancel, ok := s.requestContext(w, r)
		if !ok {
			release()
			return
		}
		cfg, err = sess.solver.SolveContext(ctx, alg)
		cancel()
		release()
		if err != nil {
			s.failRun(w, "solve", err)
			return
		}
		s.cache.put(key, cfg)
	}
	s.met.Observe("solve", time.Since(start))
	writeJSON(w, http.StatusOK, SolveResponse{
		Corpus:    sess.id,
		Version:   sess.version,
		Algorithm: req.Algorithm,
		Cached:    hit,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
		Config:    configDoc(cfg),
	})
}

// handleEvaluate prices a proposed lineup on a session. Misses go through
// the session's micro-batcher, which coalesces concurrent identical
// requests into one execution and prices distinct concurrent requests in
// one bounded worker pass.
func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sess := s.lookupSession(w, r, r.PathValue("id"))
	if sess == nil {
		return
	}
	var req EvaluateRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if len(req.Offers) == 0 {
		s.fail(w, http.StatusBadRequest, "no offers to evaluate")
		return
	}
	obs.Annotate(r.Context(), "corpus", sess.id)
	key := sess.cacheKey("evaluate", canonicalOffers(req.Offers))
	cfg, hit := s.cache.get(key)
	obs.Annotate(r.Context(), "cached", hit)
	accountCacheHit(r.Context(), hit)
	var batched bool
	if hit {
		s.met.cacheHits.Add(1)
	} else {
		s.met.cacheMisses.Add(1)
		release, ok := s.admit(w, r)
		if !ok {
			return
		}
		ctx, cancel, ok := s.requestContext(w, r)
		if !ok {
			release()
			return
		}
		// The batch executes under the batcher's own background context, so
		// engine-internal spans cannot attach to this trace; the waiter-side
		// span covers the coalesce window plus the shared execution.
		bctx, bsp := obs.StartSpan(ctx, "batch")
		bsp.Tag("offers", len(req.Offers))
		var err error
		cfg, batched, err = sess.batcher.do(bctx, key, req.Offers)
		bsp.Tag("coalesced", batched)
		bsp.End()
		cancel()
		release()
		if err != nil {
			s.failRun(w, "evaluate", err)
			return
		}
		s.cache.put(key, cfg)
	}
	s.met.Observe("evaluate", time.Since(start))
	writeJSON(w, http.StatusOK, EvaluateResponse{
		Corpus:    sess.id,
		Version:   sess.version,
		Cached:    hit,
		Batched:   batched,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
		Config:    configDoc(cfg),
	})
}

// handleHealth reports liveness and, when a readiness gate is configured,
// degrades to 503 while a required dependency (e.g. a cluster worker span)
// is unreachable.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	goVersion, modVersion, revision := buildInfo()
	resp := HealthResponse{
		Status:        "ok",
		Sessions:      s.reg.len(),
		Corpora:       s.corporaCount(),
		UptimeSeconds: s.met.Uptime().Seconds(),
		GoVersion:     goVersion,
		BuildVersion:  modVersion,
		Revision:      revision,
	}
	if s.cfg.WorkerStatus != nil {
		resp.Workers = s.cfg.WorkerStatus()
	}
	if s.cfg.Ready != nil {
		if err := s.cfg.Ready(); err != nil {
			resp.Status = "degraded"
			resp.Detail = err.Error()
			writeJSON(w, http.StatusServiceUnavailable, resp)
			return
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics exposes the Prometheus text metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	persisted := -1
	if s.cfg.Store != nil {
		persisted = s.cfg.Store.Len()
	}
	var extraG []GaugeRow
	var extraC []CounterRow
	if s.cfg.ExtraMetrics != nil {
		extraG, extraC = s.cfg.ExtraMetrics()
	}
	usageG, usageC := s.usageMetricRows()
	extraG = append(extraG, usageG...)
	extraC = append(extraC, usageC...)
	if s.cfg.Store != nil {
		extraG = append([]GaugeRow{{
			Name:  "bundled_store_disk_bytes",
			Help:  "Bytes of corpus records and manifest in the persistence directory.",
			Value: float64(s.cfg.Store.DiskBytes()),
		}}, extraG...)
	}
	s.met.render(w, s.reg.len(), s.cache.len(), persisted, extraG, extraC)
}

// canonicalOffers encodes an offer family independent of offer and item
// order, the identity the result cache and the micro-batcher key on.
// Offers that only differ in ordering evaluate identically (the engine
// normalizes them), so they should share one cache slot.
func canonicalOffers(offers [][]int) string {
	sets := make([][]int, len(offers))
	for i, off := range offers {
		c := append([]int(nil), off...)
		sort.Ints(c)
		sets[i] = c
	}
	sort.Slice(sets, func(i, j int) bool {
		a, b := sets[i], sets[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	var b strings.Builder
	for i, set := range sets {
		if i > 0 {
			b.WriteByte(';')
		}
		for k, it := range set {
			if k > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(it))
		}
	}
	return b.String()
}
