package server

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"

	"bundling"
	"bundling/internal/codec"
)

// patchBody sends a PATCH to /v1/corpora/{id} with an explicit content type.
func patchBody(t testing.TB, ts *httptest.Server, id, contentType string, body []byte) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPatch, ts.URL+"/v1/corpora/"+id, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	_, _ = copyAll(&sb, resp.Body)
	return resp, sb.String()
}

// randCells draws a mutation batch with the harness's hostile mix: adds,
// updates, deletes (often of absent cells), duplicate coordinates and no-op
// updates that rewrite a cell to its current value.
func randCells(rng *rand.Rand, w *bundling.Matrix, n int) []bundling.DeltaCell {
	cells := make([]bundling.DeltaCell, 0, n)
	for len(cells) < n {
		u, i := rng.Intn(w.Consumers()), rng.Intn(w.Items())
		c := bundling.DeltaCell{Consumer: u, Item: i}
		switch rng.Intn(5) {
		case 0:
			c.Delete = true
		case 1:
			if v := w.At(u, i); v > 0 {
				c.Value = v // no-op update
			} else {
				c.Value = 1 + rng.Float64()*19
			}
		default:
			c.Value = 1 + rng.Float64()*19
		}
		cells = append(cells, c)
		if rng.Intn(4) == 0 { // duplicate coordinate, later write wins
			dup := c
			dup.Delete = false
			dup.Value = 1 + rng.Float64()*19
			cells = append(cells, dup)
		}
	}
	return cells
}

// applyCells replays a batch onto a matrix through the plain mutation path —
// the from-scratch half of the differential harness.
func applyCells(t testing.TB, w *bundling.Matrix, cells []bundling.DeltaCell) {
	t.Helper()
	for _, c := range cells {
		if c.Delete {
			if err := w.Delete(c.Consumer, c.Item); err != nil {
				t.Fatal(err)
			}
		} else {
			w.MustSet(c.Consumer, c.Item, c.Value)
		}
	}
}

// uploadDoc uploads a corpus document under id and returns its info.
func uploadDoc(t testing.TB, ts *httptest.Server, id string, doc *bundling.MatrixDoc, opts OptionsDoc) CorpusInfo {
	t.Helper()
	buf, err := jsonMarshal(CreateCorpusRequest{ID: id, Options: opts, Matrix: doc})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts, "/v1/corpora", string(buf))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload %s: %d: %s", id, resp.StatusCode, body)
	}
	var info CorpusInfo
	if err := decodeString(body, &info); err != nil {
		t.Fatal(err)
	}
	return info
}

// solveRevenue solves one algorithm over HTTP and returns revenue plus the
// cached flag.
func solveRevenue(t testing.TB, ts *httptest.Server, id, alg string) (float64, bool) {
	t.Helper()
	resp, body := postJSON(t, ts, "/v1/corpora/"+id+"/solve", fmt.Sprintf(`{"algorithm":%q}`, alg))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve %s/%s: %d: %s", id, alg, resp.StatusCode, body)
	}
	var out SolveResponse
	if err := decodeString(body, &out); err != nil {
		t.Fatal(err)
	}
	return out.Config.Revenue, out.Cached
}

// TestPatchDifferentialMatchesRebuild is the serving half of the
// differential harness: seeded random delta sequences applied through
// PATCH — JSON and binary codec payloads interleaved — must leave the
// session agreeing with a from-scratch rebuild on all five algorithms and
// Evaluate within 1e-9, with every cached result of the old generation
// retired.
func TestPatchDifferentialMatchesRebuild(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		srv := New(Config{})
		ts := httptest.NewServer(srv.Handler())
		rng := rand.New(rand.NewSource(seed * 31))
		opts := OptionsDoc{Strategy: "pure", Theta: -0.05}
		shadow := testMatrix(t, 90, 14, seed)
		id := fmt.Sprintf("diff-%d", seed)
		uploadDoc(t, ts, id, bundling.NewMatrixDoc(shadow), opts)
		for round := 0; round < 4; round++ {
			cells := randCells(rng, shadow, 4+rng.Intn(8))
			var resp *http.Response
			var body string
			if round%2 == 0 {
				buf, err := jsonMarshal(MutateCorpusRequest{Cells: cells})
				if err != nil {
					t.Fatal(err)
				}
				resp, body = patchBody(t, ts, id, "application/json", buf)
			} else {
				d := codec.DeltaFromCells(id, uint64(round+1), cells)
				resp, body = patchBody(t, ts, id, codec.ContentType, codec.EncodeDelta(d))
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("seed %d round %d: patch: %d: %s", seed, round, resp.StatusCode, body)
			}
			var out MutateCorpusResponse
			if err := decodeString(body, &out); err != nil {
				t.Fatal(err)
			}
			if out.Version != round+2 {
				t.Fatalf("seed %d round %d: generation %d, want %d", seed, round, out.Version, round+2)
			}
			applyCells(t, shadow, cells)
			libOpts, err := opts.options()
			if err != nil {
				t.Fatal(err)
			}
			direct, err := bundling.NewSolver(shadow, libOpts)
			if err != nil {
				t.Fatal(err)
			}
			for _, alg := range bundling.Algorithms() {
				want, err := direct.Solve(alg)
				if err != nil {
					t.Fatal(err)
				}
				got, cached := solveRevenue(t, ts, id, alg.Name())
				if cached {
					t.Fatalf("seed %d round %d: %s served a cached result across the mutation", seed, round, alg.Name())
				}
				if math.Abs(got-want.Revenue) > 1e-9*(1+math.Abs(want.Revenue)) {
					t.Fatalf("seed %d round %d %s: revenue %.12f != rebuild %.12f", seed, round, alg.Name(), got, want.Revenue)
				}
			}
			want, err := direct.Evaluate([][]int{{0, 1, 2}, {3, 4}, {7}})
			if err != nil {
				t.Fatal(err)
			}
			resp, body = postJSON(t, ts, "/v1/corpora/"+id+"/evaluate", `{"offers":[[0,1,2],[3,4],[7]]}`)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("evaluate: %d: %s", resp.StatusCode, body)
			}
			var ev EvaluateResponse
			if err := decodeString(body, &ev); err != nil {
				t.Fatal(err)
			}
			if math.Abs(ev.Config.Revenue-want.Revenue) > 1e-9*(1+math.Abs(want.Revenue)) {
				t.Fatalf("seed %d round %d evaluate: %.12f != %.12f", seed, round, ev.Config.Revenue, want.Revenue)
			}
		}
		ts.Close()
		srv.Close()
	}
}

// TestPatchConditionsAndValidation covers the mutation API's error
// contract: stale if_generation is 409 and applies nothing, empty and
// malformed deltas are 400, an unknown corpus is 404, and a binary delta
// naming a different corpus than the path is rejected.
func TestPatchConditionsAndValidation(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	shadow := testMatrix(t, 40, 8, 5)
	uploadDoc(t, ts, "cond", bundling.NewMatrixDoc(shadow), OptionsDoc{})
	before, _ := solveRevenue(t, ts, "cond", "matching")

	body, _ := jsonMarshal(MutateCorpusRequest{IfGeneration: 99, Cells: []bundling.DeltaCell{{Consumer: 0, Item: 0, Value: 5}}})
	resp, text := patchBody(t, ts, "cond", "application/json", body)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale if_generation: %d: %s", resp.StatusCode, text)
	}
	if after, _ := solveRevenue(t, ts, "cond", "matching"); after != before {
		t.Fatalf("rejected patch mutated the corpus: %.12f != %.12f", after, before)
	}

	for name, tc := range map[string]struct {
		payload string
		status  int
	}{
		"empty cells":     {`{"cells":[]}`, http.StatusBadRequest},
		"out of range":    {`{"cells":[{"consumer":40,"item":0,"value":1}]}`, http.StatusBadRequest},
		"negative value":  {`{"cells":[{"consumer":0,"item":0,"value":-2}]}`, http.StatusBadRequest},
		"delete with wtp": {`{"cells":[{"consumer":0,"item":0,"value":3,"delete":true}]}`, http.StatusBadRequest},
	} {
		resp, text := patchBody(t, ts, "cond", "application/json", []byte(tc.payload))
		if resp.StatusCode != tc.status {
			t.Errorf("%s: %d want %d: %s", name, resp.StatusCode, tc.status, text)
		}
	}

	body, _ = jsonMarshal(MutateCorpusRequest{Cells: []bundling.DeltaCell{{Consumer: 0, Item: 0, Value: 5}}})
	if resp, _ := patchBody(t, ts, "nope", "application/json", body); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown corpus: %d", resp.StatusCode)
	}

	d := codec.DeltaFromCells("other", 0, []bundling.DeltaCell{{Consumer: 0, Item: 0, Value: 5}})
	if resp, text := patchBody(t, ts, "cond", codec.ContentType, codec.EncodeDelta(d)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched binary corpus id: %d: %s", resp.StatusCode, text)
	}
	if resp, text := patchBody(t, ts, "cond", codec.ContentType, []byte{0xff, 0x01}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage binary delta: %d: %s", resp.StatusCode, text)
	}
}

// TestPatchPersistRestartAndFold proves the generation-chained store
// records: a patched corpus restarts into exactly the mutated state (the
// chain replays), and with an aggressive fold threshold compaction folds
// the chain into a snapshot that still restarts identically.
func TestPatchPersistRestartAndFold(t *testing.T) {
	dir := t.TempDir()
	open := func(fold int) (*Server, *httptest.Server, *Store) {
		st, err := OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		st.SetDeltaFold(fold)
		srv := New(Config{Store: st})
		if _, err := srv.Restore(); err != nil {
			t.Fatal(err)
		}
		return srv, httptest.NewServer(srv.Handler()), st
	}

	srv, ts, st := open(1000) // no folding in phase one: chains must replay
	shadow := testMatrix(t, 60, 10, 9)
	uploadDoc(t, ts, "dur", bundling.NewMatrixDoc(shadow), OptionsDoc{Theta: -0.02})
	rng := rand.New(rand.NewSource(9))
	for round := 0; round < 3; round++ {
		cells := randCells(rng, shadow, 5)
		buf, _ := jsonMarshal(MutateCorpusRequest{Cells: cells})
		if resp, body := patchBody(t, ts, "dur", "application/json", buf); resp.StatusCode != http.StatusOK {
			t.Fatalf("patch round %d: %d: %s", round, resp.StatusCode, body)
		}
		applyCells(t, shadow, cells)
	}
	want, _ := solveRevenue(t, ts, "dur", "matching")
	ts.Close()
	srv.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// The chain must exist on disk before the restart replays it.
	if n := countRecords(t, dir, "dur"); n < 4 {
		t.Fatalf("expected the snapshot plus 3 chained deltas on disk, found %d records", n)
	}

	srv, ts, st = open(1) // fold every chain at the first compaction pass
	got, _ := solveRevenue(t, ts, "dur", "matching")
	if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
		t.Fatalf("post-restart revenue %.12f != pre-restart %.12f", got, want)
	}
	direct, err := bundling.NewSolver(shadow, bundling.Options{Theta: -0.02})
	if err != nil {
		t.Fatal(err)
	}
	dwant, err := direct.Solve(bundling.Matching())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-dwant.Revenue) > 1e-9*(1+math.Abs(dwant.Revenue)) {
		t.Fatalf("post-restart revenue %.12f != rebuild %.12f", got, dwant.Revenue)
	}
	cells := randCells(rng, shadow, 3)
	buf, _ := jsonMarshal(MutateCorpusRequest{Cells: cells})
	if resp, body := patchBody(t, ts, "dur", "application/json", buf); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart patch: %d: %s", resp.StatusCode, body)
	}
	applyCells(t, shadow, cells)
	ts.Close()
	srv.Close()
	if err := st.Close(); err != nil { // final compaction folds the chain
		t.Fatal(err)
	}
	if n := countRecords(t, dir, "dur"); n != 1 {
		t.Fatalf("expected the chain folded into one snapshot, found %d records", n)
	}

	srv, ts, st = open(1000)
	defer func() { ts.Close(); srv.Close(); _ = st.Close() }()
	direct, err = bundling.NewSolver(shadow, bundling.Options{Theta: -0.02})
	if err != nil {
		t.Fatal(err)
	}
	dwant, err = direct.Solve(bundling.Matching())
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := solveRevenue(t, ts, "dur", "matching"); math.Abs(got-dwant.Revenue) > 1e-9*(1+math.Abs(dwant.Revenue)) {
		t.Fatalf("post-fold revenue %.12f != rebuild %.12f", got, dwant.Revenue)
	}
}

// countRecords counts the record files of one corpus in the store dir.
func countRecords(t testing.TB, dir, id string) int {
	t.Helper()
	entries, err := os.ReadDir(dir + "/corpora")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), id+".") {
			n++
		}
	}
	return n
}

// TestPatchConcurrentSolves mutates a corpus while solves and evaluates
// hammer it from other goroutines — under -race this is the
// copy-on-write/session-swap thread-safety proof at the serving layer.
func TestPatchConcurrentSolves(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	shadow := testMatrix(t, 80, 12, 11)
	uploadDoc(t, ts, "conc", bundling.NewMatrixDoc(shadow), OptionsDoc{})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if g%2 == 0 {
					solveRevenue(t, ts, "conc", "greedy")
				} else {
					resp, body := postJSON(t, ts, "/v1/corpora/conc/evaluate", `{"offers":[[0,1],[2,3]]}`)
					if resp.StatusCode != http.StatusOK {
						t.Errorf("evaluate: %d: %s", resp.StatusCode, body)
						return
					}
				}
			}
		}(g)
	}
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 6; round++ {
		cells := randCells(rng, shadow, 4)
		buf, _ := jsonMarshal(MutateCorpusRequest{Cells: cells})
		resp, body := patchBody(t, ts, "conc", "application/json", buf)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("patch round %d: %d: %s", round, resp.StatusCode, body)
		}
		applyCells(t, shadow, cells)
	}
	close(stop)
	wg.Wait()
	direct, err := bundling.NewSolver(shadow, bundling.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Solve(bundling.Greedy())
	if err != nil {
		t.Fatal(err)
	}
	got, _ := solveRevenue(t, ts, "conc", "greedy")
	if math.Abs(got-want.Revenue) > 1e-9*(1+math.Abs(want.Revenue)) {
		t.Fatalf("final revenue %.12f != rebuild %.12f", got, want.Revenue)
	}
}
