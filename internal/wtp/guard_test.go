package wtp

import "testing"

// TestNewRejectsHugeDimensions pins the overflow guard: dimensions whose
// dense product cannot be allocated must error, not panic (they used to
// reach makeslice and crash when corrupt input carried sky-high ids).
func TestNewRejectsHugeDimensions(t *testing.T) {
	cases := []struct{ m, n int }{
		{9_000_000_000_000_000_000, 1},
		{4_000_000_000, 4_000_000_000},
		{maxDenseCells/2 + 1, 2},
	}
	for _, c := range cases {
		if _, err := New(c.m, c.n); err == nil {
			t.Errorf("New(%d, %d): expected error", c.m, c.n)
		}
	}
	if _, err := New(1024, 512); err != nil {
		t.Errorf("New(1024, 512): %v", err)
	}
}

func TestEntriesAndVersion(t *testing.T) {
	w := MustNew(4, 3)
	if w.Entries() != 0 || w.Version() != 0 {
		t.Fatalf("fresh matrix: entries=%d version=%d", w.Entries(), w.Version())
	}
	w.MustSet(0, 0, 5)
	w.MustSet(2, 1, 3)
	if w.Entries() != 2 {
		t.Errorf("entries = %d, want 2", w.Entries())
	}
	v := w.Version()
	if v == 0 {
		t.Error("version should have advanced")
	}
	w.MustSet(0, 0, 5) // no-op write must not bump the version
	if w.Version() != v {
		t.Errorf("no-op set bumped version %d → %d", v, w.Version())
	}
	w.MustSet(0, 0, 0) // deletion bumps and drops the entry
	if w.Entries() != 1 || w.Version() == v {
		t.Errorf("after delete: entries=%d version=%d", w.Entries(), w.Version())
	}
	sh := w.Shard(2)
	if sh.Version() != w.Version() {
		t.Errorf("shard version %d != matrix %d", sh.Version(), w.Version())
	}
}
