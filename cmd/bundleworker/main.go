// Command bundleworker is the stripe-span worker daemon of the distributed
// bundle-pricing cluster. A bundled coordinator (started with -workers)
// feeds it contiguous stripe spans of uploaded corpora and then drives the
// scatter/gather evaluate traffic: per-span bundle vectors, cached-vector
// unions, and pricing aggregates (see internal/cluster for the protocol).
//
// Usage:
//
//	bundleworker -addr :9101
//
// Then:
//
//	curl localhost:9101/healthz     # assigned spans + corpus versions
//	curl localhost:9101/metrics     # Prometheus text metrics
//
// Workers are stateless beyond their assigned spans: every request carries
// the corpus snapshot version, and a worker that restarts (or lags a corpus
// re-upload) is simply re-fed by the coordinator on its next request. The
// daemon shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bundling/internal/cluster"
	"bundling/internal/obs"
)

// options collects the daemon's flag values.
type options struct {
	addr         string
	maxSpans     int
	drainSecs    int
	logFormat    string
	logLevel     string
	traceRing    int
	pprof        bool
	usageMetrics bool
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":9101", "listen address")
	flag.IntVar(&o.maxSpans, "max-spans", 64, "max assigned spans (LRU eviction beyond)")
	flag.IntVar(&o.drainSecs, "drain-seconds", 15, "graceful shutdown drain window")
	flag.StringVar(&o.logFormat, "log-format", "text", "structured log output format: text or json")
	flag.StringVar(&o.logLevel, "log-level", "info", "minimum log level: debug, info, warn or error")
	flag.IntVar(&o.traceRing, "trace-ring", 0, "recent RPC trace records kept for /debug/traces (0 = 128, negative disables)")
	flag.BoolVar(&o.pprof, "pprof", false, "serve net/http/pprof profiles under /debug/pprof")
	flag.BoolVar(&o.usageMetrics, "usage-metrics", false, "label the per-span request gauges on the open /metrics endpoint with corpus keys (corpus IDs are tenant data; keep off unless the scrape endpoint is private)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "bundleworker:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	logger, err := obs.NewLogger(os.Stderr, o.logFormat, o.logLevel)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)
	wk := cluster.NewWorker(cluster.WorkerConfig{
		MaxSpans:     o.maxSpans,
		TraceRing:    o.traceRing,
		Pprof:        o.pprof,
		UsageMetrics: o.usageMetrics,
	})
	hs := &http.Server{
		Addr:              o.addr,
		Handler:           wk.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		logger.Info("bundleworker listening", "addr", o.addr, "pprof", o.pprof)
		errCh <- hs.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down", "drain_seconds", o.drainSecs)
	drainCtx, cancel := context.WithTimeout(context.Background(), time.Duration(o.drainSecs)*time.Second)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("bundleworker stopped")
	return nil
}
