package config

import (
	"fmt"
	"testing"
)

// TestParallelSingletonBuild pins the parallel NewSolver index build:
// whatever the worker count, the priced singleton index — and therefore
// every solve on top of it — is identical to the serial build.
func TestParallelSingletonBuild(t *testing.T) {
	w := equivMatrix(t, 53, 96, 24, 0.3)
	for _, strategy := range []Strategy{Pure, Mixed} {
		serial := DefaultParams()
		serial.Strategy = strategy
		serial.Theta = -0.03
		serial.Parallelism = 1
		base, err := NewSolver(w, serial)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8, 64} {
			params := serial
			params.Parallelism = workers
			s, err := NewSolver(w, params)
			if err != nil {
				t.Fatal(err)
			}
			if len(s.protos) != len(base.protos) {
				t.Fatalf("%v/workers=%d: %d singletons != %d", strategy, workers, len(s.protos), len(base.protos))
			}
			for i, p := range s.protos {
				b := base.protos[i]
				if p.items[0] != b.items[0] || p.uq.Price != b.uq.Price || p.uq.Revenue != b.uq.Revenue ||
					len(p.ids) != len(b.ids) {
					t.Fatalf("%v/workers=%d: singleton %d diverged: %+v vs %+v",
						strategy, workers, i, p.uq, b.uq)
				}
			}
			for _, a := range solverAlgorithms() {
				got, err := s.Solve(a)
				if err != nil {
					t.Fatalf("%s: %v", a.Name(), err)
				}
				want, err := base.Solve(a)
				if err != nil {
					t.Fatalf("%s: %v", a.Name(), err)
				}
				sameConfiguration(t, fmt.Sprintf("%v/workers=%d/%s", strategy, workers, a.Name()), got, want, 1e-9)
			}
		}
	}
}

func TestSolverStats(t *testing.T) {
	w := equivMatrix(t, 11, 100, 20, 0.3)
	params := DefaultParams()
	params.StripeSize = 32
	s, err := NewSolver(w, params)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Consumers != 100 || st.Items != 20 {
		t.Errorf("dims: %+v", st)
	}
	if st.StripeSize != 32 || st.Stripes != (100+31)/32 {
		t.Errorf("stripes: %+v", st)
	}
	if st.Entries != w.Entries() {
		t.Errorf("entries %d != matrix %d", st.Entries, w.Entries())
	}
	if st.Version != w.Version() {
		t.Errorf("version %d != matrix %d", st.Version, w.Version())
	}
	if st.TotalWTP != w.Total() {
		t.Errorf("total %g != matrix %g", st.TotalWTP, w.Total())
	}
}
