package usage

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced meter clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestMeterTotals(t *testing.T) {
	m := NewMeter(Config{Now: newFakeClock().Now})
	m.Add("alice", Sample{Wall: 100 * time.Millisecond, BytesIn: 10, BytesOut: 100})
	m.Add("alice", Sample{Err: true, Wall: 50 * time.Millisecond, BytesIn: 5, BytesOut: 50})
	m.Add("alice", Sample{CacheHit: true, BytesOut: 7})
	row, ok := m.Get("alice")
	if !ok {
		t.Fatal("alice not tracked")
	}
	want := Totals{Requests: 3, Errors: 1, CacheHits: 1, BytesIn: 15, BytesOut: 157}
	if math.Abs(row.WallSeconds-0.15) > 1e-9 {
		t.Fatalf("wall seconds = %g, want 0.15", row.WallSeconds)
	}
	row.WallSeconds = 0
	if row.Totals != want {
		t.Fatalf("totals = %+v, want %+v", row.Totals, want)
	}
	if row.WindowRequests != 3 {
		t.Fatalf("window requests = %d, want 3", row.WindowRequests)
	}
}

// TestMeterTopKOverflow checks the cardinality bound: the first K distinct
// keys get their own slot, and keys K+1..N all collapse into "other".
func TestMeterTopKOverflow(t *testing.T) {
	const k = 4
	m := NewMeter(Config{TopK: k, Now: newFakeClock().Now})
	for i := 0; i < 1000; i++ {
		m.Add(fmt.Sprintf("tenant-%03d", i), Sample{})
	}
	if got := m.Keys(); got != k {
		t.Fatalf("tracked keys = %d, want %d", got, k)
	}
	rows := m.Snapshot()
	if len(rows) != k+1 {
		t.Fatalf("snapshot rows = %d, want %d (top-K + other)", len(rows), k+1)
	}
	// Deterministic: arrival order decides who owns a slot.
	for i := 0; i < k; i++ {
		want := fmt.Sprintf("tenant-%03d", i)
		if _, ok := m.Get(want); !ok {
			t.Fatalf("early key %s lost its slot", want)
		}
	}
	last := rows[len(rows)-1]
	if last.Key != Other {
		t.Fatalf("last row = %q, want %q", last.Key, Other)
	}
	if last.Requests != 1000-k {
		t.Fatalf("other bucket requests = %d, want %d", last.Requests, 1000-k)
	}
	// A key literally named "other" must fold into the overflow bucket even
	// while slots remain, so the bucket stays unambiguous.
	m2 := NewMeter(Config{TopK: k, Now: newFakeClock().Now})
	m2.Add(Other, Sample{})
	if m2.Keys() != 0 {
		t.Fatalf("literal %q key claimed a top-K slot", Other)
	}
	if row, ok := m2.Get(Other); !ok || row.Requests != 1 {
		t.Fatalf("literal %q key not accounted in overflow: %+v ok=%v", Other, row, ok)
	}
}

// TestMeterIdleSlotReclaim checks that a full table is not first-come
// forever: a new key evicts a holder that has been idle for a full window
// (deterministically the least-busy one, ties by key), the evicted totals
// fold into "other", and busy holders are never evicted.
func TestMeterIdleSlotReclaim(t *testing.T) {
	clk := newFakeClock()
	m := NewMeter(Config{TopK: 2, Window: 60 * time.Second, Slots: 12, Now: clk.Now})
	m.Add("a", Sample{BytesIn: 3})
	m.Add("b", Sample{})
	m.Add("b", Sample{})

	// While both holders are in-window, a third key must not evict anyone.
	m.Add("c", Sample{})
	if _, ok := m.Get("a"); !ok {
		t.Fatal("in-window key a evicted")
	}
	if row, ok := m.Get(Other); !ok || row.Requests != 1 {
		t.Fatalf("busy-table overflow: %+v ok=%v, want 1 request", row, ok)
	}

	// A full window of silence idles both holders; the next fresh key must
	// reclaim the least-busy one ("a": 1 request vs b's 2) and its totals
	// must move to the overflow bucket.
	clk.Advance(2 * time.Minute)
	m.Add("d", Sample{})
	if _, ok := m.Get("a"); ok {
		t.Fatal("idle key a kept its slot over a fresh busy key")
	}
	if _, ok := m.Get("b"); !ok {
		t.Fatal("busier idle key b evicted before a")
	}
	if _, ok := m.Get("d"); !ok {
		t.Fatal("fresh key d did not claim the reclaimed slot")
	}
	other, ok := m.Get(Other)
	if !ok || other.Requests != 2 || other.BytesIn != 3 {
		t.Fatalf("overflow after reclaim: %+v ok=%v, want requests=2 bytes_in=3", other, ok)
	}
	if m.Keys() != 2 {
		t.Fatalf("tracked keys = %d, want 2", m.Keys())
	}

	// Global sums stay conserved across the eviction: 5 events accounted.
	var sum int64
	for _, r := range m.Snapshot() {
		sum += r.Requests
	}
	if sum != 5 {
		t.Fatalf("snapshot sums %d events, want 5", sum)
	}
}

// TestMeterWindowRolls drives the injectable clock through slot boundaries
// and checks the windowed count decays while totals persist.
func TestMeterWindowRolls(t *testing.T) {
	clk := newFakeClock()
	m := NewMeter(Config{Window: 60 * time.Second, Slots: 12, Now: clk.Now})
	for i := 0; i < 6; i++ {
		m.Add("t", Sample{})
		clk.Advance(5 * time.Second) // one slot per event
	}
	row, _ := m.Get("t")
	if row.WindowRequests != 6 || row.Requests != 6 {
		t.Fatalf("after burst: window=%d total=%d, want 6/6", row.WindowRequests, row.Requests)
	}
	if want := 6.0 / 60.0; row.RatePerSec != want {
		t.Fatalf("rate = %g, want %g", row.RatePerSec, want)
	}
	// Advance to one full window past the first event: exactly that first
	// event's slot rolls out.
	clk.Advance(30 * time.Second)
	row, _ = m.Get("t")
	if row.WindowRequests != 5 {
		t.Fatalf("one window after first event: window=%d, want 5", row.WindowRequests)
	}
	if row.Requests != 6 {
		t.Fatalf("totals must not decay: %d", row.Requests)
	}
	// Advance past the whole window: the windowed view drains to zero.
	clk.Advance(2 * time.Minute)
	row, _ = m.Get("t")
	if row.WindowRequests != 0 || row.RatePerSec != 0 {
		t.Fatalf("after idle window: window=%d rate=%g, want 0/0", row.WindowRequests, row.RatePerSec)
	}
	if row.Requests != 6 {
		t.Fatalf("totals must not decay: %d", row.Requests)
	}
}

// TestMeterSnapshotOrder checks busiest-first ordering with other pinned
// last even when it is the biggest bucket.
func TestMeterSnapshotOrder(t *testing.T) {
	m := NewMeter(Config{TopK: 2, Now: newFakeClock().Now})
	m.Add("a", Sample{})
	for i := 0; i < 3; i++ {
		m.Add("b", Sample{})
	}
	for i := 0; i < 9; i++ {
		m.Add("spill", Sample{}) // third key → other
	}
	rows := m.Snapshot()
	got := make([]string, len(rows))
	for i, r := range rows {
		got[i] = r.Key
	}
	want := []string{"b", "a", Other}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

// TestMeterConcurrent hammers one meter from many goroutines; run under
// -race this is the accounting path's data-race check.
func TestMeterConcurrent(t *testing.T) {
	m := NewMeter(Config{TopK: 8})
	var wg sync.WaitGroup
	const workers, per = 16, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Add(fmt.Sprintf("tenant-%d", (w+i)%12), Sample{BytesIn: 1})
				if i%10 == 0 {
					m.Snapshot()
					m.Keys()
				}
			}
		}(w)
	}
	wg.Wait()
	var sum int64
	for _, r := range m.Snapshot() {
		sum += r.Requests
	}
	if sum != workers*per {
		t.Fatalf("accounted %d events, want %d", sum, workers*per)
	}
}

func TestSanitizeLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain-id", "plain-id"},
		{`quote"inside`, `quote\"inside`},
		{`back\slash`, `back\\slash`},
		{"line\nbreak", `line\nbreak`},
		{"ctrl\x01\x7fchars", "ctrl__chars"},
		{"tabs\tstay_bounded", "tabs_stay_bounded"},
		{"unicode-✓", "unicode-✓"},
		{"", ""},
	}
	for _, c := range cases {
		if got := SanitizeLabel(c.in); got != c.want {
			t.Errorf("SanitizeLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	long := strings.Repeat("x", 5000)
	if got := SanitizeLabel(long); len(got) != maxLabelRunes {
		t.Errorf("long label not truncated: %d runes", len(got))
	}
}
