package bundling_test

// One benchmark per table and figure of the paper's evaluation (Sec. 6).
// Each bench regenerates its artifact on a laptop-scale corpus; run
//
//	go test -bench=. -benchmem
//
// and see cmd/bundlebench for paper-scale runs with rendered tables. The
// reported custom metrics carry the headline numbers of each artifact
// (coverage %, gain %, seconds) so that `go test -bench` output doubles as
// a compact reproduction record.

import (
	"sync"
	"testing"

	"bundling"
	"bundling/internal/config"
	"bundling/internal/experiments"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
	benchEnvErr  error
	sweepEnvOnce sync.Once
	sweepEnv     *experiments.Env
	sweepEnvErr  error
)

// env returns a shared bench-scale environment (600 users × ~150 items)
// used by the algorithm and scalability benches.
func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv, benchEnvErr = experiments.Setup(experiments.BenchScale(), experiments.DefaultLambda)
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnv
}

// smallEnv returns a shared small environment (200 users × ~60 items) for
// the figure sweeps, which run all seven methods at every parameter value.
func smallEnv(b *testing.B) *experiments.Env {
	b.Helper()
	sweepEnvOnce.Do(func() {
		sweepEnv, sweepEnvErr = experiments.Setup(experiments.SmallScale(), experiments.DefaultLambda)
	})
	if sweepEnvErr != nil {
		b.Fatal(sweepEnvErr)
	}
	return sweepEnv
}

// BenchmarkTable1Example regenerates the intro's worked example.
func BenchmarkTable1Example(b *testing.B) {
	var last *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.ComponentsRevenue, "components$")
	b.ReportMetric(last.PureRevenue, "pure$")
	b.ReportMetric(last.MixedRevenue, "mixed$")
}

// BenchmarkTable2LambdaSweep regenerates Table 2 (revenue coverage at
// different λ, optimal vs list pricing).
func BenchmarkTable2LambdaSweep(b *testing.B) {
	e := env(b)
	var last *experiments.Table2Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2(e, experiments.DefaultLambdas(), config.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Rows[1].OptimalCoverage, "optCov%@λ1.25")
	b.ReportMetric(last.Rows[1].ListCoverage, "listCov%@λ1.25")
}

// BenchmarkFigure2ThetaSweep regenerates Figure 2 (revenue coverage and
// gain vs the bundling coefficient θ) for all seven methods.
func BenchmarkFigure2ThetaSweep(b *testing.B) {
	e := smallEnv(b)
	thetas := []float64{-0.05, 0, 0.05, 0.1}
	var last *experiments.SweepResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure2(e, thetas, config.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	at0 := last.Points[1]
	b.ReportMetric(at0.Gain[experiments.MixedMatching], "mixedMatchGain%@θ0")
	b.ReportMetric(at0.Gain[experiments.MixedFreqItemset], "freqItemGain%@θ0")
	b.ReportMetric(last.Points[3].Gain[experiments.PureMatching], "pureMatchGain%@θ.1")
}

// BenchmarkFigure3GammaSweep regenerates Figure 3 (revenue vs stochastic
// price sensitivity γ), averaging realized revenue over ten runs.
func BenchmarkFigure3GammaSweep(b *testing.B) {
	e := smallEnv(b)
	gammas := []float64{0.5, 5, 1e6}
	var last *experiments.SweepResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure3(e, gammas, config.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Points[0].Coverage[experiments.Components], "cov%@γ0.5")
	b.ReportMetric(last.Points[2].Coverage[experiments.Components], "cov%@γstep")
}

// BenchmarkFigure4AlphaSweep regenerates Figure 4 (revenue vs adoption
// bias α).
func BenchmarkFigure4AlphaSweep(b *testing.B) {
	e := smallEnv(b)
	alphas := []float64{0.75, 1.0, 1.25}
	var last *experiments.SweepResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure4(e, alphas, config.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Points[0].Coverage[experiments.Components], "cov%@α0.75")
	b.ReportMetric(last.Points[2].Coverage[experiments.Components], "cov%@α1.25")
}

// BenchmarkFigure5SizeSweep regenerates Figure 5 (revenue vs max bundle
// size k).
func BenchmarkFigure5SizeSweep(b *testing.B) {
	e := smallEnv(b)
	sizes := []int{1, 2, 4, config.Unlimited}
	var last *experiments.SweepResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure5(e, sizes, config.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Points[1].Gain[experiments.MixedMatching], "gain%@k2")
	b.ReportMetric(last.Points[3].Gain[experiments.MixedMatching], "gain%@k∞")
}

// BenchmarkFigure6Tradeoff regenerates Figure 6 (revenue gain vs running
// time for the matching and greedy algorithms, pure and mixed).
func BenchmarkFigure6Tradeoff(b *testing.B) {
	e := env(b)
	var last *experiments.Figure6Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure6(e, config.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, s := range last.Series {
		if s.Method == experiments.MixedMatching {
			b.ReportMetric(float64(s.Iterations), "matchIters")
			b.ReportMetric(s.Points[len(s.Points)-1].Gain, "matchGain%")
		}
		if s.Method == experiments.MixedGreedy {
			b.ReportMetric(float64(s.Iterations), "greedyIters")
		}
	}
}

// BenchmarkFigure7Scalability regenerates Figure 7 (running time vs number
// of users and items).
func BenchmarkFigure7Scalability(b *testing.B) {
	e := env(b)
	var last *experiments.Figure7Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure7(e, []int{1, 2}, []int{e.DS.Items / 2, e.DS.Items}, config.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.UserSweep[0].Seconds[experiments.MixedMatching], "s@users×1")
	b.ReportMetric(last.UserSweep[1].Seconds[experiments.MixedMatching], "s@users×2")
}

// BenchmarkTable4WSPRevenue regenerates Table 4 (revenue coverage vs the
// optimal and greedy weighted-set-packing solvers on small item samples).
func BenchmarkTable4WSPRevenue(b *testing.B) {
	e := env(b)
	opts := experiments.WSPOptions{Sizes: []int{8, 10}, Samples: 3, MaxExactN: 12, Seed: 7, RequireSize3: false, MaxAttempts: 10}
	var last *experiments.WSPResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.WSP(e, opts, config.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	row := last.Rows[len(last.Rows)-1]
	b.ReportMetric(row.MatchingCov, "matchCov%")
	b.ReportMetric(row.OptimalCov, "optCov%")
	b.ReportMetric(row.GreedyWSPCov, "greedyWSPCov%")
}

// BenchmarkTable5WSPTime regenerates Table 5 (running time of the same
// comparison; enumeration of 2^N bundles dominates, as in the paper).
func BenchmarkTable5WSPTime(b *testing.B) {
	e := env(b)
	opts := experiments.WSPOptions{Sizes: []int{12}, Samples: 2, MaxExactN: 14, Seed: 9, RequireSize3: false, MaxAttempts: 6}
	var last *experiments.WSPResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.WSP(e, opts, config.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	row := last.Rows[0]
	b.ReportMetric(row.MatchingSec*1000, "matching-ms")
	b.ReportMetric(row.OptimalSec*1000, "optimal-ms")
	b.ReportMetric(row.EnumSeconds*1000, "enum-ms")
}

// BenchmarkTable6CaseStudy regenerates Table 6 (the three-item mixed
// bundling walk-through).
func BenchmarkTable6CaseStudy(b *testing.B) {
	e := env(b)
	var last *experiments.CaseStudyResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.CaseStudy(e, config.DefaultParams(), 5)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	var totalAdd float64
	for _, row := range last.Rows[3:] {
		if row.Selected {
			totalAdd += row.AddRevenue
		}
	}
	b.ReportMetric(totalAdd, "addRevenue$")
}

// --- Micro-benchmarks of the hot paths -----------------------------------

// BenchmarkSolveMatching measures the full matching-based algorithm on the
// bench corpus (the paper's recommended method).
func BenchmarkSolveMatching(b *testing.B) {
	e := env(b)
	opts := bundling.Options{Strategy: bundling.Mixed}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bundling.SolveMatching(e.W, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveGreedy measures the greedy algorithm on the same corpus.
func BenchmarkSolveGreedy(b *testing.B) {
	e := env(b)
	opts := bundling.Options{Strategy: bundling.Mixed}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bundling.SolveGreedy(e.W, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveComponents measures the pricing-only baseline — N optimal
// price searches over M consumers (the O(M·N) floor of every method).
func BenchmarkSolveComponents(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bundling.SolveComponents(e.W, bundling.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations regenerates the design-choice ablation table
// (DESIGN.md): pruning losslessness, bucketed-vs-exact sigmoid pricing,
// and the global matching step vs greedy merging.
func BenchmarkAblations(b *testing.B) {
	e := smallEnv(b)
	var last *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Ablations(e, config.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Rows[0].RevenueDeltaPct, "pruningΔrev%")
	b.ReportMetric(last.Rows[1].RevenueDeltaPct, "sigmoidΔrev%")
	b.ReportMetric(last.Rows[2].RevenueDeltaPct, "greedyΔrev%")
}
