// Package metrics implements the paper's evaluation measures (Sec. 6.1.2).
package metrics

// Coverage is the revenue-coverage metric: the fraction (in percent) of the
// total willingness to pay that a configuration's revenue captures. The
// aggregate WTP is the upper bound of any revenue, so 100% is "perfect".
func Coverage(revenue, totalWTP float64) float64 {
	if totalWTP <= 0 {
		return 0
	}
	return revenue / totalWTP * 100
}

// Gain is the revenue-gain metric: the fractional improvement (in percent)
// of a configuration's revenue over the Components baseline.
func Gain(revenue, componentsRevenue float64) float64 {
	if componentsRevenue <= 0 {
		return 0
	}
	return (revenue - componentsRevenue) / componentsRevenue * 100
}
