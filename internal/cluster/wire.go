// Package cluster implements distributed stripe-sharded solving: a
// coordinator/worker subsystem that partitions a corpus's consumer stripes
// across remote workers and evaluates bundles by scatter/gather.
//
// The unit of distribution is the stripe span (wtp.SpanDoc): a contiguous
// range of the corpus shard's stripes, shipped to the bundleworker daemon
// that owns it — as a binary codec envelope by default (internal/codec;
// roughly a third of the JSON bytes), negotiated via Content-Type so workers
// keep accepting the legacy JSON feed too. Workers serve three per-span reductions — bundle vectors,
// cached-vector unions, and pricing aggregates (max + histogram) — with the
// exact per-stripe kernels the single-machine shard uses, so per-span
// results concatenated (or summed) in stripe order reproduce the local
// Solver's arithmetic.
//
// The coordinator side is cluster.Solver, which implements the same
// Solve/Evaluate/Stats surface as bundling.Solver so the bundled daemon can
// serve a worker fleet transparently (the -workers flag). Every RPC carries
// the corpus snapshot version: a worker holding no span or a stale span
// answers ErrSpan, and the coordinator re-feeds it and retries — a stale
// worker is re-fed, never silently wrong. A span whose primary stays
// unreachable is retried on a replica worker and, failing that, computed
// from the coordinator's local span store, so results degrade in locality,
// never in correctness.
//
// Coordinator restarts need no protocol support: a session restored from
// the bundled daemon's corpus store behaves exactly like a fresh upload —
// it draws a new session nonce and feeds its spans eagerly (or lazily via
// the re-feed path), so spans a worker kept from before the restart can
// never satisfy the restored session's version checks.
package cluster

import (
	"errors"

	"bundling/internal/wtp"
)

// ErrSpan marks a span-level rejection that a re-feed repairs: the worker
// holds no span for the corpus, or a span of a different snapshot version.
var ErrSpan = errors.New("cluster: span missing or stale")

// AssignRequest ships a stripe span to a worker, registering (or replacing)
// it under the corpus key.
type AssignRequest struct {
	Corpus string       `json:"corpus"`
	Span   *wtp.SpanDoc `json:"span"`
}

// DeltaRequest rebases a worker's span replica instead of re-shipping it:
// the worker resolves the span registered under BaseCorpus, checks it holds
// snapshot FromVersion (missing or stale → ErrSpan, and the coordinator
// falls back to a full span feed), applies the span-scoped cells, and
// registers the patched replica under the request's corpus key stamped
// ToVersion. An empty cell list is a cheap alias feed: the new session key
// adopts the untouched base span without re-shipping its postings.
type DeltaRequest struct {
	BaseCorpus  string     `json:"base_corpus"`
	FromVersion uint64     `json:"from_version"`
	ToVersion   uint64     `json:"to_version"`
	Cells       []wtp.Cell `json:"cells,omitempty"`
}

// VectorRequest asks a worker for its span's share of a bundle's
// interested-consumer vector (Eq. 1).
type VectorRequest struct {
	Version uint64  `json:"version"` // corpus snapshot version the caller serves
	Items   []int   `json:"items"`
	Theta   float64 `json:"theta"`
}

// VectorResponse carries a per-span consumer vector: ascending consumer ids
// within the span and the aligned WTP values.
type VectorResponse struct {
	IDs  []int     `json:"ids"`
	Vals []float64 `json:"vals"`
}

// UnionRequest asks a worker to merge the span-restricted slices of two
// cached consumer vectors (the incremental candidate-merge fast path).
type UnionRequest struct {
	Version uint64    `json:"version"`
	AIDs    []int     `json:"a_ids"`
	AVals   []float64 `json:"a_vals"`
	SA      float64   `json:"sa"`
	BIDs    []int     `json:"b_ids"`
	BVals   []float64 `json:"b_vals"`
	SB      float64   `json:"sb"`
}

// StatsRequest asks for a span's pricing pre-aggregate: the maximum bundle
// WTP (phase one of the two-round aggregate pricing).
type StatsRequest struct {
	Version uint64  `json:"version"`
	Items   []int   `json:"items"`
	Theta   float64 `json:"theta"`
}

// StatsResponse is a span's pricing pre-aggregate; Max reduces by max.
type StatsResponse struct {
	Max float64 `json:"max"` // maximum Eq. 1 bundle WTP in the span
}

// HistRequest asks for a span's pricing histogram against the global
// maximum WTP (phase two; see pricing.Histogram).
type HistRequest struct {
	Version uint64  `json:"version"`
	Items   []int   `json:"items"`
	Theta   float64 `json:"theta"`
	MaxW    float64 `json:"max_w"`  // global maximum bundle WTP
	Alpha   float64 `json:"alpha"`  // adoption bias α of the pricing model
	Levels  int     `json:"levels"` // price levels T
}

// HistResponse carries a span's pricing histogram partial; both arrays have
// Levels+1 entries and reduce by element-wise addition.
type HistResponse struct {
	Counts []float64 `json:"counts"`
	Sums   []float64 `json:"sums"`
}

// SpanInfo describes one span a worker holds, for health reporting.
// Requests counts the reduction RPCs served from the span since it was
// assigned — the per-span load signal behind the fleet view (and the
// observed-load input hot-span replication will consume).
type SpanInfo struct {
	Corpus      string `json:"corpus"`
	Version     uint64 `json:"version"`
	StartStripe int    `json:"start_stripe"`
	EndStripe   int    `json:"end_stripe"`
	LoConsumer  int    `json:"lo_consumer"`
	HiConsumer  int    `json:"hi_consumer"`
	Items       int    `json:"items"`
	Entries     int    `json:"entries"`
	Requests    int64  `json:"requests,omitempty"`
}

// WorkerHealth is the bundleworker /healthz payload: liveness plus every
// assigned span with its corpus version, so operators (and the coordinator's
// readiness gate) can see exactly which shard of the corpus a worker serves.
// Ops carries the worker's per-operation request totals and
// StaleRejections its span-version rejections, so one probe returns the
// worker's whole load picture — what the coordinator's /debug/fleet joins.
type WorkerHealth struct {
	Status          string           `json:"status"`
	UptimeSeconds   float64          `json:"uptime_seconds"`
	Spans           []SpanInfo       `json:"spans"`
	Ops             map[string]int64 `json:"ops,omitempty"`
	StaleRejections int64            `json:"stale_rejections,omitempty"`
}

// ErrorResponse carries any non-2xx worker outcome.
type ErrorResponse struct {
	Error string `json:"error"`
}
