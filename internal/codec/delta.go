package codec

import (
	"fmt"

	"bundling/internal/wtp"
)

// Delta is the columnar wire form of a corpus mutation batch: the binary body
// of PATCH /v1/corpora/{id} and of the coordinator→worker span-delta feed.
// The cells travel as parallel columns (consumer ids, item ids, values) in
// application order — order matters, later cells override earlier ones — plus
// a sparse ascending list of cell indices that are deletes. A delta is tiny
// compared to the corpus it mutates, which is the point of the format: a
// one-cell change ships a few dozen bytes.
type Delta struct {
	// ID is the target corpus key, interned in the envelope. HTTP surfaces
	// name the corpus in the path and may leave it empty; the cluster feed
	// sets it to the span key the delta rebases.
	ID string
	// IfGeneration is the optimistic-concurrency guard: the store generation
	// the sender believes is live. 0 means unconditional.
	IfGeneration uint64
	// FromVersion and ToVersion are the span snapshot nonces of the cluster
	// feed: the worker applies the delta only if its replica holds
	// FromVersion, and stamps the patched replica ToVersion. Both are 0 on
	// the HTTP mutation surface.
	FromVersion uint64
	ToVersion   uint64
	// Consumers, Items and Values are the cell columns, index-aligned.
	Consumers []int32
	Items     []int32
	Values    []float64
	// Deletes lists the indices of cells that are deletes, strictly
	// ascending; a deleted cell's value is 0 on the wire.
	Deletes []int32
}

// DeltaFromCells builds the wire form of a cell batch.
func DeltaFromCells(id string, ifGeneration uint64, cells []wtp.Cell) *Delta {
	d := &Delta{
		ID:           id,
		IfGeneration: ifGeneration,
		Consumers:    make([]int32, len(cells)),
		Items:        make([]int32, len(cells)),
		Values:       make([]float64, len(cells)),
	}
	for k, c := range cells {
		d.Consumers[k] = int32(c.Consumer)
		d.Items[k] = int32(c.Item)
		if c.Delete {
			d.Deletes = append(d.Deletes, int32(k))
		} else {
			d.Values[k] = c.Value
		}
	}
	return d
}

// Cells converts the columns back into the cell batch, in wire order.
func (d *Delta) Cells() []wtp.Cell {
	cells := make([]wtp.Cell, len(d.Consumers))
	for k := range cells {
		cells[k] = wtp.Cell{Consumer: int(d.Consumers[k]), Item: int(d.Items[k]), Value: d.Values[k]}
	}
	for _, k := range d.Deletes {
		cells[k].Value = 0
		cells[k].Delete = true
	}
	return cells
}

// EncodeDelta renders the delta as one codec envelope.
func EncodeDelta(d *Delta) []byte {
	dst := appendHeader(make([]byte, 0, hdrLen+40+len(d.ID)+2*len(d.Consumers)+2*len(d.Items)+9*len(d.Values)+2*len(d.Deletes)), kindDelta)
	dst = appendStringTable(dst, []string{d.ID})
	dst = appendDim(dst, 0) // corpus key ref
	dst = appendFixed64(dst, d.IfGeneration)
	dst = appendFixed64(dst, d.FromVersion)
	dst = appendFixed64(dst, d.ToVersion)
	dst = appendInt32Column(dst, d.Consumers)
	dst = appendInt32Column(dst, d.Items)
	dst = appendFloatColumn(dst, d.Values)
	dst = appendInt32Column(dst, d.Deletes)
	return dst
}

// DecodeDelta parses one delta envelope. Structural invariants are enforced
// here — aligned column lengths, non-negative ids, strictly ascending delete
// indices in range, zero wire values on deleted cells — so a decoded delta
// always converts cleanly via Cells; range checks against a concrete matrix
// stay downstream, exactly as on the JSON path.
func DecodeDelta(buf []byte) (*Delta, error) {
	r := &reader{buf: buf}
	if err := r.header(kindDelta); err != nil {
		return nil, err
	}
	table, err := r.stringTable()
	if err != nil {
		return nil, err
	}
	d := &Delta{}
	if d.ID, err = r.stringRef(table); err != nil {
		return nil, err
	}
	if d.IfGeneration, err = r.fixed64(); err != nil {
		return nil, err
	}
	if d.FromVersion, err = r.fixed64(); err != nil {
		return nil, err
	}
	if d.ToVersion, err = r.fixed64(); err != nil {
		return nil, err
	}
	if d.Consumers, err = r.int32Column(); err != nil {
		return nil, err
	}
	if d.Items, err = r.int32Column(); err != nil {
		return nil, err
	}
	if d.Values, err = r.floatColumn(); err != nil {
		return nil, err
	}
	if d.Deletes, err = r.int32Column(); err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	if len(d.Items) != len(d.Consumers) || len(d.Values) != len(d.Consumers) {
		return nil, fmt.Errorf("codec: delta columns misaligned: %d consumers, %d items, %d values", len(d.Consumers), len(d.Items), len(d.Values))
	}
	for k, c := range d.Consumers {
		if c < 0 || d.Items[k] < 0 {
			return nil, fmt.Errorf("codec: delta cell %d has negative coordinate (%d,%d)", k, c, d.Items[k])
		}
	}
	prev := int32(-1)
	for _, k := range d.Deletes {
		if k <= prev || int(k) >= len(d.Consumers) {
			return nil, fmt.Errorf("codec: delete index %d outside ascending range of %d cells", k, len(d.Consumers))
		}
		if d.Values[k] != 0 {
			return nil, fmt.Errorf("codec: deleted cell %d carries value %g", k, d.Values[k])
		}
		prev = k
	}
	return d, nil
}
