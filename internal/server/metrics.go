package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bundling/internal/obs"
)

// latencyBuckets are the cumulative histogram upper bounds (seconds) of the
// request-duration metrics, exponential from 1ms to 10s.
var latencyBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// histogram is a fixed-bucket cumulative latency histogram, safe for
// concurrent observation.
type histogram struct {
	counts  []atomic.Int64 // one per bucket, plus a final +Inf slot
	sumNano atomic.Int64
	total   atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(latencyBuckets)+1)}
}

// observe records one request duration.
func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, s)
	h.counts[i].Add(1)
	h.sumNano.Add(int64(d))
	h.total.Add(1)
}

// Metrics is the reusable operational-metrics core shared by the bundled
// server and the bundleworker daemon: uptime, per-operation request
// counters and latency histograms, and an error counter, rendered in the
// Prometheus text exposition under the given name prefix. All state is
// atomic; one Metrics serves any number of goroutines.
type Metrics struct {
	prefix string
	start  time.Time

	requests sync.Map // op string → *atomic.Int64
	errors   atomic.Int64

	latency sync.Map // op string → *histogram
	stages  sync.Map // stage string → *histogram
}

// NewMetrics returns a metrics core whose exposition names start with
// prefix (e.g. "bundled" → bundled_requests_total).
func NewMetrics(prefix string) *Metrics {
	return &Metrics{prefix: prefix, start: time.Now()}
}

// Uptime returns the time since the core was created.
func (m *Metrics) Uptime() time.Duration { return time.Since(m.start) }

// opCounter returns the request counter for op, creating it on first use.
func (m *Metrics) opCounter(op string) *atomic.Int64 {
	if c, ok := m.requests.Load(op); ok {
		return c.(*atomic.Int64)
	}
	c, _ := m.requests.LoadOrStore(op, new(atomic.Int64))
	return c.(*atomic.Int64)
}

// Observe records one completed request of the given op.
func (m *Metrics) Observe(op string, d time.Duration) {
	m.opCounter(op).Add(1)
	h, ok := m.latency.Load(op)
	if !ok {
		h, _ = m.latency.LoadOrStore(op, newHistogram())
	}
	h.(*histogram).observe(d)
}

// CountError records one request that ended in an error response.
func (m *Metrics) CountError() { m.errors.Add(1) }

// Counts snapshots the per-operation request counters — the worker's
// health report embeds them so the coordinator's fleet view can show each
// worker's op mix without a second scrape.
func (m *Metrics) Counts() map[string]int64 {
	out := map[string]int64{}
	m.requests.Range(func(k, v any) bool {
		out[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	return out
}

// ObserveStage records one per-stage duration from the request tracer
// (queue wait, index build, solve, per-worker RPC, persist, …), exposed as
// the <prefix>_stage_seconds histogram family. The signature matches the
// tracer's OnSpanEnd hook, so every span feeds it — including spans past a
// trace's record cap.
func (m *Metrics) ObserveStage(stage string, d time.Duration) {
	h, ok := m.stages.Load(stage)
	if !ok {
		h, _ = m.stages.LoadOrStore(stage, newHistogram())
	}
	h.(*histogram).observe(d)
}

// GaugeRow and CounterRow are the extra exposition rows an embedding server
// contributes to Render (session gauges, cache counters, per-worker breaker
// gauges, …). Names must carry the server's own prefix. Labels, if set, is
// a pre-rendered Prometheus label list without braces (`worker="w0"`);
// consecutive rows sharing a Name emit one HELP/TYPE header.
type (
	GaugeRow struct {
		Name, Help, Labels string
		Value              float64
	}
	CounterRow struct {
		Name, Help, Labels string
		Value              int64
	}
)

// Render writes the Prometheus text exposition: uptime, the extra gauges,
// per-op request counters, the error counter, the extra counters, and the
// per-op latency histograms.
func (m *Metrics) Render(w io.Writer, gauges []GaugeRow, counters []CounterRow) {
	fmt.Fprintf(w, "# HELP %s_uptime_seconds Seconds since the server started.\n", m.prefix)
	fmt.Fprintf(w, "# TYPE %s_uptime_seconds gauge\n", m.prefix)
	fmt.Fprintf(w, "%s_uptime_seconds %g\n", m.prefix, m.Uptime().Seconds())
	rt := obs.ReadRuntime()
	gauges = append([]GaugeRow{
		{Name: m.prefix + "_goroutines", Help: "Live goroutines in the process.", Value: float64(rt.Goroutines)},
		{Name: m.prefix + "_heap_alloc_bytes", Help: "Bytes of allocated heap objects.", Value: float64(rt.HeapAlloc)},
		{Name: m.prefix + "_heap_sys_bytes", Help: "Bytes of heap obtained from the OS.", Value: float64(rt.HeapSys)},
		{Name: m.prefix + "_gc_pause_seconds", Help: "Cumulative stop-the-world GC pause time (monotonically increasing).", Value: rt.GCPauseTotal.Seconds()},
	}, gauges...)
	counters = append([]CounterRow{
		{Name: m.prefix + "_gc_runs_total", Help: "Completed garbage-collection cycles.", Value: int64(rt.NumGC)},
	}, counters...)
	prev := ""
	for _, g := range gauges {
		if g.Name != prev {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", g.Name, g.Help, g.Name)
			prev = g.Name
		}
		if g.Labels != "" {
			fmt.Fprintf(w, "%s{%s} %g\n", g.Name, g.Labels, g.Value)
		} else {
			fmt.Fprintf(w, "%s %g\n", g.Name, g.Value)
		}
	}

	fmt.Fprintf(w, "# HELP %s_requests_total Completed requests by operation.\n", m.prefix)
	fmt.Fprintf(w, "# TYPE %s_requests_total counter\n", m.prefix)
	for _, op := range m.ops(&m.requests) {
		c, _ := m.requests.Load(op)
		fmt.Fprintf(w, "%s_requests_total{op=%q} %d\n", m.prefix, op, c.(*atomic.Int64).Load())
	}
	all := append([]CounterRow{
		{Name: m.prefix + "_errors_total", Help: "Requests that ended in an error response.", Value: m.errors.Load()},
	}, counters...)
	prev = ""
	for _, c := range all {
		if c.Name != prev {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", c.Name, c.Help, c.Name)
			prev = c.Name
		}
		if c.Labels != "" {
			fmt.Fprintf(w, "%s{%s} %d\n", c.Name, c.Labels, c.Value)
		} else {
			fmt.Fprintf(w, "%s %d\n", c.Name, c.Value)
		}
	}

	m.renderHistogramFamily(w, &m.latency, "request_duration_seconds", "op", "Request latency by operation.")
	m.renderHistogramFamily(w, &m.stages, "stage_seconds", "stage", "Per-stage latency from the request tracer (queue, index, solve, rpc, persist, …).")
}

// renderHistogramFamily writes one labeled histogram family from a
// sync.Map of label value → *histogram; empty families emit nothing.
func (m *Metrics) renderHistogramFamily(w io.Writer, sm *sync.Map, name, label, help string) {
	keys := m.ops(sm)
	if len(keys) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s_%s %s\n", m.prefix, name, help)
	fmt.Fprintf(w, "# TYPE %s_%s histogram\n", m.prefix, name)
	for _, key := range keys {
		hv, _ := sm.Load(key)
		h := hv.(*histogram)
		var cum int64
		for i, le := range latencyBuckets {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "%s_%s_bucket{%s=%q,le=%q} %d\n", m.prefix, name, label, key, trimFloat(le), cum)
		}
		cum += h.counts[len(latencyBuckets)].Load()
		fmt.Fprintf(w, "%s_%s_bucket{%s=%q,le=\"+Inf\"} %d\n", m.prefix, name, label, key, cum)
		fmt.Fprintf(w, "%s_%s_sum{%s=%q} %g\n", m.prefix, name, label, key, time.Duration(h.sumNano.Load()).Seconds())
		fmt.Fprintf(w, "%s_%s_count{%s=%q} %d\n", m.prefix, name, label, key, h.total.Load())
	}
}

// ops returns a sync.Map's string keys sorted, for stable rendering.
func (m *Metrics) ops(sm *sync.Map) []string {
	var out []string
	sm.Range(func(k, _ any) bool { out = append(out, k.(string)); return true })
	sort.Strings(out)
	return out
}

// metrics wraps the shared core with the bundled server's own counters.
type metrics struct {
	*Metrics

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	batches          atomic.Int64 // batched passes processed
	batchedRequests  atomic.Int64 // evaluate requests that went through a batch
	coalescedInBatch atomic.Int64 // requests that shared another request's execution

	uploads   atomic.Int64
	evictions atomic.Int64

	authFailures atomic.Int64 // 401s: missing or unknown API keys
	quotaRPS     atomic.Int64 // 429s from the request-rate quota
	quotaCorpora atomic.Int64 // 429s from the per-tenant corpus-count quota
	quotaEntries atomic.Int64 // 429s from the per-tenant entry quota
	restores     atomic.Int64 // sessions restored from the corpus store
	storeErrors  atomic.Int64 // persistence operations that failed

	shedRequests     atomic.Int64 // 503s from the solve/evaluate admission gate
	deadlineExceeded atomic.Int64 // 504s: runs that outlived their execution budget
	handlerPanics    atomic.Int64 // handler panics converted to 500 by the recoverer
}

func newMetrics() *metrics { return &metrics{Metrics: NewMetrics("bundled")} }

// render writes the server's full exposition through the shared core.
// persisted is the corpus store's live record count (negative when the
// daemon runs without persistence, which omits the gauge). extraG and
// extraC are the Config.ExtraMetrics rows (fleet breaker state, …).
func (m *metrics) render(w io.Writer, sessions, cacheEntries, persisted int, extraG []GaugeRow, extraC []CounterRow) {
	gauges := []GaugeRow{
		{Name: "bundled_sessions", Help: "Live corpus sessions in the registry.", Value: float64(sessions)},
		{Name: "bundled_result_cache_entries", Help: "Entries in the result cache.", Value: float64(cacheEntries)},
	}
	if persisted >= 0 {
		gauges = append(gauges, GaugeRow{Name: "bundled_persisted_corpora", Help: "Live corpora in the persistence store.", Value: float64(persisted)})
	}
	gauges = append(gauges, extraG...)
	counters := []CounterRow{
		{Name: "bundled_cache_hits_total", Help: "Result-cache hits.", Value: m.cacheHits.Load()},
		{Name: "bundled_cache_misses_total", Help: "Result-cache misses.", Value: m.cacheMisses.Load()},
		{Name: "bundled_batches_total", Help: "Micro-batch passes processed.", Value: m.batches.Load()},
		{Name: "bundled_batched_requests_total", Help: "Evaluate requests drained through micro-batches.", Value: m.batchedRequests.Load()},
		{Name: "bundled_coalesced_requests_total", Help: "Evaluate requests that shared an identical concurrent request's execution.", Value: m.coalescedInBatch.Load()},
		{Name: "bundled_uploads_total", Help: "Corpus uploads (session creations and replacements).", Value: m.uploads.Load()},
		{Name: "bundled_session_evictions_total", Help: "Sessions evicted by the registry's LRU bound.", Value: m.evictions.Load()},
		{Name: "bundled_auth_failures_total", Help: "Requests rejected with 401 for a missing or unknown API key.", Value: m.authFailures.Load()},
		{Name: "bundled_quota_rps_rejections_total", Help: "Requests rejected with 429 by the per-tenant request-rate quota.", Value: m.quotaRPS.Load()},
		{Name: "bundled_quota_corpora_rejections_total", Help: "Uploads rejected with 429 by the per-tenant corpus-count quota.", Value: m.quotaCorpora.Load()},
		{Name: "bundled_quota_entries_rejections_total", Help: "Uploads rejected with 429 by the per-tenant entry quota.", Value: m.quotaEntries.Load()},
		{Name: "bundled_restored_sessions_total", Help: "Sessions restored from the corpus store (at startup or by lazy reload of an evicted corpus).", Value: m.restores.Load()},
		{Name: "bundled_store_errors_total", Help: "Corpus persistence operations that failed.", Value: m.storeErrors.Load()},
		{Name: "bundled_shed_requests_total", Help: "Requests shed with 503 by the solve/evaluate admission gate.", Value: m.shedRequests.Load()},
		{Name: "bundled_deadline_exceeded_total", Help: "Runs that outlived their execution budget and returned 504.", Value: m.deadlineExceeded.Load()},
		{Name: "bundled_handler_panics_total", Help: "Handler panics converted to 500 responses.", Value: m.handlerPanics.Load()},
	}
	counters = append(counters, extraC...)
	m.Render(w, gauges, counters)
}

// trimFloat renders a bucket bound the way Prometheus clients do.
func trimFloat(f float64) string { return fmt.Sprintf("%g", f) }
