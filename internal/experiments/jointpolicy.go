package experiments

import (
	"fmt"
	"math/rand"

	"bundling/internal/config"
	"bundling/internal/pricing"
	"bundling/internal/tabular"
)

// JointPolicyResult quantifies the paper's deferred future work: how much
// revenue the incremental mixed-pricing policy (components priced first,
// bundle conditioned on them) leaves on the table versus jointly optimizing
// all three prices. Evaluated on single two-item offers sampled from the
// corpus, because the O(G³·m) joint search is far too slow for the
// algorithms' inner loop — which is exactly why the paper adopts the
// incremental policy.
type JointPolicyResult struct {
	Pairs              int
	MeanIncremental    float64 // mean offer revenue under the incremental policy
	MeanJoint          float64 // mean offer revenue under joint pricing
	MeanUpliftPct      float64 // mean per-pair uplift (%)
	PairsWithUplift    int     // pairs where joint strictly improved
	MaxUpliftPct       float64
	GridLevelsPerPrice int
}

// JointPolicy samples item pairs sharing at least one interested consumer
// and prices each pair's mixed offer both ways.
func JointPolicy(env *Env, pairs int, params config.Params, seed int64) (*JointPolicyResult, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if pairs < 1 {
		pairs = 1
	}
	pr, err := pricing.New(params.Model, pricing.DefaultLevels)
	if err != nil {
		return nil, err
	}
	const grid = 30
	rng := rand.New(rand.NewSource(seed))
	w := env.W
	res := &JointPolicyResult{GridLevelsPerPrice: grid}
	attempts := 0
	for res.Pairs < pairs && attempts < pairs*200 {
		attempts++
		i, j := rng.Intn(w.Items()), rng.Intn(w.Items())
		if i == j || !w.CommonInterest(i, j) {
			continue
		}
		// Aligned vectors over the union audience.
		ids, wb := w.BundleVector([]int{i, j}, params.Theta, nil, nil)
		ids1, v1 := w.BundleVector([]int{i}, 0, nil, nil)
		ids2, v2 := w.BundleVector([]int{j}, 0, nil, nil)
		w1 := scatter(ids, ids1, v1)
		w2 := scatter(ids, ids2, v2)
		off := pricing.JointOffer{W1: w1, W2: w2, WB: wb}

		// Incremental policy: standalone component prices, bundle price
		// conditioned within the Guiltinan window; revenue of the full
		// offer evaluated under the same joint choice model so the two
		// policies are compared apples-to-apples.
		q1 := pr.PriceOptimal(v1)
		q2 := pr.PriceOptimal(v2)
		if q1.Price <= 0 || q2.Price <= 0 {
			continue
		}
		lo := q1.Price
		if q2.Price > lo {
			lo = q2.Price
		}
		hi := q1.Price + q2.Price
		inc := pricing.JointQuote{P1: q1.Price, P2: q2.Price}
		// Components-only outcome (no bundle on offer): price the bundle
		// out of reach by evaluating at the window edge, which no consumer
		// strictly prefers; equivalently the offer without a viable bundle.
		for k := 1; k <= pricing.DefaultLevels; k++ {
			pb := lo + (hi-lo)*float64(k)/float64(pricing.DefaultLevels+1)
			if rev := pr.EvaluateJoint(off, q1.Price, q2.Price, pb); rev > inc.Revenue {
				inc.PB = pb
				inc.Revenue = rev
			}
		}
		joint := pr.PriceMixedJoint(off, grid, inc)
		if inc.Revenue <= 0 {
			continue
		}
		res.Pairs++
		res.MeanIncremental += inc.Revenue
		res.MeanJoint += joint.Revenue
		uplift := (joint.Revenue - inc.Revenue) / inc.Revenue * 100
		res.MeanUpliftPct += uplift
		if uplift > 1e-9 {
			res.PairsWithUplift++
		}
		if uplift > res.MaxUpliftPct {
			res.MaxUpliftPct = uplift
		}
	}
	if res.Pairs == 0 {
		return nil, fmt.Errorf("experiments: no viable pairs for the joint-policy study")
	}
	f := float64(res.Pairs)
	res.MeanIncremental /= f
	res.MeanJoint /= f
	res.MeanUpliftPct /= f
	return res, nil
}

// Render prints the study summary.
func (r *JointPolicyResult) Render() string {
	t := tabular.New("Extension: incremental vs joint mixed pricing (paper's future work)",
		"pairs", "mean incremental", "mean joint", "mean uplift", "pairs improved", "max uplift")
	t.AddRow(
		fmt.Sprintf("%d", r.Pairs),
		fmt.Sprintf("%.2f", r.MeanIncremental),
		fmt.Sprintf("%.2f", r.MeanJoint),
		fmt.Sprintf("%+.2f%%", r.MeanUpliftPct),
		fmt.Sprintf("%d/%d", r.PairsWithUplift, r.Pairs),
		fmt.Sprintf("%+.2f%%", r.MaxUpliftPct),
	)
	return t.String()
}
