module bundling

go 1.24
