package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bundling"
)

// Store is the corpus persistence layer of the serving tier: an
// append-on-upload snapshot store under one data directory. Every uploaded
// corpus is written as a versioned record (the MatrixDoc plus its session
// metadata) and tracked in a manifest, so a restarted daemon restores its
// session registry exactly — same corpora, same owners, same upload
// generations. Generations matter beyond bookkeeping: result-cache keys and
// cluster span identities embed them, so continuing the counter across
// restarts is what keeps a post-restart re-upload from ever aliasing a
// pre-restart result.
//
// Layout under the data directory:
//
//	manifest.json            live generation + last generation per corpus ID
//	corpora/<name>.g<N>.json one record per (corpus, generation)
//
// Records are written to a temp file and renamed into place, and the
// manifest is rewritten the same way, so a crash mid-upload leaves either
// the previous corpus generation or the new one — never a torn record. A
// background compactor deletes records superseded by a newer generation or
// by a delete; until it runs they are dead weight on disk, never served.
//
// A Store is safe for concurrent use.
type Store struct {
	dir string

	mu  sync.Mutex
	man manifest

	compactCh chan struct{}
	closed    chan struct{}
	wg        sync.WaitGroup
}

// manifest is the store's durable index.
type manifest struct {
	// Live maps corpus ID to the generation currently serving. IDs absent
	// from Live (but present in Generations) are deleted corpora.
	Live map[string]int `json:"live"`
	// Generations maps corpus ID to the last upload generation ever
	// assigned, surviving deletes — the registry seeds its version counters
	// from it so a re-created ID continues its sequence.
	Generations map[string]int `json:"generations"`
}

// CorpusRecord is one persisted corpus snapshot: the uploaded matrix plus
// everything the registry needs to rebuild the session it backed.
type CorpusRecord struct {
	ID         string              `json:"id"`
	Tenant     string              `json:"tenant,omitempty"`
	Generation int                 `json:"generation"`
	CreatedAt  time.Time           `json:"created_at"`
	Options    OptionsDoc          `json:"options"`
	Matrix     *bundling.MatrixDoc `json:"matrix"`
}

// OpenStore opens (creating if needed) the snapshot store under dir and
// starts its background compactor. Callers must Close it to flush the final
// compaction pass.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "corpora"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:       dir,
		man:       manifest{Live: map[string]int{}, Generations: map[string]int{}},
		compactCh: make(chan struct{}, 1),
		closed:    make(chan struct{}),
	}
	buf, err := os.ReadFile(s.manifestPath())
	switch {
	case err == nil:
		if err := json.Unmarshal(buf, &s.man); err != nil {
			return nil, fmt.Errorf("store: manifest: %w", err)
		}
		if s.man.Live == nil {
			s.man.Live = map[string]int{}
		}
		if s.man.Generations == nil {
			s.man.Generations = map[string]int{}
		}
	case errors.Is(err, os.ErrNotExist):
		// fresh store
	default:
		return nil, fmt.Errorf("store: manifest: %w", err)
	}
	s.wg.Add(1)
	go s.compactor()
	s.kickCompact()
	return s, nil
}

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// Close stops the background compactor and runs one final synchronous
// compaction pass — the graceful flush the daemon performs on shutdown.
func (s *Store) Close() error {
	close(s.closed)
	s.wg.Wait()
	return s.compactNow()
}

// Put durably records one uploaded corpus: the record file first, then the
// manifest pointing at it. On return the corpus survives a crash.
func (s *Store) Put(rec CorpusRecord) error {
	if rec.Matrix == nil {
		return fmt.Errorf("store: record %q has no matrix", rec.ID)
	}
	buf, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode %q: %w", rec.ID, err)
	}
	if err := writeAtomic(s.recordPath(rec.ID, rec.Generation), buf); err != nil {
		return fmt.Errorf("store: write %q: %w", rec.ID, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Live only ever advances: two concurrent re-uploads persist outside
	// the registry lock, so the older generation's Put may land second and
	// must not roll the manifest back behind what memory serves.
	if rec.Generation > s.man.Live[rec.ID] {
		s.man.Live[rec.ID] = rec.Generation
	}
	if rec.Generation > s.man.Generations[rec.ID] {
		s.man.Generations[rec.ID] = rec.Generation
	}
	if err := s.saveManifestLocked(); err != nil {
		return err
	}
	s.kickCompact()
	return nil
}

// LiveRecord loads the live record of one corpus ID, if any — the recovery
// source when a failed persist forces the serving layer to fall back to
// the generation the disk still guarantees.
func (s *Store) LiveRecord(id string) (CorpusRecord, bool) {
	s.mu.Lock()
	gen, ok := s.man.Live[id]
	s.mu.Unlock()
	if !ok {
		return CorpusRecord{}, false
	}
	buf, err := os.ReadFile(s.recordPath(id, gen))
	if err != nil {
		return CorpusRecord{}, false
	}
	var rec CorpusRecord
	if err := json.Unmarshal(buf, &rec); err != nil || rec.ID != id {
		return CorpusRecord{}, false
	}
	return rec, true
}

// Delete durably removes a corpus from the manifest (its record files are
// reclaimed by compaction). The ID's generation counter is retained so a
// later re-upload continues the sequence.
func (s *Store) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.man.Live[id]; !ok {
		return nil
	}
	delete(s.man.Live, id)
	if err := s.saveManifestLocked(); err != nil {
		return err
	}
	s.kickCompact()
	return nil
}

// Restore loads every live corpus record, sorted by ID. A record that fails
// to load is skipped and reported in the joined error; the good records are
// still returned, so one corrupt file degrades to a missing corpus instead
// of a daemon that cannot boot.
func (s *Store) Restore() ([]CorpusRecord, error) {
	s.mu.Lock()
	ids := make([]string, 0, len(s.man.Live))
	gens := make(map[string]int, len(s.man.Live))
	for id, gen := range s.man.Live {
		ids = append(ids, id)
		gens[id] = gen
	}
	s.mu.Unlock()
	sort.Strings(ids)
	var (
		recs []CorpusRecord
		errs []error
	)
	for _, id := range ids {
		buf, err := os.ReadFile(s.recordPath(id, gens[id]))
		if err != nil {
			errs = append(errs, fmt.Errorf("store: restore %q: %w", id, err))
			continue
		}
		var rec CorpusRecord
		if err := json.Unmarshal(buf, &rec); err != nil {
			errs = append(errs, fmt.Errorf("store: restore %q: %w", id, err))
			continue
		}
		if rec.ID != id || rec.Generation != gens[id] {
			errs = append(errs, fmt.Errorf("store: restore %q: record names %q generation %d, manifest expects generation %d",
				id, rec.ID, rec.Generation, gens[id]))
			continue
		}
		recs = append(recs, rec)
	}
	return recs, errors.Join(errs...)
}

// Generations snapshots the last-assigned upload generation per corpus ID,
// including deleted IDs — the registry's version-counter seed.
func (s *Store) Generations() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.man.Generations))
	for id, gen := range s.man.Generations {
		out[id] = gen
	}
	return out
}

// Len returns the number of live (persisted, non-deleted) corpora.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.man.Live)
}

// --- internals --------------------------------------------------------------

func (s *Store) manifestPath() string { return filepath.Join(s.dir, "manifest.json") }

// recordPath names a (corpus, generation) record file. The name keeps a
// sanitized prefix of the ID for operator readability and appends an FNV
// hash of the full ID so two IDs that sanitize identically cannot collide.
func (s *Store) recordPath(id string, gen int) string {
	return filepath.Join(s.dir, "corpora", fmt.Sprintf("%s.g%d.json", recordName(id), gen))
}

// recordName renders a corpus ID filesystem-safe.
func recordName(id string) string {
	var b strings.Builder
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
		if b.Len() >= 48 {
			break
		}
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	return fmt.Sprintf("%s.%016x", b.String(), h.Sum64())
}

// saveManifestLocked rewrites the manifest atomically; callers hold s.mu.
func (s *Store) saveManifestLocked() error {
	buf, err := json.MarshalIndent(s.man, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode manifest: %w", err)
	}
	if err := writeAtomic(s.manifestPath(), buf); err != nil {
		return fmt.Errorf("store: write manifest: %w", err)
	}
	return nil
}

// writeAtomic writes buf to path via a temp file + rename, so readers (and
// crashes) see either the old content or the new, never a torn write.
func writeAtomic(path string, buf []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(buf)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if err := errors.Join(werr, serr, cerr); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return nil
}

// kickCompact schedules a compaction pass without blocking.
func (s *Store) kickCompact() {
	select {
	case s.compactCh <- struct{}{}:
	default:
	}
}

// compactor runs compaction passes in the background until Close.
func (s *Store) compactor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.compactCh:
			_ = s.compactNow()
		case <-s.closed:
			return
		}
	}
}

// compactNow deletes every record file superseded by a newer generation or
// orphaned by a delete. It decides per file from the generation in the file
// name, never by "not in the manifest snapshot": an upload writes its record
// before the manifest, so a snapshot-membership rule would race a concurrent
// Put and delete a record the manifest is about to point at. Comparing
// generations is monotonic — a stale snapshot can only under-delete, and the
// next pass finishes the job. Unrecognized files are left alone.
func (s *Store) compactNow() error {
	s.mu.Lock()
	liveGen := make(map[string]int, len(s.man.Live))
	for id, gen := range s.man.Live {
		liveGen[recordName(id)] = gen
	}
	lastGen := make(map[string]int, len(s.man.Generations))
	for id, gen := range s.man.Generations {
		lastGen[recordName(id)] = gen
	}
	s.mu.Unlock()
	entries, err := os.ReadDir(filepath.Join(s.dir, "corpora"))
	if err != nil {
		return err
	}
	var errs []error
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		key, gen, ok := parseRecordName(name)
		if !ok {
			continue
		}
		var dead bool
		if live, isLive := liveGen[key]; isLive {
			dead = gen < live // superseded by a newer upload
		} else if last, known := lastGen[key]; known {
			dead = gen <= last // deleted ID; a concurrent re-upload is > last
		}
		if !dead {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, "corpora", name)); err != nil && !errors.Is(err, os.ErrNotExist) {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// parseRecordName splits a record file name into its ID key (the sanitized
// prefix plus hash, i.e. recordName(id)) and generation.
func parseRecordName(name string) (key string, gen int, ok bool) {
	if !strings.HasSuffix(name, ".json") {
		return "", 0, false
	}
	base := strings.TrimSuffix(name, ".json")
	i := strings.LastIndex(base, ".g")
	if i < 0 {
		return "", 0, false
	}
	n, err := strconv.Atoi(base[i+2:])
	if err != nil || n < 1 {
		return "", 0, false
	}
	return base[:i], n, true
}
