package adoption

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1, 0); err == nil {
		t.Error("expected error for γ = 0")
	}
	if _, err := New(-1, 1, 0); err == nil {
		t.Error("expected error for γ < 0")
	}
	if _, err := New(1, 0, 0); err == nil {
		t.Error("expected error for α = 0")
	}
	if _, err := New(1, 1, 0); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestStepSemantics(t *testing.T) {
	m := Step()
	if !m.Deterministic() {
		t.Fatal("Step() should be deterministic")
	}
	cases := []struct {
		price, wtp float64
		want       float64
	}{
		{5, 10, 1},  // wtp above price
		{10, 10, 1}, // equality adopts (the ε convention)
		{10.1, 10, 0},
		{0.01, 0, 0}, // zero WTP never adopts a positive price
	}
	for _, c := range cases {
		if got := m.Probability(c.price, c.wtp); got != c.want {
			t.Errorf("P(adopt | p=%g, w=%g) = %g, want %g", c.price, c.wtp, got, c.want)
		}
	}
}

func TestSigmoidMidpoint(t *testing.T) {
	m, err := New(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Probability(10, 10); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P at w=p should be 0.5, got %g", got)
	}
	// Monotone: decreasing in price, increasing in wtp.
	if m.Probability(9, 10) <= m.Probability(11, 10) {
		t.Error("probability should decrease with price")
	}
	if m.Probability(10, 11) <= m.Probability(10, 9) {
		t.Error("probability should increase with wtp")
	}
}

func TestGammaSteepness(t *testing.T) {
	lowG, _ := New(0.1, 1, 0)
	highG, _ := New(10, 1, 0)
	// Above the midpoint the steeper curve gives higher probability.
	if highG.Probability(8, 10) <= lowG.Probability(8, 10) {
		t.Error("steeper γ should be closer to 1 above midpoint")
	}
	// Below the midpoint the steeper curve gives lower probability.
	if highG.Probability(12, 10) >= lowG.Probability(12, 10) {
		t.Error("steeper γ should be closer to 0 below midpoint")
	}
}

func TestAlphaBias(t *testing.T) {
	unbiased, _ := New(1, 1, 0)
	favor, _ := New(1, 1.25, 0)
	against, _ := New(1, 0.75, 0)
	p := unbiased.Probability(10, 10)
	if favor.Probability(10, 10) <= p {
		t.Error("α > 1 should raise adoption probability")
	}
	if against.Probability(10, 10) >= p {
		t.Error("α < 1 should lower adoption probability")
	}
}

func TestNumericalStability(t *testing.T) {
	m, _ := New(100, 1, 0)
	if got := m.Probability(1e6, 0); got != 0 {
		t.Errorf("extreme price should give 0, got %g", got)
	}
	if got := m.Probability(0, 1e6); got != 1 {
		t.Errorf("extreme wtp should give 1, got %g", got)
	}
	if math.IsNaN(m.Probability(1e308, 1e308)) {
		t.Error("NaN probability")
	}
}

func TestExpectedAdopters(t *testing.T) {
	m := Step()
	wtps := []float64{5, 10, 15, 20}
	if got := m.ExpectedAdopters(10, wtps); got != 3 {
		t.Errorf("ExpectedAdopters(10) = %g, want 3", got)
	}
	if got := m.ExpectedAdopters(25, wtps); got != 0 {
		t.Errorf("ExpectedAdopters(25) = %g, want 0", got)
	}
	sig, _ := New(1, 1, 0)
	got := sig.ExpectedAdopters(10, wtps)
	var want float64
	for _, w := range wtps {
		want += sig.Probability(10, w)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("sigmoid ExpectedAdopters = %g, want %g", got, want)
	}
}

func TestAdoptsDeterministic(t *testing.T) {
	m := Step()
	rng := rand.New(rand.NewSource(1))
	if !m.Adopts(5, 10, rng) {
		t.Error("should adopt when wtp > price")
	}
	if m.Adopts(15, 10, rng) {
		t.Error("should not adopt when wtp < price")
	}
}

func TestSampleAdoptersConverges(t *testing.T) {
	m, _ := New(1, 1, 0)
	rng := rand.New(rand.NewSource(7))
	wtps := make([]float64, 2000)
	for i := range wtps {
		wtps[i] = 10
	}
	// P(adopt | 10, 10) = 0.5 → expect ≈ 1000 adopters.
	n := m.SampleAdopters(10, wtps, rng)
	if n < 900 || n > 1100 {
		t.Errorf("sampled adopters = %d, want ≈ 1000", n)
	}
}

func TestStepGammaThresholdShortCircuit(t *testing.T) {
	m, _ := New(StepGammaThreshold, 1, DefaultEpsilon)
	if !m.Deterministic() {
		t.Error("γ at threshold should be treated as a step function")
	}
	m2, _ := New(StepGammaThreshold/2, 1, DefaultEpsilon)
	if m2.Deterministic() {
		t.Error("γ below threshold should stay sigmoid")
	}
}

// TestQuickProbabilityBounds: probabilities always lie in [0,1] and are
// monotone in wtp.
func TestQuickProbabilityBounds(t *testing.T) {
	f := func(gRaw, aRaw, price, w1, w2 float64) bool {
		g := math.Abs(gRaw)
		if g == 0 || math.IsNaN(g) || math.IsInf(g, 0) {
			g = 1
		}
		a := math.Mod(math.Abs(aRaw), 2) + 0.1
		m, err := New(g, a, DefaultEpsilon)
		if err != nil {
			return false
		}
		p := math.Abs(price)
		lo, hi := math.Abs(w1), math.Abs(w2)
		if lo > hi {
			lo, hi = hi, lo
		}
		pl, ph := m.Probability(p, lo), m.Probability(p, hi)
		return pl >= 0 && pl <= 1 && ph >= 0 && ph <= 1 && pl <= ph+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSigmoidApproachesStep: as γ grows the sigmoid converges to the
// step function away from the w = p boundary.
func TestQuickSigmoidApproachesStep(t *testing.T) {
	f := func(priceRaw, wtpRaw float64) bool {
		price := math.Mod(math.Abs(priceRaw), 100) + 1
		wtp := math.Mod(math.Abs(wtpRaw), 100) + 1
		if math.Abs(price-wtp) < 0.5 {
			return true // skip the boundary
		}
		m, _ := New(9999, 1, DefaultEpsilon) // just below the short-circuit
		got := m.Probability(price, wtp)
		step := Step().Probability(price, wtp)
		return math.Abs(got-step) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
