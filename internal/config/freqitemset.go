package config

import (
	"fmt"
	"sort"
	"time"

	"bundling/internal/fim"
	"bundling/internal/pricing"
	"bundling/internal/wtp"
)

// defaultMaxItemsets caps mined maximal itemsets when the caller does not;
// a safety valve against dense transaction data blowing up the search.
const defaultMaxItemsets = 50000

// FreqItemsetOptions configures the frequent-itemset bundling baseline.
type FreqItemsetOptions struct {
	// MinSupport is the relative minimum support (fraction of consumers).
	// The paper found 0.1% to produce the highest revenue.
	MinSupport float64
	// MaxResults caps the number of mined maximal itemsets (0 = unlimited).
	MaxResults int
}

// DefaultFreqItemsetOptions returns the paper's tuned setting (Sec. 6.1.3).
func DefaultFreqItemsetOptions() FreqItemsetOptions {
	return FreqItemsetOptions{MinSupport: 0.001}
}

// FreqItemset runs the "Frequently Bought Together" baseline (Sec. 6.1.3):
// treat each consumer as a transaction of the items she has non-zero WTP
// for, mine maximal frequent itemsets (our MAFIA substitute), then greedily
// select the itemset with the highest absolute revenue gain over its
// components, discarding overlapping itemsets, until all items are covered;
// remaining items are sold individually. Individual items are admitted as
// candidates regardless of support, favoring the baseline as the paper does.
// Works for both pure and mixed bundling (params.Strategy). One-shot form;
// sessions use Solver.Solve(FreqItemsetAlgorithm(opts)).
func FreqItemset(w *wtp.Matrix, params Params, opts FreqItemsetOptions) (*Configuration, error) {
	s, err := NewSolver(w, params)
	if err != nil {
		return nil, err
	}
	return s.Solve(FreqItemsetAlgorithm(opts))
}

// freqItemset is the baseline on a run engine. The consumers' transactions
// come from the session cache, so repeated solves re-mine but never
// re-extract.
func (e *engine) freqItemset(opts FreqItemsetOptions) (*Configuration, error) {
	if opts.MinSupport < 0 || opts.MinSupport > 1 {
		return nil, fmt.Errorf("config: minimum support %g outside [0,1]", opts.MinSupport)
	}
	start := time.Now()
	txs := e.s.transactions()
	minSup := int(opts.MinSupport * float64(e.w.Consumers()))
	if minSup < 2 {
		// An itemset bought by a single consumer is not "frequently bought
		// together"; the floor also keeps mining tractable on tiny corpora.
		minSup = 2
	}
	maxSize := 0
	if e.params.K != Unlimited {
		maxSize = e.params.K
	}
	maxResults := opts.MaxResults
	if maxResults == 0 {
		maxResults = defaultMaxItemsets
	}
	itemsets, err := fim.MineMaximal(e.w.Items(), txs, fim.Config{
		MinSupport: minSup,
		MaxSize:    maxSize,
		MaxResults: maxResults,
	})
	if err != nil {
		return nil, err
	}

	// The session's priced singletons are both the fallback offers and the
	// "components" that a candidate itemset must beat.
	singles := e.singletons()

	// Evaluate each multi-item candidate's absolute gain over components.
	type candidate struct {
		items []int
		node  *node
		gain  float64
	}
	var cands []candidate
	for _, is := range itemsets {
		if err := e.canceled(); err != nil {
			return nil, err
		}
		if len(is.Items) < 2 {
			continue
		}
		n, gain := e.evalItemset(is.Items, singles)
		if n != nil && gain > minGain {
			cands = append(cands, candidate{items: is.Items, node: n, gain: gain})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].gain != cands[b].gain {
			return cands[a].gain > cands[b].gain
		}
		return len(cands[a].items) < len(cands[b].items)
	})
	covered := make([]bool, e.w.Items())
	var chosen []*node
	iterations := 0
	for _, c := range cands {
		overlap := false
		for _, i := range c.items {
			if covered[i] {
				overlap = true
				break
			}
		}
		if overlap {
			continue
		}
		for _, i := range c.items {
			covered[i] = true
		}
		chosen = append(chosen, c.node)
		iterations++
	}
	// Remaining items sold individually.
	for i, n := range singles {
		if !covered[i] {
			chosen = append(chosen, n)
		}
	}
	total := 0.0
	for _, n := range chosen {
		total += n.revenue
	}
	trace := []IterationStat{{Iteration: iterations, Revenue: total, Elapsed: time.Since(start), Bundles: len(chosen)}}
	return e.finish(chosen, iterations, trace), nil
}

// evalItemset prices a mined itemset as a bundle against its singleton
// components: standalone pricing for pure bundling, the incremental offer
// (bundle + all singletons at frozen prices) for mixed bundling. The
// returned gain is in seller-utility units, like every merge gain.
//
// The candidate is evaluated entirely in the run's mergeScratch — the
// combined component state accumulates via aligned pointer walks over each
// singleton's cached vectors — and a node is materialized only when the
// itemset survives the gain filter, so losing itemsets cost no heap churn.
func (e *engine) evalItemset(items []int, singles []*node) (*node, float64) {
	sc := e.ctx.sc
	sc.items = append(sc.items[:0], items...)
	sort.Ints(sc.items)
	sc.ids, sc.vals = e.bundleVector(sc.items, e.params.Theta, sc.ids, sc.vals)
	obj := e.objective(sc.items)
	compUtil := 0.0
	for _, i := range items {
		compUtil += singles[i].util
	}
	switch e.params.Strategy {
	case Pure:
		uq := e.pr.PriceUtilityIn(e.ctx.psc, sc.vals, obj)
		gain := uq.Utility - compUtil
		if gain <= minGain {
			return nil, gain
		}
		n := materialize(sc)
		n.quote = uq.Quote
		n.unitC = obj.UnitCost
		n.revenue, n.profit, n.surplus, n.util = uq.Revenue, uq.Profit, uq.Surplus, uq.Utility
		return n, gain
	default: // Mixed
		// Combined current state of the singleton components (disjoint, so
		// payments and surpluses add), plus the paper's price window.
		m := len(sc.ids)
		sc.pay = grow(sc.pay, m)
		sc.surp = grow(sc.surp, m)
		sc.cost = grow(sc.cost, m)
		sc.esur = grow(sc.esur, m)
		for j := 0; j < m; j++ {
			sc.pay[j], sc.surp[j], sc.cost[j], sc.esur[j] = 0, 0, 0, 0
		}
		var lo, hi float64
		for _, i := range items {
			s := singles[i]
			// s.ids ⊆ sc.ids (every consumer interested in a component is
			// interested in the bundle), so a single forward walk aligns.
			j := 0
			for k, id := range s.ids {
				for j < m && sc.ids[j] < id {
					j++
				}
				if j >= m || sc.ids[j] != id {
					continue
				}
				sc.pay[j] += s.pay[k]
				sc.surp[j] += s.surp[k]
				sc.cost[j] += s.cost[k]
				sc.esur[j] += s.esur[k]
			}
			if s.quote.Price > lo {
				lo = s.quote.Price
			}
			hi += s.quote.Price
		}
		mq := e.pr.PriceMixedIn(e.ctx.psc, pricing.MixedOffer{
			CurPay: sc.pay[:m], CurSurplus: sc.surp[:m], CurCost: sc.cost[:m], CurESurplus: sc.esur[:m],
			WB: sc.vals, Lo: lo, Hi: hi, BundleCost: obj.UnitCost,
			Obj: pricing.Objective{ProfitWeight: e.params.ProfitWeight, UnitCost: obj.UnitCost},
		})
		delta := mq.Utility - mq.BaselineUtility
		if !mq.Feasible || delta <= minGain {
			return nil, 0
		}
		// The itemset survives: materialize and commit the new state, every
		// consumer re-resolving at the chosen price.
		n := materialize(sc)
		n.unitC = obj.UnitCost
		n.pay = make([]float64, m)
		n.surp = make([]float64, m)
		n.cost = make([]float64, m)
		n.esur = make([]float64, m)
		alpha := e.params.Model.Alpha()
		var pay, cost, sur float64
		for j := range n.ids {
			pj, prob, switched := e.pr.ResolveSwitch(n.vals[j], sc.pay[j], sc.surp[j], mq.Price)
			n.pay[j] = pj
			if switched {
				n.cost[j] = n.unitC * prob
				if s := alpha*n.vals[j] - mq.Price; s > 0 {
					n.surp[j] = s
					n.esur[j] = s * prob
				}
			} else {
				n.surp[j] = sc.surp[j]
				n.cost[j] = sc.cost[j]
				n.esur[j] = sc.esur[j]
			}
			pay += pj
			cost += n.cost[j]
			sur += n.esur[j]
		}
		n.revenue = pay
		n.profit = pay - cost
		n.surplus = sur
		n.util = e.params.ProfitWeight*n.profit + (1-e.params.ProfitWeight)*n.surplus
		n.quote = pricing.Quote{Price: mq.Price, Revenue: mq.Revenue - mq.Baseline, Adopters: mq.Adopters}
		for _, i := range items {
			n.comps = append(n.comps, singles[i].asBundle())
		}
		return n, delta
	}
}
