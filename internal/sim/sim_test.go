package sim

import (
	"math"
	"math/rand"
	"testing"

	"bundling/internal/adoption"
	"bundling/internal/config"
	"bundling/internal/wtp"
)

func randomMatrix(t testing.TB, consumers, items int, seed int64) *wtp.Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := wtp.MustNew(consumers, items)
	for u := 0; u < consumers; u++ {
		for i := 0; i < items; i++ {
			if rng.Float64() < 0.4 {
				w.MustSet(u, i, 2+rng.Float64()*20)
			}
		}
	}
	return w
}

// TestPureStepMatchesExpectedRevenue: for a pure configuration (disjoint
// offers) under the deterministic step model, the simulator must realize
// exactly the configuration's expected revenue.
func TestPureStepMatchesExpectedRevenue(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		w := randomMatrix(t, 50, 10, seed)
		p := config.DefaultParams()
		p.Theta = 0.05
		cfg, err := config.MatchingBased(w, p)
		if err != nil {
			t.Fatal(err)
		}
		out := Run(w, cfg, p.Theta, p.Model, rand.New(rand.NewSource(1)))
		// Tolerance: the pricing grid may land a price within float noise
		// of a consumer's WTP; choice and pricing agree to ~1e-6.
		if math.Abs(out.Revenue-cfg.Revenue) > 1e-5*math.Max(1, cfg.Revenue) {
			t.Errorf("seed %d: simulated %g, expected %g", seed, out.Revenue, cfg.Revenue)
		}
	}
}

func TestComponentsSimulation(t *testing.T) {
	w := wtp.MustNew(3, 2)
	w.MustSet(0, 0, 12)
	w.MustSet(1, 0, 8)
	w.MustSet(2, 1, 11)
	p := config.DefaultParams()
	p.PriceLevels = 2000
	cfg, err := config.Components(w, p)
	if err != nil {
		t.Fatal(err)
	}
	out := Run(w, cfg, 0, p.Model, rand.New(rand.NewSource(1)))
	if math.Abs(out.Revenue-cfg.Revenue) > 0.05 {
		t.Errorf("simulated %g, expected %g", out.Revenue, cfg.Revenue)
	}
	if out.Transactions != 3 {
		t.Errorf("transactions = %d, want 3", out.Transactions)
	}
	if out.Surplus < 0 {
		t.Errorf("negative surplus %g", out.Surplus)
	}
}

func TestNoDoublePurchaseOfItem(t *testing.T) {
	// One consumer, one item offered both alone and inside a bundle; the
	// simulator must never sell the item twice.
	w := wtp.MustNew(1, 2)
	w.MustSet(0, 0, 10)
	w.MustSet(0, 1, 10)
	cfg := &config.Configuration{
		Strategy: config.Mixed,
		Bundles:  []config.Bundle{{Items: []int{0, 1}, Price: 15, Revenue: 15}},
		Components: []config.Bundle{
			{Items: []int{0}, Price: 8, Revenue: 8},
			{Items: []int{1}, Price: 8, Revenue: 8},
		},
	}
	out := Run(w, cfg, 0, adoption.Step(), rand.New(rand.NewSource(1)))
	// Best surplus: bundle at 15 (surplus 5) beats either single (2) and
	// both singles (4). Exactly one transaction.
	if out.Transactions != 1 || math.Abs(out.Revenue-15) > 1e-9 {
		t.Errorf("got %+v, want single bundle purchase at 15", out)
	}
}

func TestGreedyChoiceFallsBackToComponents(t *testing.T) {
	// Bundle too expensive → consumer buys the two components.
	w := wtp.MustNew(1, 2)
	w.MustSet(0, 0, 10)
	w.MustSet(0, 1, 10)
	cfg := &config.Configuration{
		Strategy: config.Mixed,
		Bundles:  []config.Bundle{{Items: []int{0, 1}, Price: 25}},
		Components: []config.Bundle{
			{Items: []int{0}, Price: 7},
			{Items: []int{1}, Price: 7},
		},
	}
	out := Run(w, cfg, 0, adoption.Step(), rand.New(rand.NewSource(1)))
	if out.Transactions != 2 || math.Abs(out.Revenue-14) > 1e-9 {
		t.Errorf("got %+v, want two component purchases at 7 each", out)
	}
}

func TestStochasticAverageConverges(t *testing.T) {
	w := wtp.MustNew(400, 1)
	for u := 0; u < 400; u++ {
		w.MustSet(u, 0, 10)
	}
	model, err := adoption.New(1, 1, adoption.DefaultEpsilon)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &config.Configuration{
		Strategy: config.Pure,
		Bundles:  []config.Bundle{{Items: []int{0}, Price: 10}},
	}
	// P(adopt | 10, 10) = 0.5 → expected revenue 400·0.5·10 = 2000.
	out := Average(w, cfg, 0, model, 50, 3)
	if out.Revenue < 1800 || out.Revenue > 2200 {
		t.Errorf("average revenue = %g, want ≈ 2000", out.Revenue)
	}
}

func TestThetaAppliedOnlyToBundles(t *testing.T) {
	w := wtp.MustNew(1, 2)
	w.MustSet(0, 0, 10)
	cfg := &config.Configuration{
		Strategy: config.Pure,
		Bundles: []config.Bundle{
			{Items: []int{0}, Price: 10},
			{Items: []int{1}, Price: 1},
		},
	}
	// θ = -0.5 must not discount the singleton: consumer still buys at 10.
	out := Run(w, cfg, -0.5, adoption.Step(), rand.New(rand.NewSource(1)))
	if math.Abs(out.Revenue-10) > 1e-9 {
		t.Errorf("revenue = %g, want 10 (θ must not apply to singletons)", out.Revenue)
	}
}

func TestAverageRunsFloor(t *testing.T) {
	w := wtp.MustNew(1, 1)
	w.MustSet(0, 0, 5)
	cfg := &config.Configuration{Bundles: []config.Bundle{{Items: []int{0}, Price: 5}}}
	out := Average(w, cfg, 0, adoption.Step(), 0, 1) // runs < 1 coerced to 1
	if math.Abs(out.Revenue-5) > 1e-9 {
		t.Errorf("revenue = %g, want 5", out.Revenue)
	}
}
