package pricing

import (
	"fmt"
	"sort"
)

// PriceList is an explicit, ascending list of allowed price levels — the
// paper's "real-life scenario [where] the seller would have a price list of
// T price levels" with *arbitrary* spacing (Sec. 4.2), e.g. psychological
// price points ($4.99, $9.99, …). Consumers are assigned to levels by
// binary search, as the paper prescribes for non-equi-distanced lists.
type PriceList struct {
	levels []float64
}

// NewPriceList validates and sorts the levels. Levels must be positive;
// duplicates are removed.
func NewPriceList(levels []float64) (*PriceList, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("pricing: empty price list")
	}
	sorted := append([]float64(nil), levels...)
	sort.Float64s(sorted)
	out := sorted[:0]
	var prev float64
	for _, l := range sorted {
		if l <= 0 {
			return nil, fmt.Errorf("pricing: non-positive price level %g", l)
		}
		if len(out) == 0 || l != prev {
			out = append(out, l)
			prev = l
		}
	}
	return &PriceList{levels: out}, nil
}

// Levels returns the ascending price levels. The slice must not be
// modified.
func (pl *PriceList) Levels() []float64 { return pl.levels }

// LevelFor returns the index of the highest level ≤ value (the bucket a
// consumer with that willingness to pay falls into), or -1 if value is
// below every level. Binary search, O(log T).
func (pl *PriceList) LevelFor(value float64) int {
	// sort.SearchFloat64s returns the first index with levels[i] >= value;
	// we want the last index with levels[i] <= value.
	i := sort.SearchFloat64s(pl.levels, value)
	if i < len(pl.levels) && pl.levels[i] == value {
		return i
	}
	return i - 1
}

// PriceFromList returns the revenue-maximizing price restricted to the
// price list, for a bundle whose interested consumers have the given WTP
// values. Works for both deterministic and stochastic adoption models.
func (p *Pricer) PriceFromList(wtps []float64, pl *PriceList) Quote {
	if pl == nil || len(pl.levels) == 0 {
		return Quote{}
	}
	alpha := p.model.Alpha()
	if p.model.Deterministic() {
		// Histogram over list buckets + suffix counts, O(m log T + T).
		counts := make([]int, len(pl.levels))
		for _, w := range wtps {
			if idx := pl.LevelFor(alpha*w + bucketSlack); idx >= 0 {
				counts[idx]++
			}
		}
		best := Quote{}
		adopters := 0
		for t := len(pl.levels) - 1; t >= 0; t-- {
			adopters += counts[t]
			if rev := pl.levels[t] * float64(adopters); rev > best.Revenue {
				best = Quote{Price: pl.levels[t], Revenue: rev, Adopters: float64(adopters)}
			}
		}
		return best
	}
	best := Quote{}
	for _, price := range pl.levels {
		f := p.model.ExpectedAdopters(price, wtps)
		if rev := price * f; rev > best.Revenue {
			best = Quote{Price: price, Revenue: rev, Adopters: f}
		}
	}
	return best
}

// CentsList builds the "smallest atomic unit" price list the paper
// mentions: every cent from one cent up to max. Mostly useful in tests —
// it makes the grid-pricing error bounds exact.
func CentsList(max float64) (*PriceList, error) {
	if max <= 0 {
		return nil, fmt.Errorf("pricing: non-positive max %g", max)
	}
	n := int(max * 100)
	if n < 1 {
		n = 1
	}
	levels := make([]float64, n)
	for i := range levels {
		levels[i] = float64(i+1) / 100
	}
	return NewPriceList(levels)
}

// DemandPoint is one point of a bundle's demand/revenue curve.
type DemandPoint struct {
	Price    float64
	Adopters float64 // expected adopters at Price
	Revenue  float64 // Price × Adopters
}

// DemandCurve evaluates the expected demand and revenue at every one of T
// equi-distanced price levels spanning (0, max WTP] — the raw series behind
// the pricing decision, exposed for inspection and dashboards.
func (p *Pricer) DemandCurve(wtps []float64) []DemandPoint {
	maxW := 0.0
	for _, w := range wtps {
		if w > maxW {
			maxW = w
		}
	}
	if maxW <= 0 {
		return nil
	}
	alpha := p.model.Alpha()
	out := make([]DemandPoint, 0, p.levels)
	for t := 1; t <= p.levels; t++ {
		price := alpha * maxW * float64(t) / float64(p.levels)
		f := p.model.ExpectedAdopters(price, wtps)
		out = append(out, DemandPoint{Price: price, Adopters: f, Revenue: price * f})
	}
	return out
}
