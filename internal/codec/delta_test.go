package codec_test

import (
	"reflect"
	"testing"

	"bundling/internal/codec"
	"bundling/internal/wtp"
)

func TestDeltaRoundTrip(t *testing.T) {
	cells := []wtp.Cell{
		{Consumer: 5, Item: 2, Value: 12.75},
		{Consumer: 0, Item: 0, Delete: true},
		{Consumer: 5, Item: 2, Value: 3.5}, // duplicate coordinate, order preserved
		{Consumer: 9, Item: 1, Value: 0},   // explicit zero set, not a delete
	}
	d := codec.DeltaFromCells("shop", 7, cells)
	d.FromVersion = 1<<63 | 42
	d.ToVersion = 1<<63 | 43
	got, err := codec.DecodeDelta(codec.EncodeDelta(d))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, d)
	}
	if !reflect.DeepEqual(got.Cells(), cells) {
		t.Fatalf("cells mismatch:\n got %+v\nwant %+v", got.Cells(), cells)
	}
}

func TestDecodeDeltaRejectsCorruptShapes(t *testing.T) {
	base := codec.DeltaFromCells("c", 0, []wtp.Cell{
		{Consumer: 1, Item: 0, Value: 2},
		{Consumer: 3, Item: 1, Delete: true},
	})
	cases := map[string]*codec.Delta{
		"misaligned items":      {Consumers: []int32{1, 2}, Items: []int32{0}, Values: []float64{1, 2}},
		"misaligned values":     {Consumers: []int32{1}, Items: []int32{0}, Values: []float64{}},
		"negative consumer":     {Consumers: []int32{-1}, Items: []int32{0}, Values: []float64{1}},
		"negative item":         {Consumers: []int32{1}, Items: []int32{-2}, Values: []float64{1}},
		"delete out of range":   {Consumers: []int32{1}, Items: []int32{0}, Values: []float64{0}, Deletes: []int32{1}},
		"delete descending":     {Consumers: []int32{1, 2}, Items: []int32{0, 0}, Values: []float64{0, 0}, Deletes: []int32{1, 0}},
		"delete carrying value": {Consumers: []int32{1}, Items: []int32{0}, Values: []float64{5}, Deletes: []int32{0}},
	}
	for name, d := range cases {
		if _, err := codec.DecodeDelta(codec.EncodeDelta(d)); err == nil {
			t.Errorf("%s: decoder accepted corrupt delta", name)
		}
	}
	// Truncations of a valid envelope must error, never panic.
	buf := codec.EncodeDelta(base)
	for n := 0; n < len(buf); n++ {
		if _, err := codec.DecodeDelta(buf[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
}
