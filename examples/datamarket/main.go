// Datamarket demonstrates the paper's non-monetary utility scenario
// (Sec. 1): a Data-as-a-Service provider groups correlated datasets —
// e.g. a hotel list with its review database — into mixed bundles. Utility
// here is "user satisfaction" mined from usage intensity rather than
// dollars; the framework only requires utility to be additive.
//
// The example also exercises the stochastic adoption model: analysts don't
// follow a hard step function, so adoption is modeled with a soft sigmoid
// (γ = 2) and a slight bias toward adoption (α = 1.1) from institutional
// licensing.
//
// Run with:
//
//	go run ./examples/datamarket
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bundling"
)

// catalog of datasets on the marketplace; related datasets share a domain.
var catalog = []struct {
	name   string
	domain string
}{
	{"hotels-directory", "travel"},
	{"hotel-reviews", "travel"},
	{"flight-schedules", "travel"},
	{"restaurant-listings", "dining"},
	{"restaurant-reviews", "dining"},
	{"grocery-prices", "dining"},
	{"equities-eod", "finance"},
	{"equities-fundamentals", "finance"},
	{"fx-rates", "finance"},
	{"weather-history", "geo"},
	{"postal-boundaries", "geo"},
	{"traffic-sensors", "geo"},
}

func main() {
	const analysts = 600
	rng := rand.New(rand.NewSource(11))

	// Mine "willingness to pay" from usage intensity: analysts working a
	// domain query its datasets heavily. Utility units are satisfaction
	// points, not dollars — the framework is agnostic.
	w := bundling.NewMatrix(analysts, len(catalog))
	domains := map[string][]int{}
	for i, d := range catalog {
		domains[d.domain] = append(domains[d.domain], i)
	}
	domainNames := []string{"travel", "dining", "finance", "geo"}
	for a := 0; a < analysts; a++ {
		home := domainNames[rng.Intn(len(domainNames))]
		for i := range catalog {
			usage := rng.Float64() * 1.5
			if catalog[i].domain == home {
				usage += 3 + rng.Float64()*9
			}
			if usage > 1 {
				w.MustSet(a, i, usage)
			}
		}
	}

	// Correlated data products complement each other: a review database is
	// worth more alongside the directory it annotates → θ > 0.
	opts := bundling.Options{
		Strategy:      bundling.Mixed,
		Theta:         0.15,
		Gamma:         2,   // soft adoption decisions
		Alpha:         1.1, // institutional bias toward licensing
		MaxBundleSize: 4,   // product management wants focused bundles
	}

	single, err := bundling.SolveComponents(w, opts)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := bundling.Configure(w, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-dataset licensing utility: %.0f points (%.1f%% coverage)\n",
		single.Revenue, bundling.Coverage(single, w))
	fmt.Printf("mixed data bundles utility:    %.0f points (%.1f%% coverage)\n\n",
		cfg.Revenue, bundling.Coverage(cfg, w))

	fmt.Println("recommended data products:")
	for _, b := range cfg.Bundles {
		if len(b.Items) == 1 {
			continue
		}
		fmt.Printf("  bundle at %.1f points:", b.Price)
		for _, i := range b.Items {
			fmt.Printf(" %s", catalog[i].name)
		}
		fmt.Println()
	}
	fmt.Println("\nstill licensed individually:")
	for _, c := range cfg.Components {
		if len(c.Items) == 1 {
			fmt.Printf("  %-24s %.1f points\n", catalog[c.Items[0]].name, c.Price)
		}
	}
	for _, b := range cfg.Bundles {
		if len(b.Items) == 1 {
			fmt.Printf("  %-24s %.1f points\n", catalog[b.Items[0]].name, b.Price)
		}
	}
}
