package experiments

import (
	"fmt"

	"bundling/internal/config"
	"bundling/internal/metrics"
	"bundling/internal/tabular"
)

// WelfareRow decomposes one method's market outcome the way the paper's
// introduction frames it: the seller's revenue, the consumers' surplus,
// their sum (total welfare) and the uncaptured remainder of aggregate
// willingness to pay (deadweight loss).
type WelfareRow struct {
	Method         Method
	Revenue        float64
	Surplus        float64
	Welfare        float64 // Revenue + Surplus
	DeadweightLoss float64 // total WTP − Welfare (θ = 0 makes WTP the welfare bound)
	WelfarePct     float64 // Welfare as % of total WTP
}

// WelfareResult compares the welfare decomposition across all methods.
type WelfareResult struct {
	TotalWTP float64
	Rows     []WelfareRow
}

// Welfare runs every method and decomposes its outcome. The deadweight
// framing assumes θ ≤ 0, where aggregate WTP bounds attainable welfare
// (the paper's Table 1 discussion of consumer surplus and deadweight loss).
func Welfare(env *Env, params config.Params) (*WelfareResult, error) {
	res := &WelfareResult{TotalWTP: env.W.Total()}
	for _, m := range AllMethods() {
		cfg, err := Run(m, env.W, params)
		if err != nil {
			return nil, err
		}
		row := WelfareRow{
			Method:  m,
			Revenue: cfg.Revenue,
			Surplus: cfg.Surplus,
			Welfare: cfg.Revenue + cfg.Surplus,
		}
		row.DeadweightLoss = res.TotalWTP - row.Welfare
		row.WelfarePct = metrics.Coverage(row.Welfare, res.TotalWTP)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the welfare table.
func (r *WelfareResult) Render() string {
	t := tabular.New(
		fmt.Sprintf("Welfare decomposition (total WTP %.0f)", r.TotalWTP),
		"method", "revenue", "consumer surplus", "welfare", "welfare %", "deadweight loss")
	for _, row := range r.Rows {
		t.AddRow(string(row.Method),
			fmt.Sprintf("%.0f", row.Revenue),
			fmt.Sprintf("%.0f", row.Surplus),
			fmt.Sprintf("%.0f", row.Welfare),
			fmt.Sprintf("%.1f%%", row.WelfarePct),
			fmt.Sprintf("%.0f", row.DeadweightLoss),
		)
	}
	return t.String()
}
