package bundling

import (
	"encoding/json"
	"fmt"
	"io"

	"bundling/internal/codec"
	"bundling/internal/dataset"
)

// Dataset is a rating corpus: (consumer, item, stars) triples plus per-item
// list prices. Convert it to a willingness-to-pay matrix with Dataset.WTP.
type Dataset = dataset.Dataset

// DatasetConfig configures the synthetic rating-corpus generator.
type DatasetConfig = dataset.GenConfig

// GenerateDataset synthesizes a rating corpus with realistic marginals:
// the paper's star distribution (3/5/13/29/49% for 1..5 stars), its price
// distribution (50% under $10, 45% $10-20, 4% above $20), heavy-tailed
// popularity, latent-genre co-rating structure, and iterative k-core
// filtering. Deterministic given cfg.Seed.
func GenerateDataset(cfg DatasetConfig) (*Dataset, error) {
	return dataset.Generate(cfg)
}

// PaperDatasetConfig returns the generator configuration matching the
// corpus statistics of the paper's Amazon Books dataset (4,449 users ×
// 5,028 items × ~108k ratings after 10-core filtering).
func PaperDatasetConfig() DatasetConfig {
	return dataset.PaperScaleConfig()
}

// ReadDatasetCSV parses a dataset from CSV ("price,item,value" and
// "rating,consumer,item,stars" rows), the format Dataset.WriteCSV emits.
// Use it to substitute real rating data for the synthetic corpus.
func ReadDatasetCSV(r io.Reader) (*Dataset, error) {
	return dataset.ReadCSV(r)
}

// DefaultLambda is the ratings→WTP conversion factor the paper fixes after
// its Table 2 calibration; DecodeMatrix applies it when none is given.
const DefaultLambda = 1.25

// MatrixDoc is the JSON wire form of a willingness-to-pay matrix: explicit
// dimensions plus sparse [consumer, item, wtp] triples. It is the corpus
// upload format of the bundled server and the json input of cmd/bundle.
type MatrixDoc struct {
	Consumers int          `json:"consumers"`
	Items     int          `json:"items"`
	Entries   [][3]float64 `json:"entries"`
}

// Matrix materializes the document. Ids must be integral and in range;
// values must be finite and non-negative.
func (d *MatrixDoc) Matrix() (*Matrix, error) {
	w, err := NewMatrixChecked(d.Consumers, d.Items)
	if err != nil {
		return nil, err
	}
	for k, e := range d.Entries {
		u, i := int(e[0]), int(e[1])
		if float64(u) != e[0] || float64(i) != e[1] {
			return nil, fmt.Errorf("bundling: entry %d has non-integral ids (%g, %g)", k, e[0], e[1])
		}
		if err := w.Set(u, i, e[2]); err != nil {
			return nil, fmt.Errorf("bundling: entry %d: %w", k, err)
		}
	}
	return w, nil
}

// MarshalBinary renders the document in the binary columnar codec — the
// compact alternative to its JSON form (same dimensions and entries,
// delta-encoded id columns and raw float64 values, roughly a third of the
// JSON bytes on realistic corpora). Ids must be integral, the invariant
// Matrix enforces.
func (d *MatrixDoc) MarshalBinary() ([]byte, error) {
	m := codec.MatrixData(*d)
	return codec.EncodeMatrix(&m)
}

// UnmarshalBinary parses a binary columnar matrix document (the inverse of
// MarshalBinary). Malformed input yields an error, never a panic.
func (d *MatrixDoc) UnmarshalBinary(data []byte) error {
	m, err := codec.DecodeMatrix(data)
	if err != nil {
		return fmt.Errorf("bundling: matrix bin: %w", err)
	}
	*d = MatrixDoc(*m)
	return nil
}

// NewMatrixDoc captures a matrix in its JSON wire form.
func NewMatrixDoc(w *Matrix) *MatrixDoc {
	d := &MatrixDoc{
		Consumers: w.Consumers(),
		Items:     w.Items(),
		Entries:   make([][3]float64, 0, w.Entries()),
	}
	for i := 0; i < w.Items(); i++ {
		for _, e := range w.Postings(i) {
			d.Entries = append(d.Entries, [3]float64{float64(e.Consumer), float64(i), e.Value})
		}
	}
	return d
}

// DecodeMatrix parses a willingness-to-pay matrix from one of the three
// corpus wire formats — the decoding path shared by cmd/bundle and the
// bundled server:
//
//   - "csv": a ratings dataset (see ReadDatasetCSV), converted to WTP with
//     factor lambda (0 selects DefaultLambda);
//   - "json": a MatrixDoc with explicit dimensions and sparse WTP triples
//     (lambda is ignored);
//   - "bin": the binary columnar form of the same document (see
//     MatrixDoc.MarshalBinary; lambda is ignored).
//
// Malformed input yields an error, never a panic, so servers and CLIs can
// surface it to the caller.
func DecodeMatrix(r io.Reader, format string, lambda float64) (*Matrix, error) {
	switch format {
	case "csv":
		ds, err := ReadDatasetCSV(r)
		if err != nil {
			return nil, err
		}
		if lambda == 0 {
			lambda = DefaultLambda
		}
		return ds.WTP(lambda)
	case "json":
		var doc MatrixDoc
		dec := json.NewDecoder(r)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&doc); err != nil {
			return nil, fmt.Errorf("bundling: matrix json: %w", err)
		}
		return doc.Matrix()
	case "bin":
		buf, err := io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("bundling: matrix bin: %w", err)
		}
		var doc MatrixDoc
		if err := doc.UnmarshalBinary(buf); err != nil {
			return nil, err
		}
		return doc.Matrix()
	default:
		return nil, fmt.Errorf("bundling: unknown corpus format %q (want csv, json or bin)", format)
	}
}
