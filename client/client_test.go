package client

import (
	"context"
	"math"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	"bundling"
	"bundling/internal/codec"
	"bundling/internal/server"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return ts
}

func testMatrix(t testing.TB, consumers, items int, seed int64) *bundling.Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := bundling.NewMatrix(consumers, items)
	for u := 0; u < consumers; u++ {
		for i := 0; i < items; i++ {
			if rng.Float64() < 0.4 {
				w.MustSet(u, i, 1+rng.Float64()*19)
			}
		}
	}
	return w
}

func TestClientRoundTrip(t *testing.T) {
	ts := testServer(t)
	c := New(ts.URL, nil)
	ctx := context.Background()
	w := testMatrix(t, 90, 18, 4)

	info, err := c.UploadMatrix(ctx, "shop", w, bundling.Options{Strategy: bundling.Mixed, Theta: -0.01})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "shop" || info.Version != 1 || info.Consumers != 90 || info.Items != 18 {
		t.Fatalf("info: %+v", info)
	}

	list, err := c.Corpora(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != "shop" {
		t.Fatalf("corpora: %+v", list)
	}

	res, err := c.Solve(ctx, "shop", "greedy")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := bundling.NewSolver(w, bundling.Options{Strategy: bundling.Mixed, Theta: -0.01})
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Solve(bundling.Greedy())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Config.Revenue-want.Revenue) > 1e-9 {
		t.Errorf("client revenue %.12f != library %.12f", res.Config.Revenue, want.Revenue)
	}

	eval, err := c.Evaluate(ctx, "shop", [][]int{{0, 1}, {2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	wantEval, err := direct.Evaluate([][]int{{0, 1}, {2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eval.Config.Revenue-wantEval.Revenue) > 1e-9 {
		t.Errorf("client evaluate %.12f != library %.12f", eval.Config.Revenue, wantEval.Revenue)
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Sessions != 1 {
		t.Errorf("health: %+v", h)
	}
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, "bundled_requests_total") {
		t.Errorf("metrics missing counters:\n%s", metrics)
	}

	if err := c.DeleteCorpus(ctx, "shop"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve(ctx, "shop", "greedy"); err == nil {
		t.Error("solve after delete should fail")
	} else if apiErr, ok := err.(*APIError); !ok || apiErr.StatusCode != 404 {
		t.Errorf("err = %v, want 404 APIError", err)
	}
}

func TestClientCSVUpload(t *testing.T) {
	ts := testServer(t)
	c := New(ts.URL, nil)
	ctx := context.Background()
	csv := "price,0,10\nprice,1,8\nrating,0,0,5\nrating,0,1,4\nrating,1,0,3\n"
	info, err := c.UploadCSV(ctx, "csvcorp", csv, 0, bundling.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Consumers != 2 || info.Items != 2 || info.Entries != 3 {
		t.Fatalf("info: %+v", info)
	}
	if _, err := c.UploadCSV(ctx, "bad", "price,0\n", 0, bundling.Options{}); err == nil {
		t.Error("malformed CSV upload should fail")
	}
}

// TestClientBinaryUpload: the binary codec upload registers the same
// session as the JSON path — identical info and solve results within 1e-9 —
// while shipping a fraction of the bytes.
func TestClientBinaryUpload(t *testing.T) {
	ts := testServer(t)
	c := New(ts.URL, nil)
	ctx := context.Background()
	w := testMatrix(t, 90, 18, 4)
	opts := bundling.Options{Strategy: bundling.Mixed, Theta: -0.01}

	jsonInfo, err := c.UploadMatrix(ctx, "viajson", w, opts)
	if err != nil {
		t.Fatal(err)
	}
	binInfo, err := c.UploadMatrixBin(ctx, "viabin", w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if binInfo.ID != "viabin" || binInfo.Version != 1 ||
		binInfo.Consumers != jsonInfo.Consumers || binInfo.Items != jsonInfo.Items ||
		binInfo.Entries != jsonInfo.Entries {
		t.Fatalf("binary upload info %+v != json upload info %+v", binInfo, jsonInfo)
	}
	for _, alg := range []string{"components", "greedy", "matching"} {
		jr, err := c.Solve(ctx, "viajson", alg)
		if err != nil {
			t.Fatal(err)
		}
		br, err := c.Solve(ctx, "viabin", alg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(jr.Config.Revenue-br.Config.Revenue) > 1e-9*(1+math.Abs(jr.Config.Revenue)) {
			t.Errorf("%s: binary-uploaded revenue %g != json-uploaded %g", alg, br.Config.Revenue, jr.Config.Revenue)
		}
	}
	// A hostile body must come back as a 400 APIError, not hang or 500.
	if err := c.doRaw(ctx, "POST", "/v1/corpora", codec.ContentType, []byte{0xBC, 'X', 1, 0x03, 0xFF}, nil); err == nil {
		t.Error("truncated binary upload should fail")
	} else if apiErr, ok := err.(*APIError); !ok || apiErr.StatusCode != 400 {
		t.Errorf("err = %v, want 400 APIError", err)
	}
}

// TestClientAPIKey drives an authenticated server: an unauthenticated
// client must see 401, a keyed client must work end to end, and a
// cross-tenant access must surface as a 403 APIError.
func TestClientAPIKey(t *testing.T) {
	auth, err := server.ParseAuthKeys("alice=sk-a,bob=sk-b")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Auth: auth})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	ctx := context.Background()
	w := testMatrix(t, 30, 8, 11)

	anon := New(ts.URL, nil)
	if _, err := anon.Corpora(ctx); !isStatus(err, 401) {
		t.Fatalf("anonymous list: %v", err)
	}

	alice := anon.WithAPIKey("sk-a")
	if _, err := alice.UploadMatrix(ctx, "al", w, bundling.Options{}); err != nil {
		t.Fatalf("alice upload: %v", err)
	}
	if _, err := alice.Solve(ctx, "al", "matching"); err != nil {
		t.Fatalf("alice solve: %v", err)
	}

	bob := anon.WithAPIKey("sk-b")
	if _, err := bob.Solve(ctx, "al", "matching"); !isStatus(err, 403) {
		t.Fatalf("bob cross-tenant solve: %v", err)
	}
	if list, err := bob.Corpora(ctx); err != nil || len(list) != 0 {
		t.Fatalf("bob list: %v, %v", list, err)
	}
	// Health and metrics stay open to unauthenticated probes.
	if _, err := anon.Health(ctx); err != nil {
		t.Fatalf("anonymous health: %v", err)
	}
	if _, err := anon.Metrics(ctx); err != nil {
		t.Fatalf("anonymous metrics: %v", err)
	}
}

// TestClientUsageFleet drives the introspection helpers against an
// authenticated server: Usage must 401 anonymously and come back
// tenant-scoped with a key, and Fleet must 401 anonymously, decode the
// coordinator view with a key, and surface 404 on a non-cluster daemon.
func TestClientUsageFleet(t *testing.T) {
	auth, err := server.ParseAuthKeys("alice=sk-a,bob=sk-b")
	if err != nil {
		t.Fatal(err)
	}
	fleet := func(ctx context.Context) server.FleetResponse {
		return server.FleetResponse{
			Workers: []server.FleetWorkerDoc{
				{Addr: "w0", Reachable: true, Status: "ok", Spans: []server.FleetSpanDoc{}},
				{Addr: "w1", Reachable: true, Status: "ok", Spans: []server.FleetSpanDoc{}},
			},
			Reachable: 2,
		}
	}
	srv := server.New(server.Config{Auth: auth, Fleet: fleet})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	ctx := context.Background()
	w := testMatrix(t, 30, 8, 11)

	anon := New(ts.URL, nil)
	if _, err := anon.Usage(ctx); !isStatus(err, 401) {
		t.Fatalf("anonymous usage: %v", err)
	}
	if _, err := anon.Fleet(ctx); !isStatus(err, 401) {
		t.Fatalf("anonymous fleet: %v", err)
	}

	alice := anon.WithAPIKey("sk-a")
	if _, err := alice.UploadMatrix(ctx, "al", w, bundling.Options{}); err != nil {
		t.Fatalf("alice upload: %v", err)
	}
	if _, err := alice.Solve(ctx, "al", "matching"); err != nil {
		t.Fatalf("alice solve: %v", err)
	}
	use, err := alice.Usage(ctx)
	if err != nil {
		t.Fatalf("alice usage: %v", err)
	}
	if use.Scope != "tenant" || use.Tenant != "alice" {
		t.Fatalf("usage scope: %+v", use)
	}
	if len(use.Tenants) != 1 || use.Tenants[0].Key != "alice" || use.Tenants[0].Requests != 2 {
		t.Fatalf("usage tenants: %+v", use.Tenants)
	}
	var corpusKeys []string
	for _, row := range use.Corpora {
		corpusKeys = append(corpusKeys, row.Key)
	}
	if len(corpusKeys) != 1 || corpusKeys[0] != "al" {
		t.Fatalf("usage corpora: %v", corpusKeys)
	}

	fl, err := alice.Fleet(ctx)
	if err != nil {
		t.Fatalf("alice fleet: %v", err)
	}
	if fl.Reachable != 2 || len(fl.Workers) != 2 || fl.Workers[0].Addr != "w0" {
		t.Fatalf("fleet: %+v", fl)
	}

	// A daemon without a cluster view has no /debug/fleet route at all.
	solo := server.New(server.Config{})
	tsSolo := httptest.NewServer(solo.Handler())
	t.Cleanup(tsSolo.Close)
	t.Cleanup(solo.Close)
	if _, err := New(tsSolo.URL, nil).Fleet(ctx); !isStatus(err, 404) {
		t.Fatalf("solo fleet: %v", err)
	}
}

// isStatus reports whether err is an APIError with the given status.
func isStatus(err error, status int) bool {
	apiErr, ok := err.(*APIError)
	return ok && apiErr.StatusCode == status
}

func TestClientPatchCorpus(t *testing.T) {
	ts := testServer(t)
	c := New(ts.URL, nil)
	ctx := context.Background()
	w := testMatrix(t, 60, 10, 6)
	if _, err := c.UploadMatrix(ctx, "inc", w, bundling.Options{}); err != nil {
		t.Fatal(err)
	}

	// JSON patch, then a binary patch conditioned on the generation the
	// first one reported; replay the same cells locally and compare.
	first := []DeltaCell{{Consumer: 0, Item: 0, Value: 7.5}, {Consumer: 1, Item: 2, Delete: true}}
	out, err := c.PatchCorpus(ctx, "inc", 1, first)
	if err != nil {
		t.Fatal(err)
	}
	if out.Version != 2 || out.Applied != len(first) {
		t.Fatalf("patch: %+v", out)
	}
	second := []DeltaCell{{Consumer: 3, Item: 4, Value: 12}, {Consumer: 0, Item: 0, Delete: true}}
	out, err = c.PatchCorpusBin(ctx, "inc", out.Version, second)
	if err != nil {
		t.Fatal(err)
	}
	if out.Version != 3 {
		t.Fatalf("binary patch: %+v", out)
	}
	for _, cell := range append(append([]DeltaCell{}, first...), second...) {
		if cell.Delete {
			if err := w.Delete(cell.Consumer, cell.Item); err != nil {
				t.Fatal(err)
			}
		} else {
			w.MustSet(cell.Consumer, cell.Item, cell.Value)
		}
	}
	direct, err := bundling.NewSolver(w, bundling.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Solve(bundling.Matching())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Solve(ctx, "inc", "matching")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Config.Revenue-want.Revenue) > 1e-9 {
		t.Errorf("patched revenue %.12f != library %.12f", res.Config.Revenue, want.Revenue)
	}

	// A stale generation precondition is a 409 and leaves the corpus alone.
	if _, err := c.PatchCorpus(ctx, "inc", 1, first); !isStatus(err, 409) {
		t.Errorf("stale patch err = %v, want 409 APIError", err)
	}
	info, err := c.Corpus(ctx, "inc")
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 3 {
		t.Errorf("version after rejected patch = %d, want 3", info.Version)
	}
}
