package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"bundling/internal/wtp"
)

func testConfig() GenConfig {
	return GenConfig{Users: 300, Items: 80, RatingsPerUser: 15, MinDegree: 4, Seed: 9}
}

func TestGenerateValidation(t *testing.T) {
	bad := []GenConfig{
		{Users: 0, Items: 10, RatingsPerUser: 5},
		{Users: 10, Items: 0, RatingsPerUser: 5},
		{Users: 10, Items: 10, RatingsPerUser: 0},
		{Users: 10, Items: 10, RatingsPerUser: 5, MinDegree: -1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Ratings) != len(b.Ratings) || a.Users != b.Users || a.Items != b.Items {
		t.Fatal("same seed should give identical datasets")
	}
	for i := range a.Ratings {
		if a.Ratings[i] != b.Ratings[i] {
			t.Fatalf("rating %d differs: %+v vs %+v", i, a.Ratings[i], b.Ratings[i])
		}
	}
	cfg := testConfig()
	cfg.Seed = 10
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Ratings) == len(a.Ratings) {
		same := true
		for i := range c.Ratings {
			if c.Ratings[i] != a.Ratings[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds should give different datasets")
		}
	}
}

func TestGenerateMarginals(t *testing.T) {
	cfg := PaperScaleConfig()
	cfg.Users = 1500
	cfg.Items = 400
	cfg.MinDegree = 5
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := ds.Summarize()
	// Star distribution should approximate the paper's 3/5/13/29/49%.
	want := [5]float64{0.03, 0.05, 0.13, 0.29, 0.49}
	for s, share := range st.StarShare {
		if math.Abs(share-want[s]) > 0.05 {
			t.Errorf("star %d share = %.3f, want ≈ %.2f", s+1, share, want[s])
		}
	}
	// Price distribution: ≈50% < $10, ≈45% $10-20, ≈4% > $20.
	if math.Abs(st.PriceShare[0]-0.50) > 0.08 || math.Abs(st.PriceShare[1]-0.45) > 0.08 || st.PriceShare[2] > 0.10 {
		t.Errorf("price shares = %v, want ≈ [0.50 0.45 0.04]", st.PriceShare)
	}
	for _, p := range ds.Prices {
		if p <= 0 {
			t.Fatalf("non-positive price %g", p)
		}
	}
}

func TestKCoreInvariant(t *testing.T) {
	ds, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	k := testConfig().MinDegree
	uDeg := make(map[int]int)
	iDeg := make(map[int]int)
	for _, r := range ds.Ratings {
		uDeg[r.Consumer]++
		iDeg[r.Item]++
		if r.Consumer < 0 || r.Consumer >= ds.Users || r.Item < 0 || r.Item >= ds.Items {
			t.Fatalf("rating out of range: %+v", r)
		}
	}
	for u, d := range uDeg {
		if d < k {
			t.Errorf("user %d has degree %d < %d after k-core", u, d, k)
		}
	}
	for i, d := range iDeg {
		if d < k {
			t.Errorf("item %d has degree %d < %d after k-core", i, d, k)
		}
	}
	// Dense ids: every user/item id in range appears.
	if len(uDeg) != ds.Users {
		t.Errorf("users = %d but %d distinct ids", ds.Users, len(uDeg))
	}
	if len(iDeg) != ds.Items {
		t.Errorf("items = %d but %d distinct ids", ds.Items, len(iDeg))
	}
}

func TestKCoreHandWorked(t *testing.T) {
	// User 2 has one rating on item 1; removing it drops item 1 below
	// degree 2, cascading to remove it entirely.
	d := &Dataset{
		Users: 3, Items: 2,
		Prices: []float64{5, 7},
		Ratings: []wtp.Rating{
			{Consumer: 0, Item: 0, Stars: 5},
			{Consumer: 1, Item: 0, Stars: 4},
			{Consumer: 0, Item: 1, Stars: 3},
			{Consumer: 1, Item: 1, Stars: 2},
			{Consumer: 2, Item: 1, Stars: 1},
		},
	}
	out := d.KCore(2)
	if out.Users != 2 || out.Items != 2 {
		t.Fatalf("kcore dims = %d×%d, want 2×2", out.Users, out.Items)
	}
	if len(out.Ratings) != 4 {
		t.Fatalf("kcore kept %d ratings, want 4", len(out.Ratings))
	}
}

func TestWTPConversion(t *testing.T) {
	ds, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := ds.WTP(1.25)
	if err != nil {
		t.Fatal(err)
	}
	if w.Consumers() != ds.Users || w.Items() != ds.Items {
		t.Fatalf("WTP dims %d×%d, want %d×%d", w.Consumers(), w.Items(), ds.Users, ds.Items)
	}
	// Spot-check the linear conversion on the first few ratings.
	for _, r := range ds.Ratings[:10] {
		want := float64(r.Stars) / 5 * 1.25 * ds.Prices[r.Item]
		if got := w.At(r.Consumer, r.Item); math.Abs(got-want) > 1e-9 {
			t.Fatalf("WTP(%d,%d) = %g, want %g", r.Consumer, r.Item, got, want)
		}
	}
}

func TestSampleItems(t *testing.T) {
	ds, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	s := ds.SampleItems(10, rng)
	if s.Items != 10 {
		t.Fatalf("sampled items = %d, want 10", s.Items)
	}
	if s.Users != ds.Users {
		t.Errorf("sampling should keep all users")
	}
	for _, r := range s.Ratings {
		if r.Item < 0 || r.Item >= 10 {
			t.Fatalf("sampled rating item %d out of range", r.Item)
		}
	}
	if len(s.Prices) != 10 {
		t.Fatalf("sampled prices = %d, want 10", len(s.Prices))
	}
	// Sampling more items than exist returns the dataset unchanged.
	if ds.SampleItems(ds.Items+5, rng) != ds {
		t.Error("oversized sample should return the dataset itself")
	}
}

func TestCloneUsers(t *testing.T) {
	ds, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := ds.CloneUsers(3)
	if c.Users != 3*ds.Users {
		t.Fatalf("cloned users = %d, want %d", c.Users, 3*ds.Users)
	}
	if len(c.Ratings) != 3*len(ds.Ratings) {
		t.Fatalf("cloned ratings = %d, want %d", len(c.Ratings), 3*len(ds.Ratings))
	}
	if c.Items != ds.Items {
		t.Error("cloning must not change items")
	}
	// Clone 1 is the identity.
	if ds.CloneUsers(1) != ds {
		t.Error("factor 1 should return the dataset itself")
	}
	// Total WTP scales linearly (the paper's Fig. 7a workload property).
	w1, _ := ds.WTP(1.25)
	w3, _ := c.WTP(1.25)
	if math.Abs(w3.Total()-3*w1.Total()) > 1e-6 {
		t.Errorf("cloned total WTP %g, want %g", w3.Total(), 3*w1.Total())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Users != ds.Users || back.Items != ds.Items || len(back.Ratings) != len(ds.Ratings) {
		t.Fatalf("round trip dims: %d×%d×%d, want %d×%d×%d",
			back.Users, back.Items, len(back.Ratings), ds.Users, ds.Items, len(ds.Ratings))
	}
	for i := range ds.Ratings {
		if back.Ratings[i] != ds.Ratings[i] {
			t.Fatalf("rating %d differs after round trip", i)
		}
	}
	for i := range ds.Prices {
		if math.Abs(back.Prices[i]-ds.Prices[i]) > 0.005 {
			t.Fatalf("price %d differs: %g vs %g", i, back.Prices[i], ds.Prices[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"bogus,1,2",
		"price,x,5",
		"price,0",
		"rating,0,0",
		"rating,a,b,c",
		"rating,0,0,5", // missing price row for item 0
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

// TestQuickKCoreIdempotent: applying k-core twice equals applying it once.
func TestQuickKCoreIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := &Dataset{Users: 20, Items: 15, Prices: make([]float64, 15)}
		for i := range d.Prices {
			d.Prices[i] = 5
		}
		for n := 0; n < 80; n++ {
			d.Ratings = append(d.Ratings, wtp.Rating{
				Consumer: rng.Intn(20), Item: rng.Intn(15), Stars: 1 + rng.Intn(5),
			})
		}
		once := d.KCore(3)
		twice := once.KCore(3)
		return len(once.Ratings) == len(twice.Ratings) &&
			once.Users == twice.Users && once.Items == twice.Items
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
