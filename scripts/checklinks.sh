#!/bin/sh
# Check intra-repo markdown links: every relative link target in README.md
# and docs/*.md must exist on disk (anchors are stripped; external http(s)
# and mailto links are skipped). CI runs this in the docs job; locally it's
# `make linkcheck`. Exits non-zero listing every broken link.
set -eu

cd "$(dirname "$0")/.."

FILES="README.md $(find docs -name '*.md' 2>/dev/null || true)"
STATUS=0

for f in $FILES; do
  [ -f "$f" ] || continue
  dir=$(dirname "$f")
  # Markdown inline links: every [...](target), possibly several per line.
  targets=$(grep -o ']([^)]*)' "$f" | sed 's/^](//; s/)$//' || true)
  for target in $targets; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "broken link in $f: $target" >&2
      STATUS=1
    fi
  done
done

if [ "$STATUS" -eq 0 ]; then
  echo "linkcheck OK"
fi
exit "$STATUS"
