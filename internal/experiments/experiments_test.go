package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"

	"bundling/internal/config"
)

// sharedEnv caches one small environment across tests in this package.
var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		envVal, envErr = Setup(SmallScale(), DefaultLambda)
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

func TestSetupScales(t *testing.T) {
	env := testEnv(t)
	if env.DS.Users == 0 || env.DS.Items == 0 || len(env.DS.Ratings) == 0 {
		t.Fatal("empty dataset")
	}
	if env.W.Consumers() != env.DS.Users || env.W.Items() != env.DS.Items {
		t.Fatal("WTP dimensions mismatch dataset")
	}
	full := FullScale()
	if full.Users != 4449 || full.Items != 5028 {
		t.Errorf("full scale = %d×%d, want the paper's 4449×5028", full.Users, full.Items)
	}
}

func TestRunUnknownMethod(t *testing.T) {
	env := testEnv(t)
	if _, err := Run(Method("bogus"), env.W, config.DefaultParams()); err == nil {
		t.Error("expected error for unknown method")
	}
}

func TestAllMethodsRun(t *testing.T) {
	env := testEnv(t)
	params := config.DefaultParams()
	if len(AllMethods()) != 7 {
		t.Fatalf("the paper compares 7 methods, got %d", len(AllMethods()))
	}
	for _, m := range AllMethods() {
		cfg, err := Run(m, env.W, params)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if cfg.Revenue <= 0 {
			t.Errorf("%s: non-positive revenue", m)
		}
		if !cfg.CoversAll(env.W.Items()) {
			t.Errorf("%s: does not cover all items", m)
		}
	}
}

// TestTable1PaperNumbers verifies the worked example's exact revenues.
func TestTable1PaperNumbers(t *testing.T) {
	r, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.ComponentsRevenue-27) > 0.05 {
		t.Errorf("components = %g, want 27", r.ComponentsRevenue)
	}
	if math.Abs(r.PureRevenue-30.4) > 0.05 {
		t.Errorf("pure = %g, want 30.40", r.PureRevenue)
	}
	if math.Abs(r.MixedRevenue-31.2) > 0.05 {
		t.Errorf("mixed (upgrade rule) = %g, want 31.20", r.MixedRevenue)
	}
	// The intro's naive rule gives 38.40 (the paper prints 38.20; see
	// EXPERIMENTS.md for the arithmetic).
	if math.Abs(r.NaiveMixedRevenue-38.4) > 0.05 {
		t.Errorf("mixed (naive rule) = %g, want 38.40", r.NaiveMixedRevenue)
	}
	if math.Abs(r.PriceBundle-15.2) > 0.05 {
		t.Errorf("bundle price = %g, want 15.20", r.PriceBundle)
	}
	if !strings.Contains(r.Render(), "Pure bundling") {
		t.Error("render should mention pure bundling")
	}
}

// TestTable2Shape: optimal pricing coverage is λ-invariant and dominates
// list pricing, the paper's two Table 2 findings.
func TestTable2Shape(t *testing.T) {
	env := testEnv(t)
	res, err := Table2(env, DefaultLambdas(), config.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	first := res.Rows[0].OptimalCoverage
	for _, row := range res.Rows {
		if math.Abs(row.OptimalCoverage-first) > 0.5 {
			t.Errorf("optimal coverage at λ=%g is %g, should be ≈ constant %g",
				row.Lambda, row.OptimalCoverage, first)
		}
		if row.OptimalCoverage < row.ListCoverage-1e-9 {
			t.Errorf("λ=%g: optimal pricing %g below list pricing %g",
				row.Lambda, row.OptimalCoverage, row.ListCoverage)
		}
		if row.OptimalCoverage <= 0 || row.OptimalCoverage > 100 {
			t.Errorf("coverage %g out of range", row.OptimalCoverage)
		}
	}
	if !strings.Contains(res.Render(), "λ") {
		t.Error("render should include the λ column")
	}
}

// TestFigure2Shape verifies the paper's θ-sweep findings on a small corpus.
func TestFigure2Shape(t *testing.T) {
	env := testEnv(t)
	res, err := Figure2(env, []float64{-0.05, 0, 0.1}, config.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, pt := range res.Points {
		// Components is unaffected by θ and nothing goes below it.
		if math.Abs(pt.Gain[Components]) > 1e-9 {
			t.Errorf("components gain at θ=%g is %g, want 0", pt.Param, pt.Gain[Components])
		}
		for _, m := range AllMethods() {
			if pt.Gain[m] < -1e-6 {
				t.Errorf("%s at θ=%g: negative gain %g", m, pt.Param, pt.Gain[m])
			}
		}
		// Mixed methods dominate their pure counterparts for θ ≤ 0.
		if pt.Param <= 0 {
			if pt.Coverage[MixedMatching] < pt.Coverage[PureMatching]-1e-6 {
				t.Errorf("θ=%g: mixed matching below pure matching", pt.Param)
			}
		}
		// Our methods dominate the corresponding freq-itemset baselines.
		if pt.Coverage[MixedMatching] < pt.Coverage[MixedFreqItemset]-1e-6 {
			t.Errorf("θ=%g: mixed matching below freq-itemset baseline", pt.Param)
		}
	}
	// Pure bundling rises with θ (complements).
	if res.Points[2].Coverage[PureMatching] <= res.Points[0].Coverage[PureMatching] {
		t.Error("pure matching should gain from θ > 0")
	}
}

// TestFigure3Shape: coverage rises with γ (less uncertainty → higher
// prices), the paper's Fig. 3(a) trend.
func TestFigure3Shape(t *testing.T) {
	env := testEnv(t)
	res, err := Figure3(env, []float64{0.5, 5, 1e6}, config.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{Components, MixedMatching} {
		for i := 1; i < len(res.Points); i++ {
			if res.Points[i].Coverage[m] < res.Points[i-1].Coverage[m]-2 {
				t.Errorf("%s: coverage dropped from γ=%g to γ=%g (%g → %g)",
					m, res.Points[i-1].Param, res.Points[i].Param,
					res.Points[i-1].Coverage[m], res.Points[i].Coverage[m])
			}
		}
	}
}

// TestFigure4Shape: higher α (bias toward adoption) raises coverage, the
// paper's Fig. 4(a) trend.
func TestFigure4Shape(t *testing.T) {
	env := testEnv(t)
	base := config.DefaultParams()
	res, err := Figure4(env, []float64{0.75, 1.0, 1.25}, base)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Coverage[Components] < res.Points[i-1].Coverage[Components]-1 {
			t.Errorf("components coverage should rise with α: %v", res.Points)
		}
	}
}

// TestFigure5Shape: revenue grows with the size cap k and k=1 equals
// Components (the paper's Fig. 5).
func TestFigure5Shape(t *testing.T) {
	env := testEnv(t)
	res, err := Figure5(env, []int{1, 2, 4, config.Unlimited}, config.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	k1 := res.Points[0]
	if math.Abs(k1.Gain[MixedMatching]) > 1e-6 {
		t.Errorf("k=1 mixed matching gain = %g, want 0 (equals Components)", k1.Gain[MixedMatching])
	}
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Coverage[MixedGreedy] < res.Points[i-1].Coverage[MixedGreedy]-1e-6 {
			t.Errorf("mixed greedy coverage should grow with k")
		}
	}
	if math.IsInf(res.Points[len(res.Points)-1].Param, 1) && !strings.Contains(res.Render(), "∞") {
		t.Error("render should show ∞ for unlimited k")
	}
}

func TestFigure6Traces(t *testing.T) {
	env := testEnv(t)
	res, err := Figure6(env, config.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) == 0 {
			t.Errorf("%s: empty trace", s.Method)
			continue
		}
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Gain < s.Points[i-1].Gain-1e-9 {
				t.Errorf("%s: gain decreased along the trace", s.Method)
			}
		}
	}
	out := res.Render()
	if !strings.Contains(out, "Mixed Matching") || !strings.Contains(out, "Pure Greedy") {
		t.Error("render should include all four methods")
	}
}

func TestFigure7Scaling(t *testing.T) {
	env := testEnv(t)
	res, err := Figure7(env, []int{1, 2}, []int{env.DS.Items / 2, env.DS.Items}, config.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UserSweep) != 2 || len(res.ItemSweep) != 2 {
		t.Fatalf("sweep sizes: %d users, %d items", len(res.UserSweep), len(res.ItemSweep))
	}
	if res.UserSweep[1].Users != 2*res.UserSweep[0].Users {
		t.Error("user cloning factor not applied")
	}
	for _, p := range append(res.UserSweep, res.ItemSweep...) {
		for _, m := range OurMethods() {
			if p.Seconds[m] < 0 {
				t.Errorf("%s negative time", m)
			}
		}
	}
	if !strings.Contains(res.Render(), "Figure 7(a)") {
		t.Error("render should label the user sweep")
	}
}

// TestWSPSmall reproduces the Table 4/5 shape on tiny samples: heuristics
// within a whisker of Optimal, Greedy WSP clearly below, exact solver far
// slower than the heuristics on the same samples.
func TestWSPSmall(t *testing.T) {
	env := testEnv(t)
	opts := WSPOptions{Sizes: []int{6, 8}, Samples: 3, MaxExactN: 10, Seed: 3, RequireSize3: false, MaxAttempts: 10}
	res, err := WSP(env, opts, config.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Samples == 0 {
			t.Fatalf("N=%d: no samples retained", row.N)
		}
		if !row.OptimalFeasible {
			t.Fatalf("N=%d should be exactly solvable", row.N)
		}
		if row.MatchingCov > row.OptimalCov+1e-6 || row.GreedyCov > row.OptimalCov+1e-6 {
			t.Errorf("N=%d: heuristic coverage above optimal", row.N)
		}
		if row.MatchingCov < row.OptimalCov-8 {
			t.Errorf("N=%d: matching %g too far below optimal %g", row.N, row.MatchingCov, row.OptimalCov)
		}
		if row.GreedyWSPCov > row.OptimalCov+1e-6 {
			t.Errorf("N=%d: greedy WSP above optimal", row.N)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "Table 4") || !strings.Contains(out, "Table 5") {
		t.Error("render should emit both tables")
	}
}

func TestCaseStudyStructure(t *testing.T) {
	env := testEnv(t)
	res, err := CaseStudy(env, config.DefaultParams(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 6 {
		t.Fatalf("rows = %d, want ≥ 6 (3 singles + 3 pairs)", len(res.Rows))
	}
	for i := 0; i < 3; i++ {
		if !res.Rows[i].Selected {
			t.Errorf("single %d must be selected (mixed bundling)", i)
		}
		if len(res.Rows[i].Items) != 1 {
			t.Errorf("row %d should be a single", i)
		}
	}
	for i := 3; i < 6; i++ {
		if len(res.Rows[i].Items) != 2 {
			t.Errorf("row %d should be a pair", i)
		}
		if res.Rows[i].AddRevenue < 0 {
			t.Errorf("pair %d negative additional revenue", i)
		}
	}
	if !strings.Contains(res.Render(), "Table 6") {
		t.Error("render should be labelled Table 6")
	}
}
