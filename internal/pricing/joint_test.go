package pricing

import (
	"math"
	"math/rand"
	"testing"

	"bundling/internal/adoption"
)

func TestPriceMixedJointValidation(t *testing.T) {
	pr := Default()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for misaligned vectors")
		}
	}()
	pr.PriceMixedJoint(JointOffer{W1: []float64{1}, W2: nil, WB: []float64{1}}, 10)
}

// TestJointDominatesSeed: seeding with a triple guarantees the result is
// at least as good, so joint pricing can never lose to the incremental
// policy when seeded with its solution.
func TestJointDominatesSeed(t *testing.T) {
	pr := Default()
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(30)
		off := JointOffer{
			W1: make([]float64, n),
			W2: make([]float64, n),
			WB: make([]float64, n),
		}
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.7 {
				off.W1[j] = rng.Float64() * 20
			}
			if rng.Float64() < 0.7 {
				off.W2[j] = rng.Float64() * 20
			}
			off.WB[j] = off.W1[j] + off.W2[j]
		}
		// Incremental policy: price components individually, then the
		// bundle in the Guiltinan window.
		q1 := pr.PriceOptimal(off.W1)
		q2 := pr.PriceOptimal(off.W2)
		if q1.Price <= 0 || q2.Price <= 0 {
			continue
		}
		lo := math.Max(q1.Price, q2.Price)
		hi := q1.Price + q2.Price
		bestInc := JointQuote{P1: q1.Price, P2: q2.Price}
		for k := 1; k <= 50; k++ {
			pb := lo + (hi-lo)*float64(k)/51
			rev := pr.jointRevenue(off, q1.Price, q2.Price, pb)
			if rev > bestInc.Revenue {
				bestInc.PB = pb
				bestInc.Revenue = rev
			}
		}
		joint := pr.PriceMixedJoint(off, 25, bestInc)
		if joint.Revenue < bestInc.Revenue-1e-9 {
			t.Fatalf("trial %d: joint %g below seeded incremental %g", trial, joint.Revenue, bestInc.Revenue)
		}
		if joint.Revenue > 0 {
			// Constraints hold on the winner.
			if joint.PB <= math.Max(joint.P1, joint.P2) || joint.PB >= joint.P1+joint.P2 {
				t.Fatalf("trial %d: joint price %v violates the window", trial, joint)
			}
		}
	}
}

// TestJointFindsKnownOptimum: hand-built market where the incremental
// policy is strictly suboptimal. Component audiences push the standalone
// prices low, which caps what the bundle can charge; joint pricing raises
// the component prices to unlock a better bundle price.
func TestJointFindsKnownOptimum(t *testing.T) {
	pr := Default()
	// Consumers: two A-fans at 10, two B-fans at 10, two AB-fans at (6, 6).
	off := JointOffer{
		W1: []float64{10, 10, 0, 0, 6, 6},
		W2: []float64{0, 0, 10, 10, 6, 6},
		WB: []float64{10, 10, 10, 10, 12, 12},
	}
	// Incremental: each component prices at 6 (four buyers, revenue 24,
	// beating 10·2 = 20); the AB-fans then buy both separately for 12, so
	// no bundle helps and the incremental total is 48.
	q1 := pr.PriceOptimal(off.W1)
	if math.Abs(q1.Price-6) > 0.2 {
		t.Fatalf("unexpected standalone price %g", q1.Price)
	}
	incrementalTotal := 2 * q1.Revenue
	if math.Abs(incrementalTotal-48) > 0.5 {
		t.Fatalf("incremental total = %g, want 48", incrementalTotal)
	}
	// Joint pricing raises the components to 10 (2×20 from the fans) and
	// sells the bundle at 12 to the AB-fans (2×12): total 64.
	joint := pr.PriceMixedJoint(off, 40)
	if joint.Revenue < 63 {
		t.Fatalf("joint pricing should reach ≈64, got %+v", joint)
	}
	if joint.Revenue <= incrementalTotal {
		t.Fatalf("joint %g should strictly beat incremental %g", joint.Revenue, incrementalTotal)
	}
}

func TestJointStochastic(t *testing.T) {
	m, _ := adoption.New(1, 1, adoption.DefaultEpsilon)
	pr, _ := New(m, DefaultLevels)
	off := JointOffer{
		W1: []float64{10, 0, 5},
		W2: []float64{0, 10, 5},
		WB: []float64{10, 10, 10},
	}
	q := pr.PriceMixedJoint(off, 15)
	if q.Revenue <= 0 {
		t.Fatalf("stochastic joint quote: %+v", q)
	}
	step := Default().PriceMixedJoint(off, 15)
	if q.Revenue >= step.Revenue {
		t.Errorf("uncertain adoption %g should earn below the step model %g", q.Revenue, step.Revenue)
	}
}

func TestJointGridClamping(t *testing.T) {
	pr := Default()
	off := JointOffer{W1: []float64{10}, W2: []float64{10}, WB: []float64{20}}
	// Degenerate grids are clamped rather than rejected.
	a := pr.PriceMixedJoint(off, 0)
	b := pr.PriceMixedJoint(off, 1000)
	if a.Revenue < 0 || b.Revenue < 0 {
		t.Fatal("clamped grids should still work")
	}
}
