// Command bundled is the bundle-pricing daemon: it serves long-lived
// Solver sessions over HTTP so many users can upload willingness-to-pay
// corpora and hit them concurrently with solve and what-if evaluate
// requests, with result caching and evaluate micro-batching in front of the
// engine (see internal/server for the API). With -data-dir every uploaded
// corpus is persisted and restored on restart, and with -auth-keys (or
// -auth-file) the daemon serves multiple tenants with API-key auth,
// per-tenant corpus ownership and quotas.
//
// Usage:
//
//	bundled -addr :8080
//	bundled -addr :8080 -demo        # preload a synthetic corpus as "demo"
//	bundled -addr :8080 -data-dir /var/lib/bundled
//	                                 # durable: corpora survive restarts
//	bundled -addr :8080 -auth-keys alice=sk-a1,bob=sk-b1 -quota-rps 50
//	                                 # multi-tenant: keys, ownership, quotas
//	bundled -addr :8080 -workers 127.0.0.1:9101,127.0.0.1:9102
//	                                 # scale out: solve over bundleworker daemons
//	bundled -addr :8080 -log-format json -pprof -slow-request 2s
//	                                 # observability: JSON logs, /debug/pprof,
//	                                 # span-tree dumps for slow requests
//
// Then:
//
//	curl localhost:8080/healthz
//	curl -X POST localhost:8080/v1/corpora/demo/solve -d '{"algorithm":"matching"}'
//
// See docs/OPERATIONS.md for every flag, the persistence layout and the
// metrics catalogue. The daemon shuts down gracefully on SIGINT/SIGTERM,
// draining in-flight requests and flushing the corpus store before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bundling"
	"bundling/internal/cluster"
	"bundling/internal/obs"
	"bundling/internal/server"
)

// options collects the daemon's flag values.
type options struct {
	addr         string
	maxSessions  int
	cacheEntries int
	maxUploadMB  int64
	batchWorkers int
	batchWindow  time.Duration
	workers      string
	dataDir      string
	deltaFold    int
	authKeys     string
	authFile     string
	quotaCorpora int
	quotaEntries int
	quotaRPS     float64
	quotaBurst   int
	demo         bool
	demoUsers    int
	demoItems    int
	drainSecs    int

	requestTimeout time.Duration
	maxConcurrent  int
	maxQueue       int
	queueTimeout   time.Duration
	rpcTimeout     time.Duration
	breakerCool    time.Duration

	logFormat   string
	logLevel    string
	slowRequest time.Duration
	traceRing   int
	pprof       bool

	usageTopK    int
	usageWindow  time.Duration
	usageMetrics bool
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.IntVar(&o.maxSessions, "max-sessions", 64, "max live corpus sessions (LRU eviction beyond)")
	flag.IntVar(&o.cacheEntries, "cache", 1024, "result cache entries (negative disables)")
	flag.Int64Var(&o.maxUploadMB, "max-upload-mb", 64, "max corpus upload size in MiB")
	flag.IntVar(&o.batchWorkers, "batch-workers", 4, "concurrent evaluations per micro-batch pass")
	flag.DurationVar(&o.batchWindow, "batch-window", 0, "evaluate micro-batch gather window (0 = drain immediately)")
	flag.StringVar(&o.workers, "workers", "", "comma-separated bundleworker addresses; enables distributed stripe-sharded solving")
	flag.StringVar(&o.dataDir, "data-dir", "", "corpus persistence directory; uploads survive restarts (empty = in-memory only)")
	flag.IntVar(&o.deltaFold, "delta-fold", 0, "delta-record chain length folded into a snapshot at compaction (0 = 16)")
	flag.StringVar(&o.authKeys, "auth-keys", "", "inline tenant=key[,tenant=key...] API keys; enables multi-tenant auth")
	flag.StringVar(&o.authFile, "auth-file", "", "API key file, one tenant=key per line (# comments); enables multi-tenant auth")
	flag.IntVar(&o.quotaCorpora, "quota-corpora", 0, "max live corpora per tenant (0 = unlimited)")
	flag.IntVar(&o.quotaEntries, "quota-entries", 0, "max summed WTP entries per tenant (0 = unlimited)")
	flag.Float64Var(&o.quotaRPS, "quota-rps", 0, "max sustained /v1 requests per second per tenant (0 = unlimited)")
	flag.IntVar(&o.quotaBurst, "quota-burst", 0, "request-rate burst depth (0 = ceil of -quota-rps)")
	flag.BoolVar(&o.demo, "demo", false, `preload a synthetic corpus as session "demo"`)
	flag.IntVar(&o.demoUsers, "demo-users", 300, "demo corpus users")
	flag.IntVar(&o.demoItems, "demo-items", 60, "demo corpus items")
	flag.IntVar(&o.drainSecs, "drain-seconds", 15, "graceful shutdown drain window")
	flag.DurationVar(&o.requestTimeout, "request-timeout", 0, "server-side solve/evaluate execution budget; expired runs get 504 (0 = none; X-Deadline-Ms can only shorten it)")
	flag.IntVar(&o.maxConcurrent, "max-concurrent", 64, "max in-flight solve/evaluate executions (negative disables admission control)")
	flag.IntVar(&o.maxQueue, "queue", 0, "requests waiting for an execution slot before shedding with 503 (0 = 2x -max-concurrent, negative sheds immediately)")
	flag.DurationVar(&o.queueTimeout, "queue-timeout", 2*time.Second, "max wait for an execution slot before shedding")
	flag.DurationVar(&o.rpcTimeout, "rpc-timeout", 0, "per-RPC budget for cluster worker calls (0 = 10s)")
	flag.DurationVar(&o.breakerCool, "breaker-cooldown", 0, "first circuit-breaker open period per failing worker, doubling per re-open (0 = 1s)")
	flag.StringVar(&o.logFormat, "log-format", "text", "structured log output format: text or json")
	flag.StringVar(&o.logLevel, "log-level", "info", "minimum log level: debug, info, warn or error")
	flag.DurationVar(&o.slowRequest, "slow-request", 0, "log the full span tree of any /v1 request slower than this (0 = never)")
	flag.IntVar(&o.traceRing, "trace-ring", 0, "recent request traces kept for /debug/traces (0 = 128, negative disables tracing)")
	flag.BoolVar(&o.pprof, "pprof", false, "serve net/http/pprof profiles under /debug/pprof")
	flag.IntVar(&o.usageTopK, "usage-topk", 0, "distinct tenants/corpora the workload accountant tracks individually, rest in \"other\" (0 = 32, negative disables /v1/usage)")
	flag.DurationVar(&o.usageWindow, "usage-window", 0, "sliding window behind the workload accountant's request rates (0 = 60s)")
	flag.BoolVar(&o.usageMetrics, "usage-metrics", false, "expose labeled per-tenant/per-corpus usage series on the unauthenticated /metrics endpoint (labels carry tenant names and corpus IDs; keep off unless the scrape endpoint is private)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "bundled:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	logger, err := obs.NewLogger(os.Stderr, o.logFormat, o.logLevel)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)
	cfg := server.Config{
		Logger:         logger,
		SlowRequest:    o.slowRequest,
		TraceRing:      o.traceRing,
		Pprof:          o.pprof,
		MaxSessions:    o.maxSessions,
		CacheEntries:   o.cacheEntries,
		MaxUploadBytes: o.maxUploadMB << 20,
		BatchWorkers:   o.batchWorkers,
		BatchWindow:    o.batchWindow,
		Quotas: server.Quotas{
			MaxCorpora:        o.quotaCorpora,
			MaxEntries:        o.quotaEntries,
			RequestsPerSecond: o.quotaRPS,
			Burst:             o.quotaBurst,
		},
		DefaultTimeout: o.requestTimeout,
		MaxConcurrent:  o.maxConcurrent,
		MaxQueue:       o.maxQueue,
		QueueTimeout:   o.queueTimeout,
		UsageTopK:      o.usageTopK,
		UsageWindow:    o.usageWindow,
		UsageMetrics:   o.usageMetrics,
	}
	switch {
	case o.authKeys != "" && o.authFile != "":
		return fmt.Errorf("-auth-keys and -auth-file are mutually exclusive")
	case o.authKeys != "":
		auth, err := server.ParseAuthKeys(o.authKeys)
		if err != nil {
			return err
		}
		cfg.Auth = auth
	case o.authFile != "":
		auth, err := server.LoadAuthKeysFile(o.authFile)
		if err != nil {
			return err
		}
		cfg.Auth = auth
	}
	if cfg.Auth.Enabled() {
		logger.Info("auth enabled", "tenants", cfg.Auth.Tenants())
	}
	if o.workers != "" {
		raw, err := cluster.Transports(o.workers, nil)
		if err != nil {
			return err
		}
		// Wrap each worker in a circuit breaker once, daemon-wide: every
		// session shares one health view per worker, a failing worker is
		// skipped (straight to the replica or local fallback) instead of
		// timing out request after request, and the breaker probes it back
		// in with exponential backoff.
		wrapped, breakers := cluster.WrapBreakers(raw, cluster.BreakerConfig{Cooldown: o.breakerCool})
		// The load recorders sit outside the breakers so breaker rejections
		// land in each worker's observed outcome mix instead of vanishing.
		transports, loads := cluster.WrapLoad(wrapped)
		// The fleet view probes the raw transports (an open breaker must not
		// veto a health probe) and joins breaker + load state per worker.
		fleet := cluster.NewFleet(cluster.FleetConfig{Probes: raw, Breakers: breakers, Loads: loads})
		cfg.Fleet = fleet.Report
		// Every uploaded corpus becomes a coordinator session: its stripe
		// spans are partitioned across the worker fleet and solves/evaluates
		// scatter/gather over it. /healthz degrades to 503 while any worker
		// is unreachable (solves still succeed via the local fallback).
		cfg.NewSolver = func(w *bundling.Matrix, opts bundling.Options) (server.Solver, error) {
			return cluster.NewSolver(w, opts, cluster.Config{Workers: transports, RequestTimeout: o.rpcTimeout})
		}
		cfg.Ready = cluster.Ready(transports, 0)
		cfg.WorkerStatus = func() []server.WorkerStatusDoc {
			docs := make([]server.WorkerStatusDoc, len(breakers))
			for i, b := range breakers {
				s := b.Snapshot()
				docs[i] = server.WorkerStatusDoc{
					Addr: s.Addr, State: s.State, FailureRate: s.FailureRate,
					Trips: s.Trips, RetryInMs: s.RetryInMs,
				}
			}
			return docs
		}
		cfg.ExtraMetrics = func() ([]server.GaugeRow, []server.CounterRow) {
			// Rows sharing a metric name must be adjacent: the renderer
			// emits one HELP/TYPE header per consecutive name run.
			snaps := make([]cluster.BreakerSnapshot, len(breakers))
			labels := make([]string, len(breakers))
			for i, b := range breakers {
				snaps[i] = b.Snapshot()
				labels[i] = fmt.Sprintf("worker=%q", snaps[i].Addr)
			}
			var gauges []server.GaugeRow
			var counters []server.CounterRow
			for i, s := range snaps {
				open := 0.0
				if s.State != "closed" {
					open = 1
				}
				gauges = append(gauges, server.GaugeRow{Name: "bundled_worker_breaker_open", Help: "1 while the worker's circuit breaker is open or probing, 0 when closed.", Labels: labels[i], Value: open})
			}
			for i, s := range snaps {
				gauges = append(gauges, server.GaugeRow{Name: "bundled_worker_breaker_failure_rate", Help: "Failure fraction in the worker's breaker window.", Labels: labels[i], Value: s.FailureRate})
			}
			for i, s := range snaps {
				counters = append(counters, server.CounterRow{Name: "bundled_worker_breaker_trips_total", Help: "Times the worker's circuit breaker opened.", Labels: labels[i], Value: s.Trips})
			}
			for i, s := range snaps {
				counters = append(counters, server.CounterRow{Name: "bundled_worker_breaker_rejected_total", Help: "Calls rejected without dialing by the worker's open breaker.", Labels: labels[i], Value: s.Rejected})
			}
			bin, legacy := cluster.FeedBytes()
			counters = append(counters,
				server.CounterRow{Name: "bundled_feed_bytes_total", Help: "Span-feed payload bytes shipped to workers, by codec.", Labels: `codec="bin"`, Value: bin},
				server.CounterRow{Name: "bundled_feed_bytes_total", Help: "Span-feed payload bytes shipped to workers, by codec.", Labels: `codec="json"`, Value: legacy},
			)
			loadG, loadC := fleet.MetricRows()
			return append(gauges, loadG...), append(counters, loadC...)
		}
		logger.Info("cluster mode", "workers", len(transports), "addrs", o.workers)
	}
	var store *server.Store
	if o.dataDir != "" {
		var err error
		store, err = server.OpenStore(o.dataDir)
		if err != nil {
			return err
		}
		if o.deltaFold > 0 {
			store.SetDeltaFold(o.deltaFold)
		}
		defer func() {
			// Graceful flush: the final compaction pass runs after the
			// listener has drained and the sessions are released.
			if err := store.Close(); err != nil {
				logger.Error("store close failed", "err", err)
			}
		}()
		cfg.Store = store
	}
	srv := server.New(cfg)
	defer srv.Close()
	if store != nil {
		restored, err := srv.Restore()
		if err != nil {
			// Boot with what the manifest describes; a skipped entry reads
			// as a missing corpus, which operators can see and re-upload.
			logger.Warn("restore incomplete", "err", err)
		}
		logger.Info("serving persisted corpora (lazy: each re-indexes on first use)", "corpora", restored, "dir", store.Dir())
	}
	if o.demo {
		if err := preloadDemo(srv, o.demoUsers, o.demoItems); err != nil {
			return fmt.Errorf("demo corpus: %w", err)
		}
		logger.Info("preloaded synthetic corpus", "session", "demo", "users", o.demoUsers, "items", o.demoItems)
	}

	hs := &http.Server{
		Addr:              o.addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		logger.Info("bundled listening", "addr", o.addr, "pprof", o.pprof)
		errCh <- hs.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down", "drain_seconds", o.drainSecs)
	drainCtx, cancel := context.WithTimeout(context.Background(), time.Duration(o.drainSecs)*time.Second)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("bundled stopped")
	return nil
}

// preloadDemo generates a deterministic synthetic corpus and registers it
// as session "demo" through the server's own HTTP handler, so a fresh
// daemon is immediately usable (and smoke-testable) without an upload step.
func preloadDemo(srv *server.Server, users, items int) error {
	ds, err := bundling.GenerateDataset(bundling.DatasetConfig{
		Users: users, Items: items, RatingsPerUser: 15, MinDegree: 4, Seed: 1,
	})
	if err != nil {
		return err
	}
	w, err := ds.WTP(bundling.DefaultLambda)
	if err != nil {
		return err
	}
	return server.Preload(srv, "demo", w, bundling.Options{})
}
