// Quickstart reproduces the paper's introductory example (Table 1): three
// consumers, two items, and the revenue of the three selling strategies —
// individual components, pure bundling, and mixed bundling.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bundling"
)

func main() {
	// Willingness to pay, straight from the paper's Table 1:
	//            item A   item B
	//   u1       $12.00    $4.00
	//   u2        $8.00    $2.00
	//   u3        $5.00   $11.00
	w := bundling.NewMatrix(3, 2)
	w.MustSet(0, 0, 12)
	w.MustSet(0, 1, 4)
	w.MustSet(1, 0, 8)
	w.MustSet(1, 1, 2)
	w.MustSet(2, 0, 5)
	w.MustSet(2, 1, 11)

	// The two books are mild substitutes: θ = -0.05.
	opts := bundling.Options{Theta: -0.05, PriceLevels: 2000}

	components, err := bundling.SolveComponents(w, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Components:     revenue $%.2f\n", components.Revenue)
	for _, b := range components.Bundles {
		fmt.Printf("  item %v at $%.2f → $%.2f\n", b.Items, b.Price, b.Revenue)
	}

	pure, err := bundling.Configure(w, opts) // pure bundling is the default
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pure bundling:  revenue $%.2f\n", pure.Revenue)
	for _, b := range pure.Bundles {
		fmt.Printf("  bundle %v at $%.2f → $%.2f\n", b.Items, b.Price, b.Revenue)
	}

	opts.Strategy = bundling.Mixed
	mixed, err := bundling.Configure(w, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Mixed bundling: revenue $%.2f\n", mixed.Revenue)
	for _, b := range mixed.Bundles {
		fmt.Printf("  bundle %v at $%.2f (adds $%.2f)\n", b.Items, b.Price, b.Revenue)
	}
	for _, c := range mixed.Components {
		fmt.Printf("  component %v stays on sale at $%.2f\n", c.Items, c.Price)
	}

	gain, err := bundling.Gain(mixed, w, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMixed bundling gains %.1f%% over selling items individually.\n", gain)
}
