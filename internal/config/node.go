package config

import (
	"fmt"
	"sort"

	"bundling/internal/pricing"
	"bundling/internal/wtp"
)

// node is a bundle under construction inside the iterative algorithms. It
// caches the bundle's interested-consumer vector and pricing so merge
// evaluations do not rescan the WTP matrix for unchanged bundles.
//
// Under mixed bundling a node additionally carries per-consumer market
// state for its subtree of offers (the bundle itself plus every retained
// sub-bundle): pay[j] is consumer ids[j]'s total expected payment within
// the subtree, surp[j] the deterministic surplus of those purchases (the
// choice currency of the upgrade rule), cost[j] the expected variable cost
// of serving them and esur[j] the expected consumer surplus. Merge deltas
// are computed against this state — the paper's Table 6 accounting — which
// keeps every consumer counted exactly once and total revenue bounded by
// total willingness to pay.
type node struct {
	items []int     // ascending item ids
	ids   []int     // interested consumers, ascending
	vals  []float64 // bundle WTP per interested consumer (Eq. 1)
	quote pricing.Quote
	// revenue, profit, surplus and util are the node subtree's expected
	// totals; util (= α·profit + (1-α)·surplus) is the currency every
	// merge gain is measured in. Under the paper's default objective
	// util == profit == revenue.
	revenue float64
	profit  float64
	surplus float64
	util    float64
	unitC   float64 // bundle unit cost (Σ item costs)
	// Mixed-bundling per-consumer state (nil under pure bundling):
	pay  []float64
	surp []float64
	cost []float64
	esur []float64
	// comps are the retained sub-bundles (mixed only), flattened over the
	// node's merge history; they form the X'_I output.
	comps []Bundle
	fresh bool // formed in the most recent iteration
	dead  bool // merged away (greedy bookkeeping)
}

// engine carries shared state for the configuration algorithms.
type engine struct {
	w      *wtp.Matrix
	params Params
	pr     *pricing.Pricer
	k      int
}

func newEngine(w *wtp.Matrix, params Params) (*engine, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if params.UnitCosts != nil && len(params.UnitCosts) != w.Items() {
		return nil, errCostCount(len(params.UnitCosts), w.Items())
	}
	pr, err := params.pricer()
	if err != nil {
		return nil, err
	}
	return &engine{w: w, params: params, pr: pr, k: params.maxSize()}, nil
}

// objective assembles the pricing objective for a bundle: the configured
// profit weight α and the bundle's summed unit cost.
func (e *engine) objective(items []int) pricing.Objective {
	obj := pricing.Objective{ProfitWeight: e.params.ProfitWeight}
	if e.params.UnitCosts != nil {
		for _, i := range items {
			obj.UnitCost += e.params.UnitCosts[i]
		}
	}
	return obj
}

// singletons builds the initial one-item nodes (XI in Algorithms 1 and 2).
func (e *engine) singletons() []*node {
	nodes := make([]*node, e.w.Items())
	for i := range nodes {
		n := &node{items: []int{i}, fresh: true}
		// θ never applies to a single item: Eq. 1 degenerates to the raw WTP.
		n.ids, n.vals = e.w.BundleVector(n.items, 0, nil, nil)
		uq := e.pr.PriceUtility(n.vals, e.objective(n.items))
		n.quote = uq.Quote
		n.revenue, n.profit, n.surplus, n.util = uq.Revenue, uq.Profit, uq.Surplus, uq.Utility
		n.unitC = e.objective(n.items).UnitCost
		if e.params.Strategy == Mixed {
			e.initState(n)
		}
		nodes[i] = n
	}
	return nodes
}

// initState populates a node's per-consumer market state from its
// standalone quote: each consumer's expected payment at the node's price,
// the deterministic surplus of buying it, and the cost/surplus expectations.
func (e *engine) initState(n *node) {
	n.pay = make([]float64, len(n.ids))
	n.surp = make([]float64, len(n.ids))
	n.cost = make([]float64, len(n.ids))
	n.esur = make([]float64, len(n.ids))
	model := e.params.Model
	alpha := model.Alpha()
	var pay, cost, sur float64
	for j, w := range n.vals {
		p := model.Probability(n.quote.Price, w)
		n.pay[j] = n.quote.Price * p
		n.cost[j] = n.unitC * p
		if s := alpha*w - n.quote.Price; s > 0 && p > 0 {
			n.surp[j] = s
			n.esur[j] = s * p
		}
		pay += n.pay[j]
		cost += n.cost[j]
		sur += n.esur[j]
	}
	n.revenue = pay
	n.profit = pay - cost
	n.surplus = sur
	n.util = e.params.ProfitWeight*n.profit + (1-e.params.ProfitWeight)*n.surplus
}

// mergeable applies the size cap and the paper's common-interest pruning.
// The pruning is valid only for θ ≤ 0: with independent or substitute
// items, no consumer interested in just one side ever yields extra bundle
// revenue; with complements (θ > 0) a bundle can profit even without a
// common consumer, so the filter is skipped.
func (e *engine) mergeable(a, b *node) bool {
	if len(a.items)+len(b.items) > e.k {
		return false
	}
	if e.params.Theta > 0 || e.params.DisablePruning {
		return true
	}
	return idsIntersect(a.ids, b.ids)
}

// evalMerge prices the merge of a and b and returns the candidate merged
// node along with the utility gain over keeping a and b as they are. The
// returned node is fully formed but not yet inserted anywhere. A nil node
// means the merge is infeasible.
func (e *engine) evalMerge(a, b *node) (*node, float64) {
	return e.evalMergeWith(e.pr, a, b)
}

// evalMergeWith is evalMerge with an explicit pricer, so concurrent
// evaluations can each own a pricer (scratch buffers are not shareable).
func (e *engine) evalMergeWith(pr *pricing.Pricer, a, b *node) (*node, float64) {
	items := mergeItems(a.items, b.items)
	n := &node{items: items, fresh: true}
	n.ids, n.vals = e.w.BundleVector(items, e.params.Theta, nil, nil)
	n.unitC = e.objective(items).UnitCost
	switch e.params.Strategy {
	case Pure:
		uq := pr.PriceUtility(n.vals, e.objective(items))
		n.quote = uq.Quote
		n.revenue, n.profit, n.surplus, n.util = uq.Revenue, uq.Profit, uq.Surplus, uq.Utility
		return n, n.util - a.util - b.util
	default:
		return e.evalMergeMixed(pr, n, a, b)
	}
}

// evalMergeMixed prices the new bundle against the combined current state
// of both subtrees (their offers are item-disjoint, so states add), within
// the paper's price window (max component price, sum of component prices).
func (e *engine) evalMergeMixed(pr *pricing.Pricer, n *node, a, b *node) (*node, float64) {
	curPay := alignVals(n.ids, a.ids, a.pay)
	curSurp := alignVals(n.ids, a.ids, a.surp)
	curCost := alignVals(n.ids, a.ids, a.cost)
	curESur := alignVals(n.ids, a.ids, a.esur)
	bPay := alignVals(n.ids, b.ids, b.pay)
	bSurp := alignVals(n.ids, b.ids, b.surp)
	bCost := alignVals(n.ids, b.ids, b.cost)
	bESur := alignVals(n.ids, b.ids, b.esur)
	for j := range curPay {
		curPay[j] += bPay[j]
		curSurp[j] += bSurp[j]
		curCost[j] += bCost[j]
		curESur[j] += bESur[j]
	}
	lo := a.quote.Price
	if b.quote.Price > lo {
		lo = b.quote.Price
	}
	mq := pr.PriceMixed(pricing.MixedOffer{
		CurPay:      curPay,
		CurSurplus:  curSurp,
		CurCost:     curCost,
		CurESurplus: curESur,
		WB:          n.vals,
		Lo:          lo,
		Hi:          a.quote.Price + b.quote.Price,
		BundleCost:  n.unitC,
		Obj:         pricing.Objective{ProfitWeight: e.params.ProfitWeight, UnitCost: n.unitC},
	})
	delta := mq.Utility - mq.BaselineUtility
	if !mq.Feasible || delta <= minGain {
		return nil, 0
	}
	// Commit the new state: every consumer re-resolves at the chosen price.
	n.pay = make([]float64, len(n.ids))
	n.surp = make([]float64, len(n.ids))
	n.cost = make([]float64, len(n.ids))
	n.esur = make([]float64, len(n.ids))
	alpha := e.params.Model.Alpha()
	var pay, cost, sur float64
	for j := range n.ids {
		pj, prob, switched := pr.ResolveSwitch(n.vals[j], curPay[j], curSurp[j], mq.Price)
		n.pay[j] = pj
		if switched {
			n.cost[j] = n.unitC * prob
			if s := alpha*n.vals[j] - mq.Price; s > 0 {
				n.surp[j] = s
				n.esur[j] = s * prob
			}
		} else {
			n.surp[j] = curSurp[j]
			n.cost[j] = curCost[j]
			n.esur[j] = curESur[j]
		}
		pay += n.pay[j]
		cost += n.cost[j]
		sur += n.esur[j]
	}
	n.revenue = pay
	n.profit = pay - cost
	n.surplus = sur
	n.util = e.params.ProfitWeight*n.profit + (1-e.params.ProfitWeight)*n.surplus
	n.quote = pricing.Quote{Price: mq.Price, Revenue: mq.Revenue - mq.Baseline, Adopters: mq.Adopters}
	n.comps = append(n.comps, a.comps...)
	n.comps = append(n.comps, b.comps...)
	n.comps = append(n.comps, a.asBundle(), b.asBundle())
	return n, delta
}

// asBundle converts a node to its output Bundle form. For a mixed-bundling
// merge node, Revenue is the incremental revenue the bundle added over its
// components (the paper's "Add. revenue" column).
func (n *node) asBundle() Bundle {
	return Bundle{Items: append([]int(nil), n.items...), Price: n.quote.Price, Revenue: n.quote.Revenue}
}

// finish assembles the Configuration from surviving nodes.
func (e *engine) finish(nodes []*node, iterations int, trace []IterationStat) *Configuration {
	cfg := &Configuration{Strategy: e.params.Strategy, Iterations: iterations, Trace: trace}
	for _, n := range nodes {
		if n.dead {
			continue
		}
		cfg.Bundles = append(cfg.Bundles, n.asBundle())
		cfg.Components = append(cfg.Components, n.comps...)
		cfg.Revenue += n.revenue
		cfg.Profit += n.profit
		cfg.Surplus += n.surplus
		cfg.Utility += n.util
	}
	sort.Slice(cfg.Bundles, func(i, j int) bool { return cfg.Bundles[i].Items[0] < cfg.Bundles[j].Items[0] })
	return cfg
}

func errCostCount(got, want int) error {
	return fmt.Errorf("config: %d unit costs for %d items", got, want)
}

// mergeItems unions two ascending item lists.
func mergeItems(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// idsIntersect reports whether two ascending id lists share an element.
func idsIntersect(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// alignVals scatters (srcIDs, srcVals) onto the consumer axis given by
// unionIDs (ascending, a superset of srcIDs), filling gaps with zero.
func alignVals(unionIDs, srcIDs []int, srcVals []float64) []float64 {
	out := make([]float64, len(unionIDs))
	j := 0
	for i, id := range unionIDs {
		if j < len(srcIDs) && srcIDs[j] == id {
			out[i] = srcVals[j]
			j++
		}
	}
	return out
}
