package config

import (
	"runtime"
	"sync"
	"sync/atomic"

	"bundling/internal/obs"
	"bundling/internal/pricing"
)

// parallelism resolves the effective worker count.
func (p Params) parallelism() int {
	if p.Parallelism > 0 {
		return p.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// minParallelJobs is the batch size below which spawning workers costs more
// than it saves; smaller batches (e.g. the late iterations of GreedyMerge,
// when few live bundles remain) are priced serially.
const minParallelJobs = 8

// pairJob is one candidate merge to evaluate.
type pairJob struct {
	u, v int
}

// pairResult is the outcome of evaluating one candidate merge.
type pairResult struct {
	u, v   int
	merged *node
	gain   float64
}

// workerCtx is one evaluation thread's private scratch: the merge buffers
// and the pricing scratch (the Pricer itself is stateless and shared).
// Contexts live in the session's pool and are borrowed per run.
type workerCtx struct {
	sc  *mergeScratch
	psc *pricing.Scratch
}

// evalPairs prices every candidate pair concurrently. Work is distributed
// in contiguous chunks claimed off an atomic cursor, so workers synchronize
// a handful of times per batch instead of once per job. Results are keyed
// by job index, making the output deterministic regardless of worker count.
// Infeasible candidates are dropped; non-gaining ones too, unless keepAll
// (the greedy run-to-end variant needs every mergeable pair).
func (e *engine) evalPairs(nodes []*node, jobs []pairJob, keepAll bool) []pairResult {
	if len(jobs) == 0 {
		return nil
	}
	_, sp := obs.StartSpan(e.reqCtx, "price_candidates")
	sp.Tag("pairs", len(jobs))
	defer sp.End()
	workers := e.params.parallelism()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 || len(jobs) < minParallelJobs {
		out := make([]pairResult, 0, len(jobs))
		for _, j := range jobs {
			if e.reqCtx.Err() != nil {
				// Abort the batch; the caller notices at its next canceled()
				// check, so partial results are never acted on.
				return out
			}
			if merged, gain := e.evalMerge(nodes[j.u], nodes[j.v], keepAll); merged != nil {
				out = append(out, pairResult{u: j.u, v: j.v, merged: merged, gain: gain})
			}
		}
		return out
	}
	ws := e.workerPool(workers)
	results := make([]pairResult, len(jobs))
	chunk := len(jobs)/(workers*8) + 1
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(ctx *workerCtx) {
			defer wg.Done()
			for {
				if e.reqCtx.Err() != nil {
					// Stop claiming chunks; the caller's next canceled()
					// check discards the partial batch.
					return
				}
				end := int(cursor.Add(int64(chunk)))
				start := end - chunk
				if start >= len(jobs) {
					return
				}
				if end > len(jobs) {
					end = len(jobs)
				}
				for idx := start; idx < end; idx++ {
					j := jobs[idx]
					if merged, gain := e.evalMergeWith(ctx, nodes[j.u], nodes[j.v], keepAll); merged != nil {
						results[idx] = pairResult{u: j.u, v: j.v, merged: merged, gain: gain}
					}
				}
			}
		}(ws[w])
	}
	wg.Wait()
	out := make([]pairResult, 0, len(jobs))
	for _, r := range results {
		if r.merged != nil {
			out = append(out, r)
		}
	}
	return out
}
