package server

import (
	"context"
	"time"
)

// limiter is the solve/evaluate admission gate: a fixed pool of execution
// slots plus a short bounded queue. A request takes a free slot
// immediately; when all slots are busy it waits in the queue up to the
// queue timeout, and is shed — fast, with 503 + Retry-After at the
// handler — when the queue itself is full or the wait runs out. Bounding
// both the concurrency and the queue keeps an overloaded daemon at its
// sustainable throughput with a small, predictable latency floor instead
// of collapsing under an unbounded backlog.
type limiter struct {
	slots   chan struct{}
	queue   chan struct{}
	timeout time.Duration
}

// newLimiter sizes the gate; maxConcurrent < 0 disables admission control
// entirely (nil limiter), maxQueue < 0 disables queueing (shed the moment
// no slot is free).
func newLimiter(maxConcurrent, maxQueue int, timeout time.Duration) *limiter {
	if maxConcurrent < 0 {
		return nil
	}
	if maxConcurrent == 0 {
		maxConcurrent = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &limiter{
		slots:   make(chan struct{}, maxConcurrent),
		queue:   make(chan struct{}, maxQueue),
		timeout: timeout,
	}
}

// acquire takes an execution slot, waiting in the bounded queue when none
// is free. ok=false means the request was shed (queue full, wait timed
// out, or the caller's context ended); on ok the returned release must be
// called exactly once.
func (l *limiter) acquire(ctx context.Context) (release func(), ok bool) {
	if l == nil {
		return func() {}, true
	}
	select {
	case l.slots <- struct{}{}:
		return func() { <-l.slots }, true
	default:
	}
	select {
	case l.queue <- struct{}{}:
		defer func() { <-l.queue }()
	default:
		return nil, false
	}
	t := time.NewTimer(l.timeout)
	defer t.Stop()
	select {
	case l.slots <- struct{}{}:
		return func() { <-l.slots }, true
	case <-t.C:
		return nil, false
	case <-ctx.Done():
		return nil, false
	}
}
