package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bundling"
	"bundling/internal/obs"
	"bundling/internal/server"
)

// TestTracePropagationAcrossCluster is the end-to-end observability gate:
// an HTTP coordinator over two HTTP workers serves one solve, and that one
// request must yield a single trace whose span tree covers admission, the
// solve loop, candidate pricing and every worker RPC — with each worker's
// own /debug/traces recording its side of the RPCs under the coordinator's
// trace ID.
func TestTracePropagationAcrossCluster(t *testing.T) {
	workers := make([]*Worker, 2)
	transports := make([]Transport, 2)
	for i := range workers {
		workers[i] = NewWorker(WorkerConfig{TraceRing: 0}) // 0 = default ring, enabled
		wts := httptest.NewServer(workers[i].Handler())
		defer wts.Close()
		transports[i] = NewHTTP(wts.URL, nil)
	}

	srv := server.New(server.Config{
		NewSolver: func(w *bundling.Matrix, opts bundling.Options) (server.Solver, error) {
			return NewSolver(w, opts, Config{Workers: transports})
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	w := testMatrix(t, 160, 12, 9)
	if err := server.Preload(srv, "dist", w, bundling.Options{StripeSize: 16}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/v1/corpora/dist/solve", "application/json",
		strings.NewReader(`{"algorithm":"matching"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d: %s", resp.StatusCode, body)
	}
	traceID := resp.Header.Get(obs.HeaderTrace)
	if traceID == "" {
		t.Fatal("solve response missing X-Trace-Id")
	}

	// The coordinator's ring must hold the full tree for that trace.
	tr, err := http.Get(ts.URL + "/debug/traces?limit=1")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	var list server.TracesResponse
	if err := json.NewDecoder(tr.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(list.Traces))
	}
	doc := list.Traces[0]
	if doc.TraceID != traceID {
		t.Fatalf("ring trace %q != response trace %q", doc.TraceID, traceID)
	}

	spansByName := map[string][]obs.SpanDoc{}
	for _, sp := range doc.Spans {
		spansByName[sp.Name] = append(spansByName[sp.Name], sp)
	}
	for _, want := range []string{"request", "queue", "solve", "price_candidates", "rpc"} {
		if len(spansByName[want]) == 0 {
			t.Errorf("trace missing %q span", want)
		}
	}
	// The fan-out must have touched both workers, and every rpc span must
	// be tagged with its op, worker and outcome.
	tag := func(sp obs.SpanDoc, key string) string {
		for _, tg := range sp.Tags {
			if tg.Key == key {
				return tg.Value
			}
		}
		return ""
	}
	seenWorkers := map[string]bool{}
	for _, sp := range spansByName["rpc"] {
		if tag(sp, "op") == "" || tag(sp, "outcome") == "" {
			t.Fatalf("rpc span missing op/outcome tags: %+v", sp.Tags)
		}
		seenWorkers[tag(sp, "worker")] = true
	}
	for _, tp := range transports {
		if !seenWorkers[tp.Addr()] {
			t.Errorf("no rpc span touched worker %s (saw %v)", tp.Addr(), seenWorkers)
		}
	}
	// Root must parent the tree and the named stages must account for the
	// bulk of the request: the solve span alone covers the engine run.
	root := spansByName["request"][0]
	if root.Parent != 0 || root.ID != 1 {
		t.Errorf("root span id=%d parent=%d, want 1/0", root.ID, root.Parent)
	}
	if solve := spansByName["solve"][0]; solve.DurMS > root.DurMS {
		t.Errorf("solve span %.3fms longer than root %.3fms", solve.DurMS, root.DurMS)
	}

	// Each worker recorded its side of the RPCs under the same trace ID.
	for i, wk := range workers {
		var matched int
		for _, wdoc := range wk.Traces(0) {
			if wdoc.TraceID != traceID {
				continue
			}
			matched++
			if len(wdoc.Spans) != 1 || !strings.HasPrefix(wdoc.Spans[0].Name, "worker.") {
				t.Fatalf("worker %d: unexpected record %+v", i, wdoc.Spans)
			}
			if wdoc.Spans[0].Parent == 0 {
				t.Errorf("worker %d: record not parented to a coordinator span", i)
			}
		}
		if matched == 0 {
			t.Errorf("worker %d holds no records for trace %s", i, traceID)
		}
	}
}

// TestWorkerDebugTracesHTTP asserts the worker daemon serves its RPC
// records over its own /debug/traces route.
func TestWorkerDebugTracesHTTP(t *testing.T) {
	wk := NewWorker(WorkerConfig{TraceRing: 0})
	wts := httptest.NewServer(wk.Handler())
	defer wts.Close()

	w := testMatrix(t, 64, 12, 11)
	cs, err := NewSolver(w, bundling.Options{StripeSize: 16}, Config{Workers: []Transport{NewHTTP(wts.URL, nil)}})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	cs.exec.feeding.Wait()

	tr := obs.NewTrace("", 0)
	ctx := obs.ContextWithTrace(t.Context(), tr)
	ctx, root := obs.StartSpan(ctx, "request")
	if _, err := cs.EvaluateContext(ctx, evalOffers()); err != nil {
		t.Fatal(err)
	}
	root.End()

	resp, err := http.Get(wts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces: %d", resp.StatusCode)
	}
	var list struct {
		Traces []obs.TraceDoc `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, doc := range list.Traces {
		if doc.TraceID == tr.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("worker ring holds no records for trace %s", tr.ID)
	}
}

// TestDegradedPathSpans asserts the resilience ladder shows up in traces:
// a worker behind a tripped breaker records an rpc span with
// outcome=breaker_open, and the local fallback records one with
// worker=local outcome=local_fallback.
func TestDegradedPathSpans(t *testing.T) {
	_, transports := fleet(1)
	f0 := &flaky{Transport: transports[0]}
	wrapped, _ := WrapBreakers([]Transport{f0}, BreakerConfig{MinSamples: 1, Cooldown: time.Minute})
	cs, err := NewSolver(testMatrix(t, 96, 10, 12), bundling.Options{StripeSize: 16},
		Config{Workers: wrapped})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	cs.exec.feeding.Wait()
	f0.down.Store(true)

	collect := func() map[string]int {
		tr := obs.NewTrace("", 0)
		ctx := obs.ContextWithTrace(t.Context(), tr)
		ctx, root := obs.StartSpan(ctx, "request")
		if _, err := cs.EvaluateContext(ctx, evalOffers()); err != nil {
			t.Fatal(err)
		}
		root.End()
		outcomes := map[string]int{}
		for _, sp := range tr.Finish().Spans {
			if sp.Name != "rpc" {
				continue
			}
			for _, tg := range sp.Tags {
				if tg.Key == "outcome" {
					outcomes[tg.Value]++
				}
			}
		}
		return outcomes
	}

	// First pass trips the breaker (errors), falling back locally.
	first := collect()
	if first["error"] == 0 || first["local_fallback"] == 0 {
		t.Fatalf("first pass outcomes %v, want error + local_fallback", first)
	}
	// Second pass is rejected without dialing by the open breaker.
	second := collect()
	if second["breaker_open"] == 0 || second["local_fallback"] == 0 {
		t.Fatalf("second pass outcomes %v, want breaker_open + local_fallback", second)
	}
}
