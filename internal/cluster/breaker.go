package cluster

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	mrand "math/rand"
	"sync"
	"time"
)

// ErrBreakerOpen is returned by a Breaker transport when the worker's
// circuit is open: the call was rejected before dialing. It is distinct
// from ErrSpan on purpose — an open breaker must not trigger the span
// re-feed ladder (the worker is unreachable, not stale); the coordinator's
// retry ladder moves straight on to the replica or the local span store.
var ErrBreakerOpen = errors.New("cluster: circuit breaker open")

// BreakerState is a circuit breaker's health state.
type BreakerState int

const (
	// BreakerClosed: the worker is healthy; calls pass through.
	BreakerClosed BreakerState = iota
	// BreakerOpen: recent calls failed beyond the threshold; calls are
	// rejected without dialing until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; a single probe call is in
	// flight to decide between closing and re-opening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// BreakerConfig tunes a worker circuit breaker. The zero value selects the
// defaults noted per field.
type BreakerConfig struct {
	// Window is the sliding sample window: the trip decision looks at the
	// outcomes of the last Window recorded calls (0 = 20).
	Window int
	// FailureThreshold is the failure fraction within the window at or
	// above which the breaker trips (0 = 0.5).
	FailureThreshold float64
	// MinSamples is the minimum number of recorded calls before the
	// breaker may trip, so one early failure cannot open it (0 = 5).
	MinSamples int
	// Cooldown is the first open period. Consecutive re-opens double it —
	// with ±25% jitter so probes across breakers de-synchronize — up to
	// MaxCooldown; a successful probe resets the ladder (0 = 1s).
	Cooldown time.Duration
	// MaxCooldown caps the exponential cooldown (0 = 30s).
	MaxCooldown time.Duration
	// Seed seeds the jitter RNG; 0 draws a random seed. Tests pin it for
	// deterministic cooldown schedules.
	Seed int64
	// now is the test clock hook (nil = time.Now).
	now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 20
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	if c.MaxCooldown <= 0 {
		c.MaxCooldown = 30 * time.Second
	}
	if c.MaxCooldown < c.Cooldown {
		c.MaxCooldown = c.Cooldown
	}
	if c.Seed == 0 {
		var b [8]byte
		if _, err := crand.Read(b[:]); err == nil {
			c.Seed = int64(binary.LittleEndian.Uint64(b[:]) | 1)
		} else {
			c.Seed = 1
		}
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// BreakerSnapshot is one breaker's observable state, surfaced on /healthz
// and as Prometheus gauges.
type BreakerSnapshot struct {
	Addr        string  `json:"addr"`
	State       string  `json:"state"`
	Failures    int     `json:"window_failures"`
	Samples     int     `json:"window_samples"`
	FailureRate float64 `json:"failure_rate"`
	Trips       int64   `json:"trips"`
	Rejected    int64   `json:"rejected"`
	// RetryInMs is how long until the next probe is allowed (0 when the
	// breaker is not open).
	RetryInMs int64 `json:"retry_in_ms,omitempty"`
}

// Breaker wraps a worker Transport with a circuit breaker: a sliding
// window of call outcomes trips it open when the worker is failing, open
// calls are rejected with ErrBreakerOpen before dialing (so the
// coordinator's retry ladder skips straight to the replica or local
// fallback instead of waiting out a timeout per request), and after an
// exponentially backed-off cooldown a single half-open probe decides
// whether to close again.
//
// Outcome classification: nil and ErrSpan results count as successes (a
// stale-span rejection proves the worker is alive and answering); a
// canceled caller context records nothing (the caller gave up — that says
// nothing about the worker); every other error, including deadline
// expiry, counts as a failure. Health probes pass through unrecorded and
// ungated, so readiness checks keep observing the real worker while the
// breaker is open.
//
// A Breaker is safe for concurrent use. Wrap each fleet transport once at
// daemon startup (see cmd/bundled) so every session shares one health
// view per worker.
type Breaker struct {
	t   Transport
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	window   []bool // ring buffer of outcomes, true = failure
	size     int    // samples recorded, ≤ len(window)
	head     int    // next write position
	fails    int    // failures currently in the window
	openTill time.Time
	reopens  int   // consecutive re-opens, drives the cooldown ladder
	probing  bool  // a half-open probe is in flight
	trips    int64 // lifetime open transitions
	rejected int64 // lifetime ErrBreakerOpen rejections
	rng      *mrand.Rand
}

// NewBreaker wraps t with a circuit breaker.
func NewBreaker(t Transport, cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{
		t:      t,
		cfg:    cfg,
		window: make([]bool, cfg.Window),
		rng:    mrand.New(mrand.NewSource(cfg.Seed)),
	}
}

// allow decides whether a call may proceed, transitioning open → half-open
// when the cooldown has elapsed.
func (b *Breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.now().Before(b.openTill) {
			b.rejected++
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // BreakerHalfOpen
		if b.probing {
			b.rejected++
			return false
		}
		b.probing = true
		return true
	}
}

// record classifies one call outcome. ctx is the caller's context, used to
// leave canceled calls unrecorded.
func (b *Breaker) record(ctx context.Context, err error) {
	failure := err != nil && !errors.Is(err, ErrSpan)
	if failure && ctx.Err() != nil && !errors.Is(err, context.DeadlineExceeded) {
		// The caller went away mid-call; the outcome says nothing about the
		// worker. A deadline expiry still counts — a worker that cannot
		// answer within the RPC budget is failing for the ladder's purposes.
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
		if failure {
			b.trip()
		} else {
			b.reset()
		}
		return
	}
	if b.state == BreakerOpen {
		// A straggler from before the trip; the window was cleared.
		return
	}
	if b.size == len(b.window) {
		if b.window[b.head] {
			b.fails--
		}
	} else {
		b.size++
	}
	b.window[b.head] = failure
	if failure {
		b.fails++
	}
	b.head = (b.head + 1) % len(b.window)
	if failure && b.size >= b.cfg.MinSamples &&
		float64(b.fails)/float64(b.size) >= b.cfg.FailureThreshold {
		b.trip()
	}
}

// trip opens the breaker (caller holds mu).
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.trips++
	d := b.cfg.Cooldown
	for i := 0; i < b.reopens && d < b.cfg.MaxCooldown; i++ {
		d *= 2
	}
	if d > b.cfg.MaxCooldown {
		d = b.cfg.MaxCooldown
	}
	// ±25% jitter: breakers tripped by the same outage probe staggered.
	d += time.Duration(b.rng.Int63n(int64(d)/2+1)) - d/4
	b.openTill = b.cfg.now().Add(d)
	b.reopens++
	// Clear the window: after recovery the worker starts fresh.
	b.size, b.head, b.fails = 0, 0, 0
}

// reset closes the breaker after a successful probe (caller holds mu).
func (b *Breaker) reset() {
	b.state = BreakerClosed
	b.reopens = 0
	b.size, b.head, b.fails = 0, 0, 0
}

// State returns the current state, applying the open → half-open clock
// transition so callers never observe a stale "open" past its cooldown.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && !b.cfg.now().Before(b.openTill) {
		return BreakerHalfOpen
	}
	return b.state
}

// Snapshot reports the breaker's observable state for health endpoints and
// metrics.
func (b *Breaker) Snapshot() BreakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := BreakerSnapshot{
		Addr:     b.t.Addr(),
		State:    b.state.String(),
		Failures: b.fails,
		Samples:  b.size,
		Trips:    b.trips,
		Rejected: b.rejected,
	}
	if b.size > 0 {
		s.FailureRate = float64(b.fails) / float64(b.size)
	}
	if b.state == BreakerOpen {
		if rem := b.openTill.Sub(b.cfg.now()); rem > 0 {
			s.RetryInMs = int64(rem / time.Millisecond)
		} else {
			s.State = BreakerHalfOpen.String()
		}
	}
	return s
}

// call gates and records one transport operation.
func call[T any](b *Breaker, ctx context.Context, op func() (T, error)) (T, error) {
	var zero T
	if !b.allow() {
		return zero, fmt.Errorf("%w: %s", ErrBreakerOpen, b.t.Addr())
	}
	v, err := op()
	b.record(ctx, err)
	return v, err
}

func (b *Breaker) Assign(ctx context.Context, corpus string, req *AssignRequest) error {
	_, err := call(b, ctx, func() (struct{}, error) {
		return struct{}{}, b.t.Assign(ctx, corpus, req)
	})
	return err
}

// Delta gates the span-delta feed like any other RPC when the wrapped
// transport supports it; otherwise it reports delta-unsupported without
// touching the breaker, and the coordinator full-feeds instead.
func (b *Breaker) Delta(ctx context.Context, corpus string, req DeltaRequest) error {
	dt, ok := b.t.(DeltaTransport)
	if !ok {
		return errDeltaUnsupported
	}
	_, err := call(b, ctx, func() (struct{}, error) {
		return struct{}{}, dt.Delta(ctx, corpus, req)
	})
	return err
}

func (b *Breaker) Drop(ctx context.Context, corpus string) error {
	_, err := call(b, ctx, func() (struct{}, error) {
		return struct{}{}, b.t.Drop(ctx, corpus)
	})
	return err
}

func (b *Breaker) Vector(ctx context.Context, corpus string, req VectorRequest) (VectorResponse, error) {
	return call(b, ctx, func() (VectorResponse, error) { return b.t.Vector(ctx, corpus, req) })
}

func (b *Breaker) Union(ctx context.Context, corpus string, req UnionRequest) (VectorResponse, error) {
	return call(b, ctx, func() (VectorResponse, error) { return b.t.Union(ctx, corpus, req) })
}

func (b *Breaker) Stats(ctx context.Context, corpus string, req StatsRequest) (StatsResponse, error) {
	return call(b, ctx, func() (StatsResponse, error) { return b.t.Stats(ctx, corpus, req) })
}

func (b *Breaker) Hist(ctx context.Context, corpus string, req HistRequest) (HistResponse, error) {
	return call(b, ctx, func() (HistResponse, error) { return b.t.Hist(ctx, corpus, req) })
}

// Health passes through unrecorded and ungated: readiness probes must keep
// observing the real worker while the breaker rejects work, or an open
// breaker could never be distinguished from a dead worker on /healthz.
func (b *Breaker) Health(ctx context.Context) (WorkerHealth, error) {
	return b.t.Health(ctx)
}

func (b *Breaker) Addr() string { return b.t.Addr() }

// WrapBreakers wraps every transport in ts with its own breaker under one
// shared config, returning the wrapped fleet and the breakers for health
// and metrics surfacing. The daemon calls this once at startup so all
// sessions share one health view per worker.
func WrapBreakers(ts []Transport, cfg BreakerConfig) ([]Transport, []*Breaker) {
	out := make([]Transport, len(ts))
	bs := make([]*Breaker, len(ts))
	for i, t := range ts {
		b := NewBreaker(t, cfg)
		out[i] = b
		bs[i] = b
	}
	return out, bs
}
