// Command bundleworker is the stripe-span worker daemon of the distributed
// bundle-pricing cluster. A bundled coordinator (started with -workers)
// feeds it contiguous stripe spans of uploaded corpora and then drives the
// scatter/gather evaluate traffic: per-span bundle vectors, cached-vector
// unions, and pricing aggregates (see internal/cluster for the protocol).
//
// Usage:
//
//	bundleworker -addr :9101
//
// Then:
//
//	curl localhost:9101/healthz     # assigned spans + corpus versions
//	curl localhost:9101/metrics     # Prometheus text metrics
//
// Workers are stateless beyond their assigned spans: every request carries
// the corpus snapshot version, and a worker that restarts (or lags a corpus
// re-upload) is simply re-fed by the coordinator on its next request. The
// daemon shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bundling/internal/cluster"
)

func main() {
	var (
		addr      = flag.String("addr", ":9101", "listen address")
		maxSpans  = flag.Int("max-spans", 64, "max assigned spans (LRU eviction beyond)")
		drainSecs = flag.Int("drain-seconds", 15, "graceful shutdown drain window")
	)
	flag.Parse()
	if err := run(*addr, *maxSpans, *drainSecs); err != nil {
		fmt.Fprintln(os.Stderr, "bundleworker:", err)
		os.Exit(1)
	}
}

func run(addr string, maxSpans, drainSecs int) error {
	wk := cluster.NewWorker(cluster.WorkerConfig{MaxSpans: maxSpans})
	hs := &http.Server{
		Addr:              addr,
		Handler:           wk.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("bundleworker listening on %s", addr)
		errCh <- hs.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down, draining for up to %ds", drainSecs)
	drainCtx, cancel := context.WithTimeout(context.Background(), time.Duration(drainSecs)*time.Second)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("bundleworker stopped")
	return nil
}
