package config

import (
	"math"
	"testing"
)

// TestParallelismDeterministic: the configuration is bit-identical across
// worker counts — parallelism must never change results.
func TestParallelismDeterministic(t *testing.T) {
	w := smallRandomMatrix(t, 80, 14, 6)
	for _, strat := range []Strategy{Pure, Mixed} {
		for name, run := range map[string]func(p Params) (*Configuration, error){
			"matching": func(p Params) (*Configuration, error) { return MatchingBased(w, p) },
			"greedy":   func(p Params) (*Configuration, error) { return GreedyMerge(w, p) },
		} {
			var ref *Configuration
			for _, workers := range []int{1, 2, 4, 7} {
				p := DefaultParams()
				p.Strategy = strat
				p.Theta = 0.1
				p.Parallelism = workers
				cfg, err := run(p)
				if err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref = cfg
					continue
				}
				if math.Abs(cfg.Revenue-ref.Revenue) > 1e-12 {
					t.Errorf("%s/%v: revenue differs at %d workers: %g vs %g",
						name, strat, workers, cfg.Revenue, ref.Revenue)
				}
				if len(cfg.Bundles) != len(ref.Bundles) {
					t.Errorf("%s/%v: bundle count differs at %d workers", name, strat, workers)
					continue
				}
				for i := range cfg.Bundles {
					if len(cfg.Bundles[i].Items) != len(ref.Bundles[i].Items) {
						t.Errorf("%s/%v: bundle %d shape differs at %d workers", name, strat, i, workers)
					}
				}
			}
		}
	}
}

func TestParallelismValidation(t *testing.T) {
	p := DefaultParams()
	p.Parallelism = -1
	if err := p.Validate(); err == nil {
		t.Error("negative parallelism should fail validation")
	}
}
