package cluster

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// ewmaAlpha weights the latency EWMA: each new sample contributes 20%, so
// the estimate tracks load shifts within a handful of RPCs without jumping
// on every outlier.
const ewmaAlpha = 0.2

// WorkerLoad is the coordinator's locally observed load on one worker,
// accumulated across every session by the load-recording transport wrapper:
// RPC volume per operation, the outcome mix (errors, breaker rejections),
// and a latency EWMA over successful calls. All fields are atomics; one
// value serves the scatter/gather fan-out of any number of requests.
type WorkerLoad struct {
	addr string

	rpcs         atomic.Int64
	errors       atomic.Int64
	breakerSkips atomic.Int64
	ewmaMicros   atomic.Uint64 // float64 bits; 0 = no successful sample yet

	mu  sync.Mutex
	ops map[string]int64
}

// Addr identifies the worker the load belongs to.
func (l *WorkerLoad) Addr() string { return l.addr }

// record accounts one RPC outcome.
func (l *WorkerLoad) record(op string, d time.Duration, err error) {
	l.rpcs.Add(1)
	l.mu.Lock()
	l.ops[op]++
	l.mu.Unlock()
	switch {
	case err == nil:
		l.observeLatency(d)
	case errors.Is(err, ErrBreakerOpen):
		l.breakerSkips.Add(1)
	case errors.Is(err, ErrSpan):
		// A span rejection is protocol flow (the caller re-feeds), not a
		// worker fault; it counts as an RPC but not as an error, and its
		// latency is real worker time.
		l.observeLatency(d)
	default:
		l.errors.Add(1)
	}
}

// observeLatency folds one sample into the EWMA with a CAS loop, so the
// fan-out goroutines never serialize on a mutex for the hot path.
func (l *WorkerLoad) observeLatency(d time.Duration) {
	us := float64(d.Microseconds())
	if us <= 0 {
		us = float64(d.Nanoseconds()) / 1e3
	}
	for {
		old := l.ewmaMicros.Load()
		prev := math.Float64frombits(old)
		next := us
		if old != 0 {
			next = prev + ewmaAlpha*(us-prev)
		}
		if l.ewmaMicros.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// LoadSnapshot is one worker's observed-load view at a point in time.
type LoadSnapshot struct {
	Addr          string
	RPCs          int64
	Errors        int64
	BreakerSkips  int64
	LatencyEWMAMs float64
	Ops           map[string]int64
}

// Snapshot returns the current load view.
func (l *WorkerLoad) Snapshot() LoadSnapshot {
	s := LoadSnapshot{
		Addr:          l.addr,
		RPCs:          l.rpcs.Load(),
		Errors:        l.errors.Load(),
		BreakerSkips:  l.breakerSkips.Load(),
		LatencyEWMAMs: math.Float64frombits(l.ewmaMicros.Load()) / 1e3,
	}
	l.mu.Lock()
	s.Ops = make(map[string]int64, len(l.ops))
	for op, n := range l.ops {
		s.Ops[op] = n
	}
	l.mu.Unlock()
	return s
}

// loadTransport wraps a Transport, timing every RPC into a WorkerLoad.
type loadTransport struct {
	t  Transport
	ld *WorkerLoad
}

// WrapLoad wraps each transport with a load recorder, returning the wrapped
// transports and the index-aligned recorders. Wrap outside the breakers
// (WrapLoad(WrapBreakers(...))) so breaker rejections show up in the
// outcome mix as breaker_skips rather than vanishing.
func WrapLoad(ts []Transport) ([]Transport, []*WorkerLoad) {
	out := make([]Transport, len(ts))
	loads := make([]*WorkerLoad, len(ts))
	for i, t := range ts {
		loads[i] = &WorkerLoad{addr: t.Addr(), ops: map[string]int64{}}
		out[i] = &loadTransport{t: t, ld: loads[i]}
	}
	return out, loads
}

func (lt *loadTransport) Assign(ctx context.Context, corpus string, req *AssignRequest) error {
	start := time.Now()
	err := lt.t.Assign(ctx, corpus, req)
	lt.ld.record("assign", time.Since(start), err)
	return err
}

func (lt *loadTransport) Delta(ctx context.Context, corpus string, req DeltaRequest) error {
	dt, ok := lt.t.(DeltaTransport)
	if !ok {
		return errDeltaUnsupported
	}
	start := time.Now()
	err := dt.Delta(ctx, corpus, req)
	lt.ld.record("delta", time.Since(start), err)
	return err
}

func (lt *loadTransport) Drop(ctx context.Context, corpus string) error {
	start := time.Now()
	err := lt.t.Drop(ctx, corpus)
	lt.ld.record("drop", time.Since(start), err)
	return err
}

func (lt *loadTransport) Vector(ctx context.Context, corpus string, req VectorRequest) (VectorResponse, error) {
	start := time.Now()
	resp, err := lt.t.Vector(ctx, corpus, req)
	lt.ld.record("vector", time.Since(start), err)
	return resp, err
}

func (lt *loadTransport) Union(ctx context.Context, corpus string, req UnionRequest) (VectorResponse, error) {
	start := time.Now()
	resp, err := lt.t.Union(ctx, corpus, req)
	lt.ld.record("union", time.Since(start), err)
	return resp, err
}

func (lt *loadTransport) Stats(ctx context.Context, corpus string, req StatsRequest) (StatsResponse, error) {
	start := time.Now()
	resp, err := lt.t.Stats(ctx, corpus, req)
	lt.ld.record("stats", time.Since(start), err)
	return resp, err
}

func (lt *loadTransport) Hist(ctx context.Context, corpus string, req HistRequest) (HistResponse, error) {
	start := time.Now()
	resp, err := lt.t.Hist(ctx, corpus, req)
	lt.ld.record("hist", time.Since(start), err)
	return resp, err
}

func (lt *loadTransport) Health(ctx context.Context) (WorkerHealth, error) {
	start := time.Now()
	resp, err := lt.t.Health(ctx)
	lt.ld.record("health", time.Since(start), err)
	return resp, err
}

func (lt *loadTransport) Addr() string { return lt.t.Addr() }
