// Package adoption implements the paper's stochastic adoption model
// (Sec. 4.1). A consumer u adopts a bundle b offered at price p with
// probability
//
//	P(ν=1 | p, w) = 1 / (1 + exp(-γ(α·w - p + ε)))
//
// where w is u's willingness to pay for b. γ controls sensitivity to price
// (γ→∞ recovers the deterministic step function "adopt iff w ≥ p" used in
// the classic bundling literature), α models a bias for/against adoption,
// and ε is a small noise term that makes the step function's transition at
// w = p resolve to adoption.
package adoption

import (
	"fmt"
	"math"
	"math/rand"
)

// Default parameter values (paper Table 3).
const (
	DefaultGamma   = 1e6  // step-function limit
	DefaultAlpha   = 1.0  // unbiased
	DefaultEpsilon = 1e-6 // tie-break so w == p adopts under the step limit
)

// StepGammaThreshold is the γ above which the model short-circuits to the
// exact step function. With the price grids used in this codebase the
// sigmoid at γ ≥ 1e4 is indistinguishable from a step within float64.
const StepGammaThreshold = 1e4

// Model is an immutable adoption model. The zero value is invalid; use New
// or Step.
type Model struct {
	gamma, alpha, eps float64
	step              bool
}

// New returns a sigmoid adoption model. γ must be positive, α must be
// positive (α = 0 would make willingness to pay irrelevant).
func New(gamma, alpha, eps float64) (Model, error) {
	if gamma <= 0 {
		return Model{}, fmt.Errorf("adoption: γ=%g must be > 0", gamma)
	}
	if alpha <= 0 {
		return Model{}, fmt.Errorf("adoption: α=%g must be > 0", alpha)
	}
	return Model{gamma: gamma, alpha: alpha, eps: eps, step: gamma >= StepGammaThreshold}, nil
}

// Step returns the deterministic step-function model: adopt iff α·w ≥ p
// (the ε tie-break makes equality adopt), the convention of Adams & Yellen.
func Step() Model {
	m, _ := New(DefaultGamma, DefaultAlpha, DefaultEpsilon)
	return m
}

// Default returns the paper's default model (Table 3): γ=10⁶ (step), α=1.
func Default() Model { return Step() }

// Gamma returns the price-sensitivity parameter.
func (m Model) Gamma() float64 { return m.gamma }

// Alpha returns the adoption-bias parameter.
func (m Model) Alpha() float64 { return m.alpha }

// Deterministic reports whether the model behaves as an exact step function.
func (m Model) Deterministic() bool { return m.step }

// Probability returns P(adopt | price, wtp).
func (m Model) Probability(price, wtp float64) float64 {
	if m.step {
		if m.alpha*wtp-price+m.eps >= 0 {
			return 1
		}
		return 0
	}
	x := m.gamma * (m.alpha*wtp - price + m.eps)
	// Numerically stable logistic.
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// Adopts samples a Bernoulli adoption decision using rng. For deterministic
// models no randomness is consumed.
func (m Model) Adopts(price, wtp float64, rng *rand.Rand) bool {
	p := m.Probability(price, wtp)
	if p >= 1 {
		return true
	}
	if p <= 0 {
		return false
	}
	return rng.Float64() < p
}

// ExpectedAdopters returns F(p, ·) = Σ_u P(adopt | p, w_u) over the given
// willingness-to-pay values (Eq. 5).
func (m Model) ExpectedAdopters(price float64, wtps []float64) float64 {
	if m.step {
		n := 0
		for _, w := range wtps {
			if m.alpha*w-price+m.eps >= 0 {
				n++
			}
		}
		return float64(n)
	}
	var sum float64
	for _, w := range wtps {
		sum += m.Probability(price, w)
	}
	return sum
}

// SampleAdopters draws the realized number of adopters at the given price.
func (m Model) SampleAdopters(price float64, wtps []float64, rng *rand.Rand) int {
	n := 0
	for _, w := range wtps {
		if m.Adopts(price, w, rng) {
			n++
		}
	}
	return n
}
