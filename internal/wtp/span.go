package wtp

import "fmt"

// This file implements stripe-span extraction and serialization: the unit of
// work a distributed solver ships to a remote worker. A span is a contiguous
// range of a Shard's stripes; SpanDoc is its JSON wire form and SpanStore the
// standalone columnar store a worker rebuilds from it. SpanStore reuses the
// exact per-stripe aggregation kernels of Shard (appendBundleVector, the
// per-stripe union cut), so a per-span result concatenated over a corpus's
// spans in stripe order is identical — element for element, rounding
// included — to the single-machine Shard reduction.

// SpanDoc is the wire form of a contiguous stripe span of a sharded WTP
// matrix: the global dimensions and stripe layout, the matrix version the
// span snapshotted, and the span's per-stripe columnar postings flattened in
// stripe order. It round-trips through JSON or the binary columnar codec
// (internal/codec — the compact default of the cluster feed) and rebuilds
// into a SpanStore on the receiving worker.
type SpanDoc struct {
	Consumers  int `json:"consumers"`   // global consumer count M
	Items      int `json:"items"`       // global item count N
	StripeSize int `json:"stripe_size"` // consumers per stripe of the source shard
	// Version is the span's opaque snapshot identity: every request against
	// the span must present it, so a holder of any other snapshot is
	// detected. Shard.Span seeds it with the matrix mutation version; a
	// distributed producer replaces it with a session-unique nonce, because
	// mutation counters of two different corpora can coincide.
	Version uint64 `json:"version"`
	Start   int    `json:"start"` // first stripe of the span
	End     int    `json:"end"`   // one past the last stripe
	// Offs holds the per-stripe, per-item segment offsets: stripe k of the
	// span owns Offs[k*(Items+1) : (k+1)*(Items+1)], offsets relative to
	// that stripe's own segment of IDs/Vals.
	Offs []int32 `json:"offs"`
	// IDs and Vals are the stripes' columnar postings concatenated in stripe
	// order: ascending consumer ids per item segment and the aligned WTP
	// values.
	IDs  []int32   `json:"ids"`
	Vals []float64 `json:"vals"`
}

// Span serializes stripes [s0, s1) of the shard as a SpanDoc. The document
// copies the columnar arrays, so it stays valid after the shard is dropped.
func (sh *Shard) Span(s0, s1 int) *SpanDoc {
	sh.check()
	if s0 < 0 || s1 < s0 || s1 > len(sh.stripes) {
		panic(fmt.Sprintf("wtp: span [%d,%d) outside %d stripes", s0, s1, len(sh.stripes)))
	}
	d := &SpanDoc{
		Consumers:  sh.w.m,
		Items:      sh.w.n,
		StripeSize: sh.size,
		Version:    sh.version,
		Start:      s0,
		End:        s1,
	}
	n := sh.w.n
	var entries int
	for s := s0; s < s1; s++ {
		entries += len(sh.stripes[s].ids)
	}
	d.Offs = make([]int32, 0, (s1-s0)*(n+1))
	d.IDs = make([]int32, 0, entries)
	d.Vals = make([]float64, 0, entries)
	for s := s0; s < s1; s++ {
		st := &sh.stripes[s]
		d.Offs = append(d.Offs, st.offs...)
		d.IDs = append(d.IDs, st.ids...)
		d.Vals = append(d.Vals, st.vals...)
	}
	return d
}

// SpanStore is a standalone columnar store of one stripe span, rebuilt from
// a SpanDoc on a worker (or materialized locally as a fallback replica). It
// serves the per-span reductions of the distributed evaluate path with the
// same per-stripe kernels as Shard, so results concatenate exactly. A
// SpanStore is immutable and safe for concurrent use.
type SpanStore struct {
	consumers  int
	items      int
	stripeSize int
	version    uint64
	start      int
	stripes    []Stripe
}

// Store validates the document and rebuilds its span store.
func (d *SpanDoc) Store() (*SpanStore, error) {
	if d.Consumers < 0 || d.Items < 0 || d.StripeSize <= 0 {
		return nil, fmt.Errorf("wtp: span doc has invalid layout %d×%d stripe %d", d.Consumers, d.Items, d.StripeSize)
	}
	if d.Start < 0 || d.End < d.Start {
		return nil, fmt.Errorf("wtp: span doc range [%d,%d) invalid", d.Start, d.End)
	}
	numStripes := d.End - d.Start
	if len(d.Offs) != numStripes*(d.Items+1) {
		return nil, fmt.Errorf("wtp: span doc has %d offsets for %d stripes × %d items", len(d.Offs), numStripes, d.Items)
	}
	if len(d.IDs) != len(d.Vals) {
		return nil, fmt.Errorf("wtp: span doc has %d ids but %d values", len(d.IDs), len(d.Vals))
	}
	sp := &SpanStore{
		consumers:  d.Consumers,
		items:      d.Items,
		stripeSize: d.StripeSize,
		version:    d.Version,
		start:      d.Start,
		stripes:    make([]Stripe, numStripes),
	}
	base := 0
	for k := 0; k < numStripes; k++ {
		st := &sp.stripes[k]
		st.lo = (d.Start + k) * d.StripeSize
		st.hi = st.lo + d.StripeSize
		if st.hi > d.Consumers {
			st.hi = d.Consumers
		}
		st.offs = d.Offs[k*(d.Items+1) : (k+1)*(d.Items+1)]
		seg := int(st.offs[d.Items])
		if seg < 0 || base+seg > len(d.IDs) {
			return nil, fmt.Errorf("wtp: span doc stripe %d overruns its postings", d.Start+k)
		}
		for i := 0; i < d.Items; i++ {
			if st.offs[i] < 0 || st.offs[i] > st.offs[i+1] {
				return nil, fmt.Errorf("wtp: span doc stripe %d has non-monotonic offsets", d.Start+k)
			}
		}
		st.ids = d.IDs[base : base+seg]
		st.vals = d.Vals[base : base+seg]
		for j, id := range st.ids {
			if int(id) < st.lo || int(id) >= st.hi {
				return nil, fmt.Errorf("wtp: span doc stripe %d lists consumer %d outside [%d,%d)", d.Start+k, id, st.lo, st.hi)
			}
			if st.vals[j] < 0 {
				return nil, fmt.Errorf("wtp: span doc has negative WTP %g", st.vals[j])
			}
		}
		base += seg
	}
	if base != len(d.IDs) {
		return nil, fmt.Errorf("wtp: span doc postings length %d does not match stripe segments %d", len(d.IDs), base)
	}
	return sp, nil
}

// Version returns the matrix version the span snapshotted; every RPC against
// the span carries it so a stale worker is detected, re-fed and never
// silently wrong.
func (sp *SpanStore) Version() uint64 { return sp.version }

// Bounds returns the span's consumer range [lo, hi).
func (sp *SpanStore) Bounds() (lo, hi int) {
	if len(sp.stripes) == 0 {
		lo = sp.start * sp.stripeSize
		return lo, lo
	}
	return sp.stripes[0].lo, sp.stripes[len(sp.stripes)-1].hi
}

// StripeRange returns the span's stripe range [start, end) in the source
// shard's numbering.
func (sp *SpanStore) StripeRange() (start, end int) { return sp.start, sp.start + len(sp.stripes) }

// Entries returns the number of non-zero WTP entries in the span.
func (sp *SpanStore) Entries() int {
	var n int
	for i := range sp.stripes {
		n += len(sp.stripes[i].ids)
	}
	return n
}

// Items returns the global item count N.
func (sp *SpanStore) Items() int { return sp.items }

// BundleVector is the span's contribution to Shard.BundleVector: the Eq. 1
// bundle WTP of every interested consumer in the span, reduced per stripe
// with the same kernel the shard uses, so concatenating the spans of a
// corpus in stripe order reproduces the single-machine result exactly.
func (sp *SpanStore) BundleVector(items []int, theta float64, dstIDs []int, dstVals []float64) ([]int, []float64) {
	dstIDs = dstIDs[:0]
	dstVals = dstVals[:0]
	if len(items) == 0 {
		return dstIDs, dstVals
	}
	scale := 1 + theta
	for s := range sp.stripes {
		dstIDs, dstVals = sp.stripes[s].appendBundleVector(items, scale, dstIDs, dstVals)
	}
	return dstIDs, dstVals
}

// UnionVectors is the span's contribution to Shard.UnionVectors: it merges
// the span-restricted slices of two cached consumer vectors, cut and merged
// per stripe exactly as the shard does, so per-span results concatenate to
// the single-machine union.
func (sp *SpanStore) UnionVectors(aIDs []int, aVals []float64, sa float64, bIDs []int, bVals []float64, sb float64, dstIDs []int, dstVals []float64) ([]int, []float64) {
	dstIDs = dstIDs[:0]
	dstVals = dstVals[:0]
	i, j := 0, 0
	for s := range sp.stripes {
		hi := sp.stripes[s].hi
		if i >= len(aIDs) && j >= len(bIDs) {
			break
		}
		for i < len(aIDs) && j < len(bIDs) && aIDs[i] < hi && bIDs[j] < hi {
			switch {
			case aIDs[i] < bIDs[j]:
				dstIDs = append(dstIDs, aIDs[i])
				dstVals = append(dstVals, sa*aVals[i])
				i++
			case aIDs[i] > bIDs[j]:
				dstIDs = append(dstIDs, bIDs[j])
				dstVals = append(dstVals, sb*bVals[j])
				j++
			default:
				dstIDs = append(dstIDs, aIDs[i])
				if sa == sb {
					// Match the flat merge's factored rounding (see
					// UnionVectors).
					dstVals = append(dstVals, sa*(aVals[i]+bVals[j]))
				} else {
					dstVals = append(dstVals, sa*aVals[i]+sb*bVals[j])
				}
				i++
				j++
			}
		}
		for i < len(aIDs) && aIDs[i] < hi && (j >= len(bIDs) || bIDs[j] >= hi) {
			dstIDs = append(dstIDs, aIDs[i])
			dstVals = append(dstVals, sa*aVals[i])
			i++
		}
		for j < len(bIDs) && bIDs[j] < hi && (i >= len(aIDs) || aIDs[i] >= hi) {
			dstIDs = append(dstIDs, bIDs[j])
			dstVals = append(dstVals, sb*bVals[j])
			j++
		}
	}
	return dstIDs, dstVals
}
