package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bundling/internal/codec"
	"bundling/internal/obs"
	"bundling/internal/pricing"
	"bundling/internal/server"
	"bundling/internal/usage"
	"bundling/internal/wtp"
)

// WorkerConfig tunes a Worker. The zero value serves with defaults.
type WorkerConfig struct {
	// MaxSpans bounds the spans held concurrently (one per corpus key);
	// assigning beyond it evicts the least-recently-used span (0 = 64).
	MaxSpans int
	// MaxAssignBytes bounds a span upload body (0 = 256 MiB).
	MaxAssignBytes int64
	// MaxRequestBytes bounds the other request bodies (0 = 32 MiB; unions
	// ship cached consumer vectors).
	MaxRequestBytes int64
	// TraceRing bounds the ring of recent RPC trace records served at
	// /debug/traces — one single-span trace per coordinator-traced RPC,
	// recorded under the coordinator's X-Trace-Id so the two sides can be
	// joined (0 = 128, negative disables).
	TraceRing int
	// Pprof mounts net/http/pprof under /debug/pprof (-pprof).
	Pprof bool
	// UsageMetrics labels the per-span request gauges on /metrics with
	// their corpus keys (-usage-metrics). Off by default: the worker's
	// /metrics is open and corpus IDs are tenant data, so the default
	// exposition carries only unlabeled aggregates.
	UsageMetrics bool
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.MaxSpans <= 0 {
		c.MaxSpans = 64
	}
	if c.MaxAssignBytes == 0 {
		c.MaxAssignBytes = 256 << 20
	}
	if c.MaxRequestBytes == 0 {
		c.MaxRequestBytes = 32 << 20
	}
	return c
}

// Worker holds the stripe spans assigned to this node — one per corpus key,
// LRU-bounded — and serves the per-span reductions of the distributed
// solving protocol. All operations are safe for concurrent use: spans are
// immutable once built, and the registry is mutex-guarded. The same Worker
// value backs both the in-process transport (direct method calls) and the
// bundleworker daemon's HTTP handler.
type Worker struct {
	cfg    WorkerConfig
	met    *server.Metrics
	traces *obs.Ring // nil when tracing is disabled

	mu    sync.RWMutex
	spans map[string]*workerSpan
	seq   atomic.Int64 // LRU clock
	stale atomic.Int64 // version-mismatch rejections (each one triggers a re-feed)

	mux *http.ServeMux
}

// workerSpan is one assigned span plus its LRU recency and served-request
// count (the per-span load signal health reports).
type workerSpan struct {
	corpus  string
	store   *wtp.SpanStore
	lastUse atomic.Int64
	hits    atomic.Int64
}

// NewWorker returns an empty worker.
func NewWorker(cfg WorkerConfig) *Worker {
	wk := &Worker{
		cfg:   cfg.withDefaults(),
		met:   server.NewMetrics("bundleworker"),
		spans: make(map[string]*workerSpan),
	}
	if wk.cfg.TraceRing >= 0 {
		wk.traces = obs.NewRing(wk.cfg.TraceRing)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/spans/{corpus}", wk.handleAssign)
	mux.HandleFunc("POST /v1/spans/{corpus}/delta", wk.handleDelta)
	mux.HandleFunc("DELETE /v1/spans/{corpus}", wk.handleDrop)
	mux.HandleFunc("POST /v1/spans/{corpus}/vector", wk.handleVector)
	mux.HandleFunc("POST /v1/spans/{corpus}/union", wk.handleUnion)
	mux.HandleFunc("POST /v1/spans/{corpus}/stats", wk.handleStats)
	mux.HandleFunc("POST /v1/spans/{corpus}/hist", wk.handleHist)
	mux.HandleFunc("GET /healthz", wk.handleHealth)
	mux.HandleFunc("GET /metrics", wk.handleMetrics)
	mux.HandleFunc("GET /debug/traces", wk.handleTraces)
	if wk.cfg.Pprof {
		server.RegisterPprof(mux)
	}
	wk.mux = mux
	return wk
}

// Traces returns up to limit recent RPC trace records, newest first
// (limit <= 0 = all retained) — what /debug/traces serves.
func (wk *Worker) Traces(limit int) []obs.TraceDoc { return wk.traces.Snapshot(limit) }

// recordRemote records the worker's side of one coordinator RPC as a
// single-span trace under the coordinator's trace ID, so a worker's
// /debug/traces can be joined with the coordinator's trace by ID. Untraced
// requests (no X-Trace-Id) record nothing.
func (wk *Worker) recordRemote(r *http.Request, op, corpus string, start time.Time, err error) {
	if wk.traces == nil {
		return
	}
	traceID, parent := obs.Extract(r.Header)
	if traceID == "" {
		return
	}
	tags := []obs.Tag{{Key: "corpus", Value: corpus}}
	if err != nil {
		tags = append(tags, obs.Tag{Key: "outcome", Value: "error"})
	}
	wk.traces.Push(obs.RemoteSpan(traceID, parent, "worker."+op, start, time.Since(start), tags...))
}

// Handler returns the worker's HTTP handler (the bundleworker daemon's
// serving surface).
func (wk *Worker) Handler() http.Handler { return wk.mux }

// Assign registers (or replaces) the span for a corpus key, evicting the
// least-recently-used span when the bound is exceeded.
func (wk *Worker) Assign(corpus string, doc *wtp.SpanDoc) error {
	if corpus == "" {
		return fmt.Errorf("cluster: empty corpus key")
	}
	store, err := doc.Store()
	if err != nil {
		return err
	}
	wk.register(corpus, store)
	return nil
}

// register installs a span store under a corpus key, evicting the
// least-recently-used span when the bound is exceeded.
func (wk *Worker) register(corpus string, store *wtp.SpanStore) {
	sp := &workerSpan{corpus: corpus, store: store}
	sp.lastUse.Store(wk.seq.Add(1))
	wk.mu.Lock()
	defer wk.mu.Unlock()
	wk.spans[corpus] = sp
	for len(wk.spans) > wk.cfg.MaxSpans {
		var victim string
		oldest := int64(1<<63 - 1)
		for key, s := range wk.spans {
			if u := s.lastUse.Load(); u < oldest {
				oldest, victim = u, key
			}
		}
		delete(wk.spans, victim)
	}
}

// Delta rebases a resident span under a new corpus key: the base span must
// be registered under req.BaseCorpus at snapshot req.FromVersion (missing or
// stale answers ErrSpan so the coordinator falls back to a full feed), the
// span-scoped cells are applied to a patched copy sharing every untouched
// stripe, and the copy registers under corpus stamped req.ToVersion. The
// base span stays resident and untouched, so the previous session keeps
// serving while it drains.
func (wk *Worker) Delta(corpus string, req DeltaRequest) error {
	if corpus == "" {
		return fmt.Errorf("cluster: empty corpus key")
	}
	base, err := wk.span(req.BaseCorpus, req.FromVersion)
	if err != nil {
		return err
	}
	store, err := base.ApplyDelta(req.Cells, req.ToVersion)
	if err != nil {
		return err
	}
	wk.register(corpus, store)
	return nil
}

// Drop removes a corpus's span, reporting whether it existed.
func (wk *Worker) Drop(corpus string) bool {
	wk.mu.Lock()
	defer wk.mu.Unlock()
	_, ok := wk.spans[corpus]
	delete(wk.spans, corpus)
	return ok
}

// span resolves a corpus's store, checking the caller's snapshot version.
// Both a missing span and a version mismatch answer ErrSpan: the coordinator
// repairs either by re-feeding the current span and retrying, so a stale
// worker can never contribute stale data.
func (wk *Worker) span(corpus string, version uint64) (*wtp.SpanStore, error) {
	wk.mu.RLock()
	sp, ok := wk.spans[corpus]
	wk.mu.RUnlock()
	if !ok {
		wk.stale.Add(1)
		return nil, fmt.Errorf("%w: no span for corpus %q", ErrSpan, corpus)
	}
	if v := sp.store.Version(); v != version {
		wk.stale.Add(1)
		return nil, fmt.Errorf("%w: corpus %q at version %d, caller wants %d", ErrSpan, corpus, v, version)
	}
	sp.lastUse.Store(wk.seq.Add(1))
	sp.hits.Add(1)
	return sp.store, nil
}

// Vector computes the span's share of a bundle's interested-consumer vector.
func (wk *Worker) Vector(corpus string, req VectorRequest) (VectorResponse, error) {
	start := time.Now()
	sp, err := wk.span(corpus, req.Version)
	if err != nil {
		return VectorResponse{}, err
	}
	ids, vals := sp.BundleVector(req.Items, req.Theta, nil, nil)
	wk.met.Observe("vector", time.Since(start))
	return VectorResponse{IDs: ids, Vals: vals}, nil
}

// Union merges the span-restricted slices of two cached consumer vectors.
func (wk *Worker) Union(corpus string, req UnionRequest) (VectorResponse, error) {
	start := time.Now()
	sp, err := wk.span(corpus, req.Version)
	if err != nil {
		return VectorResponse{}, err
	}
	ids, vals := sp.UnionVectors(req.AIDs, req.AVals, req.SA, req.BIDs, req.BVals, req.SB, nil, nil)
	wk.met.Observe("union", time.Since(start))
	return VectorResponse{IDs: ids, Vals: vals}, nil
}

// Stats computes the span's pricing pre-aggregate for a bundle.
func (wk *Worker) Stats(corpus string, req StatsRequest) (StatsResponse, error) {
	start := time.Now()
	sp, err := wk.span(corpus, req.Version)
	if err != nil {
		return StatsResponse{}, err
	}
	resp := spanStats(sp, req.Items, req.Theta)
	wk.met.Observe("stats", time.Since(start))
	return resp, nil
}

// Hist computes the span's pricing-histogram partial for a bundle.
func (wk *Worker) Hist(corpus string, req HistRequest) (HistResponse, error) {
	start := time.Now()
	if req.Levels <= 0 || req.Levels > 1<<20 {
		return HistResponse{}, fmt.Errorf("cluster: %d price levels out of range", req.Levels)
	}
	sp, err := wk.span(corpus, req.Version)
	if err != nil {
		return HistResponse{}, err
	}
	resp := spanHist(sp, req.Items, req.Theta, req.MaxW, req.Alpha, req.Levels)
	wk.met.Observe("hist", time.Since(start))
	return resp, nil
}

// Health reports the worker's assigned spans, sorted by corpus key.
func (wk *Worker) Health() WorkerHealth {
	wk.mu.RLock()
	defer wk.mu.RUnlock()
	h := WorkerHealth{
		Status:          "ok",
		UptimeSeconds:   wk.met.Uptime().Seconds(),
		Ops:             wk.met.Counts(),
		StaleRejections: wk.stale.Load(),
	}
	for _, sp := range wk.spans {
		s0, s1 := sp.store.StripeRange()
		lo, hi := sp.store.Bounds()
		h.Spans = append(h.Spans, SpanInfo{
			Corpus:      sp.corpus,
			Version:     sp.store.Version(),
			StartStripe: s0,
			EndStripe:   s1,
			LoConsumer:  lo,
			HiConsumer:  hi,
			Items:       sp.store.Items(),
			Entries:     sp.store.Entries(),
			Requests:    sp.hits.Load(),
		})
	}
	sort.Slice(h.Spans, func(i, j int) bool { return h.Spans[i].Corpus < h.Spans[j].Corpus })
	return h
}

// spanStats is the stats kernel, shared by the worker and the coordinator's
// local fallback so both sides compute identical aggregates.
func spanStats(sp *wtp.SpanStore, items []int, theta float64) StatsResponse {
	_, vals := sp.BundleVector(items, theta, nil, nil)
	var resp StatsResponse
	for _, v := range vals {
		if v > resp.Max {
			resp.Max = v
		}
	}
	return resp
}

// spanHist is the histogram kernel, shared like spanStats.
func spanHist(sp *wtp.SpanStore, items []int, theta, maxW, alpha float64, levels int) HistResponse {
	_, vals := sp.BundleVector(items, theta, nil, nil)
	resp := HistResponse{
		Counts: make([]float64, levels+1),
		Sums:   make([]float64, levels+1),
	}
	pricing.Histogram(vals, alpha, maxW, levels, resp.Counts, resp.Sums)
	return resp
}

// --- HTTP surface -----------------------------------------------------------

// writeJSON emits a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// failErr maps an operation error to its HTTP form: ErrSpan → 409 (the
// coordinator's cue to re-feed), anything else → 400.
func (wk *Worker) failErr(w http.ResponseWriter, err error) {
	wk.met.CountError()
	status := http.StatusBadRequest
	if errors.Is(err, ErrSpan) {
		status = http.StatusConflict
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// decodeBody strictly decodes a bounded JSON request body.
func decodeBody(w http.ResponseWriter, r *http.Request, v any, limit int64) error {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// handleAssign accepts a span feed in either encoding — the binary codec
// envelope (Content-Type negotiation; what current coordinators send) or the
// legacy JSON AssignRequest — so a mixed-version fleet keeps feeding.
func (wk *Worker) handleAssign(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var span *wtp.SpanDoc
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, codec.ContentType) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, wk.cfg.MaxAssignBytes))
		if err != nil {
			wk.failErr(w, fmt.Errorf("decode span: %w", err))
			return
		}
		if _, span, err = codec.DecodeAssign(body); err != nil {
			wk.failErr(w, fmt.Errorf("decode span: %w", err))
			return
		}
	} else {
		var req AssignRequest
		if err := decodeBody(w, r, &req, wk.cfg.MaxAssignBytes); err != nil {
			wk.failErr(w, fmt.Errorf("decode span: %w", err))
			return
		}
		span = req.Span
	}
	if span == nil {
		wk.failErr(w, fmt.Errorf("cluster: assign request carries no span"))
		return
	}
	if err := wk.Assign(r.PathValue("corpus"), span); err != nil {
		wk.recordRemote(r, "assign", r.PathValue("corpus"), start, err)
		wk.failErr(w, err)
		return
	}
	wk.met.Observe("assign", time.Since(start))
	wk.recordRemote(r, "assign", r.PathValue("corpus"), start, nil)
	// No payload: the coordinator ignores it, and a full health report per
	// feed would just be discarded bytes (spans are visible on /healthz).
	w.WriteHeader(http.StatusNoContent)
}

// handleDelta accepts a span-delta feed in either encoding — the binary
// codec delta envelope (what current coordinators send; the envelope's
// interned ID carries the base corpus key) or its JSON DeltaRequest form —
// mirroring handleAssign's negotiation.
func (wk *Worker) handleDelta(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req DeltaRequest
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, codec.ContentType) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, wk.cfg.MaxRequestBytes))
		if err != nil {
			wk.failErr(w, fmt.Errorf("decode delta: %w", err))
			return
		}
		d, err := codec.DecodeDelta(body)
		if err != nil {
			wk.failErr(w, fmt.Errorf("decode delta: %w", err))
			return
		}
		req = DeltaRequest{BaseCorpus: d.ID, FromVersion: d.FromVersion, ToVersion: d.ToVersion, Cells: d.Cells()}
	} else if err := decodeBody(w, r, &req, wk.cfg.MaxRequestBytes); err != nil {
		wk.failErr(w, fmt.Errorf("decode delta: %w", err))
		return
	}
	err := wk.Delta(r.PathValue("corpus"), req)
	wk.recordRemote(r, "delta", r.PathValue("corpus"), start, err)
	if err != nil {
		wk.failErr(w, err)
		return
	}
	wk.met.Observe("delta", time.Since(start))
	w.WriteHeader(http.StatusNoContent)
}

func (wk *Worker) handleDrop(w http.ResponseWriter, r *http.Request) {
	// Idempotent: dropping an absent span (double release, LRU already
	// evicted it) is success, not an error.
	wk.Drop(r.PathValue("corpus"))
	w.WriteHeader(http.StatusNoContent)
}

func (wk *Worker) handleVector(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req VectorRequest
	if err := decodeBody(w, r, &req, wk.cfg.MaxRequestBytes); err != nil {
		wk.failErr(w, fmt.Errorf("decode request: %w", err))
		return
	}
	resp, err := wk.Vector(r.PathValue("corpus"), req)
	wk.recordRemote(r, "vector", r.PathValue("corpus"), start, err)
	if err != nil {
		wk.failErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (wk *Worker) handleUnion(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req UnionRequest
	if err := decodeBody(w, r, &req, wk.cfg.MaxRequestBytes); err != nil {
		wk.failErr(w, fmt.Errorf("decode request: %w", err))
		return
	}
	resp, err := wk.Union(r.PathValue("corpus"), req)
	wk.recordRemote(r, "union", r.PathValue("corpus"), start, err)
	if err != nil {
		wk.failErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (wk *Worker) handleStats(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req StatsRequest
	if err := decodeBody(w, r, &req, wk.cfg.MaxRequestBytes); err != nil {
		wk.failErr(w, fmt.Errorf("decode request: %w", err))
		return
	}
	resp, err := wk.Stats(r.PathValue("corpus"), req)
	wk.recordRemote(r, "stats", r.PathValue("corpus"), start, err)
	if err != nil {
		wk.failErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (wk *Worker) handleHist(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req HistRequest
	if err := decodeBody(w, r, &req, wk.cfg.MaxRequestBytes); err != nil {
		wk.failErr(w, fmt.Errorf("decode request: %w", err))
		return
	}
	resp, err := wk.Hist(r.PathValue("corpus"), req)
	wk.recordRemote(r, "hist", r.PathValue("corpus"), start, err)
	if err != nil {
		wk.failErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (wk *Worker) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, wk.Health())
}

// handleTraces serves the worker's recent RPC trace records, newest first
// (?limit=N bounds the reply). Workers serve a trusted coordinator network
// and have no auth layer, so the route is open like the rest of their API.
func (wk *Worker) handleTraces(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n <= 0 {
			wk.met.CountError()
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("limit: want a positive integer, got %q", q)})
			return
		}
		limit = n
	}
	docs := wk.traces.Snapshot(limit)
	if docs == nil {
		docs = []obs.TraceDoc{}
	}
	writeJSON(w, http.StatusOK, struct {
		Traces []obs.TraceDoc `json:"traces"`
	}{Traces: docs})
}

func (wk *Worker) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	wk.mu.RLock()
	gauges := []server.GaugeRow{
		{Name: "bundleworker_spans", Help: "Stripe spans currently assigned.", Value: float64(len(wk.spans))},
	}
	// Per-span request gauges are opt-in (UsageMetrics): /metrics serves
	// unauthenticated and the corpus keys are tenant data. When enabled
	// the family stays bounded by MaxSpans (it tracks live spans only) and
	// the user-supplied corpus IDs are sanitized before labeling.
	if wk.cfg.UsageMetrics {
		keys := make([]string, 0, len(wk.spans))
		for key := range wk.spans {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			gauges = append(gauges, server.GaugeRow{
				Name:   "bundleworker_span_requests",
				Help:   "Reduction RPCs served per resident span since assignment.",
				Labels: `corpus="` + usage.SanitizeLabel(key) + `"`,
				Value:  float64(wk.spans[key].hits.Load()),
			})
		}
	}
	wk.mu.RUnlock()
	wk.met.Render(w,
		gauges,
		[]server.CounterRow{
			{Name: "bundleworker_stale_rejections_total", Help: "Requests rejected for a missing or stale span (each triggers a coordinator re-feed).", Value: wk.stale.Load()},
		})
}
