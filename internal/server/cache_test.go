package server

import (
	"fmt"
	"testing"

	"bundling"
)

func cfgWithRevenue(rev float64) *bundling.Configuration {
	return &bundling.Configuration{Revenue: rev}
}

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(3)
	for i := 0; i < 4; i++ {
		c.put(fmt.Sprintf("k%d", i), cfgWithRevenue(float64(i)))
	}
	if c.len() != 3 {
		t.Fatalf("len = %d, want 3", c.len())
	}
	if _, ok := c.get("k0"); ok {
		t.Error("k0 should have been evicted as least recently used")
	}
	for i := 1; i < 4; i++ {
		cfg, ok := c.get(fmt.Sprintf("k%d", i))
		if !ok || cfg.Revenue != float64(i) {
			t.Errorf("k%d: ok=%v cfg=%+v", i, ok, cfg)
		}
	}
	// Touch k1, insert k4: k2 is now the LRU victim.
	c.get("k1")
	c.put("k4", cfgWithRevenue(4))
	if _, ok := c.get("k2"); ok {
		t.Error("k2 should have been evicted after k1 was refreshed")
	}
	if _, ok := c.get("k1"); !ok {
		t.Error("k1 should have survived")
	}
	// Re-putting an existing key refreshes in place without growing.
	c.put("k3", cfgWithRevenue(33))
	if c.len() != 3 {
		t.Errorf("len = %d after refresh, want 3", c.len())
	}
	if cfg, _ := c.get("k3"); cfg == nil || cfg.Revenue != 33 {
		t.Errorf("k3 not refreshed: %+v", cfg)
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c := newResultCache(-1)
	c.put("k", cfgWithRevenue(1))
	if _, ok := c.get("k"); ok {
		t.Error("disabled cache should never hit")
	}
	if c.len() != 0 {
		t.Errorf("len = %d, want 0", c.len())
	}
}
