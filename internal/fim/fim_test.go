package fim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMineValidation(t *testing.T) {
	if _, err := MineMaximal(-1, nil, Config{}); err == nil {
		t.Error("expected error for negative universe")
	}
	if _, err := MineMaximal(2, [][]int{{5}}, Config{}); err == nil {
		t.Error("expected error for out-of-universe item")
	}
}

func TestEmptyTransactions(t *testing.T) {
	got, err := MineMaximal(5, nil, Config{MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("expected no itemsets, got %v", got)
	}
}

func TestHandWorkedExample(t *testing.T) {
	// Classic example: transactions over items {0,1,2,3}.
	txs := [][]int{
		{0, 1, 2},
		{0, 1, 2},
		{0, 1},
		{2, 3},
		{3},
	}
	got, err := MineMaximal(4, txs, Config{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Frequent itemsets at minsup 2: {0}:3 {1}:3 {2}:3 {3}:2 {0,1}:3
	// {0,2}:2 {1,2}:2 {0,1,2}:2 {2,3}:1(no). Maximal: {0,1,2}, {3}.
	want := map[string]int{"0,1,2": 2, "3": 2}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for _, is := range got {
		k := key(is.Items)
		sup, ok := want[k]
		if !ok {
			t.Errorf("unexpected maximal itemset %v", is.Items)
			continue
		}
		if is.Support != sup {
			t.Errorf("itemset %v support = %d, want %d", is.Items, is.Support, sup)
		}
	}
}

func TestMaxSizeCap(t *testing.T) {
	txs := [][]int{{0, 1, 2, 3}, {0, 1, 2, 3}, {0, 1, 2, 3}}
	got, err := MineMaximal(4, txs, Config{MinSupport: 2, MaxSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, is := range got {
		if len(is.Items) > 2 {
			t.Errorf("itemset %v exceeds max size 2", is.Items)
		}
	}
	if len(got) == 0 {
		t.Error("expected size-capped itemsets")
	}
}

func TestMaxResultsStopsSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	txs := make([][]int, 60)
	for i := range txs {
		for j := 0; j < 12; j++ {
			if rng.Float64() < 0.4 {
				txs[i] = append(txs[i], j)
			}
		}
	}
	got, err := MineMaximal(12, txs, Config{MinSupport: 2, MaxResults: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) > 3 {
		t.Errorf("MaxResults=3 but got %d itemsets", len(got))
	}
}

func TestDuplicateItemsInTransaction(t *testing.T) {
	got, err := MineMaximal(2, [][]int{{0, 0, 1}, {0, 1, 1}}, Config{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || key(got[0].Items) != "0,1" || got[0].Support != 2 {
		t.Fatalf("got %v, want [{0,1} support 2]", got)
	}
}

// bruteMaximal computes maximal frequent itemsets by full enumeration.
func bruteMaximal(items int, txs [][]int, minsup, maxSize int) map[string]int {
	var frequent []([]int)
	sup := map[string]int{}
	for mask := 1; mask < 1<<uint(items); mask++ {
		var set []int
		for i := 0; i < items; i++ {
			if mask&(1<<uint(i)) != 0 {
				set = append(set, i)
			}
		}
		if maxSize > 0 && len(set) > maxSize {
			continue
		}
		s := Support(set, txs)
		if s >= minsup {
			frequent = append(frequent, set)
			sup[key(set)] = s
		}
	}
	maximal := map[string]int{}
	for _, a := range frequent {
		isMax := true
		for _, b := range frequent {
			if len(b) > len(a) && contains(b, a) {
				isMax = false
				break
			}
		}
		if isMax {
			maximal[key(a)] = sup[key(a)]
		}
	}
	return maximal
}

func contains(super, sub []int) bool {
	have := map[int]bool{}
	for _, i := range super {
		have[i] = true
	}
	for _, i := range sub {
		if !have[i] {
			return false
		}
	}
	return true
}

func key(items []int) string {
	s := append([]int(nil), items...)
	sort.Ints(s)
	out := ""
	for i, v := range s {
		if i > 0 {
			out += ","
		}
		out += itoa(v)
	}
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

// TestQuickAgainstBruteForce cross-checks the miner on random small
// databases, both uncapped and size-capped.
func TestQuickAgainstBruteForce(t *testing.T) {
	f := func(seed int64, minsupRaw, maxSizeRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		items := 3 + rng.Intn(6) // ≤ 8 items
		nTx := 2 + rng.Intn(15)
		txs := make([][]int, nTx)
		for i := range txs {
			for j := 0; j < items; j++ {
				if rng.Float64() < 0.45 {
					txs[i] = append(txs[i], j)
				}
			}
		}
		minsup := 1 + int(minsupRaw%4)
		maxSize := int(maxSizeRaw % 4) // 0 = unlimited
		got, err := MineMaximal(items, txs, Config{MinSupport: minsup, MaxSize: maxSize})
		if err != nil {
			return false
		}
		want := bruteMaximal(items, txs, minsup, maxSize)
		if len(got) != len(want) {
			return false
		}
		for _, is := range got {
			if want[key(is.Items)] != is.Support {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestSupportOracle(t *testing.T) {
	txs := [][]int{{0, 1}, {1, 2}, {0, 1, 2}}
	if got := Support([]int{1}, txs); got != 3 {
		t.Errorf("Support({1}) = %d, want 3", got)
	}
	if got := Support([]int{0, 2}, txs); got != 1 {
		t.Errorf("Support({0,2}) = %d, want 1", got)
	}
	if got := Support(nil, txs); got != 3 {
		t.Errorf("Support(∅) = %d, want 3", got)
	}
}
