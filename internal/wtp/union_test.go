package wtp

import (
	"math"
	"math/rand"
	"testing"
)

// randomMatrix builds an m×n matrix with the given fill density; values are
// price-like (0.5 .. ~50) so they exercise realistic float magnitudes.
func randomMatrix(t testing.TB, rng *rand.Rand, m, n int, density float64) *Matrix {
	t.Helper()
	w := MustNew(m, n)
	for u := 0; u < m; u++ {
		for i := 0; i < n; i++ {
			if rng.Float64() < density {
				w.MustSet(u, i, 0.5+rng.Float64()*49.5)
			}
		}
	}
	return w
}

// checkUnionEquivalence asserts that deriving the bundle vector of
// itemsA ∪ itemsB from the parents' cached vectors (UnionVectors, the
// incremental fast path) matches rebuilding it from the raw postings
// (BundleVector, the cold-start reference) for the given θ. Parents follow
// the engine convention: a singleton's cached vector is raw (θ = 0), a
// multi-item parent's vector already carries the θ adjustment, and the
// scale passed to UnionVectors lifts each to the merged bundle's terms.
func checkUnionEquivalence(t *testing.T, w *Matrix, itemsA, itemsB []int, theta float64) {
	t.Helper()
	thetaFor := func(items []int) float64 {
		if len(items) == 1 {
			return 0
		}
		return theta
	}
	scaleFor := func(items []int) float64 {
		if len(items) == 1 {
			return 1 + theta
		}
		return 1
	}
	aIDs, aVals := w.BundleVector(itemsA, thetaFor(itemsA), nil, nil)
	bIDs, bVals := w.BundleVector(itemsB, thetaFor(itemsB), nil, nil)
	gotIDs, gotVals := UnionVectors(aIDs, aVals, scaleFor(itemsA), bIDs, bVals, scaleFor(itemsB), nil, nil)

	union := append(append([]int(nil), itemsA...), itemsB...)
	wantIDs, wantVals := w.BundleVector(union, theta, nil, nil)

	if len(gotIDs) != len(wantIDs) {
		t.Fatalf("θ=%g A=%v B=%v: union has %d consumers, reference %d", theta, itemsA, itemsB, len(gotIDs), len(wantIDs))
	}
	for j := range wantIDs {
		if gotIDs[j] != wantIDs[j] {
			t.Fatalf("θ=%g A=%v B=%v: consumer[%d] = %d, reference %d", theta, itemsA, itemsB, j, gotIDs[j], wantIDs[j])
		}
		if diff := math.Abs(gotVals[j] - wantVals[j]); diff > 1e-9 {
			t.Fatalf("θ=%g A=%v B=%v: val[%d] = %.15g, reference %.15g (diff %g)", theta, itemsA, itemsB, j, gotVals[j], wantVals[j], diff)
		}
	}
}

// TestUnionVectorsMatchesBundleVector is the property test of the
// incremental merge fast path: across random matrices, θ values, and
// overlapping-consumer patterns, a scaled union of two cached parent
// vectors equals the postings-scan rebuild of the united bundle.
func TestUnionVectorsMatchesBundleVector(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	thetas := []float64{-0.5, -0.05, 0, 0.1, 0.75}
	for trial := 0; trial < 60; trial++ {
		m := 3 + rng.Intn(40)
		n := 4 + rng.Intn(12)
		// Sweep density so some trials have heavily overlapping consumer
		// sets and others nearly disjoint ones.
		w := randomMatrix(t, rng, m, n, 0.05+0.9*rng.Float64())
		// Random disjoint item sets A and B.
		perm := rng.Perm(n)
		ka := 1 + rng.Intn(n-1)
		kb := 1 + rng.Intn(n-ka)
		itemsA := append([]int(nil), perm[:ka]...)
		itemsB := append([]int(nil), perm[ka:ka+kb]...)
		sortInts(itemsA)
		sortInts(itemsB)
		theta := thetas[trial%len(thetas)]
		checkUnionEquivalence(t, w, itemsA, itemsB, theta)
	}
}

// TestUnionVectorsEmptySides covers unions where one or both parents have
// no interested consumers.
func TestUnionVectorsEmptySides(t *testing.T) {
	w := MustNew(4, 3)
	w.MustSet(1, 0, 10)
	w.MustSet(3, 0, 4)
	// Item 1 and 2 have no consumers.
	checkUnionEquivalence(t, w, []int{0}, []int{1}, 0)
	checkUnionEquivalence(t, w, []int{1}, []int{2}, 0.3)
	ids, vals := UnionVectors(nil, nil, 1, nil, nil, 1, nil, nil)
	if len(ids) != 0 || len(vals) != 0 {
		t.Fatalf("empty union = %v %v, want empty", ids, vals)
	}
}

// TestUnionVectorsReuse checks dst reuse does not corrupt results.
func TestUnionVectorsReuse(t *testing.T) {
	w := MustNew(3, 2)
	w.MustSet(0, 0, 5)
	w.MustSet(1, 0, 7)
	w.MustSet(1, 1, 2)
	w.MustSet(2, 1, 9)
	aIDs, aVals := w.BundleVector([]int{0}, 0, nil, nil)
	bIDs, bVals := w.BundleVector([]int{1}, 0, nil, nil)
	dstIDs := make([]int, 0, 8)
	dstVals := make([]float64, 0, 8)
	ids, vals := UnionVectors(aIDs, aVals, 1, bIDs, bVals, 1, dstIDs, dstVals)
	if &ids[0] != &dstIDs[:1][0] || &vals[0] != &dstVals[:1][0] {
		t.Error("dst capacity not reused")
	}
	if len(ids) != 3 || ids[0] != 0 || ids[1] != 1 || ids[2] != 2 {
		t.Fatalf("ids = %v, want [0 1 2]", ids)
	}
	if vals[1] != 9 {
		t.Fatalf("overlap val = %g, want 9", vals[1])
	}
}

// FuzzUnionVectors drives the same property from fuzzed shape parameters:
// the corpus seeds pin down the regression cases, `go test -fuzz` explores
// beyond them.
func FuzzUnionVectors(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(6), uint8(2), float64(0))
	f.Add(int64(2), uint8(30), uint8(9), uint8(4), float64(-0.05))
	f.Add(int64(3), uint8(5), uint8(3), uint8(1), float64(0.25))
	f.Add(int64(42), uint8(60), uint8(12), uint8(6), float64(0.75))
	f.Add(int64(99), uint8(2), uint8(2), uint8(1), float64(-0.9))
	f.Fuzz(func(t *testing.T, seed int64, users, items, ka uint8, theta float64) {
		m := int(users)%64 + 1
		n := int(items)%16 + 2
		if theta <= -1 || theta > 10 || theta != theta {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		w := randomMatrix(t, rng, m, n, 0.4)
		split := int(ka)%(n-1) + 1
		perm := rng.Perm(n)
		itemsA := append([]int(nil), perm[:split]...)
		itemsB := append([]int(nil), perm[split:]...)
		sortInts(itemsA)
		sortInts(itemsB)
		checkUnionEquivalence(t, w, itemsA, itemsB, theta)
	})
}

// sortInts is a tiny insertion sort; test helper, avoids importing sort.
func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
