package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"maps"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bundling"
	"bundling/internal/codec"
)

// Store is the corpus persistence layer of the serving tier: an
// append-on-upload snapshot store under one data directory. Every uploaded
// corpus is written as a versioned record (the MatrixDoc plus its session
// metadata) and tracked in a manifest, so a restarted daemon restores its
// session registry exactly — same corpora, same owners, same upload
// generations. Generations matter beyond bookkeeping: result-cache keys and
// cluster span identities embed them, so continuing the counter across
// restarts is what keeps a post-restart re-upload from ever aliasing a
// pre-restart result.
//
// Layout under the data directory:
//
//	manifest.json            per corpus ID: live generation, owner, entry
//	                         count and listing metadata, plus the last
//	                         generation ever assigned and delete tombstones
//	corpora/<name>.g<N>.bin  one record per (corpus, generation), in the
//	                         binary columnar codec (internal/codec); legacy
//	                         .json records from older daemons are read (and
//	                         compacted) alongside, so existing data dirs
//	                         restore unchanged
//
// Records are written to a temp file and renamed into place, and the
// manifest is rewritten the same way, so a crash mid-upload leaves either
// the previous corpus generation or the new one — never a torn record. A
// background compactor deletes records superseded by a newer generation or
// by a delete; until it runs they are dead weight on disk, never served.
//
// A Store is safe for concurrent use.
type Store struct {
	dir    string
	foldAt int // delta-chain length that triggers compaction folding

	mu  sync.Mutex
	man manifest

	compactCh chan struct{}
	closed    chan struct{}
	wg        sync.WaitGroup
}

// manifest is the store's durable index.
type manifest struct {
	// Live maps corpus ID to the generation currently serving. IDs absent
	// from Live (but present in Generations) are deleted corpora.
	Live map[string]int `json:"live"`
	// Generations maps corpus ID to the last upload generation ever
	// assigned, surviving deletes — the registry seeds its version counters
	// from it so a re-created ID continues its sequence.
	Generations map[string]int `json:"generations"`
	// Owners maps each live corpus ID to its owning tenant (absent =
	// public). Ownership must outlive the in-memory session: an LRU-evicted
	// corpus keeps its record, so its owner must keep blocking takeover.
	Owners map[string]string `json:"owners,omitempty"`
	// Entries maps each live corpus ID to its non-zero WTP entry count —
	// the quota currency for corpora whose sessions are evicted.
	Entries map[string]int `json:"entries,omitempty"`
	// Deleted maps corpus ID to the highest deleted generation: the
	// tombstone that stops the raced Put of that very generation — a delete
	// can land between a session's install and its persist — from
	// resurrecting a corpus the deleter was told is gone. Cleared when a
	// genuinely newer generation goes live.
	Deleted map[string]int `json:"deleted,omitempty"`
	// Meta holds each live corpus's listing-sized metadata, so listing
	// evicted corpora never reads their record files (whose matrices can be
	// as large as the upload bound).
	Meta map[string]corpusMeta `json:"meta,omitempty"`
	// Bases maps a live corpus whose head record is a delta to the
	// generation of the snapshot its chain bottoms out on. Records between
	// base and live are the chain links and must survive compaction; absent
	// means the live record is itself a snapshot. Compaction folds long
	// chains back into snapshots and clears the entry.
	Bases map[string]int `json:"bases,omitempty"`
}

// corpusMeta is the listing-sized slice of a corpus record: what
// GET /v1/corpora needs without the matrix payload.
type corpusMeta struct {
	Consumers int        `json:"consumers"`
	Items     int        `json:"items"`
	CreatedAt time.Time  `json:"created_at"`
	Options   OptionsDoc `json:"options"`
}

// clone deep-copies the manifest. Mutators work on a clone and install it
// only after the rewrite hits disk, so a failed save never leaves the
// in-memory index claiming state the disk does not hold.
func (m manifest) clone() manifest {
	return manifest{
		Live:        maps.Clone(m.Live),
		Generations: maps.Clone(m.Generations),
		Owners:      maps.Clone(m.Owners),
		Entries:     maps.Clone(m.Entries),
		Deleted:     maps.Clone(m.Deleted),
		Meta:        maps.Clone(m.Meta),
		Bases:       maps.Clone(m.Bases),
	}
}

// CorpusRecord is one persisted corpus snapshot: the uploaded matrix plus
// everything the registry needs to rebuild the session it backed.
type CorpusRecord struct {
	ID         string              `json:"id"`
	Tenant     string              `json:"tenant,omitempty"`
	Generation int                 `json:"generation"`
	CreatedAt  time.Time           `json:"created_at"`
	Options    OptionsDoc          `json:"options"`
	Matrix     *bundling.MatrixDoc `json:"matrix"`
	// Entries is the indexed non-zero WTP entry count — the quota currency.
	// The raw doc may hold duplicate or zero-valued cells, so its length can
	// overstate what the session actually indexed.
	Entries int `json:"entries,omitempty"`
	// BaseGeneration and Cells make the record a delta: it holds no Matrix,
	// only the mutation cells applied on top of the record at
	// BaseGeneration (which may itself be a delta — chains bottom out on a
	// snapshot). LiveRecord and Restore materialize chains transparently;
	// compaction folds them back into snapshots.
	BaseGeneration int                  `json:"base_generation,omitempty"`
	Cells          []bundling.DeltaCell `json:"cells,omitempty"`
}

// isDelta reports whether the record is a chained delta rather than a full
// snapshot.
func (rec CorpusRecord) isDelta() bool { return rec.BaseGeneration > 0 && rec.Matrix == nil }

// quotaEntries returns the record's entry count for quota accounting,
// falling back to the raw doc length for records written before the Entries
// field existed.
func (rec CorpusRecord) quotaEntries() int {
	if rec.Entries > 0 || rec.Matrix == nil {
		return rec.Entries
	}
	return len(rec.Matrix.Entries)
}

// OpenStore opens (creating if needed) the snapshot store under dir and
// starts its background compactor. Callers must Close it to flush the final
// compaction pass.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "corpora"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:    dir,
		foldAt: defaultFoldAt,
		man: manifest{
			Live:        map[string]int{},
			Generations: map[string]int{},
			Owners:      map[string]string{},
			Entries:     map[string]int{},
			Deleted:     map[string]int{},
			Meta:        map[string]corpusMeta{},
			Bases:       map[string]int{},
		},
		compactCh: make(chan struct{}, 1),
		closed:    make(chan struct{}),
	}
	buf, err := os.ReadFile(s.manifestPath())
	switch {
	case err == nil:
		if err := json.Unmarshal(buf, &s.man); err != nil {
			return nil, fmt.Errorf("store: manifest: %w", err)
		}
		if s.man.Live == nil {
			s.man.Live = map[string]int{}
		}
		if s.man.Generations == nil {
			s.man.Generations = map[string]int{}
		}
		if s.man.Owners == nil {
			s.man.Owners = map[string]string{}
		}
		if s.man.Entries == nil {
			s.man.Entries = map[string]int{}
		}
		if s.man.Deleted == nil {
			s.man.Deleted = map[string]int{}
		}
		if s.man.Meta == nil {
			s.man.Meta = map[string]corpusMeta{}
		}
		if s.man.Bases == nil {
			s.man.Bases = map[string]int{}
		}
	case errors.Is(err, os.ErrNotExist):
		// fresh store
	default:
		return nil, fmt.Errorf("store: manifest: %w", err)
	}
	s.wg.Add(1)
	go s.compactor()
	s.kickCompact()
	return s, nil
}

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// Close stops the background compactor and runs one final synchronous
// compaction pass — the graceful flush the daemon performs on shutdown.
func (s *Store) Close() error {
	close(s.closed)
	s.wg.Wait()
	return s.compactNow()
}

// Put durably records one uploaded corpus: the record file first, then the
// manifest pointing at it. On return the corpus survives a crash.
func (s *Store) Put(rec CorpusRecord) error {
	if rec.Matrix == nil {
		return fmt.Errorf("store: record %q has no matrix", rec.ID)
	}
	buf, err := encodeRecordBinary(rec)
	if err != nil {
		return fmt.Errorf("store: encode %q: %w", rec.ID, err)
	}
	if err := writeAtomic(s.recordPath(rec.ID, rec.Generation, binExt), buf); err != nil {
		return fmt.Errorf("store: write %q: %w", rec.ID, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Live only ever advances: two concurrent re-uploads persist outside
	// the registry lock, so the older generation's Put may land second and
	// must not roll the manifest back behind what memory serves. Nor may it
	// advance past a tombstone: a Delete that raced this Put already told
	// its caller generations through Deleted[id] are gone, and the record
	// of a tombstoned generation is dead on arrival (compaction reclaims
	// it). Owner and entry count follow the generation that wins.
	next := s.man.clone()
	if rec.Generation > next.Live[rec.ID] && rec.Generation > next.Deleted[rec.ID] {
		next.Live[rec.ID] = rec.Generation
		if rec.Tenant == "" {
			delete(next.Owners, rec.ID)
		} else {
			next.Owners[rec.ID] = rec.Tenant
		}
		next.Entries[rec.ID] = rec.quotaEntries()
		next.Meta[rec.ID] = corpusMeta{
			Consumers: rec.Matrix.Consumers,
			Items:     rec.Matrix.Items,
			CreatedAt: rec.CreatedAt,
			Options:   rec.Options,
		}
		delete(next.Deleted, rec.ID)
		delete(next.Bases, rec.ID) // a full snapshot resets any delta chain
	}
	if rec.Generation > next.Generations[rec.ID] {
		next.Generations[rec.ID] = rec.Generation
	}
	if err := s.saveManifestLocked(next); err != nil {
		return err
	}
	s.man = next
	s.kickCompact()
	return nil
}

// defaultFoldAt is the delta-chain length at which compaction folds a
// chain into a snapshot: long enough that a burst of PATCHes stays on the
// cheap append path, short enough that restart replay and record reads stay
// O(1)-ish.
const defaultFoldAt = 16

// SetDeltaFold overrides the delta-chain length that triggers compaction
// folding (the -delta-fold daemon flag); n < 1 keeps the default.
func (s *Store) SetDeltaFold(n int) {
	if n >= 1 {
		s.foldAt = n
	}
}

// PutDelta durably records one corpus mutation as a generation-chained
// delta: the cells applied on top of the record at rec.BaseGeneration,
// without re-writing the matrix. Reads materialize the chain transparently;
// the background compactor folds chains past the fold threshold back into
// snapshots. Same durability contract as Put: on return the mutation
// survives a crash.
func (s *Store) PutDelta(rec CorpusRecord) error {
	if !rec.isDelta() || len(rec.Cells) == 0 {
		return fmt.Errorf("store: record %q is not a delta", rec.ID)
	}
	if rec.BaseGeneration >= rec.Generation {
		return fmt.Errorf("store: delta %q generation %d does not follow its base %d",
			rec.ID, rec.Generation, rec.BaseGeneration)
	}
	buf, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode delta %q: %w", rec.ID, err)
	}
	if err := writeAtomic(s.recordPath(rec.ID, rec.Generation, jsonExt), buf); err != nil {
		return fmt.Errorf("store: write delta %q: %w", rec.ID, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Same advance-only rules as Put — and the base must still be the live
	// generation: a delta chained on a superseded or deleted base describes
	// a corpus state that no longer exists and must not be installed.
	if s.man.Live[rec.ID] != rec.BaseGeneration {
		return fmt.Errorf("store: delta %q bases on generation %d, live is %d",
			rec.ID, rec.BaseGeneration, s.man.Live[rec.ID])
	}
	next := s.man.clone()
	if rec.Generation > next.Live[rec.ID] && rec.Generation > next.Deleted[rec.ID] {
		if _, chained := next.Bases[rec.ID]; !chained {
			next.Bases[rec.ID] = rec.BaseGeneration // chain root: the snapshot we extend
		}
		next.Live[rec.ID] = rec.Generation
		next.Entries[rec.ID] = rec.Entries
		delete(next.Deleted, rec.ID)
	}
	if rec.Generation > next.Generations[rec.ID] {
		next.Generations[rec.ID] = rec.Generation
	}
	if err := s.saveManifestLocked(next); err != nil {
		return err
	}
	s.man = next
	s.kickCompact()
	return nil
}

// materialize resolves a record into a full snapshot: a plain record passes
// through, a delta record walks its base chain down to the snapshot and
// replays every cell batch in order onto the matrix doc.
func (s *Store) materialize(rec CorpusRecord) (CorpusRecord, error) {
	if !rec.isDelta() {
		return rec, nil
	}
	head := rec
	var batches [][]bundling.DeltaCell
	for rec.isDelta() {
		// Generations strictly decrease down the chain (PutDelta enforces
		// it), so the walk terminates; the explicit bound catches a
		// hand-corrupted record before it can loop or recurse the disk.
		if len(batches) >= 1<<16 {
			return CorpusRecord{}, fmt.Errorf("store: delta chain of %q exceeds %d links", head.ID, 1<<16)
		}
		batches = append(batches, rec.Cells)
		base, err := s.readRecord(rec.ID, rec.BaseGeneration)
		if err != nil {
			return CorpusRecord{}, fmt.Errorf("store: delta base g%d of %q: %w", rec.BaseGeneration, rec.ID, err)
		}
		if base.isDelta() && base.Generation >= rec.Generation {
			return CorpusRecord{}, fmt.Errorf("store: delta chain of %q does not descend at g%d", head.ID, base.Generation)
		}
		rec = base
	}
	if rec.Matrix == nil {
		return CorpusRecord{}, fmt.Errorf("store: delta chain of %q bottoms out without a matrix", head.ID)
	}
	doc, err := foldCells(rec.Matrix, batches)
	if err != nil {
		return CorpusRecord{}, fmt.Errorf("store: fold chain of %q: %w", head.ID, err)
	}
	head.Matrix = doc
	head.Cells = nil
	head.BaseGeneration = 0
	if head.CreatedAt.IsZero() {
		head.CreatedAt = rec.CreatedAt
	}
	return head, nil
}

// foldCells replays delta batches (oldest last in the slice — the chain is
// walked head-first) onto a snapshot matrix doc, producing the folded doc.
func foldCells(base *bundling.MatrixDoc, batches [][]bundling.DeltaCell) (*bundling.MatrixDoc, error) {
	w, err := base.Matrix()
	if err != nil {
		return nil, err
	}
	for i := len(batches) - 1; i >= 0; i-- {
		for _, c := range batches[i] {
			if c.Delete {
				err = w.Delete(c.Consumer, c.Item)
			} else {
				err = w.Set(c.Consumer, c.Item, c.Value)
			}
			if err != nil {
				return nil, err
			}
		}
	}
	return bundling.NewMatrixDoc(w), nil
}

// LiveRecord loads the live record of one corpus ID, if any — the recovery
// source when a failed persist forces the serving layer to fall back to
// the generation the disk still guarantees. A delta chain is materialized
// into the full snapshot it describes.
func (s *Store) LiveRecord(id string) (CorpusRecord, bool) {
	s.mu.Lock()
	gen, ok := s.man.Live[id]
	s.mu.Unlock()
	if !ok {
		return CorpusRecord{}, false
	}
	// Two attempts: a concurrent compaction can fold the chain and reclaim a
	// link mid-walk; the re-read then sees the folded snapshot directly.
	for attempt := 0; attempt < 2; attempt++ {
		rec, err := s.readRecord(id, gen)
		if err == nil {
			rec, err = s.materialize(rec)
		}
		if err == nil && rec.ID == id && rec.Matrix != nil {
			return rec, true
		}
	}
	return CorpusRecord{}, false
}

// ListLive renders a listing entry for every live (persisted, non-deleted)
// corpus the tenant may see — its own plus public ones; with all set, every
// corpus. Built from the manifest alone: the listing's reach past the
// in-memory registry never reads record files (whose matrices can be as
// large as the upload bound). Stripe and total-WTP figures are unknown
// until a corpus is re-indexed and stay zero.
func (s *Store) ListLive(tenant string, all bool) []CorpusInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]CorpusInfo, 0, len(s.man.Live))
	for id, gen := range s.man.Live {
		owner := s.man.Owners[id]
		if !all && owner != "" && owner != tenant {
			continue
		}
		meta := s.man.Meta[id]
		out = append(out, CorpusInfo{
			ID:        id,
			Version:   gen,
			Tenant:    owner,
			Consumers: meta.Consumers,
			Items:     meta.Items,
			Entries:   s.man.Entries[id],
			Options:   meta.Options,
			CreatedAt: meta.CreatedAt,
		})
	}
	return out
}

// Delete durably removes a corpus from the manifest (its record files are
// reclaimed by compaction) — but only while its live generation is still at
// most gen, the generation the caller evicted. A concurrent re-upload that
// already persisted a newer generation wins: its durably-acknowledged
// corpus must never be un-persisted by a delete that raced it. The ID's
// generation counter is retained so a later re-upload continues the
// sequence.
func (s *Store) Delete(id string, gen int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if live, ok := s.man.Live[id]; ok && live > gen {
		return nil
	}
	if s.man.Deleted[id] >= gen {
		return nil // already tombstoned through this generation
	}
	next := s.man.clone()
	delete(next.Live, id)
	delete(next.Owners, id)
	delete(next.Entries, id)
	delete(next.Meta, id)
	delete(next.Bases, id)
	// Tombstone through gen even when no live entry exists yet: the
	// evicted session's Put may still be in flight, and landing after this
	// delete must not resurrect the generation the caller was told is
	// gone. Raising the generation counter alongside keeps post-restart
	// uploads sequencing past the tombstone.
	next.Deleted[id] = gen
	if gen > next.Generations[id] {
		next.Generations[id] = gen
	}
	if err := s.saveManifestLocked(next); err != nil {
		return err
	}
	s.man = next
	s.kickCompact()
	return nil
}

// Owner reports the owning tenant of a live (persisted, non-deleted)
// corpus; ok is false when the ID has no live record. The registry's
// install gate consults it so an LRU-evicted corpus still blocks takeover
// by another tenant.
func (s *Store) Owner(id string) (tenant string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, live := s.man.Live[id]; !live {
		return "", false
	}
	return s.man.Owners[id], true
}

// LiveInfo reports the owning tenant, live generation and entry count of a
// persisted corpus.
func (s *Store) LiveInfo(id string) (tenant string, gen, entries int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	gen, ok = s.man.Live[id]
	if !ok {
		return "", 0, 0, false
	}
	return s.man.Owners[id], gen, s.man.Entries[id], true
}

// forEachLive calls fn for every live corpus with its owner and entry count
// — the registry's durable-holdings source for quota accounting, so evicted
// corpora keep counting against their tenant.
func (s *Store) forEachLive(fn func(id, tenant string, entries int)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id := range s.man.Live {
		fn(id, s.man.Owners[id], s.man.Entries[id])
	}
}

// Restore loads every live corpus record, sorted by ID. A record that fails
// to load is skipped and reported in the joined error; the good records are
// still returned, so one corrupt file degrades to a missing corpus instead
// of a daemon that cannot boot.
func (s *Store) Restore() ([]CorpusRecord, error) {
	s.mu.Lock()
	ids := make([]string, 0, len(s.man.Live))
	gens := make(map[string]int, len(s.man.Live))
	for id, gen := range s.man.Live {
		ids = append(ids, id)
		gens[id] = gen
	}
	s.mu.Unlock()
	sort.Strings(ids)
	var (
		recs []CorpusRecord
		errs []error
	)
	for _, id := range ids {
		rec, err := s.readRecord(id, gens[id])
		if err == nil {
			rec, err = s.materialize(rec)
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("store: restore %q: %w", id, err))
			continue
		}
		if rec.ID != id || rec.Generation != gens[id] {
			errs = append(errs, fmt.Errorf("store: restore %q: record names %q generation %d, manifest expects generation %d",
				id, rec.ID, rec.Generation, gens[id]))
			continue
		}
		if rec.Matrix == nil {
			errs = append(errs, fmt.Errorf("store: restore %q: record has no matrix", id))
			continue
		}
		recs = append(recs, rec)
	}
	s.backfillManifest(recs)
	return recs, errors.Join(errs...)
}

// backfillManifest fills ownership and entry counts missing from the
// manifest (written by a version that tracked only generations) from the
// records themselves, so the install gate and quota accounting see old data
// dirs correctly. The in-memory fill sticks even when the rewrite fails —
// it restates what the records already durably say — and the rewrite then
// lands with the next successful Put.
func (s *Store) backfillManifest(recs []CorpusRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	changed := false
	for _, rec := range recs {
		if s.man.Live[rec.ID] != rec.Generation {
			continue
		}
		if _, ok := s.man.Entries[rec.ID]; !ok {
			s.man.Entries[rec.ID] = rec.quotaEntries()
			changed = true
		}
		if _, ok := s.man.Owners[rec.ID]; !ok && rec.Tenant != "" {
			s.man.Owners[rec.ID] = rec.Tenant
			changed = true
		}
		if _, ok := s.man.Meta[rec.ID]; !ok {
			s.man.Meta[rec.ID] = corpusMeta{
				Consumers: rec.Matrix.Consumers,
				Items:     rec.Matrix.Items,
				CreatedAt: rec.CreatedAt,
				Options:   rec.Options,
			}
			changed = true
		}
	}
	if changed {
		_ = s.saveManifestLocked(s.man)
	}
}

// Bootstrap prepares the store for lazy serving without reading record
// files: it returns the live corpus count the manifest already knows, after
// backfilling listing metadata for any live ID a pre-metadata manifest
// (written by an older daemon) left bare — only those records are read, so a
// current-format data dir boots in O(manifest) regardless of corpus sizes.
func (s *Store) Bootstrap() (int, error) {
	s.mu.Lock()
	n := len(s.man.Live)
	var stale []string
	gens := make(map[string]int)
	for id, gen := range s.man.Live {
		if _, meta := s.man.Meta[id]; meta {
			if _, ent := s.man.Entries[id]; ent {
				continue
			}
		}
		stale = append(stale, id)
		gens[id] = gen
	}
	s.mu.Unlock()
	if len(stale) == 0 {
		return n, nil
	}
	sort.Strings(stale)
	var recs []CorpusRecord
	var errs []error
	for _, id := range stale {
		rec, err := s.readRecord(id, gens[id])
		if err != nil {
			errs = append(errs, fmt.Errorf("store: bootstrap %q: %w", id, err))
			continue
		}
		if rec.ID == id && rec.Matrix != nil {
			recs = append(recs, rec)
		}
	}
	s.backfillManifest(recs)
	return n, errors.Join(errs...)
}

// DiskBytes walks the data directory and sums every file's size — manifest,
// records and any not-yet-compacted garbage — the source of the
// bundled_store_disk_bytes gauge.
func (s *Store) DiskBytes() int64 {
	var total int64
	_ = filepath.WalkDir(s.dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if info, ierr := d.Info(); ierr == nil {
			total += info.Size()
		}
		return nil
	})
	return total
}

// Generations snapshots the last-assigned upload generation per corpus ID,
// including deleted IDs — the registry's version-counter seed.
func (s *Store) Generations() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.man.Generations))
	for id, gen := range s.man.Generations {
		out[id] = gen
	}
	return out
}

// Len returns the number of live (persisted, non-deleted) corpora.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.man.Live)
}

// --- internals --------------------------------------------------------------

func (s *Store) manifestPath() string { return filepath.Join(s.dir, "manifest.json") }

// Record file extensions: new records are written in the binary codec;
// legacy JSON records are read and compacted but never written.
const (
	binExt  = ".bin"
	jsonExt = ".json"
)

// recordPath names a (corpus, generation) record file. The name keeps a
// sanitized prefix of the ID for operator readability and appends an FNV
// hash of the full ID so two IDs that sanitize identically cannot collide.
func (s *Store) recordPath(id string, gen int, ext string) string {
	return filepath.Join(s.dir, "corpora", fmt.Sprintf("%s.g%d%s", recordName(id), gen, ext))
}

// readRecord loads one (corpus, generation) record, binary codec first and
// legacy JSON as the fallback — the read side of the format migration, so a
// data dir written by an older daemon (or holding a mix across an upgrade)
// restores unchanged.
func (s *Store) readRecord(id string, gen int) (CorpusRecord, error) {
	buf, err := os.ReadFile(s.recordPath(id, gen, binExt))
	switch {
	case err == nil:
		return decodeRecordBinary(buf)
	case !errors.Is(err, os.ErrNotExist):
		return CorpusRecord{}, err
	}
	if buf, err = os.ReadFile(s.recordPath(id, gen, jsonExt)); err != nil {
		return CorpusRecord{}, err
	}
	var rec CorpusRecord
	if err := json.Unmarshal(buf, &rec); err != nil {
		return CorpusRecord{}, err
	}
	return rec, nil
}

// encodeRecordBinary lowers a corpus record to its codec envelope. Options
// stay a JSON blob inside the envelope — they are a few dozen bytes defined
// by this package, not a hot column — while the keys ride the interned
// string table and the matrix rides the columnar encoding.
func encodeRecordBinary(rec CorpusRecord) ([]byte, error) {
	opt, err := json.Marshal(rec.Options)
	if err != nil {
		return nil, err
	}
	return codec.EncodeRecord(&codec.Record{
		ID:          rec.ID,
		Tenant:      rec.Tenant,
		Generation:  rec.Generation,
		CreatedAt:   rec.CreatedAt,
		OptionsJSON: opt,
		Matrix:      codec.MatrixData(*rec.Matrix),
		Entries:     rec.Entries,
	})
}

// decodeRecordBinary parses a codec record envelope back into the store's
// record form.
func decodeRecordBinary(buf []byte) (CorpusRecord, error) {
	cr, err := codec.DecodeRecord(buf)
	if err != nil {
		return CorpusRecord{}, err
	}
	rec := CorpusRecord{
		ID:         cr.ID,
		Tenant:     cr.Tenant,
		Generation: cr.Generation,
		CreatedAt:  cr.CreatedAt,
		Entries:    cr.Entries,
	}
	if len(cr.OptionsJSON) > 0 {
		if err := json.Unmarshal(cr.OptionsJSON, &rec.Options); err != nil {
			return CorpusRecord{}, fmt.Errorf("record options: %w", err)
		}
	}
	doc := bundling.MatrixDoc(cr.Matrix)
	rec.Matrix = &doc
	return rec, nil
}

// recordName renders a corpus ID filesystem-safe.
func recordName(id string) string {
	var b strings.Builder
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
		if b.Len() >= 48 {
			break
		}
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	return fmt.Sprintf("%s.%016x", b.String(), h.Sum64())
}

// saveManifestLocked rewrites the manifest atomically; callers hold s.mu
// and install m as s.man only when the write succeeded.
func (s *Store) saveManifestLocked(m manifest) error {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode manifest: %w", err)
	}
	if err := writeAtomic(s.manifestPath(), buf); err != nil {
		return fmt.Errorf("store: write manifest: %w", err)
	}
	return nil
}

// writeAtomic writes buf to path via a temp file + rename, so readers (and
// crashes) see either the old content or the new, never a torn write.
func writeAtomic(path string, buf []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(buf)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if err := errors.Join(werr, serr, cerr); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	// The rename itself is only durable once the directory entry is synced;
	// best effort on platforms whose directories reject Sync.
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync()
		_ = dir.Close()
	}
	return nil
}

// kickCompact schedules a compaction pass without blocking.
func (s *Store) kickCompact() {
	select {
	case s.compactCh <- struct{}{}:
	default:
	}
}

// compactor runs compaction passes in the background until Close.
func (s *Store) compactor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.compactCh:
			_ = s.compactNow()
		case <-s.closed:
			return
		}
	}
}

// foldChains rewrites every live delta chain past the fold threshold as a
// full snapshot at the head generation: the materialized record lands as a
// binary record file under the same (corpus, generation) name — readers
// prefer it over the delta head immediately — and the manifest's chain-root
// entry is cleared so the next reclaim pass frees the chain links. A chain
// that grew meanwhile simply folds again on a later pass.
func (s *Store) foldChains() {
	type chain struct {
		id  string
		gen int
	}
	s.mu.Lock()
	var chains []chain
	for id, base := range s.man.Bases {
		if gen, ok := s.man.Live[id]; ok && gen-base >= s.foldAt {
			chains = append(chains, chain{id, gen})
		}
	}
	s.mu.Unlock()
	for _, c := range chains {
		rec, err := s.readRecord(c.id, c.gen)
		if err == nil {
			rec, err = s.materialize(rec)
		}
		if err != nil || rec.Matrix == nil {
			continue // unreadable chain: leave it for the read path to surface
		}
		buf, err := encodeRecordBinary(rec)
		if err != nil {
			continue
		}
		if writeAtomic(s.recordPath(c.id, c.gen, binExt), buf) != nil {
			continue
		}
		s.mu.Lock()
		if s.man.Live[c.id] == c.gen {
			next := s.man.clone()
			delete(next.Bases, c.id)
			if s.saveManifestLocked(next) == nil {
				s.man = next
			}
		}
		s.mu.Unlock()
		// The delta head at the same generation is superseded by the binary
		// snapshot (readRecord prefers .bin); drop it directly — the reclaim
		// scan compares generations and would never touch an equal one.
		_ = os.Remove(s.recordPath(c.id, c.gen, jsonExt))
	}
}

// compactNow folds over-long delta chains into snapshots, then deletes every
// record file superseded by a newer generation or orphaned by a delete. It
// decides per file from the generation in the file name, never by "not in
// the manifest snapshot": an upload writes its record before the manifest,
// so a snapshot-membership rule would race a concurrent Put and delete a
// record the manifest is about to point at. Comparing generations is
// monotonic — a stale snapshot can only under-delete, and the next pass
// finishes the job. A live delta chain's links (every generation from its
// snapshot root up) are retained. Unrecognized files are left alone.
func (s *Store) compactNow() error {
	s.foldChains()
	s.mu.Lock()
	liveGen := make(map[string]int, len(s.man.Live))
	for id, gen := range s.man.Live {
		key := recordName(id)
		if base, chained := s.man.Bases[id]; chained && base < gen {
			gen = base // keep the whole chain down to its snapshot root
		}
		liveGen[key] = gen
	}
	lastGen := make(map[string]int, len(s.man.Generations))
	for id, gen := range s.man.Generations {
		lastGen[recordName(id)] = gen
	}
	s.mu.Unlock()
	entries, err := os.ReadDir(filepath.Join(s.dir, "corpora"))
	if err != nil {
		return err
	}
	var errs []error
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		key, gen, ok := parseRecordName(name)
		if !ok {
			continue
		}
		var dead bool
		if live, isLive := liveGen[key]; isLive {
			dead = gen < live // superseded by a newer upload
		} else if last, known := lastGen[key]; known {
			dead = gen <= last // deleted ID; a concurrent re-upload is > last
		}
		if !dead {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, "corpora", name)); err != nil && !errors.Is(err, os.ErrNotExist) {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// parseRecordName splits a record file name into its ID key (the sanitized
// prefix plus hash, i.e. recordName(id)) and generation. Both record formats
// parse, so compaction reclaims superseded legacy JSON records exactly like
// binary ones.
func parseRecordName(name string) (key string, gen int, ok bool) {
	base, found := strings.CutSuffix(name, binExt)
	if !found {
		if base, found = strings.CutSuffix(name, jsonExt); !found {
			return "", 0, false
		}
	}
	i := strings.LastIndex(base, ".g")
	if i < 0 {
		return "", 0, false
	}
	n, err := strconv.Atoi(base[i+2:])
	if err != nil || n < 1 {
		return "", 0, false
	}
	return base[:i], n, true
}
