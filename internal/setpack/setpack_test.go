package setpack

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if _, err := ExactDP(-1, nil); err == nil {
		t.Error("expected error for negative n")
	}
	if _, err := ExactDP(31, nil); err == nil {
		t.Error("expected error for n > MaxItems")
	}
	if _, err := ExactDP(2, []float64{0, 1, 2}); err == nil {
		t.Error("expected error for wrong weight count")
	}
	if _, err := ExactDP(1, []float64{0, -1}); err == nil {
		t.Error("expected error for negative weight")
	}
}

func TestTrivialCases(t *testing.T) {
	r, err := ExactDP(0, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if r.Weight != 0 || len(r.Masks) != 0 {
		t.Errorf("n=0: %+v", r)
	}
	// Single item: take its singleton.
	r, err = ExactDP(1, []float64{0, 7})
	if err != nil {
		t.Fatal(err)
	}
	if r.Weight != 7 || len(r.Masks) != 1 || r.Masks[0] != 1 {
		t.Errorf("n=1: %+v", r)
	}
}

func TestHandWorkedPacking(t *testing.T) {
	// 3 items; singletons worth 5 each, pair {0,1} worth 12, triple 14.
	// Best: {0,1} + {2} = 17.
	w := make([]float64, 8)
	w[0b001] = 5
	w[0b010] = 5
	w[0b100] = 5
	w[0b011] = 12
	w[0b111] = 14
	r, err := ExactDP(3, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Weight-17) > 1e-12 {
		t.Errorf("weight = %g, want 17", r.Weight)
	}
	if len(r.Masks) != 2 || r.Masks[0] != 0b011 || r.Masks[1] != 0b100 {
		t.Errorf("masks = %b, want [011 100]", r.Masks)
	}
}

func TestMasksDisjointAndSumMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(8)
		w := randWeights(rng, n)
		for _, solve := range []func(int, []float64) (Result, error){ExactDP, ExactBB, GreedyRatio} {
			r, err := solve(n, w)
			if err != nil {
				t.Fatal(err)
			}
			seen := 0
			var sum float64
			for _, m := range r.Masks {
				if seen&m != 0 {
					t.Fatalf("overlapping masks %b", r.Masks)
				}
				seen |= m
				sum += w[m]
			}
			if math.Abs(sum-r.Weight) > 1e-9 {
				t.Fatalf("weight %g but masks sum to %g", r.Weight, sum)
			}
		}
	}
}

// bruteForcePack enumerates all partitions-into-disjoint-sets by DFS.
func bruteForcePack(n int, w []float64) float64 {
	full := 1<<uint(n) - 1
	var rec func(remaining int) float64
	rec = func(remaining int) float64 {
		if remaining == 0 {
			return 0
		}
		low := remaining & -remaining
		rest := remaining ^ low
		best := rec(rest) // leave low unpacked
		for sub := rest; ; sub = (sub - 1) & rest {
			m := sub | low
			if v := w[m] + rec(remaining^m); v > best {
				best = v
			}
			if sub == 0 {
				break
			}
		}
		return best
	}
	return rec(full)
}

func randWeights(rng *rand.Rand, n int) []float64 {
	w := make([]float64, 1<<uint(n))
	for m := 1; m < len(w); m++ {
		if rng.Float64() < 0.7 {
			w[m] = rng.Float64() * 20 * float64(bits.OnesCount(uint(m)))
		}
	}
	return w
}

func TestQuickExactSolversAgree(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw%8)
		w := randWeights(rng, n)
		dp, err1 := ExactDP(n, w)
		bb, err2 := ExactBB(n, w)
		if err1 != nil || err2 != nil {
			return false
		}
		want := bruteForcePack(n, w)
		return math.Abs(dp.Weight-want) < 1e-9 && math.Abs(bb.Weight-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyWithinBoundAndBelowOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(8)
		w := randWeights(rng, n)
		opt, err := ExactDP(n, w)
		if err != nil {
			t.Fatal(err)
		}
		g, err := GreedyRatio(n, w)
		if err != nil {
			t.Fatal(err)
		}
		if g.Weight > opt.Weight+1e-9 {
			t.Fatalf("greedy %g exceeds optimal %g", g.Weight, opt.Weight)
		}
		// Chandra-Halldórsson guarantee: within √N of optimal.
		if opt.Weight > 0 && g.Weight < opt.Weight/math.Sqrt(float64(n))-1e-9 {
			t.Fatalf("greedy %g below √N bound of optimal %g (n=%d)", g.Weight, opt.Weight, n)
		}
	}
}

// TestGreedyAdversarial: the classic case where ratio-greedy is suboptimal
// — a heavy-per-item small set blocks a better partition.
func TestGreedyAdversarial(t *testing.T) {
	// Items {0,1,2}: pair {0,1} has ratio 6, singletons ratio 5 each;
	// optimal takes three singletons (15), greedy takes {0,1}=12 + {2}=5.
	w := make([]float64, 8)
	w[0b001] = 5
	w[0b010] = 5
	w[0b100] = 5
	w[0b011] = 12
	g, err := GreedyRatio(3, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Weight-17) > 1e-12 {
		t.Errorf("greedy = %g, want 17 ({0,1}+{2})", g.Weight)
	}
	opt, _ := ExactDP(3, w)
	if opt.Weight != 17 {
		// In this instance greedy happens to match; build a true gap:
		t.Logf("optimal %g", opt.Weight)
	}
	// True adversarial gap: pair ratio beats singles but sum loses.
	w2 := make([]float64, 8)
	w2[0b001] = 10
	w2[0b010] = 10
	w2[0b011] = 14 // ratio 7 < 10 → greedy is fine here; flip it:
	w2[0b011] = 22 // ratio 11 > 10; greedy takes pair = 22 > 20. optimal.
	// For a real gap we need three items where the pair excludes a single.
	w3 := make([]float64, 8)
	w3[0b001] = 10
	w3[0b010] = 10
	w3[0b100] = 10
	w3[0b110] = 21 // ratio 10.5: greedy picks it, blocking 10+10
	g3, _ := GreedyRatio(3, w3)
	o3, _ := ExactDP(3, w3)
	if g3.Weight != 31 { // {1,2}=21 + {0}=10
		t.Errorf("greedy = %g, want 31", g3.Weight)
	}
	if o3.Weight != 31 { // here optimal = 10+10+... {0}+{1}+{2}=30 < 31
		t.Errorf("optimal = %g, want 31", o3.Weight)
	}
}

func TestGreedyCandidates(t *testing.T) {
	cands := []Candidate{
		{Items: []int{0, 1}, Weight: 12}, // ratio 6
		{Items: []int{0}, Weight: 5},
		{Items: []int{1}, Weight: 5},
		{Items: []int{2}, Weight: 5},
		{Items: []int{2}, Weight: 0}, // zero weight never picked
	}
	r := GreedyCandidates(cands)
	if math.Abs(r.Weight-17) > 1e-12 {
		t.Errorf("weight = %g, want 17", r.Weight)
	}
	if len(r.Masks) != 2 {
		t.Errorf("masks = %v, want 2 picks", r.Masks)
	}
	if got := GreedyCandidates(nil); got.Weight != 0 || len(got.Masks) != 0 {
		t.Errorf("empty candidates: %+v", got)
	}
}

func TestBBMatchesDPOnLargerInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 12
	w := randWeights(rng, n)
	dp, err := ExactDP(n, w)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := ExactBB(n, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dp.Weight-bb.Weight) > 1e-9 {
		t.Fatalf("DP %g vs BB %g", dp.Weight, bb.Weight)
	}
}
