// Package wtp models consumers' willingness to pay (WTP).
//
// The paper (Sec. 3) represents consumer preferences as an M×N matrix W
// where w[u][i] ≥ 0 is how much consumer u is willing to pay for item i.
// The matrix is derived from rating data (Sec. 6.1.1): a rating r on an item
// with list price p converts to WTP = (r / r_max) · λ · p, for a conversion
// factor λ ≥ 1. A bundle's WTP (Eq. 1) is the θ-adjusted sum of its items'
// WTPs: w[u][b] = (1+θ) Σ_{i∈b} w[u][i].
//
// Ratings are sparse, so the package keeps both a dense row-major matrix for
// O(1) lookup and per-item postings lists (consumers with non-zero WTP) for
// the union scans the pricing code performs.
package wtp

import (
	"errors"
	"fmt"
	"math"
)

// MaxRating is the top of the rating scale used by FromRatings (5-star scale,
// as in the Amazon dataset the paper uses).
const MaxRating = 5

// Entry is one consumer's non-zero willingness to pay for an item.
type Entry struct {
	Consumer int
	Value    float64
}

// Matrix is an M consumers × N items willingness-to-pay matrix.
//
// Construct with New or FromRatings. The zero value is unusable.
type Matrix struct {
	m, n     int
	rows     [][]float64 // per consumer: dense row of n WTP values
	postings [][]Entry   // per item: consumers with non-zero WTP, ascending
	colSum   []float64   // per item: total WTP (upper bound of item revenue)
	total    float64     // grand total WTP (upper bound of any revenue)
	version  uint64      // bumped by every mutation; Shard staleness checks
	// cow marks a matrix derived by WithDelta: its rows and posting lists may
	// share backing arrays with the parent snapshot, so every write must
	// clone the touched row / posting list before storing through it.
	cow bool
}

// maxDenseCells caps the dense backing array of a Matrix. The limit exists
// to turn absurd dimensions — typically corrupt input with sky-high ids —
// into an error instead of a makeslice panic or an out-of-memory kill.
// (1<<31 - 1 also keeps the constant an untyped int on 32-bit platforms.)
const maxDenseCells = 1<<31 - 1

// New returns an all-zero M×N matrix.
func New(consumers, items int) (*Matrix, error) {
	if consumers < 0 || items < 0 {
		return nil, fmt.Errorf("wtp: negative dimensions %d×%d", consumers, items)
	}
	if items > 0 && consumers > maxDenseCells/items {
		return nil, fmt.Errorf("wtp: matrix %d×%d exceeds %d dense cells", consumers, items, maxDenseCells)
	}
	backing := make([]float64, consumers*items)
	rows := make([][]float64, consumers)
	for u := range rows {
		rows[u] = backing[u*items : (u+1)*items : (u+1)*items]
	}
	return &Matrix{
		m:        consumers,
		n:        items,
		rows:     rows,
		postings: make([][]Entry, items),
		colSum:   make([]float64, items),
	}, nil
}

// MustNew is New but panics on error; intended for tests and examples.
func MustNew(consumers, items int) *Matrix {
	w, err := New(consumers, items)
	if err != nil {
		panic(err)
	}
	return w
}

// Consumers returns M, the number of consumers.
func (w *Matrix) Consumers() int { return w.m }

// Items returns N, the number of items.
func (w *Matrix) Items() int { return w.n }

// Set assigns consumer u's willingness to pay for item i. Values must be
// finite and non-negative; setting 0 removes any existing entry. Calls may
// come in any order — the per-item postings list stays sorted (binary
// search + insert, so ascending-consumer insertion is the cheap path).
func (w *Matrix) Set(u, i int, value float64) error {
	if u < 0 || u >= w.m || i < 0 || i >= w.n {
		return fmt.Errorf("wtp: index (%d,%d) out of range %d×%d", u, i, w.m, w.n)
	}
	if value < 0 || math.IsNaN(value) || math.IsInf(value, 0) {
		return fmt.Errorf("wtp: willingness to pay %g must be finite and non-negative", value)
	}
	if w.rows[u][i] == value {
		return nil
	}
	w.version++
	w.put(u, i, value)
	return nil
}

// Delete removes consumer u's willingness to pay for item i: the cell becomes
// a true absence — it leaves the dense row, the posting list, and the
// column/grand totals, so it can never resurface through BundleVector,
// UnionVectors, or a serialized snapshot. Deleting an already-absent cell is
// a no-op (and does not bump the version).
func (w *Matrix) Delete(u, i int) error {
	if u < 0 || u >= w.m || i < 0 || i >= w.n {
		return fmt.Errorf("wtp: index (%d,%d) out of range %d×%d", u, i, w.m, w.n)
	}
	if w.rows[u][i] == 0 {
		return nil
	}
	w.version++
	w.put(u, i, 0)
	return nil
}

// put writes one cell — the dense row, the posting list, and the column and
// grand totals — assuming bounds and value validity were already checked and
// the value actually changes something is the caller's concern (writing the
// current value is a harmless no-op here). On a copy-on-write matrix the
// touched row and posting list are cloned first, so snapshots sharing the
// parent's arrays are never written through.
func (w *Matrix) put(u, i int, value float64) {
	old := w.rows[u][i]
	if old == value {
		return
	}
	if w.cow {
		w.rows[u] = append([]float64(nil), w.rows[u]...)
		w.postings[i] = append([]Entry(nil), w.postings[i]...)
	}
	w.rows[u][i] = value
	w.colSum[i] += value - old
	w.total += value - old
	p := w.postings[i]
	// Binary search for consumer u in the posting list.
	lo, hi := 0, len(p)
	for lo < hi {
		mid := (lo + hi) / 2
		if p[mid].Consumer < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	switch {
	case lo < len(p) && p[lo].Consumer == u:
		if value == 0 {
			w.postings[i] = append(p[:lo], p[lo+1:]...)
		} else {
			p[lo].Value = value
		}
	case value != 0:
		p = append(p, Entry{})
		copy(p[lo+1:], p[lo:])
		p[lo] = Entry{Consumer: u, Value: value}
		w.postings[i] = p
	}
}

// MustSet is Set but panics on error; intended for tests and examples.
func (w *Matrix) MustSet(u, i int, value float64) {
	if err := w.Set(u, i, value); err != nil {
		panic(err)
	}
}

// At returns consumer u's willingness to pay for item i.
func (w *Matrix) At(u, i int) float64 {
	return w.rows[u][i]
}

// Postings returns the consumers with non-zero WTP for item i, in ascending
// consumer order. The returned slice must not be modified.
func (w *Matrix) Postings(i int) []Entry { return w.postings[i] }

// ItemTotal returns the aggregate WTP for item i across all consumers.
func (w *Matrix) ItemTotal(i int) float64 { return w.colSum[i] }

// Total returns the aggregate WTP over all consumers and items. This is the
// revenue upper bound used by the revenue-coverage metric (Sec. 6.1.2).
func (w *Matrix) Total() float64 { return w.total }

// Entries returns the number of non-zero WTP entries in the matrix.
func (w *Matrix) Entries() int {
	var n int
	for _, p := range w.postings {
		n += len(p)
	}
	return n
}

// Version returns the matrix's mutation counter. Every successful Set that
// changes a value bumps it; snapshots (Shard) and downstream caches key on
// the version to detect staleness.
func (w *Matrix) Version() uint64 { return w.version }

// BundleWTP returns consumer u's willingness to pay for the bundle given by
// items, following Eq. 1: (1+θ) Σ w[u][i]. θ < -1 would produce negative
// WTP and is rejected by Params validation upstream; here it is clamped at 0.
func (w *Matrix) BundleWTP(u int, items []int, theta float64) float64 {
	var sum float64
	row := w.rows[u]
	for _, i := range items {
		sum += row[i]
	}
	v := sum * (1 + theta)
	if v < 0 {
		return 0
	}
	return v
}

// BundleVector computes, for every consumer with non-zero WTP for at least
// one item of the bundle, that consumer's bundle WTP (Eq. 1). It returns
// parallel slices of consumer ids (ascending) and WTP values. The dst slices
// are reused if they have capacity, so callers can amortize allocations
// across the many candidate bundles the configuration algorithms price.
//
// This is the cold-start path: it rebuilds the vector from the raw item
// postings in O(Σ|postings| · log k) via a heap merge. The configuration
// algorithms' candidate-merge hot path instead derives merged vectors from
// the parents' cached vectors with UnionVectors, which is O(|a|+|b|).
func (w *Matrix) BundleVector(items []int, theta float64, dstIDs []int, dstVals []float64) ([]int, []float64) {
	dstIDs = dstIDs[:0]
	dstVals = dstVals[:0]
	switch len(items) {
	case 0:
		return dstIDs, dstVals
	case 1:
		// Fast path: single item, postings already hold the answer.
		for _, e := range w.postings[items[0]] {
			v := e.Value * (1 + theta)
			if v > 0 {
				dstIDs = append(dstIDs, e.Consumer)
				dstVals = append(dstVals, v)
			}
		}
		return dstIDs, dstVals
	case 2:
		// Two items: a plain two-pointer merge beats any heap.
		a, b := w.postings[items[0]], w.postings[items[1]]
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			var u int
			var sum float64
			switch {
			case a[i].Consumer < b[j].Consumer:
				u, sum = a[i].Consumer, a[i].Value
				i++
			case a[i].Consumer > b[j].Consumer:
				u, sum = b[j].Consumer, b[j].Value
				j++
			default:
				u, sum = a[i].Consumer, a[i].Value+b[j].Value
				i++
				j++
			}
			if v := sum * (1 + theta); v > 0 {
				dstIDs = append(dstIDs, u)
				dstVals = append(dstVals, v)
			}
		}
		for ; i < len(a); i++ {
			if v := a[i].Value * (1 + theta); v > 0 {
				dstIDs = append(dstIDs, a[i].Consumer)
				dstVals = append(dstVals, v)
			}
		}
		for ; j < len(b); j++ {
			if v := b[j].Value * (1 + theta); v > 0 {
				dstIDs = append(dstIDs, b[j].Consumer)
				dstVals = append(dstVals, v)
			}
		}
		return dstIDs, dstVals
	}
	// k ≥ 3: tournament merge over the items' postings lists via a binary
	// min-heap keyed by each cursor's head consumer, O(total · log k)
	// instead of the O(total · k) of a linear min-scan.
	h := make([]vecCursor, 0, len(items))
	for _, i := range items {
		if len(w.postings[i]) > 0 {
			h = append(h, vecCursor{list: w.postings[i]})
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDownCursor(h, i)
	}
	for len(h) > 0 {
		u := h[0].list[h[0].pos].Consumer
		var sum float64
		for len(h) > 0 && h[0].list[h[0].pos].Consumer == u {
			sum += h[0].list[h[0].pos].Value
			h[0].pos++
			if h[0].pos == len(h[0].list) {
				h[0] = h[len(h)-1]
				h = h[:len(h)-1]
			}
			if len(h) > 1 {
				siftDownCursor(h, 0)
			}
		}
		if v := sum * (1 + theta); v > 0 {
			dstIDs = append(dstIDs, u)
			dstVals = append(dstVals, v)
		}
	}
	return dstIDs, dstVals
}

// vecCursor walks one posting list during the heap merge of BundleVector.
type vecCursor struct {
	list []Entry
	pos  int
}

// siftDownCursor restores the min-heap property (by head consumer id) for
// the subtree rooted at i.
func siftDownCursor(h []vecCursor, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		min := l
		if r := l + 1; r < len(h) && h[r].list[h[r].pos].Consumer < h[l].list[h[l].pos].Consumer {
			min = r
		}
		if h[i].list[h[i].pos].Consumer <= h[min].list[h[min].pos].Consumer {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// UnionVectors merges two ascending, aligned (ids, vals) consumer vectors
// into their union in O(|a|+|b|), scaling each side's values: a consumer on
// both sides gets sa·aVal + sb·bVal, a one-sided consumer sa·aVal (or
// sb·bVal). The dst slices are reused if they have capacity.
//
// This is the incremental merge-evaluation fast path: when two bundles with
// cached interested-consumer vectors merge, the merged bundle's Eq. 1 vector
// is a scaled union of the parents' vectors. A parent whose cached vector
// already includes the θ adjustment passes scale 1; a singleton parent
// (whose vector is raw, θ never applying to one item) passes 1+θ, so the
// result equals BundleVector over the united item set.
func UnionVectors(aIDs []int, aVals []float64, sa float64, bIDs []int, bVals []float64, sb float64, dstIDs []int, dstVals []float64) ([]int, []float64) {
	dstIDs = dstIDs[:0]
	dstVals = dstVals[:0]
	i, j := 0, 0
	for i < len(aIDs) && j < len(bIDs) {
		switch {
		case aIDs[i] < bIDs[j]:
			dstIDs = append(dstIDs, aIDs[i])
			dstVals = append(dstVals, sa*aVals[i])
			i++
		case aIDs[i] > bIDs[j]:
			dstIDs = append(dstIDs, bIDs[j])
			dstVals = append(dstVals, sb*bVals[j])
			j++
		default:
			dstIDs = append(dstIDs, aIDs[i])
			if sa == sb {
				// Same scale on both sides (e.g. θ = 0, or two singleton
				// parents): factor it out so the rounding matches the
				// sum-then-scale of BundleVector as closely as possible.
				dstVals = append(dstVals, sa*(aVals[i]+bVals[j]))
			} else {
				dstVals = append(dstVals, sa*aVals[i]+sb*bVals[j])
			}
			i++
			j++
		}
	}
	for ; i < len(aIDs); i++ {
		dstIDs = append(dstIDs, aIDs[i])
		dstVals = append(dstVals, sa*aVals[i])
	}
	for ; j < len(bIDs); j++ {
		dstIDs = append(dstIDs, bIDs[j])
		dstVals = append(dstVals, sb*bVals[j])
	}
	return dstIDs, dstVals
}

// CommonInterest reports whether any consumer has non-zero WTP for both
// items; the matching algorithm's first-iteration pruning rule (Sec. 5.3.1)
// only considers pairs with a common interested consumer.
func (w *Matrix) CommonInterest(i, j int) bool {
	a, b := w.postings[i], w.postings[j]
	ai, bi := 0, 0
	for ai < len(a) && bi < len(b) {
		switch {
		case a[ai].Consumer == b[bi].Consumer:
			return true
		case a[ai].Consumer < b[bi].Consumer:
			ai++
		default:
			bi++
		}
	}
	return false
}

// Rating is one (consumer, item, stars) observation plus the item's list
// price, the inputs to the ratings→WTP conversion of Sec. 6.1.1.
type Rating struct {
	Consumer int
	Item     int
	Stars    int // 1..MaxRating
}

// FromRatings builds a WTP matrix from ratings and per-item list prices
// using the paper's linear conversion: WTP = (stars / MaxRating) · λ · price.
func FromRatings(consumers, items int, ratings []Rating, prices []float64, lambda float64) (*Matrix, error) {
	if lambda < 1 {
		return nil, fmt.Errorf("wtp: conversion factor λ=%g must be ≥ 1", lambda)
	}
	if len(prices) != items {
		return nil, fmt.Errorf("wtp: %d prices for %d items", len(prices), items)
	}
	w, err := New(consumers, items)
	if err != nil {
		return nil, err
	}
	for _, r := range ratings {
		if r.Stars < 1 || r.Stars > MaxRating {
			return nil, fmt.Errorf("wtp: rating %d outside 1..%d", r.Stars, MaxRating)
		}
		if r.Item < 0 || r.Item >= items || r.Consumer < 0 || r.Consumer >= consumers {
			return nil, fmt.Errorf("wtp: rating refers to (%d,%d) outside %d×%d", r.Consumer, r.Item, consumers, items)
		}
		if prices[r.Item] < 0 {
			return nil, errors.New("wtp: negative list price")
		}
		v := float64(r.Stars) / MaxRating * lambda * prices[r.Item]
		if err := w.Set(r.Consumer, r.Item, v); err != nil {
			return nil, err
		}
	}
	return w, nil
}
