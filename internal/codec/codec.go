// Package codec implements the bundling system's self-describing binary
// columnar wire and disk format — one envelope (magic, format version, payload
// kind) over a small set of column primitives: varint/zigzag-delta-encoded
// sorted integer columns, length-prefixed raw little-endian float64 columns
// (bit-exact round-trip, no decimal formatting), and an optional interned
// string table for corpus/span keys. Three hot payloads ride on it:
//
//   - MatrixData — the corpus upload body and the "bin" input of
//     bundling.DecodeMatrix (a columnar MatrixDoc);
//   - wtp.SpanDoc — the coordinator→worker span feed of the cluster
//     subsystem (negotiated via Content-Type; workers accept JSON too);
//   - Record — the persisted corpus snapshot of the serving store
//     (written binary, read alongside legacy JSON records).
//
// Sorted ID columns delta-encode to mostly single-byte varints and float
// columns ship as raw 8-byte IEEE 754, so a paper-scale corpus or span feed
// lands well under half its JSON size while decoding to bit-identical
// values — results computed from a binary-fed worker or a binary record are
// equal to the JSON path's, not merely close.
//
// Every decoder is hostile-input safe: truncated buffers, corrupt varints and
// absurd length prefixes return errors — never a panic, and never an
// allocation that is not proportional to the input actually presented
// (length prefixes are validated against the bytes remaining before any
// column is allocated). The fuzz tests in this package pin that contract.
package codec

import (
	"encoding/binary"
	"fmt"
	"math"
)

// ContentType is the MIME type of every codec envelope on HTTP surfaces
// (corpus uploads, span feeds). The envelope's kind byte self-describes the
// payload, so one media type covers all of them.
const ContentType = "application/x-bundling-codec"

// Envelope layout: magic (2 bytes), format version, payload kind. The first
// byte is deliberately outside ASCII and invalid as UTF-8 text, so a codec
// buffer can never be mistaken for JSON (or vice versa).
const (
	magic0  = 0xBC
	magic1  = 'X'
	version = 1
	hdrLen  = 4
)

// Payload kinds.
const (
	kindMatrix = 0x01
	kindSpan   = 0x02
	kindRecord = 0x03
	kindAssign = 0x04
	kindDelta  = 0x05
)

// appendHeader starts an envelope of the given kind.
func appendHeader(dst []byte, kind byte) []byte {
	return append(dst, magic0, magic1, version, kind)
}

// reader is a bounds-checked cursor over one envelope. All primitives return
// an error instead of panicking on truncated or corrupt input.
type reader struct {
	buf []byte
	off int
}

// header validates the envelope and positions the reader on the payload.
func (r *reader) header(wantKind byte) error {
	if len(r.buf) < hdrLen {
		return fmt.Errorf("codec: buffer of %d bytes is shorter than the envelope", len(r.buf))
	}
	if r.buf[0] != magic0 || r.buf[1] != magic1 {
		return fmt.Errorf("codec: bad magic %#02x%02x", r.buf[0], r.buf[1])
	}
	if r.buf[2] != version {
		return fmt.Errorf("codec: unsupported format version %d (have %d)", r.buf[2], version)
	}
	if r.buf[3] != wantKind {
		return fmt.Errorf("codec: payload kind %#02x, want %#02x", r.buf[3], wantKind)
	}
	r.off = hdrLen
	return nil
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

// done reports trailing garbage after a fully decoded payload.
func (r *reader) done() error {
	if r.off != len(r.buf) {
		return fmt.Errorf("codec: %d trailing bytes after payload", len(r.buf)-r.off)
	}
	return nil
}

// uvarint reads one unsigned varint.
func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("codec: truncated or overlong varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// svarint reads one zigzag-encoded signed varint.
func (r *reader) svarint() (int64, error) {
	u, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

// length reads a count prefix and validates it against the bytes remaining:
// the count's elements occupy at least minBytes each, so a hostile prefix can
// never force an allocation larger than a small multiple of the input.
func (r *reader) length(minBytes int) (int, error) {
	u, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if u > uint64(r.remaining()/minBytes) {
		return 0, fmt.Errorf("codec: length prefix %d exceeds the %d bytes remaining", u, r.remaining())
	}
	return int(u), nil
}

// take consumes n raw bytes.
func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || n > r.remaining() {
		return nil, fmt.Errorf("codec: %d bytes requested with %d remaining", n, r.remaining())
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

// appendFixed64 appends one little-endian uint64 (version nonces carry their
// high bit set, so a varint would balloon them to 10 bytes).
func appendFixed64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// fixed64 reads one little-endian uint64 (span version nonces carry their
// high bit set, so a varint would balloon them to 10 bytes).
func (r *reader) fixed64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// appendSvarint appends a zigzag-encoded signed varint.
func appendSvarint(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, uint64(v<<1)^uint64(v>>63))
}

// appendDim appends a non-negative dimension (counts, ids, generations).
func appendDim(dst []byte, v int) []byte {
	return binary.AppendUvarint(dst, uint64(v))
}

// dim reads a non-negative dimension that must fit the host int.
func (r *reader) dim() (int, error) {
	u, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if u > math.MaxInt64/2 {
		return 0, fmt.Errorf("codec: dimension %d out of range", u)
	}
	return int(u), nil
}

// appendInt32Column appends a sorted-friendly int32 column: a count prefix
// followed by zigzag deltas between consecutive values. Sorted runs (posting
// ids, monotonic offsets) collapse to mostly single-byte deltas; the zigzag
// keeps resets at stripe boundaries encodable.
func appendInt32Column(dst []byte, vals []int32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	prev := int64(0)
	for _, v := range vals {
		dst = appendSvarint(dst, int64(v)-prev)
		prev = int64(v)
	}
	return dst
}

// int32Column reads a delta-encoded int32 column.
func (r *reader) int32Column() ([]int32, error) {
	n, err := r.length(1)
	if err != nil {
		return nil, err
	}
	out := make([]int32, n)
	prev := int64(0)
	for i := range out {
		d, err := r.svarint()
		if err != nil {
			return nil, err
		}
		prev += d
		if prev < math.MinInt32 || prev > math.MaxInt32 {
			return nil, fmt.Errorf("codec: column value %d overflows int32", prev)
		}
		out[i] = int32(prev)
	}
	return out, nil
}

// Float column modes. Either way every value travels as its exact IEEE 754
// bits — no decimal detour — which is what keeps binary-fed results
// identical, not just close.
const (
	floatColRaw  = 0x00 // count prefix + raw 8-byte little-endian values
	floatColDict = 0x01 // distinct values once + varint refs per value
)

// uvarintLen returns the encoded size of v as an unsigned varint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// appendFloatColumn appends a float64 column, picking the smaller of two
// exact encodings: raw 8-byte little-endian values, or dictionary form —
// each distinct bit pattern shipped once plus a varint ref per value. WTP
// columns are products of a few star levels and per-item prices, so they
// repeat heavily and the dictionary typically cuts the column to a quarter;
// a column of mostly-distinct values (or NaN payload noise) stays raw.
func appendFloatColumn(dst []byte, vals []float64) []byte {
	idx := make(map[uint64]int, 64)
	refs := make([]uint64, len(vals))
	refBytes := 0
	for k, v := range vals {
		b := math.Float64bits(v)
		i, ok := idx[b]
		if !ok {
			i = len(idx)
			idx[b] = i
		}
		refs[k] = uint64(i)
		refBytes += uvarintLen(uint64(i))
	}
	if 8*len(idx)+refBytes < 8*len(vals) {
		dict := make([]uint64, len(idx))
		for bits, i := range idx {
			dict[i] = bits
		}
		dst = append(dst, floatColDict)
		dst = binary.AppendUvarint(dst, uint64(len(dict)))
		for _, bits := range dict {
			dst = binary.LittleEndian.AppendUint64(dst, bits)
		}
		dst = binary.AppendUvarint(dst, uint64(len(refs)))
		for _, ref := range refs {
			dst = binary.AppendUvarint(dst, ref)
		}
		return dst
	}
	dst = append(dst, floatColRaw)
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// floatColumn reads a float64 column in either mode.
func (r *reader) floatColumn() ([]float64, error) {
	mode, err := r.take(1)
	if err != nil {
		return nil, err
	}
	switch mode[0] {
	case floatColRaw:
		n, err := r.length(8)
		if err != nil {
			return nil, err
		}
		b, err := r.take(n * 8)
		if err != nil {
			return nil, err
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
		}
		return out, nil
	case floatColDict:
		dn, err := r.length(8)
		if err != nil {
			return nil, err
		}
		b, err := r.take(dn * 8)
		if err != nil {
			return nil, err
		}
		dict := make([]float64, dn)
		for i := range dict {
			dict[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
		}
		n, err := r.length(1)
		if err != nil {
			return nil, err
		}
		out := make([]float64, n)
		for i := range out {
			u, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if u >= uint64(dn) {
				return nil, fmt.Errorf("codec: float ref %d outside dictionary of %d", u, dn)
			}
			out[i] = dict[u]
		}
		return out, nil
	default:
		return nil, fmt.Errorf("codec: unknown float column mode %#02x", mode[0])
	}
}

// appendStringTable appends an interned string table: count prefix, then each
// string length-prefixed. Payloads reference entries by index, so a corpus
// key shipped in both an envelope and its metadata costs its bytes once.
func appendStringTable(dst []byte, table []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(table)))
	for _, s := range table {
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	return dst
}

// stringTable reads an interned string table.
func (r *reader) stringTable() ([]string, error) {
	n, err := r.length(1)
	if err != nil {
		return nil, err
	}
	out := make([]string, n)
	for i := range out {
		ln, err := r.length(1)
		if err != nil {
			return nil, err
		}
		b, err := r.take(ln)
		if err != nil {
			return nil, err
		}
		out[i] = string(b)
	}
	return out, nil
}

// stringRef reads an index into table.
func (r *reader) stringRef(table []string) (string, error) {
	u, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if u >= uint64(len(table)) {
		return "", fmt.Errorf("codec: string ref %d outside table of %d", u, len(table))
	}
	return table[u], nil
}
