package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bundling"
)

// batcher coalesces concurrent evaluate requests against one session into
// batched passes. Requests queue while a pass is running; when it finishes,
// the drainer takes everything that accumulated as the next batch — classic
// group commit, so batch size adapts to load with no artificial gather
// delay. Within a batch, requests with identical canonical keys execute
// once and share the result, and distinct requests are priced concurrently
// by a bounded worker pool (one pooled worker context per goroutine inside
// the session's Solver).
type batcher struct {
	eval    func(ctx context.Context, offers [][]int) (*bundling.Configuration, error)
	workers int // concurrent evaluations per pass
	// window is the gather delay before a drain takes its batch: 0 drains
	// immediately (pure group commit), a positive window holds the drain
	// back so more concurrent requests join the pass — larger batches and
	// more coalescing at the cost of that much added latency.
	window time.Duration
	// budget bounds each batch execution (0 = none). The batch runs under
	// its own server-budget context, not any single waiter's: one
	// disconnected client must not abort an execution other requests in
	// the same batch are waiting on.
	budget time.Duration
	// onBatch, if set, observes each processed pass: how many requests it
	// drained and how many distinct evaluations they collapsed into.
	onBatch func(size, unique int)

	mu       sync.Mutex
	pending  []*evalCall
	draining bool
}

// evalCall is one queued evaluate request.
type evalCall struct {
	key    string
	offers [][]int
	done   chan evalResult
}

// evalResult is what a waiter receives.
type evalResult struct {
	cfg     *bundling.Configuration
	err     error
	batched bool // rode along on another request's execution
}

// newBatcher wires a batcher over an evaluation function. window ≤ 0 drains
// immediately; budget ≤ 0 leaves batch executions unbounded.
func newBatcher(workers int, window, budget time.Duration, eval func(context.Context, [][]int) (*bundling.Configuration, error)) *batcher {
	if workers < 1 {
		workers = 1
	}
	if window < 0 {
		window = 0
	}
	if budget < 0 {
		budget = 0
	}
	return &batcher{eval: eval, workers: workers, window: window, budget: budget}
}

// do submits an evaluate request and blocks for its result or ctx's end,
// whichever comes first — a disconnected client's handler returns instead
// of waiting out a batch nobody will read. The batch itself keeps running
// under the batcher's own budget (its result still serves the other
// waiters and the result cache); the abandoned call's result lands in its
// buffered channel and is garbage collected. key must be a canonical
// encoding of offers (identical offer sets ⇒ identical keys).
func (b *batcher) do(ctx context.Context, key string, offers [][]int) (*bundling.Configuration, bool, error) {
	call := &evalCall{key: key, offers: offers, done: make(chan evalResult, 1)}
	b.mu.Lock()
	b.pending = append(b.pending, call)
	if !b.draining {
		b.draining = true
		go b.drain()
	}
	b.mu.Unlock()
	select {
	case res := <-call.done:
		return res.cfg, res.batched, res.err
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// drain processes batches until the queue is empty, then exits; the next
// submission starts a fresh drainer. At most one drainer runs per batcher.
// With a positive gather window the drainer sleeps it off before taking
// each batch, so requests arriving within the window ride the same pass.
func (b *batcher) drain() {
	for {
		b.mu.Lock()
		if len(b.pending) == 0 {
			b.draining = false
			b.mu.Unlock()
			return
		}
		b.mu.Unlock()
		if b.window > 0 {
			time.Sleep(b.window)
		}
		b.mu.Lock()
		batch := b.pending
		b.pending = nil
		b.mu.Unlock()
		b.process(batch)
	}
}

// safeEval runs the evaluation, converting a panic into an error: the
// batch executes on the drainer's goroutine, outside net/http's per-request
// recovery, and an engine panic (e.g. the shard staleness check) must fail
// that one request, not take down every session in the daemon.
func (b *batcher) safeEval(ctx context.Context, offers [][]int) (cfg *bundling.Configuration, err error) {
	defer func() {
		if r := recover(); r != nil {
			cfg, err = nil, fmt.Errorf("evaluation panicked: %v", r)
		}
	}()
	return b.eval(ctx, offers)
}

// process executes one batch: group by key, evaluate each distinct group
// once across the worker pool, fan results out to every group member.
func (b *batcher) process(batch []*evalCall) {
	groups := make(map[string][]*evalCall, len(batch))
	var order []string // deterministic execution order: first arrival
	for _, c := range batch {
		if _, ok := groups[c.key]; !ok {
			order = append(order, c.key)
		}
		groups[c.key] = append(groups[c.key], c)
	}
	if b.onBatch != nil {
		b.onBatch(len(batch), len(order))
	}
	workers := b.workers
	if workers > len(order) {
		workers = len(order)
	}
	// The pass context is the batcher's own budget, not any waiter's: a
	// canceled waiter stops waiting in do, while the execution completes
	// for the rest of the group and the result cache.
	ctx := context.Background()
	if b.budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, b.budget)
		defer cancel()
	}
	run := func(key string) {
		calls := groups[key]
		cfg, err := b.safeEval(ctx, calls[0].offers)
		for i, c := range calls {
			c.done <- evalResult{cfg: cfg, err: err, batched: i > 0}
		}
	}
	if workers <= 1 {
		for _, key := range order {
			run(key)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(order) {
					return
				}
				run(order[i])
			}
		}()
	}
	wg.Wait()
}
