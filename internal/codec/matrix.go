package codec

import (
	"fmt"
)

// MatrixData is the codec's view of a willingness-to-pay matrix document:
// explicit dimensions plus sparse [consumer, item, wtp] triples. It is
// field-identical to bundling.MatrixDoc — the root package converts between
// the two with a plain struct conversion — because this package sits below
// bundling in the import graph and cannot name its types.
type MatrixData struct {
	Consumers int
	Items     int
	Entries   [][3]float64
}

// EncodeMatrix renders a matrix document as one codec envelope. The consumer
// and item id columns delta-encode (canonical documents are item-major with
// ascending consumers, so deltas are tiny) and values ship as raw float64
// bits, preserving entry order and every bit of every value. Ids must be
// integral — the same invariant MatrixDoc.Matrix enforces — or encoding
// fails rather than silently rounding.
func EncodeMatrix(m *MatrixData) ([]byte, error) {
	dst := appendHeader(make([]byte, 0, hdrLen+16+11*len(m.Entries)), kindMatrix)
	return appendMatrixPayload(dst, m)
}

// appendMatrixPayload appends the headerless matrix columns (shared with the
// corpus record, which embeds a matrix after its metadata).
func appendMatrixPayload(dst []byte, m *MatrixData) ([]byte, error) {
	dst = appendDim(dst, m.Consumers)
	dst = appendDim(dst, m.Items)
	dst = appendDim(dst, len(m.Entries))
	prev := int64(0)
	for k, e := range m.Entries {
		u := int64(e[0])
		if float64(u) != e[0] {
			return nil, fmt.Errorf("codec: entry %d has non-integral consumer id %g", k, e[0])
		}
		dst = appendSvarint(dst, u-prev)
		prev = u
	}
	prev = 0
	for k, e := range m.Entries {
		i := int64(e[1])
		if float64(i) != e[1] {
			return nil, fmt.Errorf("codec: entry %d has non-integral item id %g", k, e[1])
		}
		dst = appendSvarint(dst, i-prev)
		prev = i
	}
	vals := make([]float64, len(m.Entries))
	for k, e := range m.Entries {
		vals[k] = e[2]
	}
	return appendFloatColumn(dst, vals), nil
}

// DecodeMatrix parses one matrix envelope. Hostile input — truncated
// buffers, corrupt varints, absurd entry counts — returns an error without
// panicking or allocating beyond the input's own size class; semantic
// validation (ids in range, values finite) stays with MatrixDoc.Matrix,
// exactly as on the JSON path.
func DecodeMatrix(buf []byte) (*MatrixData, error) {
	r := &reader{buf: buf}
	if err := r.header(kindMatrix); err != nil {
		return nil, err
	}
	m, err := readMatrixPayload(r)
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// readMatrixPayload reads the headerless matrix columns.
func readMatrixPayload(r *reader) (*MatrixData, error) {
	consumers, err := r.dim()
	if err != nil {
		return nil, err
	}
	items, err := r.dim()
	if err != nil {
		return nil, err
	}
	// Each entry needs at least one byte per id delta plus a one-byte value
	// ref, so a hostile count cannot out-allocate its own buffer.
	n, err := r.length(3)
	if err != nil {
		return nil, err
	}
	m := &MatrixData{
		Consumers: consumers,
		Items:     items,
		Entries:   make([][3]float64, n),
	}
	for col := 0; col < 2; col++ {
		prev := int64(0)
		for k := range m.Entries {
			d, err := r.svarint()
			if err != nil {
				return nil, err
			}
			prev += d
			m.Entries[k][col] = float64(prev)
		}
	}
	vals, err := r.floatColumn()
	if err != nil {
		return nil, err
	}
	if len(vals) != n {
		return nil, fmt.Errorf("codec: value column of %d for %d entries", len(vals), n)
	}
	for k, v := range vals {
		m.Entries[k][2] = v
	}
	return m, nil
}
