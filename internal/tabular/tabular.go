// Package tabular renders aligned plain-text tables. The experiment harness
// uses it to print paper-style tables and figure series to the terminal.
package tabular

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// New returns an empty table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row. Cells beyond the header count are dropped; missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row formatting each cell with fmt.Sprint for
// convenience with mixed value types.
func (t *Table) AddRowf(cells ...interface{}) {
	s := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			s[i] = fmt.Sprintf("%.2f", v)
		default:
			s[i] = fmt.Sprint(c)
		}
	}
	t.AddRow(s...)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}
