package wtp

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultStripeSize is the default number of consumers per stripe. Stripes
// of ~1k consumers keep a stripe's columnar postings for a typical bundle
// within L1/L2 while leaving enough stripes to farm out on large corpora.
const DefaultStripeSize = 1024

// Stripe is one fixed-size consumer range of a Shard. Its postings are
// stored columnar (structure-of-arrays): one ids array and one aligned vals
// array shared by all items, with per-item segment offsets. Compared to the
// Matrix's []Entry rows this halves the bytes touched by a consumer-id scan
// and keeps a stripe's working set contiguous, so per-stripe aggregation is
// cache-local and independent of every other stripe — the unit of work a
// scheduler can hand to a worker goroutine or, eventually, another machine.
type Stripe struct {
	lo, hi int       // consumer range [lo, hi)
	offs   []int32   // per item i: segment ids[offs[i]:offs[i+1]]
	ids    []int32   // consumer ids, ascending within each item segment
	vals   []float64 // WTP values aligned with ids
}

// Bounds returns the stripe's consumer range [lo, hi).
func (st *Stripe) Bounds() (lo, hi int) { return st.lo, st.hi }

// Item returns the stripe's columnar postings segment for item i: the
// consumers of this stripe with non-zero WTP for i (ascending) and their
// values. The slices must not be modified.
func (st *Stripe) Item(i int) ([]int32, []float64) {
	a, b := st.offs[i], st.offs[i+1]
	return st.ids[a:b], st.vals[a:b]
}

// Entries returns the total number of non-zero entries in the stripe.
func (st *Stripe) Entries() int { return len(st.ids) }

// Shard is an immutable striped snapshot of a Matrix: the consumer axis cut
// into fixed-size stripes, each holding columnar per-stripe postings.
// Because stripes partition the consumers in ascending-id order, any
// per-consumer aggregate over the whole matrix is the in-order concatenation
// (or sum) of independent per-stripe aggregates; BundleVector and
// UnionVectors below reduce over stripes exactly that way.
//
// A Shard is built once (Matrix.Shard) and is safe for concurrent use. It
// snapshots the matrix at construction: mutating the matrix afterwards
// invalidates the shard, which every accessor guards against by panicking on
// a version mismatch rather than returning silently stale data.
type Shard struct {
	w       *Matrix
	version uint64
	size    int
	stripes []Stripe
}

// Shard builds a striped columnar snapshot of the matrix. stripeSize is the
// number of consumers per stripe; 0 or negative selects DefaultStripeSize.
func (w *Matrix) Shard(stripeSize int) *Shard {
	if stripeSize <= 0 {
		stripeSize = DefaultStripeSize
	}
	numStripes := (w.m + stripeSize - 1) / stripeSize
	if numStripes == 0 {
		numStripes = 1 // keep a degenerate 0-consumer matrix iterable
	}
	sh := &Shard{w: w, version: w.version, size: stripeSize, stripes: make([]Stripe, numStripes)}
	// Per-item cursors advance monotonically across stripes, so the whole
	// build is one pass over every posting list.
	cursor := make([]int, w.n)
	for s := range sh.stripes {
		lo := s * stripeSize
		hi := lo + stripeSize
		if hi > w.m {
			hi = w.m
		}
		st := &sh.stripes[s]
		st.lo, st.hi = lo, hi
		st.offs = make([]int32, w.n+1)
		var total int
		for i := 0; i < w.n; i++ {
			st.offs[i] = int32(total)
			p := w.postings[i]
			c := cursor[i]
			for c < len(p) && p[c].Consumer < hi {
				c++
			}
			total += c - cursor[i]
			cursor[i] = c
		}
		st.offs[w.n] = int32(total)
		st.ids = make([]int32, total)
		st.vals = make([]float64, total)
		// Second pass fills the columnar arrays; walk backwards through the
		// advanced cursors via the recorded offsets.
		for i := 0; i < w.n; i++ {
			seg := w.postings[i][cursor[i]-int(st.offs[i+1]-st.offs[i]) : cursor[i]]
			base := int(st.offs[i])
			for k, e := range seg {
				st.ids[base+k] = int32(e.Consumer)
				st.vals[base+k] = e.Value
			}
		}
	}
	return sh
}

// Matrix returns the matrix the shard was built from.
func (sh *Shard) Matrix() *Matrix { return sh.w }

// Version returns the matrix version the shard snapshotted. Caches layered
// above a shard (e.g. a serving result cache) include it in their keys so
// entries from a replaced corpus can never be served for its successor.
func (sh *Shard) Version() uint64 { return sh.version }

// StripeSize returns the configured consumers-per-stripe.
func (sh *Shard) StripeSize() int { return sh.size }

// Stripes returns the number of stripes.
func (sh *Shard) Stripes() int { return len(sh.stripes) }

// Stripe returns stripe s.
func (sh *Shard) Stripe(s int) *Stripe {
	sh.check()
	return &sh.stripes[s]
}

// check panics when the underlying matrix has been mutated since the shard
// was built; a stale shard would silently misprice everything downstream.
func (sh *Shard) check() {
	if sh.version != sh.w.version {
		panic(fmt.Sprintf("wtp: shard is stale: matrix mutated (version %d → %d); rebuild with Matrix.Shard", sh.version, sh.w.version))
	}
}

// BundleVector is the striped reduction of Matrix.BundleVector: for every
// consumer with non-zero WTP for at least one item of the bundle, the
// consumer's Eq. 1 bundle WTP, as parallel ascending (ids, vals) slices.
// Each stripe is aggregated independently from its columnar segments and the
// per-stripe results concatenate in consumer order. The dst slices are
// reused if they have capacity.
func (sh *Shard) BundleVector(items []int, theta float64, dstIDs []int, dstVals []float64) ([]int, []float64) {
	sh.check()
	dstIDs = dstIDs[:0]
	dstVals = dstVals[:0]
	if len(items) == 0 {
		return dstIDs, dstVals
	}
	scale := 1 + theta
	for s := range sh.stripes {
		dstIDs, dstVals = sh.stripes[s].appendBundleVector(items, scale, dstIDs, dstVals)
	}
	return dstIDs, dstVals
}

// appendBundleVector aggregates one stripe's contribution to a bundle
// vector, appending to dst.
func (st *Stripe) appendBundleVector(items []int, scale float64, dstIDs []int, dstVals []float64) ([]int, []float64) {
	switch len(items) {
	case 1:
		ids, vals := st.Item(items[0])
		for k, id := range ids {
			if v := vals[k] * scale; v > 0 {
				dstIDs = append(dstIDs, int(id))
				dstVals = append(dstVals, v)
			}
		}
		return dstIDs, dstVals
	case 2:
		aIDs, aVals := st.Item(items[0])
		bIDs, bVals := st.Item(items[1])
		i, j := 0, 0
		for i < len(aIDs) && j < len(bIDs) {
			var u int32
			var sum float64
			switch {
			case aIDs[i] < bIDs[j]:
				u, sum = aIDs[i], aVals[i]
				i++
			case aIDs[i] > bIDs[j]:
				u, sum = bIDs[j], bVals[j]
				j++
			default:
				u, sum = aIDs[i], aVals[i]+bVals[j]
				i++
				j++
			}
			if v := sum * scale; v > 0 {
				dstIDs = append(dstIDs, int(u))
				dstVals = append(dstVals, v)
			}
		}
		for ; i < len(aIDs); i++ {
			if v := aVals[i] * scale; v > 0 {
				dstIDs = append(dstIDs, int(aIDs[i]))
				dstVals = append(dstVals, v)
			}
		}
		for ; j < len(bIDs); j++ {
			if v := bVals[j] * scale; v > 0 {
				dstIDs = append(dstIDs, int(bIDs[j]))
				dstVals = append(dstVals, v)
			}
		}
		return dstIDs, dstVals
	}
	// k ≥ 3: heap merge over the stripe's columnar segments, the same
	// tournament as Matrix.BundleVector but confined to one stripe's
	// cache-resident arrays.
	h := make([]stripeCursor, 0, len(items))
	for _, i := range items {
		ids, vals := st.Item(i)
		if len(ids) > 0 {
			h = append(h, stripeCursor{ids: ids, vals: vals})
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDownStripe(h, i)
	}
	for len(h) > 0 {
		u := h[0].ids[h[0].pos]
		var sum float64
		for len(h) > 0 && h[0].ids[h[0].pos] == u {
			sum += h[0].vals[h[0].pos]
			h[0].pos++
			if h[0].pos == len(h[0].ids) {
				h[0] = h[len(h)-1]
				h = h[:len(h)-1]
			}
			if len(h) > 1 {
				siftDownStripe(h, 0)
			}
		}
		if v := sum * scale; v > 0 {
			dstIDs = append(dstIDs, int(u))
			dstVals = append(dstVals, v)
		}
	}
	return dstIDs, dstVals
}

// stripeCursor walks one columnar segment during the per-stripe heap merge.
type stripeCursor struct {
	ids  []int32
	vals []float64
	pos  int
}

// siftDownStripe restores the min-heap property (by head consumer id) for
// the subtree rooted at i.
func siftDownStripe(h []stripeCursor, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		min := l
		if r := l + 1; r < len(h) && h[r].ids[h[r].pos] < h[l].ids[h[l].pos] {
			min = r
		}
		if h[i].ids[h[i].pos] <= h[min].ids[h[min].pos] {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// UnionVectors is the striped reduction of the package-level UnionVectors:
// the two cached consumer vectors are cut at stripe boundaries and each
// stripe's span merged independently, concatenating in consumer order. The
// element-wise arithmetic is identical to the flat merge, so results agree
// exactly; the stripe spans are what a distributed reducer would ship to the
// worker owning each stripe.
func (sh *Shard) UnionVectors(aIDs []int, aVals []float64, sa float64, bIDs []int, bVals []float64, sb float64, dstIDs []int, dstVals []float64) ([]int, []float64) {
	sh.check()
	dstIDs = dstIDs[:0]
	dstVals = dstVals[:0]
	i, j := 0, 0
	for s := range sh.stripes {
		hi := sh.stripes[s].hi
		if i >= len(aIDs) && j >= len(bIDs) {
			break
		}
		for i < len(aIDs) && j < len(bIDs) && aIDs[i] < hi && bIDs[j] < hi {
			switch {
			case aIDs[i] < bIDs[j]:
				dstIDs = append(dstIDs, aIDs[i])
				dstVals = append(dstVals, sa*aVals[i])
				i++
			case aIDs[i] > bIDs[j]:
				dstIDs = append(dstIDs, bIDs[j])
				dstVals = append(dstVals, sb*bVals[j])
				j++
			default:
				dstIDs = append(dstIDs, aIDs[i])
				if sa == sb {
					// Match the flat merge's factored rounding (see
					// UnionVectors).
					dstVals = append(dstVals, sa*(aVals[i]+bVals[j]))
				} else {
					dstVals = append(dstVals, sa*aVals[i]+sb*bVals[j])
				}
				i++
				j++
			}
		}
		for i < len(aIDs) && aIDs[i] < hi && (j >= len(bIDs) || bIDs[j] >= hi) {
			dstIDs = append(dstIDs, aIDs[i])
			dstVals = append(dstVals, sa*aVals[i])
			i++
		}
		for j < len(bIDs) && bIDs[j] < hi && (i >= len(aIDs) || aIDs[i] >= hi) {
			dstIDs = append(dstIDs, bIDs[j])
			dstVals = append(dstVals, sb*bVals[j])
			j++
		}
	}
	return dstIDs, dstVals
}

// ForEachStripe runs fn(s, stripe) for every stripe, farming the stripes to
// up to workers goroutines (workers ≤ 1 runs inline). Stripes are disjoint
// consumer ranges, so fn invocations may write to per-consumer structures
// without synchronization as long as each write stays inside the stripe's
// Bounds. This is the single-machine form of the shard-level parallelism
// the stripe layout exists for.
func (sh *Shard) ForEachStripe(workers int, fn func(s int, st *Stripe)) {
	sh.check()
	n := len(sh.stripes)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for s := 0; s < n; s++ {
			fn(s, &sh.stripes[s])
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := int(cursor.Add(1)) - 1
				if s >= n {
					return
				}
				fn(s, &sh.stripes[s])
			}
		}()
	}
	wg.Wait()
}
