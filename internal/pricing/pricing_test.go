package pricing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bundling/internal/adoption"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(adoption.Step(), 0); err == nil {
		t.Error("expected error for T = 0")
	}
	if _, err := New(adoption.Step(), -5); err == nil {
		t.Error("expected error for negative T")
	}
	p := Default()
	if p.Levels() != DefaultLevels {
		t.Errorf("Levels() = %d, want %d", p.Levels(), DefaultLevels)
	}
}

func TestPriceOptimalEmpty(t *testing.T) {
	p := Default()
	if q := p.PriceOptimal(nil); q.Revenue != 0 || q.Price != 0 {
		t.Errorf("empty vector should quote zero, got %+v", q)
	}
	if q := p.PriceOptimal([]float64{0, 0}); q.Revenue != 0 {
		t.Errorf("all-zero vector should quote zero, got %+v", q)
	}
}

// TestPaperComponentsExample reproduces the paper's Table 1 component
// pricing: item A with WTPs {12, 8, 5} prices at $8 for revenue $16;
// item B with WTPs {4, 2, 11} prices at $11 for revenue $11.
func TestPaperComponentsExample(t *testing.T) {
	p, err := New(adoption.Step(), 1200) // fine grid hits the exact optima
	if err != nil {
		t.Fatal(err)
	}
	qa := p.PriceOptimal([]float64{12, 8, 5})
	if math.Abs(qa.Price-8) > 0.02 || math.Abs(qa.Revenue-16) > 0.05 {
		t.Errorf("item A quote = %+v, want price 8 revenue 16", qa)
	}
	if qa.Adopters != 2 {
		t.Errorf("item A adopters = %g, want 2", qa.Adopters)
	}
	qb := p.PriceOptimal([]float64{4, 2, 11})
	if math.Abs(qb.Price-11) > 0.02 || math.Abs(qb.Revenue-11) > 0.05 {
		t.Errorf("item B quote = %+v, want price 11 revenue 11", qb)
	}
	// Pure bundle {A,B} with θ=-0.05: WTPs {15.2, 9.5, 15.2} → price 15.2,
	// revenue 30.4.
	qp := p.PriceOptimal([]float64{15.2, 9.5, 15.2})
	if math.Abs(qp.Price-15.2) > 0.02 || math.Abs(qp.Revenue-30.4) > 0.05 {
		t.Errorf("bundle quote = %+v, want price 15.2 revenue 30.4", qp)
	}
}

// bruteForceStep scans candidate prices exactly at the WTP values, which
// is where the optimum of the step demand curve must lie.
func bruteForceStep(wtps []float64) Quote {
	best := Quote{}
	for _, p := range wtps {
		if p <= 0 {
			continue
		}
		n := 0
		for _, w := range wtps {
			if w >= p {
				n++
			}
		}
		if rev := p * float64(n); rev > best.Revenue {
			best = Quote{Price: p, Revenue: rev, Adopters: float64(n)}
		}
	}
	return best
}

// TestQuickStepNearBruteForce: the T-level grid reaches within the grid
// resolution of the exact step optimum.
func TestQuickStepNearBruteForce(t *testing.T) {
	pr, err := New(adoption.Step(), 2000)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%30) + 1
		wtps := make([]float64, n)
		for i := range wtps {
			wtps[i] = rng.Float64() * 50
		}
		got := pr.PriceOptimal(wtps)
		want := bruteForceStep(wtps)
		// Grid resolution: max/T per level; revenue loss ≤ adopters·step.
		tol := want.Adopters*maxOf(wtps)/2000 + 1e-9
		return got.Revenue >= want.Revenue-tol && got.Revenue <= want.Revenue+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// TestGridEqualityAdopts: a consumer whose WTP equals a grid price adopts.
func TestGridEqualityAdopts(t *testing.T) {
	pr, _ := New(adoption.Step(), 100)
	// All consumers at exactly 10; optimum must be price 10 with everyone.
	q := pr.PriceOptimal([]float64{10, 10, 10, 10})
	if math.Abs(q.Price-10) > 1e-9 || q.Adopters != 4 {
		t.Errorf("quote = %+v, want price 10 with 4 adopters", q)
	}
}

func TestSigmoidRevenueBelowStep(t *testing.T) {
	wtps := []float64{10, 12, 8, 20, 5}
	step := Default().PriceOptimal(wtps)
	model, _ := adoption.New(0.5, 1, adoption.DefaultEpsilon)
	soft, _ := New(model, DefaultLevels)
	q := soft.PriceOptimal(wtps)
	// Uncertainty forces lower expected revenue than the certain optimum
	// (paper Fig. 3 trend).
	if q.Revenue >= step.Revenue {
		t.Errorf("sigmoid revenue %g should be below step revenue %g", q.Revenue, step.Revenue)
	}
}

func TestSigmoidExactVsBucketed(t *testing.T) {
	model, _ := adoption.New(2, 1, adoption.DefaultEpsilon)
	rng := rand.New(rand.NewSource(3))
	wtps := make([]float64, 500)
	for i := range wtps {
		wtps[i] = rng.Float64() * 30
	}
	bucketed, _ := New(model, DefaultLevels)
	exact, _ := New(model, DefaultLevels)
	exact.SetExact(true)
	qb := bucketed.PriceOptimal(wtps)
	qe := exact.PriceOptimal(wtps)
	if math.Abs(qb.Revenue-qe.Revenue)/qe.Revenue > 0.02 {
		t.Errorf("bucketed revenue %g deviates >2%% from exact %g", qb.Revenue, qe.Revenue)
	}
}

func TestAlphaScalesPrices(t *testing.T) {
	biased, _ := adoption.New(adoption.DefaultGamma, 1.25, adoption.DefaultEpsilon)
	pr, _ := New(biased, 400)
	q := pr.PriceOptimal([]float64{10, 10})
	// With α = 1.25 every consumer acts as if WTP were 12.5.
	if math.Abs(q.Price-12.5) > 0.05 {
		t.Errorf("price = %g, want ≈ 12.5 under α=1.25", q.Price)
	}
}

func TestSampleRevenueDeterministic(t *testing.T) {
	pr := Default()
	rng := rand.New(rand.NewSource(1))
	got := pr.SampleRevenue(10, []float64{12, 9, 10}, rng)
	if got != 20 {
		t.Errorf("sampled revenue = %g, want 20 (two adopters at 10)", got)
	}
}

// --- Mixed offers -------------------------------------------------------

// TestPaperMixedUpgradeExample reproduces Sec. 4.2's u1 walk-through:
// wA=12, wB=4, wAB=15.2. At pA=8, pB=8, pAB=15.2 u1 keeps A alone; at
// pA=12, pB=4, pAB=15.2 u1 takes the bundle.
func TestPaperMixedUpgradeExample(t *testing.T) {
	pr := Default()
	// Scenario 1: current purchase = A at 8 (surplus 4).
	pay, _, switched := pr.ResolveSwitch(15.2, 8, 4, 15.2)
	if switched || pay != 8 {
		t.Errorf("scenario 1: pay=%g switched=%v, want keep A at 8", pay, switched)
	}
	// Scenario 2: current purchases = A at 12 and B at 4 (surplus 0 each).
	pay, _, switched = pr.ResolveSwitch(15.2, 16, 0, 15.2)
	if switched {
		t.Errorf("bundle at 15.2 vs current pay 16: keeping pays more, got switch")
	}
	// Scenario 2 with only A at 12 affordable (surplus 0): bundle ties on
	// surplus and pays more → switch.
	pay, _, switched = pr.ResolveSwitch(15.2, 12, 0, 15.2)
	if !switched || math.Abs(pay-15.2) > 1e-9 {
		t.Errorf("scenario 2: pay=%g switched=%v, want bundle at 15.2", pay, switched)
	}
}

func TestPriceMixedFindsUpliftingPrice(t *testing.T) {
	pr := Default()
	// Two consumers: one buys a component (pay 8, surplus 2), one buys
	// nothing but has bundle WTP 11. Window (8, 14). A bundle price ≈ 11
	// captures the second consumer without tempting the first.
	off := MixedOffer{
		CurPay:     []float64{8, 0},
		CurSurplus: []float64{2, 0},
		WB:         []float64{10, 11},
		Lo:         8,
		Hi:         14,
	}
	q := pr.PriceMixed(off)
	if !q.Feasible {
		t.Fatalf("expected feasible mixed quote, got %+v", q)
	}
	if q.Baseline != 8 {
		t.Errorf("baseline = %g, want 8", q.Baseline)
	}
	if q.Revenue <= 8+10.8 || q.Revenue > 8+11 {
		t.Errorf("revenue = %g, want ≈ 19 (component 8 + bundle ≈ 11)", q.Revenue)
	}
	if q.Adopters < 0.99 || q.Adopters > 1.01 {
		t.Errorf("adopters = %g, want 1", q.Adopters)
	}
}

func TestPriceMixedInfeasibleWindow(t *testing.T) {
	pr := Default()
	off := MixedOffer{
		CurPay:     []float64{5},
		CurSurplus: []float64{0},
		WB:         []float64{100},
		Lo:         10,
		Hi:         10, // empty window
	}
	q := pr.PriceMixed(off)
	if q.Feasible {
		t.Errorf("empty window must be infeasible: %+v", q)
	}
	if q.Revenue != q.Baseline {
		t.Errorf("infeasible quote should carry baseline revenue")
	}
}

func TestPriceMixedNeverBelowBaseline(t *testing.T) {
	pr := Default()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(20)
		off := MixedOffer{
			CurPay:     make([]float64, n),
			CurSurplus: make([]float64, n),
			WB:         make([]float64, n),
		}
		for j := 0; j < n; j++ {
			off.CurPay[j] = rng.Float64() * 10
			off.CurSurplus[j] = rng.Float64() * 5
			off.WB[j] = rng.Float64() * 30
		}
		off.Lo = 5 + rng.Float64()*5
		off.Hi = off.Lo + rng.Float64()*10
		q := pr.PriceMixed(off)
		if q.Revenue < q.Baseline-1e-9 {
			t.Fatalf("revenue %g below baseline %g", q.Revenue, q.Baseline)
		}
		if q.Feasible && q.Price <= off.Lo {
			t.Fatalf("chosen price %g not above Lo %g", q.Price, off.Lo)
		}
		if q.Feasible && q.Price >= off.Hi {
			t.Fatalf("chosen price %g not below Hi %g", q.Price, off.Hi)
		}
	}
}

func TestResolveSwitchMisalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for misaligned vectors")
		}
	}()
	Default().PriceMixed(MixedOffer{CurPay: []float64{1}, CurSurplus: nil, WB: []float64{1}})
}

// TestQuickMixedPaymentBounded: a consumer's expected payment never
// exceeds their bundle WTP when they switch (step model: pay ≤ wb).
func TestQuickMixedPaymentBounded(t *testing.T) {
	pr := Default()
	f := func(wbRaw, payRaw, surpRaw, pbRaw float64) bool {
		wb := math.Mod(math.Abs(wbRaw), 100)
		curPay := math.Mod(math.Abs(payRaw), 100)
		curSurp := math.Mod(math.Abs(surpRaw), 50)
		pb := math.Mod(math.Abs(pbRaw), 120) + 0.01
		pay, _, switched := pr.ResolveSwitch(wb, curPay, curSurp, pb)
		if switched {
			return pay <= wb+1e-6 && pay == pb
		}
		return pay == curPay
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
