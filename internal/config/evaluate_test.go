package config

import (
	"math"
	"testing"
)

func TestEvaluateValidation(t *testing.T) {
	w := table1Matrix(t)
	p := DefaultParams()
	cases := []struct {
		name   string
		offers [][]int
		strat  Strategy
	}{
		{"no offers", nil, Pure},
		{"empty offer", [][]int{{}}, Pure},
		{"item out of range", [][]int{{0, 5}}, Pure},
		{"duplicate item", [][]int{{0, 0}}, Pure},
		{"duplicate offer", [][]int{{0}, {0}}, Pure},
		{"overlap under pure", [][]int{{0, 1}, {1}}, Pure},
	}
	for _, c := range cases {
		p.Strategy = c.strat
		if _, err := Evaluate(w, c.offers, p); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Partial overlap (not nested) is invalid even under mixed.
	p.Strategy = Mixed
	w3 := table1Matrix(t)
	_ = w3
	wBig := smallRandomMatrix(t, 20, 3, 2)
	if _, err := Evaluate(wBig, [][]int{{0, 1}, {1, 2}}, p); err == nil {
		t.Error("partially overlapping mixed offers should be rejected")
	}
}

func TestEvaluatePureMatchesComponents(t *testing.T) {
	w := table1Matrix(t)
	p := fineParams()
	offers := [][]int{{0}, {1}}
	cfg, err := Evaluate(w, offers, p)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Components(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cfg.Revenue-comp.Revenue) > 1e-9 {
		t.Errorf("singleton evaluation %g != components %g", cfg.Revenue, comp.Revenue)
	}
}

func TestEvaluatePureBundlePaperExample(t *testing.T) {
	w := table1Matrix(t)
	p := fineParams()
	p.Theta = -0.05
	cfg, err := Evaluate(w, [][]int{{0, 1}}, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cfg.Revenue-30.4) > 0.1 {
		t.Errorf("evaluated pure bundle revenue %g, want 30.4", cfg.Revenue)
	}
}

func TestEvaluateMixedPaperExample(t *testing.T) {
	w := table1Matrix(t)
	p := fineParams()
	p.Theta = -0.05
	p.Strategy = Mixed
	// The full mixed lineup: both singles plus the bundle.
	cfg, err := Evaluate(w, [][]int{{0}, {1}, {0, 1}}, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cfg.Revenue-31.2) > 0.15 {
		t.Errorf("evaluated mixed revenue %g, want ≈ 31.2", cfg.Revenue)
	}
	if len(cfg.Bundles) != 1 || len(cfg.Components) != 2 {
		t.Errorf("structure: %d bundles, %d components, want 1 + 2",
			len(cfg.Bundles), len(cfg.Components))
	}
}

func TestEvaluatePartialCoverageAllowed(t *testing.T) {
	w := smallRandomMatrix(t, 30, 6, 3)
	p := DefaultParams()
	cfg, err := Evaluate(w, [][]int{{0}, {2}}, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Bundles) != 2 {
		t.Fatalf("bundles = %d, want 2", len(cfg.Bundles))
	}
	full, err := Components(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Revenue >= full.Revenue {
		t.Errorf("partial lineup %g should earn less than full components %g",
			cfg.Revenue, full.Revenue)
	}
}

// TestEvaluateMatchesAlgorithmOutput: feeding an algorithm's own bundles
// back through Evaluate reproduces its revenue (pure bundling).
func TestEvaluateMatchesAlgorithmOutput(t *testing.T) {
	w := smallRandomMatrix(t, 60, 10, 5)
	p := DefaultParams()
	p.Theta = 0.1
	cfg, err := MatchingBased(w, p)
	if err != nil {
		t.Fatal(err)
	}
	offers := make([][]int, len(cfg.Bundles))
	for i, b := range cfg.Bundles {
		offers[i] = b.Items
	}
	re, err := Evaluate(w, offers, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(re.Revenue-cfg.Revenue) > 1e-6 {
		t.Errorf("re-evaluated revenue %g != algorithm revenue %g", re.Revenue, cfg.Revenue)
	}
}

// TestEvaluateMixedNestedTriple prices a three-level laminar family.
func TestEvaluateMixedNestedTriple(t *testing.T) {
	w := smallRandomMatrix(t, 50, 6, 3)
	p := DefaultParams()
	p.Strategy = Mixed
	p.Theta = 0.05
	cfg, err := Evaluate(w, [][]int{{0}, {1}, {0, 1}, {2}, {0, 1, 2}}, p)
	if err != nil {
		t.Fatal(err)
	}
	// Top-level bundles: {0,1,2} plus the uncovered singletons' trees.
	found := false
	for _, b := range cfg.Bundles {
		if len(b.Items) == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected the 3-item bundle at top level: %+v", cfg.Bundles)
	}
	// Revenue never below evaluating just the singles.
	singles, err := Evaluate(w, [][]int{{0}, {1}, {2}}, p)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Revenue < singles.Revenue-1e-6 {
		t.Errorf("nested lineup %g below singles %g", cfg.Revenue, singles.Revenue)
	}
}
