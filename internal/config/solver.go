package config

import (
	"context"
	"sync"
	"sync/atomic"

	"bundling/internal/obs"
	"bundling/internal/pricing"
	"bundling/internal/wtp"
)

// Solver is a long-lived bundling session over one WTP matrix and one
// parameter set. It is built once (NewSolver) and then serves any number of
// solves — including concurrent ones — without re-indexing: the striped
// shard of the matrix, the priced singleton nodes every algorithm starts
// from, the frequent-itemset transaction lists, and the pricing scratch
// pools all persist across calls. This is what turns the one-shot Solve*
// functions into a serving engine: a what-if workload prices hundreds of
// scenarios against the same matrix, and only the first solve pays for
// indexing.
//
// All mutable per-run state lives in a per-solve engine; the Solver itself
// holds only immutable snapshots and sync.Pool-recycled scratch, so one
// Solver may be shared freely between goroutines.
type Solver struct {
	w      *wtp.Matrix
	sh     *wtp.Shard
	exec   StripeExecutor
	params Params
	pr     *pricing.Pricer
	k      int
	// protos are the priced singleton nodes (X_I of Algorithms 1 and 2),
	// including the mixed-bundling per-consumer state. Runs copy the node
	// headers and share the vectors read-only.
	protos []*node
	// ctxPool recycles per-worker evaluation contexts (merge scratch +
	// pricing scratch) across runs and across the workers within a run.
	ctxPool sync.Pool
	// txs are the consumers' interest transactions, mined lazily on the
	// first FreqItemset solve and shared by later ones.
	txsOnce sync.Once
	txs     [][]int
}

// StripeExecutor computes the striped consumer-axis reductions every
// algorithm's vector construction runs on. The local *wtp.Shard is the
// default executor (Shard.ForEachStripe being its single-machine farming
// form); a distributed solver plugs in a scatter/gather executor that ships
// each stripe span's share of the work to the remote worker owning it and
// concatenates the per-span results in stripe order. Implementations must be
// equivalent to the shard reductions (within float re-association) and safe
// for concurrent use — parallel candidate evaluation calls them from many
// goroutines.
// Both methods receive the run's request context: a distributed executor
// derives its per-RPC deadlines from it, so a canceled caller aborts the
// fan-out instead of letting retries outlive the request. Implementations
// must still return a correct result when the context is done (the local
// shard ignores it; the cluster executor falls back to its local replica) —
// run abortion is the engine's job, via its own cancellation checks.
type StripeExecutor interface {
	// BundleVector builds a bundle's interested-consumer vector (Eq. 1),
	// appending into the dst slices; see wtp.Shard.BundleVector.
	BundleVector(ctx context.Context, items []int, theta float64, dstIDs []int, dstVals []float64) ([]int, []float64)
	// UnionVectors derives a merged bundle's vector from two cached parent
	// vectors; see wtp.Shard.UnionVectors.
	UnionVectors(ctx context.Context, aIDs []int, aVals []float64, sa float64, bIDs []int, bVals []float64, sb float64, dstIDs []int, dstVals []float64) ([]int, []float64)
}

// localExec adapts the local *wtp.Shard to the StripeExecutor contract: the
// shard's reductions are in-process and synchronous, so the request context
// carries no deadline worth plumbing further down.
type localExec struct{ sh *wtp.Shard }

func (l localExec) BundleVector(_ context.Context, items []int, theta float64, dstIDs []int, dstVals []float64) ([]int, []float64) {
	return l.sh.BundleVector(items, theta, dstIDs, dstVals)
}

func (l localExec) UnionVectors(_ context.Context, aIDs []int, aVals []float64, sa float64, bIDs []int, bVals []float64, sb float64, dstIDs []int, dstVals []float64) ([]int, []float64) {
	return l.sh.UnionVectors(aIDs, aVals, sa, bIDs, bVals, sb, dstIDs, dstVals)
}

// NewSolver validates params, indexes the matrix (striped shard + priced
// singletons) and returns a session ready for concurrent solves. The matrix
// must not be mutated while the Solver is in use; the shard layer turns
// violations into a panic rather than stale results.
func NewSolver(w *wtp.Matrix, params Params) (*Solver, error) {
	return NewSolverOn(w, params, nil)
}

// NewSolverOn is NewSolver with a pluggable stripe executor: the session's
// vector construction — singleton indexing, candidate-merge unions,
// evaluate-path bundle vectors — runs on exec instead of the local shard.
// A nil exec selects the shard, making NewSolverOn(w, p, nil) identical to
// NewSolver(w, p).
func NewSolverOn(w *wtp.Matrix, params Params, exec StripeExecutor) (*Solver, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if params.UnitCosts != nil && len(params.UnitCosts) != w.Items() {
		return nil, errCostCount(len(params.UnitCosts), w.Items())
	}
	pr, err := params.pricer()
	if err != nil {
		return nil, err
	}
	s := &Solver{
		w:      w,
		sh:     w.Shard(params.StripeSize),
		exec:   exec,
		params: params,
		pr:     pr,
		k:      params.maxSize(),
	}
	if s.exec == nil {
		s.exec = localExec{s.sh}
	}
	e := s.newEngine()
	defer e.release()
	s.protos = e.buildSingletons()
	return s, nil
}

// Solve runs the algorithm on this session.
func (s *Solver) Solve(a Algorithm) (*Configuration, error) {
	return a.Solve(context.Background(), s)
}

// SolveContext is Solve with a request context: the run aborts with the
// context's error at its next iteration boundary once the context is
// canceled or past its deadline, and a distributed session derives every
// worker RPC deadline from it.
func (s *Solver) SolveContext(ctx context.Context, a Algorithm) (*Configuration, error) {
	ctx, sp := obs.StartSpan(ctx, "solve")
	sp.Tag("algorithm", a.Name())
	cfg, err := a.Solve(ctx, s)
	if cfg != nil {
		sp.Tag("iterations", cfg.Iterations)
	}
	sp.End()
	return cfg, err
}

// Params returns the session's parameters.
func (s *Solver) Params() Params { return s.params }

// Matrix returns the session's WTP matrix.
func (s *Solver) Matrix() *wtp.Matrix { return s.w }

// SolverStats describes a session's indexed corpus — the introspection a
// serving layer needs to report sessions and to build cache keys.
type SolverStats struct {
	Consumers  int     // matrix rows
	Items      int     // matrix columns
	Entries    int     // non-zero WTP entries
	Stripes    int     // stripes of the sharded index
	StripeSize int     // consumers per stripe
	Version    uint64  // matrix version the index snapshotted
	TotalWTP   float64 // aggregate WTP (upper bound of any revenue)
}

// Spans cuts the session's striped index into at most n contiguous,
// balanced stripe-span documents — the work units a distributed coordinator
// ships to its workers. Reading the session's own shard (rather than
// re-sharding the matrix) keeps span extraction free of a second O(entries)
// index build.
func (s *Solver) Spans(n int) []*wtp.SpanDoc {
	stripes := s.sh.Stripes()
	if n > stripes {
		n = stripes
	}
	if n < 1 {
		n = 1
	}
	out := make([]*wtp.SpanDoc, 0, n)
	for i := 0; i < n; i++ {
		s0 := i * stripes / n
		s1 := (i + 1) * stripes / n
		if s1 > s0 {
			out = append(out, s.sh.Span(s0, s1))
		}
	}
	return out
}

// Stats returns the session's corpus and index statistics. The Version field
// identifies the snapshot the session serves: results computed by this
// Solver are valid exactly for that matrix version, which is what a result
// cache in front of the session should key on.
func (s *Solver) Stats() SolverStats {
	return SolverStats{
		Consumers:  s.w.Consumers(),
		Items:      s.w.Items(),
		Entries:    s.w.Entries(),
		Stripes:    s.sh.Stripes(),
		StripeSize: s.sh.StripeSize(),
		Version:    s.sh.Version(),
		TotalWTP:   s.w.Total(),
	}
}

// getCtx borrows a worker context from the pool.
func (s *Solver) getCtx() *workerCtx {
	if ctx, ok := s.ctxPool.Get().(*workerCtx); ok {
		return ctx
	}
	return &workerCtx{sc: &mergeScratch{}, psc: pricing.NewScratch(s.pr.Levels())}
}

func (s *Solver) putCtx(ctx *workerCtx) { s.ctxPool.Put(ctx) }

// transactions returns the consumers' interest transactions (each consumer's
// ascending item list), built once per session. The stripes partition the
// consumer axis, so the per-stripe fill writes disjoint rows and can be
// farmed to workers without locks.
func (s *Solver) transactions() [][]int {
	s.txsOnce.Do(func() {
		txs := make([][]int, s.w.Consumers())
		items := s.w.Items()
		s.sh.ForEachStripe(s.params.parallelism(), func(_ int, st *wtp.Stripe) {
			for i := 0; i < items; i++ {
				ids, _ := st.Item(i)
				for _, id := range ids {
					txs[id] = append(txs[id], i)
				}
			}
		})
		s.txs = txs
	})
	return s.txs
}

// engine carries one solve's mutable state: its scratch contexts and the
// run-local bundle-size cap. Engines are cheap — everything heavy lives on
// the Solver — and must be released when the run ends so the contexts
// return to the pool.
type engine struct {
	s      *Solver
	w      *wtp.Matrix
	sh     *wtp.Shard
	exec   StripeExecutor
	params Params
	pr     *pricing.Pricer
	reqCtx context.Context // the run's request context (cancellation/deadline)
	ctx    *workerCtx      // the run's serial-path context
	k      int             // effective bundle-size cap (Optimal2 overrides per run)
	// incremental routes candidate-merge vector construction through the
	// parents' cached vectors (striped union) instead of a postings rescan;
	// the equivalence tests set Params.referenceEval to diff the two paths.
	incremental bool
	// borrowed are the extra worker contexts this run's evalPairs rounds
	// took from the pool; released with the engine.
	borrowed []*workerCtx
}

// newEngine opens a run on the session with no cancellation.
func (s *Solver) newEngine() *engine {
	return s.newEngineCtx(context.Background())
}

// newEngineCtx opens a run bound to a request context: the run's iteration
// boundaries observe cancellation, and the stripe executor derives worker
// RPC deadlines from it.
func (s *Solver) newEngineCtx(ctx context.Context) *engine {
	if ctx == nil {
		ctx = context.Background()
	}
	return &engine{
		s:           s,
		w:           s.w,
		sh:          s.sh,
		exec:        s.exec,
		params:      s.params,
		pr:          s.pr,
		reqCtx:      ctx,
		ctx:         s.getCtx(),
		k:           s.k,
		incremental: !s.params.referenceEval,
	}
}

// canceled reports the run's context error, nil while the run may continue.
// Algorithms call it at iteration boundaries — cheap enough for the hot
// loops, frequent enough that a disconnected client aborts within one
// iteration rather than running the solve to completion.
func (e *engine) canceled() error {
	select {
	case <-e.reqCtx.Done():
		return e.reqCtx.Err()
	default:
		return nil
	}
}

// release returns the run's contexts to the session pool.
func (e *engine) release() {
	e.s.putCtx(e.ctx)
	for _, ctx := range e.borrowed {
		e.s.putCtx(ctx)
	}
	e.borrowed = nil
}

// workerPool returns n worker contexts for a parallel evaluation round,
// borrowing any missing ones from the session pool and keeping them for the
// rest of the run.
func (e *engine) workerPool(n int) []*workerCtx {
	for len(e.borrowed) < n {
		e.borrowed = append(e.borrowed, e.s.getCtx())
	}
	return e.borrowed[:n]
}

// bundleVector builds a bundle's interested-consumer vector. The fast path
// reduces over the session's stripe executor — the local shard's columnar
// stripes by default, a remote worker fleet under a distributed solver; the
// reference path rescans the flat postings (the seed implementation the
// equivalence tests diff against).
func (e *engine) bundleVector(items []int, theta float64, dstIDs []int, dstVals []float64) ([]int, []float64) {
	if e.incremental {
		return e.exec.BundleVector(e.reqCtx, items, theta, dstIDs, dstVals)
	}
	return e.w.BundleVector(items, theta, dstIDs, dstVals)
}

// buildSingletons prices every item as a one-item node — the session index
// NewSolver amortizes across solves. Items are independent, so the build is
// farmed to the configured worker count in contiguous chunks; each worker
// prices its items in a private context and writes disjoint slots, keeping
// the result identical to the serial order for any parallelism.
func (e *engine) buildSingletons() []*node {
	items := e.w.Items()
	nodes := make([]*node, items)
	workers := e.params.parallelism()
	if workers > items {
		workers = items
	}
	if workers <= 1 || items < minParallelJobs {
		for i := range nodes {
			nodes[i] = e.buildSingleton(e.ctx, i)
		}
		return nodes
	}
	ws := e.workerPool(workers)
	chunk := items/(workers*8) + 1
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(ctx *workerCtx) {
			defer wg.Done()
			for {
				end := int(cursor.Add(int64(chunk)))
				start := end - chunk
				if start >= items {
					return
				}
				if end > items {
					end = items
				}
				for i := start; i < end; i++ {
					nodes[i] = e.buildSingleton(ctx, i)
				}
			}
		}(ws[w])
	}
	wg.Wait()
	return nodes
}

// buildSingleton prices item i as a one-item node in the given context.
// Singletons always build from the local shard, never the stripe executor:
// the session build runs on the node that holds the matrix anyway, a remote
// fan-out would only add one round-trip per item for identical values, and
// a distributed executor may not be fully wired until the session exists
// (the cluster coordinator cuts its worker spans from this session's
// shard).
func (e *engine) buildSingleton(ctx *workerCtx, i int) *node {
	n := &node{items: []int{i}, fresh: true}
	// θ never applies to a single item: Eq. 1 degenerates to the raw WTP.
	if e.incremental {
		n.ids, n.vals = e.sh.BundleVector(n.items, 0, nil, nil)
	} else {
		n.ids, n.vals = e.w.BundleVector(n.items, 0, nil, nil)
	}
	obj := e.objective(n.items)
	n.uq = e.pr.PriceUtilityIn(ctx.psc, n.vals, obj)
	n.quote = n.uq.Quote
	n.revenue, n.profit, n.surplus, n.util = n.uq.Revenue, n.uq.Profit, n.uq.Surplus, n.uq.Utility
	n.unitC = obj.UnitCost
	if e.params.Strategy == Mixed {
		e.initState(n)
	}
	return n
}

// singletons returns this run's working copies of the session's singleton
// prototypes: fresh node headers sharing the cached vectors and state
// read-only, so concurrent runs never observe each other's fresh/dead
// bookkeeping.
func (e *engine) singletons() []*node {
	nodes := make([]*node, len(e.s.protos))
	for i, p := range e.s.protos {
		n := *p
		n.fresh = true
		n.dead = false
		nodes[i] = &n
	}
	return nodes
}
