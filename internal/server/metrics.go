package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the cumulative histogram upper bounds (seconds) of the
// request-duration metrics, exponential from 1ms to 10s.
var latencyBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// histogram is a fixed-bucket cumulative latency histogram, safe for
// concurrent observation.
type histogram struct {
	counts  []atomic.Int64 // one per bucket, plus a final +Inf slot
	sumNano atomic.Int64
	total   atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(latencyBuckets)+1)}
}

// observe records one request duration.
func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, s)
	h.counts[i].Add(1)
	h.sumNano.Add(int64(d))
	h.total.Add(1)
}

// Metrics is the reusable operational-metrics core shared by the bundled
// server and the bundleworker daemon: uptime, per-operation request
// counters and latency histograms, and an error counter, rendered in the
// Prometheus text exposition under the given name prefix. All state is
// atomic; one Metrics serves any number of goroutines.
type Metrics struct {
	prefix string
	start  time.Time

	requests sync.Map // op string → *atomic.Int64
	errors   atomic.Int64

	latency sync.Map // op string → *histogram
}

// NewMetrics returns a metrics core whose exposition names start with
// prefix (e.g. "bundled" → bundled_requests_total).
func NewMetrics(prefix string) *Metrics {
	return &Metrics{prefix: prefix, start: time.Now()}
}

// Uptime returns the time since the core was created.
func (m *Metrics) Uptime() time.Duration { return time.Since(m.start) }

// opCounter returns the request counter for op, creating it on first use.
func (m *Metrics) opCounter(op string) *atomic.Int64 {
	if c, ok := m.requests.Load(op); ok {
		return c.(*atomic.Int64)
	}
	c, _ := m.requests.LoadOrStore(op, new(atomic.Int64))
	return c.(*atomic.Int64)
}

// Observe records one completed request of the given op.
func (m *Metrics) Observe(op string, d time.Duration) {
	m.opCounter(op).Add(1)
	h, ok := m.latency.Load(op)
	if !ok {
		h, _ = m.latency.LoadOrStore(op, newHistogram())
	}
	h.(*histogram).observe(d)
}

// CountError records one request that ended in an error response.
func (m *Metrics) CountError() { m.errors.Add(1) }

// GaugeRow and CounterRow are the extra exposition rows an embedding server
// contributes to Render (session gauges, cache counters, …). Names must
// carry the server's own prefix.
type (
	GaugeRow struct {
		Name, Help string
		Value      float64
	}
	CounterRow struct {
		Name, Help string
		Value      int64
	}
)

// Render writes the Prometheus text exposition: uptime, the extra gauges,
// per-op request counters, the error counter, the extra counters, and the
// per-op latency histograms.
func (m *Metrics) Render(w io.Writer, gauges []GaugeRow, counters []CounterRow) {
	fmt.Fprintf(w, "# HELP %s_uptime_seconds Seconds since the server started.\n", m.prefix)
	fmt.Fprintf(w, "# TYPE %s_uptime_seconds gauge\n", m.prefix)
	fmt.Fprintf(w, "%s_uptime_seconds %g\n", m.prefix, m.Uptime().Seconds())
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", g.Name, g.Help, g.Name, g.Name, g.Value)
	}

	fmt.Fprintf(w, "# HELP %s_requests_total Completed requests by operation.\n", m.prefix)
	fmt.Fprintf(w, "# TYPE %s_requests_total counter\n", m.prefix)
	for _, op := range m.ops(&m.requests) {
		c, _ := m.requests.Load(op)
		fmt.Fprintf(w, "%s_requests_total{op=%q} %d\n", m.prefix, op, c.(*atomic.Int64).Load())
	}
	all := append([]CounterRow{
		{m.prefix + "_errors_total", "Requests that ended in an error response.", m.errors.Load()},
	}, counters...)
	for _, c := range all {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.Name, c.Help, c.Name, c.Name, c.Value)
	}

	fmt.Fprintf(w, "# HELP %s_request_duration_seconds Request latency by operation.\n", m.prefix)
	fmt.Fprintf(w, "# TYPE %s_request_duration_seconds histogram\n", m.prefix)
	for _, op := range m.ops(&m.latency) {
		hv, _ := m.latency.Load(op)
		h := hv.(*histogram)
		var cum int64
		for i, le := range latencyBuckets {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "%s_request_duration_seconds_bucket{op=%q,le=%q} %d\n", m.prefix, op, trimFloat(le), cum)
		}
		cum += h.counts[len(latencyBuckets)].Load()
		fmt.Fprintf(w, "%s_request_duration_seconds_bucket{op=%q,le=\"+Inf\"} %d\n", m.prefix, op, cum)
		fmt.Fprintf(w, "%s_request_duration_seconds_sum{op=%q} %g\n", m.prefix, op, time.Duration(h.sumNano.Load()).Seconds())
		fmt.Fprintf(w, "%s_request_duration_seconds_count{op=%q} %d\n", m.prefix, op, h.total.Load())
	}
}

// ops returns a sync.Map's string keys sorted, for stable rendering.
func (m *Metrics) ops(sm *sync.Map) []string {
	var out []string
	sm.Range(func(k, _ any) bool { out = append(out, k.(string)); return true })
	sort.Strings(out)
	return out
}

// metrics wraps the shared core with the bundled server's own counters.
type metrics struct {
	*Metrics

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	batches          atomic.Int64 // batched passes processed
	batchedRequests  atomic.Int64 // evaluate requests that went through a batch
	coalescedInBatch atomic.Int64 // requests that shared another request's execution

	uploads   atomic.Int64
	evictions atomic.Int64

	authFailures atomic.Int64 // 401s: missing or unknown API keys
	quotaRPS     atomic.Int64 // 429s from the request-rate quota
	quotaCorpora atomic.Int64 // 429s from the per-tenant corpus-count quota
	quotaEntries atomic.Int64 // 429s from the per-tenant entry quota
	restores     atomic.Int64 // sessions restored from the corpus store
	storeErrors  atomic.Int64 // persistence operations that failed
}

func newMetrics() *metrics { return &metrics{Metrics: NewMetrics("bundled")} }

// render writes the server's full exposition through the shared core.
// persisted is the corpus store's live record count (negative when the
// daemon runs without persistence, which omits the gauge).
func (m *metrics) render(w io.Writer, sessions, cacheEntries, persisted int) {
	gauges := []GaugeRow{
		{"bundled_sessions", "Live corpus sessions in the registry.", float64(sessions)},
		{"bundled_result_cache_entries", "Entries in the result cache.", float64(cacheEntries)},
	}
	if persisted >= 0 {
		gauges = append(gauges, GaugeRow{"bundled_persisted_corpora", "Live corpora in the persistence store.", float64(persisted)})
	}
	m.Render(w, gauges,
		[]CounterRow{
			{"bundled_cache_hits_total", "Result-cache hits.", m.cacheHits.Load()},
			{"bundled_cache_misses_total", "Result-cache misses.", m.cacheMisses.Load()},
			{"bundled_batches_total", "Micro-batch passes processed.", m.batches.Load()},
			{"bundled_batched_requests_total", "Evaluate requests drained through micro-batches.", m.batchedRequests.Load()},
			{"bundled_coalesced_requests_total", "Evaluate requests that shared an identical concurrent request's execution.", m.coalescedInBatch.Load()},
			{"bundled_uploads_total", "Corpus uploads (session creations and replacements).", m.uploads.Load()},
			{"bundled_session_evictions_total", "Sessions evicted by the registry's LRU bound.", m.evictions.Load()},
			{"bundled_auth_failures_total", "Requests rejected with 401 for a missing or unknown API key.", m.authFailures.Load()},
			{"bundled_quota_rps_rejections_total", "Requests rejected with 429 by the per-tenant request-rate quota.", m.quotaRPS.Load()},
			{"bundled_quota_corpora_rejections_total", "Uploads rejected with 429 by the per-tenant corpus-count quota.", m.quotaCorpora.Load()},
			{"bundled_quota_entries_rejections_total", "Uploads rejected with 429 by the per-tenant entry quota.", m.quotaEntries.Load()},
			{"bundled_restored_sessions_total", "Sessions restored from the corpus store (at startup or by lazy reload of an evicted corpus).", m.restores.Load()},
			{"bundled_store_errors_total", "Corpus persistence operations that failed.", m.storeErrors.Load()},
		})
}

// trimFloat renders a bucket bound the way Prometheus clients do.
func trimFloat(f float64) string { return fmt.Sprintf("%g", f) }
