// Package dataset provides the rating-data substrate of the reproduction.
//
// The paper evaluates on the UIC Amazon crawl (Books category), reduced by
// iterative 10-core filtering to 4,449 users × 5,028 items × 108,291
// ratings. That crawl is proprietary/unavailable, so this package generates
// a synthetic corpus matching every marginal the paper reports (see
// DESIGN.md):
//
//   - rating value distribution: 3%, 5%, 13%, 29%, 49% for stars 1..5;
//   - item list prices: 50% under $10, 45% in $10-20, 4% above $20;
//   - heavy-tailed user activity and item popularity;
//   - every user and item retains ≥ 10 ratings after k-core filtering.
//
// The generator is deterministic given a seed. A CSV loader/saver is
// provided so the real dataset can be substituted when available.
package dataset

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"bundling/internal/wtp"
)

// Dataset is a rating corpus: a set of (user, item, stars) triples plus the
// per-item list price. Users and items are dense 0-based ids.
type Dataset struct {
	Users   int
	Items   int
	Ratings []wtp.Rating
	Prices  []float64
}

// PaperScaleConfig returns the generator configuration that matches the
// paper's post-filtering corpus statistics.
func PaperScaleConfig() GenConfig {
	return GenConfig{
		Users:          4449,
		Items:          5028,
		RatingsPerUser: 13, // yields ≈108k ratings after the 10-core filter
		MinDegree:      10,
		Seed:           1,
	}
}

// GenConfig configures the synthetic generator.
type GenConfig struct {
	Users          int
	Items          int
	RatingsPerUser float64 // mean ratings per user before filtering
	MinDegree      int     // k for the iterative k-core filter (paper: 10)
	Seed           int64
	// Genres is the number of latent taste clusters (0 selects the
	// default). Real rating data exhibits co-rating structure — users who
	// rate one fantasy novel rate others too — which is what gives bundles
	// shared audiences and makes itemsets frequent; the generator
	// reproduces it by giving every user and item latent genres and
	// drawing most of a user's ratings from her preferred genres.
	Genres int
	// GenreBias ∈ [0,1] is the probability a rating is drawn from one of
	// the user's preferred genres (0 selects the default 0.8).
	GenreBias float64
}

// DefaultGenres is the latent-cluster count used when GenConfig.Genres is 0.
const DefaultGenres = 12

// defaultGenreBias is used when GenConfig.GenreBias is 0.
const defaultGenreBias = 0.8

// starCDF encodes the paper's rating distribution: 3/5/13/29/49%.
var starCDF = [5]float64{0.03, 0.08, 0.21, 0.50, 1.00}

// Generate builds a synthetic dataset per the configuration. Item
// popularity follows a Zipf-like law so that, as in real rating data, a few
// items attract many ratings; the k-core filter then trims sparse rows and
// columns exactly as the paper's pre-processing does.
func Generate(cfg GenConfig) (*Dataset, error) {
	if cfg.Users <= 0 || cfg.Items <= 0 {
		return nil, fmt.Errorf("dataset: non-positive dimensions %d×%d", cfg.Users, cfg.Items)
	}
	if cfg.RatingsPerUser <= 0 {
		return nil, fmt.Errorf("dataset: ratings per user %g must be > 0", cfg.RatingsPerUser)
	}
	if cfg.MinDegree < 0 {
		return nil, fmt.Errorf("dataset: negative min degree %d", cfg.MinDegree)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	genres := cfg.Genres
	if genres <= 0 {
		genres = DefaultGenres
	}
	bias := cfg.GenreBias
	if bias <= 0 {
		bias = defaultGenreBias
	}
	prices := make([]float64, cfg.Items)
	itemGenre := make([]int, cfg.Items)
	for i := range prices {
		prices[i] = samplePrice(rng)
		itemGenre[i] = rng.Intn(genres)
	}
	// Per-genre item lists plus Zipf-ish global popularity weights
	// (exponent < 1 keeps the tail heavy without starving most items below
	// the k-core threshold).
	byGenre := make([][]int, genres)
	for i, g := range itemGenre {
		byGenre[g] = append(byGenre[g], i)
	}
	weights := make([]float64, cfg.Items)
	var wsum float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), 0.6)
		wsum += weights[i]
	}
	cum := make([]float64, cfg.Items)
	acc := 0.0
	for i, w := range weights {
		acc += w / wsum
		cum[i] = acc
	}
	pickGlobal := func() int {
		x := rng.Float64()
		return sort.SearchFloat64s(cum, x)
	}
	seen := make(map[int64]bool)
	var ratings []wtp.Rating
	for u := 0; u < cfg.Users; u++ {
		// Each user prefers two genres; ratings land there with prob bias.
		g1 := rng.Intn(genres)
		g2 := rng.Intn(genres)
		// User activity: uniform around the configured mean, floored at
		// MinDegree+2 so the k-core filter keeps most users.
		k := cfg.MinDegree + 2 + rng.Intn(int(2*cfg.RatingsPerUser)+1)
		for r := 0; r < k; r++ {
			var it int
			if rng.Float64() < bias {
				g := g1
				if rng.Intn(2) == 1 {
					g = g2
				}
				if len(byGenre[g]) == 0 {
					it = pickGlobal()
				} else {
					it = byGenre[g][rng.Intn(len(byGenre[g]))]
				}
			} else {
				it = pickGlobal()
			}
			key := int64(u)*int64(cfg.Items) + int64(it)
			if seen[key] {
				continue
			}
			seen[key] = true
			// Star values stay independent across items (the classic
			// Adams-Yellen setting): genres drive who co-rates what, not
			// how high the ratings are, so bundle gains come from the
			// variance in willingness to pay the paper's model exploits.
			ratings = append(ratings, wtp.Rating{Consumer: u, Item: it, Stars: sampleStars(rng)})
		}
	}
	ds := &Dataset{Users: cfg.Users, Items: cfg.Items, Ratings: ratings, Prices: prices}
	if cfg.MinDegree > 0 {
		ds = ds.KCore(cfg.MinDegree)
	}
	return ds, nil
}

// sampleStars draws a star rating from the paper's distribution.
func sampleStars(rng *rand.Rand) int {
	x := rng.Float64()
	for s, c := range starCDF {
		if x <= c {
			return s + 1
		}
	}
	return 5
}

// samplePrice draws a list price from the paper's distribution: 50% of
// items below $10, 45% in $10-20, 4% above $20 (rounded to cents).
func samplePrice(rng *rand.Rand) float64 {
	x := rng.Float64()
	var p float64
	switch {
	case x < 0.50:
		p = 2 + rng.Float64()*8 // $2-10
	case x < 0.95:
		p = 10 + rng.Float64()*10 // $10-20
	default:
		p = 20 + rng.Float64()*30 // $20-50
	}
	return math.Round(p*100) / 100
}

// KCore iteratively removes users and items with fewer than k ratings until
// every remaining user and item has at least k, re-densifying ids. This is
// the paper's pre-processing step (Sec. 6.1.1).
func (d *Dataset) KCore(k int) *Dataset {
	ratings := d.Ratings
	for {
		uDeg := make([]int, d.Users)
		iDeg := make([]int, d.Items)
		for _, r := range ratings {
			uDeg[r.Consumer]++
			iDeg[r.Item]++
		}
		kept := ratings[:0:0]
		for _, r := range ratings {
			if uDeg[r.Consumer] >= k && iDeg[r.Item] >= k {
				kept = append(kept, r)
			}
		}
		if len(kept) == len(ratings) {
			ratings = kept
			break
		}
		ratings = kept
	}
	// Re-densify ids.
	uMap := make(map[int]int)
	iMap := make(map[int]int)
	for _, r := range ratings {
		if _, ok := uMap[r.Consumer]; !ok {
			uMap[r.Consumer] = len(uMap)
		}
		if _, ok := iMap[r.Item]; !ok {
			iMap[r.Item] = len(iMap)
		}
	}
	out := &Dataset{
		Users:   len(uMap),
		Items:   len(iMap),
		Ratings: make([]wtp.Rating, len(ratings)),
		Prices:  make([]float64, len(iMap)),
	}
	for idx, r := range ratings {
		out.Ratings[idx] = wtp.Rating{Consumer: uMap[r.Consumer], Item: iMap[r.Item], Stars: r.Stars}
	}
	for old, item := range iMap {
		out.Prices[item] = d.Prices[old]
	}
	return out
}

// WTP converts the dataset into a willingness-to-pay matrix at conversion
// factor λ (Sec. 6.1.1).
func (d *Dataset) WTP(lambda float64) (*wtp.Matrix, error) {
	return wtp.FromRatings(d.Users, d.Items, d.Ratings, d.Prices, lambda)
}

// SampleItems returns a dataset restricted to n randomly selected items
// (all users retained), as in the paper's weighted-set-packing comparison
// (Sec. 6.4). Users left with no ratings keep their ids; the bundling
// algorithms ignore them.
func (d *Dataset) SampleItems(n int, rng *rand.Rand) *Dataset {
	if n >= d.Items {
		return d
	}
	perm := rng.Perm(d.Items)[:n]
	iMap := make(map[int]int, n)
	prices := make([]float64, n)
	for newID, old := range perm {
		iMap[old] = newID
		prices[newID] = d.Prices[old]
	}
	var ratings []wtp.Rating
	for _, r := range d.Ratings {
		if id, ok := iMap[r.Item]; ok {
			ratings = append(ratings, wtp.Rating{Consumer: r.Consumer, Item: id, Stars: r.Stars})
		}
	}
	return &Dataset{Users: d.Users, Items: n, Ratings: ratings, Prices: prices}
}

// CloneUsers returns a dataset with the user population replicated factor
// times (the paper's Fig. 7(a) scalability workload). factor = 1 returns
// the dataset unchanged.
func (d *Dataset) CloneUsers(factor int) *Dataset {
	if factor <= 1 {
		return d
	}
	out := &Dataset{
		Users:  d.Users * factor,
		Items:  d.Items,
		Prices: d.Prices,
	}
	out.Ratings = make([]wtp.Rating, 0, len(d.Ratings)*factor)
	for c := 0; c < factor; c++ {
		off := c * d.Users
		for _, r := range d.Ratings {
			out.Ratings = append(out.Ratings, wtp.Rating{Consumer: r.Consumer + off, Item: r.Item, Stars: r.Stars})
		}
	}
	return out
}

// Stats summarizes the dataset the way the paper reports it.
type Stats struct {
	Users, Items, Ratings int
	StarShare             [5]float64 // fraction of ratings with 1..5 stars
	PriceShare            [3]float64 // <$10, $10-20, >$20
	MeanRatingsPerUser    float64
	MeanRatingsPerItem    float64
}

// Summarize computes corpus statistics.
func (d *Dataset) Summarize() Stats {
	st := Stats{Users: d.Users, Items: d.Items, Ratings: len(d.Ratings)}
	for _, r := range d.Ratings {
		st.StarShare[r.Stars-1]++
	}
	if len(d.Ratings) > 0 {
		for i := range st.StarShare {
			st.StarShare[i] /= float64(len(d.Ratings))
		}
		st.MeanRatingsPerUser = float64(len(d.Ratings)) / float64(d.Users)
		st.MeanRatingsPerItem = float64(len(d.Ratings)) / float64(d.Items)
	}
	for _, p := range d.Prices {
		switch {
		case p < 10:
			st.PriceShare[0]++
		case p <= 20:
			st.PriceShare[1]++
		default:
			st.PriceShare[2]++
		}
	}
	if d.Items > 0 {
		for i := range st.PriceShare {
			st.PriceShare[i] /= float64(d.Items)
		}
	}
	return st
}

// WriteCSV emits the dataset as two CSV sections: a "price" row per item
// and a "rating" row per observation.
func (d *Dataset) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	for i, p := range d.Prices {
		if err := cw.Write([]string{"price", strconv.Itoa(i), strconv.FormatFloat(p, 'f', 2, 64)}); err != nil {
			return err
		}
	}
	for _, r := range d.Ratings {
		if err := cw.Write([]string{"rating", strconv.Itoa(r.Consumer), strconv.Itoa(r.Item), strconv.Itoa(r.Stars)}); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV parses a dataset written by WriteCSV (or hand-assembled real
// data in the same format).
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	d := &Dataset{}
	prices := make(map[int]float64)
	maxItem, maxUser := -1, -1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: csv: %w", err)
		}
		switch rec[0] {
		case "price":
			if len(rec) != 3 {
				return nil, fmt.Errorf("dataset: malformed price row %q", rec)
			}
			item, err := strconv.Atoi(rec[1])
			if err != nil {
				return nil, fmt.Errorf("dataset: price item id: %w", err)
			}
			if item < 0 {
				return nil, fmt.Errorf("dataset: negative item id %d", item)
			}
			p, err := strconv.ParseFloat(rec[2], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: price value: %w", err)
			}
			if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
				return nil, fmt.Errorf("dataset: price %g must be finite and non-negative", p)
			}
			prices[item] = p
			if item > maxItem {
				maxItem = item
			}
		case "rating":
			if len(rec) != 4 {
				return nil, fmt.Errorf("dataset: malformed rating row %q", rec)
			}
			u, err1 := strconv.Atoi(rec[1])
			it, err2 := strconv.Atoi(rec[2])
			s, err3 := strconv.Atoi(rec[3])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("dataset: malformed rating row %q", rec)
			}
			if u < 0 || it < 0 {
				return nil, fmt.Errorf("dataset: negative id in rating row %q", rec)
			}
			if s < 1 || s > wtp.MaxRating {
				return nil, fmt.Errorf("dataset: stars %d outside 1..%d", s, wtp.MaxRating)
			}
			d.Ratings = append(d.Ratings, wtp.Rating{Consumer: u, Item: it, Stars: s})
			if u > maxUser {
				maxUser = u
			}
			if it > maxItem {
				maxItem = it
			}
		default:
			return nil, fmt.Errorf("dataset: unknown row kind %q", rec[0])
		}
	}
	// Every item in 0..maxItem needs a price row, so an item id at or above
	// the price-row count is guaranteed-missing — report it before sizing
	// the prices slice, which a corrupt sky-high id would otherwise blow up
	// to an absurd allocation. (Sky-high user ids are caught downstream by
	// the WTP matrix's dense-size guard.)
	if maxItem >= len(prices) {
		return nil, fmt.Errorf("dataset: item id %d but only %d price rows; missing price", maxItem, len(prices))
	}
	d.Users = maxUser + 1
	d.Items = maxItem + 1
	d.Prices = make([]float64, d.Items)
	for i := range d.Prices {
		if p, ok := prices[i]; ok {
			d.Prices[i] = p
		} else {
			return nil, fmt.Errorf("dataset: missing price for item %d", i)
		}
	}
	return d, nil
}
