package config

import (
	"context"
	"fmt"
	"sort"
	"time"

	"bundling/internal/obs"
	"bundling/internal/pricing"
	"bundling/internal/wtp"
)

// Evaluate prices a caller-proposed bundle configuration — the "what-if"
// counterpart of the search algorithms. offers lists the item sets to put
// on sale; prices are chosen optimally by the engine under params.
//
// The offers must satisfy the structural condition of the chosen strategy
// (Problem 1/2 condition 2): pairwise disjoint under pure bundling, laminar
// (any two offers disjoint or nested) under mixed bundling. Unlike the
// optimization problems, the offers need not cover the whole item universe;
// uncovered items simply earn nothing, which lets sellers compare partial
// lineups.
//
// Under mixed bundling the offers are priced bottom-up: smaller offers
// first at their standalone optimal price, then each subsuming bundle
// conditioned on the offers it contains (the paper's incremental policy
// and price window), with consumers re-resolving by the upgrade rule.
func Evaluate(w *wtp.Matrix, offers [][]int, params Params) (*Configuration, error) {
	s, err := NewSolver(w, params)
	if err != nil {
		return nil, err
	}
	return s.Evaluate(offers)
}

// Evaluate prices a caller-proposed configuration on the session — the
// serving-path entry point for what-if traffic: many Evaluate calls (and
// Solve calls) run concurrently against one indexed matrix.
func (s *Solver) Evaluate(offers [][]int) (*Configuration, error) {
	return s.EvaluateContext(context.Background(), offers)
}

// EvaluateContext is Evaluate with a request context: pricing aborts with
// the context's error between offers once the context is canceled or past
// its deadline, and a distributed session derives its worker RPC deadlines
// from it.
func (s *Solver) EvaluateContext(ctx context.Context, offers [][]int) (*Configuration, error) {
	ctx, sp := obs.StartSpan(ctx, "evaluate")
	sp.Tag("offers", len(offers))
	defer sp.End()
	e := s.newEngineCtx(ctx)
	defer e.release()
	start := time.Now()
	sets, err := normalizeOffers(s.w.Items(), offers)
	if err != nil {
		return nil, err
	}
	if err := checkStructure(sets, s.params.Strategy); err != nil {
		return nil, err
	}
	switch s.params.Strategy {
	case Pure:
		cfg := &Configuration{Strategy: Pure, Iterations: 1}
		var ids []int
		var vals []float64
		for _, items := range sets {
			if err := e.canceled(); err != nil {
				return nil, err
			}
			theta := e.params.Theta
			if len(items) == 1 {
				theta = 0
			}
			ids, vals = e.bundleVector(items, theta, ids, vals)
			uq := e.pr.PriceUtilityIn(e.ctx.psc, vals, e.objective(items))
			cfg.Bundles = append(cfg.Bundles, Bundle{Items: items, Price: uq.Price, Revenue: uq.Revenue})
			cfg.Revenue += uq.Revenue
			cfg.Profit += uq.Profit
			cfg.Surplus += uq.Surplus
			cfg.Utility += uq.Utility
		}
		cfg.Trace = []IterationStat{{Iteration: 1, Revenue: cfg.Revenue, Elapsed: time.Since(start), Bundles: len(cfg.Bundles)}}
		return cfg, nil
	default:
		return e.evaluateMixed(sets, start)
	}
}

// Aggregator computes distributed pricing aggregates for a bundle: the
// global maximum bundle WTP and the reduced pricing histogram against it
// (see pricing.Histogram). A scatter/gather implementation fans each call
// out to the workers owning the corpus's stripe spans and reduces — max by
// max, histograms by element-wise addition — so the coordinator prices a
// bundle from O(T) aggregate state instead of gathering the O(M) consumer
// vector. Implementations must be infallible: a span whose worker is
// unreachable is computed from a local replica, never dropped.
// Like StripeExecutor, both methods receive the run's request context to
// derive RPC deadlines from; a done context must still yield a correct
// result (local fallback), with run abortion left to the engine.
type Aggregator interface {
	// BundleMax returns the maximum Eq. 1 bundle WTP over all consumers
	// (0 when no consumer is interested).
	BundleMax(ctx context.Context, items []int, theta float64) float64
	// BundleHistogram accumulates the bundle's pricing histogram against the
	// global maximum maxW into counts and sums (each of length levels+1,
	// zeroed by the caller), exactly as pricing.Histogram does per span.
	BundleHistogram(ctx context.Context, items []int, theta float64, maxW float64, counts, sums []float64)
}

// EvaluateAggregated prices a pure-bundling offer family from reduced
// pricing histograms instead of gathered consumer vectors — the
// scatter/gather evaluate path of a distributed solver, where each offer
// costs two aggregate rounds (max, histogram) of O(T) response data per
// span rather than shipping every interested consumer. Results match
// Evaluate within float re-association (the histogram sums reduce in a
// different order); bundle prices and revenues under the paper's default
// deterministic model and objective are identical.
//
// The mixed strategy carries per-consumer market state between offers and
// cannot be priced from histograms; mixed evaluates (and the exact-sigmoid
// ablation, which needs raw per-consumer values) must go through Evaluate.
func (s *Solver) EvaluateAggregated(offers [][]int, agg Aggregator) (*Configuration, error) {
	return s.EvaluateAggregatedContext(context.Background(), offers, agg)
}

// EvaluateAggregatedContext is EvaluateAggregated with a request context;
// see EvaluateContext for the cancellation contract.
func (s *Solver) EvaluateAggregatedContext(ctx context.Context, offers [][]int, agg Aggregator) (*Configuration, error) {
	if s.params.Strategy != Pure {
		return nil, fmt.Errorf("config: aggregated evaluation supports pure bundling only")
	}
	if s.params.ExactSigmoid && !s.params.Model.Deterministic() {
		return nil, fmt.Errorf("config: aggregated evaluation cannot price under the exact-sigmoid ablation")
	}
	ctx, sp := obs.StartSpan(ctx, "evaluate")
	sp.Tag("offers", len(offers))
	sp.Tag("aggregated", true)
	defer sp.End()
	e := s.newEngineCtx(ctx)
	defer e.release()
	start := time.Now()
	sets, err := normalizeOffers(s.w.Items(), offers)
	if err != nil {
		return nil, err
	}
	if err := checkStructure(sets, Pure); err != nil {
		return nil, err
	}
	cfg := &Configuration{Strategy: Pure, Iterations: 1}
	T := s.pr.Levels()
	counts := make([]float64, T+1)
	sums := make([]float64, T+1)
	for _, items := range sets {
		if err := e.canceled(); err != nil {
			return nil, err
		}
		theta := thetaFor(e.params.Theta, len(items))
		var uq pricing.UtilityQuote
		if maxW := agg.BundleMax(e.reqCtx, items, theta); maxW > 0 {
			for i := range counts {
				counts[i], sums[i] = 0, 0
			}
			agg.BundleHistogram(e.reqCtx, items, theta, maxW, counts, sums)
			uq = s.pr.PriceUtilityFromHistogram(counts, sums, maxW, e.objective(items))
		}
		cfg.Bundles = append(cfg.Bundles, Bundle{Items: items, Price: uq.Price, Revenue: uq.Revenue})
		cfg.Revenue += uq.Revenue
		cfg.Profit += uq.Profit
		cfg.Surplus += uq.Surplus
		cfg.Utility += uq.Utility
	}
	cfg.Trace = []IterationStat{{Iteration: 1, Revenue: cfg.Revenue, Elapsed: time.Since(start), Bundles: len(cfg.Bundles)}}
	return cfg, nil
}

// evaluateMixed prices a laminar offer family bottom-up.
func (e *engine) evaluateMixed(sets [][]int, start time.Time) (*Configuration, error) {
	// Ascending size; ties by first item keep the order deterministic.
	sort.SliceStable(sets, func(i, j int) bool { return len(sets[i]) < len(sets[j]) })
	priced := make([]*node, 0, len(sets))
	isTop := make([]bool, len(sets))
	for si, items := range sets {
		if err := e.canceled(); err != nil {
			return nil, err
		}
		// Maximal already-priced strict subsets of this offer; laminarity
		// makes them pairwise disjoint.
		var parts []*node
		covered := make(map[int]bool, len(items))
		for pi := len(priced) - 1; pi >= 0; pi-- {
			p := priced[pi]
			if len(p.items) >= len(items) || !isSubsetSorted(p.items, items) {
				continue
			}
			if covered[p.items[0]] {
				continue // nested inside an already-collected part
			}
			parts = append(parts, p)
			for _, it := range p.items {
				covered[it] = true
			}
		}
		n := &node{items: items, fresh: true}
		n.ids, n.vals = e.bundleVector(items, thetaFor(e.params.Theta, len(items)), nil, nil)
		n.unitC = e.objective(items).UnitCost
		if len(parts) == 0 {
			// Leaf offer: standalone optimal price.
			uq := e.pr.PriceUtilityIn(e.ctx.psc, n.vals, e.objective(items))
			n.quote = uq.Quote
			e.initState(n)
		} else {
			e.priceOverParts(n, parts)
			for _, p := range parts {
				for pi := range priced {
					if priced[pi] == p {
						isTop[pi] = false
					}
				}
				n.comps = append(n.comps, p.comps...)
				n.comps = append(n.comps, p.asBundle())
			}
		}
		priced = append(priced, n)
		isTop[si] = true
	}
	cfg := &Configuration{Strategy: Mixed, Iterations: 1}
	for pi, n := range priced {
		if !isTop[pi] {
			continue
		}
		cfg.Bundles = append(cfg.Bundles, n.asBundle())
		cfg.Components = append(cfg.Components, n.comps...)
		cfg.Revenue += n.revenue
		cfg.Profit += n.profit
		cfg.Surplus += n.surplus
		cfg.Utility += n.util
	}
	sort.Slice(cfg.Bundles, func(i, j int) bool { return cfg.Bundles[i].Items[0] < cfg.Bundles[j].Items[0] })
	cfg.Trace = []IterationStat{{Iteration: 1, Revenue: cfg.Revenue, Elapsed: time.Since(start), Bundles: len(cfg.Bundles)}}
	return cfg, nil
}

// priceOverParts prices node n's bundle over its already-priced disjoint
// parts (the incremental policy) and commits the combined consumer state.
// Items of n not covered by any part contribute WTP to the bundle but have
// no standalone offer.
func (e *engine) priceOverParts(n *node, parts []*node) {
	curPay := make([]float64, len(n.ids))
	curSurp := make([]float64, len(n.ids))
	curCost := make([]float64, len(n.ids))
	curESur := make([]float64, len(n.ids))
	var lo, hi float64
	for _, p := range parts {
		pp := alignVals(n.ids, p.ids, p.pay)
		ps := alignVals(n.ids, p.ids, p.surp)
		pc := alignVals(n.ids, p.ids, p.cost)
		pe := alignVals(n.ids, p.ids, p.esur)
		for j := range curPay {
			curPay[j] += pp[j]
			curSurp[j] += ps[j]
			curCost[j] += pc[j]
			curESur[j] += pe[j]
		}
		if p.quote.Price > lo {
			lo = p.quote.Price
		}
		hi += p.quote.Price
	}
	if len(parts) == 1 {
		// A single part gives a degenerate Guiltinan window (lo, lo); open
		// the top so the bundle can still price above the part.
		hi = lo * 2
	}
	mq := e.pr.PriceMixedIn(e.ctx.psc, pricing.MixedOffer{
		CurPay: curPay, CurSurplus: curSurp, CurCost: curCost, CurESurplus: curESur,
		WB: n.vals, Lo: lo, Hi: hi, BundleCost: n.unitC,
		Obj: pricing.Objective{ProfitWeight: e.params.ProfitWeight, UnitCost: n.unitC},
	})
	n.pay = make([]float64, len(n.ids))
	n.surp = make([]float64, len(n.ids))
	n.cost = make([]float64, len(n.ids))
	n.esur = make([]float64, len(n.ids))
	alpha := e.params.Model.Alpha()
	var pay, cost, sur float64
	for j := range n.ids {
		var pj, prob float64
		var switched bool
		if mq.Feasible {
			pj, prob, switched = e.pr.ResolveSwitch(n.vals[j], curPay[j], curSurp[j], mq.Price)
		} else {
			pj = curPay[j]
		}
		n.pay[j] = pj
		if switched {
			n.cost[j] = n.unitC * prob
			if s := alpha*n.vals[j] - mq.Price; s > 0 {
				n.surp[j] = s
				n.esur[j] = s * prob
			}
		} else {
			n.surp[j] = curSurp[j]
			n.cost[j] = curCost[j]
			n.esur[j] = curESur[j]
		}
		pay += pj
		cost += n.cost[j]
		sur += n.esur[j]
	}
	n.revenue = pay
	n.profit = pay - cost
	n.surplus = sur
	n.util = e.params.ProfitWeight*n.profit + (1-e.params.ProfitWeight)*n.surplus
	n.quote = pricing.Quote{Price: mq.Price, Revenue: mq.Revenue - mq.Baseline, Adopters: mq.Adopters}
}

// thetaFor applies θ only to true bundles.
func thetaFor(theta float64, size int) float64 {
	if size <= 1 {
		return 0
	}
	return theta
}

// normalizeOffers validates item ids, sorts each offer, and rejects
// duplicates within an offer or duplicate offers.
func normalizeOffers(items int, offers [][]int) ([][]int, error) {
	if len(offers) == 0 {
		return nil, fmt.Errorf("config: no offers to evaluate")
	}
	out := make([][]int, len(offers))
	seen := make(map[string]bool, len(offers))
	for oi, off := range offers {
		if len(off) == 0 {
			return nil, fmt.Errorf("config: offer %d is empty", oi)
		}
		s := append([]int(nil), off...)
		sort.Ints(s)
		for i, it := range s {
			if it < 0 || it >= items {
				return nil, fmt.Errorf("config: offer %d refers to item %d outside [0,%d)", oi, it, items)
			}
			if i > 0 && s[i-1] == it {
				return nil, fmt.Errorf("config: offer %d lists item %d twice", oi, it)
			}
		}
		key := fmt.Sprint(s)
		if seen[key] {
			return nil, fmt.Errorf("config: duplicate offer %v", s)
		}
		seen[key] = true
		out[oi] = s
	}
	return out, nil
}

// checkStructure enforces Problem 1/2 condition 2: disjoint offers under
// pure bundling, laminar offers under mixed bundling.
func checkStructure(sets [][]int, strategy Strategy) error {
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			a, b := sets[i], sets[j]
			if !idsIntersect(a, b) {
				continue
			}
			if strategy == Pure {
				return fmt.Errorf("config: pure bundling requires disjoint offers; %v and %v overlap", a, b)
			}
			if !isSubsetSorted(a, b) && !isSubsetSorted(b, a) {
				return fmt.Errorf("config: mixed bundling requires nested or disjoint offers; %v and %v partially overlap", a, b)
			}
		}
	}
	return nil
}

// isSubsetSorted reports whether sub ⊆ super for ascending slices.
func isSubsetSorted(sub, super []int) bool {
	i, j := 0, 0
	for i < len(sub) && j < len(super) {
		switch {
		case sub[i] == super[j]:
			i++
			j++
		case sub[i] > super[j]:
			j++
		default:
			return false
		}
	}
	return i == len(sub)
}
