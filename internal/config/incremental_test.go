package config

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"bundling/internal/wtp"
)

// equivMatrix builds a random price-like WTP matrix for the equivalence
// suite.
func equivMatrix(t *testing.T, seed int64, users, items int, density float64) *wtp.Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := wtp.MustNew(users, items)
	for u := 0; u < users; u++ {
		for i := 0; i < items; i++ {
			if rng.Float64() < density {
				w.MustSet(u, i, 0.5+rng.Float64()*30)
			}
		}
	}
	return w
}

// referenceParams returns p with the incremental union fast path disabled,
// so candidate merges rebuild their vectors with the postings-scan
// reference (wtp.Matrix.BundleVector).
func referenceParams(p Params) Params {
	p.referenceEval = true
	return p
}

// sameConfiguration asserts two configurations agree: same bundle
// partitions, and prices/revenues within tol.
func sameConfiguration(t *testing.T, label string, got, want *Configuration, tol float64) {
	t.Helper()
	if math.Abs(got.Revenue-want.Revenue) > tol {
		t.Errorf("%s: revenue %.12f, reference %.12f", label, got.Revenue, want.Revenue)
	}
	if len(got.Bundles) != len(want.Bundles) {
		t.Fatalf("%s: %d bundles, reference %d", label, len(got.Bundles), len(want.Bundles))
	}
	key := func(b Bundle) string { return fmt.Sprint(b.Items) }
	sort.Slice(got.Bundles, func(i, j int) bool { return key(got.Bundles[i]) < key(got.Bundles[j]) })
	sort.Slice(want.Bundles, func(i, j int) bool { return key(want.Bundles[i]) < key(want.Bundles[j]) })
	for i := range want.Bundles {
		g, r := got.Bundles[i], want.Bundles[i]
		if key(g) != key(r) {
			t.Fatalf("%s: bundle[%d] items %v, reference %v", label, i, g.Items, r.Items)
		}
		if math.Abs(g.Price-r.Price) > tol {
			t.Errorf("%s: bundle %v price %.12f, reference %.12f", label, g.Items, g.Price, r.Price)
		}
		if math.Abs(g.Revenue-r.Revenue) > tol {
			t.Errorf("%s: bundle %v revenue %.12f, reference %.12f", label, g.Items, g.Revenue, r.Revenue)
		}
	}
}

// TestIncrementalMergeEquivalence runs every iterative algorithm under both
// strategies and several θ values twice — once through the incremental
// cached-vector union fast path, once through the postings-scan reference —
// and requires the resulting configurations to agree within 1e-9.
func TestIncrementalMergeEquivalence(t *testing.T) {
	w := equivMatrix(t, 11, 80, 24, 0.25)
	algorithms := []struct {
		name string
		run  func(*wtp.Matrix, Params) (*Configuration, error)
	}{
		{"greedy", GreedyMerge},
		{"matching", MatchingBased},
		{"freqitemset", func(w *wtp.Matrix, p Params) (*Configuration, error) {
			return FreqItemset(w, p, FreqItemsetOptions{MinSupport: 0.05})
		}},
	}
	for _, theta := range []float64{-0.1, 0, 0.2} {
		for _, strategy := range []Strategy{Pure, Mixed} {
			for _, alg := range algorithms {
				label := fmt.Sprintf("%s/%v/θ=%g", alg.name, strategy, theta)
				params := DefaultParams()
				params.Strategy = strategy
				params.Theta = theta
				fast, err := alg.run(w, params)
				if err != nil {
					t.Fatalf("%s (fast): %v", label, err)
				}
				ref, err := alg.run(w, referenceParams(params))
				if err != nil {
					t.Fatalf("%s (reference): %v", label, err)
				}
				sameConfiguration(t, label, fast, ref, 1e-9)
			}
		}
	}
}

// TestIncrementalEquivalenceRunToEnd covers the greedy run-to-end variant,
// whose candidate heap must also contain non-gaining merges.
func TestIncrementalEquivalenceRunToEnd(t *testing.T) {
	w := equivMatrix(t, 5, 50, 16, 0.3)
	params := DefaultParams()
	params.GreedyRunToEnd = true
	fast, err := GreedyMerge(w, params)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := GreedyMerge(w, referenceParams(params))
	if err != nil {
		t.Fatal(err)
	}
	sameConfiguration(t, "greedy/run-to-end", fast, ref, 1e-9)
}

// TestEvalPairsDeterministic verifies the chunked parallel evaluation is
// invariant to worker count.
func TestEvalPairsDeterministic(t *testing.T) {
	w := equivMatrix(t, 23, 60, 20, 0.3)
	var base *Configuration
	for _, workers := range []int{1, 2, 7} {
		params := DefaultParams()
		params.Strategy = Mixed
		params.Parallelism = workers
		cfg, err := GreedyMerge(w, params)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = cfg
			continue
		}
		sameConfiguration(t, fmt.Sprintf("parallelism=%d", workers), cfg, base, 0)
	}
}
