package codec

import (
	"time"
)

// Record is the codec's view of one persisted corpus snapshot: the matrix
// plus the session metadata the serving store's CorpusRecord carries. The
// store converts between the two; options travel as the store's own JSON
// bytes — they are a few dozen bytes of tuning knobs defined a layer above
// this package, not a hot column — while the corpus and tenant keys ride the
// interned string table and the matrix rides the columnar encoding that
// dominates the record's size.
type Record struct {
	ID          string
	Tenant      string
	Generation  int
	CreatedAt   time.Time
	OptionsJSON []byte
	Matrix      MatrixData
	Entries     int
}

// EncodeRecord renders a corpus record as one codec envelope.
func EncodeRecord(rec *Record) ([]byte, error) {
	dst := appendHeader(make([]byte, 0, hdrLen+64+len(rec.ID)+len(rec.Tenant)+len(rec.OptionsJSON)+11*len(rec.Matrix.Entries)), kindRecord)
	dst = appendStringTable(dst, []string{rec.ID, rec.Tenant})
	dst = appendDim(dst, 0) // ID ref
	dst = appendDim(dst, 1) // tenant ref
	dst = appendDim(dst, rec.Generation)
	if rec.CreatedAt.IsZero() {
		dst = appendDim(dst, 0)
	} else {
		dst = appendDim(dst, 1)
		ns := rec.CreatedAt.UnixNano()
		dst = append(dst,
			byte(ns), byte(ns>>8), byte(ns>>16), byte(ns>>24),
			byte(ns>>32), byte(ns>>40), byte(ns>>48), byte(ns>>56))
	}
	dst = appendDim(dst, rec.Entries)
	dst = appendDim(dst, len(rec.OptionsJSON))
	dst = append(dst, rec.OptionsJSON...)
	return appendMatrixPayload(dst, &rec.Matrix)
}

// DecodeRecord parses one corpus record envelope. Times decode in UTC with
// nanosecond fidelity (the same granularity the JSON records' RFC 3339
// timestamps carry).
func DecodeRecord(buf []byte) (*Record, error) {
	r := &reader{buf: buf}
	if err := r.header(kindRecord); err != nil {
		return nil, err
	}
	table, err := r.stringTable()
	if err != nil {
		return nil, err
	}
	rec := &Record{}
	if rec.ID, err = r.stringRef(table); err != nil {
		return nil, err
	}
	if rec.Tenant, err = r.stringRef(table); err != nil {
		return nil, err
	}
	if rec.Generation, err = r.dim(); err != nil {
		return nil, err
	}
	hasTime, err := r.dim()
	if err != nil {
		return nil, err
	}
	if hasTime != 0 {
		bits, err := r.fixed64()
		if err != nil {
			return nil, err
		}
		rec.CreatedAt = time.Unix(0, int64(bits)).UTC()
	}
	if rec.Entries, err = r.dim(); err != nil {
		return nil, err
	}
	optLen, err := r.length(1)
	if err != nil {
		return nil, err
	}
	opt, err := r.take(optLen)
	if err != nil {
		return nil, err
	}
	if optLen > 0 {
		rec.OptionsJSON = append([]byte(nil), opt...)
	}
	m, err := readMatrixPayload(r)
	if err != nil {
		return nil, err
	}
	rec.Matrix = *m
	if err := r.done(); err != nil {
		return nil, err
	}
	return rec, nil
}
