package experiments

import (
	"fmt"

	"bundling/internal/adoption"
	"bundling/internal/pricing"
	"bundling/internal/tabular"
	"bundling/internal/wtp"
)

// Table1Result reproduces the paper's introductory example (Table 1):
// three consumers, two items, θ = -0.05, and the revenue of the three
// bundling strategies.
type Table1Result struct {
	ComponentsRevenue float64 // $27.00 in the paper
	PureRevenue       float64 // $30.40
	// MixedRevenue follows the paper's Sec. 4.2 upgrade logic: a consumer
	// only takes the bundle when the implicit price of the added component
	// is within its WTP. Under that rule u1 buys A alone and the revenue is
	// $31.20 — not the $38.20 the intro table reports, which assumes the
	// naive "buy bundle iff w_AB ≥ p_AB" rule that Sec. 4.2 itself calls
	// counter-intuitive. Both are reported; see EXPERIMENTS.md.
	MixedRevenue      float64 // $31.20 (upgrade-consistent)
	NaiveMixedRevenue float64 // $38.40 (naive rule; the paper prints 38.20)
	PriceA, PriceB    float64 // $8.00, $11.00
	PriceBundle       float64 // $15.20
}

// Table1 builds the worked example from the paper's hand-set willingness
// to pay and verifies the three strategies' revenues.
func Table1() (*Table1Result, error) {
	const theta = -0.05
	w := wtp.MustNew(3, 2)
	// Consumers u1, u2, u3; items A=0, B=1 (paper Table 1).
	for _, e := range []struct {
		u, i int
		v    float64
	}{
		{0, 0, 12}, {0, 1, 4},
		{1, 0, 8}, {1, 1, 2},
		{2, 0, 5}, {2, 1, 11},
	} {
		if err := w.Set(e.u, e.i, e.v); err != nil {
			return nil, err
		}
	}
	// A fine price grid so the optimum lands exactly on the paper's prices.
	pr, err := pricing.New(adoption.Step(), 2000)
	if err != nil {
		return nil, err
	}
	res := &Table1Result{}
	idsA, valsA := w.BundleVector([]int{0}, 0, nil, nil)
	idsB, valsB := w.BundleVector([]int{1}, 0, nil, nil)
	qa := pr.PriceOptimal(valsA)
	qb := pr.PriceOptimal(valsB)
	res.PriceA, res.PriceB = qa.Price, qb.Price
	res.ComponentsRevenue = qa.Revenue + qb.Revenue

	ids, wb := w.BundleVector([]int{0, 1}, theta, nil, nil)
	qp := pr.PriceOptimal(wb)
	res.PureRevenue = qp.Revenue
	res.PriceBundle = qp.Price

	// Current state under components-only: expected payment and surplus per
	// consumer for A and B, summed (independent purchases).
	wA := scatter(ids, idsA, valsA)
	wB := scatter(ids, idsB, valsB)
	curPay := make([]float64, len(ids))
	curSurp := make([]float64, len(ids))
	for j := range ids {
		if wA[j] >= qa.Price && wA[j] > 0 {
			curPay[j] += qa.Price
			curSurp[j] += wA[j] - qa.Price
		}
		if wB[j] >= qb.Price && wB[j] > 0 {
			curPay[j] += qb.Price
			curSurp[j] += wB[j] - qb.Price
		}
	}
	lo := qa.Price
	if qb.Price > lo {
		lo = qb.Price
	}
	mq := pr.PriceMixed(pricing.MixedOffer{
		CurPay: curPay, CurSurplus: curSurp, WB: wb,
		Lo: lo, Hi: qa.Price + qb.Price,
	})
	res.MixedRevenue = mq.Revenue

	// Naive rule of the intro table: each consumer buys the most expensive
	// affordable option among {A, B, bundle}.
	wB2 := wB
	for j := range ids {
		bestPrice := 0.0
		if wA[j] >= qa.Price && qa.Price > bestPrice {
			bestPrice = qa.Price
		}
		if wB2[j] >= qb.Price && qb.Price > bestPrice {
			bestPrice = qb.Price
		}
		if wb[j] >= qp.Price && qp.Price > bestPrice {
			bestPrice = qp.Price
		}
		res.NaiveMixedRevenue += bestPrice
	}
	return res, nil
}

// Render prints the strategy comparison.
func (r *Table1Result) Render() string {
	t := tabular.New("Table 1: Positive Example of Bundling (θ = -0.05)",
		"strategy", "prices", "revenue")
	t.AddRow("Components",
		fmt.Sprintf("pA=%.2f pB=%.2f", r.PriceA, r.PriceB),
		fmt.Sprintf("%.2f", r.ComponentsRevenue))
	t.AddRow("Pure bundling",
		fmt.Sprintf("pAB=%.2f", r.PriceBundle),
		fmt.Sprintf("%.2f", r.PureRevenue))
	t.AddRow("Mixed bundling (Sec. 4.2 upgrade rule)",
		fmt.Sprintf("pA=%.2f pB=%.2f pAB=%.2f", r.PriceA, r.PriceB, r.PriceBundle),
		fmt.Sprintf("%.2f", r.MixedRevenue))
	t.AddRow("Mixed bundling (intro's naive rule)",
		fmt.Sprintf("pA=%.2f pB=%.2f pAB=%.2f", r.PriceA, r.PriceB, r.PriceBundle),
		fmt.Sprintf("%.2f", r.NaiveMixedRevenue))
	return t.String()
}
