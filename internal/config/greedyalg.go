package config

import (
	"container/heap"
	"time"

	"bundling/internal/wtp"
)

// GreedyMerge runs the paper's Algorithm 2: repeatedly merge the pair of
// current bundles with the highest absolute revenue gain, until no merge
// gains revenue. Works for both pure and mixed bundling (params.Strategy).
// One-shot form; sessions use Solver.Solve(GreedyAlgorithm()).
//
// A lazy max-heap holds candidate merges; entries referring to bundles that
// have since been merged away are discarded on pop. After each merge only
// pairs involving the new bundle are (re-)evaluated, giving the O(M·N²)
// revenue-computation bound of Sec. 5.3.2.
func GreedyMerge(w *wtp.Matrix, params Params) (*Configuration, error) {
	s, err := NewSolver(w, params)
	if err != nil {
		return nil, err
	}
	return s.Solve(GreedyAlgorithm())
}

// greedy is Algorithm 2 on a run engine.
func (e *engine) greedy() (*Configuration, error) {
	start := time.Now()
	nodes := e.singletons()
	total := 0.0
	for _, n := range nodes {
		total += n.revenue
	}
	trace := []IterationStat{{Iteration: 0, Revenue: total, Elapsed: time.Since(start), Bundles: len(nodes)}}

	// version numbers invalidate heap entries when a node dies.
	h := &mergeHeap{}
	push := func(i, j int, merged *node, gain float64) {
		heap.Push(h, mergeCand{u: i, v: j, merged: merged, gain: gain})
	}
	alive := len(nodes)
	// The run-to-end variant's alternative stopping condition (Sec. 5.3.2)
	// needs every mergeable pair, not only the gaining ones: the algorithm
	// keeps taking the least-bad merge all the way to a single bundle and
	// returns the best configuration seen.
	runToEnd := e.params.GreedyRunToEnd
	var jobs []pairJob
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if e.mergeable(nodes[i], nodes[j]) {
				jobs = append(jobs, pairJob{u: i, v: j})
			}
		}
	}
	for _, r := range e.evalPairs(nodes, jobs, runToEnd) {
		push(r.u, r.v, r.merged, r.gain)
	}
	if err := e.canceled(); err != nil {
		// A done context truncates evalPairs; an empty heap here would end
		// the run looking converged instead of aborted.
		return nil, err
	}
	// Best-seen snapshot for the run-to-end variant.
	bestTotal := total
	bestSurplus := 0.0
	var bestBundles []Bundle
	snapshot := func() {
		bestBundles = bestBundles[:0]
		bestSurplus = 0
		for _, n := range nodes {
			if !n.dead {
				bestBundles = append(bestBundles, n.asBundle())
				bestSurplus += n.surplus
			}
		}
	}
	if runToEnd {
		snapshot()
	}
	iteration := 0
	for h.Len() > 0 {
		if err := e.canceled(); err != nil {
			return nil, err
		}
		top := heap.Pop(h).(mergeCand)
		if nodes[top.u].dead || nodes[top.v].dead {
			continue
		}
		if !runToEnd && top.gain <= minGain {
			break
		}
		iteration++
		a, bn := nodes[top.u], nodes[top.v]
		a.dead = true
		bn.dead = true
		alive--
		newIdx := len(nodes)
		nodes = append(nodes, top.merged)
		// The gain is measured in seller utility; the trace reports the
		// revenue delta (identical under the default objective).
		total += top.merged.revenue - a.revenue - bn.revenue
		trace = append(trace, IterationStat{Iteration: iteration, Revenue: total, Elapsed: time.Since(start), Bundles: alive})
		if runToEnd && total > bestTotal {
			bestTotal = total
			snapshot()
		}
		// Re-price merges of the new bundle against all live bundles, in
		// parallel: this per-iteration re-evaluation dominates the greedy
		// algorithm's running time (the initial seeding prices each pair
		// once; every merge re-prices up to N pairs).
		jobs = jobs[:0]
		for i := 0; i < newIdx; i++ {
			if nodes[i].dead || !e.mergeable(nodes[i], top.merged) {
				continue
			}
			jobs = append(jobs, pairJob{u: i, v: newIdx})
		}
		for _, r := range e.evalPairs(nodes, jobs, runToEnd) {
			push(r.u, r.v, r.merged, r.gain)
		}
	}
	if err := e.canceled(); err != nil {
		// The heap can drain because a truncated evalPairs round pushed
		// nothing; surface the abort rather than a half-merged result.
		return nil, err
	}
	cfg := e.finish(nodes, iteration, trace)
	if runToEnd && bestTotal > cfg.Revenue+minGain {
		// Return the best configuration seen along the full merge path.
		best := &Configuration{
			Strategy:   e.params.Strategy,
			Bundles:    append([]Bundle(nil), bestBundles...),
			Revenue:    bestTotal,
			Surplus:    bestSurplus,
			Profit:     bestTotal, // pure + default objective: profit = revenue
			Utility:    bestTotal,
			Iterations: iteration,
			Trace:      trace,
		}
		return best, nil
	}
	return cfg, nil
}

// mergeCand is a candidate merge with its revenue gain.
type mergeCand struct {
	u, v   int
	merged *node
	gain   float64
}

// mergeHeap is a max-heap of merge candidates by gain.
type mergeHeap []mergeCand

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeCand)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
