package cluster

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"bundling"
)

// wrapChaos wraps each transport with its own seeded ChaosTransport.
func wrapChaos(ts []Transport, cfg ChaosConfig) ([]Transport, []*ChaosTransport) {
	out := make([]Transport, len(ts))
	cs := make([]*ChaosTransport, len(ts))
	for i, t := range ts {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		ct := NewChaos(t, c)
		out[i] = ct
		cs[i] = ct
	}
	return out, cs
}

// assertNoGoroutineLeak waits for the goroutine count to settle back to the
// pre-test baseline (plus slack for runtime helpers); the wait loop absorbs
// goroutines that are mid-exit when the test body returns.
func assertNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosEquivalence is the fault-rate acceptance gate: with 10% and 30%
// injected transport errors plus stale-span rejections on every worker, all
// five algorithms and the evaluate paths must still match the single-machine
// solver within 1e-9 — the retry ladder (re-feed, replica, local store)
// absorbs every injected fault without touching results.
func TestChaosEquivalence(t *testing.T) {
	w := testMatrix(t, 150, 12, 4)
	before := runtime.NumGoroutine()
	for _, rate := range []float64{0.1, 0.3} {
		for _, strategy := range []bundling.Strategy{bundling.Pure, bundling.Mixed} {
			opts := bundling.Options{Strategy: strategy, Theta: -0.1, StripeSize: 16}
			local, err := bundling.NewSolver(w, opts)
			if err != nil {
				t.Fatal(err)
			}
			_, base := fleet(3)
			chaosT, chaos := wrapChaos(base, ChaosConfig{Seed: int64(100*rate) + 7, ErrorRate: rate, StaleRate: 0.15})
			cs, err := NewSolver(w, opts, Config{Workers: chaosT, RequestTimeout: 2 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("%v/rate=%g", strategy, rate)
			for _, alg := range bundling.Algorithms() {
				want, err := local.Solve(alg)
				if err != nil {
					t.Fatal(err)
				}
				got, err := cs.Solve(alg)
				if err != nil {
					t.Fatalf("%s %s: %v", label, alg.Name(), err)
				}
				sameConfig(t, label+"/"+alg.Name(), got, want)
			}
			want, err := local.Evaluate(evalOffers())
			if err != nil {
				t.Fatal(err)
			}
			got, err := cs.Evaluate(evalOffers())
			if err != nil {
				t.Fatalf("%s evaluate: %v", label, err)
			}
			sameConfig(t, label+"/evaluate", got, want)
			var injected int64
			for _, c := range chaos {
				e, s, _ := c.InjectedFaults()
				injected += e + s
			}
			if injected == 0 {
				t.Fatalf("%s: chaos injected nothing — the gate proved nothing", label)
			}
			if err := cs.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	assertNoGoroutineLeak(t, before)
}

// TestChaosBlackholedWorker: one worker of two hangs on every call (a
// SIGSTOPped process). Latency must stay bounded by the per-RPC timeout —
// the ladder times the primary out and the replica answers — and results
// must stay exact.
func TestChaosBlackholedWorker(t *testing.T) {
	w := testMatrix(t, 120, 10, 8)
	opts := bundling.Options{StripeSize: 16}
	local, err := bundling.NewSolver(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, base := fleet(2)
	chaosT, chaos := wrapChaos(base, ChaosConfig{Seed: 21})
	cs, err := NewSolver(w, opts, Config{Workers: chaosT, RequestTimeout: 50 * time.Millisecond, FeedTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		chaos[0].Blackhole(false) // let teardown's Drops through
		cs.Close()
	}()
	cs.exec.feeding.Wait() // feed the fleet before the lights go out
	chaos[0].Blackhole(true)
	want, err := local.Solve(bundling.Matching())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	got, err := cs.Solve(bundling.Matching())
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	sameConfig(t, "blackholed-worker", got, want)
	if elapsed > 30*time.Second {
		t.Fatalf("solve took %v with one blackholed worker; latency not bounded by the RPC timeout", elapsed)
	}
	st := cs.ClusterStats()
	if st.ReplicaRetries == 0 && st.LocalFallbacks == 0 {
		t.Fatalf("blackholed primary never failed over: %+v", st)
	}
}

// TestChaosBlackholedFleet: every worker hangs. The coordinator must
// degrade to the local span store with zero errors and bounded latency for
// every algorithm and the evaluate path, and Close must not leak the
// goroutines that are still waiting out their RPC timeouts.
func TestChaosBlackholedFleet(t *testing.T) {
	w := testMatrix(t, 100, 12, 12)
	before := runtime.NumGoroutine()
	opts := bundling.Options{StripeSize: 16}
	local, err := bundling.NewSolver(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, base := fleet(2)
	chaosT, chaos := wrapChaos(base, ChaosConfig{Seed: 31})
	cs, err := NewSolver(w, opts, Config{Workers: chaosT, RequestTimeout: 25 * time.Millisecond, FeedTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	cs.exec.feeding.Wait()
	for _, c := range chaos {
		c.Blackhole(true)
	}
	for _, alg := range bundling.Algorithms() {
		want, err := local.Solve(alg)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		got, err := cs.Solve(alg)
		elapsed := time.Since(start)
		if err != nil {
			t.Fatalf("%s through blackholed fleet: %v", alg.Name(), err)
		}
		sameConfig(t, "blackholed-fleet/"+alg.Name(), got, want)
		if elapsed > 30*time.Second {
			t.Fatalf("%s took %v; latency not bounded", alg.Name(), elapsed)
		}
	}
	want, err := local.Evaluate(evalOffers())
	if err != nil {
		t.Fatal(err)
	}
	got, err := cs.Evaluate(evalOffers())
	if err != nil {
		t.Fatalf("evaluate through blackholed fleet: %v", err)
	}
	sameConfig(t, "blackholed-fleet/evaluate", got, want)
	st := cs.ClusterStats()
	if st.LocalFallbacks == 0 {
		t.Fatalf("blackholed fleet answered remotely? %+v", st)
	}
	// Heal before Close so teardown's span Drops don't wait out a timeout
	// per worker; the leak check below still covers the blackholed calls.
	for _, c := range chaos {
		c.Blackhole(false)
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	assertNoGoroutineLeak(t, before)
}

// TestChaosPartitionedFleet: a full partition fails fast, so the local
// degradation must be quick — well under one RPC timeout per call — and
// exact.
func TestChaosPartitionedFleet(t *testing.T) {
	w := testMatrix(t, 150, 12, 2)
	opts := bundling.Options{StripeSize: 16}
	local, err := bundling.NewSolver(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, base := fleet(2)
	chaosT, chaos := wrapChaos(base, ChaosConfig{Seed: 5})
	cs, err := NewSolver(w, opts, Config{Workers: chaosT, RequestTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	for _, c := range chaos {
		c.Partition(true)
	}
	start := time.Now()
	for _, alg := range bundling.Algorithms() {
		want, err := local.Solve(alg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cs.Solve(alg)
		if err != nil {
			t.Fatalf("%s through partition: %v", alg.Name(), err)
		}
		sameConfig(t, "partition/"+alg.Name(), got, want)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("partitioned solves took %v; partition is not failing fast", elapsed)
	}
	if st := cs.ClusterStats(); st.LocalFallbacks == 0 {
		t.Fatalf("partitioned fleet answered remotely? %+v", st)
	}
}

// TestChaosBreakerRecovery wires the full resilience stack — chaos under
// breakers under the coordinator — partitions one worker until its breaker
// trips, then heals it and waits for the breaker to close again.
func TestChaosBreakerRecovery(t *testing.T) {
	w := testMatrix(t, 120, 10, 9)
	opts := bundling.Options{StripeSize: 16}
	local, err := bundling.NewSolver(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, base := fleet(2)
	chaosT, chaos := wrapChaos(base, ChaosConfig{Seed: 13})
	wrapped, breakers := WrapBreakers(chaosT, BreakerConfig{
		MinSamples: 2, Window: 6,
		Cooldown: 20 * time.Millisecond, MaxCooldown: 100 * time.Millisecond, Seed: 11,
	})
	cs, err := NewSolver(w, opts, Config{Workers: wrapped, RequestTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	cs.exec.feeding.Wait()
	chaos[0].Partition(true)
	want, err := local.Solve(bundling.Matching())
	if err != nil {
		t.Fatal(err)
	}
	got, err := cs.Solve(bundling.Matching())
	if err != nil {
		t.Fatal(err)
	}
	sameConfig(t, "breaker/partitioned", got, want)
	if breakers[0].State() == BreakerClosed {
		t.Fatal("worker 0's breaker did not trip under a partition")
	}
	// With the breaker open, further solves skip the dead worker outright.
	if _, err := cs.Solve(bundling.Greedy()); err != nil {
		t.Fatal(err)
	}
	if st := cs.ClusterStats(); st.BreakerSkips == 0 {
		t.Fatalf("open breaker was never consulted: %+v", st)
	}
	// Heal the worker; the cooldown elapses, a probe goes through, and the
	// breaker closes.
	chaos[0].Partition(false)
	deadline := time.Now().Add(5 * time.Second)
	for breakers[0].State() != BreakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never recovered: %+v", breakers[0].Snapshot())
		}
		if _, err := cs.Solve(bundling.Matching()); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosDeterministicSchedule: identical seeds over identical call
// sequences must inject identical fault schedules — the property the chaos
// bench and any bisection of a chaos failure rely on.
func TestChaosDeterministicSchedule(t *testing.T) {
	mk := func() *ChaosTransport {
		return NewChaos(&errTransport{name: "w"}, ChaosConfig{
			Seed: 5, ErrorRate: 0.3, StaleRate: 0.2, Latency: 50 * time.Microsecond,
		})
	}
	a, b := mk(), mk()
	ctx := context.Background()
	for i := 0; i < 300; i++ {
		_, errA := a.Vector(ctx, "c", VectorRequest{})
		_, errB := b.Vector(ctx, "c", VectorRequest{})
		if fmt.Sprint(errA) != fmt.Sprint(errB) {
			t.Fatalf("call %d diverged: %v vs %v", i, errA, errB)
		}
	}
	ea, sa, da := a.InjectedFaults()
	eb, sb, db := b.InjectedFaults()
	if ea != eb || sa != sb || da != db {
		t.Fatalf("fault counts diverged: (%d,%d,%d) vs (%d,%d,%d)", ea, sa, da, eb, sb, db)
	}
	if ea == 0 || sa == 0 || da == 0 {
		t.Fatalf("schedule injected nothing: errors=%d stale=%d delayed=%d", ea, sa, da)
	}
}

// TestSolveContextDeadline: a caller deadline shorter than the fleet's
// hang must abort the run promptly with the context's error — the engine
// notices at its next iteration boundary once the blackholed RPCs collapse.
func TestSolveContextDeadline(t *testing.T) {
	w := testMatrix(t, 100, 8, 14)
	opts := bundling.Options{StripeSize: 16}
	_, base := fleet(2)
	chaosT, chaos := wrapChaos(base, ChaosConfig{Seed: 17})
	cs, err := NewSolver(w, opts, Config{Workers: chaosT, RequestTimeout: 10 * time.Second, FeedTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range chaos {
			c.Blackhole(false)
		}
		cs.Close()
	}()
	cs.exec.feeding.Wait()
	for _, c := range chaos {
		c.Blackhole(true)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cs.SolveContext(ctx, bundling.Matching())
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// The deadline must cut the blackholed RPCs short: well under the 10s
	// per-RPC budget, not one timeout per span in sequence.
	if elapsed > 5*time.Second {
		t.Fatalf("canceled solve still took %v", elapsed)
	}
}

// TestEvaluateContextCanceled: same contract on the evaluate path.
func TestEvaluateContextCanceled(t *testing.T) {
	w := testMatrix(t, 100, 12, 15)
	opts := bundling.Options{StripeSize: 16}
	_, base := fleet(2)
	chaosT, chaos := wrapChaos(base, ChaosConfig{Seed: 19})
	cs, err := NewSolver(w, opts, Config{Workers: chaosT, RequestTimeout: 10 * time.Second, FeedTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range chaos {
			c.Blackhole(false)
		}
		cs.Close()
	}()
	cs.exec.feeding.Wait()
	for _, c := range chaos {
		c.Blackhole(true)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = cs.EvaluateContext(ctx, evalOffers())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("canceled evaluate still took %v", elapsed)
	}
}
