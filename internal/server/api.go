package server

import (
	"fmt"
	"time"

	"bundling"
	"bundling/internal/usage"
)

// This file defines the JSON wire types of the bundled HTTP API. The thin
// client package (bundling/client) aliases them, so server and client can
// never drift apart.

// OptionsDoc is the JSON form of bundling.Options. Zero values select the
// paper's defaults, exactly as the library's zero Options does.
type OptionsDoc struct {
	Strategy      string    `json:"strategy,omitempty"` // "pure" (default) or "mixed"
	Theta         float64   `json:"theta,omitempty"`
	MaxBundleSize int       `json:"max_bundle_size,omitempty"`
	Gamma         float64   `json:"gamma,omitempty"`
	Alpha         float64   `json:"alpha,omitempty"`
	PriceLevels   int       `json:"price_levels,omitempty"`
	ProfitWeight  float64   `json:"profit_weight,omitempty"`
	UnitCosts     []float64 `json:"unit_costs,omitempty"`
	StripeSize    int       `json:"stripe_size,omitempty"`
	Parallelism   int       `json:"parallelism,omitempty"`
}

// options lowers the document to library options.
func (d OptionsDoc) options() (bundling.Options, error) {
	o := bundling.Options{
		Theta:         d.Theta,
		MaxBundleSize: d.MaxBundleSize,
		Gamma:         d.Gamma,
		Alpha:         d.Alpha,
		PriceLevels:   d.PriceLevels,
		ProfitWeight:  d.ProfitWeight,
		UnitCosts:     d.UnitCosts,
		StripeSize:    d.StripeSize,
		Parallelism:   d.Parallelism,
	}
	switch d.Strategy {
	case "", "pure":
		o.Strategy = bundling.Pure
	case "mixed":
		o.Strategy = bundling.Mixed
	default:
		return o, fmt.Errorf("unknown strategy %q (want pure or mixed)", d.Strategy)
	}
	return o, nil
}

// NewOptionsDoc lifts library options to their wire form; listings and the
// client's upload helpers share it.
func NewOptionsDoc(o bundling.Options) OptionsDoc {
	d := OptionsDoc{
		Theta:         o.Theta,
		MaxBundleSize: o.MaxBundleSize,
		Gamma:         o.Gamma,
		Alpha:         o.Alpha,
		PriceLevels:   o.PriceLevels,
		ProfitWeight:  o.ProfitWeight,
		UnitCosts:     o.UnitCosts,
		StripeSize:    o.StripeSize,
		Parallelism:   o.Parallelism,
	}
	if o.Strategy == bundling.Mixed {
		d.Strategy = "mixed"
	} else {
		d.Strategy = "pure"
	}
	return d
}

// CreateCorpusRequest uploads a corpus and creates (or replaces) its
// session. Exactly one of Matrix (format "json", the default) or CSV
// (format "csv", a ratings dataset converted with Lambda) must be set.
// Re-uploading an existing ID replaces the session and bumps its version,
// which invalidates every cached result of the previous corpus.
type CreateCorpusRequest struct {
	ID      string              `json:"id,omitempty"`     // server assigns one if empty
	Format  string              `json:"format,omitempty"` // "json" (default) or "csv"
	Lambda  float64             `json:"lambda,omitempty"` // csv ratings→WTP factor (0 = bundling.DefaultLambda)
	Options OptionsDoc          `json:"options"`
	Matrix  *bundling.MatrixDoc `json:"matrix,omitempty"`
	CSV     string              `json:"csv,omitempty"`
}

// DeltaCellDoc is one mutation cell of a PATCH request: set (consumer,
// item) to value, or delete the cell. Within one request the last write to
// a coordinate wins.
type DeltaCellDoc = bundling.DeltaCell

// MutateCorpusRequest applies a delta upsert to a corpus in place of a full
// re-upload. IfGeneration, when non-zero, makes the mutation conditional:
// it must equal the corpus's current generation or the request fails with
// 409 and nothing is applied — the optimistic-concurrency handle for
// read-modify-write callers. The binary alternative is a codec delta
// envelope (Content-Type application/x-bundling-codec) carrying the same
// cells and condition.
type MutateCorpusRequest struct {
	IfGeneration int            `json:"if_generation,omitempty"`
	Cells        []DeltaCellDoc `json:"cells"`
}

// MutateCorpusResponse reports an applied mutation: the corpus's new
// generation (every cached result of the previous generation is dead) and
// the post-mutation session info.
type MutateCorpusResponse struct {
	Corpus    string     `json:"corpus"`
	Version   int        `json:"version"` // new generation after the mutation
	Applied   int        `json:"applied"` // cells in the request (last-wins per coordinate)
	ElapsedMS float64    `json:"elapsed_ms"`
	Info      CorpusInfo `json:"info"`
}

// CorpusInfo describes one live session.
type CorpusInfo struct {
	ID        string     `json:"id"`
	Version   int        `json:"version"`          // bumps on re-upload of the same ID
	Tenant    string     `json:"tenant,omitempty"` // owning tenant ("" = public)
	Consumers int        `json:"consumers"`
	Items     int        `json:"items"`
	Entries   int        `json:"entries"`
	Stripes   int        `json:"stripes"`
	TotalWTP  float64    `json:"total_wtp"`
	Options   OptionsDoc `json:"options"`
	CreatedAt time.Time  `json:"created_at"`
}

// ListCorporaResponse is the GET /v1/corpora payload.
type ListCorporaResponse struct {
	Corpora []CorpusInfo `json:"corpora"`
}

// SolveRequest runs a configuration algorithm on a session.
type SolveRequest struct {
	Algorithm string `json:"algorithm"` // "" selects "matching", the paper's recommendation
}

// OfferDoc is one priced offer of a configuration.
type OfferDoc struct {
	Items   []int   `json:"items"`
	Price   float64 `json:"price"`
	Revenue float64 `json:"revenue"`
}

// ConfigDoc is the JSON form of a bundling.Configuration.
type ConfigDoc struct {
	Strategy   string     `json:"strategy"`
	Revenue    float64    `json:"revenue"`
	Profit     float64    `json:"profit"`
	Surplus    float64    `json:"surplus"`
	Utility    float64    `json:"utility"`
	Iterations int        `json:"iterations"`
	Bundles    []OfferDoc `json:"bundles"`
	Components []OfferDoc `json:"components,omitempty"`
}

// configDoc converts a configuration to its wire form.
func configDoc(cfg *bundling.Configuration) ConfigDoc {
	d := ConfigDoc{
		Revenue:    cfg.Revenue,
		Profit:     cfg.Profit,
		Surplus:    cfg.Surplus,
		Utility:    cfg.Utility,
		Iterations: cfg.Iterations,
	}
	if cfg.Strategy == bundling.Mixed {
		d.Strategy = "mixed"
	} else {
		d.Strategy = "pure"
	}
	offers := func(bs []bundling.Bundle) []OfferDoc {
		out := make([]OfferDoc, len(bs))
		for i, b := range bs {
			out[i] = OfferDoc{Items: b.Items, Price: b.Price, Revenue: b.Revenue}
		}
		return out
	}
	d.Bundles = offers(cfg.Bundles)
	if len(cfg.Components) > 0 {
		d.Components = offers(cfg.Components)
	}
	return d
}

// SolveResponse is the result of a solve request.
type SolveResponse struct {
	Corpus    string    `json:"corpus"`
	Version   int       `json:"version"`
	Algorithm string    `json:"algorithm"`
	Cached    bool      `json:"cached"` // served from the result cache
	ElapsedMS float64   `json:"elapsed_ms"`
	Config    ConfigDoc `json:"config"`
}

// EvaluateRequest prices a caller-proposed lineup on a session.
type EvaluateRequest struct {
	Offers [][]int `json:"offers"`
}

// EvaluateResponse is the result of an evaluate request. Cached marks a
// result-cache hit; Batched marks a request that was coalesced into a
// concurrent identical request's execution by the micro-batcher.
type EvaluateResponse struct {
	Corpus    string    `json:"corpus"`
	Version   int       `json:"version"`
	Cached    bool      `json:"cached"`
	Batched   bool      `json:"batched"`
	ElapsedMS float64   `json:"elapsed_ms"`
	Config    ConfigDoc `json:"config"`
}

// WorkerStatusDoc is one fleet worker's circuit-breaker view on /healthz:
// State is "closed" (healthy), "open" (failing; calls skip straight to the
// replica or local fallback until RetryInMs elapses) or "half-open" (a
// recovery probe is due or in flight).
type WorkerStatusDoc struct {
	Addr        string  `json:"addr"`
	State       string  `json:"state"`
	FailureRate float64 `json:"failure_rate"`
	Trips       int64   `json:"trips"`
	RetryInMs   int64   `json:"retry_in_ms,omitempty"`
}

// HealthResponse is the GET /healthz payload. Status is "ok" (200) or
// "degraded" (503, Detail naming the unreachable dependency). Workers
// lists per-worker circuit-breaker state when the daemon fronts a fleet.
// Sessions counts live in-memory sessions; Corpora counts everything
// addressable, including evicted-but-persisted corpora. GoVersion,
// BuildVersion and Revision identify the binary (runtime/debug build
// info; version and revision are omitted when the build is unstamped).
type HealthResponse struct {
	Status        string            `json:"status"`
	Sessions      int               `json:"sessions"`
	Corpora       int               `json:"corpora"`
	UptimeSeconds float64           `json:"uptime_seconds"`
	GoVersion     string            `json:"go_version,omitempty"`
	BuildVersion  string            `json:"build_version,omitempty"`
	Revision      string            `json:"revision,omitempty"`
	Detail        string            `json:"detail,omitempty"`
	Workers       []WorkerStatusDoc `json:"workers,omitempty"`
}

// ErrorResponse carries any non-2xx outcome. RequestID echoes the response's
// X-Request-Id header so client-side reports can be matched to server logs.
type ErrorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// UsageRow is one metered key's workload: lifetime totals (requests,
// errors, cache hits, bytes in/out, wall seconds) plus the sliding-window
// request count and its derived per-second rate. The key "other" aggregates
// every identifier past the accountant's top-K bound; the key "anonymous"
// is unauthenticated traffic on an open server.
type UsageRow = usage.Row

// UsageResponse is the GET /v1/usage payload. Scope is "admin" (the full
// per-tenant breakdown; served when the daemon runs open) or "tenant" (the
// authenticated caller's own slice: its tenant row plus the corpora it may
// see). WindowSeconds is the sliding window behind every row's
// window_requests/rate_per_sec.
type UsageResponse struct {
	Scope         string     `json:"scope"`
	Tenant        string     `json:"tenant,omitempty"`
	WindowSeconds float64    `json:"window_seconds"`
	Tenants       []UsageRow `json:"tenants"`
	Corpora       []UsageRow `json:"corpora"`
}

// WorkerLoadDoc is the coordinator's locally observed load on one worker:
// RPC volume and outcome mix across every session, a latency EWMA over the
// worker's successful calls, and — for HTTP workers — wire bytes split by
// span-feed codec.
type WorkerLoadDoc struct {
	RPCs          int64            `json:"rpcs"`
	Errors        int64            `json:"errors"`
	BreakerSkips  int64            `json:"breaker_skips"`
	LatencyEWMAMs float64          `json:"latency_ewma_ms"`
	Ops           map[string]int64 `json:"ops,omitempty"`
	BytesOut      int64            `json:"bytes_out,omitempty"`
	BytesIn       int64            `json:"bytes_in,omitempty"`
	FeedBytesBin  int64            `json:"feed_bytes_binary,omitempty"`
	FeedBytesJSON int64            `json:"feed_bytes_json,omitempty"`
}

// FleetSpanDoc is one stripe span resident on a worker, as the worker's
// health probe reports it, with the worker-side request count that marks
// hot spans.
type FleetSpanDoc struct {
	Corpus      string `json:"corpus"`
	Version     uint64 `json:"version"`
	StartStripe int    `json:"start_stripe"`
	EndStripe   int    `json:"end_stripe"`
	Entries     int    `json:"entries"`
	Requests    int64  `json:"requests"`
}

// FleetWorkerDoc joins three views of one worker: the live probe result
// (Reachable, Status, uptime, per-op totals, resident spans — absent when
// the probe failed), the coordinator's breaker state, and the coordinator's
// observed load.
type FleetWorkerDoc struct {
	Addr            string           `json:"addr"`
	Reachable       bool             `json:"reachable"`
	Error           string           `json:"error,omitempty"`
	Status          string           `json:"status,omitempty"`
	UptimeSeconds   float64          `json:"uptime_seconds,omitempty"`
	StaleRejections int64            `json:"stale_rejections,omitempty"`
	Ops             map[string]int64 `json:"ops,omitempty"`
	Spans           []FleetSpanDoc   `json:"spans"`
	Breaker         *WorkerStatusDoc `json:"breaker,omitempty"`
	Load            *WorkerLoadDoc   `json:"load,omitempty"`
}

// FleetResponse is the GET /debug/fleet payload: every worker probed
// concurrently and joined with coordinator-side state — one request
// replacing a scrape of N daemons. ProbeMS is the wall time of the slowest
// probe (the fan-out runs them in parallel). Scope mirrors UsageResponse:
// "admin" on an open daemon, "tenant" under auth — then Tenant names the
// caller and each worker's span list is filtered to the corpora it may see.
type FleetResponse struct {
	Scope     string           `json:"scope,omitempty"`
	Tenant    string           `json:"tenant,omitempty"`
	Workers   []FleetWorkerDoc `json:"workers"`
	Reachable int              `json:"reachable"`
	ProbeMS   float64          `json:"probe_ms"`
}
