package pricing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bundling/internal/adoption"
)

func TestNewPriceListValidation(t *testing.T) {
	if _, err := NewPriceList(nil); err == nil {
		t.Error("expected error for empty list")
	}
	if _, err := NewPriceList([]float64{5, 0}); err == nil {
		t.Error("expected error for non-positive level")
	}
	pl, err := NewPriceList([]float64{9.99, 4.99, 9.99, 1.99})
	if err != nil {
		t.Fatal(err)
	}
	got := pl.Levels()
	want := []float64{1.99, 4.99, 9.99}
	if len(got) != len(want) {
		t.Fatalf("levels = %v, want %v (sorted, deduped)", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("levels = %v, want %v", got, want)
		}
	}
}

func TestLevelFor(t *testing.T) {
	pl, _ := NewPriceList([]float64{2, 5, 10})
	cases := []struct {
		v    float64
		want int
	}{
		{1, -1}, {2, 0}, {3, 0}, {5, 1}, {9.99, 1}, {10, 2}, {50, 2},
	}
	for _, c := range cases {
		if got := pl.LevelFor(c.v); got != c.want {
			t.Errorf("LevelFor(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestPriceFromListStep(t *testing.T) {
	pr := Default()
	pl, _ := NewPriceList([]float64{4.99, 9.99, 14.99})
	// WTPs 12, 10, 5: at 9.99 two adopters (19.98), at 4.99 three (14.97),
	// at 14.99 none.
	q := pr.PriceFromList([]float64{12, 10, 5}, pl)
	if math.Abs(q.Price-9.99) > 1e-9 || math.Abs(q.Revenue-19.98) > 1e-9 {
		t.Errorf("quote = %+v, want price 9.99 revenue 19.98", q)
	}
	if q.Adopters != 2 {
		t.Errorf("adopters = %g, want 2", q.Adopters)
	}
}

func TestPriceFromListEdge(t *testing.T) {
	pr := Default()
	if q := pr.PriceFromList([]float64{5}, nil); q.Revenue != 0 {
		t.Errorf("nil list: %+v", q)
	}
	pl, _ := NewPriceList([]float64{10})
	// WTP below every level: no sale.
	if q := pr.PriceFromList([]float64{5}, pl); q.Revenue != 0 {
		t.Errorf("unaffordable list: %+v", q)
	}
	// WTP exactly at a level adopts.
	if q := pr.PriceFromList([]float64{10}, pl); q.Revenue != 10 {
		t.Errorf("boundary WTP: %+v", q)
	}
}

func TestPriceFromListSigmoid(t *testing.T) {
	model, _ := adoption.New(1, 1, adoption.DefaultEpsilon)
	pr, _ := New(model, DefaultLevels)
	pl, _ := NewPriceList([]float64{5, 10, 15})
	q := pr.PriceFromList([]float64{10, 12, 14}, pl)
	if q.Revenue <= 0 {
		t.Fatalf("sigmoid list quote: %+v", q)
	}
	// Exact expectation at the chosen price.
	want := q.Price * model.ExpectedAdopters(q.Price, []float64{10, 12, 14})
	if math.Abs(q.Revenue-want) > 1e-9 {
		t.Errorf("revenue %g, want %g", q.Revenue, want)
	}
}

// TestCentsListMatchesBruteForce: pricing on the cent grid reaches the
// exact step optimum (any optimal price can be rounded down to a cent
// losing at most a cent per adopter).
func TestCentsListMatchesBruteForce(t *testing.T) {
	pr := Default()
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		wtps := make([]float64, n)
		for i := range wtps {
			wtps[i] = math.Round(rng.Float64()*3000) / 100 // cent-aligned
		}
		pl, err := CentsList(35)
		if err != nil {
			t.Fatal(err)
		}
		got := pr.PriceFromList(wtps, pl)
		want := bruteForceStep(wtps)
		if math.Abs(got.Revenue-want.Revenue) > 1e-9 {
			t.Fatalf("trial %d: cents list %g, brute force %g (wtps %v)",
				trial, got.Revenue, want.Revenue, wtps)
		}
	}
}

func TestCentsListValidation(t *testing.T) {
	if _, err := CentsList(0); err == nil {
		t.Error("expected error for max ≤ 0")
	}
	pl, err := CentsList(0.005) // below one cent still yields one level
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Levels()) != 1 {
		t.Errorf("levels = %v, want a single cent", pl.Levels())
	}
}

// TestQuickListNeverBeatsUnrestricted: restricting prices to a list can
// never beat the unrestricted fine-grid optimum.
func TestQuickListNeverBeatsUnrestricted(t *testing.T) {
	fine, _ := New(adoption.Step(), 5000)
	pr := Default()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		wtps := make([]float64, n)
		for i := range wtps {
			wtps[i] = rng.Float64() * 40
		}
		levels := make([]float64, 1+rng.Intn(8))
		for i := range levels {
			levels[i] = 0.5 + rng.Float64()*45
		}
		pl, err := NewPriceList(levels)
		if err != nil {
			return false
		}
		listQ := pr.PriceFromList(wtps, pl)
		freeQ := fine.PriceOptimal(wtps)
		// Allow the fine grid's own discretization slack.
		return listQ.Revenue <= freeQ.Revenue+freeQ.Adopters*40.0/5000+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDemandCurve(t *testing.T) {
	pr := Default()
	wtps := []float64{10, 20, 30}
	curve := pr.DemandCurve(wtps)
	if len(curve) != DefaultLevels {
		t.Fatalf("curve length = %d, want %d", len(curve), DefaultLevels)
	}
	// Demand is non-increasing in price; revenue = price × adopters.
	for i, pt := range curve {
		if pt.Revenue != pt.Price*pt.Adopters {
			t.Fatalf("point %d: revenue %g != price·adopters", i, pt.Revenue)
		}
		if i > 0 && pt.Adopters > curve[i-1].Adopters {
			t.Fatalf("demand increased from %g to %g at price %g",
				curve[i-1].Adopters, pt.Adopters, pt.Price)
		}
	}
	// The curve's max revenue equals PriceOptimal's.
	best := 0.0
	for _, pt := range curve {
		if pt.Revenue > best {
			best = pt.Revenue
		}
	}
	if q := pr.PriceOptimal(wtps); math.Abs(q.Revenue-best) > 1e-9 {
		t.Errorf("curve max %g vs PriceOptimal %g", best, q.Revenue)
	}
	if pr.DemandCurve(nil) != nil {
		t.Error("empty WTPs should give nil curve")
	}
}
