package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bundling"
)

// TestBatcherWindowZeroDrainsImmediately: with no gather window, a lone
// request executes in its own pass without waiting for company.
func TestBatcherWindowZeroDrainsImmediately(t *testing.T) {
	var executions atomic.Int64
	b := newBatcher(2, 0, 0, func(_ context.Context, offers [][]int) (*bundling.Configuration, error) {
		executions.Add(1)
		return &bundling.Configuration{}, nil
	})
	var sizes []int
	var mu sync.Mutex
	b.onBatch = func(size, _ int) { mu.Lock(); sizes = append(sizes, size); mu.Unlock() }

	start := time.Now()
	if _, _, err := b.do(context.Background(), "a", [][]int{{0}}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("window=0 drain took %v", d)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sizes) != 1 || sizes[0] != 1 {
		t.Fatalf("batch sizes = %v, want [1]", sizes)
	}
	if executions.Load() != 1 {
		t.Fatalf("executions = %d, want 1", executions.Load())
	}
}

// TestBatcherWindowGathers: with a positive window, distinct requests
// submitted within it ride one pass instead of two.
func TestBatcherWindowGathers(t *testing.T) {
	var executions atomic.Int64
	b := newBatcher(4, 300*time.Millisecond, 0, func(_ context.Context, offers [][]int) (*bundling.Configuration, error) {
		executions.Add(1)
		return &bundling.Configuration{Revenue: float64(offers[0][0])}, nil
	})
	var sizes [][2]int
	var mu sync.Mutex
	b.onBatch = func(size, unique int) { mu.Lock(); sizes = append(sizes, [2]int{size, unique}); mu.Unlock() }

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg, _, err := b.do(context.Background(), string(rune('a'+i)), [][]int{{i}})
			if err != nil {
				t.Errorf("req %d: %v", i, err)
				return
			}
			if cfg.Revenue != float64(i) {
				t.Errorf("req %d: got revenue %g", i, cfg.Revenue)
			}
		}(i)
		// The second submission lands well inside the first one's window.
		time.Sleep(30 * time.Millisecond)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(sizes) != 1 {
		t.Fatalf("batch passes = %v, want one gathered pass", sizes)
	}
	if sizes[0][0] != 2 || sizes[0][1] != 2 {
		t.Fatalf("gathered pass = %v, want size 2 with 2 distinct evaluations", sizes[0])
	}
	if executions.Load() != 2 {
		t.Fatalf("executions = %d, want 2 (distinct keys)", executions.Load())
	}
}

// TestServerBatchWindowPlumbed: the Config knob reaches the session
// batcher.
func TestServerBatchWindowPlumbed(t *testing.T) {
	s := New(Config{BatchWindow: 42 * time.Millisecond})
	defer s.Close()
	w := bundling.NewMatrix(3, 2)
	w.MustSet(0, 0, 5)
	w.MustSet(1, 1, 7)
	if err := Preload(s, "c", w, bundling.Options{}); err != nil {
		t.Fatal(err)
	}
	sess, ok := s.reg.peek("c")
	if !ok {
		t.Fatal("session missing")
	}
	if sess.batcher.window != 42*time.Millisecond {
		t.Fatalf("batcher window = %v, want 42ms", sess.batcher.window)
	}
}

// TestHealthDegradesWhenNotReady: a failing readiness gate turns /healthz
// into a 503 with the failure as detail; a passing gate restores 200.
func TestHealthDegradesWhenNotReady(t *testing.T) {
	var down atomic.Bool
	s := New(Config{Ready: func() error {
		if down.Load() {
			return errors.New("worker span 1 unreachable")
		}
		return nil
	}})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	check := func(wantStatus int, wantBody string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("healthz status = %d, want %d", resp.StatusCode, wantStatus)
		}
		var h HealthResponse
		if err := decodeInto(resp, &h); err != nil {
			t.Fatal(err)
		}
		if h.Status != wantBody {
			t.Fatalf("healthz status field = %q, want %q", h.Status, wantBody)
		}
		if wantStatus == http.StatusServiceUnavailable && h.Detail == "" {
			t.Fatal("degraded health should carry a detail")
		}
	}
	check(http.StatusOK, "ok")
	down.Store(true)
	check(http.StatusServiceUnavailable, "degraded")
	down.Store(false)
	check(http.StatusOK, "ok")
}

// decodeInto decodes a response body as JSON.
func decodeInto(resp *http.Response, v any) error {
	return json.NewDecoder(resp.Body).Decode(v)
}

// closableSolver wraps a Solver and records Close calls — the shape of the
// cluster coordinator, whose Close releases worker-side spans.
type closableSolver struct {
	Solver
	closed *atomic.Int64
}

func (c *closableSolver) Close() error {
	c.closed.Add(1)
	return nil
}

// TestCustomSolverFactory: an installed NewSolver factory builds every
// session engine, and engines implementing io.Closer are released when
// their session is replaced, deleted or dropped at shutdown.
func TestCustomSolverFactory(t *testing.T) {
	var built, closed atomic.Int64
	s := New(Config{NewSolver: func(w *bundling.Matrix, opts bundling.Options) (Solver, error) {
		built.Add(1)
		inner, err := bundling.NewSolver(w, opts)
		if err != nil {
			return nil, err
		}
		return &closableSolver{Solver: inner, closed: &closed}, nil
	}})
	defer s.Close()
	w := bundling.NewMatrix(2, 2)
	w.MustSet(0, 0, 3)
	if err := Preload(s, "f", w, bundling.Options{}); err != nil {
		t.Fatal(err)
	}
	if built.Load() != 1 {
		t.Fatalf("factory built %d solvers, want 1", built.Load())
	}
	// Replacing the session must close the old engine.
	if err := Preload(s, "f", w, bundling.Options{}); err != nil {
		t.Fatal(err)
	}
	if closed.Load() != 1 {
		t.Fatalf("replace closed %d engines, want 1", closed.Load())
	}
	// Deleting it must close the new one.
	if !t.Run("delete", func(t *testing.T) {
		req := httptest.NewRequest(http.MethodDelete, "/v1/corpora/f", nil)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusNoContent {
			t.Fatalf("delete status %d", rec.Code)
		}
	}) {
		return
	}
	if closed.Load() != 2 {
		t.Fatalf("delete closed %d engines total, want 2", closed.Load())
	}
}
