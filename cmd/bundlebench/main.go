// Command bundlebench regenerates the paper's tables and figures.
//
// Usage:
//
//	bundlebench -exp all                  # everything, bench scale
//	bundlebench -exp fig2 -scale full     # θ sweep at the paper's scale
//	bundlebench -exp wsp                  # Tables 4 & 5
//
// Experiments: table1, table2, fig2, fig3, fig4, fig5, fig6, fig7, wsp
// (Tables 4+5), case (Table 6), ablations, joint (incremental-vs-joint
// pricing study), welfare, stats (dataset summary), all. The extra `perf`
// experiment (not part of `all`) benchmarks the greedy and matching hot
// paths and, with -benchout, emits machine-readable JSON for the perf
// trajectory tracked in BENCH_greedy.json. The extra `serve` experiment
// (also not part of `all`) boots the bundled serving subsystem in-process
// and drives a concurrent mixed solve/evaluate load through the HTTP
// client, reporting requests/sec, tail latency, and cache/batching
// counters (BENCH_serve.json via -benchout). `cluster` benchmarks
// stripe-sharded distributed solving against the single-machine solver
// (BENCH_cluster.json); `chaos` re-runs the distributed evaluate path
// under injected transport faults at rising rates, recording throughput,
// tail latency and fallback rate while equivalence-checking every result
// (BENCH_chaos.json); `codec` certifies the binary columnar wire/disk
// format — payload bytes and throughput vs JSON plus all-algorithm
// equivalence over a binary-fed fleet (BENCH_codec.json).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"bundling/internal/config"
	"bundling/internal/experiments"
)

func main() {
	var (
		expFlag    = flag.String("exp", "all", "experiment: table1,table2,fig2,fig3,fig4,fig5,fig6,fig7,wsp,case,ablations,joint,welfare,stats,perf,serve,cluster,chaos,codec,mutate,all")
		scaleFlag  = flag.String("scale", "bench", "dataset scale: small, bench, full")
		lambda     = flag.Float64("lambda", experiments.DefaultLambda, "ratings→WTP conversion factor λ")
		theta      = flag.Float64("theta", 0, "bundling coefficient θ")
		k          = flag.Int("k", config.Unlimited, "max bundle size (0 = unlimited)")
		seed       = flag.Int64("seed", 42, "dataset generator seed")
		benchOut   = flag.String("benchout", "", "perf/serve experiments: write JSON results to this file (e.g. BENCH_greedy.json)")
		parallel   = flag.Int("parallel", 0, "candidate-pricing workers (0 = GOMAXPROCS); recorded in the perf report")
		serveConc  = flag.Int("serveconc", 8, "serve experiment: concurrent client workers")
		serveReqs  = flag.Int("servereqs", 600, "serve experiment: total load-phase requests")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (go tool pprof)")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file (go tool pprof)")
	)
	flag.Parse()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bundlebench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bundlebench:", err)
			os.Exit(1)
		}
	}
	err := run(*expFlag, *scaleFlag, *lambda, *theta, *k, *seed, *benchOut, *parallel, *serveConc, *serveReqs)
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, merr := os.Create(*memProfile)
		if merr != nil {
			fmt.Fprintln(os.Stderr, "bundlebench:", merr)
			os.Exit(1)
		}
		runtime.GC() // settle the heap so the profile shows live objects
		if werr := pprof.WriteHeapProfile(f); werr != nil {
			fmt.Fprintln(os.Stderr, "bundlebench:", werr)
			os.Exit(1)
		}
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bundlebench:", err)
		os.Exit(1)
	}
}

func run(exp, scaleName string, lambda, theta float64, k int, seed int64, benchOut string, parallel, serveConc, serveReqs int) error {
	var scale experiments.Scale
	switch scaleName {
	case "small":
		scale = experiments.SmallScale()
	case "bench":
		scale = experiments.BenchScale()
	case "full":
		scale = experiments.FullScale()
	default:
		return fmt.Errorf("unknown scale %q (want small, bench, full)", scaleName)
	}
	scale.Seed = seed

	params := config.DefaultParams()
	params.Theta = theta
	params.K = k
	params.Parallelism = parallel

	wants := map[string]bool{}
	for _, e := range strings.Split(exp, ",") {
		wants[strings.TrimSpace(e)] = true
	}
	all := wants["all"]
	need := func(name string) bool { return all || wants[name] }
	if benchOut != "" && !wants["perf"] && !wants["serve"] && !wants["cluster"] && !wants["chaos"] && !wants["codec"] && !wants["mutate"] {
		// perf, serve, cluster, chaos and codec are deliberately excluded
		// from `all`; reject rather than silently dropping the flag (and
		// never writing the file).
		return fmt.Errorf("-benchout requires -exp perf, -exp serve, -exp cluster, -exp chaos, -exp codec or -exp mutate")
	}

	// Table 1 needs no dataset.
	if need("table1") {
		res, err := experiments.Table1()
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	needEnv := false
	for _, e := range []string{"table2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "wsp", "case", "ablations", "joint", "welfare", "stats"} {
		if need(e) {
			needEnv = true
		}
	}
	// perf, serve and cluster are opt-in only (not part of `all`): perf
	// reruns each algorithm many times, and serve/cluster drive sustained
	// load, any of which would dwarf the table/figure regeneration.
	if wants["perf"] || wants["serve"] || wants["cluster"] || wants["chaos"] || wants["codec"] || wants["mutate"] {
		needEnv = true
	}
	if !needEnv {
		return nil
	}
	start := time.Now()
	env, err := experiments.Setup(scale, lambda)
	if err != nil {
		return err
	}
	st := env.DS.Summarize()
	fmt.Printf("dataset: %d users, %d items, %d ratings (generated in %.1fs)\n\n",
		st.Users, st.Items, st.Ratings, time.Since(start).Seconds())
	if wants["perf"] {
		if err := runPerf(env, scaleName, benchOut, params); err != nil {
			return fmt.Errorf("perf: %w", err)
		}
	}
	if wants["serve"] {
		if err := runServe(env, scaleName, benchOut, params, serveConc, serveReqs); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	if wants["cluster"] {
		if err := runCluster(env, scaleName, benchOut, params, serveConc, serveReqs); err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
	}
	if wants["chaos"] {
		if err := runChaos(env, scaleName, benchOut, params, serveConc, serveReqs); err != nil {
			return fmt.Errorf("chaos: %w", err)
		}
	}
	if wants["codec"] {
		if err := runCodec(env, scaleName, benchOut, params); err != nil {
			return fmt.Errorf("codec: %w", err)
		}
	}
	if wants["mutate"] {
		if err := runMutate(env, scaleName, benchOut, params); err != nil {
			return fmt.Errorf("mutate: %w", err)
		}
	}
	if need("stats") {
		fmt.Printf("star shares: %.0f%% %.0f%% %.0f%% %.0f%% %.0f%% (1..5)\n",
			st.StarShare[0]*100, st.StarShare[1]*100, st.StarShare[2]*100, st.StarShare[3]*100, st.StarShare[4]*100)
		fmt.Printf("price shares: %.0f%% <$10, %.0f%% $10-20, %.0f%% >$20\n\n",
			st.PriceShare[0]*100, st.PriceShare[1]*100, st.PriceShare[2]*100)
	}
	type step struct {
		name string
		fn   func() (interface{ Render() string }, error)
	}
	steps := []step{
		{"table2", func() (interface{ Render() string }, error) {
			return experiments.Table2(env, experiments.DefaultLambdas(), params)
		}},
		{"fig2", func() (interface{ Render() string }, error) {
			return experiments.Figure2(env, experiments.DefaultThetas(), params)
		}},
		{"fig3", func() (interface{ Render() string }, error) {
			return experiments.Figure3(env, experiments.DefaultGammas(), params)
		}},
		{"fig4", func() (interface{ Render() string }, error) {
			p := params
			return experiments.Figure4(env, experiments.DefaultAlphas(), p)
		}},
		{"fig5", func() (interface{ Render() string }, error) {
			return experiments.Figure5(env, experiments.DefaultSizes(), params)
		}},
		{"fig6", func() (interface{ Render() string }, error) {
			return experiments.Figure6(env, params)
		}},
		{"fig7", func() (interface{ Render() string }, error) {
			quarter := env.DS.Items / 4
			counts := []int{quarter, 2 * quarter, 3 * quarter, env.DS.Items}
			return experiments.Figure7(env, experiments.DefaultUserFactors(), counts, params)
		}},
		{"wsp", func() (interface{ Render() string }, error) {
			opts := experiments.DefaultWSPOptions()
			if scaleName == "full" {
				opts = experiments.PaperWSPOptions()
			}
			return experiments.WSP(env, opts, params)
		}},
		{"case", func() (interface{ Render() string }, error) {
			return experiments.CaseStudy(env, params, seed)
		}},
		{"ablations", func() (interface{ Render() string }, error) {
			return experiments.Ablations(env, params)
		}},
		{"joint", func() (interface{ Render() string }, error) {
			return experiments.JointPolicy(env, 30, params, seed)
		}},
		{"welfare", func() (interface{ Render() string }, error) {
			return experiments.Welfare(env, params)
		}},
	}
	for _, s := range steps {
		if !need(s.name) {
			continue
		}
		t0 := time.Now()
		res, err := s.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		fmt.Println(res.Render())
		fmt.Printf("(%s completed in %.1fs)\n\n", s.name, time.Since(t0).Seconds())
	}
	return nil
}
