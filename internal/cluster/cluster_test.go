package cluster

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"bundling"
)

// testMatrix builds a deterministic sparse corpus with enough consumers for
// several stripes at the test stripe size.
func testMatrix(t testing.TB, consumers, items int, seed int64) *bundling.Matrix {
	t.Helper()
	w := bundling.NewMatrix(consumers, items)
	rng := rand.New(rand.NewSource(seed))
	for u := 0; u < consumers; u++ {
		k := 2 + rng.Intn(4)
		for j := 0; j < k; j++ {
			w.MustSet(u, rng.Intn(items), 1+rng.Float64()*15)
		}
	}
	return w
}

// fleet builds n in-process workers and their transports.
func fleet(n int) ([]*Worker, []Transport) {
	workers := make([]*Worker, n)
	transports := make([]Transport, n)
	for i := range workers {
		workers[i] = NewWorker(WorkerConfig{})
		transports[i] = NewLocal(workers[i], "")
	}
	return workers, transports
}

// sameConfig asserts two configurations agree within 1e-9 (relative) on
// every aggregate and on the priced bundles themselves.
func sameConfig(t *testing.T, label string, got, want *bundling.Configuration) {
	t.Helper()
	close9 := func(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(b)) }
	if !close9(got.Revenue, want.Revenue) || !close9(got.Profit, want.Profit) ||
		!close9(got.Surplus, want.Surplus) || !close9(got.Utility, want.Utility) {
		t.Fatalf("%s: totals (%g,%g,%g,%g) != (%g,%g,%g,%g)", label,
			got.Revenue, got.Profit, got.Surplus, got.Utility,
			want.Revenue, want.Profit, want.Surplus, want.Utility)
	}
	if len(got.Bundles) != len(want.Bundles) {
		t.Fatalf("%s: %d bundles != %d", label, len(got.Bundles), len(want.Bundles))
	}
	for i := range got.Bundles {
		g, w := got.Bundles[i], want.Bundles[i]
		if len(g.Items) != len(w.Items) || !close9(g.Price, w.Price) || !close9(g.Revenue, w.Revenue) {
			t.Fatalf("%s: bundle %d (%v @%g) != (%v @%g)", label, i, g.Items, g.Price, w.Items, w.Price)
		}
		for k := range g.Items {
			if g.Items[k] != w.Items[k] {
				t.Fatalf("%s: bundle %d items %v != %v", label, i, g.Items, w.Items)
			}
		}
	}
	if len(got.Components) != len(want.Components) {
		t.Fatalf("%s: %d components != %d", label, len(got.Components), len(want.Components))
	}
}

// evalOffers is a fixed valid offer family (disjoint, so also laminar) for
// the equivalence tests.
func evalOffers() [][]int {
	return [][]int{{0, 1, 2}, {3, 7}, {4}, {5, 8, 9}}
}

// TestClusterMatchesLocal is the acceptance gate: all five algorithms, pure
// and mixed, must match the single-machine Solver within 1e-9 across 1, 2
// and 4 in-process workers — and so must the evaluate paths (aggregated
// under pure, vector gather under mixed).
func TestClusterMatchesLocal(t *testing.T) {
	w := testMatrix(t, 150, 12, 1)
	for _, strategy := range []bundling.Strategy{bundling.Pure, bundling.Mixed} {
		opts := bundling.Options{Strategy: strategy, Theta: -0.1, StripeSize: 16}
		local, err := bundling.NewSolver(w, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4} {
			_, transports := fleet(workers)
			cs, err := NewSolver(w, opts, Config{Workers: transports})
			if err != nil {
				t.Fatal(err)
			}
			if cs.Stats() != local.Stats() {
				t.Fatalf("strategy %v workers %d: stats %+v != %+v", strategy, workers, cs.Stats(), local.Stats())
			}
			for _, alg := range bundling.Algorithms() {
				label := alg.Name() + "/" + strategy.String()
				want, err := local.Solve(alg)
				if err != nil {
					t.Fatalf("%s local: %v", label, err)
				}
				got, err := cs.Solve(alg)
				if err != nil {
					t.Fatalf("%s cluster(%d): %v", label, workers, err)
				}
				sameConfig(t, label, got, want)
			}
			want, err := local.Evaluate(evalOffers())
			if err != nil {
				t.Fatal(err)
			}
			got, err := cs.Evaluate(evalOffers())
			if err != nil {
				t.Fatal(err)
			}
			sameConfig(t, "evaluate/"+strategy.String(), got, want)
			st := cs.ClusterStats()
			if st.RemoteCalls == 0 {
				t.Fatalf("strategy %v workers %d: no remote calls issued", strategy, workers)
			}
			if st.LocalFallbacks != 0 {
				t.Fatalf("strategy %v workers %d: %d unexpected local fallbacks", strategy, workers, st.LocalFallbacks)
			}
		}
	}
}

// TestClusterReupload: a corpus re-upload under the same worker key (new
// snapshot version) must invalidate the workers' spans — the stale spans
// are re-fed, and results match a fresh local solver on the new corpus.
func TestClusterReupload(t *testing.T) {
	w := testMatrix(t, 120, 10, 2)
	workers, transports := fleet(2)
	opts := bundling.Options{StripeSize: 16}
	cfg := Config{Workers: transports, Corpus: "shared"}

	s1, err := NewSolver(w, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1.exec.feeding.Wait()
	if _, err := s1.Solve(bundling.Matching()); err != nil {
		t.Fatal(err)
	}
	v1 := s1.Stats().Version

	// The re-uploaded corpus: same dimensions, different entries and a
	// bumped snapshot version.
	w.MustSet(0, 0, 42)
	w.MustSet(1, 1, 17)
	s2, err := NewSolver(w, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2.exec.feeding.Wait()
	if s2.Stats().Version == v1 {
		t.Fatal("re-upload did not bump the snapshot version")
	}
	local, err := bundling.NewSolver(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.Solve(bundling.Greedy())
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Solve(bundling.Greedy())
	if err != nil {
		t.Fatal(err)
	}
	sameConfig(t, "reupload", got, want)
	if st := s2.ClusterStats(); st.LocalFallbacks != 0 {
		t.Fatalf("re-fed spans should serve remotely, got %d fallbacks", st.LocalFallbacks)
	}
	// Every worker's health must now report the new session's snapshot
	// identity only (the nonce shipped on every RPC), never s1's.
	for i, wk := range workers {
		for _, sp := range wk.Health().Spans {
			if !strings.HasPrefix(sp.Corpus, "shared/") {
				continue
			}
			if sp.Version == s1.exec.version {
				t.Fatalf("worker %d still holds the replaced session's span", i)
			}
			if sp.Version != s2.exec.version {
				t.Fatalf("worker %d holds version %d, want %d", i, sp.Version, s2.exec.version)
			}
		}
	}
}

// flaky wraps a transport and fails every data-plane call while tripped.
type flaky struct {
	Transport
	down atomic.Bool
}

var errDown = errors.New("worker down")

func (f *flaky) Assign(ctx context.Context, corpus string, req *AssignRequest) error {
	if f.down.Load() {
		return errDown
	}
	return f.Transport.Assign(ctx, corpus, req)
}

func (f *flaky) Vector(ctx context.Context, corpus string, req VectorRequest) (VectorResponse, error) {
	if f.down.Load() {
		return VectorResponse{}, errDown
	}
	return f.Transport.Vector(ctx, corpus, req)
}

func (f *flaky) Union(ctx context.Context, corpus string, req UnionRequest) (VectorResponse, error) {
	if f.down.Load() {
		return VectorResponse{}, errDown
	}
	return f.Transport.Union(ctx, corpus, req)
}

func (f *flaky) Stats(ctx context.Context, corpus string, req StatsRequest) (StatsResponse, error) {
	if f.down.Load() {
		return StatsResponse{}, errDown
	}
	return f.Transport.Stats(ctx, corpus, req)
}

func (f *flaky) Hist(ctx context.Context, corpus string, req HistRequest) (HistResponse, error) {
	if f.down.Load() {
		return HistResponse{}, errDown
	}
	return f.Transport.Hist(ctx, corpus, req)
}

func (f *flaky) Health(ctx context.Context) (WorkerHealth, error) {
	if f.down.Load() {
		return WorkerHealth{}, errDown
	}
	return f.Transport.Health(ctx)
}

// TestClusterLazyFeed: a worker that was unreachable while the session was
// created (missing the span pre-feed) comes back up; the first request
// against it answers ErrSpan, gets the span re-fed, and serves — no local
// fallback involved.
func TestClusterLazyFeed(t *testing.T) {
	w := testMatrix(t, 96, 10, 6)
	_, transports := fleet(1)
	f0 := &flaky{Transport: transports[0]}
	f0.down.Store(true) // down during NewSolver: the pre-feed fails
	opts := bundling.Options{StripeSize: 16}
	cs, err := NewSolver(w, opts, Config{Workers: []Transport{f0}})
	if err != nil {
		t.Fatal(err)
	}
	cs.exec.feeding.Wait()   // the eager feed fails against the down worker
	st0 := cs.ClusterStats() // construction's traffic; measured as a delta below
	f0.down.Store(false)     // worker restarts, empty

	local, err := bundling.NewSolver(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.Evaluate(evalOffers())
	if err != nil {
		t.Fatal(err)
	}
	got, err := cs.Evaluate(evalOffers())
	if err != nil {
		t.Fatal(err)
	}
	sameConfig(t, "lazyfeed", got, want)
	st := cs.ClusterStats()
	if st.Refeeds == st0.Refeeds {
		t.Fatalf("expected a re-feed for the empty worker, stats %+v", st)
	}
	if st.LocalFallbacks != st0.LocalFallbacks {
		t.Fatalf("re-fed worker should serve remotely, stats %+v (was %+v)", st, st0)
	}
}

// TestClusterReplicaRetry: with one worker down, its spans are served by
// the replica worker (fed on demand), still matching local results, with no
// local fallback needed.
func TestClusterReplicaRetry(t *testing.T) {
	w := testMatrix(t, 140, 10, 3)
	_, transports := fleet(2)
	f0 := &flaky{Transport: transports[0]}
	opts := bundling.Options{StripeSize: 16}
	cs, err := NewSolver(w, opts, Config{Workers: []Transport{f0, transports[1]}})
	if err != nil {
		t.Fatal(err)
	}
	cs.exec.feeding.Wait()
	f0.down.Store(true)

	local, err := bundling.NewSolver(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.Solve(bundling.Matching())
	if err != nil {
		t.Fatal(err)
	}
	got, err := cs.Solve(bundling.Matching())
	if err != nil {
		t.Fatal(err)
	}
	sameConfig(t, "replica", got, want)
	st := cs.ClusterStats()
	if st.ReplicaRetries == 0 {
		t.Fatal("expected replica retries while worker 0 is down")
	}
	if st.LocalFallbacks != 0 {
		t.Fatalf("replica should cover worker 0; got %d local fallbacks", st.LocalFallbacks)
	}
}

// TestClusterLocalFallback: with the whole fleet down, every span degrades
// to the coordinator's local replica and results stay correct.
func TestClusterLocalFallback(t *testing.T) {
	w := testMatrix(t, 130, 10, 4)
	_, transports := fleet(1)
	f0 := &flaky{Transport: transports[0]}
	opts := bundling.Options{Strategy: bundling.Mixed, StripeSize: 16}
	cs, err := NewSolver(w, opts, Config{Workers: []Transport{f0}})
	if err != nil {
		t.Fatal(err)
	}
	cs.exec.feeding.Wait()
	f0.down.Store(true)

	local, err := bundling.NewSolver(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []bundling.Algorithm{bundling.Greedy(), bundling.FreqItemset(0)} {
		want, err := local.Solve(alg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cs.Solve(alg)
		if err != nil {
			t.Fatal(err)
		}
		sameConfig(t, "fallback/"+alg.Name(), got, want)
	}
	want, err := local.Evaluate(evalOffers())
	if err != nil {
		t.Fatal(err)
	}
	got, err := cs.Evaluate(evalOffers())
	if err != nil {
		t.Fatal(err)
	}
	sameConfig(t, "fallback/evaluate", got, want)
	if st := cs.ClusterStats(); st.LocalFallbacks == 0 {
		t.Fatal("expected local fallbacks with the fleet down")
	}
}

// TestClusterSharedKeyDistinctCorpora: two different corpora with
// identical matrix mutation counters under the same caller-chosen Corpus
// key must never alias. The second session's pre-feed fails (worker down),
// the worker comes back still holding the first corpus's span — and the
// session nonce check forces a re-feed instead of serving the old data.
func TestClusterSharedKeyDistinctCorpora(t *testing.T) {
	build := func(scale float64) *bundling.Matrix {
		w := bundling.NewMatrix(96, 8)
		for u := 0; u < 96; u++ { // identical Set counts ⇒ identical versions
			w.MustSet(u, u%8, scale*float64(u%13+1))
			w.MustSet(u, (u+3)%8, scale*float64(u%7+2))
		}
		return w
	}
	wA, wB := build(1), build(3)
	if wA.Version() != wB.Version() {
		t.Fatalf("test premise broken: versions %d != %d", wA.Version(), wB.Version())
	}
	_, transports := fleet(1)
	f0 := &flaky{Transport: transports[0]}
	opts := bundling.Options{StripeSize: 16}
	cfg := Config{Workers: []Transport{f0}, Corpus: "shared"}

	sA, err := NewSolver(wA, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sA.exec.feeding.Wait()
	if _, err := sA.Solve(bundling.Matching()); err != nil {
		t.Fatal(err) // worker now holds corpus A's span under "shared/0"
	}
	f0.down.Store(true) // B's pre-feed fails
	sB, err := NewSolver(wB, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sB.exec.feeding.Wait() // the eager feed fails against the down worker
	f0.down.Store(false)   // worker back, still holding A's span

	local, err := bundling.NewSolver(wB, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.Evaluate([][]int{{0, 1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sB.Evaluate([][]int{{0, 1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	sameConfig(t, "shared-key", got, want)
	if st := sB.ClusterStats(); st.Refeeds == 0 {
		t.Fatalf("expected the nonce mismatch to force a re-feed, stats %+v", st)
	}
}

// TestSolverCloseDropsSpans: Close must release the session's spans on
// every worker that may hold one, so replaced/evicted serving sessions do
// not pin fleet memory.
func TestSolverCloseDropsSpans(t *testing.T) {
	w := testMatrix(t, 120, 10, 12)
	workers, transports := fleet(2)
	cs, err := NewSolver(w, bundling.Options{StripeSize: 16}, Config{Workers: transports})
	if err != nil {
		t.Fatal(err)
	}
	cs.exec.feeding.Wait()
	if _, err := cs.Solve(bundling.Matching()); err != nil {
		t.Fatal(err)
	}
	held := 0
	for _, wk := range workers {
		held += len(wk.Health().Spans)
	}
	if held == 0 {
		t.Fatal("no spans assigned before close")
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	for i, wk := range workers {
		if n := len(wk.Health().Spans); n != 0 {
			t.Fatalf("worker %d still holds %d spans after close", i, n)
		}
	}
}

// TestReadyProbe: the readiness gate errors exactly while a worker is
// unreachable.
func TestReadyProbe(t *testing.T) {
	_, transports := fleet(2)
	f0 := &flaky{Transport: transports[0]}
	ready := Ready([]Transport{f0, transports[1]}, 0)
	if err := ready(); err != nil {
		t.Fatalf("healthy fleet reported not ready: %v", err)
	}
	f0.down.Store(true)
	if err := ready(); err == nil {
		t.Fatal("down worker not reported")
	}
	f0.down.Store(false)
	if err := ready(); err != nil {
		t.Fatalf("recovered fleet reported not ready: %v", err)
	}
}

// TestClusterConcurrentUse: concurrent solves and evaluates on one
// coordinator must race-cleanly produce correct results (run under -race in
// CI).
func TestClusterConcurrentUse(t *testing.T) {
	w := testMatrix(t, 120, 10, 5)
	_, transports := fleet(2)
	opts := bundling.Options{StripeSize: 16}
	cs, err := NewSolver(w, opts, Config{Workers: transports})
	if err != nil {
		t.Fatal(err)
	}
	local, err := bundling.NewSolver(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantSolve, err := local.Solve(bundling.Matching())
	if err != nil {
		t.Fatal(err)
	}
	wantEval, err := local.Evaluate(evalOffers())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			if g%2 == 0 {
				got, err := cs.Solve(bundling.Matching())
				if err == nil && math.Abs(got.Revenue-wantSolve.Revenue) > 1e-9*(1+wantSolve.Revenue) {
					err = errors.New("solve revenue mismatch")
				}
				done <- err
				return
			}
			got, err := cs.Evaluate(evalOffers())
			if err == nil && math.Abs(got.Revenue-wantEval.Revenue) > 1e-9*(1+wantEval.Revenue) {
				err = errors.New("evaluate revenue mismatch")
			}
			done <- err
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
