package pricing

import (
	"math"
	"math/rand"
	"testing"

	"bundling/internal/adoption"
)

// referencePriceMixed is the O(m·T) per-level rescan the deterministic
// sweep replaced; the fast path must reproduce it exactly.
func referencePriceMixed(p *Pricer, off MixedOffer) MixedQuote {
	if (off.Obj == Objective{}) {
		off.Obj = RevenueObjective()
	}
	var q MixedQuote
	var basePay, baseCost, baseSur float64
	for j, pay := range off.CurPay {
		basePay += pay
		baseCost += at0(off.CurCost, j)
		baseSur += at0(off.CurESurplus, j)
	}
	q.Baseline = basePay
	q.Revenue = basePay
	q.BaselineUtility = off.Obj.ProfitWeight*(basePay-baseCost) + (1-off.Obj.ProfitWeight)*baseSur
	q.Utility = q.BaselineUtility
	q.Surplus = baseSur
	if off.Hi <= off.Lo {
		return q
	}
	T := p.levels
	for t := 1; t <= T; t++ {
		pb := off.Lo + (off.Hi-off.Lo)*float64(t)/float64(T+1)
		rev, cost, sur, adopters := p.offerOutcome(off, pb)
		util := off.Obj.ProfitWeight*(rev-cost) + (1-off.Obj.ProfitWeight)*sur
		if util > q.Utility {
			q.Price, q.Revenue, q.Adopters = pb, rev, adopters
			q.Utility, q.Surplus = util, sur
			q.Feasible = true
		}
	}
	return q
}

// randomMixedOffer fabricates a plausible offer state: per-consumer bundle
// WTPs, current payments at or below WTP, and surpluses consistent with a
// prior purchase.
func randomMixedOffer(rng *rand.Rand, m int, withCosts bool) MixedOffer {
	off := MixedOffer{
		CurPay:     make([]float64, m),
		CurSurplus: make([]float64, m),
		WB:         make([]float64, m),
	}
	if withCosts {
		off.CurCost = make([]float64, m)
		off.CurESurplus = make([]float64, m)
	}
	var maxPart, sumPart float64
	for j := 0; j < m; j++ {
		wb := rng.Float64() * 40
		pay := rng.Float64() * wb
		off.WB[j] = wb
		off.CurPay[j] = pay
		if rng.Float64() < 0.7 {
			off.CurSurplus[j] = rng.Float64() * (wb - pay)
		}
		if withCosts {
			off.CurCost[j] = rng.Float64() * pay * 0.3
			off.CurESurplus[j] = off.CurSurplus[j] * 0.9
		}
		if pay > maxPart {
			maxPart = pay
		}
		sumPart += pay
	}
	off.Lo = maxPart
	off.Hi = maxPart + rng.Float64()*(sumPart-maxPart+5)
	return off
}

// TestPriceMixedStepMatchesReference cross-checks the O(m log m + T)
// threshold sweep against the per-level rescan across random offers,
// including the ε tie window and non-default objectives.
func TestPriceMixedStepMatchesReference(t *testing.T) {
	p := Default()
	if !p.Model().Deterministic() {
		t.Fatal("default model should be deterministic")
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		m := 1 + rng.Intn(50)
		withCosts := trial%3 == 0
		off := randomMixedOffer(rng, m, withCosts)
		if withCosts {
			off.BundleCost = rng.Float64() * 3
			off.Obj = Objective{ProfitWeight: 0.6, UnitCost: off.BundleCost}
		}
		got := p.PriceMixed(off)
		want := referencePriceMixed(p, off)
		if got.Feasible != want.Feasible {
			t.Fatalf("trial %d: feasible = %v, reference %v", trial, got.Feasible, want.Feasible)
		}
		check := func(name string, g, w float64) {
			if math.Abs(g-w) > 1e-9 {
				t.Fatalf("trial %d: %s = %.15g, reference %.15g", trial, name, g, w)
			}
		}
		check("price", got.Price, want.Price)
		check("revenue", got.Revenue, want.Revenue)
		check("baseline", got.Baseline, want.Baseline)
		check("adopters", got.Adopters, want.Adopters)
		check("utility", got.Utility, want.Utility)
		check("surplus", got.Surplus, want.Surplus)
	}
}

// TestPriceMixedStepTieWindow pins the ε tie-break semantics: a consumer
// whose threshold coincides with a grid price must resolve through
// ResolveSwitch identically on both paths.
func TestPriceMixedStepTieWindow(t *testing.T) {
	p := Default()
	T := float64(p.Levels())
	lo, hi := 10.0, 20.0
	// Place one consumer's switch threshold exactly on grid level 50.
	pb := lo + (hi-lo)*50/(T+1)
	surplus := 2.0
	off := MixedOffer{
		WB:         []float64{pb + surplus, 30, 12},
		CurPay:     []float64{9, 11, 8},
		CurSurplus: []float64{surplus, 1, 0.5},
		Lo:         lo,
		Hi:         hi,
	}
	got := p.PriceMixed(off)
	want := referencePriceMixed(p, off)
	if got != want {
		t.Fatalf("tie-window quote = %+v, reference %+v", got, want)
	}
}

// TestPriceMixedStepNegativeSurplus covers out-of-contract inputs an
// external caller could pass: negative current surplus, where the binding
// switch constraint becomes the bs ≥ -ε price guard rather than the
// surplus comparison.
func TestPriceMixedStepNegativeSurplus(t *testing.T) {
	p := Default()
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		off := randomMixedOffer(rng, 1+rng.Intn(30), false)
		for j := range off.CurSurplus {
			if rng.Float64() < 0.4 {
				off.CurSurplus[j] = -rng.Float64() * 20
			}
		}
		got := p.PriceMixed(off)
		want := referencePriceMixed(p, off)
		if got.Feasible != want.Feasible || math.Abs(got.Utility-want.Utility) > 1e-9 {
			t.Fatalf("trial %d: quote = %+v, reference %+v", trial, got, want)
		}
		if !got.Feasible {
			continue
		}
		// Negative surpluses flatten the revenue curve enough that distinct
		// price levels can tie in utility to within float-reordering noise;
		// the two paths may then pick different tied optima. The contract
		// is that the fast path's chosen price is optimal per the reference
		// evaluation, not that the argmax index matches.
		rev, cost, sur, _ := p.offerOutcome(off, got.Price)
		util := 1*(rev-cost) + 0*sur
		if math.Abs(util-want.Utility) > 1e-9 {
			t.Fatalf("trial %d: fast price %.12g has reference utility %.12g, optimum %.12g",
				trial, got.Price, util, want.Utility)
		}
	}
}

// TestPriceMixedStochasticUnchanged ensures the sigmoid model still routes
// through the generic evaluation.
func TestPriceMixedStochasticUnchanged(t *testing.T) {
	model, err := adoption.New(2.0, 1, adoption.DefaultEpsilon)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(model, DefaultLevels)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	off := randomMixedOffer(rng, 25, false)
	got := p.PriceMixed(off)
	want := referencePriceMixed(p, off)
	if got != want {
		t.Fatalf("stochastic quote = %+v, reference %+v", got, want)
	}
}
