package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"bundling/internal/codec"
	"bundling/internal/obs"
)

// feedBytesBin and feedBytesJSON count span-feed request-body bytes shipped
// by HTTP transports, by codec — the process-wide source of the
// bundled_feed_bytes_total{codec=...} metric. Local transports bypass
// serialization and count nothing.
var feedBytesBin, feedBytesJSON atomic.Int64

// FeedBytes reports the cumulative span-feed bytes shipped over HTTP
// transports, per codec.
func FeedBytes() (bin, legacyJSON int64) {
	return feedBytesBin.Load(), feedBytesJSON.Load()
}

// Transport is one worker as the coordinator sees it. Two implementations
// exist: Local wraps an in-process *Worker with direct method calls — the
// deterministic test and single-binary mode — and HTTP speaks the
// bundleworker daemon's JSON API. A Transport must be safe for concurrent
// use; the coordinator fans every request out across spans from multiple
// goroutines.
type Transport interface {
	Assign(ctx context.Context, corpus string, span *AssignRequest) error
	Drop(ctx context.Context, corpus string) error
	Vector(ctx context.Context, corpus string, req VectorRequest) (VectorResponse, error)
	Union(ctx context.Context, corpus string, req UnionRequest) (VectorResponse, error)
	Stats(ctx context.Context, corpus string, req StatsRequest) (StatsResponse, error)
	Hist(ctx context.Context, corpus string, req HistRequest) (HistResponse, error)
	Health(ctx context.Context) (WorkerHealth, error)
	// Addr identifies the worker in logs, stats and health details.
	Addr() string
}

// DeltaTransport is the optional span-delta extension of Transport: rebasing
// a resident span under a new corpus key by shipping only the mutated cells.
// The coordinator asserts it per worker; a transport (or wrapper) that does
// not implement it — or answers any error — simply gets the full span feed
// instead, so mixed fleets stay correct.
type DeltaTransport interface {
	Delta(ctx context.Context, corpus string, req DeltaRequest) error
}

// errDeltaUnsupported is what a wrapper transport answers when the transport
// it wraps has no delta support; the coordinator treats it like any other
// delta failure and ships the full span.
var errDeltaUnsupported = errors.New("cluster: wrapped transport does not support span deltas")

// Local is the in-process transport: direct calls into a *Worker in the
// same address space, bypassing serialization entirely.
type Local struct {
	W    *Worker
	Name string // optional label for stats/health (default "inproc")
}

// NewLocal wraps a worker in an in-process transport.
func NewLocal(w *Worker, name string) *Local { return &Local{W: w, Name: name} }

func (l *Local) Assign(_ context.Context, corpus string, req *AssignRequest) error {
	return l.W.Assign(corpus, req.Span)
}

func (l *Local) Delta(_ context.Context, corpus string, req DeltaRequest) error {
	return l.W.Delta(corpus, req)
}

func (l *Local) Drop(_ context.Context, corpus string) error {
	l.W.Drop(corpus)
	return nil
}

func (l *Local) Vector(_ context.Context, corpus string, req VectorRequest) (VectorResponse, error) {
	return l.W.Vector(corpus, req)
}

func (l *Local) Union(_ context.Context, corpus string, req UnionRequest) (VectorResponse, error) {
	return l.W.Union(corpus, req)
}

func (l *Local) Stats(_ context.Context, corpus string, req StatsRequest) (StatsResponse, error) {
	return l.W.Stats(corpus, req)
}

func (l *Local) Hist(_ context.Context, corpus string, req HistRequest) (HistResponse, error) {
	return l.W.Hist(corpus, req)
}

func (l *Local) Health(_ context.Context) (WorkerHealth, error) {
	return l.W.Health(), nil
}

func (l *Local) Addr() string {
	if l.Name != "" {
		return l.Name
	}
	return "inproc"
}

// HTTP speaks the bundleworker API at a base URL: binary codec span feeds
// (falling back to JSON against a worker that predates the codec) and JSON
// for everything else.
type HTTP struct {
	base string
	hc   *http.Client
	// jsonAssign sticks after a worker rejects a binary feed: a fleet mixing
	// pre-codec workers pays the one failed probe per transport, not per feed.
	jsonAssign atomic.Bool
	// Per-worker wire accounting: request/response body bytes across all
	// RPCs, plus span-feed bytes split by codec (the fleet view's
	// bytes-by-codec column; the package-level FeedBytes counters stay the
	// process-wide /metrics source).
	bytesOut, bytesIn   atomic.Int64
	feedBin, feedLegacy atomic.Int64
}

// TransportBytes is one HTTP transport's cumulative wire traffic.
type TransportBytes struct {
	BytesOut, BytesIn   int64 // request payloads sent / response bodies read
	FeedBin, FeedLegacy int64 // span-feed payload bytes by codec (binary / JSON)
}

// Bytes reports this transport's cumulative wire traffic. Local transports
// move no bytes and do not implement it.
func (h *HTTP) Bytes() TransportBytes {
	return TransportBytes{
		BytesOut:   h.bytesOut.Load(),
		BytesIn:    h.bytesIn.Load(),
		FeedBin:    h.feedBin.Load(),
		FeedLegacy: h.feedLegacy.Load(),
	}
}

// countingReader counts response-body bytes as they are decoded.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// defaultClient is the transport's shared HTTP client: a bounded dial
// timeout so a blackholed worker fails fast instead of hanging a feed, and
// an idle pool sized for scatter/gather fan-out (the net/http default of 2
// idle connections per host would redial on nearly every concurrent RPC).
var defaultClient = &http.Client{
	Transport: &http.Transport{
		DialContext:         (&net.Dialer{Timeout: 5 * time.Second, KeepAlive: 30 * time.Second}).DialContext,
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     90 * time.Second,
	},
}

// NewHTTP returns a transport for the bundleworker at baseURL (scheme
// optional; "host:port" gets "http://"). httpClient nil selects the
// package's pooled default client.
func NewHTTP(baseURL string, httpClient *http.Client) *HTTP {
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	if httpClient == nil {
		httpClient = defaultClient
	}
	return &HTTP{base: strings.TrimRight(baseURL, "/"), hc: httpClient}
}

func (h *HTTP) Addr() string { return h.base }

// statusError is a non-2xx worker reply that is not a span rejection; the
// status code stays inspectable for content negotiation.
type statusError struct {
	addr string
	code int
	msg  string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("cluster: %s: %d: %s", e.addr, e.code, e.msg)
}

// do issues one JSON request. 409 maps to ErrSpan (re-feed and retry); other
// non-2xx statuses surface as errors.
func (h *HTTP) do(ctx context.Context, method, path string, in, out any) error {
	var buf []byte
	if in != nil {
		var err error
		if buf, err = json.Marshal(in); err != nil {
			return err
		}
	}
	return h.doBytes(ctx, method, path, "application/json", buf, out)
}

// doBytes issues one request with an explicit body encoding — the seam the
// binary span feed shares with the JSON RPCs.
func (h *HTTP) doBytes(ctx context.Context, method, path, contentType string, payload []byte, out any) error {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, h.base+path, body)
	if err != nil {
		return err
	}
	if payload != nil {
		req.Header.Set("Content-Type", contentType)
	}
	// Propagate the caller's trace so the worker can record its side of the
	// RPC under the same trace ID; a no-op for untraced contexts.
	obs.Inject(ctx, req.Header)
	h.bytesOut.Add(int64(len(payload)))
	resp, err := h.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	cr := &countingReader{r: resp.Body}
	defer func() { h.bytesIn.Add(cr.n) }()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var apiErr ErrorResponse
		msg := resp.Status
		if json.NewDecoder(cr).Decode(&apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		if resp.StatusCode == http.StatusConflict {
			// 409 is the worker's explicit span-missing/stale rejection; a
			// 404 could just as well be a wrong -workers address pointing at
			// some other HTTP service, which must not trigger the span
			// re-feed ladder on every call.
			return fmt.Errorf("%w: %s: %s", ErrSpan, h.base, msg)
		}
		return &statusError{addr: h.base, code: resp.StatusCode, msg: msg}
	}
	if out == nil {
		// Drain so net/http can reuse the connection for the next RPC.
		_, _ = io.Copy(io.Discard, cr)
		return nil
	}
	return json.NewDecoder(cr).Decode(out)
}

func (h *HTTP) spanPath(corpus, op string) string {
	p := "/v1/spans/" + url.PathEscape(corpus)
	if op != "" {
		p += "/" + op
	}
	return p
}

// Assign feeds a span, binary codec first: on realistic corpora the codec
// body is well under half the JSON bytes, and the feed is the fattest RPC
// the cluster sends. A worker that rejects the binary body (400/415 — it
// predates the codec) gets the same span re-sent as JSON, and the transport
// sticks to JSON from then on.
func (h *HTTP) Assign(ctx context.Context, corpus string, req *AssignRequest) error {
	path := h.spanPath(corpus, "")
	if !h.jsonAssign.Load() {
		_, esp := obs.StartSpan(ctx, "feed_encode")
		body := codec.EncodeAssign(corpus, req.Span)
		esp.Tag("codec", "binary")
		esp.Tag("bytes", len(body))
		esp.End()
		err := h.doBytes(ctx, http.MethodPost, path, codec.ContentType, body, nil)
		if err == nil {
			feedBytesBin.Add(int64(len(body)))
			h.feedBin.Add(int64(len(body)))
			return nil
		}
		var se *statusError
		if !errors.As(err, &se) || (se.code != http.StatusBadRequest && se.code != http.StatusUnsupportedMediaType) {
			return err // network fault or a worker-side failure, not a codec rejection
		}
	}
	_, esp := obs.StartSpan(ctx, "feed_encode")
	buf, err := json.Marshal(req)
	esp.Tag("codec", "json")
	esp.Tag("bytes", len(buf))
	esp.End()
	if err != nil {
		return err
	}
	if err := h.doBytes(ctx, http.MethodPost, path, "application/json", buf, nil); err != nil {
		return err
	}
	feedBytesJSON.Add(int64(len(buf)))
	h.feedLegacy.Add(int64(len(buf)))
	h.jsonAssign.Store(true)
	return nil
}

// Delta ships a span rebase as a binary codec delta envelope — the payload
// is a few cells, so there is no JSON fallback to negotiate: a worker that
// cannot decode it answers an error and the coordinator full-feeds instead.
func (h *HTTP) Delta(ctx context.Context, corpus string, req DeltaRequest) error {
	d := codec.DeltaFromCells(req.BaseCorpus, 0, req.Cells)
	d.FromVersion = req.FromVersion
	d.ToVersion = req.ToVersion
	return h.doBytes(ctx, http.MethodPost, h.spanPath(corpus, "delta"), codec.ContentType, codec.EncodeDelta(d), nil)
}

func (h *HTTP) Drop(ctx context.Context, corpus string) error {
	return h.do(ctx, http.MethodDelete, h.spanPath(corpus, ""), nil, nil)
}

func (h *HTTP) Vector(ctx context.Context, corpus string, req VectorRequest) (VectorResponse, error) {
	var resp VectorResponse
	err := h.do(ctx, http.MethodPost, h.spanPath(corpus, "vector"), req, &resp)
	return resp, err
}

func (h *HTTP) Union(ctx context.Context, corpus string, req UnionRequest) (VectorResponse, error) {
	var resp VectorResponse
	err := h.do(ctx, http.MethodPost, h.spanPath(corpus, "union"), req, &resp)
	return resp, err
}

func (h *HTTP) Stats(ctx context.Context, corpus string, req StatsRequest) (StatsResponse, error) {
	var resp StatsResponse
	err := h.do(ctx, http.MethodPost, h.spanPath(corpus, "stats"), req, &resp)
	return resp, err
}

func (h *HTTP) Hist(ctx context.Context, corpus string, req HistRequest) (HistResponse, error) {
	var resp HistResponse
	err := h.do(ctx, http.MethodPost, h.spanPath(corpus, "hist"), req, &resp)
	return resp, err
}

func (h *HTTP) Health(ctx context.Context) (WorkerHealth, error) {
	var resp WorkerHealth
	err := h.do(ctx, http.MethodGet, "/healthz", nil, &resp)
	return resp, err
}

// Transports builds HTTP transports for a comma-separated worker address
// list — the form the bundled -workers flag takes.
func Transports(addrs string, hc *http.Client) ([]Transport, error) {
	var out []Transport
	for _, a := range strings.Split(addrs, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		out = append(out, NewHTTP(a, hc))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: no worker addresses in %q", addrs)
	}
	return out, nil
}
