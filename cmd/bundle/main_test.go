package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bundling"
)

func TestRunDemoText(t *testing.T) {
	var buf bytes.Buffer
	if err := run("", true, "mixed", "matching", 0, 0, 1.25, 0, "text", &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "mixed bundling") || !strings.Contains(out, "expected revenue") {
		t.Errorf("text output:\n%s", out)
	}
}

func TestRunDemoJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run("", true, "pure", "greedy", 0.05, 4, 1.25, 0, "json", &buf); err != nil {
		t.Fatal(err)
	}
	var r bundling.Report
	if err := json.Unmarshal(buf.Bytes(), &r); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if r.Strategy != "pure" || r.Revenue <= 0 {
		t.Errorf("report: %+v", r)
	}
	for _, off := range r.Offers {
		if len(off.Items) > 4 {
			t.Errorf("offer %v exceeds k=4", off.Items)
		}
	}
}

func TestRunFromCSVFile(t *testing.T) {
	ds, err := bundling.GenerateDataset(bundling.DatasetConfig{
		Users: 100, Items: 25, RatingsPerUser: 10, MinDegree: 3, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ratings.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var buf bytes.Buffer
	if err := run(path, false, "pure", "components", 0, 0, 1.25, 0, "text", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pure bundling") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	cases := []struct {
		name string
		err  func() error
	}{
		{"no input", func() error { return run("", false, "pure", "matching", 0, 0, 1.25, 0, "text", &buf) }},
		{"missing file", func() error { return run("/no/such/file.csv", false, "pure", "matching", 0, 0, 1.25, 0, "text", &buf) }},
		{"bad strategy", func() error { return run("", true, "hybrid", "matching", 0, 0, 1.25, 0, "text", &buf) }},
		{"bad algo", func() error { return run("", true, "pure", "quantum", 0, 0, 1.25, 0, "text", &buf) }},
		{"bad format", func() error { return run("", true, "pure", "matching", 0, 0, 1.25, 0, "xml", &buf) }},
		{"bad lambda", func() error { return run("", true, "pure", "matching", 0, 0, 0.5, 0, "text", &buf) }},
		{"bad theta", func() error { return run("", true, "pure", "matching", -2, 0, 1.25, 0, "text", &buf) }},
	}
	for _, c := range cases {
		if c.err() == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
