package server

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
	"time"

	"bundling"
)

// session is one named, long-lived corpus session: an indexed
// bundling.Solver plus the serving plumbing layered on it (per-session
// evaluate batcher, cache-key identity). Sessions are immutable after
// creation — a re-upload builds a new session under the same ID — so any
// number of handler goroutines may share one.
type session struct {
	id        string
	version   int    // registry upload generation for this ID
	solver    Solver // local bundling.Solver or the cluster coordinator
	opts      bundling.Options
	stats     bundling.SolverStats
	createdAt time.Time
	batcher   *batcher

	elem *list.Element // registry LRU slot, guarded by the registry mutex
}

// cacheKey builds a result-cache key scoped to this exact corpus snapshot:
// the session's ID, its upload generation and the matrix version the solver
// indexed. A re-uploaded corpus changes the generation (and in practice the
// matrix version), so stale results can never be served across versions.
func (s *session) cacheKey(op, detail string) string {
	return fmt.Sprintf("%s@%d.%d|%s|%s", s.id, s.version, s.stats.Version, op, detail)
}

// info snapshots the session for listings.
func (s *session) info() CorpusInfo {
	return CorpusInfo{
		ID:        s.id,
		Version:   s.version,
		Consumers: s.stats.Consumers,
		Items:     s.stats.Items,
		Entries:   s.stats.Entries,
		Stripes:   s.stats.Stripes,
		TotalWTP:  s.stats.TotalWTP,
		Options:   NewOptionsDoc(s.opts),
		CreatedAt: s.createdAt,
	}
}

// registry holds the live sessions keyed by corpus ID, bounded by an LRU
// eviction policy: creating a session beyond the cap evicts the
// least-recently-used one. Upload generations survive eviction (versions
// map), so an ID that is evicted and later re-created continues its version
// sequence and can never collide with cached results of an earlier life.
type registry struct {
	mu       sync.Mutex
	max      int
	sessions map[string]*session
	lru      *list.List     // front = most recently used; values are *session
	versions map[string]int // last assigned version per ID, survives eviction
	seq      int            // server-assigned ID counter
}

func newRegistry(max int) *registry {
	if max < 1 {
		max = 1
	}
	return &registry{
		max:      max,
		sessions: make(map[string]*session),
		lru:      list.New(),
		versions: make(map[string]int),
	}
}

// nextID returns a fresh server-assigned corpus ID.
func (r *registry) nextID() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		r.seq++
		id := fmt.Sprintf("corpus-%d", r.seq)
		if _, taken := r.sessions[id]; !taken {
			return id
		}
	}
}

// put registers (or replaces) a session under sess.id, assigns its upload
// generation, and returns the session it replaced (nil if the ID was new)
// plus the sessions evicted to stay within the bound. The caller releases
// replaced and evicted sessions' engines.
func (r *registry) put(sess *session) (replaced *session, evicted []*session) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.versions[sess.id]++
	sess.version = r.versions[sess.id]
	if old, ok := r.sessions[sess.id]; ok {
		r.lru.Remove(old.elem)
		replaced = old
	}
	sess.elem = r.lru.PushFront(sess)
	r.sessions[sess.id] = sess
	for len(r.sessions) > r.max {
		tail := r.lru.Back()
		victim := tail.Value.(*session)
		r.lru.Remove(tail)
		delete(r.sessions, victim.id)
		evicted = append(evicted, victim)
	}
	return replaced, evicted
}

// get returns the session for id, refreshing its LRU recency.
func (r *registry) get(id string) (*session, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sess, ok := r.sessions[id]
	if !ok {
		return nil, false
	}
	r.lru.MoveToFront(sess.elem)
	return sess, true
}

// delete removes and returns the session for id (nil if absent); the
// caller releases its engine.
func (r *registry) delete(id string) *session {
	r.mu.Lock()
	defer r.mu.Unlock()
	sess, ok := r.sessions[id]
	if !ok {
		return nil
	}
	r.lru.Remove(sess.elem)
	delete(r.sessions, id)
	return sess
}

// list snapshots every live session's info, sorted by ID.
func (r *registry) list() []CorpusInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]CorpusInfo, 0, len(r.sessions))
	for _, sess := range r.sessions {
		out = append(out, sess.info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// len returns the live session count.
func (r *registry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// clear drops and returns every session (graceful shutdown); the caller
// releases their engines.
func (r *registry) clear() []*session {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*session, 0, len(r.sessions))
	for _, sess := range r.sessions {
		out = append(out, sess)
	}
	r.sessions = make(map[string]*session)
	r.lru.Init()
	return out
}
