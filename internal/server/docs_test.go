package server_test

// docs_test keeps docs/API.md honest: every fenced JSON example must
// parse, the documented endpoint table must match the server's routes, the
// documented request examples must be accepted verbatim by a live server,
// the live responses must not carry fields the doc omits, and every
// documented error code must actually be producible (500 excepted — it
// needs a failing disk).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"bundling"
	"bundling/internal/server"
)

const apiDocPath = "../../docs/API.md"

// jsonBlocks extracts the fenced ```json blocks of a markdown file.
func jsonBlocks(t *testing.T, md string) []string {
	t.Helper()
	var blocks []string
	for {
		start := strings.Index(md, "```json\n")
		if start < 0 {
			break
		}
		md = md[start+len("```json\n"):]
		end := strings.Index(md, "```")
		if end < 0 {
			t.Fatal("unterminated json block")
		}
		blocks = append(blocks, md[:end])
		md = md[end+3:]
	}
	return blocks
}

// docBlock finds the unique example block containing every marker; a
// marker prefixed "!" must be absent.
func docBlock(t *testing.T, blocks []string, markers ...string) string {
	t.Helper()
	var found []string
	for _, b := range blocks {
		ok := true
		for _, m := range markers {
			if neg, isNeg := strings.CutPrefix(m, "!"); isNeg {
				if strings.Contains(b, neg) {
					ok = false
					break
				}
			} else if !strings.Contains(b, m) {
				ok = false
				break
			}
		}
		if ok {
			found = append(found, b)
		}
	}
	if len(found) != 1 {
		t.Fatalf("%d blocks match markers %v, want exactly 1", len(found), markers)
	}
	return found[0]
}

// liveKeysDocumented asserts every top-level key of a live JSON object
// appears in the documented example object — the server must not grow
// response fields the reference omits.
func liveKeysDocumented(t *testing.T, label, liveJSON, docJSON string) {
	t.Helper()
	var live, doc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(liveJSON), &live); err != nil {
		t.Fatalf("%s: live response: %v", label, err)
	}
	if err := json.Unmarshal([]byte(docJSON), &doc); err != nil {
		t.Fatalf("%s: doc example: %v", label, err)
	}
	for key := range live {
		if _, ok := doc[key]; !ok {
			t.Errorf("%s: live response field %q is not in the documented example", label, key)
		}
	}
}

func TestAPIDocMatchesServer(t *testing.T) {
	raw, err := os.ReadFile(apiDocPath)
	if err != nil {
		t.Fatalf("read %s: %v", apiDocPath, err)
	}
	md := string(raw)
	blocks := jsonBlocks(t, md)
	for i, b := range blocks {
		if !json.Valid([]byte(b)) {
			t.Errorf("json block %d does not parse:\n%s", i, b)
		}
	}

	// The documented endpoint table must list exactly the served routes.
	routeRE := regexp.MustCompile("\\| `((?:GET|POST|PATCH|DELETE) /[^`]*)` \\|")
	documented := map[string]bool{}
	for _, m := range routeRE.FindAllStringSubmatch(md, -1) {
		documented[m[1]] = true
	}
	served := []string{
		"POST /v1/corpora", "GET /v1/corpora", "GET /v1/corpora/{id}",
		"PATCH /v1/corpora/{id}", "DELETE /v1/corpora/{id}",
		"POST /v1/corpora/{id}/solve",
		"POST /v1/corpora/{id}/evaluate", "GET /v1/usage",
		"GET /healthz", "GET /metrics",
		"GET /debug/traces", "GET /debug/fleet",
	}
	if len(documented) != len(served) {
		t.Errorf("doc lists %d routes, server has %d", len(documented), len(served))
	}
	for _, r := range served {
		if !documented[r] {
			t.Errorf("route %q not documented", r)
		}
	}

	// Drive a live server with the doc's own example payloads.
	srv := server.New(server.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	upload := docBlock(t, blocks, `"matrix"`, `"id": "shop"`)
	code, body := do(t, http.MethodPost, ts.URL+"/v1/corpora", "", upload)
	if code != http.StatusCreated {
		t.Fatalf("doc upload example: %d: %s", code, body)
	}
	liveKeysDocumented(t, "CorpusInfo", body, docBlock(t, blocks, `"created_at"`, `"total_wtp"`, `!"corpora"`, `!"applied"`))

	patchReq := docBlock(t, blocks, `"cells"`, `"if_generation"`)
	code, body = do(t, http.MethodPatch, ts.URL+"/v1/corpora/shop", "", patchReq)
	if code != http.StatusOK {
		t.Fatalf("doc patch example: %d: %s", code, body)
	}
	liveKeysDocumented(t, "MutateCorpusResponse", body, docBlock(t, blocks, `"applied"`))

	csvUpload := docBlock(t, blocks, `"format": "csv"`)
	if code, body := do(t, http.MethodPost, ts.URL+"/v1/corpora", "", csvUpload); code != http.StatusCreated {
		t.Fatalf("doc csv upload example: %d: %s", code, body)
	}

	if code, body := do(t, http.MethodGet, ts.URL+"/v1/corpora", "", ""); code != http.StatusOK {
		t.Fatalf("list: %d: %s", code, body)
	}
	if code, body := do(t, http.MethodGet, ts.URL+"/v1/corpora/shop", "", ""); code != http.StatusOK {
		t.Fatalf("info: %d: %s", code, body)
	}

	solveReq := docBlock(t, blocks, `"algorithm": "matching"`, `!"config"`)
	code, body = do(t, http.MethodPost, ts.URL+"/v1/corpora/shop/solve", "", solveReq)
	if code != http.StatusOK {
		t.Fatalf("doc solve example: %d: %s", code, body)
	}
	liveKeysDocumented(t, "SolveResponse", body, docBlock(t, blocks, `"corpus"`, `"config"`))

	evalReq := docBlock(t, blocks, `"offers"`)
	if code, body := do(t, http.MethodPost, ts.URL+"/v1/corpora/shop/evaluate", "", evalReq); code != http.StatusOK {
		t.Fatalf("doc evaluate example: %d: %s", code, body)
	}

	code, usageBody := do(t, http.MethodGet, ts.URL+"/v1/usage", "", "")
	if code != http.StatusOK {
		t.Fatalf("usage: %d: %s", code, usageBody)
	}
	liveKeysDocumented(t, "UsageResponse", usageBody, docBlock(t, blocks, `"scope"`, `"tenants"`))

	code, healthBody := do(t, http.MethodGet, ts.URL+"/healthz", "", "")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	liveKeysDocumented(t, "HealthResponse", healthBody, docBlock(t, blocks, `"status"`, `"sessions"`))

	if code, _ := do(t, http.MethodGet, ts.URL+"/metrics", "", ""); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if code, _ := do(t, http.MethodDelete, ts.URL+"/v1/corpora/shop", "", ""); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}

	// The fleet view needs a coordinator; a stub Fleet hook stands in so the
	// documented response shape is still checked against a live handler.
	fsrv := server.New(server.Config{Fleet: func(ctx context.Context) server.FleetResponse {
		return server.FleetResponse{Workers: []server.FleetWorkerDoc{}, ProbeMS: 0.1}
	}})
	defer fsrv.Close()
	fts := httptest.NewServer(fsrv.Handler())
	defer fts.Close()
	code, fleetBody := do(t, http.MethodGet, fts.URL+"/debug/fleet", "", "")
	if code != http.StatusOK {
		t.Fatalf("fleet: %d: %s", code, fleetBody)
	}
	liveKeysDocumented(t, "FleetResponse", fleetBody, docBlock(t, blocks, `"probe_ms"`))
}

func TestAPIDocErrorCodesProducible(t *testing.T) {
	raw, err := os.ReadFile(apiDocPath)
	if err != nil {
		t.Fatalf("read %s: %v", apiDocPath, err)
	}
	md := string(raw)
	codeRE := regexp.MustCompile("\\| `(\\d{3})` \\|")
	documentedCodes := map[int]bool{}
	for _, m := range codeRE.FindAllStringSubmatch(md, -1) {
		var c int
		fmt.Sscanf(m[1], "%d", &c)
		documentedCodes[c] = true
	}

	produced := map[int]bool{
		// 500 is documented but needs a failing disk to produce; its path
		// is covered by code review, not this test.
		http.StatusInternalServerError: true,
	}
	record := func(label string, got, want int, body string) {
		if got != want {
			t.Errorf("%s: got %d, want %d: %s", label, got, want, body)
			return
		}
		produced[got] = true
	}

	// 400/404 on an open server.
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	if err := server.Preload(srv, "c", persistMatrix(10, 4, 1), bundling.Options{}); err != nil {
		t.Fatal(err)
	}
	code, body := do(t, http.MethodPost, ts.URL+"/v1/corpora/c/solve", "", `{"algorithm":"nope"}`)
	record("bad algorithm", code, http.StatusBadRequest, body)
	code, body = do(t, http.MethodGet, ts.URL+"/v1/corpora/ghost", "", "")
	record("missing corpus", code, http.StatusNotFound, body)
	code, body = do(t, http.MethodPatch, ts.URL+"/v1/corpora/c", "",
		`{"if_generation": 99, "cells": [{"consumer": 0, "item": 0, "value": 5}]}`)
	record("stale mutation generation", code, http.StatusConflict, body)
	ts.Close()
	srv.Close()

	// 401/403 on an authenticated server.
	auth, err := server.ParseAuthKeys("alice=sk-a,bob=sk-b")
	if err != nil {
		t.Fatal(err)
	}
	asrv := server.New(server.Config{Auth: auth})
	ats := httptest.NewServer(asrv.Handler())
	code, body = do(t, http.MethodGet, ats.URL+"/v1/corpora", "", "")
	record("no key", code, http.StatusUnauthorized, body)
	up, _ := json.Marshal(server.CreateCorpusRequest{ID: "al", Matrix: bundling.NewMatrixDoc(persistMatrix(4, 2, 2))})
	code, body = do(t, http.MethodPost, ats.URL+"/v1/corpora", "sk-a", string(up))
	record("alice upload", code, http.StatusCreated, body)
	code, body = do(t, http.MethodGet, ats.URL+"/v1/corpora/al", "sk-b", "")
	record("cross tenant", code, http.StatusForbidden, body)
	ats.Close()
	asrv.Close()

	// 413 with a tiny upload bound.
	usrv := server.New(server.Config{MaxUploadBytes: 64})
	uts := httptest.NewServer(usrv.Handler())
	code, body = do(t, http.MethodPost, uts.URL+"/v1/corpora", "", string(up))
	record("oversize upload", code, http.StatusRequestEntityTooLarge, body)
	uts.Close()
	usrv.Close()

	// 429 with a one-request rate quota.
	qsrv := server.New(server.Config{Quotas: server.Quotas{RequestsPerSecond: 0.001, Burst: 1}})
	qts := httptest.NewServer(qsrv.Handler())
	if code, body := do(t, http.MethodGet, qts.URL+"/v1/corpora", "", ""); code != http.StatusOK {
		t.Fatalf("first request: %d: %s", code, body)
	}
	code, body = do(t, http.MethodGet, qts.URL+"/v1/corpora", "", "")
	record("rate quota", code, http.StatusTooManyRequests, body)
	qts.Close()
	qsrv.Close()

	// 503 with a failing readiness gate.
	dsrv := server.New(server.Config{Ready: func() error { return errors.New("worker w1 unreachable") }})
	dts := httptest.NewServer(dsrv.Handler())
	code, body = do(t, http.MethodGet, dts.URL+"/healthz", "", "")
	record("degraded health", code, http.StatusServiceUnavailable, body)
	dts.Close()
	dsrv.Close()

	// 504 with an already-expired execution budget.
	tsrv := server.New(server.Config{DefaultTimeout: time.Nanosecond, CacheEntries: -1})
	tts := httptest.NewServer(tsrv.Handler())
	if err := server.Preload(tsrv, "slow", persistMatrix(40, 6, 3), bundling.Options{}); err != nil {
		t.Fatal(err)
	}
	code, body = do(t, http.MethodPost, tts.URL+"/v1/corpora/slow/solve", "", `{"algorithm":"matching"}`)
	record("deadline budget", code, http.StatusGatewayTimeout, body)
	tts.Close()
	tsrv.Close()

	// The doc's error table and reality must list the same codes (the
	// success codes live unbackticked in the endpoint table).
	for c := range documentedCodes {
		if c >= 400 && !produced[c] {
			t.Errorf("documented status %d was not produced by any test request", c)
		}
	}
	for c := range produced {
		if c >= 400 && !documentedCodes[c] {
			t.Errorf("status %d is producible but undocumented in docs/API.md", c)
		}
	}
}
